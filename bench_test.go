package samhita_test

// One testing.B benchmark per result figure of the paper (Figures 3-13)
// plus micro-operation benchmarks for the runtime's primitive costs.
//
// Figure benchmarks run the corresponding experiment at reduced (Quick)
// scale — the full paper-scale sweep is cmd/samhita-bench's job — and
// report the headline virtual-time metric of that figure via
// b.ReportMetric, so `go test -bench=.` shows both the harness's real
// cost and the modelled result it reproduces.

import (
	"testing"

	samhita "repro"
	"repro/internal/apps/kernels"
	"repro/internal/bench"
)

func benchFigure(b *testing.B, id int, metric func(*samhita.Figure) (float64, string)) {
	o := samhita.QuickBench()
	var fig *samhita.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = samhita.RunFigure(id, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	if metric != nil {
		v, unit := metric(fig)
		b.ReportMetric(v, unit)
	}
}

// lastY reports the final point of the named series.
func lastY(fig *samhita.Figure, label string) float64 {
	for _, s := range fig.Series {
		if s.Label == label {
			return s.Points[len(s.Points)-1].Y
		}
	}
	return 0
}

func BenchmarkFig03NormalizedComputeLocal(b *testing.B) {
	benchFigure(b, 3, func(f *samhita.Figure) (float64, string) {
		return lastY(f, "smh, M=10"), "norm-compute"
	})
}

func BenchmarkFig04NormalizedComputeGlobal(b *testing.B) {
	benchFigure(b, 4, func(f *samhita.Figure) (float64, string) {
		return lastY(f, "smh, M=10"), "norm-compute"
	})
}

func BenchmarkFig05NormalizedComputeStrided(b *testing.B) {
	benchFigure(b, 5, func(f *samhita.Figure) (float64, string) {
		return lastY(f, "smh, M=10"), "norm-compute"
	})
}

func BenchmarkFig06ComputeVsCoresLocal(b *testing.B) {
	benchFigure(b, 6, func(f *samhita.Figure) (float64, string) {
		return lastY(f, "S=2") * 1e6, "compute-us"
	})
}

func BenchmarkFig07ComputeVsCoresGlobal(b *testing.B) {
	benchFigure(b, 7, func(f *samhita.Figure) (float64, string) {
		return lastY(f, "S=2") * 1e6, "compute-us"
	})
}

func BenchmarkFig08ComputeVsCoresStrided(b *testing.B) {
	benchFigure(b, 8, func(f *samhita.Figure) (float64, string) {
		return lastY(f, "S=2") * 1e6, "compute-us"
	})
}

func BenchmarkFig09ComputeVsOrdinaryRegion(b *testing.B) {
	benchFigure(b, 9, func(f *samhita.Figure) (float64, string) {
		return lastY(f, "strided") * 1e6, "compute-us"
	})
}

func BenchmarkFig10SyncVsOrdinaryRegion(b *testing.B) {
	benchFigure(b, 10, func(f *samhita.Figure) (float64, string) {
		return lastY(f, "strided") * 1e6, "sync-us"
	})
}

func BenchmarkFig11SyncVsCores(b *testing.B) {
	benchFigure(b, 11, func(f *samhita.Figure) (float64, string) {
		return lastY(f, "smh_local") * 1e6, "sync-us"
	})
}

func BenchmarkFig12JacobiSpeedup(b *testing.B) {
	benchFigure(b, 12, func(f *samhita.Figure) (float64, string) {
		return lastY(f, "samhita"), "speedup"
	})
}

func BenchmarkFig13MDSpeedup(b *testing.B) {
	benchFigure(b, 13, func(f *samhita.Figure) (float64, string) {
		return lastY(f, "samhita"), "speedup"
	})
}

// ---------------------------------------------------------------------
// Ablation benchmarks (the design-choice studies of DESIGN.md §6).

func benchAblation(b *testing.B, name string) {
	o := bench.Quick()
	run := bench.AblationRunners[name]
	var a *bench.Ablation
	var err error
	for i := 0; i < b.N; i++ {
		a, err = run(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(a.Results) > 1 {
		// Report the ratio of the first variant's total time to the
		// last's — the headline effect size of the ablation.
		first := a.Results[0].Compute + a.Results[0].Sync
		last := a.Results[len(a.Results)-1].Compute + a.Results[len(a.Results)-1].Sync
		if last > 0 {
			b.ReportMetric(first/last, "x-vs-baseline")
		}
	}
}

func BenchmarkAblationPrefetch(b *testing.B)  { benchAblation(b, "prefetch") }
func BenchmarkAblationLineSize(b *testing.B)  { benchAblation(b, "linesize") }
func BenchmarkAblationFineGrain(b *testing.B) { benchAblation(b, "finegrain") }
func BenchmarkAblationStriping(b *testing.B)  { benchAblation(b, "striping") }
func BenchmarkAblationFabric(b *testing.B)    { benchAblation(b, "fabric") }

// ---------------------------------------------------------------------
// Micro-operation benchmarks: the primitive costs of the runtime.

func BenchmarkOpPageFault(b *testing.B) {
	rt, err := samhita.New(samhita.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	_, err = rt.Run(1, func(t samhita.Thread) {
		// Twice the cache capacity in lines: cycling through them makes
		// every access a genuine miss with eviction, at any b.N.
		nLines := 2 * rt.Config().CacheLines
		a := t.GlobalAlloc(nLines * rt.Config().Geo.LineSize())
		line := samhita.Addr(rt.Config().Geo.LineSize())
		b.ResetTimer()
		start := t.Clock()
		for i := 0; i < b.N; i++ {
			t.ReadFloat64(a + samhita.Addr(i%nLines)*line)
		}
		b.ReportMetric(float64(t.Clock()-start)/float64(b.N), "vns/fault")
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkOpCacheHit(b *testing.B) {
	rt, err := samhita.New(samhita.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	_, err = rt.Run(1, func(t samhita.Thread) {
		a := t.Malloc(4096)
		t.WriteFloat64(a, 1)
		b.ResetTimer()
		start := t.Clock()
		for i := 0; i < b.N; i++ {
			t.ReadFloat64(a)
		}
		b.ReportMetric(float64(t.Clock()-start)/float64(b.N), "vns/hit")
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkOpLockUnlock(b *testing.B) {
	rt, err := samhita.New(samhita.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	mu := rt.NewMutex()
	_, err = rt.Run(1, func(t samhita.Thread) {
		b.ResetTimer()
		start := t.Clock()
		for i := 0; i < b.N; i++ {
			mu.Lock(t)
			mu.Unlock(t)
		}
		b.ReportMetric(float64(t.Clock()-start)/float64(b.N), "vns/lock-pair")
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkOpBarrier8(b *testing.B) {
	rt, err := samhita.New(samhita.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	const p = 8
	bar := rt.NewBarrier(p)
	run, err := rt.Run(p, func(t samhita.Thread) {
		for i := 0; i < b.N; i++ {
			bar.Wait(t)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(run.MaxSyncTime())/float64(b.N), "vns/barrier")
}

func BenchmarkOpDiffRelease(b *testing.B) {
	rt, err := samhita.New(samhita.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	bar := rt.NewBarrier(1)
	_, err = rt.Run(1, func(t samhita.Thread) {
		a := t.Malloc(4096)
		b.ResetTimer()
		start := t.Clock()
		for i := 0; i < b.N; i++ {
			t.WriteFloat64(a, float64(i)) // dirty one page (twin + diff)
			bar.Wait(t)                   // release: diff + notice
		}
		b.ReportMetric(float64(t.Clock()-start)/float64(b.N), "vns/dirty-release")
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkKernelMicroStrided(b *testing.B) {
	rt, err := samhita.New(samhita.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	prm := kernels.MicroParams{N: 2, M: 5, S: 2, B: 128, Mode: kernels.AllocStrided}
	for i := 0; i < b.N; i++ {
		if _, err := kernels.RunMicro(rt, 4, prm); err != nil {
			b.Fatal(err)
		}
	}
}
