package samhita_test

import (
	"sync/atomic"
	"testing"

	samhita "repro"
)

// TestPublicAPIQuickstart exercises the documented entry points end to
// end: boot, allocate, share through a barrier, synchronize with a
// mutex, inspect the run statistics, close.
func TestPublicAPIQuickstart(t *testing.T) {
	rt, err := samhita.New(samhita.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const p = 4
	mu := rt.NewMutex()
	bar := rt.NewBarrier(p)
	var base atomic.Uint64

	run, err := rt.Run(p, func(th samhita.Thread) {
		if th.ID() == 0 {
			base.Store(uint64(th.GlobalAlloc(4096)))
		}
		bar.Wait(th)
		arr := samhita.F64{Base: samhita.Addr(base.Load())}
		arr.Set(th, th.ID(), float64(th.ID()*10))
		mu.Lock(th)
		arr.Add(th, p, 1)
		mu.Unlock(th)
		bar.Wait(th)
		for i := 0; i < p; i++ {
			if got := arr.At(th, i); got != float64(i*10) {
				t.Errorf("thread %d: arr[%d] = %v", th.ID(), i, got)
			}
		}
		if got := arr.At(th, p); got != p {
			t.Errorf("thread %d: counter = %v", th.ID(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.MaxTotalTime() <= 0 {
		t.Error("no virtual time elapsed")
	}
	if s := run.Summary(); s == "" {
		t.Error("empty summary")
	}
}

// TestRuntimeReuseAcrossRuns guards the writer-id uniqueness invariant:
// a second Run on the same Runtime must see the first Run's data and
// not collide with its interval tags.
func TestRuntimeReuseAcrossRuns(t *testing.T) {
	rt, err := samhita.New(samhita.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var addr atomic.Uint64
	bar1 := rt.NewBarrier(2)
	_, err = rt.Run(2, func(th samhita.Thread) {
		if th.ID() == 0 {
			a := th.GlobalAlloc(4096)
			th.WriteFloat64(a, 123.5)
			addr.Store(uint64(a))
		}
		bar1.Wait(th)
	})
	if err != nil {
		t.Fatal(err)
	}

	bar2 := rt.NewBarrier(2)
	_, err = rt.Run(2, func(th samhita.Thread) {
		a := samhita.Addr(addr.Load())
		if got := th.ReadFloat64(a); got != 123.5 {
			t.Errorf("second run, thread %d: %v", th.ID(), got)
		}
		th.WriteFloat64(a+samhita.Addr(8*(1+th.ID())), float64(th.ID()))
		bar2.Wait(th)
		for i := 0; i < 2; i++ {
			if got := th.ReadFloat64(a + samhita.Addr(8*(1+i))); got != float64(i) {
				t.Errorf("cross-run thread %d: slot %d = %v", th.ID(), i, got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBothBackendsSatisfyVM pins the backend symmetry the kernels rely
// on.
func TestBothBackendsSatisfyVM(t *testing.T) {
	var backends []samhita.VM
	rt, err := samhita.New(samhita.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	backends = append(backends, rt, samhita.NewPthreads(samhita.PthreadsConfig{}))

	for _, v := range backends {
		run, err := v.Run(2, func(th samhita.Thread) {
			a := th.Malloc(64)
			th.WriteInt64(a, int64(th.ID()))
			if th.ReadInt64(a) != int64(th.ID()) {
				t.Errorf("%s: round trip failed", v.Name())
			}
			th.Compute(100)
		})
		if err != nil {
			t.Fatalf("%s: %v", v.Name(), err)
		}
		if run.MaxComputeTime() < 100 {
			t.Errorf("%s: compute time %v", v.Name(), run.MaxComputeTime())
		}
	}
}

func TestPaperBenchMatchesPaperScale(t *testing.T) {
	o := samhita.PaperBench()
	if o.N != 10 || o.B != 256 || o.FixedP != 16 {
		t.Errorf("paper options wrong: %+v", o)
	}
}
