// Package samhita is a reproduction of the virtual shared memory system
// of "Towards Virtual Shared Memory for Non-Cache-Coherent Multicore
// Systems" (Ramesh, Ribbens, Varadarajan; IPDPS Workshops 2013): the
// Samhita distributed shared memory runtime and its regional consistency
// (RegC) model, rebuilt in Go over a virtual-time simulated interconnect
// in place of the paper's InfiniBand/PCIe hardware.
//
// A Samhita instance consists of memory servers (which serve the pages
// backing a single shared global address space), a manager (allocation,
// synchronization and the write-notice directory), and compute threads,
// each with a local software cache fed by demand paging with multi-page
// cache lines, adjacent-line prefetch and a multiple-writer protocol.
// Stores inside lock-protected consistency regions propagate as
// fine-grained updates; all other stores propagate as page diffs at
// synchronization points — that split is regional consistency.
//
// The package exposes two interchangeable backends behind one
// programming interface (the Go analogue of the paper's m4-macro code
// base):
//
//	smh, _ := samhita.New(samhita.DefaultConfig()) // the DSM
//	pth := samhita.NewPthreads(samhita.PthreadsConfig{}) // the baseline
//
// Both implement VM:
//
//	bar := smh.NewBarrier(4)
//	run, _ := smh.Run(4, func(t samhita.Thread) {
//		a := t.Malloc(4096)
//		t.WriteFloat64(a, 1.0)
//		bar.Wait(t)
//		// ...
//	})
//	fmt.Println(run.Summary())
//
// Virtual time: all reported times (compute time, synchronization time)
// are deterministic model times from the cost models in Config, not
// wall-clock measurements; see DESIGN.md for the substitution argument.
package samhita

import (
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/pthreads"
	"repro/internal/scl"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/vtime"
)

// Programming interface (shared by both backends).
type (
	// VM is a shared-memory substrate that can run threaded programs.
	VM = vm.VM
	// Thread is one compute thread's handle.
	Thread = vm.Thread
	// Mutex is a mutual-exclusion lock; in Samhita the span between
	// Lock and Unlock is a RegC consistency region.
	Mutex = vm.Mutex
	// Barrier synchronizes n participants.
	Barrier = vm.Barrier
	// Cond is a condition variable.
	Cond = vm.Cond
	// Addr is an address in the shared global address space.
	Addr = vm.Addr
	// F64 is a typed float64 array view.
	F64 = vm.F64
	// F64Span is a checked-out span of an F64: a locally owned []float64
	// filled by one bulk read and written back by Close.
	F64Span = vm.F64Span
	// I64 is a typed int64 array view.
	I64 = vm.I64
)

// Configuration and results.
type (
	// Config parameterizes a Samhita instance (geometry, interconnect
	// model, CPU cost model, cache size, allocator thresholds).
	Config = core.Config
	// PthreadsConfig parameterizes the cache-coherent baseline.
	PthreadsConfig = pthreads.Config
	// Geometry is the address-space layout (page size, line pages,
	// memory servers, striping).
	Geometry = layout.Geometry
	// LinkModel prices one interconnect class in virtual time.
	LinkModel = vtime.LinkModel
	// CPUModel prices compute-side work in virtual time.
	CPUModel = vtime.CPUModel
	// Time is a virtual-time instant/duration in nanoseconds.
	Time = vtime.Time
	// Run carries the per-thread measurements of one execution.
	Run = stats.Run
	// ThreadStats is one thread's measurement record.
	ThreadStats = stats.Thread
	// Runtime is a running Samhita instance (it implements VM and
	// additionally exposes its servers for inspection).
	Runtime = core.Runtime
	// Transport abstracts the communication substrate; see NewTCPTransport.
	Transport = core.Transport
	// TraceCollector records protocol events for Chrome-trace export;
	// attach one via Config.Trace.
	TraceCollector = trace.Collector
)

// Transport robustness: retry/timeout policy, fault injection, and the
// counters that report both. See DESIGN.md, "Failure semantics".
type (
	// RetryPolicy bounds and retries transport calls; assign a pointer
	// to Config.Retry. The zero policy means one attempt, no timeout.
	RetryPolicy = scl.RetryPolicy
	// UnreachableError is the terminal error after retry exhaustion;
	// match it with errors.Is(err, ErrUnreachable).
	UnreachableError = scl.UnreachableError
	// NetStats counts transport robustness events (attempts, retries,
	// timeouts, dead connections, injected faults). Read it from
	// Runtime.NetStats after a run.
	NetStats = stats.Net
	// TierStats counts tiered-page-store events (hot hits, tier moves,
	// compressed cold bytes, snapshot seals, CoW breaks). Read it from
	// Runtime.TierStats after a run on a tiered instance
	// (Config.HotBytes > 0).
	TierStats = stats.Tier
	// FaultConfig parameterizes a fault injector.
	FaultConfig = faultnet.Config
	// FaultPartition scripts one unreachability window inside a
	// FaultConfig.
	FaultPartition = faultnet.Partition
	// FaultInjector injects drops, delays, duplicate responses,
	// partitions and node kills beneath the retry layer; assign one to
	// Config.Faults. Its Kill method crashes a node on demand.
	FaultInjector = faultnet.Injector
)

// Liveness: heartbeat membership, lock-lease reclamation, and
// memory-server checkpoint/failover. See DESIGN.md and README.md,
// "Failure semantics".
type (
	// LivenessConfig enables the liveness layer (heartbeats, lease
	// reclamation, optional warm-standby memory servers); assign a
	// pointer to Config.Liveness.
	LivenessConfig = core.LivenessConfig
	// LivenessStats counts liveness events (member deaths, lock
	// reclamations, barrier recomputations, replication, failovers).
	// Read it from Runtime.Liveness after a run.
	LivenessStats = stats.Liveness
	// FaultKill scripts one permanent node crash inside a FaultConfig;
	// see ManagerNode, ServerNode and ThreadNode for targets.
	FaultKill = faultnet.Kill
	// NodeID identifies a fabric node (fault-scripting targets).
	NodeID = scl.NodeID
)

// Node-id helpers for fault scripting.
var (
	// ManagerNode is the fabric node of the central manager.
	ManagerNode = core.ManagerNode
	// ServerNode is the fabric node of primary memory server i.
	ServerNode = core.ServerNode
	// StandbyNode is the fabric node of the warm standby for server i.
	StandbyNode = core.StandbyNode
	// ThreadNode is the fabric node of the thread with writer id w
	// (writer ids start at 1; a runtime's first Run gives thread t
	// writer id t+1).
	ThreadNode = core.ThreadNode
)

// Typed failure sentinels, matched with errors.Is.
var (
	// ErrUnreachable: a call gave up after exhausting its RetryPolicy.
	ErrUnreachable = scl.ErrUnreachable
	// ErrPeerDied: the peer (or a required participant) crashed — a
	// parked call was completed by the liveness layer, a request was
	// fenced from a dead member, or retries exhausted against a killed
	// node.
	ErrPeerDied = proto.ErrPeerDied
	// ErrShutdown: the component shut down with calls still parked.
	ErrShutdown = proto.ErrShutdown
	// ErrNotPromoted: a fetch reached a warm standby that has not been
	// promoted.
	ErrNotPromoted = proto.ErrNotPromoted
)

// DefaultRetryPolicy retries transient transport failures with
// exponential backoff and no per-attempt timeout (protocol calls may
// legitimately block on synchronization; connection death, not a timer,
// unsticks them).
var DefaultRetryPolicy = scl.DefaultRetryPolicy

// NewFaultInjector creates a fault injector from the config; assign it
// to Config.Faults to exercise the DSM protocol under transport chaos.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return faultnet.New(cfg) }

// Interconnect presets.
var (
	// QDRInfiniBand models the paper's testbed fabric.
	QDRInfiniBand = vtime.QDRInfiniBand
	// PCIeSCIF models the paper's future-work host-coprocessor bus.
	PCIeSCIF = vtime.PCIeSCIF
	// IntraNode models components sharing a node.
	IntraNode = vtime.IntraNode
)

// DefaultConfig returns the configuration matching the paper's testbed:
// 4 KiB pages, 4-page cache lines, one memory server, QDR InfiniBand.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultGeometry returns the paper's address-space geometry.
func DefaultGeometry() Geometry { return layout.DefaultGeometry() }

// New boots a Samhita instance: manager, memory servers, fabric. Close
// it when done.
func New(cfg Config) (*Runtime, error) { return core.New(cfg) }

// NewPthreads creates the cache-coherent shared-memory baseline backend
// (the paper's Pthreads comparison, capped at one node's 8 cores by
// default).
func NewPthreads(cfg PthreadsConfig) VM { return pthreads.New(cfg) }

// NewTraceCollector creates a protocol-event collector (0 = default
// event limit). Attach it to Config.Trace, run, then use
// WriteChromeTrace to export for chrome://tracing or Perfetto.
func NewTraceCollector(limit int) *TraceCollector { return trace.NewCollector(limit) }

// NewTCPTransport returns a Transport that runs the whole instance —
// manager, memory servers, compute threads, cache agents — over real
// loopback TCP sockets instead of the simulated fabric. The protocol
// bytes and virtual-time semantics are identical; this demonstrates the
// Samhita Communication Layer's transport independence (the paper's IB
// verbs today / SCIF tomorrow design point). Assign it to
// Config.Transport.
func NewTCPTransport(model LinkModel) Transport { return scl.NewTCPFactory(model) }

// Experiments re-exports the benchmark harness that regenerates the
// paper's figures; see cmd/samhita-bench for the command-line front end.
type (
	// BenchOptions scales the figure experiments.
	BenchOptions = bench.Options
	// Figure is the data behind one reproduced paper figure.
	Figure = bench.Figure
)

// RunFigure regenerates one of the paper's result figures (3-13).
func RunFigure(id int, o BenchOptions) (*Figure, error) { return bench.Run(id, o) }

// QuickBench returns experiment options scaled down for tests.
func QuickBench() BenchOptions { return bench.Quick() }

// PaperBench returns the paper's full experiment parameters.
func PaperBench() BenchOptions { return bench.Options{}.WithDefaults() }
