// Jacobi: the paper's first application kernel (Figure 12) — a Jacobi
// iteration for the discrete Laplacian with a nearest-neighbour access
// pattern — run on both backends with identical source, demonstrating
// the "trivial port" claim and comparing scaling.
//
// Run with: go run ./examples/jacobi [-n 256] [-iters 10] [-p 8]
package main

import (
	"flag"
	"fmt"
	"log"

	samhita "repro"
	"repro/internal/apps/kernels"
)

func main() {
	n := flag.Int("n", 256, "grid edge")
	iters := flag.Int("iters", 10, "Jacobi sweeps")
	p := flag.Int("p", 8, "threads")
	flag.Parse()

	prm := kernels.JacobiParams{N: *n, Iters: *iters}

	// The identical kernel source runs on hardware shared memory...
	pth := samhita.NewPthreads(samhita.PthreadsConfig{MaxCores: *p})
	pres, err := kernels.RunJacobi(pth, min(*p, 8), prm)
	if err != nil {
		log.Fatal(err)
	}

	// ...and on the DSM.
	rt, err := samhita.New(samhita.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	sres, err := kernels.RunJacobi(rt, *p, prm)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Jacobi %dx%d, %d sweeps\n\n", *n, *n, *iters)
	fmt.Printf("%-10s %12s %14s %14s %22s\n", "backend", "threads", "compute", "sync", "checksum")
	fmt.Printf("%-10s %12d %14v %14v %22.9f\n", "pthreads", min(*p, 8),
		pres.Run.MaxComputeTime(), pres.Run.MaxSyncTime(), pres.Checksum)
	fmt.Printf("%-10s %12d %14v %14v %22.9f\n", "samhita", *p,
		sres.Run.MaxComputeTime(), sres.Run.MaxSyncTime(), sres.Checksum)

	if pres.Checksum == sres.Checksum {
		fmt.Println("\ncheck: grids are bit-identical across backends ✓")
	} else {
		fmt.Println("\ncheck: CHECKSUM MISMATCH — consistency bug!")
	}
	tot := sres.Run.Totals()
	fmt.Printf("samhita traffic: %d faults, %d diffs (%d B), %d invalidations\n",
		tot.Misses, tot.DiffsCreated, tot.DiffBytes, tot.Invalidations)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
