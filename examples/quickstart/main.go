// Quickstart: boot a Samhita instance, share memory between threads
// that have no hardware-coherent memory in common, synchronize with a
// mutex and a barrier, and read the measurement record.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	samhita "repro"
)

func main() {
	// Boot the DSM: one manager, one memory server, a QDR-InfiniBand-
	// class simulated fabric — the paper's testbed in miniature.
	rt, err := samhita.New(samhita.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	const p = 8
	mu := rt.NewMutex()
	bar := rt.NewBarrier(p)
	var tableAddr atomic.Uint64

	run, err := rt.Run(p, func(t samhita.Thread) {
		// Thread 0 allocates a shared table through the manager; the
		// others learn its address after the barrier.
		if t.ID() == 0 {
			tableAddr.Store(uint64(t.GlobalAlloc((p + 1) * 8)))
		}
		bar.Wait(t)
		table := samhita.F64{Base: samhita.Addr(tableAddr.Load())}

		// Ordinary-region store: propagates as a page diff at the next
		// synchronization point.
		table.Set(t, t.ID(), float64((t.ID()+1)*100))

		// Consistency-region store: the lock makes this a RegC
		// consistency region, so the store travels as a fine-grained
		// update record with the lock — no page invalidation needed.
		mu.Lock(t)
		table.Add(t, p, 1)
		mu.Unlock(t)

		bar.Wait(t)

		// Every thread now sees every other thread's writes.
		if t.ID() == 0 {
			sum := 0.0
			for i := 0; i < p; i++ {
				sum += table.At(t, i)
			}
			fmt.Printf("sum of per-thread entries: %v (want %v)\n", sum, 100.0*p*(p+1)/2)
			fmt.Printf("lock-protected counter:    %v (want %d)\n", table.At(t, p), p)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nmeasurement record:")
	fmt.Print(run.Summary())
}
