// Matmul: a blocked matrix multiplication (C = A x B) on the Samhita
// DSM, showing the read-sharing pattern the single-writer optimization
// is built for: A and B are written once by their initializers and then
// only read — their pages are pulled to the memory server exactly once,
// after which every thread's fetches are served without bothering the
// writers. C's row blocks have one writer each and are never shared at
// all, so the releases during the multiply move almost no data.
//
// Rows move through the bulk span API (WriteSlice, ReadSlice, and the
// checked-out Slice/Close view) instead of per-element At/Set: one
// accessor round per row rather than one per element, and span-written
// rows publish their exact extents at release so any falsely-sharing
// peer invalidates only the touched bytes.
//
// Run with: go run ./examples/matmul [-n 128] [-p 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"

	samhita "repro"
)

func main() {
	n := flag.Int("n", 128, "matrix edge")
	p := flag.Int("p", 8, "threads")
	flag.Parse()

	rt, err := samhita.New(samhita.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	bar := rt.NewBarrier(*p)
	var base atomic.Uint64
	dim := *n
	elemsPerMat := dim * dim

	run, err := rt.Run(*p, func(t samhita.Thread) {
		if t.ID() == 0 {
			base.Store(uint64(t.GlobalAlloc(3 * elemsPerMat * 8)))
		}
		bar.Wait(t)
		b := samhita.Addr(base.Load())
		A := samhita.F64{Base: b}
		B := samhita.F64{Base: b + samhita.Addr(8*elemsPerMat)}
		C := samhita.F64{Base: b + samhita.Addr(16*elemsPerMat)}

		// Initialize A and B by row blocks (owner-computes): build each
		// row locally, store it with one span write.
		lo, hi := blockRange(dim, t.P(), t.ID())
		row := make([]float64, dim)
		for i := lo; i < hi; i++ {
			for j := 0; j < dim; j++ {
				row[j] = float64((i+j)%7) + 1
			}
			A.WriteSlice(t, i*dim, row)
			for j := 0; j < dim; j++ {
				row[j] = float64((i*j)%5) + 1
			}
			B.WriteSlice(t, i*dim, row)
		}
		bar.Wait(t)
		t.ResetMeasurement() // time the multiply, not the init

		// Multiply: each thread computes its block of C's rows, reading
		// all of B (read sharing) and its rows of A.
		rowA := make([]float64, dim)
		rowB := make([]float64, dim)
		colSums := make([]float64, dim)
		for i := lo; i < hi; i++ {
			A.ReadSlice(t, i*dim, rowA)
			for j := range colSums {
				colSums[j] = 0
			}
			for k := 0; k < dim; k++ {
				aik := rowA[k]
				B.ReadSlice(t, k*dim, rowB)
				for j := 0; j < dim; j++ {
					colSums[j] += aik * rowB[j]
				}
			}
			t.Compute(2 * dim * dim)
			C.WriteSlice(t, i*dim, colSums)
		}
		bar.Wait(t)
		t.StopMeasurement()

		// Verify a sample of C against a direct computation, through a
		// checked-out read-only span view of each row involved.
		if t.ID() == 0 {
			for trial := 0; trial < 16; trial++ {
				i := (trial * 31) % dim
				j := (trial * 17) % dim
				ra := A.Slice(t, i*dim, (i+1)*dim)
				var want float64
				for k := 0; k < dim; k++ {
					want += ra.V[k] * B.At(t, k*dim+j)
				}
				ra.Discard() // read-only: no write-back
				if got := C.At(t, i*dim+j); got != want {
					log.Fatalf("C[%d,%d] = %v, want %v", i, j, got, want)
				}
			}
			fmt.Println("spot-check against direct computation ✓")
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%dx%d matmul on %d Samhita threads\n", dim, dim, *p)
	fmt.Printf("compute (per thread, max): %v\n", run.MaxComputeTime())
	fmt.Printf("sync    (per thread, max): %v\n", run.MaxSyncTime())
	tot := run.Totals()
	fmt.Printf("traffic: %d faults, %d eager diff bytes, %d lazily-owned claims\n",
		tot.Misses, tot.DiffBytes, tot.OwnedClaims)
	for i, srv := range rt.Servers() {
		s := srv.Stats()
		fmt.Printf("server %d: %d fetches, %d pulls (%d B pulled on demand)\n",
			i, s.Fetches.Load(), s.Pulls.Load(), s.PulledBytes.Load())
	}
}

func blockRange(n, p, id int) (lo, hi int) {
	chunk, rem := n/p, n%p
	lo = id*chunk + min(id, rem)
	hi = lo + chunk
	if id < rem {
		hi++
	}
	return lo, hi
}
