// MD: the paper's second application kernel (Figure 13) — a velocity
// Verlet n-body simulation whose O(n) work per particle masks the DSM's
// synchronization overhead, letting it scale past a single node's
// cores.
//
// Run with: go run ./examples/md [-n 256] [-steps 5] [-p 16]
package main

import (
	"flag"
	"fmt"
	"log"

	samhita "repro"
	"repro/internal/apps/kernels"
)

func main() {
	n := flag.Int("n", 256, "particles")
	steps := flag.Int("steps", 5, "time steps")
	p := flag.Int("p", 16, "threads (Samhita; pthreads capped at 8)")
	flag.Parse()

	prm := kernels.MDParams{NParticles: *n, Steps: *steps, Dt: 1e-4, Mass: 1}

	pthP := *p
	if pthP > 8 {
		pthP = 8
	}
	pth := samhita.NewPthreads(samhita.PthreadsConfig{})
	pres, err := kernels.RunMD(pth, pthP, prm)
	if err != nil {
		log.Fatal(err)
	}

	rt, err := samhita.New(samhita.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	sres, err := kernels.RunMD(rt, *p, prm)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("molecular dynamics: %d particles, %d velocity-Verlet steps\n\n", *n, *steps)
	fmt.Printf("%-10s %8s %14s %14s %16s %16s\n", "backend", "threads", "compute", "sync", "potential", "kinetic")
	fmt.Printf("%-10s %8d %14v %14v %16.6f %16.6f\n", "pthreads", pthP,
		pres.Run.MaxComputeTime(), pres.Run.MaxSyncTime(), pres.Potential, pres.Kinetic)
	fmt.Printf("%-10s %8d %14v %14v %16.6f %16.6f\n", "samhita", *p,
		sres.Run.MaxComputeTime(), sres.Run.MaxSyncTime(), sres.Potential, sres.Kinetic)

	// Compute-to-sync ratio is what lets MD scale (Section III).
	c, s := sres.Run.MaxComputeTime(), sres.Run.MaxSyncTime()
	if s > 0 {
		fmt.Printf("\nsamhita compute:sync ratio = %.1f:1 — computation masks the consistency cost\n",
			float64(c)/float64(s))
	}
	if pres.Checksum == sres.Checksum {
		fmt.Println("check: trajectories are bit-identical across backends ✓")
	} else {
		fmt.Println("check: CHECKSUM MISMATCH — consistency bug!")
	}
}
