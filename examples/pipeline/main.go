// Pipeline: a bounded producer/consumer queue built entirely from
// Samhita's Pthreads-like primitives — mutex, condition variable and
// shared global memory — demonstrating the synchronization surface the
// paper lists (mutual exclusion locks, condition variable signaling,
// barriers) on threads that share no hardware memory.
//
// Run with: go run ./examples/pipeline [-items 64]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"

	samhita "repro"
)

const queueCap = 8

// The queue lives in the shared global address space:
//
//	[0]  head index
//	[1]  tail index
//	[2]  producers-done flag
//	[3+] ring buffer of queueCap values
func main() {
	items := flag.Int("items", 64, "items to push through the pipeline")
	flag.Parse()

	rt, err := samhita.New(samhita.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	mu := rt.NewMutex()
	notEmpty := rt.NewCond()
	notFull := rt.NewCond()
	bar := rt.NewBarrier(2)
	var qAddr atomic.Uint64
	var consumed atomic.Int64

	_, err = rt.Run(2, func(t samhita.Thread) {
		if t.ID() == 0 {
			qAddr.Store(uint64(t.GlobalAlloc((3 + queueCap) * 8)))
		}
		bar.Wait(t)
		q := samhita.I64{Base: samhita.Addr(qAddr.Load())}
		head := func() int64 { return q.At(t, 0) }
		tail := func() int64 { return q.At(t, 1) }

		if t.ID() == 0 { // producer
			for i := 1; i <= *items; i++ {
				mu.Lock(t)
				for tail()-head() == queueCap {
					notFull.Wait(t, mu)
				}
				q.Set(t, 3+int(tail()%queueCap), int64(i*i))
				q.Set(t, 1, tail()+1)
				mu.Unlock(t)
				notEmpty.Signal(t)
			}
			mu.Lock(t)
			q.Set(t, 2, 1) // done
			mu.Unlock(t)
			notEmpty.Signal(t)
		} else { // consumer
			var sum int64
			for {
				mu.Lock(t)
				for tail() == head() && q.At(t, 2) == 0 {
					notEmpty.Wait(t, mu)
				}
				if tail() == head() && q.At(t, 2) == 1 {
					mu.Unlock(t)
					break
				}
				v := q.At(t, 3+int(head()%queueCap))
				q.Set(t, 0, head()+1)
				mu.Unlock(t)
				notFull.Signal(t)
				sum += v
				consumed.Add(1)
			}
			fmt.Printf("consumer drained %d items, sum of squares = %d\n", consumed.Load(), sum)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	want := int64(*items) * (int64(*items) + 1) * (2*int64(*items) + 1) / 6
	fmt.Printf("expected sum of squares      = %d\n", want)
	if consumed.Load() != int64(*items) {
		log.Fatalf("lost items: %d of %d", consumed.Load(), *items)
	}
	fmt.Println("pipeline check ✓ (every item crossed the DSM through a cond-var handoff)")
}
