// Command samhita-bench regenerates the paper's evaluation: every
// result figure (3-13) and the design-choice ablations, printed as
// aligned text tables (and optionally CSV files for plotting).
//
// Usage:
//
//	samhita-bench -figure 12            # one figure at paper scale
//	samhita-bench -all                  # all figures
//	samhita-bench -ablation prefetch    # one ablation
//	samhita-bench -ablations            # all ablations
//	samhita-bench -all -quick           # reduced scale (seconds, not minutes)
//	samhita-bench -all -csv out/        # also write out/figNN.csv
//	samhita-bench -figure 3 -faults     # same figure under injected transport faults
//	samhita-bench -all -quick -standby  # with warm-standby replicated memory servers
//	samhita-bench -json BENCH_micro.json            # machine-readable micro benchmark
//	samhita-bench -json out.json -baseline BENCH_micro.json  # + CI regression gate
//	samhita-bench -stream-span -server-shards 4 -manager-shards 4  # span data-plane smoke
//
// Reported times are virtual-model times (see DESIGN.md), so the output
// is deterministic up to scheduling of symmetric lock acquisitions.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	samhita "repro"
	"repro/internal/bench"
	"repro/internal/stats"
)

func main() {
	var (
		figure    = flag.Int("figure", 0, "regenerate one figure (3-13)")
		all       = flag.Bool("all", false, "regenerate every figure")
		ablation  = flag.String("ablation", "", "run one ablation: "+strings.Join(bench.AblationNames(), ", "))
		ablations = flag.Bool("ablations", false, "run every ablation")
		scenario  = flag.Bool("scenario", false, "run the Figure-1 heterogeneous-node projection (host vs coprocessor)")
		quick     = flag.Bool("quick", false, "reduced problem sizes")
		csvDir    = flag.String("csv", "", "directory to write CSV files into")

		jsonOut      = flag.String("json", "", "measure the micro-benchmark suite and write it as JSON to this file")
		sweep        = flag.String("sweep", "", "comma-separated population-sweep thread counts for -json (e.g. 256,1024)")
		streamSpan   = flag.Bool("stream-span", false, "smoke-check the span-recast stream kernel: element and span runs must produce identical checksums")
		baseline     = flag.String("baseline", "", "compare the -json measurement against this stored JSON; exit non-zero on >20% sync-time or message regression")
		depth        = flag.Int("prefetch-depth", 0, "prefetch depth for every Samhita runtime (0 = one line ahead)")
		serverShards = flag.Int("server-shards", 1, "split each memory server into this many independently scheduled page shards")
		mgrShards    = flag.Int("manager-shards", 1, "split the manager into this many synchronization homes")
		mgrReplicas  = flag.Int("manager-replicas", 1, "replicate the manager behind a consensus log across this many replicas (adds a replicated strided point to -json)")
		hotBytes     = flag.Int64("hot-bytes", 0, "per-server hot-set budget in bytes; pages past it demote compressed to the cold tier (adds tiered points to -json; 0 = untiered)")
		coldPreset   = flag.String("cold-preset", "", "cold-tier cost model: cold-nvme (default) or cold-remote")
		forks        = flag.Int("forks", 0, "add a fork-storm point to -json: this many copy-on-write address-space forks off one sealed snapshot")

		faults     = flag.Bool("faults", false, "inject transport faults (masked by retries) into every Samhita runtime")
		faultSeed  = flag.Int64("fault-seed", 1, "fault schedule seed")
		faultDrop  = flag.Float64("fault-drop", 0.05, "per-attempt drop probability")
		faultDelay = flag.Float64("fault-delay", 0.02, "per-attempt delay probability")
		faultDup   = flag.Float64("fault-dup", 0.01, "duplicate-response probability")
		standby    = flag.Bool("standby", false, "boot warm-standby memory servers with heartbeat liveness in every Samhita runtime")
	)
	flag.Parse()

	opts := bench.Options{}.WithDefaults()
	if *quick {
		opts = bench.Quick()
	}
	opts.PrefetchDepth = *depth
	opts.ServerShards = *serverShards
	opts.ManagerShards = *mgrShards
	opts.ManagerReplicas = *mgrReplicas
	opts.HotBytes = *hotBytes
	opts.ColdPreset = *coldPreset
	opts.Forks = *forks
	opts.Agg = new(stats.Run)
	if *hotBytes > 0 || *forks > 0 {
		opts.Tier = new(samhita.TierStats)
	}
	if *sweep != "" {
		for _, s := range strings.Split(*sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 2 {
				fatalf("bad -sweep entry %q", s)
			}
			opts.SweepPops = append(opts.SweepPops, n)
		}
	}
	if *faults {
		opts.FaultSeed = *faultSeed
		opts.FaultDrop = *faultDrop
		opts.FaultDelay = *faultDelay
		opts.FaultDup = *faultDup
	}
	if *standby {
		opts.Standby = true
		opts.Live = new(samhita.LivenessStats)
	}
	if *faults || *standby {
		pol := samhita.DefaultRetryPolicy
		opts.Retry = &pol
		opts.Net = new(samhita.NetStats)
	}

	if !*all && *figure == 0 && !*ablations && *ablation == "" && !*scenario && *jsonOut == "" && !*streamSpan {
		flag.Usage()
		os.Exit(2)
	}

	if *streamSpan {
		line, err := bench.StreamSpanSmoke(opts)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(line)
	}

	if *jsonOut != "" {
		mb, err := bench.MicroBenchSuite(opts)
		if err != nil {
			fatalf("micro suite: %v", err)
		}
		if err := mb.WriteFile(*jsonOut); err != nil {
			fatalf("write %s: %v", *jsonOut, err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
		for _, pt := range mb.Points {
			if pt.ManagerReplicas > 1 {
				fmt.Printf("replicated manager (%d replicas, %s): %d log entries, %d snapshots, %d elections\n",
					pt.ManagerReplicas, pt.Mode, pt.MgrReplEntries, pt.MgrSnapshots, pt.MgrElections)
			}
			if pt.Workload == "forkstorm" {
				fmt.Printf("forkstorm (%d forks, %d B image): fork-to-first-op p50=%dns p99=%dns p999=%dns, eager-copy cold start %dns\n",
					pt.Forks, pt.M, pt.ForkP50Ns, pt.ForkP99Ns, pt.ForkP999Ns, pt.ColdStartNs)
			}
		}
		if *baseline != "" {
			base, err := bench.ReadMicroBench(*baseline)
			if err != nil {
				fatalf("baseline: %v", err)
			}
			if err := bench.CheckRegression(base, mb, 0.20); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("no regression vs %s (20%% gate)\n", *baseline)
		}
	}

	var figIDs []int
	if *all {
		figIDs = bench.FigureIDs()
	} else if *figure != 0 {
		figIDs = []int{*figure}
	}
	for _, id := range figIDs {
		start := time.Now()
		f, err := bench.Run(id, opts)
		if err != nil {
			fatalf("figure %d: %v", id, err)
		}
		fmt.Print(f.Table())
		fmt.Printf("(regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			writeCSV(*csvDir, f.ID, f.CSV())
		}
	}

	if *scenario {
		start := time.Now()
		f, err := bench.ScenarioHeterogeneous(opts)
		if err != nil {
			fatalf("scenario: %v", err)
		}
		fmt.Print(f.Table())
		fmt.Printf("(ran in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			writeCSV(*csvDir, f.ID, f.CSV())
		}
	}

	var ablNames []string
	if *ablations {
		ablNames = bench.AblationNames()
	} else if *ablation != "" {
		ablNames = []string{*ablation}
	}
	for _, name := range ablNames {
		run, ok := bench.AblationRunners[name]
		if !ok {
			fatalf("unknown ablation %q (have %s)", name, strings.Join(bench.AblationNames(), ", "))
		}
		start := time.Now()
		a, err := run(opts)
		if err != nil {
			fatalf("ablation %s: %v", name, err)
		}
		fmt.Print(a.Table())
		fmt.Printf("(ran in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	// Release-path and robustness counters accumulated across every
	// Samhita runtime booted above.
	if len(opts.Agg.Threads) > 0 {
		fmt.Println(opts.Agg.ReleaseLine())
	}
	if opts.Net != nil {
		fmt.Println(opts.Net.Summary())
	}
	if opts.Tier != nil {
		fmt.Println(opts.Tier.Summary())
	}
	if opts.Live != nil {
		fmt.Println(opts.Live.Summary())
	}
}

func writeCSV(dir, id, csv string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatalf("csv dir: %v", err)
	}
	path := filepath.Join(dir, id+".csv")
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "samhita-bench: "+format+"\n", args...)
	os.Exit(1)
}
