// Command samhita-info prints the reproduction's configuration surface:
// the default geometry, the cost-model presets, and the experiment
// index — a quick orientation for someone exploring the repository.
package main

import (
	"fmt"

	samhita "repro"
	"repro/internal/bench"
	"repro/internal/vtime"
)

func main() {
	cfg := samhita.DefaultConfig()
	fmt.Println("Samhita / RegC reproduction — configuration")
	fmt.Println()
	fmt.Printf("geometry: %d B pages, %d pages/line (%d B lines), %d memory server(s), striped=%v\n",
		cfg.Geo.PageSize, cfg.Geo.LinePages, cfg.Geo.LineSize(), cfg.Geo.NumServers, cfg.Geo.Striped)
	fmt.Printf("cache:    %d lines/thread, prefetch=%v\n", cfg.CacheLines, cfg.Prefetch)
	fmt.Printf("alloc:    arena chunk %d KiB, striping threshold %d KiB\n",
		cfg.ArenaChunk/1024, cfg.StripeMin/1024)
	fmt.Println()

	fmt.Println("interconnect presets:")
	for _, l := range []vtime.LinkModel{vtime.QDRInfiniBand, vtime.PCIeSCIF, vtime.IntraNode} {
		fmt.Printf("  %-11s latency=%-7v bw=%.1f GB/s send-ovh=%v svc=%v\n",
			l.Name, l.Latency, l.BytesPerSec/1e9, l.SendOverhead, l.ServiceTime)
	}
	fmt.Println()

	cpu := vtime.DefaultCPU
	fmt.Println("compute cost model (Samhita threads):")
	fmt.Printf("  flop=%v access=%v fault=%v twin=%v invalidate=%v lock=%v\n",
		cpu.FlopTime, cpu.AccessTime, cpu.FaultOverhead, cpu.TwinTime, cpu.InvalidateTime, cpu.LockTime)
	fmt.Printf("  diff=%.1f GB/s apply=%.1f GB/s copy=%.1f GB/s\n",
		cpu.DiffBytesPerSec/1e9, cpu.ApplyBytesPerSec/1e9, cpu.CopyBytesPerSec/1e9)
	hw := vtime.DefaultHW
	fmt.Println("hardware baseline model (Pthreads threads):")
	fmt.Printf("  flop=%v access=%v lock=%v barrier=%v+%v/thread coherence-miss=%v\n",
		hw.FlopTime, hw.AccessTime, hw.LockTime, hw.BarrierBase, hw.BarrierPerThread, hw.CoherenceMiss)
	fmt.Println()

	fmt.Println("experiments (regenerate with samhita-bench):")
	fmt.Println("  figures:  ", bench.FigureIDs())
	fmt.Println("  ablations:", bench.AblationNames())
}
