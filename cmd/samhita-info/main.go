// Command samhita-info prints the reproduction's full configuration
// surface: the default geometry, the scale-out topology knobs (server
// shards, manager shards, manager replicas), the tiered page store and
// snapshot/fork verbs, the cost-model presets, and the experiment
// index — a quick orientation for someone exploring the repository.
package main

import (
	"fmt"

	samhita "repro"
	"repro/internal/bench"
	"repro/internal/vtime"
)

func main() {
	cfg := samhita.DefaultConfig()
	fmt.Println("Samhita / RegC reproduction — configuration")
	fmt.Println()

	fmt.Println("address space and caching:")
	fmt.Printf("  geometry: %d B pages, %d pages/line (%d B lines), %d memory server(s), striped=%v\n",
		cfg.Geo.PageSize, cfg.Geo.LinePages, cfg.Geo.LineSize(), cfg.Geo.NumServers, cfg.Geo.Striped)
	fmt.Printf("  cache:    %d lines/thread, prefetch=%v (depth %d = one line ahead)\n",
		cfg.CacheLines, cfg.Prefetch, cfg.PrefetchDepth)
	fmt.Printf("  alloc:    arena chunk %d KiB, striping threshold %d KiB, %d threads/node\n",
		cfg.ArenaChunk/1024, cfg.StripeMin/1024, cfg.ThreadsPerNode)
	fmt.Println()

	fmt.Println("scale-out topology (defaults; raise via Config or CLI flags):")
	fmt.Printf("  server shards:    %d per memory server  (-server-shards; line-granular page shards, concurrent service)\n", norm(cfg.ServerShards))
	fmt.Printf("  manager shards:   %d sync home(s)       (-manager-shards; locks/barriers/conds spread by id)\n", norm(cfg.ManagerShards))
	fmt.Printf("  manager replicas: %d                    (-manager-replicas; consensus log, kill-survivable failover)\n", norm(cfg.ManagerReplicas))
	fmt.Printf("  data planes:      element accessors + bulk span accessors (F64Span; coalesced store records)\n")
	fmt.Printf("  fine-grain RegC:  %v (DisableFineGrain ablates to page-grained LRC)\n", !cfg.DisableFineGrain)
	fmt.Println()

	fmt.Println("tiered page store (off by default; -hot-bytes enables):")
	fmt.Printf("  hot budget:  %d B/server (0 = untiered; pages past the LRU budget demote word-run compressed)\n", cfg.HotBytes)
	fmt.Printf("  cold preset: %q (default cold-nvme)\n", cfg.ColdPreset)
	for _, m := range []vtime.TierModel{vtime.ColdNVMe, vtime.ColdRemote} {
		fmt.Printf("    %-12s move latency=%-8v bw=%.1f GB/s\n", m.Name, m.Latency, m.BytesPerSec/1e9)
	}
	fmt.Println()

	fmt.Println("snapshot/fork verbs (thread API):")
	fmt.Println("  SnapshotAS(base, npages) seals the range's page versions behind a refcounted snapshot id;")
	fmt.Println("  ForkAS(snap) maps a fresh O(1) copy-on-write range over the sealed frames (private copy on")
	fmt.Println("  first write). Exercised by the forkstorm workload (samhita-bench -forks N).")
	fmt.Println()

	fmt.Println("interconnect presets:")
	for _, l := range []vtime.LinkModel{vtime.QDRInfiniBand, vtime.PCIeSCIF, vtime.IntraNode} {
		fmt.Printf("  %-11s latency=%-7v bw=%.1f GB/s send-ovh=%v svc=%v\n",
			l.Name, l.Latency, l.BytesPerSec/1e9, l.SendOverhead, l.ServiceTime)
	}
	fmt.Println()

	cpu := vtime.DefaultCPU
	fmt.Println("compute cost model (Samhita threads):")
	fmt.Printf("  flop=%v access=%v fault=%v twin=%v invalidate=%v lock=%v\n",
		cpu.FlopTime, cpu.AccessTime, cpu.FaultOverhead, cpu.TwinTime, cpu.InvalidateTime, cpu.LockTime)
	fmt.Printf("  diff=%.1f GB/s apply=%.1f GB/s copy=%.1f GB/s\n",
		cpu.DiffBytesPerSec/1e9, cpu.ApplyBytesPerSec/1e9, cpu.CopyBytesPerSec/1e9)
	hw := vtime.DefaultHW
	fmt.Println("hardware baseline model (Pthreads threads):")
	fmt.Printf("  flop=%v access=%v lock=%v barrier=%v+%v/thread coherence-miss=%v\n",
		hw.FlopTime, hw.AccessTime, hw.LockTime, hw.BarrierBase, hw.BarrierPerThread, hw.CoherenceMiss)
	fmt.Println()

	fmt.Println("robustness (off by default; see samhita-micro/-bench flags):")
	fmt.Println("  retry policy + fault injection (-faults), warm-standby memory servers with heartbeat")
	fmt.Println("  liveness (-standby), replicated manager failover (-manager-replicas).")
	fmt.Println()

	fmt.Println("experiments (regenerate with samhita-bench):")
	fmt.Println("  figures:  ", bench.FigureIDs())
	fmt.Println("  ablations:", bench.AblationNames())
	fmt.Println("  workloads: kv (open-loop), pagerank (pull), forkstorm (storm); see samhita-bench -json")
}

// norm maps a zero topology knob to its effective count of 1.
func norm(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
