// Command samhita-conform fuzzes the DSM's consistency contract: it
// generates random data-race-free programs, runs them on Samhita under
// randomized runtime configurations, and checks every observed value
// against a sequential model. Any violation is a consistency bug.
//
// Usage:
//
//	samhita-conform -runs 200          # 200 random (program, config) pairs
//	samhita-conform -seed 42 -v        # replay one seed with details
//	samhita-conform -runs 50 -faults   # chaos mode: same check under
//	                                   # injected drops/delays/partitions
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/scl"
)

func main() {
	var (
		runs    = flag.Int("runs", 100, "number of random (program, config) pairs")
		seed    = flag.Int64("seed", -1, "replay a single seed instead of sweeping")
		verbose = flag.Bool("v", false, "print every program/config")

		faults     = flag.Bool("faults", false, "inject transport faults, masked by retries, during every run")
		faultDrop  = flag.Float64("fault-drop", 0.15, "per-attempt drop probability")
		faultDelay = flag.Float64("fault-delay", 0.05, "per-attempt delay probability")
		faultDup   = flag.Float64("fault-dup", 0.05, "duplicate-response probability")
	)
	flag.Parse()

	seeds := make([]int64, 0, *runs)
	if *seed >= 0 {
		seeds = append(seeds, *seed)
	} else {
		for i := 0; i < *runs; i++ {
			seeds = append(seeds, int64(i))
		}
	}

	start := time.Now()
	failures := 0
	var drops, retries int64
	for _, sd := range seeds {
		prog := conformance.Generate(sd)
		cfg := randomConfig(sd * 31)
		if *faults {
			// No per-attempt timeout: protocol calls park legitimately on
			// locks and barriers; connection death, not timers, unsticks
			// them. Drops are pre-send, so retries stay exactly-once at
			// the server.
			cfg.Retry = &scl.RetryPolicy{
				MaxAttempts: 10,
				Backoff:     50 * time.Microsecond,
				BackoffCap:  2 * time.Millisecond,
			}
			cfg.Faults = faultnet.New(faultnet.Config{
				Seed:       sd*101 + 7,
				DropProb:   *faultDrop,
				DelayProb:  *faultDelay,
				MaxDelay:   200 * time.Microsecond,
				DupProb:    *faultDup,
				Partitions: []faultnet.Partition{{Node: 10, After: 20, Len: 5}},
			})
		}
		if *verbose {
			fmt.Printf("seed %d: threads=%d rounds=%d slots=%d accums=%d locks=%d | lines=%d cache=%d servers=%d prefetch=%v finegrain=%v\n",
				sd, prog.Threads, prog.Rounds, prog.Slots, prog.Accums, prog.Locks,
				cfg.Geo.LinePages, cfg.CacheLines, cfg.Geo.NumServers, cfg.Prefetch, !cfg.DisableFineGrain)
		}
		rt, err := core.New(cfg)
		if err != nil {
			fatalf("seed %d: boot: %v", sd, err)
		}
		viols, err := conformance.Run(rt, prog)
		if nst := rt.NetStats(); nst != nil {
			drops += nst.InjectedDrops.Load()
			retries += nst.Retries.Load()
		}
		rt.Close()
		if err != nil {
			failures++
			fmt.Printf("seed %d: RUN ERROR: %v\n", sd, err)
			continue
		}
		if len(viols) > 0 {
			failures++
			fmt.Printf("seed %d: %d consistency violations, e.g. %s\n", sd, len(viols), viols[0])
		}
	}
	if *faults {
		fmt.Printf("\nfault injection: %d drops injected, %d retries absorbed\n", drops, retries)
	}
	fmt.Printf("\n%d/%d passed in %v\n", len(seeds)-failures, len(seeds), time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}

// randomConfig mirrors the conformance test's configuration fuzzing.
func randomConfig(seed int64) core.Config {
	rng := rand.New(rand.NewSource(seed))
	cfg := core.DefaultConfig()
	cfg.Geo.LinePages = []int{1, 2, 4, 8}[rng.Intn(4)]
	cfg.Geo.NumServers = 1 + rng.Intn(3)
	cfg.CacheLines = []int{2, 4, 16, 64, 1024}[rng.Intn(5)]
	cfg.Prefetch = rng.Intn(2) == 0
	cfg.DisableFineGrain = rng.Intn(4) == 0
	return cfg
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "samhita-conform: "+format+"\n", args...)
	os.Exit(1)
}
