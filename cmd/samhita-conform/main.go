// Command samhita-conform fuzzes the DSM's consistency contract: it
// generates random data-race-free programs, runs them on Samhita under
// randomized runtime configurations, and checks every observed value
// against a sequential model. Any violation is a consistency bug.
//
// Usage:
//
//	samhita-conform -runs 200          # 200 random (program, config) pairs
//	samhita-conform -seed 42 -v        # replay one seed with details
//	samhita-conform -runs 50 -faults   # chaos mode: same check under
//	                                   # injected drops/delays/partitions
//	samhita-conform -runs 50 -kill-server 0 -kill-after 10
//	                                   # crash a memory server mid-run;
//	                                   # failover must preserve the check
//	samhita-conform -runs 50 -manager-replicas 3 -kill-manager
//	                                   # crash the manager leader mid-run;
//	                                   # a replica takes over from the
//	                                   # replicated log, check must pass
//	samhita-conform -runs 25 -kv -manager-replicas 3 -kill-manager
//	                                   # serving-layer chaos: the KV service
//	                                   # must lose no acked write and keep
//	                                   # error responses bounded
//	samhita-conform -runs 25 -kv -kill-server 0
//	                                   # same, crashing a memory server
//	                                   # (warm standby takes over)
//	samhita-conform -runs 25 -forkstorm -hot-bytes 32768
//	                                   # snapshot/fork contract on tiered
//	                                   # servers: bit-exact sealed reads,
//	                                   # every fork accounted for
//	samhita-conform -runs 10 -forkstorm -kill-server 0 -manager-replicas 3 -kill-manager
//	                                   # fork-storm chaos: both kills
//	                                   # mid-storm, bounded errors
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/apps/forkstorm"
	"repro/internal/apps/kv"
	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/scl"
)

func main() {
	var (
		runs    = flag.Int("runs", 100, "number of random (program, config) pairs")
		seed    = flag.Int64("seed", -1, "replay a single seed instead of sweeping")
		verbose = flag.Bool("v", false, "print every program/config")

		faults     = flag.Bool("faults", false, "inject transport faults, masked by retries, during every run")
		faultDrop  = flag.Float64("fault-drop", 0.15, "per-attempt drop probability")
		faultDelay = flag.Float64("fault-delay", 0.05, "per-attempt delay probability")
		faultDup   = flag.Float64("fault-dup", 0.05, "duplicate-response probability")

		killServer  = flag.Int("kill-server", -1, "crash this memory-server index mid-run; boots warm standbys so the check must still pass")
		killAfter   = flag.Int("kill-after", 30, "send attempts to the victim before -kill-server fires")
		killManager = flag.Bool("kill-manager", false, "crash the manager leader mid-run; requires -manager-replicas > 1 for the check to survive")

		kvMode    = flag.Bool("kv", false, "check the DSM-backed KV service instead of random programs: no acked write may be lost and error responses must stay bounded")
		kvErrFrac = flag.Float64("kv-max-errors", 0.10, "highest tolerated fraction of KV requests answered with an error response under -kv")

		forkMode    = flag.Bool("forkstorm", false, "check the snapshot/fork contract instead of random programs: every fork accounted for, bit-exact sealed reads, bounded errors")
		forkErrFrac = flag.Float64("fork-max-errors", 0.25, "highest tolerated fraction of forks surfacing a Recover error under -forkstorm with faults")
		hotBytes    = flag.Int64("hot-bytes", 0, "per-server hot-set budget in bytes (0 = untiered); tiering must never change a checked value")

		shardsOverride = flag.Int("server-shards", 0, "force this many page shards per memory server (0 = fuzzed per seed)")
		mgrOverride    = flag.Int("manager-shards", 0, "force this many sync homes inside the manager (0 = fuzzed per seed)")
		mgrReplicas    = flag.Int("manager-replicas", 1, "replicate the manager behind a consensus log across this many replicas")
	)
	flag.Parse()

	seeds := make([]int64, 0, *runs)
	if *seed >= 0 {
		seeds = append(seeds, *seed)
	} else {
		for i := 0; i < *runs; i++ {
			seeds = append(seeds, int64(i))
		}
	}

	start := time.Now()
	failures := 0
	var drops, retries, kills, failovers, mgrFailovers, mgrElections int64
	for _, sd := range seeds {
		prog := conformance.Generate(sd)
		cfg := randomConfig(sd * 31)
		if *shardsOverride > 0 {
			cfg.ServerShards = *shardsOverride
		}
		if *mgrOverride > 0 {
			cfg.ManagerShards = *mgrOverride
		}
		if *mgrReplicas > 1 {
			cfg.ManagerReplicas = *mgrReplicas
		}
		cfg.HotBytes = *hotBytes
		if *forkMode {
			// The storm allocates small images; stripe them anyway so the
			// snapshot verbs (striped-zone only) accept them and the forks
			// spread across every server.
			cfg.StripeMin = 4096
		}
		if *faults || *killServer >= 0 || *killManager {
			// No per-attempt timeout: protocol calls park legitimately on
			// locks and barriers; connection death, not timers, unsticks
			// them. Drops are pre-send, so retries stay exactly-once at
			// the server.
			cfg.Retry = &scl.RetryPolicy{
				MaxAttempts: 10,
				Backoff:     50 * time.Microsecond,
				BackoffCap:  2 * time.Millisecond,
			}
			fc := faultnet.Config{Seed: sd*101 + 7}
			if *faults {
				fc.DropProb = *faultDrop
				fc.DelayProb = *faultDelay
				fc.MaxDelay = 200 * time.Microsecond
				fc.DupProb = *faultDup
				fc.Partitions = []faultnet.Partition{{Node: 10, After: 20, Len: 5}}
			}
			if *killServer >= 0 {
				if *killServer >= cfg.Geo.NumServers {
					cfg.Geo.NumServers = *killServer + 1
				}
				fc.Kills = []faultnet.Kill{{
					Node:  core.ServerNode(*killServer),
					After: *killAfter,
				}}
				// Warm standbys + heartbeat membership: the killed
				// primary fails over and the consistency contract must
				// hold regardless.
				cfg.Liveness = &core.LivenessConfig{Standby: true}
			}
			if *killManager {
				// Crash the leader once real sync traffic has reached it;
				// with replicas the promoted follower replays the log and
				// the check must still pass. A generous lease keeps the
				// failover stall from fencing live threads.
				fc.Kills = append(fc.Kills, faultnet.Kill{
					Node:  core.ManagerNode(),
					After: *killAfter,
				})
				if cfg.Liveness == nil {
					cfg.Liveness = &core.LivenessConfig{}
				}
				if cfg.Liveness.MissedBeats < 25 {
					cfg.Liveness.MissedBeats = 25
				}
			}
			cfg.Faults = faultnet.New(fc)
		}
		if *verbose {
			fmt.Printf("seed %d: threads=%d rounds=%d slots=%d accums=%d locks=%d | lines=%d cache=%d servers=%d prefetch=%v finegrain=%v\n",
				sd, prog.Threads, prog.Rounds, prog.Slots, prog.Accums, prog.Locks,
				cfg.Geo.LinePages, cfg.CacheLines, cfg.Geo.NumServers, cfg.Prefetch, !cfg.DisableFineGrain)
		}
		rt, err := core.New(cfg)
		if err != nil {
			fatalf("seed %d: boot: %v", sd, err)
		}
		var viols []conformance.Violation
		if *forkMode {
			// The snapshot/fork check: a sealed image dirtied by its parent
			// while forks read it bit-exactly, under the same fault schedule
			// as above. The error cap only binds when faults are injected;
			// clean runs must not error at all.
			frac := 0.0
			if *faults || *killServer >= 0 || *killManager {
				frac = *forkErrFrac
			}
			prm := forkstorm.Params{ImageBytes: 64 << 10, Forks: 24, ReadsPerFork: 3, WritesPerFork: 1, Seed: uint64(sd) + 1}
			viols, err = conformance.ForkStormCheck(rt, prog.Threads, prm, frac)
		} else if *kvMode {
			// The serving-layer check: per-seed request stream against a
			// fixed keyspace, with the same fault schedule as above. The
			// error cap only binds when faults are injected; clean runs
			// must not error at all.
			frac := 0.0
			if *faults || *killServer >= 0 || *killManager {
				frac = *kvErrFrac
			}
			prm := kv.Params{Buckets: 32, Keys: 256, Ops: 32, Seed: uint64(sd) + 1}
			viols, err = conformance.KVCheck(rt, prog.Threads, prm, frac)
		} else {
			viols, err = conformance.Run(rt, prog)
		}
		if nst := rt.NetStats(); nst != nil {
			drops += nst.InjectedDrops.Load()
			retries += nst.Retries.Load()
			kills += nst.InjectedKills.Load()
		}
		if live := rt.Liveness(); live != nil {
			failovers += live.Failovers.Load()
			mgrFailovers += live.MgrFailovers.Load()
			mgrElections += live.MgrElections.Load()
		}
		rt.Close()
		if err != nil {
			failures++
			fmt.Printf("seed %d: RUN ERROR: %v\n", sd, err)
			continue
		}
		if len(viols) > 0 {
			failures++
			fmt.Printf("seed %d: %d consistency violations, e.g. %s\n", sd, len(viols), viols[0])
		}
	}
	if *faults || *killServer >= 0 || *killManager {
		fmt.Printf("\nfault injection: %d drops injected, %d retries absorbed, %d kills, %d failovers\n",
			drops, retries, kills, failovers)
	}
	if *killManager {
		fmt.Printf("manager replication: %d leader failovers, %d elections\n", mgrFailovers, mgrElections)
	}
	fmt.Printf("\n%d/%d passed in %v\n", len(seeds)-failures, len(seeds), time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}

// randomConfig mirrors the conformance test's configuration fuzzing.
func randomConfig(seed int64) core.Config {
	rng := rand.New(rand.NewSource(seed))
	cfg := core.DefaultConfig()
	cfg.Geo.LinePages = []int{1, 2, 4, 8}[rng.Intn(4)]
	cfg.Geo.NumServers = 1 + rng.Intn(3)
	cfg.CacheLines = []int{2, 4, 16, 64, 1024}[rng.Intn(5)]
	cfg.Prefetch = rng.Intn(2) == 0
	cfg.PrefetchDepth = rng.Intn(4) // 0 = one line ahead; up to 3 ahead
	cfg.DisableFineGrain = rng.Intn(4) == 0
	cfg.ServerShards = []int{1, 2, 4}[rng.Intn(3)]
	cfg.ManagerShards = []int{1, 2, 4}[rng.Intn(3)]
	return cfg
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "samhita-conform: "+format+"\n", args...)
	os.Exit(1)
}
