// Command samhita-micro runs one configuration of the paper's
// micro-benchmark (Figure 2) on either backend and prints the
// measurement record: per-thread compute and synchronization time plus
// the protocol event counters that explain them.
//
// Usage:
//
//	samhita-micro -backend samhita -p 16 -mode strided -M 10 -S 4
//	samhita-micro -backend pthreads -p 8 -mode local -M 100
//	samhita-micro -p 8 -faults                         # transport chaos, masked by retries
//	samhita-micro -servers 2 -standby -kill-server 1   # crash a memory server; standby failover
package main

import (
	"flag"
	"fmt"
	"os"

	samhita "repro"
	"repro/internal/apps/kernels"
)

func main() {
	var (
		backend   = flag.String("backend", "samhita", "samhita or pthreads")
		p         = flag.Int("p", 8, "compute threads")
		mode      = flag.String("mode", "local", "allocation mode: local, global, strided, random")
		n         = flag.Int("N", 10, "outer iterations")
		m         = flag.Int("M", 10, "inner iterations")
		s         = flag.Int("S", 2, "rows per thread")
		bw        = flag.Int("B", 256, "doubles per row")
		servers   = flag.Int("servers", 1, "memory servers (samhita)")
		shards    = flag.Int("server-shards", 1, "page shards per memory server (samhita)")
		mgrShards = flag.Int("manager-shards", 1, "sync homes inside the manager (samhita)")
		mgrReps   = flag.Int("manager-replicas", 1, "manager replicas behind the consensus log (samhita; 1 = unreplicated)")
		hotBytes  = flag.Int64("hot-bytes", 0, "per-server hot-set budget in bytes; pages past it demote compressed to the cold tier (0 = untiered; samhita)")
		coldTier  = flag.String("cold-preset", "", "cold-tier cost model: cold-nvme (default) or cold-remote (samhita)")
		depth     = flag.Int("prefetch-depth", 0, "lines of anticipatory paging per miss (0 = one line ahead; samhita)")
		link      = flag.String("link", "qdr-ib", "fabric: qdr-ib, pcie-scif, intra-node")
		transport = flag.String("transport", "sim", "sim (virtual fabric) or tcp (real loopback sockets)")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON file of the run")

		faults     = flag.Bool("faults", false, "inject transport faults (drops, delays, dup responses) masked by retries")
		faultSeed  = flag.Int64("fault-seed", 1, "fault schedule seed")
		faultDrop  = flag.Float64("fault-drop", 0.10, "per-attempt drop probability")
		faultDelay = flag.Float64("fault-delay", 0.05, "per-attempt delay probability")
		faultDup   = flag.Float64("fault-dup", 0.02, "duplicate-response probability")

		standby    = flag.Bool("standby", false, "boot warm-standby memory servers with heartbeat liveness (samhita)")
		killServer = flag.Int("kill-server", -1, "crash memory server with this index mid-run (requires -standby to survive)")
		killAfter  = flag.Int("kill-after", 50, "send attempts to the victim before -kill-server fires")
	)
	flag.Parse()

	var allocMode kernels.AllocMode
	switch *mode {
	case "local":
		allocMode = kernels.AllocLocal
	case "global":
		allocMode = kernels.AllocGlobal
	case "strided":
		allocMode = kernels.AllocStrided
	case "random":
		allocMode = kernels.AllocRandom
	default:
		fatalf("unknown mode %q", *mode)
	}

	var collector *samhita.TraceCollector
	var netStats func() *samhita.NetStats
	var tierStats func() *samhita.TierStats
	var liveStats, replStats func() *samhita.LivenessStats
	var v samhita.VM
	switch *backend {
	case "samhita":
		cfg := samhita.DefaultConfig()
		cfg.Geo.NumServers = *servers
		cfg.PrefetchDepth = *depth
		cfg.ServerShards = *shards
		cfg.ManagerShards = *mgrShards
		cfg.ManagerReplicas = *mgrReps
		cfg.HotBytes = *hotBytes
		cfg.ColdPreset = *coldTier
		switch *link {
		case "qdr-ib":
			cfg.Link = samhita.QDRInfiniBand
		case "pcie-scif":
			cfg.Link = samhita.PCIeSCIF
		case "intra-node":
			cfg.Link = samhita.IntraNode
		default:
			fatalf("unknown link %q", *link)
		}
		switch *transport {
		case "sim":
		case "tcp":
			cfg.Transport = samhita.NewTCPTransport(cfg.Link)
		default:
			fatalf("unknown transport %q", *transport)
		}
		if *traceOut != "" {
			collector = samhita.NewTraceCollector(0)
			cfg.Trace = collector
		}
		if *faults || *killServer >= 0 {
			policy := samhita.DefaultRetryPolicy
			cfg.Retry = &policy
			fc := samhita.FaultConfig{Seed: *faultSeed}
			if *faults {
				fc.DropProb = *faultDrop
				fc.DelayProb = *faultDelay
				fc.DupProb = *faultDup
			}
			if *killServer >= 0 {
				if *killServer >= *servers {
					fatalf("-kill-server %d out of range (have %d servers)", *killServer, *servers)
				}
				fc.Kills = []samhita.FaultKill{{
					Node:  samhita.ServerNode(*killServer),
					After: *killAfter,
				}}
			}
			cfg.Faults = samhita.NewFaultInjector(fc)
		}
		if *standby {
			cfg.Liveness = &samhita.LivenessConfig{Standby: true}
			if cfg.Retry == nil {
				policy := samhita.DefaultRetryPolicy
				cfg.Retry = &policy
			}
		}
		rt, err := samhita.New(cfg)
		if err != nil {
			fatalf("boot: %v", err)
		}
		defer rt.Close()
		netStats = rt.NetStats
		if *hotBytes > 0 {
			tierStats = rt.TierStats
		}
		liveStats = rt.Liveness
		replStats = rt.ReplLiveness
		v = rt
	case "pthreads":
		v = samhita.NewPthreads(samhita.PthreadsConfig{MaxCores: *p})
	default:
		fatalf("unknown backend %q", *backend)
	}

	prm := kernels.MicroParams{N: *n, M: *m, S: *s, B: *bw, Mode: allocMode}
	res, err := kernels.RunMicro(v, *p, prm)
	if err != nil {
		fatalf("run: %v", err)
	}

	fmt.Printf("micro-benchmark (%s), P=%d mode=%s N=%d M=%d S=%d B=%d\n",
		v.Name(), *p, allocMode, *n, *m, *s, *bw)
	fmt.Printf("gsum = %.6f (analytic %.6f)\n", res.GSum, res.Expected)
	fmt.Printf("compute time (per thread, max): %v\n", res.Run.MaxComputeTime())
	fmt.Printf("sync time    (per thread, max): %v\n", res.Run.MaxSyncTime())
	fmt.Print(res.Run.Summary())
	if netStats != nil {
		if nst := netStats(); nst != nil {
			fmt.Println(nst.Summary())
		}
	}
	if tierStats != nil {
		if ts := tierStats(); ts != nil {
			fmt.Println(ts.Summary())
		}
	}
	if liveStats != nil {
		if live := liveStats(); live != nil {
			fmt.Println(live.Summary())
		} else if repl := replStats(); repl != nil {
			// Replicated manager on a clean run: the consensus-log
			// counters live in a runtime-private collector.
			fmt.Println(repl.Summary())
		}
	}
	if collector != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("trace file: %v", err)
		}
		defer f.Close()
		if err := collector.WriteChromeTrace(f); err != nil {
			fatalf("trace write: %v", err)
		}
		fmt.Printf("\ntrace (%d events) written to %s; open in chrome://tracing\n", collector.Len(), *traceOut)
		fmt.Print(collector.Summary())
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "samhita-micro: "+format+"\n", args...)
	os.Exit(1)
}
