package pagecache

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// fakeBackend is an in-memory home: it serves zero-filled lines overlaid
// with whatever diffs have been flushed to it, and records the calls the
// cache makes.
type fakeBackend struct {
	geo layout.Geometry

	home map[layout.PageID][]byte

	fetchCalls    []layout.LineID
	combinedCalls [][]layout.LineID
	combinedPages [][]layout.PageID
	fetchNeeds    [][]proto.PageNeed
	prefetchCalls []layout.LineID
	flushCalls    int
	flushedDiffs  []proto.PageDiff

	fetchCost    vtime.Time
	prefetchCost vtime.Time
	noPrefetch   bool
}

func newFakeBackend(geo layout.Geometry) *fakeBackend {
	return &fakeBackend{
		geo:          geo,
		home:         make(map[layout.PageID][]byte),
		fetchCost:    10_000,
		prefetchCost: 10_000,
	}
}

func (f *fakeBackend) page(p layout.PageID) []byte {
	if b, ok := f.home[p]; ok {
		return b
	}
	b := make([]byte, f.geo.PageSize)
	f.home[p] = b
	return b
}

func (f *fakeBackend) lineData(line layout.LineID) []byte {
	data := make([]byte, 0, f.geo.LineSize())
	first := f.geo.FirstPage(line)
	for i := 0; i < f.geo.LinePages; i++ {
		data = append(data, f.page(first+layout.PageID(i))...)
	}
	return data
}

func (f *fakeBackend) FetchLine(line layout.LineID, needs []proto.PageNeed, at vtime.Time) ([]byte, vtime.Time, error) {
	f.fetchCalls = append(f.fetchCalls, line)
	f.fetchNeeds = append(f.fetchNeeds, needs)
	return f.lineData(line), at + f.fetchCost, nil
}

func (f *fakeBackend) FetchLines(lines []layout.LineID, pages []layout.PageID, needs []proto.PageNeed, at vtime.Time) ([]byte, vtime.Time, error) {
	f.combinedCalls = append(f.combinedCalls, append([]layout.LineID(nil), lines...))
	f.combinedPages = append(f.combinedPages, append([]layout.PageID(nil), pages...))
	f.fetchNeeds = append(f.fetchNeeds, needs)
	data := make([]byte, 0, len(lines)*f.geo.LineSize()+len(pages)*f.geo.PageSize)
	for _, line := range lines {
		data = append(data, f.lineData(line)...)
	}
	for _, p := range pages {
		data = append(data, f.page(p)...)
	}
	return data, at + f.fetchCost, nil
}

func (f *fakeBackend) StartPrefetch(line layout.LineID, needs []proto.PageNeed, at vtime.Time, h *Handoff) <-chan PrefetchResult {
	if f.noPrefetch {
		return nil
	}
	f.prefetchCalls = append(f.prefetchCalls, line)
	ch := make(chan PrefetchResult, 1)
	ch <- PrefetchResult{Data: f.lineData(line), ReadyAt: at + f.prefetchCost}
	return ch
}

func (f *fakeBackend) FlushEvict(diffs []proto.PageDiff, at vtime.Time) (vtime.Time, error) {
	f.flushCalls++
	for _, d := range diffs {
		f.flushedDiffs = append(f.flushedDiffs, d)
		pg := f.page(layout.PageID(d.Page))
		for _, run := range d.Runs {
			copy(pg[run.Off:], run.Data)
		}
	}
	return at + 100, nil
}

func (f *fakeBackend) FlushSync(diffs []proto.PageDiff, at vtime.Time) (vtime.Time, error) {
	return f.FlushEvict(diffs, at)
}

func newCache(t *testing.T, geo layout.Geometry, be Backend, opts ...func(*Config)) (*Cache, *vtime.Clock, *stats.Thread) {
	t.Helper()
	clk := vtime.NewClock(0)
	st := &stats.Thread{ID: 1}
	cfg := Config{Geo: geo, CPU: vtime.DefaultCPU, Writer: 1, PrefetchDepth: 1}
	for _, o := range opts {
		o(&cfg)
	}
	return New(cfg, be, clk, st), clk, st
}

func TestReadMissThenHit(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, clk, st := newCache(t, geo, be)

	buf := make([]byte, 8)
	if err := c.Read(100, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 8)) {
		t.Fatalf("untouched memory not zero: %v", buf)
	}
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("misses=%d hits=%d", st.Misses, st.Hits)
	}
	if clk.Now() < be.fetchCost {
		t.Fatalf("clock %v did not include fetch cost", clk.Now())
	}
	if err := c.Read(200, buf); err != nil {
		t.Fatal(err)
	}
	if st.Hits != 1 {
		t.Fatalf("hits=%d after second read", st.Hits)
	}
	if len(be.fetchCalls) != 1 {
		t.Fatalf("fetch called %d times", len(be.fetchCalls))
	}
}

func TestWriteReadRoundTripAcrossPages(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, _ := newCache(t, geo, be)

	// Spans the page 0 -> page 1 boundary.
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	addr := layout.Addr(geo.PageSize - 4)
	if err := c.Write(addr, data, false); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := c.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %v want %v", got, data)
	}
	if c.DirtyPages() != 2 {
		t.Fatalf("DirtyPages = %d, want 2", c.DirtyPages())
	}
}

func TestTwinCreatedOncePerInterval(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, st := newCache(t, geo, be)

	for i := 0; i < 5; i++ {
		if err := c.Write(layout.Addr(i*8), []byte{byte(i)}, false); err != nil {
			t.Fatal(err)
		}
	}
	if st.Twins != 1 {
		t.Fatalf("Twins = %d, want 1", st.Twins)
	}
	rs := c.CollectRelease()
	if len(rs.Pages) != 1 {
		t.Fatalf("release pages = %v", rs.Pages)
	}
	// Next interval twins again.
	if err := c.Write(0, []byte{9}, false); err != nil {
		t.Fatal(err)
	}
	if st.Twins != 2 {
		t.Fatalf("Twins = %d after new interval", st.Twins)
	}
}

func TestCollectReleaseClaimsUnsharedPages(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, _ := newCache(t, geo, be)

	if err := c.Write(10, []byte{1, 2, 3}, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(layout.Addr(geo.PageSize+20), []byte{4}, false); err != nil {
		t.Fatal(err)
	}
	rs := c.CollectRelease()
	if rs.Tag.Writer != 1 || rs.Tag.Interval != 1 {
		t.Fatalf("tag %+v", rs.Tag)
	}
	if len(rs.Pages) != 2 {
		t.Fatalf("pages %v", rs.Pages)
	}
	// No other thread has touched these pages: the release ships no
	// bytes, only ownership claims; the diffs stay in the owned store.
	b := rs.ByHome[0]
	if b == nil || len(b.Diffs) != 0 || len(b.OwnedPages) != 2 {
		t.Fatalf("batch %+v", b)
	}
	if c.Owned().Len() != 2 || c.Owned().PayloadBytes() != 4 {
		t.Fatalf("owned store: %d pages, %d bytes", c.Owned().Len(), c.Owned().PayloadBytes())
	}
	if c.DirtyPages() != 0 {
		t.Fatalf("dirty pages survived release")
	}
	// Second release with no writes is empty.
	rs2 := c.CollectRelease()
	if len(rs2.Pages) != 0 || len(rs2.ByHome) != 0 {
		t.Fatalf("empty release not empty: %+v", rs2)
	}
}

func TestCollectReleaseShipsEagerDiffsForSharedPages(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, _ := newCache(t, geo, be)

	// A foreign notice marks page 0 shared.
	if err := c.ApplyNotices([]proto.Notice{{
		Seq: 1, Tag: proto.IntervalTag{Writer: 9, Interval: 1}, Pages: []uint64{0},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(10, []byte{1, 2, 3}, false); err != nil {
		t.Fatal(err)
	}
	rs := c.CollectRelease()
	b := rs.ByHome[0]
	if b == nil || len(b.Diffs) != 1 || len(b.OwnedPages) != 0 {
		t.Fatalf("batch %+v", b)
	}
	if got := b.Diffs[0].PayloadBytes(); got != 3 {
		t.Fatalf("eager payload %d", got)
	}
	if c.Owned().Len() != 0 {
		t.Fatal("shared page leaked into the owned store")
	}
}

func TestSilentStoresProduceNoTraffic(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, _ := newCache(t, geo, be)

	// Write the value that is already there (zero): twin is created but
	// the diff is empty, so the release carries nothing at all.
	if err := c.Write(10, []byte{0, 0, 0}, false); err != nil {
		t.Fatal(err)
	}
	rs := c.CollectRelease()
	if len(rs.Pages) != 0 || len(rs.ByHome) != 0 {
		t.Fatalf("silent store produced traffic: %+v", rs)
	}
}

func TestRegionWritesLogRecordsNotDiffs(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, st := newCache(t, geo, be)

	if err := c.Write(64, []byte{1, 2, 3, 4, 5, 6, 7, 8}, true); err != nil {
		t.Fatal(err)
	}
	if c.DirtyPages() != 0 {
		t.Fatal("region write dirtied the page")
	}
	if st.RecordsLogged != 1 || st.RecordBytes != 8 {
		t.Fatalf("records=%d bytes=%d", st.RecordsLogged, st.RecordBytes)
	}
	// Locally visible immediately.
	got := make([]byte, 8)
	if err := c.Read(64, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[7] != 8 {
		t.Fatalf("read-back %v", got)
	}
	rs := c.CollectRelease()
	if len(rs.Records) != 1 || rs.Records[0].Addr != 64 {
		t.Fatalf("release records %+v", rs.Records)
	}
	if len(rs.Pages) != 0 {
		t.Fatalf("region-only interval produced page notices: %v", rs.Pages)
	}
	if len(rs.ByHome[0].Records) != 1 {
		t.Fatalf("home batch records %+v", rs.ByHome[0])
	}
}

func TestApplyNoticesInvalidatesAndRefetches(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, st := newCache(t, geo, be)

	buf := make([]byte, 1)
	if err := c.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	tag := proto.IntervalTag{Writer: 2, Interval: 7}
	if err := c.ApplyNotices([]proto.Notice{{Seq: 1, Tag: tag, Pages: []uint64{0}}}); err != nil {
		t.Fatal(err)
	}
	if st.Invalidations != 1 {
		t.Fatalf("Invalidations = %d", st.Invalidations)
	}
	// The home now has new content; the refetch must quote the tag.
	be.page(0)[0] = 99
	if err := c.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 99 {
		t.Fatalf("stale read %d after invalidation", buf[0])
	}
	last := be.fetchNeeds[len(be.fetchNeeds)-1]
	if len(last) != 1 || last[0].Page != 0 || last[0].Tags[0] != tag {
		t.Fatalf("refetch needs %+v", last)
	}
}

func TestSelfNoticesSkipped(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, st := newCache(t, geo, be)
	buf := make([]byte, 1)
	if err := c.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	self := proto.IntervalTag{Writer: 1, Interval: 3}
	if err := c.ApplyNotices([]proto.Notice{{Seq: 5, Tag: self, Pages: []uint64{0}}}); err != nil {
		t.Fatal(err)
	}
	if st.Invalidations != 0 || st.NoticesReceived != 0 {
		t.Fatal("self notice was processed")
	}
}

func TestUpdateRecordsPatchInPlace(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, st := newCache(t, geo, be)
	buf := make([]byte, 2)
	if err := c.Read(500, buf); err != nil {
		t.Fatal(err)
	}
	fetchesBefore := len(be.fetchCalls)
	n := proto.Notice{
		Seq: 1, Tag: proto.IntervalTag{Writer: 2, Interval: 1},
		Records: []proto.StoreRecord{{Addr: 500, Data: []byte{7, 8}}},
	}
	if err := c.ApplyNotices([]proto.Notice{n}); err != nil {
		t.Fatal(err)
	}
	if st.UpdatesApplied != 1 {
		t.Fatalf("UpdatesApplied = %d", st.UpdatesApplied)
	}
	if err := c.Read(500, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 || buf[1] != 8 {
		t.Fatalf("update not visible: %v", buf)
	}
	// Crucially: no refetch happened (the fine-grain path's whole point).
	if len(be.fetchCalls) != fetchesBefore {
		t.Fatal("update record caused a page fetch")
	}
}

func TestUpdateRecordForNonResidentPageBecomesNeed(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, _ := newCache(t, geo, be)
	tag := proto.IntervalTag{Writer: 2, Interval: 1}
	n := proto.Notice{
		Seq: 1, Tag: tag,
		Records: []proto.StoreRecord{{Addr: 100, Data: []byte{1}}},
	}
	if err := c.ApplyNotices([]proto.Notice{n}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if err := c.Read(100, buf); err != nil {
		t.Fatal(err)
	}
	needs := be.fetchNeeds[len(be.fetchNeeds)-1]
	if len(needs) != 1 || needs[0].Tags[0] != tag {
		t.Fatalf("fetch needs %+v", needs)
	}
}

func TestEvictionPrefersDirtyAndFlushes(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	be.noPrefetch = true
	c, _, st := newCache(t, geo, be, func(cfg *Config) { cfg.CapacityLines = 2 })

	lineBytes := layout.Addr(geo.LineSize())
	// Line 0: dirty. Line 1: clean and more recently used.
	if err := c.Write(0, []byte{42}, false); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if err := c.Read(lineBytes, buf); err != nil {
		t.Fatal(err)
	}
	// Touch line 0 again so it is the MOST recent — the dirty bias must
	// still pick it over the older clean line 1.
	if err := c.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	// Fault line 2: one of the two must go; bias says dirty line 0.
	if err := c.Read(2*lineBytes, buf); err != nil {
		t.Fatal(err)
	}
	if st.Evictions != 1 || st.DirtyEvicts != 1 || be.flushCalls != 1 {
		t.Fatalf("evictions=%d dirty=%d flushes=%d", st.Evictions, st.DirtyEvicts, be.flushCalls)
	}
	if be.page(0)[0] != 42 {
		t.Fatal("evicted dirty byte did not reach home")
	}
	// The release must mention page 0 (peers still need to invalidate)
	// with an EmptyPages entry (bytes already home).
	rs := c.CollectRelease()
	if len(rs.Pages) != 1 || rs.Pages[0] != 0 {
		t.Fatalf("release pages %v", rs.Pages)
	}
	if b := rs.ByHome[0]; b == nil || len(b.EmptyPages) != 1 || b.EmptyPages[0] != 0 {
		t.Fatalf("EmptyPages missing: %+v", rs.ByHome[0])
	}
	// Re-reading page 0 refetches and sees the flushed value.
	if err := c.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 42 {
		t.Fatalf("reread after dirty eviction: %d", buf[0])
	}
}

func TestPrefetchAdjacentLine(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, st := newCache(t, geo, be)

	buf := make([]byte, 1)
	if err := c.Read(0, buf); err != nil { // miss line 0, prefetch line 1
		t.Fatal(err)
	}
	if len(be.prefetchCalls) != 1 || be.prefetchCalls[0] != 1 {
		t.Fatalf("prefetch calls %v", be.prefetchCalls)
	}
	if err := c.Read(layout.Addr(geo.LineSize()), buf); err != nil { // line 1: prefetched
		t.Fatal(err)
	}
	if st.PrefetchHits+st.PrefetchLate != 1 {
		t.Fatalf("prefetch hit/late = %d/%d", st.PrefetchHits, st.PrefetchLate)
	}
	if len(be.fetchCalls) != 1 {
		t.Fatalf("demand fetches %v (prefetch should have covered line 1)", be.fetchCalls)
	}
}

func TestPrefetchDisabled(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, _ := newCache(t, geo, be, func(cfg *Config) { cfg.PrefetchDepth = 0 })
	buf := make([]byte, 1)
	if err := c.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if len(be.prefetchCalls) != 0 {
		t.Fatal("prefetch issued while disabled")
	}
}

func TestInvalidateDirtyPageFlushesForMerge(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, _ := newCache(t, geo, be)

	if err := c.Write(8, []byte{5}, false); err != nil {
		t.Fatal(err)
	}
	// Another thread wrote elsewhere in page 0 and released.
	be.page(0)[100] = 77
	tag := proto.IntervalTag{Writer: 2, Interval: 1}
	if err := c.ApplyNotices([]proto.Notice{{Seq: 1, Tag: tag, Pages: []uint64{0}}}); err != nil {
		t.Fatal(err)
	}
	// Our write was flushed home (merge), page invalidated; refetch sees
	// both writers' bytes.
	buf := make([]byte, 1)
	if err := c.Read(8, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 5 {
		t.Fatalf("own write lost in merge: %d", buf[0])
	}
	if err := c.Read(100, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 77 {
		t.Fatalf("other writer's byte missing: %d", buf[0])
	}
	rs := c.CollectRelease()
	if len(rs.Pages) != 1 || rs.Pages[0] != 0 {
		t.Fatalf("release pages %v", rs.Pages)
	}
}

// Property: for random twin/current pairs, applying diffPage's output to
// the twin reconstructs the current page exactly.
func TestDiffPageReconstructionProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 512
		twin := make([]byte, size)
		rng.Read(twin)
		cur := append([]byte(nil), twin...)
		for i := 0; i < rng.Intn(20); i++ {
			cur[rng.Intn(size)] = byte(rng.Int())
		}
		d := diffPage(0, cur, twin)
		rebuilt := append([]byte(nil), twin...)
		for _, run := range d.Runs {
			copy(rebuilt[run.Off:], run.Data)
		}
		if !bytes.Equal(rebuilt, cur) {
			return false
		}
		// Diff is minimal: runs contain no bytes equal to the twin at
		// run boundaries.
		for _, run := range d.Runs {
			if run.Data[0] == twin[run.Off] || run.Data[len(run.Data)-1] == twin[int(run.Off)+len(run.Data)-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a random mix of reads and ordinary writes through the cache
// behaves exactly like a flat byte array.
func TestCacheMatchesFlatMemoryProperty(t *testing.T) {
	geo := layout.Geometry{PageSize: 256, LinePages: 2, NumServers: 1, Striped: true}
	prop := func(seed int64) bool {
		be := newFakeBackend(geo)
		clk := vtime.NewClock(0)
		st := &stats.Thread{}
		c := New(Config{Geo: geo, CPU: vtime.DefaultCPU, Writer: 1, PrefetchDepth: 1, CapacityLines: 4}, be, clk, st)
		rng := rand.New(rand.NewSource(seed))
		const span = 8192
		model := make([]byte, span)
		for op := 0; op < 400; op++ {
			addr := rng.Intn(span - 16)
			n := 1 + rng.Intn(16)
			if rng.Intn(2) == 0 {
				data := make([]byte, n)
				rng.Read(data)
				copy(model[addr:], data)
				if err := c.Write(layout.Addr(addr), data, false); err != nil {
					return false
				}
			} else {
				buf := make([]byte, n)
				if err := c.Read(layout.Addr(addr), buf); err != nil {
					return false
				}
				if !bytes.Equal(buf, model[addr:addr+n]) {
					return false
				}
			}
			if op%100 == 99 {
				// Exercise the release path mid-run, delivering the
				// batches to the home as the runtime would — including
				// an immediate pull of all lazily-owned diffs.
				rs := c.CollectRelease()
				var diffs []proto.PageDiff
				for _, b := range rs.ByHome {
					diffs = append(diffs, b.Diffs...)
					diffs = append(diffs, c.Owned().TakeMany(b.OwnedPages)...)
				}
				for _, d := range diffs {
					pg := be.page(layout.PageID(d.Page))
					for _, run := range d.Runs {
						copy(pg[run.Off:], run.Data)
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// A prefetched line whose pages accumulate new needs after the prefetch
// was issued must not be installed stale: the cache re-fetches on
// demand with the fresh tags.
func TestStalePrefetchIsRefetched(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, _ := newCache(t, geo, be)

	buf := make([]byte, 1)
	if err := c.Read(0, buf); err != nil { // miss line 0 -> prefetch line 1 issued
		t.Fatal(err)
	}
	if len(be.prefetchCalls) != 1 {
		t.Fatalf("prefetch calls: %v", be.prefetchCalls)
	}
	// A notice arrives for a page of the prefetched line AFTER the
	// prefetch was issued; the home also gets newer bytes.
	tag := proto.IntervalTag{Writer: 2, Interval: 1}
	pageOfLine1 := uint64(geo.LinePages) // first page of line 1
	if err := c.ApplyNotices([]proto.Notice{{Seq: 1, Tag: tag, Pages: []uint64{pageOfLine1}}}); err != nil {
		t.Fatal(err)
	}
	be.page(layout.PageID(pageOfLine1))[0] = 99

	if err := c.Read(layout.Addr(geo.LineSize()), buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 99 {
		t.Fatalf("stale prefetched data installed: %d", buf[0])
	}
	// The demand fetch must have quoted the new tag.
	last := be.fetchNeeds[len(be.fetchNeeds)-1]
	found := false
	for _, n := range last {
		for _, tg := range n.Tags {
			if tg == tag {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("refetch did not quote the new tag: %+v", last)
	}
}

// Reads and writes spanning several lines work and only fault the lines
// actually touched.
func TestMultiLineSpanningAccess(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	be.noPrefetch = true
	c, _, st := newCache(t, geo, be)

	span := geo.LineSize() + 100 // crosses exactly one line boundary
	data := make([]byte, span)
	for i := range data {
		data[i] = byte(i)
	}
	if err := c.Write(10, data, false); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, span)
	if err := c.Read(10, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-line round trip mismatch")
	}
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 lines", st.Misses)
	}
}

// Depth-2 anticipatory paging: one miss issues two prefetches, in line
// order; consuming them out of issue order still lands both, and
// unconsumed results drain as wasted.
func TestPrefetchDepthTwoOrdering(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, st := newCache(t, geo, be, func(cfg *Config) { cfg.PrefetchDepth = 2 })

	buf := make([]byte, 1)
	if err := c.Read(0, buf); err != nil { // miss line 0 -> prefetch 1, 2
		t.Fatal(err)
	}
	if len(be.prefetchCalls) != 2 || be.prefetchCalls[0] != 1 || be.prefetchCalls[1] != 2 {
		t.Fatalf("prefetch issue order %v, want [1 2]", be.prefetchCalls)
	}
	// Consume line 2 before line 1: landing order need not match issue
	// order. The line-2 fault issues the next window (3, 4); the line-1
	// fault then finds everything nearby resident or in flight.
	if err := c.Read(layout.Addr(2*geo.LineSize()), buf); err != nil {
		t.Fatal(err)
	}
	if err := c.Read(layout.Addr(1*geo.LineSize()), buf); err != nil {
		t.Fatal(err)
	}
	if got := st.PrefetchHits + st.PrefetchLate; got != 2 {
		t.Fatalf("prefetch hits+late = %d, want 2", got)
	}
	if len(be.fetchCalls) != 1 {
		t.Fatalf("demand fetches %v, want only the cold miss", be.fetchCalls)
	}
	if st.PrefetchIssued != int64(len(be.prefetchCalls)) {
		t.Fatalf("PrefetchIssued=%d but backend saw %d", st.PrefetchIssued, len(be.prefetchCalls))
	}
	// The window issued by the line-2 fault (lines 3 and 4) was never
	// consumed; draining must count every leftover exactly once.
	leftovers := int64(len(be.prefetchCalls)) - 2
	c.DrainPrefetches()
	if st.PrefetchWasted != leftovers {
		t.Fatalf("PrefetchWasted=%d after drain, want %d", st.PrefetchWasted, leftovers)
	}
	if st.PrefetchWasted+st.PrefetchHits+st.PrefetchLate != st.PrefetchIssued {
		t.Fatalf("prefetch accounting leak: issued=%d hit=%d late=%d wasted=%d",
			st.PrefetchIssued, st.PrefetchHits, st.PrefetchLate, st.PrefetchWasted)
	}
}

// The stride detector only overrides the sequential default when two
// consecutive inter-miss deltas agree.
func TestPrefetchStrideDetection(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, _ := newCache(t, geo, be)

	buf := make([]byte, 1)
	for _, line := range []int{0, 4, 8} {
		if err := c.Read(layout.Addr(line*geo.LineSize()), buf); err != nil {
			t.Fatal(err)
		}
	}
	// Miss 0: no history -> +1 (line 1). Miss 4: delta 4 seen once ->
	// still +1 (line 5). Miss 8: delta 4 repeated -> stride 4 (line 12).
	want := []layout.LineID{1, 5, 12}
	if len(be.prefetchCalls) != len(want) {
		t.Fatalf("prefetch calls %v, want %v", be.prefetchCalls, want)
	}
	for i := range want {
		if be.prefetchCalls[i] != want[i] {
			t.Fatalf("prefetch calls %v, want %v", be.prefetchCalls, want)
		}
	}
}

// Installing a prefetched line may evict a dirty line; the victim's
// bytes must flush home and a refault must return them — the eviction
// forced by a prefetch landing must not resurrect stale (pre-write)
// bytes.
func TestPrefetchInstallEvictionKeepsDirtyBytes(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, st := newCache(t, geo, be, func(cfg *Config) { cfg.CapacityLines = 2 })

	if err := c.Write(0, []byte{42}, false); err != nil { // line 0 dirty; prefetch 1
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if err := c.Read(layout.Addr(geo.LineSize()), buf); err != nil { // land prefetch 1
		t.Fatal(err)
	}
	// Landing line 2's prefetch fills the cache past capacity; the
	// eviction bias picks the dirty line 0 and flushes byte 42 home.
	if err := c.Read(layout.Addr(2*geo.LineSize()), buf); err != nil {
		t.Fatal(err)
	}
	if st.Evictions == 0 || st.DirtyEvicts == 0 {
		t.Fatalf("expected a dirty eviction: evictions=%d dirty=%d", st.Evictions, st.DirtyEvicts)
	}
	if err := c.Read(0, buf); err != nil { // refault line 0 from home
		t.Fatal(err)
	}
	if buf[0] != 42 {
		t.Fatalf("refault after prefetch-forced eviction read %d, want 42", buf[0])
	}
}

// A prefetch overtaken by an acquire: the result was issued before a
// write notice invalidated one of its pages, so installing it would
// serve bytes older than the acquire. The fault must discard it
// (counting it wasted), demand-fetch with the new needs quoted, and
// return the post-release bytes.
func TestPrefetchInvalidatedByAcquireDiscarded(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, st := newCache(t, geo, be)

	buf := make([]byte, 1)
	if err := c.Read(0, buf); err != nil { // miss line 0 -> prefetch line 1
		t.Fatal(err)
	}
	if len(be.prefetchCalls) != 1 || be.prefetchCalls[0] != 1 {
		t.Fatalf("prefetch calls %v", be.prefetchCalls)
	}
	// Another thread releases a write to a page of line 1 after our
	// prefetch snapshot was taken, and we acquire its notice.
	p := geo.FirstPage(1)
	be.page(p)[0] = 99
	tag := proto.IntervalTag{Writer: 2, Interval: 1}
	if err := c.ApplyNotices([]proto.Notice{{Seq: 1, Tag: tag, Pages: []uint64{uint64(p)}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Read(geo.PageBase(p), buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 99 {
		t.Fatalf("read %d through a stale prefetch, want the released 99", buf[0])
	}
	if st.PrefetchWasted != 1 {
		t.Fatalf("PrefetchWasted=%d, want 1 (stale result discarded)", st.PrefetchWasted)
	}
	// The replacement demand fetch must have quoted the new tag so a
	// real home would hold the reply for the release's diff.
	last := be.fetchNeeds[len(be.fetchNeeds)-1]
	found := false
	for _, need := range last {
		if layout.PageID(need.Page) != p {
			continue
		}
		for _, got := range need.Tags {
			if got == tag {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("demand refetch did not quote tag %+v: needs %+v", tag, last)
	}
}
