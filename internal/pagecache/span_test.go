package pagecache

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// ---------------------------------------------------------------------
// Span vs element equivalence.

// Property: the same random mix of accesses performed through the span
// entry points (ReadSpan/WriteSpan) and through the per-element entry
// points (Read/Write) leaves bit-identical memory and produces
// identical page diffs at release. The span plane changes costs and
// wire metadata, never bytes.
func TestSpanMatchesElementProperty(t *testing.T) {
	geo := layout.Geometry{PageSize: 256, LinePages: 2, NumServers: 1, Striped: true}
	prop := func(seed int64) bool {
		beS, beE := newFakeBackend(geo), newFakeBackend(geo)
		mkCache := func(be *fakeBackend) *Cache {
			return New(Config{Geo: geo, CPU: vtime.DefaultCPU, Writer: 1, PrefetchDepth: 1},
				be, vtime.NewClock(0), &stats.Thread{})
		}
		cs, ce := mkCache(beS), mkCache(beE)
		// Mark a page shared so releases ship eager diffs we can compare.
		notice := []proto.Notice{{Seq: 1, Tag: proto.IntervalTag{Writer: 9, Interval: 1}, Pages: []uint64{0, 1, 2, 3}}}
		if cs.ApplyNotices(notice) != nil || ce.ApplyNotices(notice) != nil {
			return false
		}

		rng := rand.New(rand.NewSource(seed))
		const span = 1024 // 4 pages, 2 lines
		model := make([]byte, span)
		for op := 0; op < 200; op++ {
			addr := rng.Intn(span - 48)
			n := 1 + rng.Intn(48) // straddles page and line boundaries freely
			if rng.Intn(2) == 0 {
				data := make([]byte, n)
				rng.Read(data)
				copy(model[addr:], data)
				if cs.WriteSpan(layout.Addr(addr), data, false) != nil {
					return false
				}
				// Element path: one Write per byte.
				for i, b := range data {
					if ce.Write(layout.Addr(addr+i), []byte{b}, false) != nil {
						return false
					}
				}
			} else {
				got := make([]byte, n)
				if cs.ReadSpan(layout.Addr(addr), got) != nil {
					return false
				}
				if !bytes.Equal(got, model[addr:addr+n]) {
					return false
				}
				one := make([]byte, 1)
				for i := 0; i < n; i++ {
					if ce.Read(layout.Addr(addr+i), one) != nil || one[0] != model[addr+i] {
						return false
					}
				}
			}
		}

		// Releases must carry the identical diffs (same pages, same runs,
		// same bytes) regardless of the data plane that produced them.
		collect := func(c *Cache) map[uint64]string {
			rs := c.CollectRelease()
			out := map[uint64]string{}
			for _, b := range rs.ByHome {
				for _, d := range b.Diffs {
					key := ""
					for _, run := range d.Runs {
						key += fmt.Sprintf("%d:%x;", run.Off, run.Data)
					}
					out[d.Page] = key
				}
			}
			return out
		}
		ds, de := collect(cs), collect(ce)
		if len(ds) != len(de) {
			return false
		}
		for p, k := range ds {
			if de[p] != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Fuzz the boundary geometry directly: spans that straddle page and
// line edges round-trip through a cache exactly like a flat array.
func TestSpanBoundaryStraddleFuzz(t *testing.T) {
	geo := layout.Geometry{PageSize: 128, LinePages: 2, NumServers: 1, Striped: true}
	be := newFakeBackend(geo)
	c, _, _ := newCache(t, geo, be)
	const span = 2048
	model := make([]byte, span)
	rng := rand.New(rand.NewSource(7))
	// Aim writes at the edges: for each boundary, a span starting just
	// before it with a length that crosses it.
	for _, edge := range []int{128, 256, 384, 512, 1024, 1536} {
		for _, back := range []int{1, 3, 8, 17} {
			addr := edge - back
			n := back + 1 + rng.Intn(64)
			if addr < 0 || addr+n > span {
				continue
			}
			data := make([]byte, n)
			rng.Read(data)
			copy(model[addr:], data)
			if err := c.WriteSpan(layout.Addr(addr), data, false); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, n)
			if err := c.ReadSpan(layout.Addr(addr), got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("edge %d back %d: immediate read-back mismatch", edge, back)
			}
		}
	}
	got := make([]byte, span)
	if err := c.ReadSpan(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("final memory diverged from the flat model")
	}
}

// ---------------------------------------------------------------------
// Record semantics.

// A consistency-region span logs ONE record per contiguous page chunk;
// the element path logs one per store but adjacent records coalesce at
// append time to the same thing. RecordBytes counts payload identically
// in every case.
func TestSpanRegionRecordPerPageChunk(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, st := newCache(t, geo, be)

	// A span crossing one page boundary: two chunks, two records.
	n := 64
	addr := layout.Addr(geo.PageSize - 24)
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i + 1)
	}
	if err := c.WriteSpan(addr, data, true); err != nil {
		t.Fatal(err)
	}
	if st.RecordsLogged != 2 || st.RecordBytes != int64(n) {
		t.Fatalf("records=%d bytes=%d, want 2/%d", st.RecordsLogged, st.RecordBytes, n)
	}
	rs := c.CollectRelease()
	if len(rs.Records) != 2 {
		t.Fatalf("release records %+v", rs.Records)
	}
	if rs.Records[0].Addr != uint64(addr) || len(rs.Records[0].Data) != 24 {
		t.Fatalf("first chunk %+v", rs.Records[0])
	}
	if rs.Records[1].Addr != uint64(geo.PageSize) || len(rs.Records[1].Data) != n-24 {
		t.Fatalf("second chunk %+v", rs.Records[1])
	}
}

func TestAdjacentRegionRecordsCoalesce(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, st := newCache(t, geo, be)

	for i := 0; i < 8; i++ {
		if err := c.Write(layout.Addr(64+8*i), []byte{1, 2, 3, 4, 5, 6, 7, 8}, true); err != nil {
			t.Fatal(err)
		}
	}
	if st.RecordsLogged != 1 || st.RecordBytes != 64 {
		t.Fatalf("records=%d bytes=%d, want 1/64", st.RecordsLogged, st.RecordBytes)
	}
	rs := c.CollectRelease()
	if len(rs.Records) != 1 || rs.Records[0].Addr != 64 || len(rs.Records[0].Data) != 64 {
		t.Fatalf("coalesced record %+v", rs.Records)
	}

	// Non-adjacent stores never coalesce.
	if err := c.Write(200, []byte{1}, true); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(300, []byte{2}, true); err != nil {
		t.Fatal(err)
	}
	if st.RecordsLogged != 3 {
		t.Fatalf("records=%d after gap stores, want 3", st.RecordsLogged)
	}
}

func TestNoRecordCoalesceAblation(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, st := newCache(t, geo, be, func(cfg *Config) { cfg.NoRecordCoalesce = true })

	for i := 0; i < 8; i++ {
		if err := c.Write(layout.Addr(64+8*i), []byte{1, 2, 3, 4, 5, 6, 7, 8}, true); err != nil {
			t.Fatal(err)
		}
	}
	if st.RecordsLogged != 8 || st.RecordBytes != 64 {
		t.Fatalf("records=%d bytes=%d, want 8/64 with coalescing off", st.RecordsLogged, st.RecordBytes)
	}
	if rs := c.CollectRelease(); len(rs.Records) != 8 {
		t.Fatalf("release records %d, want 8", len(rs.Records))
	}
}

// Coalescing must never bridge a page boundary: the home applies each
// record to one page.
func TestRecordCoalesceStopsAtPageBoundary(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, st := newCache(t, geo, be)

	addr := layout.Addr(geo.PageSize - 8)
	if err := c.Write(addr, []byte{1, 2, 3, 4, 5, 6, 7, 8}, true); err != nil {
		t.Fatal(err)
	}
	// Adjacent, but on the next page.
	if err := c.Write(addr+8, []byte{9, 10}, true); err != nil {
		t.Fatal(err)
	}
	if st.RecordsLogged != 2 {
		t.Fatalf("records=%d, want 2 (no cross-page coalesce)", st.RecordsLogged)
	}
}

// ---------------------------------------------------------------------
// Fused read-modify-write.

func TestReadModifyWrite8Ordinary(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, st := newCache(t, geo, be)

	add := func(addr layout.Addr, v byte) {
		if err := c.ReadModifyWrite8(addr, false, func(b []byte) { b[0] += v }); err != nil {
			t.Fatal(err)
		}
	}
	add(16, 3)
	add(16, 4)
	if st.Twins != 1 {
		t.Fatalf("Twins=%d, want 1 (twin once, reuse after)", st.Twins)
	}
	got := make([]byte, 1)
	if err := c.Read(16, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatalf("fused RMW result %d, want 7", got[0])
	}
	// The release diff carries the mutation (twin was taken BEFORE f).
	rs := c.CollectRelease()
	if len(rs.Pages) != 1 {
		t.Fatalf("release pages %v", rs.Pages)
	}
}

func TestReadModifyWrite8RegionLogsOneRecord(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, st := newCache(t, geo, be)

	if err := c.ReadModifyWrite8(32, true, func(b []byte) { b[0] = 5 }); err != nil {
		t.Fatal(err)
	}
	if st.RecordsLogged != 1 || st.RecordBytes != 8 {
		t.Fatalf("records=%d bytes=%d", st.RecordsLogged, st.RecordBytes)
	}
	if c.DirtyPages() != 0 {
		t.Fatal("region RMW dirtied the page")
	}
}

func TestReadModifyWrite8RejectsPageStraddle(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, _ := newCache(t, geo, be)
	if err := c.ReadModifyWrite8(layout.Addr(geo.PageSize-4), false, func([]byte) {}); err == nil {
		t.Fatal("page-straddling fused access not rejected")
	}
}

// ---------------------------------------------------------------------
// Partial staleness.

// An extent notice on a clean valid page narrows the invalidation: a
// read outside the extent stays a hit (no fetch), a read inside demotes
// and refetches the merged bytes, quoting the notice's tag.
func TestPartialStalenessHitOutsideExtent(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	be.noPrefetch = true
	c, _, st := newCache(t, geo, be)

	buf := make([]byte, 8)
	if err := c.ReadSpan(0, buf); err != nil { // page 0 resident
		t.Fatal(err)
	}
	fetches := len(be.fetchCalls)

	tag := proto.IntervalTag{Writer: 2, Interval: 1}
	pages := append([]uint64{0}, proto.PackSpanExtent(100, 10))
	if err := c.ApplyNotices([]proto.Notice{{Seq: 1, Tag: tag, Pages: pages}}); err != nil {
		t.Fatal(err)
	}
	if st.Invalidations != 1 || st.PartialInvals != 1 {
		t.Fatalf("invals=%d partial=%d", st.Invalidations, st.PartialInvals)
	}

	// Outside [100,110): still a hit.
	if err := c.ReadSpan(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := c.ReadSpan(110, buf); err != nil {
		t.Fatal(err)
	}
	if len(be.fetchCalls) != fetches {
		t.Fatalf("non-overlapping access fetched: %v", be.fetchCalls)
	}

	// Inside: demote + refetch, and the fetch quotes the tag.
	be.page(0)[104] = 42
	if err := c.ReadSpan(100, buf); err != nil {
		t.Fatal(err)
	}
	if buf[4] != 42 {
		t.Fatalf("stale byte served after overlapping access: %v", buf)
	}
	if len(be.fetchCalls)+len(be.combinedCalls) == fetches {
		t.Fatal("overlapping access did not refetch")
	}
	last := be.fetchNeeds[len(be.fetchNeeds)-1]
	found := false
	for _, need := range last {
		if need.Page != 0 {
			continue
		}
		for _, tg := range need.Tags {
			if tg == tag {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("refetch did not quote the extent notice's tag: %+v", last)
	}
}

// A dirty page with span-tracked written extents disjoint from the
// incoming extents keeps its dirty bytes with no flush; the next
// release still publishes them.
func TestPartialStalenessDirtyDisjointWriter(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	be.noPrefetch = true
	c, _, st := newCache(t, geo, be)

	mine := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := c.WriteSpan(0, mine, false); err != nil { // wext=[0,8)
		t.Fatal(err)
	}
	tag := proto.IntervalTag{Writer: 2, Interval: 1}
	pages := append([]uint64{0}, proto.PackSpanExtent(512, 16)) // disjoint
	if err := c.ApplyNotices([]proto.Notice{{Seq: 1, Tag: tag, Pages: pages}}); err != nil {
		t.Fatal(err)
	}
	if be.flushCalls != 0 {
		t.Fatal("disjoint extent notice flushed the dirty page")
	}
	if st.PartialInvals != 1 {
		t.Fatalf("PartialInvals=%d", st.PartialInvals)
	}
	// Our bytes are intact and the release still ships them.
	got := make([]byte, 8)
	if err := c.ReadSpan(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mine) {
		t.Fatalf("own dirty bytes lost: %v", got)
	}
	rs := c.CollectRelease()
	if len(rs.Pages) == 0 {
		t.Fatal("dirty page vanished from the release")
	}
}

// The same scenario but with overlapping extents: the cache must fall
// back to the legacy merge (flush own diff home, full invalidation).
func TestPartialStalenessDirtyOverlapFlushes(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	be.noPrefetch = true
	c, _, _ := newCache(t, geo, be)

	if err := c.WriteSpan(0, []byte{9, 9, 9, 9}, false); err != nil {
		t.Fatal(err)
	}
	tag := proto.IntervalTag{Writer: 2, Interval: 1}
	pages := append([]uint64{0}, proto.PackSpanExtent(2, 8)) // overlaps [0,4)
	if err := c.ApplyNotices([]proto.Notice{{Seq: 1, Tag: tag, Pages: pages}}); err != nil {
		t.Fatal(err)
	}
	if be.flushCalls != 1 {
		t.Fatalf("flushCalls=%d, want 1 (merge flush)", be.flushCalls)
	}
	// Own bytes reached home despite the full invalidation.
	if be.page(0)[0] != 9 {
		t.Fatal("merge flush lost own bytes")
	}
}

// A legacy (element) write downgrades extent tracking: the page's
// release publishes no extent words, so peers fully invalidate — wire
// behavior identical to the pre-span runtime.
func TestLegacyWriteSuppressesExtentWords(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, _ := newCache(t, geo, be)

	// Make the page shared so the release lists it.
	if err := c.ApplyNotices([]proto.Notice{{
		Seq: 1, Tag: proto.IntervalTag{Writer: 9, Interval: 1}, Pages: []uint64{0},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteSpan(0, []byte{1, 2, 3, 4}, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(100, []byte{5}, false); err != nil { // legacy store
		t.Fatal(err)
	}
	rs := c.CollectRelease()
	for _, w := range rs.Pages {
		if proto.IsSpanExtent(w) {
			t.Fatalf("extent word published after a legacy store: %v", rs.Pages)
		}
	}
}

// A pure span interval publishes extent words after the page word.
func TestSpanReleasePublishesExtentWords(t *testing.T) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	c, _, _ := newCache(t, geo, be)

	if err := c.ApplyNotices([]proto.Notice{{
		Seq: 1, Tag: proto.IntervalTag{Writer: 9, Interval: 1}, Pages: []uint64{0},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteSpan(16, []byte{1, 2, 3, 4, 5, 6, 7, 8}, false); err != nil {
		t.Fatal(err)
	}
	rs := c.CollectRelease()
	if len(rs.Pages) != 2 || rs.Pages[0] != 0 || !proto.IsSpanExtent(rs.Pages[1]) {
		t.Fatalf("release pages %v, want [page0 extent]", rs.Pages)
	}
	off, n := proto.SpanExtent(rs.Pages[1])
	if off != 16 || n != 8 {
		t.Fatalf("extent [%d,%d), want [16,24)", off, off+n)
	}
}

// ---------------------------------------------------------------------
// Word-wide diff.

// Property: the vectorized diffPage produces byte-for-byte the same
// runs as the byte-wise reference, for every size (including sizes not
// divisible by 8) and change pattern.
func TestDiffPageWordMatchesGeneric(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 1 + rng.Intn(600) // deliberately not 8-aligned
		twin := make([]byte, size)
		rng.Read(twin)
		cur := append([]byte(nil), twin...)
		switch rng.Intn(4) {
		case 0: // sparse single-byte flips
			for i := 0; i < rng.Intn(10); i++ {
				cur[rng.Intn(size)] ^= byte(1 + rng.Intn(255))
			}
		case 1: // one dense run
			lo := rng.Intn(size)
			hi := lo + 1 + rng.Intn(size-lo)
			rng.Read(cur[lo:hi])
		case 2: // everything changed
			for i := range cur {
				cur[i] ^= 0xFF
			}
		case 3: // nothing changed
		}
		a, b := diffPage(3, cur, twin), diffPageGeneric(3, cur, twin)
		if len(a.Runs) != len(b.Runs) {
			return false
		}
		for i := range a.Runs {
			if a.Runs[i].Off != b.Runs[i].Off || !bytes.Equal(a.Runs[i].Data, b.Runs[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Pinpoint the word-scan edge cases: runs starting/ending mid-word, at
// word boundaries, and in the sub-word tail.
func TestDiffPageWordEdges(t *testing.T) {
	size := 64
	for lo := 0; lo < size; lo++ {
		for n := 1; n <= 17 && lo+n <= size; n++ {
			twin := make([]byte, size)
			cur := make([]byte, size)
			for i := lo; i < lo+n; i++ {
				cur[i] = 0xAB
			}
			d := diffPage(0, cur, twin)
			if len(d.Runs) != 1 || int(d.Runs[0].Off) != lo || len(d.Runs[0].Data) != n {
				t.Fatalf("lo=%d n=%d: got runs %+v", lo, n, d.Runs)
			}
		}
	}
}

func BenchmarkDiffPageWord(b *testing.B)    { benchDiffPage(b, diffPage) }
func BenchmarkDiffPageGeneric(b *testing.B) { benchDiffPage(b, diffPageGeneric) }

func benchDiffPage(b *testing.B, fn func(uint64, []byte, []byte) proto.PageDiff) {
	rng := rand.New(rand.NewSource(1))
	twin := make([]byte, 4096)
	rng.Read(twin)
	cur := append([]byte(nil), twin...)
	// A realistic release: a handful of dirty runs on the page.
	for i := 0; i < 6; i++ {
		lo := rng.Intn(4000)
		rng.Read(cur[lo : lo+64])
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := fn(0, cur, twin)
		if len(d.Runs) == 0 {
			b.Fatal("no runs")
		}
	}
}

func BenchmarkSpanRead(b *testing.B)    { benchAccess(b, true) }
func BenchmarkElementRead(b *testing.B) { benchAccess(b, false) }

func benchAccess(b *testing.B, spans bool) {
	geo := layout.DefaultGeometry()
	be := newFakeBackend(geo)
	clk := vtime.NewClock(0)
	c := New(Config{Geo: geo, CPU: vtime.DefaultCPU, Writer: 1}, be, clk, &stats.Thread{})
	buf := make([]byte, 4096)
	if err := c.ReadSpan(0, buf); err != nil { // warm
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if spans {
			if err := c.ReadSpan(0, buf); err != nil {
				b.Fatal(err)
			}
		} else {
			for off := 0; off < 4096; off += 8 {
				if err := c.Read(layout.Addr(off), buf[off:off+8]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}
