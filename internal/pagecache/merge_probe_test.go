package pagecache

import (
	"reflect"
	"testing"
)

func TestMergeRangeProbe(t *testing.T) {
	rs := []byteRange{}
	rs = mergeRange(rs, 0, 8)
	rs = mergeRange(rs, 100, 108)
	rs = mergeRange(rs, 200, 208)
	t.Logf("before: %v cap=%d", rs, cap(rs))
	rs = mergeRange(rs, 50, 58)
	want := []byteRange{{0, 8}, {50, 58}, {100, 108}, {200, 208}}
	if !reflect.DeepEqual(rs, want) {
		t.Fatalf("got %v, want %v", rs, want)
	}
}
