package pagecache

import (
	"sync"

	"repro/internal/layout"
	"repro/internal/proto"
)

// OwnedStore retains the release-time diffs of lazily-owned pages — the
// single-writer optimization. A page that no other thread has touched
// costs its writer nothing at a release beyond the local diff: the
// bytes stay here, the home only records an ownership claim, and when
// some other thread eventually fetches the page the home pulls the
// retained diff on demand. For a workload like Jacobi, where each
// thread rewrites its whole block every iteration but only block
// boundaries are ever shared, this removes almost all release-time data
// movement — which is what lets the system scale past the memory
// server's ingest bandwidth.
//
// The store is shared between the owning thread (which deposits diffs
// at releases and withdraws them at evictions) and the thread's cache
// agent goroutine (which serves DiffPull requests from homes while the
// thread computes), so it is mutex-guarded.
//
// Diffs for one page accumulate across releases; they are kept as a
// byte overlay plus a dirty mask so that successive intervals merge and
// a pull returns one minimal run set.
type OwnedStore struct {
	mu       sync.Mutex
	pageSize int
	pages    map[layout.PageID]*ownedPage
}

type ownedPage struct {
	data []byte
	mask []bool
}

// NewOwnedStore creates a store for pages of the given size.
func NewOwnedStore(pageSize int) *OwnedStore {
	return &OwnedStore{pageSize: pageSize, pages: make(map[layout.PageID]*ownedPage)}
}

// Put merges the runs of one release-time diff into the page's retained
// overlay.
func (s *OwnedStore) Put(p layout.PageID, runs []proto.DiffRun) {
	if len(runs) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	op, ok := s.pages[p]
	if !ok {
		op = &ownedPage{data: make([]byte, s.pageSize), mask: make([]bool, s.pageSize)}
		s.pages[p] = op
	}
	for _, run := range runs {
		copy(op.data[run.Off:], run.Data)
		for i := 0; i < len(run.Data); i++ {
			op.mask[int(run.Off)+i] = true
		}
	}
}

// Take removes and returns the retained diff of one page, or nil if the
// store holds nothing for it.
func (s *OwnedStore) Take(p layout.PageID) []proto.DiffRun {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.takeLocked(p)
}

func (s *OwnedStore) takeLocked(p layout.PageID) []proto.DiffRun {
	op, ok := s.pages[p]
	if !ok {
		return nil
	}
	delete(s.pages, p)
	var runs []proto.DiffRun
	i := 0
	for i < len(op.mask) {
		if !op.mask[i] {
			i++
			continue
		}
		j := i + 1
		for j < len(op.mask) && op.mask[j] {
			j++
		}
		runs = append(runs, proto.DiffRun{Off: uint32(i), Data: append([]byte(nil), op.data[i:j]...)})
		i = j
	}
	return runs
}

// TakeMany removes and returns the retained diffs for the listed pages;
// pages with no retained data are omitted from the result.
func (s *OwnedStore) TakeMany(pages []uint64) []proto.PageDiff {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []proto.PageDiff
	for _, pu := range pages {
		if runs := s.takeLocked(layout.PageID(pu)); runs != nil {
			out = append(out, proto.PageDiff{Page: pu, Runs: runs})
		}
	}
	return out
}

// DrainAll removes and returns everything — used for the final flush
// when a thread retires, so homes become self-sufficient.
func (s *OwnedStore) DrainAll() []proto.PageDiff {
	s.mu.Lock()
	pages := make([]uint64, 0, len(s.pages))
	for p := range s.pages {
		pages = append(pages, uint64(p))
	}
	s.mu.Unlock()
	return s.TakeMany(pages)
}

// Len reports the number of pages with retained diffs.
func (s *OwnedStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// PayloadBytes reports the total retained dirty bytes (for stats).
func (s *OwnedStore) PayloadBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, op := range s.pages {
		for _, m := range op.mask {
			if m {
				n++
			}
		}
	}
	return n
}
