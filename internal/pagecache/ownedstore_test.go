package pagecache

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/layout"
	"repro/internal/proto"
)

func TestOwnedStorePutTakeRoundTrip(t *testing.T) {
	s := NewOwnedStore(256)
	s.Put(3, []proto.DiffRun{{Off: 10, Data: []byte{1, 2, 3}}})
	if s.Len() != 1 || s.PayloadBytes() != 3 {
		t.Fatalf("Len=%d Payload=%d", s.Len(), s.PayloadBytes())
	}
	runs := s.Take(3)
	if len(runs) != 1 || runs[0].Off != 10 || !bytes.Equal(runs[0].Data, []byte{1, 2, 3}) {
		t.Fatalf("Take = %+v", runs)
	}
	if s.Len() != 0 {
		t.Fatal("Take did not remove the entry")
	}
	if s.Take(3) != nil {
		t.Fatal("second Take returned data")
	}
}

func TestOwnedStoreMergesIntervals(t *testing.T) {
	s := NewOwnedStore(256)
	// Interval 1 writes [10,13); interval 2 overwrites [12,15).
	s.Put(1, []proto.DiffRun{{Off: 10, Data: []byte{1, 1, 1}}})
	s.Put(1, []proto.DiffRun{{Off: 12, Data: []byte{2, 2, 2}}})
	runs := s.Take(1)
	if len(runs) != 1 {
		t.Fatalf("merged runs = %+v", runs)
	}
	want := []byte{1, 1, 2, 2, 2}
	if runs[0].Off != 10 || !bytes.Equal(runs[0].Data, want) {
		t.Fatalf("merge = off %d data %v, want off 10 %v", runs[0].Off, runs[0].Data, want)
	}
}

func TestOwnedStoreDisjointRunsStaySplit(t *testing.T) {
	s := NewOwnedStore(256)
	s.Put(1, []proto.DiffRun{{Off: 0, Data: []byte{1}}, {Off: 100, Data: []byte{2}}})
	runs := s.Take(1)
	if len(runs) != 2 {
		t.Fatalf("runs = %+v", runs)
	}
}

func TestOwnedStoreEmptyPutIgnored(t *testing.T) {
	s := NewOwnedStore(256)
	s.Put(1, nil)
	if s.Len() != 0 {
		t.Fatal("empty Put created an entry")
	}
}

func TestOwnedStoreTakeManyAndDrain(t *testing.T) {
	s := NewOwnedStore(256)
	s.Put(1, []proto.DiffRun{{Off: 0, Data: []byte{1}}})
	s.Put(2, []proto.DiffRun{{Off: 0, Data: []byte{2}}})
	s.Put(3, []proto.DiffRun{{Off: 0, Data: []byte{3}}})
	got := s.TakeMany([]uint64{1, 9, 3})
	if len(got) != 2 {
		t.Fatalf("TakeMany = %+v", got)
	}
	rest := s.DrainAll()
	if len(rest) != 1 || rest[0].Page != 2 {
		t.Fatalf("DrainAll = %+v", rest)
	}
	if s.Len() != 0 {
		t.Fatal("store not empty after drain")
	}
}

func TestOwnedStoreConcurrentAccess(t *testing.T) {
	s := NewOwnedStore(4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := uint64(g*1000 + i%10)
				s.Put(layout.PageID(p), []proto.DiffRun{{Off: uint32(i % 100), Data: []byte{byte(i)}}})
				if i%3 == 0 {
					s.TakeMany([]uint64{p})
				}
			}
		}(g)
	}
	wg.Wait()
	s.DrainAll()
}

// Property: Put-then-Take reconstructs exactly the overlay of the runs
// in application order.
func TestOwnedStoreOverlayProperty(t *testing.T) {
	const pageSize = 512
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewOwnedStore(pageSize)
		model := make([]byte, pageSize)
		mask := make([]bool, pageSize)
		for i := 0; i < 20; i++ {
			n := 1 + rng.Intn(40)
			off := rng.Intn(pageSize - n)
			data := make([]byte, n)
			rng.Read(data)
			copy(model[off:], data)
			for j := 0; j < n; j++ {
				mask[off+j] = true
			}
			s.Put(7, []proto.DiffRun{{Off: uint32(off), Data: data}})
		}
		rebuilt := make([]byte, pageSize)
		rmask := make([]bool, pageSize)
		for _, run := range s.Take(7) {
			copy(rebuilt[run.Off:], run.Data)
			for j := range run.Data {
				rmask[int(run.Off)+j] = true
			}
		}
		for i := range mask {
			if mask[i] != rmask[i] {
				return false
			}
			if mask[i] && model[i] != rebuilt[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
