// Package pagecache implements the per-thread local software cache
// through which every Samhita compute thread accesses the shared global
// address space (Section II).
//
// In the measured system the cache is a region of the coprocessor's
// memory managed with mprotect: a protection fault pulls a multi-page
// cache line from the page's home memory server. Go cannot portably
// intercept page faults, so here every access goes through an explicit
// Read/Write call whose miss path performs the same protocol actions the
// SIGSEGV handler performs in the paper:
//
//   - demand-fetch the enclosing multi-page cache line from its home,
//   - asynchronously prefetch the next line (anticipatory paging),
//   - on the first write in an interval, snapshot the page into a twin
//     so a release can compute a byte diff (the multiple-writer
//     protocol's tolerance of false sharing),
//   - evict with a bias toward written pages when the cache fills,
//     flushing their diffs home mid-interval.
//
// The cache also implements the compute-thread side of regional
// consistency: CollectRelease gathers ordinary-region page diffs and
// consistency-region store records at a release point, and ApplyNotices
// consumes write notices at an acquire point — invalidating pages named
// by ordinary-region notices and patching fine-grained records in place.
package pagecache

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// Backend performs the communication the cache needs. It is implemented
// by the compute-thread runtime (package core) on top of SCL, and by
// in-memory fakes in tests.
type Backend interface {
	// FetchLine synchronously fetches one cache line from its home,
	// quoting the interval tags that must be applied first. It returns
	// the line bytes and the caller's virtual time when they are in
	// hand.
	FetchLine(line layout.LineID, needs []proto.PageNeed, at vtime.Time) ([]byte, vtime.Time, error)
	// FetchLines synchronously fetches several whole lines and/or
	// individual pages, all homed on the same server, in one combined
	// request (fetch combining). The returned bytes are the lines'
	// contents followed by the pages' contents, concatenated in request
	// order.
	FetchLines(lines []layout.LineID, pages []layout.PageID, needs []proto.PageNeed, at vtime.Time) ([]byte, vtime.Time, error)
	// StartPrefetch begins an asynchronous fetch of a line; the result
	// is delivered on the returned channel, and the helper goroutine
	// must call h.Done() immediately before sending it. A nil return
	// means the backend declines (prefetch disabled).
	StartPrefetch(line layout.LineID, needs []proto.PageNeed, at vtime.Time, h *Handoff) <-chan PrefetchResult
	// FlushEvict posts a mid-interval diff of evicted dirty pages to
	// their home. It is asynchronous; the returned time is the sender's
	// clock after the send overhead.
	FlushEvict(diffs []proto.PageDiff, at vtime.Time) (vtime.Time, error)
	// FlushSync is FlushEvict's acknowledged form: it returns only once
	// every home has applied the diffs. The snapshot path needs this —
	// transfer time grows with payload size, so a later small message
	// (the SealAS) could otherwise arrive before a large posted flush
	// and freeze pre-flush bytes.
	FlushSync(diffs []proto.PageDiff, at vtime.Time) (vtime.Time, error)
}

// PrefetchResult is the completion of an asynchronous line fetch.
type PrefetchResult struct {
	Data    []byte
	ReadyAt vtime.Time // virtual time the line is available to the thread
	Err     error
}

// Gate is the runnable-token ledger of a deterministically sequenced
// transport (simnet.Gate, structurally). The cache reports through it
// when the owning thread parks waiting for a prefetch result: the
// prefetch helper issues the matching wake credit before it delivers.
type Gate interface {
	Resume()
	Pause()
}

// nopGate is the Gate used when none is configured.
type nopGate struct{}

func (nopGate) Resume() {}
func (nopGate) Pause()  {}

// Handoff mediates the runnable-token transfer for one asynchronous
// fetch. A completed prefetch may sit unconsumed indefinitely, so the
// helper goroutine must NOT issue an unconditional wake credit (a
// floating credit would keep the sequencer from ever reaching
// quiescence): the credit is issued only when the consumer is already
// parked, and a consumer that arrives after completion never parks.
type Handoff struct {
	mu      sync.Mutex
	gate    Gate
	done    bool
	waiting bool
}

// Done is called by the backend's helper goroutine right before it
// delivers the result: a consumer already parked on the channel gets
// its wake credit here.
func (h *Handoff) Done() {
	h.mu.Lock()
	h.done = true
	if h.waiting {
		h.gate.Resume()
	}
	h.mu.Unlock()
}

// beginWait is called by the consumer before blocking on the result
// channel: if the helper has not delivered yet, the consumer parks
// (releases its runnable token) and Done will credit it.
func (h *Handoff) beginWait() {
	h.mu.Lock()
	if h.done {
		h.mu.Unlock()
		return // result is (about to be) in the channel; no park needed
	}
	h.waiting = true
	h.mu.Unlock()
	h.gate.Pause()
}

// Config parameterizes a cache.
type Config struct {
	Geo layout.Geometry
	CPU vtime.CPUModel
	// CapacityLines bounds the number of resident lines; 0 means a
	// generous default.
	CapacityLines int
	// PrefetchDepth is how many lines ahead anticipatory paging runs:
	// every demand fault issues up to this many asynchronous fetches at
	// the stride the miss detector currently predicts. 0 disables
	// prefetching; 1 is the paper's one-line-ahead strategy.
	PrefetchDepth int
	// Writer is the owning thread's id, used to tag intervals and skip
	// self-notices.
	Writer uint32
	// NoRecordCoalesce disables append-time coalescing of adjacent
	// consistency-region store records (used by ablations and property
	// tests to measure what coalescing buys).
	NoRecordCoalesce bool
	// NoLazyOwner disables the lazy single-writer optimization: every
	// dirty page ships an eager diff at release instead of retaining
	// its diffs locally under an ownership claim. Used when homes are
	// replicated to a warm standby — retained diffs live only in the
	// writer's memory and would be lost if the writer died, so the
	// release must put the bytes at the (replicated) home.
	NoLazyOwner bool
	// Gate, if non-nil, is the sequenced transport's runnable-token
	// ledger; the cache pauses through it before blocking on a prefetch
	// channel.
	Gate Gate
}

// DefaultCapacityLines models the coprocessor-side cache of the paper's
// configuration (a few hundred MB of card memory at 16 KiB lines would
// be tens of thousands of lines; tests and benchmarks size this down).
const DefaultCapacityLines = 4096

// byteRange is a half-open byte interval [lo, hi) within one page.
type byteRange struct {
	lo, hi int
}

// mergeRange inserts [lo, hi) into a sorted, disjoint range list,
// coalescing overlapping and touching neighbours. The list stays sorted
// and disjoint.
func mergeRange(rs []byteRange, lo, hi int) []byteRange {
	// Window [i, j): ranges before i lie strictly before [lo, hi) without
	// touching; ranges in [i, j) overlap or touch and are absorbed; ranges
	// from j on lie strictly after. Rebuilding by index (rather than
	// appending into rs[:0] while ranging over rs) avoids clobbering
	// not-yet-read elements of the shared backing array when an insertion
	// grows the list.
	i := 0
	for i < len(rs) && rs[i].hi < lo {
		i++
	}
	j := i
	for j < len(rs) && rs[j].lo <= hi {
		if rs[j].lo < lo {
			lo = rs[j].lo
		}
		if rs[j].hi > hi {
			hi = rs[j].hi
		}
		j++
	}
	if j > i { // absorbed at least one existing range: shrink in place
		rs[i] = byteRange{lo, hi}
		return append(rs[:i+1], rs[j:]...)
	}
	// Pure insertion: grow by one and shift the tail right.
	rs = append(rs, byteRange{})
	copy(rs[i+1:], rs[i:])
	rs[i] = byteRange{lo, hi}
	return rs
}

// overlapsRanges reports whether [lo, hi) intersects any range of a
// sorted, disjoint list.
func overlapsRanges(rs []byteRange, lo, hi int) bool {
	for _, r := range rs {
		if r.lo >= hi {
			return false
		}
		if r.hi > lo {
			return true
		}
	}
	return false
}

// pageState tracks one page within a resident line.
type pageState struct {
	valid bool
	dirty bool
	twin  []byte // snapshot at first ordinary write; nil unless dirty

	// stale lists byte ranges another writer's span release has made
	// stale while the rest of the page stays valid (partial staleness).
	// Accesses outside every stale range are served locally; an access
	// overlapping one demotes the page to fully invalid and refetches.
	// Always nil while valid is false.
	stale []byteRange
	// wext accumulates this interval's span-written extents while
	// wtracked holds: the release publishes them as extent words so
	// peers can invalidate partially. Reset whenever dirty is cleared.
	wext []byteRange
	// wtracked is true while every ordinary store of the current
	// interval went through the span path (known extents). A legacy
	// per-element store, or extent-list overflow, clears it and the
	// release falls back to whole-page invalidation at the peers.
	wtracked bool
}

// Caps keeping the partial-staleness metadata bounded: a page whose
// stale-range list, span-extent list or pending-tag set would grow past
// these falls back to whole-page invalidation.
const (
	maxStaleRanges = 32
	maxWriteExts   = 8
	maxStaleTags   = 64
)

// lineEntry is one resident cache line.
type lineEntry struct {
	id      layout.LineID
	data    []byte // LineSize bytes
	pages   []pageState
	lastUse uint64
	// epoch is the cache's snapshot epoch when the line was (last)
	// installed: lines fetched before an address-space snapshot are
	// distinguishable from lines fetched after it (tests assert a fork's
	// reads never come from pre-snapshot residency).
	epoch uint64
}

// prefetchEntry tracks an in-flight asynchronous line fetch.
type prefetchEntry struct {
	ch <-chan PrefetchResult
	h  *Handoff
	// needsSent records which tags were quoted per page at issue time;
	// pages whose needs grew since must not be installed as valid.
	needsSent map[layout.PageID]map[proto.IntervalTag]struct{}
	issuedAt  vtime.Time
}

// Cache is one thread's software cache. It is confined to the owning
// thread's goroutine.
type Cache struct {
	cfg   Config
	geo   layout.Geometry
	be    Backend
	clock *vtime.Clock
	st    *stats.Thread

	lines    map[layout.LineID]*lineEntry
	pending  map[layout.LineID]*prefetchEntry
	useTick  uint64
	capacity int

	// Stride detector for adaptive prefetch: when two consecutive
	// demand-miss deltas agree, prefetch runs at that stride instead of
	// the default +1.
	lastMiss   layout.LineID
	haveMiss   bool
	lastStride int64

	// pageNeeds records, for every page that is not resident-and-valid,
	// the interval tags a future fetch must wait for. Entries are
	// cleared when the page is installed valid.
	pageNeeds map[layout.PageID]map[proto.IntervalTag]struct{}

	// interval bookkeeping (one interval = release to release).
	interval     uint64
	dirtyPages   map[layout.PageID]struct{} // dirty right now
	flushedDirty map[layout.PageID]struct{} // dirtied this interval, already flushed by eviction/invalidation
	records      []proto.StoreRecord        // consistency-region store log

	// shared marks pages another thread is known to touch (they were
	// named by a foreign write notice at some acquire). Dirty shared
	// pages ship eager diffs at a release; dirty unshared pages only
	// post an ownership claim and retain their diffs in owned — the
	// single-writer optimization that keeps releases cheap for purely
	// private working sets.
	shared map[layout.PageID]struct{}
	owned  *OwnedStore

	// snapEpoch counts address-space snapshots taken through this
	// thread; installed lines are tagged with it (see lineEntry.epoch).
	snapEpoch uint64
}

// New creates a cache. The clock and stats belong to the owning thread.
func New(cfg Config, be Backend, clock *vtime.Clock, st *stats.Thread) *Cache {
	if cfg.CapacityLines <= 0 {
		cfg.CapacityLines = DefaultCapacityLines
	}
	if cfg.Gate == nil {
		cfg.Gate = nopGate{}
	}
	return &Cache{
		cfg:          cfg,
		geo:          cfg.Geo,
		be:           be,
		clock:        clock,
		st:           st,
		lines:        make(map[layout.LineID]*lineEntry),
		pending:      make(map[layout.LineID]*prefetchEntry),
		capacity:     cfg.CapacityLines,
		pageNeeds:    make(map[layout.PageID]map[proto.IntervalTag]struct{}),
		dirtyPages:   make(map[layout.PageID]struct{}),
		flushedDirty: make(map[layout.PageID]struct{}),
		shared:       make(map[layout.PageID]struct{}),
		owned:        NewOwnedStore(cfg.Geo.PageSize),
	}
}

// Owned exposes the retained-diff store; the thread's cache agent
// serves DiffPull requests from it.
func (c *Cache) Owned() *OwnedStore { return c.owned }

// Interval reports the current (open) interval number.
func (c *Cache) Interval() uint64 { return c.interval }

// ---------------------------------------------------------------------
// Access path.

// Read copies len(buf) bytes at addr into buf, faulting lines in as
// needed.
func (c *Cache) Read(addr layout.Addr, buf []byte) error {
	c.clock.Advance(c.cfg.CPU.AccessTime)
	return c.read(addr, buf)
}

// ReadSpan is the bulk-read entry point: one AccessTime for the whole
// span plus a per-byte streamed-copy term, instead of AccessTime per
// element. Lines are resolved once per page, and a page that is valid
// except for stale ranges this span does not touch is served with no
// fault at all (partial staleness).
func (c *Cache) ReadSpan(addr layout.Addr, buf []byte) error {
	c.clock.Advance(c.cfg.CPU.AccessTime + c.cfg.CPU.SpanTime(len(buf)))
	return c.read(addr, buf)
}

func (c *Cache) read(addr layout.Addr, buf []byte) error {
	for len(buf) > 0 {
		page := c.geo.PageOf(addr)
		off := c.geo.PageOffset(addr)
		n := min(len(buf), c.geo.PageSize-off)
		le, err := c.ensureValidRange(page, off, n)
		if err != nil {
			return err
		}
		base := c.pageBaseInLine(page)
		copy(buf[:n], le.data[base+off:base+off+n])
		buf = buf[n:]
		addr += layout.Addr(n)
	}
	return nil
}

// Write stores data at addr. If region is true the store happens inside
// a consistency region (a lock is held): it is captured in the
// fine-grained store log and does not mark the page dirty by itself.
// Ordinary (region=false) stores twin the page on first touch and are
// propagated as page diffs at the next release.
func (c *Cache) Write(addr layout.Addr, data []byte, region bool) error {
	c.clock.Advance(c.cfg.CPU.AccessTime)
	return c.write(addr, data, region, false)
}

// WriteSpan is the bulk-write entry point: one AccessTime plus a
// per-byte term for the whole span. Beyond the charge, a span write (1)
// logs ONE StoreRecord per contiguous page chunk in consistency regions
// instead of one per element, and (2) tracks its written extents so the
// closing release can publish extent words and peers can invalidate
// partially instead of refetching whole falsely-shared pages.
func (c *Cache) WriteSpan(addr layout.Addr, data []byte, region bool) error {
	c.clock.Advance(c.cfg.CPU.AccessTime + c.cfg.CPU.SpanTime(len(data)))
	return c.write(addr, data, region, true)
}

func (c *Cache) write(addr layout.Addr, data []byte, region, span bool) error {
	for len(data) > 0 {
		page := c.geo.PageOf(addr)
		off := c.geo.PageOffset(addr)
		n := min(len(data), c.geo.PageSize-off)
		le, err := c.ensureValidRange(page, off, n)
		if err != nil {
			return err
		}
		if region {
			c.logRecord(addr, data[:n], page)
			// Consistency-region bytes travel ONLY as records. If the
			// page is dirty from ordinary writes, patch the twin too, or
			// the next ordinary diff would capture these bytes and ship
			// a stale snapshot that can clobber newer records at the
			// home (a lost update under lock).
			if ps := &le.pages[c.pageIndex(page)]; ps.dirty {
				copy(ps.twin[off:], data[:n])
			}
		} else {
			ps := &le.pages[c.pageIndex(page)]
			if !ps.dirty {
				base := c.pageBaseInLine(page)
				ps.twin = append([]byte(nil), le.data[base:base+c.geo.PageSize]...)
				ps.dirty = true
				c.dirtyPages[page] = struct{}{}
				c.clock.Advance(c.cfg.CPU.TwinTime)
				c.st.Twins++
				ps.wtracked = span
				ps.wext = ps.wext[:0]
			}
			c.noteWriteExtent(ps, off, n, span)
		}
		base := c.pageBaseInLine(page)
		copy(le.data[base+off:], data[:n])
		data = data[n:]
		addr += layout.Addr(n)
	}
	return nil
}

// logRecord appends one consistency-region store record, extending the
// previous record in place when the store is strictly contiguous with
// it on the same page — so even legacy per-element loops stop emitting
// one record (and one wire header) per 8 bytes. Records never cross a
// page boundary (the home applies them page-local).
func (c *Cache) logRecord(addr layout.Addr, data []byte, page layout.PageID) {
	c.st.RecordBytes += int64(len(data))
	if !c.cfg.NoRecordCoalesce && len(c.records) > 0 {
		last := &c.records[len(c.records)-1]
		if last.Addr+uint64(len(last.Data)) == uint64(addr) &&
			c.geo.PageOf(layout.Addr(last.Addr)) == page {
			last.Data = append(last.Data, data...)
			return
		}
	}
	c.records = append(c.records, proto.StoreRecord{
		Addr: uint64(addr),
		Data: append([]byte(nil), data...),
	})
	c.st.RecordsLogged++
}

// noteWriteExtent folds one ordinary store into the page's
// span-written-extent tracking. Span stores keep the extent list exact
// (so the release can publish it); any legacy store, or overflow of the
// list, downgrades the page to untracked — its release invalidates the
// whole page at the peers, exactly as before spans existed.
func (c *Cache) noteWriteExtent(ps *pageState, off, n int, span bool) {
	if !ps.wtracked {
		return
	}
	if !span {
		ps.wtracked = false
		ps.wext = ps.wext[:0]
		return
	}
	ps.wext = mergeRange(ps.wext, off, off+n)
	if len(ps.wext) > maxWriteExts {
		ps.wtracked = false
		ps.wext = ps.wext[:0]
	}
}

// ReadModifyWrite8 applies f to the 8 bytes at addr through a single
// cache access: one AccessTime, one residency walk, and in consistency
// regions one store record — the fused path behind F64.Add/I64.Add,
// which otherwise pay a full read plus a full write. The window must
// not cross a page boundary (any 8-aligned address qualifies); the rare
// straddling caller must use Read+Write.
func (c *Cache) ReadModifyWrite8(addr layout.Addr, region bool, f func(b []byte)) error {
	page := c.geo.PageOf(addr)
	off := c.geo.PageOffset(addr)
	if off+8 > c.geo.PageSize {
		return fmt.Errorf("pagecache: fused access at %#x crosses a page boundary", uint64(addr))
	}
	c.clock.Advance(c.cfg.CPU.AccessTime)
	le, err := c.ensureValidRange(page, off, 8)
	if err != nil {
		return err
	}
	ps := &le.pages[c.pageIndex(page)]
	if !region && !ps.dirty {
		base := c.pageBaseInLine(page)
		ps.twin = append([]byte(nil), le.data[base:base+c.geo.PageSize]...)
		ps.dirty = true
		c.dirtyPages[page] = struct{}{}
		c.clock.Advance(c.cfg.CPU.TwinTime)
		c.st.Twins++
		ps.wtracked = false
		ps.wext = ps.wext[:0]
	}
	base := c.pageBaseInLine(page)
	b := le.data[base+off : base+off+8]
	f(b)
	if region {
		c.logRecord(addr, b, page)
		if ps.dirty {
			copy(ps.twin[off:], b)
		}
	} else {
		c.noteWriteExtent(ps, off, 8, false)
	}
	return nil
}

func (c *Cache) pageIndex(p layout.PageID) int {
	return int(p - c.geo.FirstPage(c.geo.LineOf(p)))
}

func (c *Cache) pageBaseInLine(p layout.PageID) int {
	return c.pageIndex(p) * c.geo.PageSize
}

// ensureValidRange makes bytes [off, off+n) of page p resident and
// usable, faulting and fetching as required, and returns its line. A
// page that is valid apart from stale ranges (partial staleness) is a
// hit as long as the access does not overlap any of them; an access
// that does overlap demotes the page to fully invalid — flushing its
// diff home first if it is dirty, so concurrent disjoint writers merge
// — and refetches.
func (c *Cache) ensureValidRange(p layout.PageID, off, n int) (*lineEntry, error) {
	line := c.geo.LineOf(p)
	le, ok := c.lines[line]
	if ok {
		ps := &le.pages[c.pageIndex(p)]
		if ps.valid {
			if len(ps.stale) == 0 || !overlapsRanges(ps.stale, off, off+n) {
				c.useTick++
				le.lastUse = c.useTick
				c.st.Hits++
				return le, nil
			}
			if err := c.demoteStale(p, le, ps); err != nil {
				return nil, err
			}
		}
	}
	le, err := c.fault(line)
	if err != nil {
		return nil, err
	}
	if !le.pages[c.pageIndex(p)].valid {
		return nil, fmt.Errorf("pagecache: page %d still invalid after fetch", p)
	}
	return le, nil
}

// demoteStale turns a partially-stale page fully invalid because an
// access needs stale bytes. The invalidation cost was already charged
// when the extent notice arrived; a dirty page pushes its diff home
// first (the refetch must return the merge of our writes and the
// peer's).
func (c *Cache) demoteStale(p layout.PageID, le *lineEntry, ps *pageState) error {
	if ps.dirty {
		base := c.pageBaseInLine(p)
		d := diffPage(uint64(p), le.data[base:base+c.geo.PageSize], ps.twin)
		c.clock.Advance(c.cfg.CPU.DiffTime(c.geo.PageSize))
		c.st.DiffsCreated++
		if prior := c.owned.Take(p); prior != nil {
			d.Runs = append(prior, d.Runs...)
		}
		c.st.DiffBytes += int64(d.PayloadBytes())
		at, err := c.be.FlushEvict([]proto.PageDiff{d}, c.clock.Now())
		if err != nil {
			return fmt.Errorf("pagecache: stale-demotion flush: %w", err)
		}
		c.clock.AdvanceTo(at)
		c.st.MsgsSent++
		c.st.InvalFlushes++
		ps.dirty = false
		ps.twin = nil
		ps.wtracked = false
		ps.wext = nil
		delete(c.dirtyPages, p)
		c.flushedDirty[p] = struct{}{}
	}
	ps.valid = false
	ps.stale = nil
	return nil
}

// fault brings a line in (or revalidates its invalid pages), combining
// the fetch with other invalidated same-homed pages, and issues the
// stride prefetch. A resident line's invalid pages are fetched at page
// granularity — an acquire-driven invalidation of one 4 KiB page must
// not move a whole multi-page line again.
func (c *Cache) fault(line layout.LineID) (*lineEntry, error) {
	faultStart := c.clock.Now()
	defer func() { c.st.FaultStall += c.clock.Now() - faultStart }()
	c.clock.Advance(c.cfg.CPU.FaultOverhead)
	c.st.Misses++
	stride := c.noteMiss(line)

	var (
		data      []byte
		readyAt   vtime.Time
		err       error
		fullLines []layout.LineID
		pages     []layout.PageID
	)
	if pe, ok := c.pending[line]; ok {
		pe.h.beginWait() // park only if the helper has not delivered yet
		res := <-pe.ch
		delete(c.pending, line)
		if res.Err != nil {
			return nil, res.Err
		}
		if res.ReadyAt > c.clock.Now() {
			c.st.PrefetchLate++
		} else {
			c.st.PrefetchHits++
		}
		// Pages whose needs grew after the prefetch was issued must not
		// be installed from it; force a demand fetch for the whole line
		// in that case (rare).
		if c.prefetchStale(line, pe) {
			c.st.PrefetchWasted++
			data, readyAt, err = c.be.FetchLine(line, c.needsFor(line), c.clock.Now())
		} else {
			data, readyAt = res.Data, vtime.Max(res.ReadyAt, c.clock.Now())
		}
		fullLines = []layout.LineID{line}
	} else {
		if _, resident := c.lines[line]; resident {
			pages = c.invalidPages(line)
		} else {
			fullLines = []layout.LineID{line}
		}
		pages = append(pages, c.pageCompanions(line)...)
		if len(pages) > 0 {
			// Fetch combining: one request revalidates every invalidated
			// same-homed page, instead of K separate misses.
			needs := make([]proto.PageNeed, 0, len(pages))
			for _, l := range fullLines {
				needs = append(needs, c.needsFor(l)...)
			}
			for _, p := range pages {
				needs = append(needs, c.needFor(p)...)
			}
			data, readyAt, err = c.be.FetchLines(fullLines, pages, needs, c.clock.Now())
			c.st.CombinedFetches++
			c.st.CombinedLines += int64(len(fullLines) + len(pages) - 1)
		} else {
			data, readyAt, err = c.be.FetchLine(line, c.needsFor(line), c.clock.Now())
		}
	}
	if err != nil {
		return nil, err
	}
	if want := c.geo.LineSize()*len(fullLines) + c.geo.PageSize*len(pages); len(data) != want {
		return nil, fmt.Errorf("pagecache: fetch for line %d returned %d bytes, want %d", line, len(data), want)
	}
	c.clock.AdvanceTo(readyAt)
	c.st.BytesReceived += int64(len(data))

	// Install the full line first (its eviction choice must not see the
	// page installs below), then the pages. A page whose line the line
	// install just evicted is dropped — it stays invalid with its needs
	// intact and simply refaults later.
	off := 0
	for _, l := range fullLines {
		c.install(l, data[off:off+c.geo.LineSize()])
		off += c.geo.LineSize()
	}
	for _, p := range pages {
		c.installPage(p, data[off:off+c.geo.PageSize])
		off += c.geo.PageSize
	}
	le, ok := c.lines[line]
	if !ok {
		return nil, fmt.Errorf("pagecache: line %d not resident after fetch", line)
	}

	// Anticipatory paging (Section II's prefetching strategy), deepened:
	// up to PrefetchDepth asynchronous requests at the detected stride.
	if c.cfg.PrefetchDepth > 0 {
		next := int64(line)
		for k := 0; k < c.cfg.PrefetchDepth; k++ {
			next += stride
			if next < 0 {
				break
			}
			l := layout.LineID(next)
			if _, resident := c.lines[l]; resident {
				continue
			}
			if _, inflight := c.pending[l]; inflight {
				continue
			}
			needs := c.needsFor(l)
			h := &Handoff{gate: c.cfg.Gate}
			if ch := c.be.StartPrefetch(l, needs, c.clock.Now(), h); ch != nil {
				c.st.PrefetchIssued++
				c.pending[l] = &prefetchEntry{
					ch:        ch,
					h:         h,
					needsSent: c.needsSnapshot(l),
					issuedAt:  c.clock.Now(),
				}
			}
		}
	}
	return le, nil
}

// noteMiss feeds the stride detector one demand miss and returns the
// line stride prefetch should run at: the repeated inter-miss delta
// when the last two deltas agree, else the sequential default +1.
func (c *Cache) noteMiss(line layout.LineID) int64 {
	stride := int64(1)
	if c.haveMiss {
		d := int64(line) - int64(c.lastMiss)
		if d != 0 && d == c.lastStride {
			stride = d
		}
		c.lastStride = d
	}
	c.haveMiss = true
	c.lastMiss = line
	return stride
}

// maxCombinePages bounds how many companion pages one combined fetch
// may carry, so a huge invalidation set cannot flood one request.
const maxCombinePages = 32

// invalidPages lists the invalid pages of a resident line, in page
// order.
func (c *Cache) invalidPages(line layout.LineID) []layout.PageID {
	le := c.lines[line]
	first := c.geo.FirstPage(line)
	var out []layout.PageID
	for i := range le.pages {
		if !le.pages[i].valid {
			out = append(out, first+layout.PageID(i))
		}
	}
	return out
}

// pageCompanions returns invalid pages of other resident lines homed
// with line: the fault about to fetch line can revalidate them all in
// one combined request, at page granularity.
func (c *Cache) pageCompanions(line layout.LineID) []layout.PageID {
	home := c.geo.HomeOf(c.geo.FirstPage(line))
	var out []layout.PageID
	for p := range c.pageNeeds {
		l := c.geo.LineOf(p)
		if l == line {
			continue
		}
		if _, resident := c.lines[l]; !resident {
			continue // a cold line will fetch whole on its own fault
		}
		if _, inflight := c.pending[l]; inflight {
			continue // let the prefetch land; merging would double-fetch
		}
		if c.geo.HomeOf(c.geo.FirstPage(l)) != home {
			continue
		}
		out = append(out, p)
	}
	// Deterministic choice when the candidate set is capped.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) > maxCombinePages {
		out = out[:maxCombinePages]
	}
	return out
}

// install merges fetched line bytes with resident state: locally dirty
// pages keep their contents (the multiple-writer protocol — our
// unflushed writes must survive), everything else takes the fetched
// bytes and becomes valid.
func (c *Cache) install(line layout.LineID, data []byte) *lineEntry {
	le, ok := c.lines[line]
	if !ok {
		c.evictIfFull()
		le = &lineEntry{
			id:    line,
			data:  make([]byte, c.geo.LineSize()),
			pages: make([]pageState, c.geo.LinePages),
		}
		copy(le.data, data)
		c.lines[line] = le
	} else {
		for i := range le.pages {
			if le.pages[i].dirty {
				continue
			}
			off := i * c.geo.PageSize
			copy(le.data[off:off+c.geo.PageSize], data[off:off+c.geo.PageSize])
		}
	}
	first := c.geo.FirstPage(line)
	for i := range le.pages {
		le.pages[i].valid = true
		if !le.pages[i].dirty {
			// Fetched bytes are fresh: any partial staleness is cured.
			// (A dirty page kept its local contents above, so its stale
			// ranges — if any — stay in force, and so do the interval
			// tags a future refetch of it must quote.)
			le.pages[i].stale = nil
			delete(c.pageNeeds, first+layout.PageID(i))
		}
	}
	c.clock.Advance(c.cfg.CPU.CopyTime(c.geo.LineSize()))
	c.useTick++
	le.lastUse = c.useTick
	le.epoch = c.snapEpoch
	return le
}

// installPage installs one fetched page into its resident line, making
// it valid. Requested pages are always invalid and therefore clean
// (invalidation flushes dirty bytes first), so the fetched bytes land
// unconditionally. If the line is no longer resident the bytes are
// dropped: the page keeps its needs and refaults later.
func (c *Cache) installPage(p layout.PageID, data []byte) {
	le, ok := c.lines[c.geo.LineOf(p)]
	if !ok {
		return
	}
	base := c.pageBaseInLine(p)
	copy(le.data[base:base+c.geo.PageSize], data)
	le.pages[c.pageIndex(p)].valid = true
	le.pages[c.pageIndex(p)].stale = nil
	delete(c.pageNeeds, p)
	c.clock.Advance(c.cfg.CPU.CopyTime(c.geo.PageSize))
	c.useTick++
	le.lastUse = c.useTick
	le.epoch = c.snapEpoch
}

// needsFor collects the outstanding interval tags for each page of a
// line.
func (c *Cache) needsFor(line layout.LineID) []proto.PageNeed {
	var needs []proto.PageNeed
	first := c.geo.FirstPage(line)
	for i := 0; i < c.geo.LinePages; i++ {
		p := first + layout.PageID(i)
		tags := c.pageNeeds[p]
		if len(tags) == 0 {
			continue
		}
		pn := proto.PageNeed{Page: uint64(p), Tags: sortedTags(tags)}
		needs = append(needs, pn)
	}
	return needs
}

// sortedTags renders a tag set in a stable order so message bytes do not
// depend on map iteration.
func sortedTags(tags map[proto.IntervalTag]struct{}) []proto.IntervalTag {
	out := make([]proto.IntervalTag, 0, len(tags))
	for tag := range tags {
		out = append(out, tag)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Writer != out[j].Writer {
			return out[i].Writer < out[j].Writer
		}
		return out[i].Interval < out[j].Interval
	})
	return out
}

// needFor collects the outstanding interval tags of a single page (nil
// if the page has none).
func (c *Cache) needFor(p layout.PageID) []proto.PageNeed {
	tags := c.pageNeeds[p]
	if len(tags) == 0 {
		return nil
	}
	return []proto.PageNeed{{Page: uint64(p), Tags: sortedTags(tags)}}
}

func (c *Cache) needsSnapshot(line layout.LineID) map[layout.PageID]map[proto.IntervalTag]struct{} {
	snap := make(map[layout.PageID]map[proto.IntervalTag]struct{})
	first := c.geo.FirstPage(line)
	for i := 0; i < c.geo.LinePages; i++ {
		p := first + layout.PageID(i)
		if tags, ok := c.pageNeeds[p]; ok && len(tags) > 0 {
			cp := make(map[proto.IntervalTag]struct{}, len(tags))
			for t := range tags {
				cp[t] = struct{}{}
			}
			snap[p] = cp
		}
	}
	return snap
}

// prefetchStale reports whether any page of the line accumulated needs
// after the prefetch was issued.
func (c *Cache) prefetchStale(line layout.LineID, pe *prefetchEntry) bool {
	first := c.geo.FirstPage(line)
	for i := 0; i < c.geo.LinePages; i++ {
		p := first + layout.PageID(i)
		cur := c.pageNeeds[p]
		sent := pe.needsSent[p]
		for tag := range cur {
			if _, ok := sent[tag]; !ok {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Eviction.

// evictIfFull makes room for one more line. The victim is the
// least-recently-used line, with a bias toward lines holding written
// pages (Section II: "the eviction policy used is biased towards pages
// that have been written to"): dirty data is pushed home early, which
// both frees the twin storage and shortens the diff work left at the
// next release.
func (c *Cache) evictIfFull() {
	if len(c.lines) < c.capacity {
		return
	}
	var oldest, oldestDirty *lineEntry
	for _, le := range c.lines {
		if oldest == nil || le.lastUse < oldest.lastUse {
			oldest = le
		}
		if lineDirty(le) && (oldestDirty == nil || le.lastUse < oldestDirty.lastUse) {
			oldestDirty = le
		}
	}
	victim := oldest
	if oldestDirty != nil {
		victim = oldestDirty
	}
	c.evict(victim)
}

func lineDirty(le *lineEntry) bool {
	for i := range le.pages {
		if le.pages[i].dirty {
			return true
		}
	}
	return false
}

// evict removes a line, flushing diffs of its dirty pages home.
func (c *Cache) evict(le *lineEntry) {
	c.st.Evictions++
	diffs := c.diffDirtyPages(le, true)
	if len(diffs) > 0 {
		c.st.DirtyEvicts++
		at, err := c.be.FlushEvict(diffs, c.clock.Now())
		if err != nil {
			panic(fmt.Sprintf("pagecache: evict flush failed: %v", err))
		}
		c.clock.AdvanceTo(at)
		c.st.MsgsSent++
	}
	delete(c.lines, le.id)
}

// diffDirtyPages computes diffs of the line's dirty pages against their
// twins. If flushed is true the pages move to the flushedDirty set
// (their bytes are home already; the closing DiffBatch lists them as
// EmptyPages).
func (c *Cache) diffDirtyPages(le *lineEntry, flushed bool) []proto.PageDiff {
	var diffs []proto.PageDiff
	first := c.geo.FirstPage(le.id)
	for i := range le.pages {
		ps := &le.pages[i]
		if !ps.dirty {
			continue
		}
		p := first + layout.PageID(i)
		base := i * c.geo.PageSize
		d := diffPage(uint64(p), le.data[base:base+c.geo.PageSize], ps.twin)
		c.clock.Advance(c.cfg.CPU.DiffTime(c.geo.PageSize))
		c.st.DiffsCreated++
		// Anything retained from earlier lazily-owned intervals must
		// travel too: the home clears our ownership when these bytes
		// arrive.
		if prior := c.owned.Take(p); prior != nil {
			d.Runs = append(prior, d.Runs...)
		}
		c.st.DiffBytes += int64(d.PayloadBytes())
		diffs = append(diffs, d)
		ps.dirty = false
		ps.twin = nil
		ps.wtracked = false
		ps.wext = nil
		delete(c.dirtyPages, p)
		if flushed {
			c.flushedDirty[p] = struct{}{}
		}
	}
	return diffs
}

// Word-at-a-time byte-scan constants (the classic has-zero-byte trick:
// (x-lo) &^ x & hi is nonzero iff some byte of x is zero, and — because
// the subtraction only borrows PAST a zero byte — its least significant
// set bit pins the first zero byte exactly).
const (
	lo64 = 0x0101010101010101
	hi64 = 0x8080808080808080
)

// diffPage builds maximal changed-byte runs of cur against twin. The
// scan is word-wide: equal regions are skipped eight bytes per compare,
// and inside a run the first equal byte is found with one XOR plus a
// zero-byte test per word — run edges stay byte-precise, so the output
// is identical to the byte-wise diffPageGeneric (a property test holds
// the two together).
func diffPage(page uint64, cur, twin []byte) proto.PageDiff {
	d := proto.PageDiff{Page: page}
	n := len(cur)
	i := 0
	for i < n {
		// Skip equal bytes: whole words first, then the byte tail (which
		// also positions i on the exact first differing byte of an
		// unequal word).
		for i+8 <= n && binary.LittleEndian.Uint64(cur[i:]) == binary.LittleEndian.Uint64(twin[i:]) {
			i += 8
		}
		for i < n && cur[i] == twin[i] {
			i++
		}
		if i >= n {
			break
		}
		// Run body: extend while bytes differ; a zero byte in the XOR is
		// the first equal byte and ends the run.
		j := i + 1
		for j < n {
			if j+8 <= n {
				x := binary.LittleEndian.Uint64(cur[j:]) ^ binary.LittleEndian.Uint64(twin[j:])
				if z := (x - lo64) &^ x & hi64; z != 0 {
					j += bits.TrailingZeros64(z) >> 3
					break
				}
				j += 8
				continue
			}
			if cur[j] == twin[j] {
				break
			}
			j++
		}
		d.Runs = append(d.Runs, proto.DiffRun{
			Off:  uint32(i),
			Data: append([]byte(nil), cur[i:j]...),
		})
		i = j
	}
	return d
}

// diffPageGeneric is the reference byte-wise differ diffPage must match
// bit for bit; kept for the property/fuzz tests and the benchmark.
func diffPageGeneric(page uint64, cur, twin []byte) proto.PageDiff {
	d := proto.PageDiff{Page: page}
	i := 0
	for i < len(cur) {
		if cur[i] == twin[i] {
			i++
			continue
		}
		j := i + 1
		for j < len(cur) && cur[j] != twin[j] {
			j++
		}
		d.Runs = append(d.Runs, proto.DiffRun{
			Off:  uint32(i),
			Data: append([]byte(nil), cur[i:j]...),
		})
		i = j
	}
	return d
}

// ---------------------------------------------------------------------
// Release / acquire (the RegC protocol surface used by package core).

// ReleaseSet is everything a release point must transmit: the write
// notice content for the manager and per-home DiffBatches for the
// memory servers.
type ReleaseSet struct {
	// Tag identifies the closing interval.
	Tag proto.IntervalTag
	// Pages is the ordinary-region dirty page set for the write notice.
	Pages []uint64
	// Records is the consistency-region store log for the write notice.
	Records []proto.StoreRecord
	// ByHome maps memory-server index to the DiffBatch bound for it.
	// Complete only after FinishRelease.
	ByHome map[int]*proto.DiffBatch

	// deferred holds the shared dirty pages whose diff computation
	// FinishRelease performs off the release's critical path.
	deferred []deferredDiff
}

// deferredDiff is one shared dirty page whose byte diff is computed in
// FinishRelease. It pins the line entry: the cache must not be touched
// between BeginRelease and FinishRelease.
type deferredDiff struct {
	le   *lineEntry
	idx  int // page index within the line
	page layout.PageID
	home int
}

// CollectRelease closes the current interval in one step; equivalent to
// BeginRelease immediately followed by FinishRelease. Callers that want
// to overlap the manager's write-notice round trip with diff work use
// the two-step form instead.
func (c *Cache) CollectRelease() *ReleaseSet {
	rs := c.BeginRelease()
	c.FinishRelease(rs)
	return rs
}

// BeginRelease closes the current interval cheaply: it scans the dirty
// set to produce the write-notice content (Pages, Records, Tag) without
// computing any shared-page byte diffs — those are recorded as deferred
// work for FinishRelease. Every page named in Pages is guaranteed a
// DiffBatch entry at its home carrying this interval's tag (even a
// silent store ships a zero-run diff), so fetches parked on the tag
// always wake. The caller MUST call FinishRelease on the returned set
// before touching the cache again.
func (c *Cache) BeginRelease() *ReleaseSet {
	c.interval++
	c.st.Releases++
	rs := &ReleaseSet{
		Tag:    proto.IntervalTag{Writer: c.cfg.Writer, Interval: c.interval},
		ByHome: make(map[int]*proto.DiffBatch),
	}

	// Ordinary-region dirty pages from resident lines: shared pages ship
	// eager diffs (computed in FinishRelease); unshared pages retain
	// their diffs locally and only claim ownership at the home. The
	// unshared path diffs eagerly — the bytes must be in the owned store
	// before the batch carrying the claim can be shipped, because the
	// home may pull them the moment the batch lands.
	//
	// Scan in line order: the notice page list, the per-home batch
	// contents and the diff-time clock advances must not depend on map
	// iteration order.
	dirtyLines := make([]layout.LineID, 0, len(c.lines))
	for id, le := range c.lines {
		if lineDirty(le) {
			dirtyLines = append(dirtyLines, id)
		}
	}
	sort.Slice(dirtyLines, func(i, j int) bool { return dirtyLines[i] < dirtyLines[j] })
	for _, id := range dirtyLines {
		le := c.lines[id]
		first := c.geo.FirstPage(le.id)
		home := c.geo.HomeOf(first)
		for i := range le.pages {
			ps := &le.pages[i]
			if !ps.dirty {
				continue
			}
			p := first + layout.PageID(i)
			if _, isShared := c.shared[p]; isShared || c.cfg.NoLazyOwner {
				rs.Pages = append(rs.Pages, uint64(p))
				rs.Pages = appendExtentWords(rs.Pages, ps)
				rs.deferred = append(rs.deferred, deferredDiff{le: le, idx: i, page: p, home: home})
				continue // dirty state (and the twin) stays until FinishRelease
			}
			base := i * c.geo.PageSize
			d := diffPage(uint64(p), le.data[base:base+c.geo.PageSize], ps.twin)
			c.clock.Advance(c.cfg.CPU.DiffTime(c.geo.PageSize))
			c.st.DiffsCreated++
			ps.dirty = false
			ps.twin = nil
			delete(c.dirtyPages, p)
			if len(d.Runs) == 0 {
				ps.wtracked = false
				ps.wext = nil
				continue // silent stores: nothing changed, nothing to tell anyone
			}
			rs.Pages = append(rs.Pages, uint64(p))
			rs.Pages = appendExtentWords(rs.Pages, ps)
			ps.wtracked = false
			ps.wext = nil
			c.owned.Put(p, d.Runs)
			c.st.OwnedClaims++
			b := rs.batchFor(home, rs.Tag)
			b.OwnedPages = append(b.OwnedPages, uint64(p))
		}
	}

	// Pages flushed early by eviction/invalidation: bytes are home, but
	// the tag must still be marked and peers must still invalidate.
	flushed := make([]layout.PageID, 0, len(c.flushedDirty))
	for p := range c.flushedDirty {
		flushed = append(flushed, p)
	}
	sort.Slice(flushed, func(i, j int) bool { return flushed[i] < flushed[j] })
	for _, p := range flushed {
		rs.Pages = append(rs.Pages, uint64(p))
		b := rs.batchFor(c.geo.HomeOf(p), rs.Tag)
		b.EmptyPages = append(b.EmptyPages, uint64(p))
		delete(c.flushedDirty, p)
	}

	// Consistency-region store records, routed to each record's home.
	for _, rec := range c.records {
		p := c.geo.PageOf(layout.Addr(rec.Addr))
		b := rs.batchFor(c.geo.HomeOf(p), rs.Tag)
		b.Records = append(b.Records, rec)
		rs.Records = append(rs.Records, rec)
	}
	c.records = nil
	return rs
}

// appendExtentWords publishes a dirty page's span-written extents as
// extent words immediately after its page word in a write-notice page
// list. A page whose interval had any legacy (untracked) store publishes
// nothing — its peers fall back to whole-page invalidation.
func appendExtentWords(pages []uint64, ps *pageState) []uint64 {
	if !ps.wtracked || len(ps.wext) == 0 {
		return pages
	}
	for _, r := range ps.wext {
		pages = append(pages, proto.PackSpanExtent(r.lo, r.hi-r.lo))
	}
	return pages
}

// FinishRelease computes the deferred shared-page diffs of a
// BeginRelease and completes the per-home batches. A deferred page
// whose stores turn out silent still ships a zero-run diff: the page
// was already named in the write notice, so its home must see the tag
// or fetches parked on it would hang forever.
func (c *Cache) FinishRelease(rs *ReleaseSet) {
	for _, dd := range rs.deferred {
		ps := &dd.le.pages[dd.idx]
		base := dd.idx * c.geo.PageSize
		d := diffPage(uint64(dd.page), dd.le.data[base:base+c.geo.PageSize], ps.twin)
		c.clock.Advance(c.cfg.CPU.DiffTime(c.geo.PageSize))
		c.st.DiffsCreated++
		if prior := c.owned.Take(dd.page); prior != nil {
			d.Runs = append(prior, d.Runs...)
		}
		c.st.DiffBytes += int64(d.PayloadBytes())
		b := rs.batchFor(dd.home, rs.Tag)
		b.Diffs = append(b.Diffs, d)
		ps.dirty = false
		ps.twin = nil
		ps.wtracked = false
		ps.wext = nil
		delete(c.dirtyPages, dd.page)
	}
	rs.deferred = nil
	// Batches that ended up with nothing to say (e.g. only silent
	// unshared stores) are dropped entirely.
	for home, b := range rs.ByHome {
		if len(b.Diffs) == 0 && len(b.Records) == 0 && len(b.EmptyPages) == 0 && len(b.OwnedPages) == 0 {
			delete(rs.ByHome, home)
		}
	}
}

func (rs *ReleaseSet) batchFor(home int, tag proto.IntervalTag) *proto.DiffBatch {
	b, ok := rs.ByHome[home]
	if !ok {
		b = &proto.DiffBatch{Tag: tag}
		rs.ByHome[home] = b
	}
	return b
}

// ApplyNotices processes acquire-side write notices: pages named by
// other writers' ordinary-region notices are invalidated (a dirty local
// copy first flushes its diff home so concurrent disjoint writes merge),
// and fine-grained records are patched into resident pages in place.
func (c *Cache) ApplyNotices(notices []proto.Notice) error {
	for i := range notices {
		n := &notices[i]
		if n.Tag.Writer == c.cfg.Writer {
			continue // our own release
		}
		c.st.NoticesReceived++
		// The page list carries plain page words, each optionally followed
		// by the releasing writer's span extents for that page.
		for k := 0; k < len(n.Pages); {
			pu := n.Pages[k]
			k++
			if proto.IsSpanExtent(pu) {
				continue // malformed leading extent word; skip defensively
			}
			var ext []byteRange
			for k < len(n.Pages) && proto.IsSpanExtent(n.Pages[k]) {
				off, ln := proto.SpanExtent(n.Pages[k])
				ext = append(ext, byteRange{off, off + ln})
				k++
			}
			if err := c.invalidate(layout.PageID(pu), n.Tag, ext); err != nil {
				return err
			}
		}
		for _, rec := range n.Records {
			c.applyRecord(rec, n.Tag)
		}
	}
	return nil
}

// invalidate marks a page as needing tag before next use. The page is
// evidently shared from now on: another writer just touched it.
//
// When the notice carries the writer's span extents (ext non-empty) and
// the local copy is valid, the page goes PARTIALLY stale instead of
// fully invalid: only the extent bytes are marked stale, and accesses to
// the rest keep hitting with no refetch — the false-sharing cure the
// span data plane exists for. A dirty local copy qualifies only while
// its own writes are span-tracked and disjoint from the incoming
// extents (its release diff then provably cannot clobber the peer's
// bytes: over the stale ranges cur == twin, so no run ships). Metadata
// caps bound the state; overflow falls back to full invalidation.
func (c *Cache) invalidate(p layout.PageID, tag proto.IntervalTag, ext []byteRange) error {
	c.shared[p] = struct{}{}
	c.addNeed(p, tag)
	line := c.geo.LineOf(p)
	le, ok := c.lines[line]
	if !ok {
		return nil
	}
	ps := &le.pages[c.pageIndex(p)]
	if len(ext) > 0 && ps.valid && len(c.pageNeeds[p]) <= maxStaleTags {
		okPartial := true
		if ps.dirty {
			okPartial = ps.wtracked
			for _, r := range ext {
				if !okPartial || overlapsRanges(ps.wext, r.lo, r.hi) {
					okPartial = false
					break
				}
			}
		}
		if okPartial {
			st := ps.stale
			for _, r := range ext {
				st = mergeRange(st, r.lo, r.hi)
			}
			ps.stale = st
			if len(st) <= maxStaleRanges {
				c.clock.Advance(c.cfg.CPU.InvalidateTime)
				c.st.Invalidations++
				c.st.PartialInvals++
				return nil
			}
			// Range-list overflow: demote to a full invalidation below.
		}
	}
	if ps.dirty {
		// Concurrent writers on one page: push our bytes home now so the
		// refetch returns the merge. (True sharing without a lock is a
		// data race; either order is acceptable then.)
		base := c.pageIndex(p) * c.geo.PageSize
		d := diffPage(uint64(p), le.data[base:base+c.geo.PageSize], ps.twin)
		c.clock.Advance(c.cfg.CPU.DiffTime(c.geo.PageSize))
		c.st.DiffsCreated++
		if prior := c.owned.Take(p); prior != nil {
			d.Runs = append(prior, d.Runs...)
		}
		c.st.DiffBytes += int64(d.PayloadBytes())
		at, err := c.be.FlushEvict([]proto.PageDiff{d}, c.clock.Now())
		if err != nil {
			return fmt.Errorf("pagecache: invalidation flush: %w", err)
		}
		c.clock.AdvanceTo(at)
		c.st.MsgsSent++
		c.st.InvalFlushes++
		ps.dirty = false
		ps.twin = nil
		ps.wtracked = false
		ps.wext = nil
		delete(c.dirtyPages, p)
		c.flushedDirty[p] = struct{}{}
	}
	if ps.valid {
		ps.valid = false
		ps.stale = nil
		c.clock.Advance(c.cfg.CPU.InvalidateTime)
		c.st.Invalidations++
	}
	return nil
}

// applyRecord patches a consistency-region update into a resident valid
// page; if the page is not resident-and-valid the record's tag is
// recorded as a need instead (the home has the bytes).
func (c *Cache) applyRecord(rec proto.StoreRecord, tag proto.IntervalTag) {
	addr := layout.Addr(rec.Addr)
	p := c.geo.PageOf(addr)
	c.shared[p] = struct{}{}
	line := c.geo.LineOf(p)
	le, ok := c.lines[line]
	if !ok || !le.pages[c.pageIndex(p)].valid {
		c.addNeed(p, tag)
		return
	}
	base := c.pageBaseInLine(p) + c.geo.PageOffset(addr)
	copy(le.data[base:], rec.Data)
	// Keep a dirty page's twin in step: record bytes must never leak
	// into this page's ordinary diff (see Write's region branch).
	if ps := &le.pages[c.pageIndex(p)]; ps.dirty {
		copy(ps.twin[c.geo.PageOffset(addr):], rec.Data)
	}
	c.clock.Advance(c.cfg.CPU.ApplyTime(len(rec.Data)))
	c.st.UpdatesApplied++
}

// SnapshotPage copies the current bytes of a resident valid page, for
// shipping with a peer-to-peer lock grant. Returns nil if the page is
// not resident-and-valid, or is valid but carries stale ranges (a
// partially-stale copy must not be handed to a peer as authoritative).
func (c *Cache) SnapshotPage(p layout.PageID) []byte {
	le, ok := c.lines[c.geo.LineOf(p)]
	if !ok || !le.pages[c.pageIndex(p)].valid || len(le.pages[c.pageIndex(p)].stale) > 0 {
		return nil
	}
	base := c.pageBaseInLine(p)
	data := make([]byte, c.geo.PageSize)
	copy(data, le.data[base:base+c.geo.PageSize])
	c.clock.Advance(c.cfg.CPU.CopyTime(c.geo.PageSize))
	return data
}

// InstallGrantPage installs a page shipped with a peer-to-peer lock
// grant: the releasing holder's current copy, which incorporates every
// interval up to the releaser's horizon — at least as new as anything
// this thread's outstanding needs for the page name (notice delivery is
// contiguous, so the releaser saw every interval this thread has). A
// page that is already valid keeps its own copy (the in-place record
// path maintains it); an absent line is created with only this page
// valid. Reports whether the bytes were installed.
func (c *Cache) InstallGrantPage(p layout.PageID, data []byte) bool {
	if len(data) != c.geo.PageSize {
		return false
	}
	line := c.geo.LineOf(p)
	le, ok := c.lines[line]
	if !ok {
		c.evictIfFull()
		le = &lineEntry{
			id:    line,
			data:  make([]byte, c.geo.LineSize()),
			pages: make([]pageState, c.geo.LinePages),
		}
		c.lines[line] = le
	}
	ps := &le.pages[c.pageIndex(p)]
	if ps.valid {
		return false
	}
	base := c.pageBaseInLine(p)
	copy(le.data[base:base+c.geo.PageSize], data)
	ps.valid = true
	delete(c.pageNeeds, p)
	c.clock.Advance(c.cfg.CPU.CopyTime(c.geo.PageSize))
	c.useTick++
	le.lastUse = c.useTick
	le.epoch = c.snapEpoch
	return true
}

func (c *Cache) addNeed(p layout.PageID, tag proto.IntervalTag) {
	tags, ok := c.pageNeeds[p]
	if !ok {
		tags = make(map[proto.IntervalTag]struct{})
		c.pageNeeds[p] = tags
	}
	tags[tag] = struct{}{}
}

// DrainPrefetches waits for every in-flight prefetch and discards the
// results (counting them wasted). Called when the owning thread
// retires, so no fetch of this thread's can still be in flight when its
// endpoint closes.
func (c *Cache) DrainPrefetches() {
	lines := make([]layout.LineID, 0, len(c.pending))
	for line := range c.pending {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		pe := c.pending[line]
		pe.h.beginWait() // park only if the helper has not delivered yet
		<-pe.ch
		delete(c.pending, line)
		c.st.PrefetchWasted++
	}
}

// ---------------------------------------------------------------------
// Address-space snapshot support.

// FlushRange pushes home the current bytes of every ordinary-dirty page
// in [first, first+npages): the same eager mid-interval flush an
// eviction does, except the pages stay valid. Flushed pages are
// remembered in flushedDirty, so this thread's next release still names
// them in its write notice and peers invalidate then — eviction
// semantics, no interval is consumed here. SnapshotAS uses this so the
// seal captures the caller's own unreleased writes; consistency-region
// store records are NOT flushed (they only travel with a release), so
// snapshots must be taken outside critical sections to capture region
// stores.
func (c *Cache) FlushRange(first layout.PageID, npages uint64) error {
	var pages []layout.PageID
	for p := range c.dirtyPages {
		if p >= first && uint64(p-first) < npages {
			pages = append(pages, p)
		}
	}
	if len(pages) == 0 {
		return nil
	}
	// Page order: the diff-time clock advances and the per-home batch
	// contents must not depend on map iteration.
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	diffs := make([]proto.PageDiff, 0, len(pages))
	for _, p := range pages {
		le := c.lines[c.geo.LineOf(p)]
		ps := &le.pages[c.pageIndex(p)]
		base := c.pageBaseInLine(p)
		d := diffPage(uint64(p), le.data[base:base+c.geo.PageSize], ps.twin)
		c.clock.Advance(c.cfg.CPU.DiffTime(c.geo.PageSize))
		c.st.DiffsCreated++
		if prior := c.owned.Take(p); prior != nil {
			d.Runs = append(prior, d.Runs...)
		}
		c.st.DiffBytes += int64(d.PayloadBytes())
		diffs = append(diffs, d)
		ps.dirty = false
		ps.twin = nil
		ps.wtracked = false
		ps.wext = nil
		delete(c.dirtyPages, p)
		c.flushedDirty[p] = struct{}{}
	}
	at, err := c.be.FlushSync(diffs, c.clock.Now())
	if err != nil {
		return fmt.Errorf("pagecache: snapshot flush: %w", err)
	}
	c.clock.AdvanceTo(at)
	c.st.MsgsSent++
	return nil
}

// DropRange discards every resident line overlapping [first,
// first+npages), waiting out (and wasting) in-flight prefetches of
// those lines first. ForkAS calls this on the freshly allocated fork
// range: the prefetcher runs one line ahead of a stream, so a stream
// through a neighbouring buffer may already have installed the fork's
// addresses as zero-filled lines, which would shadow the sealed frames.
// Dropped lines go through the ordinary eviction path, so dirty pages
// outside the range (a partially overlapped line) are flushed home, not
// lost; pages inside it cannot be dirty — the range was just allocated.
func (c *Cache) DropRange(first layout.PageID, npages uint64) {
	if npages == 0 {
		return
	}
	firstLine := c.geo.LineOf(first)
	lastLine := c.geo.LineOf(first + layout.PageID(npages-1))
	var lines []layout.LineID
	for line := range c.pending {
		if line >= firstLine && line <= lastLine {
			lines = append(lines, line)
		}
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		pe := c.pending[line]
		pe.h.beginWait() // park only if the helper has not delivered yet
		<-pe.ch
		delete(c.pending, line)
		c.st.PrefetchWasted++
	}
	lines = lines[:0]
	for line := range c.lines {
		if line >= firstLine && line <= lastLine {
			lines = append(lines, line)
		}
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		c.evict(c.lines[line])
	}
}

// RangeNeeds collects the outstanding interval tags of every page in
// [first, first+npages), in page order — the happens-before set a
// SealAS quotes so no page is frozen before the released intervals this
// thread has already been told about are applied at its home.
func (c *Cache) RangeNeeds(first layout.PageID, npages uint64) []proto.PageNeed {
	var needs []proto.PageNeed
	for p, tags := range c.pageNeeds {
		if p < first || uint64(p-first) >= npages || len(tags) == 0 {
			continue
		}
		needs = append(needs, proto.PageNeed{Page: uint64(p), Tags: sortedTags(tags)})
	}
	sort.Slice(needs, func(i, j int) bool { return needs[i].Page < needs[j].Page })
	return needs
}

// BumpSnapshotEpoch starts a new snapshot epoch and returns it. Lines
// installed from now on are tagged with the new epoch; lines already
// resident keep the epoch they were fetched under.
func (c *Cache) BumpSnapshotEpoch() uint64 {
	c.snapEpoch++
	return c.snapEpoch
}

// SnapshotEpoch reports the current snapshot epoch.
func (c *Cache) SnapshotEpoch() uint64 { return c.snapEpoch }

// LineEpoch reports the snapshot epoch a resident line was installed
// under (false if the line is not resident).
func (c *Cache) LineEpoch(line layout.LineID) (uint64, bool) {
	le, ok := c.lines[line]
	if !ok {
		return 0, false
	}
	return le.epoch, true
}

// SharedPages reports how many pages are known to be shared.
func (c *Cache) SharedPages() int { return len(c.shared) }

// ---------------------------------------------------------------------
// Introspection for tests and harnesses.

// ResidentLines reports how many lines are cached.
func (c *Cache) ResidentLines() int { return len(c.lines) }

// DirtyPages reports how many pages are currently dirty.
func (c *Cache) DirtyPages() int { return len(c.dirtyPages) }

// PendingRecords reports the size of the open store log.
func (c *Cache) PendingRecords() int { return len(c.records) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
