package manager

import (
	"bytes"
	"testing"

	"repro/internal/proto"
)

// Two-phase fork free at the snapState level: phase one drops the fork
// entry and its snapshot reference (releasing the snapshot only when
// the handle is already gone), and freeing the original image drops
// exactly one handle reference per snapshot even if the address is
// recycled and freed again.
func TestSnapStateForkFreeAndOriginFree(t *testing.T) {
	ss := newSnapState()
	ss.nextSnap = 1
	ss.snaps[1] = &snapInfo{origBase: 0x1000, npages: 4, refs: 1}

	// Two forks of snapshot 1.
	ss.snaps[1].refs += 2
	ss.forks[0x2000] = 1
	ss.forks[0x3000] = 1

	resp := ss.forkFree(0x2000, 1)
	if !resp.Fork || resp.Snap != 1 || resp.NPages != 4 {
		t.Fatalf("forkFree resp = %+v, want Fork snap 1 npages 4", resp)
	}
	if len(resp.Release) != 0 {
		t.Fatalf("first fork free released %v, want nothing (handle + one fork remain)", resp.Release)
	}
	if _, ok := ss.forks[0x2000]; ok {
		t.Fatal("fork entry survived phase one")
	}

	// Freeing the original image drops the handle ref; the remaining
	// fork still pins the record.
	release, npages := ss.originFreed(0x1000)
	if len(release) != 0 || npages != 0 {
		t.Fatalf("originFreed with a live fork released %v, want nothing", release)
	}
	if ss.snaps[1] == nil || !ss.snaps[1].handleGone || ss.snaps[1].refs != 1 {
		t.Fatalf("snapInfo after origin free = %+v, want handleGone refs=1", ss.snaps[1])
	}
	// A recycled allocation at the same base must not drop the handle
	// again (that would release frames under the live fork).
	if release, _ := ss.originFreed(0x1000); len(release) != 0 {
		t.Fatalf("second origin free released %v, want nothing (handle already gone)", release)
	}
	if ss.snaps[1] == nil {
		t.Fatal("double origin free released the record under a live fork")
	}

	// The last fork free releases the record and names it for the homes.
	resp = ss.forkFree(0x3000, 1)
	if len(resp.Release) != 1 || resp.Release[0] != 1 {
		t.Fatalf("last fork free released %v, want [1]", resp.Release)
	}
	if _, ok := ss.snaps[1]; ok {
		t.Fatal("snapshot record survived refcount zero")
	}
}

// A snapshot with no forks is released by the origin free alone.
func TestSnapStateOriginFreeReleasesForklessSnapshot(t *testing.T) {
	ss := newSnapState()
	ss.snaps[3] = &snapInfo{origBase: 0x5000, npages: 7, refs: 1}
	ss.snaps[4] = &snapInfo{origBase: 0x9000, npages: 2, refs: 1}
	release, npages := ss.originFreed(0x5000)
	if len(release) != 1 || release[0] != 3 || npages != 7 {
		t.Fatalf("originFreed = %v/%d, want [3]/7", release, npages)
	}
	if _, ok := ss.snaps[4]; !ok {
		t.Fatal("unrelated snapshot released")
	}
}

// The replicated-state encoding round-trips the new fields: handleGone
// and the per-writer fork-free dedup records.
func TestSnapStateEncodeRoundTrip(t *testing.T) {
	ss := newSnapState()
	ss.nextSnap = 9
	ss.snaps[2] = &snapInfo{origBase: 0x1000, npages: 4, refs: 2, handleGone: true}
	ss.forks[0x2000] = 2
	ss.lastSnap[7] = snapRecord{seq: 3, snap: 2}
	ss.lastFork[7] = forkRecord{seq: 4, resp: proto.ForkASResp{Base: 0x2000, OrigBase: 0x1000, NPages: 4}}
	ss.lastFreeFork[7] = freeForkRecord{seq: 5, resp: proto.FreeResp{
		Fork: true, Snap: 2, NPages: 4, Release: []uint64{2},
	}}

	var w proto.Writer
	ss.encode(&w)

	got := newSnapState()
	r := &proto.Reader{B: w.B}
	got.decode(r)
	if r.Err() != nil {
		t.Fatalf("decode: %v", r.Err())
	}
	si := got.snaps[2]
	if si == nil || si.origBase != 0x1000 || si.npages != 4 || si.refs != 2 || !si.handleGone {
		t.Fatalf("decoded snapInfo = %+v", si)
	}
	rec, ok := got.lastFreeFork[7]
	if !ok || rec.seq != 5 || !rec.resp.Fork || rec.resp.Snap != 2 || rec.resp.NPages != 4 ||
		len(rec.resp.Release) != 1 || rec.resp.Release[0] != 2 {
		t.Fatalf("decoded lastFreeFork = %+v", rec)
	}

	var w2 proto.Writer
	got.encode(&w2)
	if !bytes.Equal(w.B, w2.B) {
		t.Fatal("snapState encoding does not round-trip byte-identically")
	}
}
