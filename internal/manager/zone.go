package manager

import (
	"fmt"
	"sort"

	"repro/internal/layout"
)

// Zone is one contiguous region of the global address space managed by
// the manager's allocator: the shared zone for medium allocations, the
// striped zone for large ones, and the arena zone that hands
// line-aligned chunks to per-thread arenas.
//
// It is a first-fit free-list allocator with coalescing. Simplicity is
// preferred over allocation speed: the paper's point is that *small*
// allocations never reach the manager at all, so the manager-side
// allocator is off the fast path by design.
type Zone struct {
	name  string
	base  layout.Addr
	limit layout.Addr
	next  layout.Addr // bump pointer; space above it has never been used

	free   []span                 // sorted, coalesced free spans below next
	allocs map[layout.Addr]uint64 // live allocations: base -> size

	// Idempotency records for failover-safe allocation. A thread has at
	// most one allocation-plane request outstanding, so one record per
	// writer suffices: a re-issued AllocReq whose Seq matches lastAlloc
	// is answered with the recorded address instead of allocating again
	// (the AllocReq re-issue leak), and a re-issued FreeReq whose Seq
	// matches lastFree is acked without double-freeing. Both maps are
	// replicated in the manager state snapshot.
	lastAlloc map[uint32]allocRecord
	lastFree  map[uint32]uint64
}

// allocRecord remembers one writer's most recent allocation from a zone.
type allocRecord struct {
	seq  uint64
	addr layout.Addr
}

type span struct {
	base layout.Addr
	size uint64
}

// NewZone creates a zone covering [base, limit).
func NewZone(name string, base, limit layout.Addr) *Zone {
	if limit <= base {
		panic(fmt.Sprintf("manager: zone %q has non-positive extent", name))
	}
	return &Zone{
		name:      name,
		base:      base,
		limit:     limit,
		next:      base,
		allocs:    make(map[layout.Addr]uint64),
		lastAlloc: make(map[uint32]allocRecord),
		lastFree:  make(map[uint32]uint64),
	}
}

// DedupAlloc returns the recorded address of writer's allocation seq if
// it matches the most recent one served from this zone — the re-issue
// case. Seq 0 never matches.
func (z *Zone) DedupAlloc(writer uint32, seq uint64) (layout.Addr, bool) {
	if seq == 0 {
		return 0, false
	}
	r, ok := z.lastAlloc[writer]
	if !ok || r.seq != seq {
		return 0, false
	}
	return r.addr, true
}

// NoteAlloc records a served allocation for dedup.
func (z *Zone) NoteAlloc(writer uint32, seq uint64, addr layout.Addr) {
	if seq != 0 {
		z.lastAlloc[writer] = allocRecord{seq: seq, addr: addr}
	}
}

// DedupFree reports whether writer's free seq was already applied.
func (z *Zone) DedupFree(writer uint32, seq uint64) bool {
	return seq != 0 && z.lastFree[writer] == seq
}

// NoteFree records a served free for dedup.
func (z *Zone) NoteFree(writer uint32, seq uint64) {
	if seq != 0 {
		z.lastFree[writer] = seq
	}
}

// Alloc returns the base of a free range of the given size and
// alignment, or an error if the zone is exhausted.
func (z *Zone) Alloc(size uint64, align int) (layout.Addr, error) {
	if size == 0 {
		return 0, fmt.Errorf("manager: zero-size allocation in zone %q", z.name)
	}
	if align <= 0 {
		return 0, fmt.Errorf("manager: bad alignment %d in zone %q", align, z.name)
	}
	// First fit in the free list, honoring alignment by splitting.
	// Alignment is arbitrary (striped-zone groups of lineSize*servers
	// are not powers of two), so round with division.
	alignUp := func(a layout.Addr) layout.Addr {
		n := layout.Addr(align)
		return (a + n - 1) / n * n
	}
	for i, s := range z.free {
		a := alignUp(s.base)
		pad := uint64(a - s.base)
		if s.size < pad+size {
			continue
		}
		z.removeSpan(i)
		if pad > 0 {
			z.insertSpan(span{base: s.base, size: pad})
		}
		if rest := s.size - pad - size; rest > 0 {
			z.insertSpan(span{base: a + layout.Addr(size), size: rest})
		}
		z.allocs[a] = size
		return a, nil
	}
	// Bump allocation.
	a := alignUp(z.next)
	if pad := uint64(a - z.next); pad > 0 {
		z.insertSpan(span{base: z.next, size: pad})
	}
	end := a + layout.Addr(size)
	if end > z.limit {
		return 0, fmt.Errorf("manager: zone %q exhausted (%d bytes requested, %d available)",
			z.name, size, uint64(z.limit-a))
	}
	z.next = end
	z.allocs[a] = size
	return a, nil
}

// Free returns an allocation to the zone.
func (z *Zone) Free(addr layout.Addr) error {
	size, ok := z.allocs[addr]
	if !ok {
		return fmt.Errorf("manager: free of unallocated address %#x in zone %q", uint64(addr), z.name)
	}
	delete(z.allocs, addr)
	z.insertSpan(span{base: addr, size: size})
	return nil
}

// Contains reports whether addr lies in this zone.
func (z *Zone) Contains(addr layout.Addr) bool { return addr >= z.base && addr < z.limit }

// Live reports the number of outstanding allocations.
func (z *Zone) Live() int { return len(z.allocs) }

// InUse reports the total bytes currently allocated.
func (z *Zone) InUse() uint64 {
	var n uint64
	for _, s := range z.allocs {
		n += s
	}
	return n
}

func (z *Zone) removeSpan(i int) {
	z.free = append(z.free[:i], z.free[i+1:]...)
}

// insertSpan adds a span keeping the list sorted and coalesced.
func (z *Zone) insertSpan(s span) {
	i := sort.Search(len(z.free), func(i int) bool { return z.free[i].base > s.base })
	z.free = append(z.free, span{})
	copy(z.free[i+1:], z.free[i:])
	z.free[i] = s
	// Coalesce with successor, then predecessor.
	if i+1 < len(z.free) && z.free[i].base+layout.Addr(z.free[i].size) == z.free[i+1].base {
		z.free[i].size += z.free[i+1].size
		z.removeSpan(i + 1)
	}
	if i > 0 && z.free[i-1].base+layout.Addr(z.free[i-1].size) == z.free[i].base {
		z.free[i-1].size += z.free[i].size
		z.removeSpan(i)
	}
	// A span reaching the bump pointer melts back into virgin space.
	if n := len(z.free); n > 0 && z.free[n-1].base+layout.Addr(z.free[n-1].size) == z.next {
		z.next = z.free[n-1].base
		z.free = z.free[:n-1]
	}
}
