package manager

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/scl"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// newLiveEnv builds a manager with liveness enabled. Unlike newEnv it
// installs no shutdown cleanup: liveness tests end the manager
// themselves.
func newLiveEnv(t *testing.T, lease time.Duration, live *stats.Liveness) *testEnv {
	t.Helper()
	env := &testEnv{fab: simnet.NewFabric(testLink)}
	env.mgr = New(scl.NewSimEndpoint(env.fab, mgrNode), layout.DefaultGeometry())
	env.mgr.EnableLiveness(lease, live, nil)
	env.wg.Add(1)
	go func() {
		defer env.wg.Done()
		env.mgr.Run()
	}()
	return env
}

func (e *testEnv) shutdown(t *testing.T) {
	t.Helper()
	c := e.client(t, 999)
	var ack proto.Ack
	if _, err := c.ep.Call(mgrNode, &proto.Shutdown{}, &ack, 0); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	e.wg.Wait()
}

func (c *client) beat(bye bool) {
	c.t.Helper()
	c.beatFor(c.id, bye)
}

// beatFor posts a heartbeat on behalf of member id — used when the
// member's own client struct is busy in a blocked call on another
// goroutine.
func (c *client) beatFor(id uint32, bye bool) {
	c.t.Helper()
	if _, err := c.ep.Post(mgrNode, &proto.Heartbeat{
		Member: id, Class: proto.MemberThread, Node: id, Bye: bye,
	}, 0); err != nil {
		c.t.Fatalf("heartbeat: %v", err)
	}
}

// Satellite: every flavour of parked waiter — lock queue, barrier
// arrival, cond waiter — must observe a typed proto.ErrShutdown when
// the manager shuts down, never a hang or an untyped failure.
func TestShutdownFailsParkedWaitersTyped(t *testing.T) {
	env := newLiveEnv(t, time.Hour, nil)
	holder := env.client(t, 1)
	locker := env.client(t, 2)
	arriver := env.client(t, 3)
	sleeper := env.client(t, 4)

	if _, err := holder.lock(1); err != nil {
		t.Fatal(err)
	}
	if _, err := sleeper.lock(2); err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, 3)
	go func() {
		_, err := locker.lock(1) // parks behind holder
		errs <- err
	}()
	go func() {
		_, err := arriver.barrier(9, 2, nil) // parks: second arrival never comes
		errs <- err
	}()
	go func() {
		sleeper.interval++
		var resp proto.CondWaitResp
		_, err := sleeper.ep.Call(mgrNode, &proto.CondWaitReq{
			Cond: 8, Lock: 2, Thread: sleeper.id,
			LastSeen: sleeper.lastSeen, Interval: sleeper.interval,
		}, &resp, sleeper.at)
		errs <- err
	}()

	// Give the three calls time to park in the manager's event loop.
	time.Sleep(25 * time.Millisecond)
	env.shutdown(t)

	for i := 0; i < 3; i++ {
		err := <-errs
		if err == nil {
			t.Fatal("a parked waiter completed successfully across shutdown")
		}
		if !errors.Is(err, proto.ErrShutdown) {
			t.Errorf("parked waiter error not typed as shutdown: %v", err)
		}
	}
}

// The lease table must declare a silent lock holder dead, force-release
// its lock to the parked waiter, fence its later requests with a typed
// proto.ErrPeerDied, and complete barriers at the reduced membership.
func TestLeaseReclaimsDeadLockHolder(t *testing.T) {
	live := new(stats.Liveness)
	env := newLiveEnv(t, 10*time.Millisecond, live)
	dead := env.client(t, 601)
	alive := env.client(t, 602)
	prodder := env.client(t, 603)

	dead.beat(false)
	alive.beat(false)
	if _, err := dead.lock(1); err != nil {
		t.Fatal(err)
	}

	granted := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := alive.lock(1) // parks behind the soon-dead holder
		granted <- err
	}()

	// The dead client goes silent; the prodder keeps beating on behalf
	// of itself and the parked live member, which is also what prods the
	// manager's reaper.
	deadline := time.Now().Add(5 * time.Second)
	for live.ThreadsDead.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder was never declared dead")
		}
		time.Sleep(2 * time.Millisecond)
		prodder.beatFor(602, false)
		prodder.beat(false)
	}
	wg.Wait()
	if err := <-granted; err != nil {
		t.Fatalf("parked waiter not granted the reclaimed lock: %v", err)
	}
	if live.LocksReclaimed.Load() == 0 {
		t.Error("no lock was counted reclaimed")
	}

	// The dead member's node is fenced with a typed error.
	if _, err := dead.lock(5); err == nil {
		t.Fatal("request from a dead node succeeded")
	} else if !errors.Is(err, proto.ErrPeerDied) {
		t.Errorf("fencing error not typed as peer death: %v", err)
	}

	// SPMD barriers complete at the reduced membership: a 2-party
	// barrier is satisfied by the single live thread.
	if _, err := alive.barrier(7, 2, nil); err != nil {
		t.Fatalf("barrier did not recompute around the dead thread: %v", err)
	}
	if err := alive.unlock(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	env.shutdown(t)
}

// Regression: a graceful Bye from a thread still holding sync state must
// reclaim that state. Before the fix the member simply left the table —
// no lease could ever expire for it, so a lock it held leaked forever
// and the parked waiter below hung.
func TestByeReclaimsHeldSyncState(t *testing.T) {
	live := new(stats.Liveness)
	env := newLiveEnv(t, time.Hour, live) // lease can never expire: only Bye reclaims
	holder := env.client(t, 1)
	waiter := env.client(t, 2)
	third := env.client(t, 3)

	holder.beat(false)
	waiter.beat(false)
	third.beat(false)
	if _, err := holder.lock(1); err != nil {
		t.Fatal(err)
	}

	granted := make(chan error, 1)
	go func() {
		_, err := waiter.lock(1) // parks behind holder
		granted <- err
	}()
	for env.mgr.Stats().LockWaits.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	// The holder departs gracefully without unlocking.
	holder.beat(true)
	if err := <-granted; err != nil {
		t.Fatalf("parked waiter not granted the lock left behind by a Bye: %v", err)
	}
	if live.LocksReclaimed.Load() == 0 {
		t.Error("Bye with a held lock did not count a reclamation")
	}
	if n := live.ThreadsDead.Load(); n != 0 {
		t.Errorf("graceful Bye declared the member dead (%d)", n)
	}
	if err := waiter.unlock(1, nil, nil); err != nil {
		t.Fatal(err)
	}

	// A Bye also recomputes barriers: with the waiter parked at a
	// 2-party barrier, the third member's departure completes the round
	// at the reduced membership instead of leaving it stuck.
	arrived := make(chan error, 1)
	go func() {
		_, err := waiter.barrier(7, 2, nil)
		arrived <- err
	}()
	for env.mgr.Stats().NoticesStored.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	third.beat(true)
	if err := <-arrived; err != nil {
		t.Fatalf("barrier did not recompute around the departed member: %v", err)
	}
	env.shutdown(t)
}

// Regression: handleCondSignal's uncontended re-acquire must apply the
// same deadThreads fence release() applies. A thread can be declared
// dead while its self-reported node differs from the node it sends from
// (version skew, misconfiguration), so its cond wait can park after the
// reclamation sweep; pre-fix, signaling then landed the lock on the
// corpse and the signaler's next acquire hung forever.
func TestCondSignalEvictsDeadWaiter(t *testing.T) {
	live := new(stats.Liveness)
	env := newLiveEnv(t, 10*time.Millisecond, live)
	w := env.client(t, 601)
	sig := env.client(t, 602)

	// Member 601 self-reports a node id that is not where its requests
	// come from, then goes silent: the death fences node 9601 while
	// requests from node 601 keep flowing.
	if _, err := sig.ep.Post(mgrNode, &proto.Heartbeat{
		Member: 601, Class: proto.MemberThread, Node: 9601,
	}, 0); err != nil {
		t.Fatal(err)
	}
	sig.beat(false)
	deadline := time.Now().Add(5 * time.Second)
	for live.ThreadsDead.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("member 601 was never declared dead")
		}
		time.Sleep(2 * time.Millisecond)
		sig.beat(false)
	}

	// The dead-declared thread parks on the condition (its requests are
	// not fenced: they come from node 601, not 9601).
	if _, err := w.lock(1); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() {
		w.interval++
		var resp proto.CondWaitResp
		_, err := w.ep.Call(mgrNode, &proto.CondWaitReq{
			Cond: 8, Lock: 1, Thread: w.id,
			LastSeen: w.lastSeen, Interval: w.interval,
		}, &resp, w.at)
		waitErr <- err
	}()
	for env.mgr.Stats().CondWaits.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	evictedBefore := live.WaitersEvicted.Load()
	var ack proto.Ack
	if _, err := sig.ep.Call(mgrNode, &proto.CondSignalReq{Cond: 8, Thread: sig.id}, &ack, sig.at); err != nil {
		t.Fatal(err)
	}
	// The woken corpse is evicted with a typed error, not granted.
	if err := <-waitErr; err == nil {
		t.Fatal("cond wait by a dead-declared thread was granted the lock")
	} else if !errors.Is(err, proto.ErrPeerDied) {
		t.Errorf("eviction error not typed as peer death: %v", err)
	}
	if live.WaitersEvicted.Load() == evictedBefore {
		t.Error("eviction was not counted")
	}
	// The lock did not land on the corpse: the signaler acquires it
	// immediately (pre-fix this hung).
	if _, err := sig.lock(1); err != nil {
		t.Fatal(err)
	}
	if err := sig.unlock(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	env.shutdown(t)
}

// Regression: malformed heartbeats must be observable — counted in
// stats.Liveness and left as a CatLive trace event — instead of being
// silently dropped while the sender's lease quietly starves.
func TestMalformedHeartbeatIsCounted(t *testing.T) {
	live := new(stats.Liveness)
	env := newLiveEnv(t, time.Hour, live)
	// Raw port: a dangling varint continuation byte fails Heartbeat
	// decode at the manager.
	raw := env.fab.NewPort(888)
	if _, err := raw.Post(mgrNode, uint16(proto.KHeartbeat), []byte{0x80}, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for live.HeartbeatsMalformed.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("malformed heartbeat was never counted")
		}
		time.Sleep(time.Millisecond)
	}
	env.shutdown(t)
}

// A member that says goodbye (Bye heartbeat) leaves the lease table
// gracefully: it is not declared dead and liveness counters stay quiet.
func TestByeRemovesMemberWithoutDeath(t *testing.T) {
	live := new(stats.Liveness)
	env := newLiveEnv(t, 10*time.Millisecond, live)
	c := env.client(t, 1)
	prodder := env.client(t, 2)

	c.beat(false)
	c.beat(true) // goodbye
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		prodder.beat(false)
		time.Sleep(2 * time.Millisecond)
	}
	if n := live.ThreadsDead.Load(); n != 0 {
		t.Fatalf("retired member declared dead (%d)", n)
	}
	// The departed member is not fenced either.
	if _, err := c.lock(1); err != nil {
		t.Fatalf("request from a retired member failed: %v", err)
	}
	if err := c.unlock(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	env.shutdown(t)
}
