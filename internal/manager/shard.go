package manager

import (
	"fmt"
	"math/bits"

	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/scl"
	"repro/internal/vtime"
)

type waitKind uint8

const (
	waitLock waitKind = iota // answer with LockResp
	waitCond                 // answer with CondWaitResp
)

// waiter is a thread parked on a lock (directly or resuming from a
// condition wait).
type waiter struct {
	req      *scl.Request
	thread   uint32
	node     uint32
	lastSeen uint64
	kind     waitKind
	// detached marks a waiter whose LockReq was already answered with
	// Queued (peer-to-peer handoff mode): its grant — or its eviction —
	// travels as a one-way LockGrant, never as a reply. req is nil.
	detached bool
}

type lockState struct {
	held   bool
	holder uint32
	queue  []waiter

	// Peer-to-peer handoff bookkeeping (active only when the manager
	// runs sharded on a sequenced fabric).
	holderNode uint32 // node hosting the current holder
	gen        uint64 // tenure number, bumped once per grant
	grantSeq   uint64 // notice horizon the current tenure started with
	trainLeft  int    // pre-announced successors still outstanding
	trainSeq   uint64 // anchor horizon the outstanding train was composed at
}

type barrierState struct {
	count   uint32
	arrived []waiter
	dead    map[uint32]bool // threads declared dead (SPMD: all expected)

	// Replicated-manager failover bookkeeping. Clients stamp each
	// arrival with a 1-based round number (BarrierReq.Epoch); epoch
	// counts the rounds this instance has released and counted remembers
	// the highest round each thread's arrival was counted in, so a
	// re-issued arrival (its release reply was lost to a failover) is
	// answered or re-attached instead of double-counted.
	epoch   uint64
	counted map[uint32]uint64
}

// effective is the arrival count that completes a round: the declared
// count minus dead members, floored at one.
func (bs *barrierState) effective() int {
	eff := int(bs.count) - len(bs.dead)
	if eff < 1 {
		eff = 1
	}
	return eff
}

// condEntry is a parked condition waiter; it remembers which lock to
// re-acquire on wakeup.
type condEntry struct {
	w    waiter
	lock uint32
}

type condState struct {
	waiters []condEntry
}

type itemKind uint8

const (
	itemReq      itemKind = iota // a decoded client request
	itemErr                      // a request that failed to decode
	itemCondPark                 // cross-shard: park a cond waiter here
	itemLockWake                 // cross-shard: a signaled waiter re-acquires
	itemReclaim                  // liveness: reclaim a thread's sync state
	itemStop                     // shut the shard down
)

// mgrItem is one unit of work for a shard. The dispatcher decodes each
// request once and routes it to the home shard; shards exchange
// cross-shard work (cond park/wake, reclamation) with the same type.
type mgrItem struct {
	kind     itemKind
	req      *scl.Request
	msg      proto.Msg  // itemReq: the decoded request
	err      error      // itemErr
	cond     uint32     // itemCondPark: condition id
	park     condEntry  // itemCondPark
	lock     uint32     // itemLockWake: lock to re-acquire
	wake     waiter     // itemLockWake
	at       vtime.Time // causal floor: itemLockWake's cond home, itemReq's replication round
	tid      uint32     // itemReclaim
	markDead bool       // itemReclaim: also fence future grants
	code     uint16     // itemStop
	why      string     // itemStop
	// tick is the request's notice-directory position: a reserved
	// ticket for interval-carrying requests, the arrival horizon for
	// everything else. Cross-shard items inherit the originating
	// item's tick.
	tick uint64
}

// shard is one synchronization home: it owns a disjoint set of locks,
// barriers, conditions and allocation zones, with its own virtual
// clock, so independent sync traffic no longer serializes on a single
// manager clock. In inline mode (one shard, or a sequenced fabric) the
// dispatcher calls process directly; otherwise each shard runs its own
// goroutine fed by ch.
type shard struct {
	m  *Manager
	id int
	ch chan mgrItem

	clock  *vtime.Clock
	mirror atomicTime // clock published for cross-goroutine readers
	tick   uint64     // directory ticket/horizon of the item in flight

	locks       map[uint32]*lockState
	barriers    map[uint32]*barrierState
	conds       map[uint32]*condState
	deadThreads map[uint32]bool // skip dead threads when granting locks
}

const shardQueueDepth = 1024

func newShard(m *Manager, id int) *shard {
	return &shard{
		m:           m,
		id:          id,
		ch:          make(chan mgrItem, shardQueueDepth),
		clock:       vtime.NewClock(0),
		locks:       make(map[uint32]*lockState),
		barriers:    make(map[uint32]*barrierState),
		conds:       make(map[uint32]*condState),
		deadThreads: make(map[uint32]bool),
	}
}

// run drains the shard's queue until an itemStop (worker mode only).
func (sh *shard) run() {
	defer sh.m.wg.Done()
	for it := range sh.ch {
		if sh.process(it) {
			return
		}
	}
}

// process executes one item and publishes the advanced clock. Returns
// true when the shard should stop.
func (sh *shard) process(it mgrItem) (stop bool) {
	sh.tick = it.tick
	switch it.kind {
	case itemReq:
		sh.clock.AdvanceTo(it.req.Arrive())
		// A replicated mutation is applied only after the slowest
		// follower acked it; the round's completion time floors the
		// clock so replication latency is visible in the reply.
		sh.clock.AdvanceTo(it.at)
		sh.clock.Advance(it.req.Svc())
		sh.handle(it.req, it.msg)
	case itemErr:
		sh.clock.AdvanceTo(it.req.Arrive())
		sh.clock.Advance(it.req.Svc())
		if !it.req.OneWay() {
			it.req.ReplyError(it.err, sh.clock.Now())
		}
	case itemCondPark:
		cs := sh.cond(it.cond)
		cs.waiters = append(cs.waiters, it.park)
	case itemLockWake:
		sh.clock.AdvanceTo(it.at)
		sh.wakeFromCond(it.lock, it.wake)
	case itemReclaim:
		sh.reclaim(it.tid, it.markDead)
	case itemStop:
		sh.failParked(it.code, it.why)
		stop = true
	}
	sh.mirror.Store(sh.clock.Now())
	return stop
}

func (sh *shard) handle(req *scl.Request, msg proto.Msg) {
	switch mm := msg.(type) {
	case *proto.AllocReq:
		sh.handleAlloc(req, mm)
	case *proto.FreeReq:
		sh.handleFree(req, mm)
	case *proto.RegisterReq:
		sh.handleRegister(req, mm)
	case *proto.LockReq:
		sh.handleLock(req, mm)
	case *proto.UnlockReq:
		sh.handleUnlock(req, mm)
	case *proto.BarrierReq:
		sh.handleBarrier(req, mm)
	case *proto.CondWaitReq:
		sh.handleCondWait(req, mm)
	case *proto.CondSignalReq:
		sh.handleCondSignal(req, mm)
	case *proto.SnapshotASReq:
		sh.handleSnapshotAS(req, mm)
	case *proto.ForkASReq:
		sh.handleForkAS(req, mm)
	}
}

// ---------------------------------------------------------------------
// Allocation.

func (sh *shard) handleAlloc(req *scl.Request, ar *proto.AllocReq) {
	m := sh.m
	align := int(ar.Align)
	if align < 16 {
		align = 16
	}
	var (
		zone *Zone
		err  error
	)
	switch ar.Strategy {
	case proto.AllocArenaChunk:
		// Arena chunks are line-aligned so no two threads' arenas ever
		// share a cache line — the paper's no-false-sharing guarantee
		// for locally allocated data.
		zone, align = m.arenaZone, m.geo.LineSize()
	case proto.AllocShared:
		zone = m.sharedZone
	case proto.AllocStriped:
		zone, align = m.stripedZone, m.geo.LineSize()*m.geo.NumServers
	default:
		err = fmt.Errorf("manager: unknown allocation strategy %d", ar.Strategy)
	}
	if err != nil {
		req.ReplyError(err, sh.clock.Now())
		return
	}
	// A request re-issued across a failover (same writer, same Seq) was
	// already served — possibly by a dead leader whose reply was lost,
	// with the allocation preserved through the replicated log. Answer
	// with the original address instead of leaking a second block.
	if addr, ok := zone.DedupAlloc(ar.Thread, ar.Seq); ok {
		m.stats.DedupAllocs.Add(1)
		req.Reply(&proto.AllocResp{Addr: uint64(addr)}, sh.clock.Now())
		return
	}
	addr, err := zone.Alloc(ar.Size, align)
	if err != nil {
		req.ReplyError(err, sh.clock.Now())
		return
	}
	zone.NoteAlloc(ar.Thread, ar.Seq, addr)
	m.stats.Allocs.Add(1)
	req.Reply(&proto.AllocResp{Addr: uint64(addr)}, sh.clock.Now())
}

func (sh *shard) handleFree(req *scl.Request, fr *proto.FreeReq) {
	m := sh.m
	addr := layout.Addr(fr.Addr)
	var zone *Zone
	switch {
	case m.arenaZone.Contains(addr):
		zone = m.arenaZone
	case m.sharedZone.Contains(addr):
		zone = m.sharedZone
	case m.stripedZone.Contains(addr):
		zone = m.stripedZone
	default:
		req.ReplyError(fmt.Errorf("manager: free of address %#x outside all zones", fr.Addr), sh.clock.Now())
		return
	}
	ss := m.snaps
	if zone == m.stripedZone && !fr.Unmapped {
		if snap, ok := ss.forks[fr.Addr]; ok {
			// Phase one of freeing a forked range: drop the manager's fork
			// bookkeeping and tell the caller the geometry to unmap at the
			// homes, but withhold the zone space — first-fit would reissue
			// it while the homes still resolve reads through the stale
			// fork mapping. The caller commits with a second, Unmapped
			// FreeReq once every home acked its ForkUnmap.
			if rec, ok := ss.lastFreeFork[fr.Thread]; ok && fr.Seq != 0 && rec.seq == fr.Seq {
				m.stats.DedupFrees.Add(1)
				resp := rec.resp
				req.Reply(&resp, sh.clock.Now())
				return
			}
			resp := ss.forkFree(fr.Addr, snap)
			if fr.Seq != 0 {
				ss.lastFreeFork[fr.Thread] = freeForkRecord{seq: fr.Seq, resp: resp}
			}
			req.Reply(&resp, sh.clock.Now())
			return
		}
	}
	// A free re-issued across failover was already applied; ack it
	// idempotently instead of double-freeing.
	if zone.DedupFree(fr.Thread, fr.Seq) {
		m.stats.DedupFrees.Add(1)
		req.Reply(&proto.FreeResp{}, sh.clock.Now())
		return
	}
	if err := zone.Free(addr); err != nil {
		req.ReplyError(err, sh.clock.Now())
		return
	}
	zone.NoteFree(fr.Thread, fr.Seq)
	resp := &proto.FreeResp{}
	if zone == m.stripedZone {
		// Freeing a striped range (a snapshotted image, or the Unmapped
		// commit of a dead fork that was itself re-snapshotted) drops the
		// handle reference of every snapshot sealed from it; snapshots
		// with no remaining forks are released, and the caller relays the
		// release to the homes holding the sealed frames.
		resp.Release, resp.NPages = ss.originFreed(fr.Addr)
	}
	m.stats.Frees.Add(1)
	req.Reply(resp, sh.clock.Now())
}

func (sh *shard) handleRegister(req *scl.Request, rr *proto.RegisterReq) {
	sh.m.board.ensure(rr.Thread, 0)
	req.Reply(&proto.Ack{}, sh.clock.Now())
}

// ---------------------------------------------------------------------
// Locks.

func (sh *shard) lock(id uint32) *lockState {
	ls, ok := sh.locks[id]
	if !ok {
		ls = &lockState{}
		sh.locks[id] = ls
	}
	return ls
}

func (sh *shard) handleLock(req *scl.Request, lr *proto.LockReq) {
	m := sh.m
	m.board.ensure(lr.Thread, lr.LastSeen)
	ls := sh.lock(lr.Lock)
	if m.replicated() && ls.held && ls.holder == lr.Thread {
		// Duplicate of an acquire already granted — the grant reply was
		// lost to a leader failover and the client re-issued. Re-answer
		// from the recorded tenure without granting again, so grant
		// conservation holds across the failover.
		ns := m.board.rangeAfter(lr.LastSeen, ls.grantSeq)
		req.Reply(&proto.LockResp{Seq: ls.grantSeq, Notices: ns}, sh.clock.Now())
		return
	}
	if m.replicated() && ls.held {
		// A re-issued acquire whose first copy is still queued (as a
		// replayed waiter applied from the log): attach the live
		// request to it, preserving its FIFO position.
		for i := range ls.queue {
			qw := &ls.queue[i]
			if qw.thread == lr.Thread && qw.req != nil && qw.req.Replayed() {
				qw.req = req
				qw.lastSeen = lr.LastSeen
				return
			}
		}
	}
	w := waiter{
		req:      req,
		thread:   lr.Thread,
		node:     uint32(req.Src()),
		lastSeen: lr.LastSeen,
		kind:     waitLock,
	}
	if ls.held {
		m.stats.LockWaits.Add(1)
		if m.p2p {
			// Detach the waiter: answer its RPC now with Queued so the
			// grant — composed by the current holder at its release, or
			// by this home as a fallback — can arrive as a one-way
			// LockGrant instead of a manager round trip.
			w.detached = true
			w.req = nil
			req.Reply(&proto.LockResp{Queued: true}, sh.clock.Now())
			ls.queue = append(ls.queue, w)
			sh.maybeSendTrain(lr.Lock, ls)
			return
		}
		ls.queue = append(ls.queue, w)
		return
	}
	sh.grant(lr.Lock, ls, w)
}

// grant hands the lock to w and answers its acquire with fresh notices.
func (sh *shard) grant(id uint32, ls *lockState, w waiter) {
	m := sh.m
	ls.held = true
	ls.holder = w.thread
	ls.holderNode = w.node
	ls.gen++
	ls.trainLeft = 0
	m.stats.LockGrants.Add(1)
	ns, seq := m.board.acquire(w.thread, w.lastSeen, sh.tick)
	ls.grantSeq = seq
	now := sh.clock.Now()
	switch {
	case w.detached:
		// Central dispatch of an already-answered waiter: the grant is a
		// one-way post carrying the full notice backlog — and a snapshot
		// of the remaining queue as an announcement train, so the convoy
		// behind this waiter is passed peer-to-peer from here. Attaching
		// the train to the grant itself (rather than chasing the new
		// holder with a separate announcement) is what lets short
		// critical sections hand off: a chase can only be delivered while
		// the holder is parked, and a holder whose working set is warm
		// never parks between acquire and release.
		var train []proto.SuccAnn
		if m.p2p {
			train = sh.composeTrain(ls)
		}
		m.post(w.node, &proto.LockGrant{Lock: id, Gen: ls.gen, Seq: seq, Notices: ns, Train: train}, now)
		if len(train) > 0 {
			ls.trainLeft = len(train)
			ls.trainSeq = seq
			m.stats.NextWaiters.Add(int64(len(train)))
		}
	case w.kind == waitLock:
		var gen uint64
		if m.p2p {
			gen = ls.gen
		}
		w.req.Reply(&proto.LockResp{Seq: seq, Notices: ns, Gen: gen}, now)
	default:
		w.req.Reply(&proto.CondWaitResp{Seq: seq, Notices: ns}, now)
	}
	if m.p2p {
		sh.maybeSendTrain(id, ls)
	}
}

// maxTrain caps how many successors one announcement snapshots. The
// batches of a long train overlap heavily (every waiter is missing
// roughly the same backlog), so an unbounded train would square the
// announcement's byte cost against the queue length.
const maxTrain = 32

// maybeSendTrain snapshots the waiter queue and announces it to the
// current holder so the lock can be passed waiter-to-waiter for the
// whole convoy without a manager round trip per hop. At most one train
// is outstanding per lock (trainLeft counts the hops still to come);
// only a prefix of plain detached lock waiters qualifies — cond
// re-acquirers and dead threads end the snapshot and keep the central
// path. Each entry's notice batch covers (that waiter's horizon,
// grantSeq]; everything filled above the anchor by the train itself
// rides the grants as Inline intervals, appended hop by hop.
func (sh *shard) maybeSendTrain(id uint32, ls *lockState) {
	m := sh.m
	if !ls.held || ls.trainLeft > 0 || len(ls.queue) == 0 {
		return
	}
	train := sh.composeTrain(ls)
	if len(train) == 0 {
		return
	}
	m.post(ls.holderNode, &proto.NextWaiter{
		Lock:  id,
		Gen:   ls.gen,
		Seq:   ls.grantSeq,
		Train: train,
	}, sh.clock.Now())
	ls.trainLeft = len(train)
	ls.trainSeq = ls.grantSeq
	m.stats.NextWaiters.Add(int64(len(train)))
}

// composeTrain snapshots the qualifying prefix of the waiter queue as
// announcement-train entries, each with the notice batch covering (that
// waiter's horizon, the current grantSeq]. Only plain detached live lock
// waiters qualify; the first cond re-acquirer or dead thread ends the
// snapshot and keeps the central path for the rest.
func (sh *shard) composeTrain(ls *lockState) []proto.SuccAnn {
	m := sh.m
	var train []proto.SuccAnn
	for _, w := range ls.queue {
		if w.kind != waitLock || !w.detached || sh.deadThreads[w.thread] {
			break
		}
		train = append(train, proto.SuccAnn{
			Waiter:     w.thread,
			WaiterNode: w.node,
			Notices:    m.board.rangeAfter(w.lastSeen, ls.grantSeq),
		})
		if len(train) == maxTrain {
			break
		}
	}
	return train
}

// handleUnlock accepts both forms of unlock: the classic acknowledged
// round trip, and the pipelined one-way post (the releaser overlaps its
// diff shipping with this notice; interval tags at the homes restore
// the ordering the missing ack used to provide).
func (sh *shard) handleUnlock(req *scl.Request, ur *proto.UnlockReq) {
	m := sh.m
	ls := sh.lock(ur.Lock)
	if m.replicated() && m.board.filled(ur.Thread, ur.Interval) {
		// Duplicate of a release already applied — the ack was lost to
		// a leader failover and the client re-issued. The interval is
		// in the directory and the lock has moved on; ack without
		// re-filling or re-releasing. Checked before the holder test:
		// the lock is usually held by someone else by now.
		m.board.cancel(sh.tick)
		if !req.OneWay() {
			req.Reply(&proto.Ack{}, sh.clock.Now())
		}
		return
	}
	if !ls.held || ls.holder != ur.Thread {
		// One-way: the lock was force-released after the sender was
		// declared dead (or the sender is confused); dropping the
		// request is the only fence available. Its reserved directory
		// ticket is cancelled — the corpse's interval must not become
		// visible to acquirers that already moved past the reclamation.
		m.board.cancel(sh.tick)
		if !req.OneWay() {
			req.ReplyError(fmt.Errorf("manager: unlock of lock %d by non-holder thread %d", ur.Lock, ur.Thread), sh.clock.Now())
		}
		return
	}
	m.stats.Unlocks.Add(1)
	if m.p2p && ur.HandedOff != 0 {
		sh.completeHandoff(ur.Lock, ls, ur, req)
		return
	}
	m.board.fill(sh.tick, proto.IntervalTag{Writer: ur.Thread, Interval: ur.Interval}, ur.Pages, ur.Records)
	if !req.OneWay() {
		req.Reply(&proto.Ack{}, sh.clock.Now())
	}
	sh.release(ur.Lock, ls)
}

// completeHandoff finishes a peer-to-peer grant: the holder already
// forwarded the lock (with notices) to the successor named by the last
// NextWaiter; the manager re-points its bookkeeping without composing a
// grant of its own.
func (sh *shard) completeHandoff(id uint32, ls *lockState, ur *proto.UnlockReq, req *scl.Request) {
	m := sh.m
	prevSeq := ls.grantSeq
	seq := sh.tick
	m.board.fill(seq, proto.IntervalTag{Writer: ur.Thread, Interval: ur.Interval}, ur.Pages, ur.Records)
	idx := -1
	for i, w := range ls.queue {
		if w.thread == ur.HandedOff {
			idx = i
			break
		}
	}
	if idx < 0 {
		// The named successor is no longer queued; fall back to a
		// central release. The rest of the train (if any) is moot — the
		// old holder already dropped its copy at this unlock.
		if !req.OneWay() {
			req.Reply(&proto.Ack{}, sh.clock.Now())
		}
		sh.release(id, ls)
		return
	}
	w := ls.queue[idx]
	ls.queue = append(ls.queue[:idx], ls.queue[idx+1:]...)
	ls.held = true
	ls.holder = w.thread
	ls.holderNode = w.node
	ls.gen++
	if ls.trainLeft > 0 {
		ls.trainLeft--
	}
	// The successor's direct grant covered the contiguous backlog up to
	// the train's anchor, plus the closing intervals of every train
	// holder since riding Inline. Its contiguous horizon is therefore
	// the anchor — the inline intervals above it are redelivered by the
	// directory at a later acquire and deduplicated client-side.
	// Recording the new tenure's horizon as seq keeps the NEXT train's
	// batches complete.
	ls.grantSeq = seq
	anchor := ls.trainSeq
	if anchor == 0 {
		anchor = prevSeq
	}
	m.board.saw(w.thread, anchor)
	m.stats.LockGrants.Add(1)
	m.stats.Handoffs.Add(1)
	if !req.OneWay() {
		req.Reply(&proto.Ack{}, sh.clock.Now())
	}
	sh.maybeSendTrain(id, ls)
}

// release passes a held lock to the next queued live waiter, if any.
// Waiters whose thread has since been declared dead are skipped, so a
// reclaimed lock never lands on a corpse.
func (sh *shard) release(id uint32, ls *lockState) {
	m := sh.m
	ls.held = false
	// A central release voids any outstanding announcement train: the
	// departing holder dropped its copy without forwarding, so the
	// queued waiters it named must be granted from here.
	ls.trainLeft = 0
	for len(ls.queue) > 0 {
		next := ls.queue[0]
		ls.queue = ls.queue[1:]
		if sh.deadThreads[next.thread] {
			if m.live != nil {
				m.live.WaitersEvicted.Add(1)
			}
			continue
		}
		sh.grant(id, ls, next)
		return
	}
}

// ---------------------------------------------------------------------
// Barriers.

func (sh *shard) handleBarrier(req *scl.Request, br *proto.BarrierReq) {
	m := sh.m
	if br.Count == 0 {
		m.board.cancel(sh.tick)
		req.ReplyError(fmt.Errorf("manager: barrier %d arrival with zero count", br.Barrier), sh.clock.Now())
		return
	}
	m.board.ensure(br.Thread, br.LastSeen)
	bs, ok := sh.barriers[br.Barrier]
	if !ok {
		bs = &barrierState{
			count:   br.Count,
			dead:    make(map[uint32]bool),
			counted: make(map[uint32]uint64),
		}
		// A barrier instance created after a death starts with the
		// reduced membership: the dead can never arrive.
		for tid := range sh.deadThreads {
			bs.dead[tid] = true
		}
		sh.barriers[br.Barrier] = bs
	}
	if bs.count != br.Count {
		m.board.cancel(sh.tick)
		req.ReplyError(fmt.Errorf("manager: barrier %d count mismatch: %d vs %d", br.Barrier, br.Count, bs.count), sh.clock.Now())
		return
	}
	if m.replicated() && br.Epoch != 0 {
		if br.Epoch <= bs.epoch {
			// This round already released — the release reply was lost
			// to a leader failover and the client re-issued. Its
			// interval was filled by the original arrival; answer with
			// the directory frontier without re-counting.
			m.board.cancel(sh.tick)
			ns, seq := m.board.acquire(br.Thread, br.LastSeen, sh.tick)
			req.Reply(&proto.BarrierResp{Seq: seq, Notices: ns}, sh.clock.Now())
			return
		}
		if bs.counted[br.Thread] >= br.Epoch {
			// Counted (as a replayed arrival applied from the log) but
			// the round is still pending: attach the live request so
			// the eventual release answers it.
			m.board.cancel(sh.tick)
			for i := range bs.arrived {
				if bs.arrived[i].thread == br.Thread {
					bs.arrived[i].req = req
					bs.arrived[i].lastSeen = br.LastSeen
				}
			}
			return
		}
		bs.counted[br.Thread] = br.Epoch
	}
	// Arrival is a release: fill this interval's reserved ticket
	// immediately so every later acquire (including the other
	// arrivals) sees it.
	m.board.fill(sh.tick, proto.IntervalTag{Writer: br.Thread, Interval: br.Interval}, br.Pages, br.Records)
	bs.arrived = append(bs.arrived, waiter{
		req:      req,
		thread:   br.Thread,
		node:     uint32(req.Src()),
		lastSeen: br.LastSeen,
	})
	if len(bs.arrived) < bs.effective() {
		return
	}
	sh.releaseBarrier(bs, req.Svc())
}

// releaseBarrier completes a barrier round, answering every parked
// arrival. With a single home the replies post serially, advancing the
// clock by svc per reply — the centralized-barrier fan-out cost. With
// multiple homes each home releases its barriers through a combining
// tree: reply j departs at depth ceil(log2(j+2)) of a binary fan-out,
// so the release cost of a P-wide barrier grows with log P, not P.
func (sh *shard) releaseBarrier(bs *barrierState, svc vtime.Time) {
	m := sh.m
	m.stats.BarrierRounds.Add(1)
	if m.live != nil && len(bs.dead) > 0 {
		m.live.BarriersRecomputed.Add(1)
	}
	bs.epoch++
	if m.nshards == 1 {
		for _, w := range bs.arrived {
			sh.clock.Advance(svc)
			ns, seq := m.board.acquire(w.thread, w.lastSeen, sh.tick)
			w.req.Reply(&proto.BarrierResp{Seq: seq, Notices: ns}, sh.clock.Now())
		}
		bs.arrived = bs.arrived[:0]
		return
	}
	start := sh.clock.Now()
	maxAt := start
	for j, w := range bs.arrived {
		depth := vtime.Time(bits.Len(uint(j + 1)))
		at := start + svc*depth
		ns, seq := m.board.acquire(w.thread, w.lastSeen, sh.tick)
		w.req.Reply(&proto.BarrierResp{Seq: seq, Notices: ns}, at)
		if at > maxAt {
			maxAt = at
		}
	}
	sh.clock.AdvanceTo(maxAt)
	bs.arrived = bs.arrived[:0]
}

// recheckBarrier re-evaluates a barrier after a member death: parked
// arrivals either complete at the recomputed count, or — when the
// barrier can never gather enough live arrivals — fail with
// proto.ErrPeerDied rather than hang.
func (sh *shard) recheckBarrier(id uint32, bs *barrierState) {
	m := sh.m
	if len(bs.arrived) == 0 {
		return
	}
	if len(bs.arrived) >= bs.effective() {
		m.traceLive("barrier-recomputed", map[string]any{
			"barrier": id, "count": bs.count, "effective": bs.effective(),
		})
		sh.releaseBarrier(bs, bs.arrived[len(bs.arrived)-1].req.Svc())
		return
	}
	if live := int(m.liveThreads.Load()); bs.effective() > live {
		if m.isFollower() {
			// A follower's liveThreads is not meaningful (heartbeats
			// only reach the leader); the unsatisfiability decision is
			// the leader's and arrives via the log or a promotion.
			return
		}
		err := fmt.Errorf("manager: barrier %d unsatisfiable: needs %d live arrivals, %d live threads",
			id, bs.effective(), live)
		for _, w := range bs.arrived {
			m.live.WaitersFailed.Add(1)
			w.req.ReplyErrorCode(proto.CodePeerDied, err, sh.clock.Now())
		}
		bs.arrived = bs.arrived[:0]
	}
}

// ---------------------------------------------------------------------
// Condition variables.

func (sh *shard) cond(id uint32) *condState {
	cs, ok := sh.conds[id]
	if !ok {
		cs = &condState{}
		sh.conds[id] = cs
	}
	return cs
}

func (sh *shard) handleCondWait(req *scl.Request, cw *proto.CondWaitReq) {
	m := sh.m
	ls := sh.lock(cw.Lock)
	if m.replicated() && m.board.filled(cw.Thread, cw.Interval) {
		// Duplicate of a wait already applied (reply lost to a leader
		// failover): the thread is parked on the condition, queued at
		// the lock after a signal, or already re-granted. Re-attach the
		// live request wherever the replayed one sits. Replicated
		// managers run inline, so the condition's home (possibly
		// another shard) is reachable from this goroutine.
		m.board.cancel(sh.tick)
		ch := m.shards[m.shardOf(cw.Cond)]
		for i := range ch.cond(cw.Cond).waiters {
			ce := &ch.cond(cw.Cond).waiters[i]
			if ce.w.thread == cw.Thread && ce.w.req != nil && ce.w.req.Replayed() {
				ce.w.req = req
				return
			}
		}
		if ls.held && ls.holder == cw.Thread {
			ns := m.board.rangeAfter(cw.LastSeen, ls.grantSeq)
			req.Reply(&proto.CondWaitResp{Seq: ls.grantSeq, Notices: ns}, sh.clock.Now())
			return
		}
		for i := range ls.queue {
			qw := &ls.queue[i]
			if qw.thread == cw.Thread && qw.req != nil && qw.req.Replayed() {
				qw.req = req
				return
			}
		}
		req.ReplyErrorCode(proto.CodeGeneric,
			fmt.Errorf("manager: duplicate cond wait by thread %d has no parked original", cw.Thread), sh.clock.Now())
		return
	}
	if !ls.held || ls.holder != cw.Thread {
		m.board.cancel(sh.tick)
		req.ReplyError(fmt.Errorf("manager: cond wait on lock %d by non-holder thread %d", cw.Lock, cw.Thread), sh.clock.Now())
		return
	}
	m.board.ensure(cw.Thread, cw.LastSeen)
	m.stats.CondWaits.Add(1)
	// Atomically: release the interval, park on the condition (at the
	// condition's home, which may be another shard), drop the lock
	// (possibly granting it onward).
	m.board.fill(sh.tick, proto.IntervalTag{Writer: cw.Thread, Interval: cw.Interval}, cw.Pages, cw.Records)
	entry := condEntry{
		w: waiter{
			req:      req,
			thread:   cw.Thread,
			node:     uint32(req.Src()),
			lastSeen: cw.LastSeen,
			kind:     waitCond,
		},
		lock: cw.Lock,
	}
	m.toShard(m.shards[m.shardOf(cw.Cond)], mgrItem{kind: itemCondPark, cond: cw.Cond, park: entry, tick: sh.tick})
	sh.release(cw.Lock, ls)
}

func (sh *shard) handleCondSignal(req *scl.Request, sr *proto.CondSignalReq) {
	m := sh.m
	m.stats.CondSignals.Add(1)
	cs := sh.cond(sr.Cond)
	n := 1
	if sr.Broadcast {
		n = len(cs.waiters)
	}
	if n > len(cs.waiters) {
		n = len(cs.waiters)
	}
	woken := append([]condEntry(nil), cs.waiters[:n]...)
	cs.waiters = append(cs.waiters[:0:0], cs.waiters[n:]...)
	req.Reply(&proto.Ack{}, sh.clock.Now())
	// Each woken thread must re-acquire its mutex before its wait
	// returns; it competes with ordinary lock requests in FIFO order at
	// the lock's own home.
	for _, cw := range woken {
		m.toShard(m.shards[m.shardOf(cw.lock)], mgrItem{
			kind: itemLockWake, lock: cw.lock, wake: cw.w, at: sh.clock.Now(), tick: sh.tick,
		})
	}
}

// wakeFromCond runs at the lock's home when a signaled waiter tries to
// re-acquire its mutex.
func (sh *shard) wakeFromCond(lockID uint32, w waiter) {
	m := sh.m
	// The same deadThreads fence release() applies: a waiter whose
	// thread was declared dead between park and wake must not be handed
	// the lock. It was already popped from the cond queue, so
	// reclaimThread can never evict it later — answer its parked call
	// with the eviction error instead of leaving it to hang.
	if sh.deadThreads[w.thread] {
		if m.live != nil {
			m.live.WaitersEvicted.Add(1)
		}
		w.req.ReplyErrorCode(proto.CodePeerDied,
			fmt.Errorf("manager: thread %d declared dead", w.thread), sh.clock.Now())
		return
	}
	ls := sh.lock(lockID)
	if ls.held {
		m.stats.LockWaits.Add(1)
		ls.queue = append(ls.queue, w)
		return
	}
	sh.grant(lockID, ls, w)
}

// ---------------------------------------------------------------------
// Liveness reclamation (shard-local part).

// reclaim releases everything a dead or departed thread held or was
// parked on at this home: queued lock/cond waits are evicted, held
// locks force-released to the next live waiter, and barriers it
// participated in recomputed so survivors are never left waiting for an
// arrival that cannot come. markDead additionally fences future grants
// (lease expiry); a graceful Bye reclaims without fencing.
func (sh *shard) reclaim(tid uint32, markDead bool) {
	m := sh.m
	if markDead {
		sh.deadThreads[tid] = true
	}
	// Evicted requests still get a typed reply: if the "dead" member is
	// in fact wedged rather than gone, its parked call unblocks with
	// ErrPeerDied instead of hanging forever.
	evictErr := fmt.Errorf("manager: thread %d declared dead", tid)
	evict := func(id uint32, w waiter) {
		m.live.WaitersEvicted.Add(1)
		if w.detached {
			m.post(w.node, &proto.LockGrant{Lock: id, Code: proto.CodePeerDied}, sh.clock.Now())
			return
		}
		w.req.ReplyErrorCode(proto.CodePeerDied, evictErr, sh.clock.Now())
	}
	for id, ls := range sh.locks {
		kept := ls.queue[:0]
		for _, w := range ls.queue {
			if w.thread == tid {
				evict(id, w)
				continue
			}
			kept = append(kept, w)
		}
		ls.queue = kept
		if ls.held && ls.holder == tid {
			m.live.LocksReclaimed.Add(1)
			m.traceLive("lock-reclaimed", map[string]any{"lock": id, "holder": tid})
			sh.release(id, ls)
		}
	}
	for _, cs := range sh.conds {
		kept := cs.waiters[:0]
		for _, cw := range cs.waiters {
			if cw.w.thread == tid {
				evict(0, cw.w)
				continue
			}
			kept = append(kept, cw)
		}
		cs.waiters = kept
	}
	// Barriers assume SPMD participation: every live thread is expected
	// at every barrier, so a death reduces the effective count even for
	// barriers the thread never reached (it can never arrive now).
	for id, bs := range sh.barriers {
		if bs.dead[tid] {
			continue
		}
		bs.dead[tid] = true
		kept := bs.arrived[:0]
		for _, w := range bs.arrived {
			if w.thread == tid {
				evict(0, w)
				continue
			}
			kept = append(kept, w)
		}
		bs.arrived = kept
		sh.recheckBarrier(id, bs)
	}
}

// failParked completes every parked waiter at this home with a
// classified error so no thread ever hangs on a manager that stopped:
// code is proto.CodeShutdown for an orderly stop, proto.CodePeerDied
// when the manager itself went away. Detached waiters already received
// their Queued reply, so the failure travels as a LockGrant carrying
// the code.
func (sh *shard) failParked(code uint16, why string) {
	m := sh.m
	err := fmt.Errorf("manager: %s", why)
	now := sh.clock.Now()
	for id, ls := range sh.locks {
		for _, w := range ls.queue {
			if w.detached {
				m.post(w.node, &proto.LockGrant{Lock: id, Code: code}, now)
				continue
			}
			w.req.ReplyErrorCode(code, err, now)
		}
		ls.queue = nil
	}
	for _, bs := range sh.barriers {
		for _, w := range bs.arrived {
			w.req.ReplyErrorCode(code, err, now)
		}
		bs.arrived = nil
	}
	for _, cs := range sh.conds {
		for _, cw := range cs.waiters {
			cw.w.req.ReplyErrorCode(code, err, now)
		}
		cs.waiters = nil
	}
}
