package manager

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/scl"
	"repro/internal/simnet"
)

const followerNode = 501

// replEnv is a two-replica manager group on one fabric: the leader at
// mgrNode (so the manager_test client helpers address it) and one
// standby follower.
type replEnv struct {
	leader   *Manager
	follower *Manager
	fab      *simnet.Fabric
	wg       sync.WaitGroup
}

func newReplEnv(t *testing.T, shards int) *replEnv {
	t.Helper()
	env := &replEnv{fab: simnet.NewFabric(testLink)}
	nodes := []scl.NodeID{mgrNode, followerNode}
	env.leader = New(scl.NewSimEndpoint(env.fab, mgrNode), layout.DefaultGeometry())
	env.leader.SetShards(shards)
	env.leader.SetReplication(Replication{Self: 0, Nodes: nodes})
	env.follower = New(scl.NewSimEndpoint(env.fab, followerNode), layout.DefaultGeometry())
	env.follower.SetShards(shards)
	env.follower.SetReplication(Replication{Self: 1, Nodes: nodes})
	env.wg.Add(2)
	go func() {
		defer env.wg.Done()
		env.leader.Run()
	}()
	go func() {
		defer env.wg.Done()
		env.follower.Run()
	}()
	t.Cleanup(func() {
		ep := scl.NewSimEndpoint(env.fab, 999)
		var ack proto.Ack
		if _, err := ep.Call(mgrNode, &proto.Shutdown{}, &ack, 0); err != nil {
			t.Errorf("shutdown leader: %v", err)
		}
		if _, err := ep.Call(followerNode, &proto.Shutdown{}, &ack, 0); err != nil {
			t.Errorf("shutdown follower: %v", err)
		}
		env.wg.Wait()
	})
	return env
}

func (e *replEnv) client(t *testing.T, id uint32) *client {
	return &client{t: t, ep: scl.NewSimEndpoint(e.fab, simnet.NodeID(id)), id: id}
}

func noticePages(ns []proto.Notice) map[uint64]bool {
	pages := make(map[uint64]bool)
	for _, n := range ns {
		for _, p := range n.Pages {
			pages[p] = true
		}
	}
	return pages
}

// TestFailoverCarriesStateAndDeposesStaleLeader drives real client
// traffic through a replicated leader, promotes the follower, and
// checks both halves of the failover contract: the promoted replica
// answers from the replicated state (notice directory and allocation
// zones carried over), and the stale old leader is deposed by the
// higher term the moment it tries to replicate again, refusing clients
// with the retryable CodeNotLeader.
func TestFailoverCarriesStateAndDeposesStaleLeader(t *testing.T) {
	env := newReplEnv(t, 2)

	// Two lock tenures with write notices, served by the leader and
	// replicated to the follower.
	c1 := env.client(t, 1)
	if _, err := c1.lock(7); err != nil {
		t.Fatal(err)
	}
	if err := c1.unlock(7, []uint64{4, 5}, nil); err != nil {
		t.Fatal(err)
	}
	c2 := env.client(t, 2)
	resp, err := c2.lock(7)
	if err != nil {
		t.Fatal(err)
	}
	pre := noticePages(resp.Notices)
	if !pre[4] || !pre[5] {
		t.Fatalf("pre-failover acquire missed notices: got pages %v, want 4 and 5", pre)
	}
	if err := c2.unlock(7, []uint64{6}, nil); err != nil {
		t.Fatal(err)
	}
	addr1, err := c1.alloc(4096, proto.AllocShared)
	if err != nil {
		t.Fatal(err)
	}

	// Promote the follower under a strictly higher term.
	ctl := scl.NewSimEndpoint(env.fab, 600)
	var ack proto.Ack
	if _, err := ctl.Call(followerNode, &proto.PromoteMgr{Term: 2}, &ack, 0); err != nil {
		t.Fatalf("promote: %v", err)
	}

	// The old leader still thinks it leads; its next replication round
	// is NACKed from term 2, deposing it mid-request.
	c3 := env.client(t, 3)
	if _, err := c3.lock(7); err == nil {
		t.Fatal("stale leader granted a lock after its follower was promoted")
	} else {
		if !errors.Is(err, proto.ErrNotLeader) {
			t.Fatalf("stale leader error = %v, want ErrNotLeader", err)
		}
		if !scl.IsTransient(err) {
			t.Fatalf("deposed-leader refusal %v must be retryable", err)
		}
	}

	// The promoted replica serves the same acquire from its replayed
	// state: every pre-failover write notice, at a seq that advanced.
	var lr proto.LockResp
	if _, err := c3.ep.Call(followerNode, &proto.LockReq{Lock: 7, Thread: 3}, &lr, 0); err != nil {
		t.Fatalf("lock on promoted replica: %v", err)
	}
	post := noticePages(lr.Notices)
	for _, p := range []uint64{4, 5, 6} {
		if !post[p] {
			t.Errorf("promoted replica lost notice page %d (got %v)", p, post)
		}
	}
	if lr.Seq == 0 {
		t.Error("promoted replica issued seq 0: notice directory not carried over")
	}

	// And its allocation zones continue where the old leader stopped.
	var ar proto.AllocResp
	if _, err := c3.ep.Call(followerNode, &proto.AllocReq{Thread: 3, Size: 4096, Align: 16, Strategy: proto.AllocShared}, &ar, 0); err != nil {
		t.Fatalf("alloc on promoted replica: %v", err)
	}
	addr2 := layout.Addr(ar.Addr)
	if addr2 < addr1+4096 && addr1 < addr2+4096 {
		t.Errorf("post-failover alloc %#x overlaps pre-failover alloc %#x", uint64(addr2), uint64(addr1))
	}
}

// TestSnapshotRoundTripRestoresParkedWaiters feeds a follower's apply
// path directly (no fabric traffic), snapshots it, and installs the
// snapshot on a fresh replica: the encoded state must round-trip
// bit-identically, parked lock waiters and half-complete barriers
// included, and the restored replica must continue the state machine
// after promotion — granting a restored waiter on the next unlock.
func TestSnapshotRoundTripRestoresParkedWaiters(t *testing.T) {
	fab := simnet.NewFabric(testLink)
	geo := layout.DefaultGeometry()
	nodesA := []scl.NodeID{499, mgrNode}
	a := New(scl.NewSimEndpoint(fab, mgrNode), geo)
	a.SetShards(2)
	a.SetReplication(Replication{Self: 1, Nodes: nodesA})

	apply := func(m *Manager, src uint32, msg proto.Msg) {
		m.applyEntry(proto.ReplEntry{Src: src, Kind: uint16(msg.Kind()), Body: proto.Encode(msg)})
	}

	// A mutation history touching every snapshotted table: zones, the
	// notice directory, a held lock with a parked waiter, and a
	// half-complete barrier.
	apply(a, 1, &proto.AllocReq{Thread: 1, Size: 4096, Align: 16, Strategy: proto.AllocShared})
	apply(a, 1, &proto.LockReq{Lock: 3, Thread: 1})
	apply(a, 1, &proto.UnlockReq{Lock: 3, Thread: 1, Interval: 1, Pages: []uint64{10, 11}})
	apply(a, 2, &proto.LockReq{Lock: 3, Thread: 2})
	apply(a, 1, &proto.LockReq{Lock: 3, Thread: 1}) // parks behind thread 2
	apply(a, 2, &proto.BarrierReq{Barrier: 5, Count: 2, Thread: 2, Interval: 1, Pages: []uint64{12}})

	snap := a.encodeState()

	b := New(scl.NewSimEndpoint(fab, followerNode), geo)
	b.SetShards(2)
	b.SetReplication(Replication{Self: 1, Nodes: []scl.NodeID{499, followerNode}})
	if err := b.restoreState(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := b.encodeState(); !bytes.Equal(got, snap) {
		t.Fatalf("snapshot does not round-trip: re-encoded %d bytes != original %d bytes", len(got), len(snap))
	}

	ls := b.shards[b.shardOf(3)].locks[3]
	if ls == nil || !ls.held || ls.holder != 2 {
		t.Fatalf("restored lock 3 = %+v, want held by thread 2", ls)
	}
	if len(ls.queue) != 1 || ls.queue[0].thread != 1 {
		t.Fatalf("restored lock 3 queue = %+v, want the parked thread-1 waiter", ls.queue)
	}
	bs := b.shards[b.shardOf(5)].barriers[5]
	if bs == nil || bs.count != 2 || len(bs.arrived) != 1 || bs.arrived[0].thread != 2 {
		t.Fatalf("restored barrier 5 = %+v, want count 2 with thread 2 arrived", bs)
	}

	// Promotion continues the state machine exactly where the snapshot
	// left it: the next unlock hands lock 3 to the restored waiter.
	b.promote(2)
	if r := b.repl; !r.leader || r.term != 2 || r.prop == nil || r.prop.Term != 2 {
		t.Fatalf("promotion left replica in leader=%v term=%d", r.leader, r.term)
	}
	apply(b, 2, &proto.UnlockReq{Lock: 3, Thread: 2, Interval: 2, Pages: []uint64{13}})
	ls = b.shards[b.shardOf(3)].locks[3]
	if !ls.held || ls.holder != 1 || len(ls.queue) != 0 {
		t.Fatalf("post-promotion unlock left lock 3 = %+v, want granted to restored waiter 1", ls)
	}
}
