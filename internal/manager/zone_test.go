package manager

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/layout"
)

func TestZoneBasicAllocFree(t *testing.T) {
	z := NewZone("t", 0x1000, 0x10000)
	a, err := z.Alloc(100, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a < 0x1000 || a%16 != 0 {
		t.Fatalf("bad address %#x", uint64(a))
	}
	b, err := z.Alloc(100, 16)
	if err != nil {
		t.Fatal(err)
	}
	if b < a+100 {
		t.Fatalf("allocations overlap: %#x then %#x", uint64(a), uint64(b))
	}
	if z.Live() != 2 || z.InUse() != 200 {
		t.Fatalf("Live=%d InUse=%d", z.Live(), z.InUse())
	}
	if err := z.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := z.Free(a); err == nil {
		t.Fatal("double free succeeded")
	}
	if z.Live() != 1 {
		t.Fatalf("Live=%d after free", z.Live())
	}
}

func TestZoneReusesFreedSpace(t *testing.T) {
	z := NewZone("t", 0, 4096)
	a, _ := z.Alloc(1024, 16)
	if _, err := z.Alloc(1024, 16); err != nil {
		t.Fatal(err)
	}
	if err := z.Free(a); err != nil {
		t.Fatal(err)
	}
	c, err := z.Alloc(512, 16)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("first fit did not reuse freed span: got %#x want %#x", uint64(c), uint64(a))
	}
}

func TestZoneExhaustion(t *testing.T) {
	z := NewZone("t", 0, 1024)
	if _, err := z.Alloc(2048, 16); err == nil {
		t.Fatal("oversized allocation succeeded")
	}
	if _, err := z.Alloc(1024, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := z.Alloc(1, 16); err == nil {
		t.Fatal("allocation from full zone succeeded")
	}
}

func TestZoneRejectsBadArgs(t *testing.T) {
	z := NewZone("t", 0, 1024)
	if _, err := z.Alloc(0, 16); err == nil {
		t.Fatal("zero-size alloc succeeded")
	}
	if _, err := z.Alloc(16, 0); err == nil {
		t.Fatal("zero alignment succeeded")
	}
	// Non-power-of-two alignment is legal (striped groups): the result
	// must still be a multiple.
	if a, err := z.Alloc(16, 48); err != nil || a%48 != 0 {
		t.Fatalf("48-byte alignment: addr=%#x err=%v", uint64(a), err)
	}
	if err := z.Free(0x999); err == nil {
		t.Fatal("free of never-allocated address succeeded")
	}
}

func TestZoneAlignmentPadding(t *testing.T) {
	z := NewZone("t", 8, 1<<20)
	a, err := z.Alloc(64, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if a%4096 != 0 {
		t.Fatalf("misaligned: %#x", uint64(a))
	}
	// The padding below the aligned allocation is recorded as free and
	// usable by a smaller allocation.
	b, err := z.Alloc(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b >= a {
		t.Fatalf("small alloc %#x did not reuse padding below %#x", uint64(b), uint64(a))
	}
}

func TestZoneCoalescing(t *testing.T) {
	z := NewZone("t", 0, 4096)
	a, _ := z.Alloc(1024, 16)
	b, _ := z.Alloc(1024, 16)
	c, _ := z.Alloc(1024, 16)
	_ = c
	// Free middle, then first; they must coalesce so a 2048 fits at 0.
	if err := z.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := z.Free(a); err != nil {
		t.Fatal(err)
	}
	d, err := z.Alloc(2048, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("coalesced alloc at %#x, want 0", uint64(d))
	}
}

func TestZoneBumpPointerRecovery(t *testing.T) {
	z := NewZone("t", 0, 2048)
	a, _ := z.Alloc(1024, 16)
	b, _ := z.Alloc(1024, 16)
	// Zone is full; freeing the top allocation must melt it back into
	// virgin space so a differently aligned request can use it.
	if err := z.Free(b); err != nil {
		t.Fatal(err)
	}
	if _, err := z.Alloc(1024, 1024); err != nil {
		t.Fatalf("bump pointer did not recover: %v", err)
	}
	_ = a
}

// Property: live allocations never overlap, are always aligned, and
// stay inside the zone — under an arbitrary interleaving of allocs and
// frees.
func TestZoneInvariantProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := layout.Addr(4096)
		limit := layout.Addr(1 << 20)
		z := NewZone("t", base, limit)
		type alloc struct {
			a    layout.Addr
			size uint64
		}
		var live []alloc
		for op := 0; op < 300; op++ {
			if rng.Intn(3) != 0 || len(live) == 0 {
				size := uint64(1 + rng.Intn(5000))
				align := 1 << rng.Intn(8) * 16 // 16..2048
				a, err := z.Alloc(size, align)
				if err != nil {
					continue // exhaustion is fine
				}
				if a < base || a+layout.Addr(size) > limit {
					return false
				}
				if uint64(a)%uint64(align) != 0 {
					return false
				}
				for _, l := range live {
					if a < l.a+layout.Addr(l.size) && l.a < a+layout.Addr(size) {
						return false // overlap
					}
				}
				live = append(live, alloc{a, size})
			} else {
				i := rng.Intn(len(live))
				if err := z.Free(live[i].a); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		return z.Live() == len(live)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
