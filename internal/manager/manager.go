// Package manager implements the Samhita manager: the component
// responsible for memory allocation, synchronization and the
// write-notice directory that drives regional consistency (Section II).
// In the heterogeneous-node mapping of Figure 1 the manager runs on the
// host processor alongside the memory servers.
//
// The manager is a single-goroutine event loop over its SCL endpoint.
// Every synchronization operation in Samhita goes through it — the paper
// explicitly calls out the resulting overhead (Section V) — so its
// virtual clock is a genuine serialization point: contended locks and
// wide barriers queue here, exactly as they do in the measured system.
//
// Consistency bookkeeping: each release (unlock, barrier arrival,
// condition wait) carries the releasing interval's write notice — the
// pages dirtied in ordinary regions plus the fine-grained store records
// logged in consistency regions. The manager stamps it with a global
// sequence number and stores it. Each acquire (lock grant, barrier
// departure, condition wakeup) returns every notice the acquiring thread
// has not yet seen. Notices older than every thread's horizon are
// pruned.
package manager

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/scl"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Address-space plan. The zones are disjoint so that a Free can be
// routed by address alone.
const (
	// ArenaZoneBase is where per-thread arena chunks are carved from.
	ArenaZoneBase layout.Addr = 1 << 20
	arenaZoneEnd  layout.Addr = 1 << 34
	// SharedZoneBase serves medium allocations (strategy two).
	SharedZoneBase layout.Addr = 1 << 34
	sharedZoneEnd  layout.Addr = 1 << 36
	// StripedZoneBase serves large allocations (strategy three); bases
	// are aligned to a full stripe group so consecutive allocations
	// start on different memory servers.
	StripedZoneBase layout.Addr = 1 << 36
	stripedZoneEnd  layout.Addr = 1 << 40
)

// Stats counts manager activity. Fields are atomics so that harnesses
// and tests can observe progress while the manager runs.
type Stats struct {
	Allocs        atomic.Int64
	Frees         atomic.Int64
	LockGrants    atomic.Int64
	LockWaits     atomic.Int64 // grants that had to queue first
	Unlocks       atomic.Int64
	BarrierRounds atomic.Int64
	CondWaits     atomic.Int64
	CondSignals   atomic.Int64
	NoticesStored atomic.Int64
	NoticesSent   atomic.Int64
	NoticesPruned atomic.Int64
}

// Manager is the manager component.
type Manager struct {
	ep    scl.Endpoint
	geo   layout.Geometry
	clock *vtime.Clock

	arenaZone   *Zone
	sharedZone  *Zone
	stripedZone *Zone

	seq      uint64
	notices  []proto.Notice
	lastSeen map[uint32]uint64

	locks    map[uint32]*lockState
	barriers map[uint32]*barrierState
	conds    map[uint32]*condState

	// Liveness (nil live == disabled). Heartbeats are wall-clock
	// driven and processed at zero virtual cost, so enabling liveness
	// does not perturb a run's virtual-time results.
	live        *stats.Liveness
	tr          *trace.Collector
	lease       time.Duration
	members     map[memberKey]*member
	deadNodes   map[uint32]bool // fence requests from declared-dead nodes
	deadThreads map[uint32]bool // skip dead threads when granting locks

	stats Stats
}

// memberKey identifies a liveness participant.
type memberKey struct {
	class uint8 // proto.MemberThread or proto.MemberServer
	id    uint32
}

// member is one row of the manager's lease table.
type member struct {
	node     uint32
	lastBeat time.Time
	dead     bool
}

type waitKind uint8

const (
	waitLock waitKind = iota // answer with LockResp
	waitCond                 // answer with CondWaitResp
)

// waiter is a thread parked on a lock (directly or resuming from a
// condition wait).
type waiter struct {
	req      *scl.Request
	thread   uint32
	lastSeen uint64
	kind     waitKind
}

type lockState struct {
	held   bool
	holder uint32
	queue  []waiter
}

type barrierState struct {
	count   uint32
	arrived []waiter
	dead    map[uint32]bool // threads declared dead (SPMD: all expected)
}

// effective is the arrival count that completes a round: the declared
// count minus dead members, floored at one.
func (bs *barrierState) effective() int {
	eff := int(bs.count) - len(bs.dead)
	if eff < 1 {
		eff = 1
	}
	return eff
}

type condState struct {
	// waiters are parked threads; each remembers which lock to
	// re-acquire on wakeup.
	waiters []struct {
		w    waiter
		lock uint32
	}
}

// New creates a manager serving the given endpoint.
func New(ep scl.Endpoint, geo layout.Geometry) *Manager {
	return &Manager{
		ep:          ep,
		geo:         geo,
		clock:       vtime.NewClock(0),
		arenaZone:   NewZone("arena", ArenaZoneBase, arenaZoneEnd),
		sharedZone:  NewZone("shared", SharedZoneBase, sharedZoneEnd),
		stripedZone: NewZone("striped", StripedZoneBase, stripedZoneEnd),
		lastSeen:    make(map[uint32]uint64),
		locks:       make(map[uint32]*lockState),
		barriers:    make(map[uint32]*barrierState),
		conds:       make(map[uint32]*condState),
		members:     make(map[memberKey]*member),
		deadNodes:   make(map[uint32]bool),
		deadThreads: make(map[uint32]bool),
	}
}

// EnableLiveness turns on heartbeat membership: participants that miss
// their lease are declared dead, their locks force-released, barrier
// counts recomputed, and parked waiters that can no longer make
// progress completed with proto.ErrPeerDied. Must be called before
// Run. A nil live allocates a private counter set; tr may be nil.
func (m *Manager) EnableLiveness(lease time.Duration, live *stats.Liveness, tr *trace.Collector) {
	if live == nil {
		live = new(stats.Liveness)
	}
	m.live = live
	m.lease = lease
	m.tr = tr
}

// Stats exposes the manager's counters.
func (m *Manager) Stats() *Stats { return &m.stats }

// Clock reports the manager's virtual time.
func (m *Manager) Clock() vtime.Time { return m.clock.Now() }

// Run processes requests until Shutdown or endpoint closure.
func (m *Manager) Run() {
	for {
		req, ok := m.ep.Recv()
		if !ok {
			// The endpoint died under us (e.g. a fault injector killed
			// the manager node): parked waiters learn the peer died,
			// not that it shut down in an orderly way.
			m.failAllParked(proto.CodePeerDied, "manager endpoint closed")
			return
		}
		// Heartbeats are wall-clock bookkeeping and carry zero virtual
		// cost: handled before the clock moves so liveness does not
		// perturb virtual-time determinism.
		if req.Kind() == proto.KHeartbeat {
			m.handleHeartbeat(req)
			continue
		}
		// Fence requests from members the lease table has declared
		// dead: their state was already reclaimed, so letting them back
		// in would corrupt lock/barrier bookkeeping.
		if m.live != nil && m.deadNodes[uint32(req.Src())] {
			if !req.OneWay() {
				req.ReplyErrorCode(proto.CodePeerDied,
					fmt.Errorf("manager: request from dead node %d", req.Src()), m.clock.Now())
			}
			continue
		}
		m.clock.AdvanceTo(req.Arrive())
		m.clock.Advance(req.Svc())
		switch req.Kind() {
		case proto.KAllocReq:
			m.handleAlloc(req)
		case proto.KFreeReq:
			m.handleFree(req)
		case proto.KRegisterReq:
			m.handleRegister(req)
		case proto.KLockReq:
			m.handleLock(req)
		case proto.KUnlockReq:
			m.handleUnlock(req)
		case proto.KBarrierReq:
			m.handleBarrier(req)
		case proto.KCondWaitReq:
			m.handleCondWait(req)
		case proto.KCondSignalReq:
			m.handleCondSignal(req)
		case proto.KShutdown:
			if !req.OneWay() {
				req.Reply(&proto.Ack{}, m.clock.Now())
			}
			m.failAllParked(proto.CodeShutdown, "manager shut down")
			return
		default:
			if !req.OneWay() {
				req.ReplyError(fmt.Errorf("manager: unexpected %v", req.Kind()), m.clock.Now())
			}
		}
	}
}

// failAllParked completes every parked waiter with a classified error
// so no thread ever hangs on a manager that stopped: code is
// proto.CodeShutdown for an orderly stop, proto.CodePeerDied when the
// manager itself (or the peer a waiter depended on) went away.
func (m *Manager) failAllParked(code uint16, why string) {
	err := fmt.Errorf("manager: %s", why)
	for _, ls := range m.locks {
		for _, w := range ls.queue {
			w.req.ReplyErrorCode(code, err, m.clock.Now())
		}
		ls.queue = nil
	}
	for _, bs := range m.barriers {
		for _, w := range bs.arrived {
			w.req.ReplyErrorCode(code, err, m.clock.Now())
		}
		bs.arrived = nil
	}
	for _, cs := range m.conds {
		for _, cw := range cs.waiters {
			cw.w.req.ReplyErrorCode(code, err, m.clock.Now())
		}
		cs.waiters = nil
	}
}

// ---------------------------------------------------------------------
// Liveness: heartbeat membership and lease reclamation.

// handleHeartbeat renews (or, with Bye, retires) a member's lease and
// reaps members whose lease has expired. Server heartbeats double as
// the reap prodder: the lease table keeps advancing even when every
// compute thread is parked or dead.
func (m *Manager) handleHeartbeat(req *scl.Request) {
	if m.live == nil {
		return // liveness disabled: ignore
	}
	var hb proto.Heartbeat
	if err := req.Decode(&hb); err != nil {
		return
	}
	m.live.Heartbeats.Add(1)
	now := time.Now()
	if hb.Member != 0 || hb.Class != 0 {
		k := memberKey{class: hb.Class, id: hb.Member}
		switch mem, ok := m.members[k]; {
		case hb.Bye:
			// Graceful departure: the member leaves the table instead of
			// timing out, so finished threads are never declared dead.
			delete(m.members, k)
		case ok:
			if !mem.dead {
				mem.lastBeat = now
			}
		default:
			m.members[k] = &member{node: hb.Node, lastBeat: now}
		}
	}
	m.reap(now)
}

// reap declares members whose lease expired dead and reclaims their
// synchronization state.
func (m *Manager) reap(now time.Time) {
	for k, mem := range m.members {
		if mem.dead || now.Sub(mem.lastBeat) <= m.lease {
			continue
		}
		mem.dead = true
		m.deadNodes[mem.node] = true
		m.traceLive("member-dead", map[string]any{
			"class": k.class, "id": k.id, "node": mem.node,
		})
		switch k.class {
		case proto.MemberThread:
			m.live.ThreadsDead.Add(1)
			m.deadThreads[k.id] = true
			m.reclaimThread(k.id)
		case proto.MemberServer:
			m.live.ServersDead.Add(1)
		}
	}
}

// liveThreadCount counts thread members not declared dead.
func (m *Manager) liveThreadCount() int {
	n := 0
	for k, mem := range m.members {
		if k.class == proto.MemberThread && !mem.dead {
			n++
		}
	}
	return n
}

// reclaimThread releases everything a dead thread held or was parked
// on: queued lock/cond waits are evicted, held locks force-released to
// the next live waiter, and barriers it participated in recomputed so
// survivors are never left waiting for an arrival that cannot come.
func (m *Manager) reclaimThread(tid uint32) {
	// Evicted requests still get a typed reply: if the "dead" member is
	// in fact wedged rather than gone, its parked call unblocks with
	// ErrPeerDied instead of hanging forever.
	evictErr := fmt.Errorf("manager: thread %d declared dead", tid)
	evict := func(w waiter) {
		m.live.WaitersEvicted.Add(1)
		w.req.ReplyErrorCode(proto.CodePeerDied, evictErr, m.clock.Now())
	}
	for id, ls := range m.locks {
		kept := ls.queue[:0]
		for _, w := range ls.queue {
			if w.thread == tid {
				evict(w)
				continue
			}
			kept = append(kept, w)
		}
		ls.queue = kept
		if ls.held && ls.holder == tid {
			m.live.LocksReclaimed.Add(1)
			m.traceLive("lock-reclaimed", map[string]any{"lock": id, "holder": tid})
			m.release(ls)
		}
	}
	for _, cs := range m.conds {
		kept := cs.waiters[:0]
		for _, cw := range cs.waiters {
			if cw.w.thread == tid {
				evict(cw.w)
				continue
			}
			kept = append(kept, cw)
		}
		cs.waiters = kept
	}
	// Barriers assume SPMD participation: every live thread is expected
	// at every barrier, so a death reduces the effective count even for
	// barriers the thread never reached (it can never arrive now).
	for id, bs := range m.barriers {
		if bs.dead[tid] {
			continue
		}
		bs.dead[tid] = true
		kept := bs.arrived[:0]
		for _, w := range bs.arrived {
			if w.thread == tid {
				evict(w)
				continue
			}
			kept = append(kept, w)
		}
		bs.arrived = kept
		m.recheckBarrier(id, bs)
	}
	// The dead thread no longer pins the write-notice horizon.
	delete(m.lastSeen, tid)
	m.pruneNotices()
}

// recheckBarrier re-evaluates a barrier after a member death: parked
// arrivals either complete at the recomputed count, or — when the
// barrier can never gather enough live arrivals — fail with
// proto.ErrPeerDied rather than hang.
func (m *Manager) recheckBarrier(id uint32, bs *barrierState) {
	if len(bs.arrived) == 0 {
		return
	}
	if len(bs.arrived) >= bs.effective() {
		m.traceLive("barrier-recomputed", map[string]any{
			"barrier": id, "count": bs.count, "effective": bs.effective(),
		})
		m.releaseBarrier(bs, bs.arrived[len(bs.arrived)-1].req.Svc())
		return
	}
	if bs.effective() > m.liveThreadCount() {
		err := fmt.Errorf("manager: barrier %d unsatisfiable: needs %d live arrivals, %d live threads",
			id, bs.effective(), m.liveThreadCount())
		for _, w := range bs.arrived {
			m.live.WaitersFailed.Add(1)
			w.req.ReplyErrorCode(proto.CodePeerDied, err, m.clock.Now())
		}
		bs.arrived = bs.arrived[:0]
	}
}

// traceLive emits one liveness event, if a collector is attached.
func (m *Manager) traceLive(name string, args map[string]any) {
	if m.tr == nil {
		return
	}
	m.tr.Span("manager", trace.CatLive, name, m.clock.Now(), m.clock.Now(), args)
}

// ---------------------------------------------------------------------
// Allocation.

func (m *Manager) handleAlloc(req *scl.Request) {
	var ar proto.AllocReq
	if err := req.Decode(&ar); err != nil {
		req.ReplyError(err, m.clock.Now())
		return
	}
	align := int(ar.Align)
	if align < 16 {
		align = 16
	}
	var (
		addr layout.Addr
		err  error
	)
	switch ar.Strategy {
	case proto.AllocArenaChunk:
		// Arena chunks are line-aligned so no two threads' arenas ever
		// share a cache line — the paper's no-false-sharing guarantee
		// for locally allocated data.
		addr, err = m.arenaZone.Alloc(ar.Size, m.geo.LineSize())
	case proto.AllocShared:
		addr, err = m.sharedZone.Alloc(ar.Size, align)
	case proto.AllocStriped:
		group := m.geo.LineSize() * m.geo.NumServers
		addr, err = m.stripedZone.Alloc(ar.Size, group)
	default:
		err = fmt.Errorf("manager: unknown allocation strategy %d", ar.Strategy)
	}
	if err != nil {
		req.ReplyError(err, m.clock.Now())
		return
	}
	m.stats.Allocs.Add(1)
	req.Reply(&proto.AllocResp{Addr: uint64(addr)}, m.clock.Now())
}

func (m *Manager) handleFree(req *scl.Request) {
	var fr proto.FreeReq
	if err := req.Decode(&fr); err != nil {
		req.ReplyError(err, m.clock.Now())
		return
	}
	addr := layout.Addr(fr.Addr)
	var err error
	switch {
	case m.arenaZone.Contains(addr):
		err = m.arenaZone.Free(addr)
	case m.sharedZone.Contains(addr):
		err = m.sharedZone.Free(addr)
	case m.stripedZone.Contains(addr):
		err = m.stripedZone.Free(addr)
	default:
		err = fmt.Errorf("manager: free of address %#x outside all zones", fr.Addr)
	}
	if err != nil {
		req.ReplyError(err, m.clock.Now())
		return
	}
	m.stats.Frees.Add(1)
	req.Reply(&proto.Ack{}, m.clock.Now())
}

func (m *Manager) handleRegister(req *scl.Request) {
	var rr proto.RegisterReq
	if err := req.Decode(&rr); err != nil {
		req.ReplyError(err, m.clock.Now())
		return
	}
	m.ensureThread(rr.Thread, 0)
	req.Reply(&proto.Ack{}, m.clock.Now())
}

// ---------------------------------------------------------------------
// Write notices.

// ensureThread makes sure a thread participates in the pruning horizon.
// Threads register explicitly at spawn; acquires also auto-register so
// the manager never prunes a notice an active thread has not seen.
func (m *Manager) ensureThread(thread uint32, lastSeen uint64) {
	if _, ok := m.lastSeen[thread]; !ok {
		m.lastSeen[thread] = lastSeen
	}
}

// postNotice records a release interval and returns its sequence number.
func (m *Manager) postNotice(tag proto.IntervalTag, pages []uint64, records []proto.StoreRecord) uint64 {
	m.seq++
	m.notices = append(m.notices, proto.Notice{
		Seq:     m.seq,
		Tag:     tag,
		Pages:   pages,
		Records: records,
	})
	m.stats.NoticesStored.Add(1)
	return m.seq
}

// noticesAfter returns all notices with sequence > since.
func (m *Manager) noticesAfter(since uint64) []proto.Notice {
	i := len(m.notices)
	for i > 0 && m.notices[i-1].Seq > since {
		i--
	}
	out := m.notices[i:]
	m.stats.NoticesSent.Add(int64(len(out)))
	return out
}

// sawUpTo advances a thread's horizon and prunes notices every thread
// has seen.
func (m *Manager) sawUpTo(thread uint32, seq uint64) {
	if seq > m.lastSeen[thread] {
		m.lastSeen[thread] = seq
	}
	m.pruneNotices()
}

// pruneNotices drops notices below every remaining thread's horizon;
// also called when a dead thread leaves the horizon set.
func (m *Manager) pruneNotices() {
	min := m.seq
	for _, s := range m.lastSeen {
		if s < min {
			min = s
		}
	}
	cut := 0
	for cut < len(m.notices) && m.notices[cut].Seq <= min {
		cut++
	}
	if cut > 0 {
		m.stats.NoticesPruned.Add(int64(cut))
		m.notices = append([]proto.Notice(nil), m.notices[cut:]...)
	}
}

// ---------------------------------------------------------------------
// Locks.

func (m *Manager) lock(id uint32) *lockState {
	ls, ok := m.locks[id]
	if !ok {
		ls = &lockState{}
		m.locks[id] = ls
	}
	return ls
}

func (m *Manager) handleLock(req *scl.Request) {
	var lr proto.LockReq
	if err := req.Decode(&lr); err != nil {
		req.ReplyError(err, m.clock.Now())
		return
	}
	m.ensureThread(lr.Thread, lr.LastSeen)
	ls := m.lock(lr.Lock)
	w := waiter{req: req, thread: lr.Thread, lastSeen: lr.LastSeen, kind: waitLock}
	if ls.held {
		m.stats.LockWaits.Add(1)
		ls.queue = append(ls.queue, w)
		return
	}
	m.grant(ls, w)
}

// grant hands the lock to w and answers its acquire with fresh notices.
func (m *Manager) grant(ls *lockState, w waiter) {
	ls.held = true
	ls.holder = w.thread
	m.stats.LockGrants.Add(1)
	ns := m.noticesAfter(w.lastSeen)
	m.sawUpTo(w.thread, m.seq)
	switch w.kind {
	case waitLock:
		w.req.Reply(&proto.LockResp{Seq: m.seq, Notices: ns}, m.clock.Now())
	case waitCond:
		w.req.Reply(&proto.CondWaitResp{Seq: m.seq, Notices: ns}, m.clock.Now())
	}
}

// handleUnlock accepts both forms of unlock: the classic acknowledged
// round trip, and the pipelined one-way post (the releaser overlaps its
// diff shipping with this notice; interval tags at the homes restore
// the ordering the missing ack used to provide).
func (m *Manager) handleUnlock(req *scl.Request) {
	var ur proto.UnlockReq
	if err := req.Decode(&ur); err != nil {
		if req.OneWay() {
			// Nobody to answer; an undecodable unlock is a protocol bug.
			panic(fmt.Sprintf("manager: bad UnlockReq: %v", err))
		}
		req.ReplyError(err, m.clock.Now())
		return
	}
	ls := m.lock(ur.Lock)
	if !ls.held || ls.holder != ur.Thread {
		// One-way: the lock was force-released after the sender was
		// declared dead (or the sender is confused); dropping the
		// request is the only fence available.
		if !req.OneWay() {
			req.ReplyError(fmt.Errorf("manager: unlock of lock %d by non-holder thread %d", ur.Lock, ur.Thread), m.clock.Now())
		}
		return
	}
	m.stats.Unlocks.Add(1)
	m.postNotice(proto.IntervalTag{Writer: ur.Thread, Interval: ur.Interval}, ur.Pages, ur.Records)
	if !req.OneWay() {
		req.Reply(&proto.Ack{}, m.clock.Now())
	}
	m.release(ls)
}

// release passes a held lock to the next queued live waiter, if any.
// Waiters whose thread has since been declared dead are skipped, so a
// reclaimed lock never lands on a corpse.
func (m *Manager) release(ls *lockState) {
	ls.held = false
	for len(ls.queue) > 0 {
		next := ls.queue[0]
		ls.queue = ls.queue[1:]
		if m.deadThreads[next.thread] {
			if m.live != nil {
				m.live.WaitersEvicted.Add(1)
			}
			continue
		}
		m.grant(ls, next)
		return
	}
}

// ---------------------------------------------------------------------
// Barriers.

func (m *Manager) handleBarrier(req *scl.Request) {
	var br proto.BarrierReq
	if err := req.Decode(&br); err != nil {
		req.ReplyError(err, m.clock.Now())
		return
	}
	if br.Count == 0 {
		req.ReplyError(fmt.Errorf("manager: barrier %d arrival with zero count", br.Barrier), m.clock.Now())
		return
	}
	m.ensureThread(br.Thread, br.LastSeen)
	bs, ok := m.barriers[br.Barrier]
	if !ok {
		bs = &barrierState{
			count: br.Count,
			dead:  make(map[uint32]bool),
		}
		// A barrier instance created after a death starts with the
		// reduced membership: the dead can never arrive.
		for tid := range m.deadThreads {
			bs.dead[tid] = true
		}
		m.barriers[br.Barrier] = bs
	}
	if bs.count != br.Count {
		req.ReplyError(fmt.Errorf("manager: barrier %d count mismatch: %d vs %d", br.Barrier, br.Count, bs.count), m.clock.Now())
		return
	}
	// Arrival is a release: post this interval's notice immediately so
	// every later acquire (including the other arrivals) sees it.
	m.postNotice(proto.IntervalTag{Writer: br.Thread, Interval: br.Interval}, br.Pages, br.Records)
	bs.arrived = append(bs.arrived, waiter{req: req, thread: br.Thread, lastSeen: br.LastSeen})
	if len(bs.arrived) < bs.effective() {
		return
	}
	m.releaseBarrier(bs, req.Svc())
}

// releaseBarrier completes a barrier round, answering every parked
// arrival. Replies are posted serially, advancing the manager clock by
// svc per reply — the centralized-barrier fan-out cost.
func (m *Manager) releaseBarrier(bs *barrierState, svc vtime.Time) {
	m.stats.BarrierRounds.Add(1)
	if m.live != nil && len(bs.dead) > 0 {
		m.live.BarriersRecomputed.Add(1)
	}
	for _, w := range bs.arrived {
		m.clock.Advance(svc)
		ns := m.noticesAfter(w.lastSeen)
		m.sawUpTo(w.thread, m.seq)
		w.req.Reply(&proto.BarrierResp{Seq: m.seq, Notices: ns}, m.clock.Now())
	}
	bs.arrived = bs.arrived[:0]
}

// ---------------------------------------------------------------------
// Condition variables.

func (m *Manager) cond(id uint32) *condState {
	cs, ok := m.conds[id]
	if !ok {
		cs = &condState{}
		m.conds[id] = cs
	}
	return cs
}

func (m *Manager) handleCondWait(req *scl.Request) {
	var cw proto.CondWaitReq
	if err := req.Decode(&cw); err != nil {
		req.ReplyError(err, m.clock.Now())
		return
	}
	ls := m.lock(cw.Lock)
	if !ls.held || ls.holder != cw.Thread {
		req.ReplyError(fmt.Errorf("manager: cond wait on lock %d by non-holder thread %d", cw.Lock, cw.Thread), m.clock.Now())
		return
	}
	m.ensureThread(cw.Thread, cw.LastSeen)
	m.stats.CondWaits.Add(1)
	// Atomically: release the interval, park on the condition, drop the
	// lock (possibly granting it onward).
	m.postNotice(proto.IntervalTag{Writer: cw.Thread, Interval: cw.Interval}, cw.Pages, cw.Records)
	cs := m.cond(cw.Cond)
	cs.waiters = append(cs.waiters, struct {
		w    waiter
		lock uint32
	}{
		w:    waiter{req: req, thread: cw.Thread, lastSeen: cw.LastSeen, kind: waitCond},
		lock: cw.Lock,
	})
	m.release(ls)
}

func (m *Manager) handleCondSignal(req *scl.Request) {
	var sr proto.CondSignalReq
	if err := req.Decode(&sr); err != nil {
		req.ReplyError(err, m.clock.Now())
		return
	}
	m.stats.CondSignals.Add(1)
	cs := m.cond(sr.Cond)
	n := 1
	if sr.Broadcast {
		n = len(cs.waiters)
	}
	if n > len(cs.waiters) {
		n = len(cs.waiters)
	}
	woken := cs.waiters[:n]
	cs.waiters = append(cs.waiters[:0:0], cs.waiters[n:]...)
	req.Reply(&proto.Ack{}, m.clock.Now())
	// Each woken thread must re-acquire its mutex before its wait
	// returns; it competes with ordinary lock requests in FIFO order.
	for _, cw := range woken {
		ls := m.lock(cw.lock)
		if ls.held {
			m.stats.LockWaits.Add(1)
			ls.queue = append(ls.queue, cw.w)
		} else {
			m.grant(ls, cw.w)
		}
	}
}
