// Package manager implements the Samhita manager: the component
// responsible for memory allocation, synchronization and the
// write-notice directory that drives regional consistency (Section II).
// In the heterogeneous-node mapping of Figure 1 the manager runs on the
// host processor alongside the memory servers.
//
// Every synchronization operation in Samhita goes through the manager —
// the paper explicitly calls out the resulting overhead (Section V) —
// and historically the manager was a single event loop whose one
// virtual clock serialized all of it. The manager is now split into a
// dispatcher and a configurable number of synchronization homes
// (shards): the dispatcher decodes each request once and routes it by
// lock/barrier/condition id (or allocation zone) to a home, and each
// home runs its own state machine with its own virtual clock, so
// traffic on unrelated synchronization objects no longer queues behind
// one clock. With a single home (the default) the behavior — times,
// message bytes, grant order — is exactly the historical one.
//
// On a sequenced fabric a sharded manager additionally hands contended
// locks over peer-to-peer: the home names the next waiter to the
// current holder (NextWaiter), and the holder forwards the grant plus
// the notice batch directly to that waiter at release (LockGrant), so
// the manager stays out of the steady-state handoff path and only
// arbitrates when the waiter set changes.
//
// Consistency bookkeeping: each release (unlock, barrier arrival,
// condition wait) carries the releasing interval's write notice — the
// pages dirtied in ordinary regions plus the fine-grained store records
// logged in consistency regions. The manager stamps it with a global
// sequence number and stores it. Each acquire (lock grant, barrier
// departure, condition wakeup) returns every notice the acquiring thread
// has not yet seen. Notices older than every thread's horizon are
// pruned. The notice directory stays global across homes (see
// noticeBoard) because the acquire protocol's horizon is one scalar.
package manager

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/scl"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Address-space plan. The zones are disjoint so that a Free can be
// routed by address alone.
const (
	// ArenaZoneBase is where per-thread arena chunks are carved from.
	ArenaZoneBase layout.Addr = 1 << 20
	arenaZoneEnd  layout.Addr = 1 << 34
	// SharedZoneBase serves medium allocations (strategy two).
	SharedZoneBase layout.Addr = 1 << 34
	sharedZoneEnd  layout.Addr = 1 << 36
	// StripedZoneBase serves large allocations (strategy three); bases
	// are aligned to a full stripe group so consecutive allocations
	// start on different memory servers.
	StripedZoneBase layout.Addr = 1 << 36
	stripedZoneEnd  layout.Addr = 1 << 40
)

// Stats counts manager activity. Fields are atomics so that harnesses
// and tests can observe progress while the manager runs.
type Stats struct {
	Allocs atomic.Int64
	Frees  atomic.Int64
	// DedupAllocs / DedupFrees count allocation-plane requests answered
	// from the per-writer idempotency records instead of mutating a
	// zone: re-issues across manager failover.
	DedupAllocs   atomic.Int64
	DedupFrees    atomic.Int64
	LockGrants    atomic.Int64
	LockWaits     atomic.Int64 // grants that had to queue first
	Unlocks       atomic.Int64
	BarrierRounds atomic.Int64
	CondWaits     atomic.Int64
	CondSignals   atomic.Int64
	NoticesStored atomic.Int64
	NoticesSent   atomic.Int64
	NoticesPruned atomic.Int64
	NextWaiters   atomic.Int64 // successor announcements sent to holders
	Handoffs      atomic.Int64 // grants forwarded holder-to-waiter
}

// atomicTime publishes a shard clock for cross-goroutine readers.
type atomicTime struct{ v atomic.Int64 }

func (a *atomicTime) Store(t vtime.Time) { a.v.Store(int64(t)) }
func (a *atomicTime) Load() vtime.Time   { return vtime.Time(a.v.Load()) }

// Manager is the manager component: a dispatcher over one or more
// synchronization homes.
type Manager struct {
	ep  scl.Endpoint
	geo layout.Geometry

	nshards   int
	sequenced bool
	p2p       bool // peer-to-peer lock handoff (sharded + sequenced)
	shards    []*shard
	zoneShard [3]int // home shard of the arena/shared/striped zones
	wg        sync.WaitGroup

	arenaZone   *Zone
	sharedZone  *Zone
	stripedZone *Zone
	// snaps is the snapshot/fork table; owned by the striped zone's home
	// shard, replicated with the rest of the state (stateVersion 3).
	snaps *snapState

	board *noticeBoard

	// Liveness (nil live == disabled). Heartbeats are wall-clock
	// driven and processed at zero virtual cost, so enabling liveness
	// does not perturb a run's virtual-time results. The lease table is
	// dispatcher-owned; reclamation fans out to the homes.
	live        *stats.Liveness
	tr          *trace.Collector
	lease       time.Duration
	members     map[memberKey]*member
	deadNodes   map[uint32]bool // fence requests from declared-dead nodes
	liveThreads atomic.Int64    // thread members not declared dead
	dataNodes   []scl.NodeID    // memory servers + standbys, for WriterDead obituaries
	obitGen     uint64          // monotonic generation stamped on WriterDead obituaries

	// Replication (nil = single manager, bit-identical to the
	// historical behavior). See repl.go.
	repl *replState

	stats Stats
}

// memberKey identifies a liveness participant.
type memberKey struct {
	class uint8 // proto.MemberThread or proto.MemberServer
	id    uint32
}

// member is one row of the manager's lease table.
type member struct {
	node     uint32
	lastBeat time.Time
	dead     bool
	reapGen  uint64 // obituary generation, for the promotion re-broadcast
}

// New creates a manager serving the given endpoint.
func New(ep scl.Endpoint, geo layout.Geometry) *Manager {
	m := &Manager{
		ep:          ep,
		geo:         geo,
		arenaZone:   NewZone("arena", ArenaZoneBase, arenaZoneEnd),
		sharedZone:  NewZone("shared", SharedZoneBase, sharedZoneEnd),
		stripedZone: NewZone("striped", StripedZoneBase, stripedZoneEnd),
		snaps:       newSnapState(),
		members:     make(map[memberKey]*member),
		deadNodes:   make(map[uint32]bool),
	}
	m.board = newBoard(&m.stats)
	m.setShards(1)
	return m
}

// SetShards splits the manager's synchronization state into n homes.
// Must be called before Run. With n == 1 (the default) the manager
// behaves exactly as the historical single-loop implementation.
func (m *Manager) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	m.setShards(n)
}

func (m *Manager) setShards(n int) {
	m.nshards = n
	m.shards = make([]*shard, n)
	for i := range m.shards {
		m.shards[i] = newShard(m, i)
	}
	// Each allocation zone gets a fixed home so zone state stays
	// single-owner; the ids are salted out of the sync-id space.
	for i := range m.zoneShard {
		m.zoneShard[i] = m.shardOf(0xA10C0000 + uint32(i))
	}
}

// SetSequenced tells the manager it runs on a deterministic sequenced
// fabric: shards execute inline on the dispatcher goroutine (the
// sequencer already provides one-at-a-time delivery), and — when
// sharded — contended locks are handed over peer-to-peer. Must be
// called before Run.
func (m *Manager) SetSequenced(b bool) { m.sequenced = b }

// inline reports whether shard state machines run on the dispatcher
// goroutine (single home, deterministic sequenced mode, or a replicated
// manager — applying a replicated log must be deterministic, and a
// promotion must not have to quiesce worker goroutines) instead of
// worker goroutines.
func (m *Manager) inline() bool { return m.nshards == 1 || m.sequenced || m.repl != nil }

// shardOf maps a synchronization object id to its home shard with a
// splitmix64-style finalizer, mirroring layout.Geometry.ShardOf for
// pages.
func (m *Manager) shardOf(id uint32) int {
	if m.nshards == 1 {
		return 0
	}
	x := uint64(id)
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(m.nshards))
}

// EnableLiveness turns on heartbeat membership: participants that miss
// their lease are declared dead, their locks force-released, barrier
// counts recomputed, and parked waiters that can no longer make
// progress completed with proto.ErrPeerDied. Must be called before
// Run. A nil live allocates a private counter set; tr may be nil.
func (m *Manager) EnableLiveness(lease time.Duration, live *stats.Liveness, tr *trace.Collector) {
	if live == nil {
		live = new(stats.Liveness)
	}
	m.live = live
	m.lease = lease
	m.tr = tr
}

// SetDataNodes records the fabric nodes of every memory server and warm
// standby. When a thread's lease is reaped, the manager posts a
// WriterDead obituary to each so the servers stop waiting for the dead
// writer's unshipped diffs (a writer can die between announcing a
// release and shipping its DiffBatch). Must be called before Run.
func (m *Manager) SetDataNodes(nodes []scl.NodeID) {
	m.dataNodes = append([]scl.NodeID(nil), nodes...)
}

// Stats exposes the manager's counters.
func (m *Manager) Stats() *Stats { return &m.stats }

// ZoneLive reports the outstanding allocation count of each zone
// (arena, shared, striped) — the observable the alloc-leak regression
// test watches across failover. Call only when the manager is idle.
func (m *Manager) ZoneLive() (arena, shared, striped int) {
	return m.arenaZone.Live(), m.sharedZone.Live(), m.stripedZone.Live()
}

// Clock reports the manager's virtual time: the maximum across its
// homes' clocks.
func (m *Manager) Clock() vtime.Time {
	var max vtime.Time
	for _, sh := range m.shards {
		if t := sh.mirror.Load(); t > max {
			max = t
		}
	}
	return max
}

// toShard delivers one work item to a home: executed immediately in
// inline mode, queued to the home's goroutine otherwise.
func (m *Manager) toShard(sh *shard, it mgrItem) {
	if m.inline() {
		sh.process(it)
		return
	}
	sh.ch <- it
}

// dispatch routes a decoded request to its home shard. Requests that
// carry a release interval reserve their directory ticket HERE, in
// arrival order, so worker-mode homes cannot reorder the notice
// directory; everything else is stamped with the arrival horizon its
// acquires must wait for (see noticeBoard).
func (m *Manager) dispatch(idx int, req *scl.Request, msg proto.Msg) {
	m.dispatchAt(idx, req, msg, 0)
}

// dispatchAt is dispatch with an extra virtual-time floor: a replicated
// leader's mutation is applied only after the slowest follower acked it,
// so the shard clock (and the client's reply) carries the replication
// round's latency.
func (m *Manager) dispatchAt(idx int, req *scl.Request, msg proto.Msg, floor vtime.Time) {
	var tick uint64
	switch msg.(type) {
	case *proto.UnlockReq, *proto.BarrierReq, *proto.CondWaitReq:
		tick = m.board.reserve()
	default:
		tick = m.board.horizon()
	}
	m.toShard(m.shards[idx], mgrItem{kind: itemReq, req: req, msg: msg, at: floor, tick: tick})
}

// routeErr charges and answers a request that failed to decode. Shard
// zero handles these so the single-home clock accounting is unchanged.
func (m *Manager) routeErr(req *scl.Request, err error) {
	m.toShard(m.shards[0], mgrItem{kind: itemErr, req: req, err: err})
}

// post sends a one-way message (NextWaiter, LockGrant, WriterDead) to a
// node. Send failures mean the peer's port closed; the liveness layer,
// when enabled, is the mechanism that unblocks anyone waiting on it. A
// follower replica applying the log suppresses posts entirely — the
// leader already externalized them.
func (m *Manager) post(node uint32, msg proto.Msg, at vtime.Time) {
	if m.isFollower() {
		return
	}
	_, _ = m.ep.Post(scl.NodeID(node), msg, at)
}

// startWorkers launches one goroutine per home (worker mode only).
func (m *Manager) startWorkers() {
	for _, sh := range m.shards {
		m.wg.Add(1)
		go sh.run()
	}
}

// stopShards fails every parked waiter and, in worker mode, stops the
// home goroutines.
func (m *Manager) stopShards(code uint16, why string) {
	if m.inline() {
		for _, sh := range m.shards {
			sh.failParked(code, why)
		}
		return
	}
	for _, sh := range m.shards {
		sh.ch <- mgrItem{kind: itemStop, code: code, why: why}
	}
	m.wg.Wait()
}

// Run processes requests until Shutdown or endpoint closure.
func (m *Manager) Run() {
	m.p2p = m.nshards > 1 && m.sequenced
	if !m.inline() {
		m.startWorkers()
	}
	if r := m.repl; r != nil && r.leader {
		r.mu.Lock()
		m.startRenewal()
		r.mu.Unlock()
	}
	defer m.stopRenewal()
	for {
		req, ok := m.ep.Recv()
		if !ok {
			// The endpoint died under us (e.g. a fault injector killed
			// the manager node): parked waiters learn the peer died,
			// not that it shut down in an orderly way.
			m.stopShards(proto.CodePeerDied, "manager endpoint closed")
			return
		}
		if m.handleOne(req) {
			return
		}
	}
}

// handleOne processes one incoming request; stop reports an orderly
// shutdown. Replicated managers serialize everything (including the
// lease-renewal goroutine's appends) under repl.mu.
func (m *Manager) handleOne(req *scl.Request) (stop bool) {
	if r := m.repl; r != nil {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	// Heartbeats are wall-clock bookkeeping and carry zero virtual
	// cost: handled before any clock moves so liveness does not
	// perturb virtual-time determinism.
	switch req.Kind() {
	case proto.KHeartbeat:
		m.handleHeartbeat(req)
		return false
	// Replication control plane (leader appends, snapshots, the
	// failover controller's promotion).
	case proto.KReplAppend:
		m.handleReplAppend(req)
		return false
	case proto.KReplSnapshot:
		m.handleReplSnapshot(req)
		return false
	case proto.KPromoteMgr:
		m.handlePromote(req)
		return false
	}
	// Fence requests from members the lease table has declared
	// dead: their state was already reclaimed, so letting them back
	// in would corrupt lock/barrier bookkeeping.
	if m.live != nil && m.deadNodes[uint32(req.Src())] {
		if !req.OneWay() {
			req.ReplyErrorCode(proto.CodePeerDied,
				fmt.Errorf("manager: request from dead node %d", req.Src()), m.Clock())
		}
		return false
	}
	// Shutdown is handled ahead of the leader fence: it must keep its
	// terminal CodeShutdown/Ack meaning on every replica (the runtime
	// shuts all of them down), and a deposed leader must never convert
	// a client's orderly stop into a retryable NotLeader.
	if req.Kind() == proto.KShutdown {
		if m.inline() {
			sh := m.shards[0]
			sh.clock.AdvanceTo(req.Arrive())
			sh.clock.Advance(req.Svc())
			sh.mirror.Store(sh.clock.Now())
		}
		if !req.OneWay() {
			req.Reply(&proto.Ack{}, m.Clock())
		}
		m.stopShards(proto.CodeShutdown, "manager shut down")
		return true
	}
	// Standby (or deposed) replicas refuse the client plane with the
	// retryable CodeNotLeader; the runtime's failover redirect is what
	// turns that refusal into a promotion.
	if r := m.repl; r != nil && !r.leader {
		if !req.OneWay() {
			req.ReplyErrorCode(proto.CodeNotLeader,
				fmt.Errorf("manager: replica %d is not the leader", r.self), m.Clock())
		}
		return false
	}
	msg, idx, err := m.decodeReq(req)
	if err != nil {
		m.routeErr(req, err)
		return false
	}
	var floor vtime.Time
	if m.repl != nil {
		var ok bool
		if floor, ok = m.replicate(req); !ok {
			// Deposed mid-round; demote already failed the parked
			// waiters with the same code.
			if !req.OneWay() {
				req.ReplyErrorCode(proto.CodeNotLeader,
					fmt.Errorf("manager: leader deposed"), m.Clock())
			}
			return false
		}
	}
	m.dispatchAt(idx, req, msg, floor)
	return false
}

// decodeReq decodes a client-plane request and resolves its home shard.
// It is shared by the dispatcher and by followers replaying the
// replicated log, so route decisions are identical on every replica.
func (m *Manager) decodeReq(req *scl.Request) (proto.Msg, int, error) {
	switch req.Kind() {
	case proto.KAllocReq:
		var ar proto.AllocReq
		if err := req.Decode(&ar); err != nil {
			return nil, 0, err
		}
		zi := 0
		switch ar.Strategy {
		case proto.AllocShared:
			zi = 1
		case proto.AllocStriped:
			zi = 2
		}
		return &ar, m.zoneShard[zi], nil
	case proto.KFreeReq:
		var fr proto.FreeReq
		if err := req.Decode(&fr); err != nil {
			return nil, 0, err
		}
		return &fr, m.zoneShard[zoneIndexOf(layout.Addr(fr.Addr))], nil
	case proto.KRegisterReq:
		var rr proto.RegisterReq
		if err := req.Decode(&rr); err != nil {
			return nil, 0, err
		}
		return &rr, m.shardOf(rr.Thread), nil
	case proto.KLockReq:
		var lr proto.LockReq
		if err := req.Decode(&lr); err != nil {
			return nil, 0, err
		}
		return &lr, m.shardOf(lr.Lock), nil
	case proto.KUnlockReq:
		var ur proto.UnlockReq
		if err := req.Decode(&ur); err != nil {
			if req.OneWay() {
				// Nobody to answer; an undecodable unlock is a
				// protocol bug.
				panic(fmt.Sprintf("manager: bad UnlockReq: %v", err))
			}
			return nil, 0, err
		}
		return &ur, m.shardOf(ur.Lock), nil
	case proto.KBarrierReq:
		var br proto.BarrierReq
		if err := req.Decode(&br); err != nil {
			return nil, 0, err
		}
		return &br, m.shardOf(br.Barrier), nil
	case proto.KCondWaitReq:
		var cw proto.CondWaitReq
		if err := req.Decode(&cw); err != nil {
			return nil, 0, err
		}
		// A condition wait releases its lock, so it runs at the
		// LOCK's home; parking at the condition's home is a
		// cross-shard item from there.
		return &cw, m.shardOf(cw.Lock), nil
	case proto.KCondSignalReq:
		var sr proto.CondSignalReq
		if err := req.Decode(&sr); err != nil {
			return nil, 0, err
		}
		return &sr, m.shardOf(sr.Cond), nil
	case proto.KSnapshotASReq:
		var sr proto.SnapshotASReq
		if err := req.Decode(&sr); err != nil {
			return nil, 0, err
		}
		// Snapshot/fork state lives with the striped zone it describes.
		return &sr, m.zoneShard[2], nil
	case proto.KForkASReq:
		var fr proto.ForkASReq
		if err := req.Decode(&fr); err != nil {
			return nil, 0, err
		}
		return &fr, m.zoneShard[2], nil
	default:
		return nil, 0, fmt.Errorf("manager: unexpected %v", req.Kind())
	}
}

// zoneIndexOf maps an address to its allocation zone's index (Free
// routing). Out-of-zone addresses go to the arena home, whose handler
// produces the error reply.
func zoneIndexOf(addr layout.Addr) int {
	switch {
	case addr >= SharedZoneBase && addr < sharedZoneEnd:
		return 1
	case addr >= StripedZoneBase && addr < stripedZoneEnd:
		return 2
	default:
		return 0
	}
}

// ---------------------------------------------------------------------
// Liveness: heartbeat membership and lease reclamation.

// handleHeartbeat renews (or, with Bye, retires) a member's lease and
// reaps members whose lease has expired. Server heartbeats double as
// the reap prodder: the lease table keeps advancing even when every
// compute thread is parked or dead.
func (m *Manager) handleHeartbeat(req *scl.Request) {
	if m.live == nil {
		return // liveness disabled: ignore
	}
	var hb proto.Heartbeat
	if err := req.Decode(&hb); err != nil {
		// A heartbeat that fails to decode means a version-skewed or
		// corrupted peer whose lease is silently starving; count it and
		// leave a trace event instead of dropping it invisibly.
		m.live.HeartbeatsMalformed.Add(1)
		m.traceLive("heartbeat-malformed", map[string]any{
			"src": uint32(req.Src()), "err": err.Error(),
		})
		return
	}
	m.live.Heartbeats.Add(1)
	now := time.Now()
	if hb.Member != 0 || hb.Class != 0 {
		k := memberKey{class: hb.Class, id: hb.Member}
		switch mem, ok := m.members[k]; {
		case hb.Bye:
			// Graceful departure: the member leaves the table instead of
			// timing out, so finished threads are never declared dead.
			// A thread can leave while still holding a lock or parked in
			// a barrier/cond round (crash-free but buggy app code, or a
			// shutdown racing in-flight sync); once it is out of the
			// table no lease can ever expire for it, so its sync state
			// must be reclaimed here or it leaks forever. The thread is
			// NOT marked dead: a later re-registration is legitimate.
			delete(m.members, k)
			if ok && k.class == proto.MemberThread {
				if !mem.dead {
					m.liveThreads.Add(-1)
				}
				m.reclaimThread(k.id, false)
			}
		case ok:
			if !mem.dead {
				mem.lastBeat = now
			}
		default:
			m.members[k] = &member{node: hb.Node, lastBeat: now}
			if k.class == proto.MemberThread {
				m.liveThreads.Add(1)
			}
		}
	}
	m.reap(now)
}

// reap declares members whose lease expired dead and reclaims their
// synchronization state.
func (m *Manager) reap(now time.Time) {
	for k, mem := range m.members {
		if mem.dead || now.Sub(mem.lastBeat) <= m.lease {
			continue
		}
		mem.dead = true
		m.deadNodes[mem.node] = true
		m.traceLive("member-dead", map[string]any{
			"class": k.class, "id": k.id, "node": mem.node,
		})
		switch k.class {
		case proto.MemberThread:
			m.obitGen++
			mem.reapGen = m.obitGen
			// A replicated leader logs the reap BEFORE acting on it: a
			// follower promoted later finds the member already dead and
			// never re-reaps the same lease (no double barrier
			// recomputation, no duplicate obituary generation).
			if !m.replicateEvent(proto.KReclaimEvent,
				&proto.ReclaimEvent{Thread: k.id, Node: mem.node, Gen: m.obitGen}) {
				continue // deposed mid-reap: the new leader owns this decision
			}
			m.live.ThreadsDead.Add(1)
			m.liveThreads.Add(-1)
			m.reclaimThread(k.id, true)
			// Obituary to the data plane: the dead writer may have
			// announced a release whose DiffBatch it never shipped, and
			// the servers must not park fetches on that tag forever.
			// One-way at zero virtual cost, like the heartbeats that
			// drive this path. The generation lets servers deduplicate
			// when a promoted manager re-broadcasts.
			for _, node := range m.dataNodes {
				m.post(uint32(node), &proto.WriterDead{Writer: k.id, Gen: mem.reapGen}, 0)
			}
		case proto.MemberServer:
			m.live.ServersDead.Add(1)
		}
	}
}

// reclaimThread fans a thread's reclamation out to every home and then
// removes it from the write-notice horizon. markDead additionally
// fences future grants at the homes.
func (m *Manager) reclaimThread(tid uint32, markDead bool) {
	tick := m.board.horizon()
	for _, sh := range m.shards {
		m.toShard(sh, mgrItem{kind: itemReclaim, tid: tid, markDead: markDead, tick: tick})
	}
	// The thread no longer pins the write-notice horizon. In worker
	// mode this runs before the homes drain their queues; dropping the
	// horizon early only delays pruning of anything an in-flight grant
	// re-pins, never loses a notice.
	m.board.dropThread(tid)
}

// traceLive emits one liveness event, if a collector is attached.
func (m *Manager) traceLive(name string, args map[string]any) {
	if m.tr == nil {
		return
	}
	now := m.Clock()
	m.tr.Span("manager", trace.CatLive, name, now, now, args)
}
