package manager

// Kill-survivable manager: every client-plane mutation is driven through
// a replicated log (internal/replog) before it is applied, so standby
// manager replicas hold the same membership leases, lock/barrier/cond
// tables, notice directory and allocation zones as the leader and can
// take over when it dies.
//
// The flow is leader-based synchronous replication in the style of
// Raft's append path, with elections externalized to the runtime (the
// clients' retry exhaustion against a dead leader is the lease-expiry
// signal; the failover controller promotes the next replica under a
// strictly higher term):
//
//   - The leader decodes a mutation, appends it to its log and pushes
//     the pending entries to every live follower with a blocking
//     ReplAppend call. Only when every live follower has acknowledged
//     does the mutation reach the shard state machines and its reply
//     reach the client. Lost followers are dropped (they stop gating);
//     a follower answering from a higher term — or the leader's own
//     sends failing terminally, the self-death signal under a fault
//     injector — deposes the leader, which fails every parked waiter
//     with CodeNotLeader so clients re-issue against the successor.
//   - Followers apply accepted entries through the SAME handlers the
//     leader ran, as replayed requests whose replies go nowhere;
//     outbound posts are suppressed while following. Replicated
//     managers always run their shards inline, so applying the log is
//     deterministic regardless of the shard count.
//   - The log is truncated to what every live follower acked AND the
//     leader applied; a follower whose next expected index was
//     truncated away is caught up with a full state snapshot
//     (manager/state.go) and resumes appends above it.
//
// With one replica the log layer is absent entirely (Manager.repl is
// nil) and the manager is bit-identical to the unreplicated one.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/proto"
	"repro/internal/replog"
	"repro/internal/scl"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// Replication configures a manager replica. Nodes lists every replica's
// fabric node in promotion order: index 0 is the initial leader, and on
// failover the runtime promotes the lowest-indexed survivor.
type Replication struct {
	Self  int          // this replica's index in Nodes
	Nodes []scl.NodeID // all replica nodes, by index
	Live  *stats.Liveness
}

// replState is a manager's replication role and log bookkeeping. All of
// it is guarded by mu: the dispatcher takes mu around every message and
// the lease-renewal goroutine takes it around each empty append.
type replState struct {
	mu sync.Mutex

	self     int
	replicas []scl.NodeID
	live     *stats.Liveness

	leader  bool
	deposed bool
	term    uint64

	prop    *replog.Proposer // leader only
	acc     replog.Acceptor
	applied uint64 // entries externalized to the shard state machines

	renewStop chan struct{} // closes to stop the lease-renewal goroutine
}

// SetReplication turns this manager into replica cfg.Self of a
// replicated group. Must be called before Run. Replica 0 starts as the
// leader under term 1; the others follow until promoted.
func (m *Manager) SetReplication(cfg Replication) {
	if len(cfg.Nodes) < 2 {
		return // a group of one is just the plain manager
	}
	live := cfg.Live
	if live == nil {
		live = new(stats.Liveness)
	}
	r := &replState{
		self:     cfg.Self,
		replicas: append([]scl.NodeID(nil), cfg.Nodes...),
		live:     live,
		term:     1,
	}
	r.acc.Term = 1
	if cfg.Self == 0 {
		r.leader = true
		var peers []int
		for i := 1; i < len(cfg.Nodes); i++ {
			peers = append(peers, i)
		}
		r.prop = replog.NewProposer(1, peers, 1)
	}
	m.repl = r
}

// replicated reports whether this manager is part of a replica group.
func (m *Manager) replicated() bool { return m.repl != nil }

// isFollower reports whether this manager currently applies the log
// instead of serving clients (standby replica, or a deposed leader).
func (m *Manager) isFollower() bool { return m.repl != nil && !m.repl.leader }

// replicate appends one client mutation to the log and pushes it to
// every live follower before the caller applies it. The returned floor
// is the virtual time when the slowest follower's ack was in hand: the
// shard clock advances to it so replication latency is on the
// critical path it really occupies. ok=false means this leader was
// deposed mid-round; the caller answers CodeNotLeader.
func (m *Manager) replicate(req *scl.Request) (floor vtime.Time, ok bool) {
	r := m.repl
	body := append([]byte(nil), req.Body()...)
	r.prop.Append(uint32(req.Src()), req.Kind(), body)
	return m.pushToPeers(req.Arrive())
}

// replicateEvent logs a manager-internal decision (a lease reap) so a
// promoted follower never re-makes it. Deposition is absorbed here: the
// demoted manager has already failed its parked waiters, and the reap
// it was about to act on is now the new leader's to make.
func (m *Manager) replicateEvent(kind proto.Kind, msg proto.Msg) bool {
	r := m.repl
	if r == nil || !r.leader || r.deposed {
		return r == nil // unreplicated managers act directly
	}
	r.prop.Append(0, kind, proto.Encode(msg))
	_, ok := m.pushToPeers(m.Clock())
	return ok
}

// pushToPeers ships every pending log entry (none = lease renewal) to
// each live follower and truncates the acked+applied prefix.
func (m *Manager) pushToPeers(at vtime.Time) (floor vtime.Time, ok bool) {
	r := m.repl
	floor = at
	peers := r.prop.LivePeers()
	sort.Ints(peers)
	for _, pi := range peers {
	peerLoop:
		for {
			ents, needSnap := r.prop.Batch(pi)
			if needSnap {
				dropped, deposed := m.sendSnapshot(pi, at)
				if deposed {
					return 0, false
				}
				if dropped {
					break peerLoop
				}
				continue
			}
			var ack proto.ReplAck
			doneAt, err := m.ep.Call(r.replicas[pi], &proto.ReplAppend{Term: r.term, Entries: ents}, &ack, at)
			if err != nil {
				if isPeerGone(err) {
					r.prop.DropPeer(pi)
					r.live.ReplFailures.Add(1)
					break peerLoop
				}
				// Our own sends failing terminally means THIS node is
				// gone (the fault injector killed it): stop
				// externalizing state.
				m.demote(fmt.Sprintf("replication to replica %d failed: %v", pi, err))
				return 0, false
			}
			r.live.MgrReplAppends.Add(1)
			r.live.MgrReplEntries.Add(int64(len(ents)))
			if doneAt > floor {
				floor = doneAt
			}
			if r.prop.Ack(pi, &ack) {
				m.demote(fmt.Sprintf("deposed by replica %d (term %d)", pi, ack.Term))
				return 0, false
			}
			if ack.OK {
				break peerLoop
			}
			// Gap rejection: the follower told us its next expected
			// index; the next Batch resends from there.
		}
	}
	r.applied = r.prop.Last()
	if n := r.prop.Truncate(r.applied); n > 0 {
		r.live.MgrLogTruncated.Add(int64(n))
	}
	return floor, true
}

// sendSnapshot catches a lagging follower up with the full semantic
// state, keyed to the applied index.
func (m *Manager) sendSnapshot(pi int, at vtime.Time) (dropped, deposed bool) {
	r := m.repl
	snap := &proto.ReplSnapshot{Term: r.term, Index: r.applied, State: m.encodeState()}
	var ack proto.ReplAck
	if _, err := m.ep.Call(r.replicas[pi], snap, &ack, at); err != nil {
		if isPeerGone(err) {
			r.prop.DropPeer(pi)
			r.live.ReplFailures.Add(1)
			return true, false
		}
		m.demote(fmt.Sprintf("snapshot to replica %d failed: %v", pi, err))
		return false, true
	}
	if !ack.OK {
		if ack.Term > r.term {
			m.demote(fmt.Sprintf("deposed by replica %d (term %d)", pi, ack.Term))
			return false, true
		}
		r.prop.DropPeer(pi)
		return true, false
	}
	r.prop.SnapshotInstalled(pi, snap.Index)
	r.live.MgrSnapshots.Add(1)
	return false, false
}

// isPeerGone classifies a replication-call failure as the PEER being
// unreachable (transient transport failures and their retry-exhausted
// form) rather than this node being dead (terminal failures).
func isPeerGone(err error) bool {
	if errors.Is(err, scl.ErrUnreachable) || errors.Is(err, proto.ErrPeerDied) {
		return true
	}
	return scl.IsTransient(err)
}

// demote steps a deposed leader down: every parked waiter is answered
// with CodeNotLeader (a retryable error — see scl.IsTransient — that
// the runtime redirects to the promoted replica), and every subsequent
// client-plane request is refused the same way. Client-initiated
// shutdown keeps its terminal CodeShutdown meaning: a deposed leader
// never answers with it.
func (m *Manager) demote(why string) {
	r := m.repl
	if !r.leader || r.deposed {
		return
	}
	r.leader = false
	r.deposed = true
	r.live.MgrDeposed.Add(1)
	m.traceLive("manager-deposed", map[string]any{"replica": r.self, "term": r.term, "why": why})
	// Replicated managers always run inline, so the shards are owned by
	// the goroutine running this.
	for _, sh := range m.shards {
		sh.failParked(proto.CodeNotLeader, "manager leader deposed")
	}
}

// handleReplAppend is the follower half of the append path.
func (m *Manager) handleReplAppend(req *scl.Request) {
	r := m.repl
	if r == nil {
		req.ReplyErrorCode(proto.CodeGeneric, fmt.Errorf("manager: not a replica"), m.Clock())
		return
	}
	var ra proto.ReplAppend
	if err := req.Decode(&ra); err != nil {
		req.ReplyError(err, m.Clock())
		return
	}
	if r.leader {
		if ra.Term > r.term {
			m.demote(fmt.Sprintf("append from term %d", ra.Term))
		} else {
			// A stale old leader appending to the new one: the higher
			// term in the nack deposes it.
			req.Reply(&proto.ReplAck{OK: false, Term: r.term, NextIndex: r.acc.Last + 1}, m.Clock())
			return
		}
	}
	apply, ack := r.acc.Offer(&ra)
	if r.acc.Term > r.term {
		r.term = r.acc.Term
	}
	for i := range apply {
		m.applyEntry(apply[i])
	}
	req.Reply(&ack, m.Clock())
}

// handleReplSnapshot installs a full-state snapshot on a lagging
// follower.
func (m *Manager) handleReplSnapshot(req *scl.Request) {
	r := m.repl
	if r == nil {
		req.ReplyErrorCode(proto.CodeGeneric, fmt.Errorf("manager: not a replica"), m.Clock())
		return
	}
	var rs proto.ReplSnapshot
	if err := req.DecodeAlias(&rs); err != nil {
		req.ReplyError(err, m.Clock())
		return
	}
	if r.leader && rs.Term <= r.term {
		req.Reply(&proto.ReplAck{OK: false, Term: r.term, NextIndex: r.acc.Last + 1}, m.Clock())
		return
	}
	if err := r.acc.InstallSnapshot(rs.Term, rs.Index); err != nil {
		req.Reply(&proto.ReplAck{OK: false, Term: r.acc.Term, NextIndex: r.acc.Last + 1}, m.Clock())
		return
	}
	if err := m.restoreState(rs.State); err != nil {
		// A snapshot the leader just encoded failing to decode is a
		// protocol bug, not a runtime condition.
		panic(fmt.Sprintf("manager: bad replication snapshot: %v", err))
	}
	r.term = r.acc.Term
	req.Reply(&proto.ReplAck{OK: true, Term: r.acc.Term, NextIndex: r.acc.Last + 1}, m.Clock())
}

// applyEntry runs one accepted log entry through the shard state
// machines, as the leader did.
func (m *Manager) applyEntry(e proto.ReplEntry) {
	kind := proto.Kind(e.Kind)
	if kind == proto.KReclaimEvent {
		var re proto.ReclaimEvent
		if err := proto.Decode(&re, e.Body); err != nil {
			panic(fmt.Sprintf("manager: bad replicated reclaim event: %v", err))
		}
		m.applyReclaimEvent(&re)
		return
	}
	req := scl.NewReplayRequest(scl.NodeID(e.Src), kind, e.Body, 0)
	msg, idx, err := m.decodeReq(req)
	if err != nil {
		// Entries were decodable at the leader; a mismatch here means
		// corruption, not client error.
		panic(fmt.Sprintf("manager: bad replicated %v entry: %v", kind, err))
	}
	m.dispatch(idx, req, msg)
}

// applyReclaimEvent replays a lease reap the leader replicated before
// acting on it. The member is marked dead so a later promotion of this
// replica never re-reaps the same lease (and so the old and new leader
// can never both recompute the same barriers); obituary generations are
// remembered for the promotion-time re-broadcast.
func (m *Manager) applyReclaimEvent(re *proto.ReclaimEvent) {
	k := memberKey{class: proto.MemberThread, id: re.Thread}
	mem, ok := m.members[k]
	switch {
	case !ok:
		mem = &member{node: re.Node, dead: true}
		m.members[k] = mem
	case mem.dead:
		return // duplicate (snapshot + log overlap)
	default:
		mem.dead = true
		m.liveThreads.Add(-1)
	}
	mem.reapGen = re.Gen
	if re.Gen > m.obitGen {
		m.obitGen = re.Gen
	}
	m.deadNodes[re.Node] = true
	m.reclaimThread(re.Thread, true)
}

// handlePromote makes this replica the leader under a strictly higher
// term. Idempotent: a duplicate promotion (a client retry) at or below
// the current term of an active leader just acks.
func (m *Manager) handlePromote(req *scl.Request) {
	r := m.repl
	if r == nil {
		req.ReplyErrorCode(proto.CodeGeneric, fmt.Errorf("manager: not a replica"), m.Clock())
		return
	}
	var pm proto.PromoteMgr
	if err := req.Decode(&pm); err != nil {
		req.ReplyError(err, m.Clock())
		return
	}
	if r.leader && !r.deposed && pm.Term <= r.term {
		req.Reply(&proto.Ack{}, m.Clock())
		return
	}
	if pm.Term <= r.term {
		req.ReplyErrorCode(proto.CodeGeneric,
			fmt.Errorf("manager: stale promotion to term %d (replica %d is at term %d)", pm.Term, r.self, r.term), m.Clock())
		return
	}
	m.promote(pm.Term)
	req.Reply(&proto.Ack{}, m.Clock())
}

// promote turns this follower into the leader.
func (m *Manager) promote(term uint64) {
	r := m.repl
	r.term = term
	r.acc.Term = term
	r.leader = true
	r.deposed = false
	// The chain only ever promotes upward, so the replicas above this
	// one are the new peer set; anything below is a deposed leader the
	// higher term fences.
	var peers []int
	for i := r.self + 1; i < len(r.replicas); i++ {
		peers = append(peers, i)
	}
	r.prop = replog.NewProposer(term, peers, r.acc.Last+1)
	r.applied = r.acc.Last
	// Every surviving member gets a fresh lease: none of them could
	// heartbeat this replica before learning it leads, and a reap storm
	// at promotion would undo the failover the replication paid for.
	now := time.Now()
	var live int64
	for k, mem := range m.members {
		if mem.dead {
			continue
		}
		mem.lastBeat = now
		if k.class == proto.MemberThread {
			live++
		}
	}
	m.liveThreads.Store(live)
	r.live.MgrElections.Add(1)
	m.traceLive("manager-promoted", map[string]any{"replica": r.self, "term": term})
	// Re-broadcast obituaries for every thread reaped under earlier
	// terms: the old leader may have died between replicating the reap
	// and posting the WriterDead. The servers deduplicate by
	// generation, so the overlap with the old leader's posts is safe.
	for k, mem := range m.members {
		if k.class != proto.MemberThread || !mem.dead {
			continue
		}
		for _, node := range m.dataNodes {
			m.post(uint32(node), &proto.WriterDead{Writer: k.id, Gen: mem.reapGen}, 0)
		}
	}
	m.startRenewal()
}

// startRenewal launches the leader-lease loop: an empty append to the
// followers every half lease. Its real job is detecting the leader's
// OWN death while idle — a killed node's outbound calls fail terminally,
// which demotes it so parked clients get their CodeNotLeader within a
// bounded stall instead of hanging until the next mutation. Liveness
// must be enabled (the loop is wall-clock driven, like heartbeats).
func (m *Manager) startRenewal() {
	r := m.repl
	if r == nil || m.lease <= 0 || r.renewStop != nil {
		return
	}
	stop := make(chan struct{})
	r.renewStop = stop
	every := m.lease / 2
	if every <= 0 {
		every = time.Millisecond
	}
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				r.mu.Lock()
				if r.leader && !r.deposed {
					m.pushToPeers(m.Clock())
				}
				r.mu.Unlock()
			}
		}
	}()
}

// stopRenewal stops the lease-renewal goroutine, if running.
func (m *Manager) stopRenewal() {
	if r := m.repl; r != nil && r.renewStop != nil {
		close(r.renewStop)
		r.renewStop = nil
	}
}
