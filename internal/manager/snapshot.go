package manager

import (
	"fmt"
	"sort"

	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/scl"
)

// snapState is the manager's address-space snapshot/fork table, owned —
// like the striped zone it describes — by the striped zone's home shard
// (decodeReq routes SnapshotAS/ForkAS there), so it needs no locking.
// It is part of the replicated state snapshot (stateVersion 3): forks
// survive leader kills exactly like allocations do.
type snapState struct {
	nextSnap uint64
	snaps    map[uint64]*snapInfo // snapshot id -> geometry + refcount
	forks    map[uint64]uint64    // fork base address -> snapshot id

	// Per-writer idempotency records, mirroring Zone.lastAlloc: a
	// SnapshotAS/ForkAS/fork-FreeReq re-issued across a manager failover
	// is answered with the original id/base/geometry instead of sealing,
	// allocating or decrementing twice.
	lastSnap     map[uint32]snapRecord
	lastFork     map[uint32]forkRecord
	lastFreeFork map[uint32]freeForkRecord
}

// snapInfo records one sealed snapshot: the original striped range and
// how many live forks reference it. Refs starts at 1 for the snapshot
// handle itself and rises with each fork; freeing a fork's range drops
// one ref, freeing the original image drops the handle's ref
// (handleGone keeps a later allocation that reuses origBase from
// dropping it twice), and a record whose refs reach zero is released —
// the reply names it so the caller can tell the homes to drop its
// sealed frames.
type snapInfo struct {
	origBase   uint64
	npages     uint64
	refs       int64
	handleGone bool
}

type snapRecord struct{ seq, snap uint64 }

type forkRecord struct {
	seq  uint64
	resp proto.ForkASResp
}

type freeForkRecord struct {
	seq  uint64
	resp proto.FreeResp
}

func newSnapState() *snapState {
	return &snapState{
		snaps:        make(map[uint64]*snapInfo),
		forks:        make(map[uint64]uint64),
		lastSnap:     make(map[uint32]snapRecord),
		lastFork:     make(map[uint32]forkRecord),
		lastFreeFork: make(map[uint32]freeForkRecord),
	}
}

func (sh *shard) handleSnapshotAS(req *scl.Request, sr *proto.SnapshotASReq) {
	m := sh.m
	ss := m.snaps
	if sr.Seq != 0 {
		if rec, ok := ss.lastSnap[sr.Thread]; ok && rec.seq == sr.Seq {
			m.stats.DedupAllocs.Add(1)
			req.Reply(&proto.SnapshotASResp{Snap: rec.snap}, sh.clock.Now())
			return
		}
	}
	base := layout.Addr(sr.Base)
	if sr.NPages == 0 || !m.stripedZone.Contains(base) {
		req.ReplyError(fmt.Errorf("manager: snapshot of %#x (+%d pages) outside the striped zone", sr.Base, sr.NPages), sh.clock.Now())
		return
	}
	// Fork pages must be homed by the server holding the congruent sealed
	// frame, which requires the original image to sit on a stripe-group
	// boundary — the alignment every striped allocation gets. Reject a
	// mid-buffer snapshot that breaks the congruence.
	if align := uint64(m.geo.LineSize() * m.geo.NumServers); sr.Base%align != 0 {
		req.ReplyError(fmt.Errorf("manager: snapshot base %#x not stripe-group aligned (%d)", sr.Base, align), sh.clock.Now())
		return
	}
	ss.nextSnap++
	id := ss.nextSnap
	ss.snaps[id] = &snapInfo{origBase: sr.Base, npages: sr.NPages, refs: 1}
	if sr.Seq != 0 {
		ss.lastSnap[sr.Thread] = snapRecord{seq: sr.Seq, snap: id}
	}
	req.Reply(&proto.SnapshotASResp{Snap: id}, sh.clock.Now())
}

func (sh *shard) handleForkAS(req *scl.Request, fr *proto.ForkASReq) {
	m := sh.m
	ss := m.snaps
	if fr.Seq != 0 {
		if rec, ok := ss.lastFork[fr.Thread]; ok && rec.seq == fr.Seq {
			m.stats.DedupAllocs.Add(1)
			resp := rec.resp
			req.Reply(&resp, sh.clock.Now())
			return
		}
	}
	si, ok := ss.snaps[fr.Snap]
	if !ok {
		req.ReplyError(fmt.Errorf("manager: fork of unknown snapshot %d", fr.Snap), sh.clock.Now())
		return
	}
	// The fork's base gets the striped zone's stripe-group alignment —
	// the same alignment the original image was allocated with — so
	// every page offset keeps its home server and the sealed frames can
	// be served without any cross-server indirection.
	align := m.geo.LineSize() * m.geo.NumServers
	addr, err := m.stripedZone.Alloc(si.npages*uint64(m.geo.PageSize), align)
	if err != nil {
		req.ReplyError(err, sh.clock.Now())
		return
	}
	si.refs++
	ss.forks[uint64(addr)] = fr.Snap
	m.stats.Allocs.Add(1)
	resp := proto.ForkASResp{Base: uint64(addr), OrigBase: si.origBase, NPages: si.npages}
	if fr.Seq != 0 {
		ss.lastFork[fr.Thread] = forkRecord{seq: fr.Seq, resp: resp}
	}
	req.Reply(&resp, sh.clock.Now())
}

// forkFree runs phase one of freeing a forked range: the fork's table
// entry and snapshot reference go away immediately (so a racing ForkAS
// between the two free phases cannot revive state the caller was told
// to tear down), but the zone space is NOT freed — the reply tells the
// caller the geometry to unmap at the homes, and a second, Unmapped
// FreeReq commits the space once every home has acked. A parent
// snapshot whose refs reach zero is released and named in the reply.
func (ss *snapState) forkFree(addr, snap uint64) proto.FreeResp {
	delete(ss.forks, addr)
	resp := proto.FreeResp{Fork: true, Snap: snap}
	if si, ok := ss.snaps[snap]; ok {
		resp.NPages = si.npages
		si.refs--
		if si.refs <= 0 {
			delete(ss.snaps, snap)
			resp.Release = append(resp.Release, snap)
		}
	}
	return resp
}

// originFreed drops the handle reference of every snapshot sealed from
// the freed range: the source allocation pins its snapshots, so a
// snapshot with no remaining forks is released with it. Returns the
// released ids (sorted, for replay determinism) and the largest
// released page count, which sizes the homes' frame-release fanout.
func (ss *snapState) originFreed(addr uint64) (release []uint64, npages uint64) {
	ids := make([]uint64, 0, len(ss.snaps))
	for id := range ss.snaps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		si := ss.snaps[id]
		if si.origBase != addr || si.handleGone {
			continue
		}
		si.handleGone = true
		si.refs--
		if si.refs <= 0 {
			delete(ss.snaps, id)
			release = append(release, id)
			if si.npages > npages {
				npages = si.npages
			}
		}
	}
	return release, npages
}

// encode/decode follow the state.go conventions: sorted iteration for
// byte-determinism, varint fields throughout.
func (ss *snapState) encode(w *proto.Writer) {
	w.U64(ss.nextSnap)
	ids := make([]uint64, 0, len(ss.snaps))
	for id := range ss.snaps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U64(uint64(len(ids)))
	for _, id := range ids {
		si := ss.snaps[id]
		w.U64(id)
		w.U64(si.origBase)
		w.U64(si.npages)
		w.I64(si.refs)
		if si.handleGone {
			w.U8(1)
		} else {
			w.U8(0)
		}
	}
	bases := make([]uint64, 0, len(ss.forks))
	for b := range ss.forks {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	w.U64(uint64(len(bases)))
	for _, b := range bases {
		w.U64(b)
		w.U64(ss.forks[b])
	}
	writers := make([]uint32, 0, len(ss.lastSnap))
	for wr := range ss.lastSnap {
		writers = append(writers, wr)
	}
	sort.Slice(writers, func(i, j int) bool { return writers[i] < writers[j] })
	w.U64(uint64(len(writers)))
	for _, wr := range writers {
		r := ss.lastSnap[wr]
		w.U32(wr)
		w.U64(r.seq)
		w.U64(r.snap)
	}
	writers = writers[:0]
	for wr := range ss.lastFork {
		writers = append(writers, wr)
	}
	sort.Slice(writers, func(i, j int) bool { return writers[i] < writers[j] })
	w.U64(uint64(len(writers)))
	for _, wr := range writers {
		r := ss.lastFork[wr]
		w.U32(wr)
		w.U64(r.seq)
		w.U64(r.resp.Base)
		w.U64(r.resp.OrigBase)
		w.U64(r.resp.NPages)
	}
	writers = writers[:0]
	for wr := range ss.lastFreeFork {
		writers = append(writers, wr)
	}
	sort.Slice(writers, func(i, j int) bool { return writers[i] < writers[j] })
	w.U64(uint64(len(writers)))
	for _, wr := range writers {
		r := ss.lastFreeFork[wr]
		w.U32(wr)
		w.U64(r.seq)
		if r.resp.Fork {
			w.U8(1)
		} else {
			w.U8(0)
		}
		w.U64(r.resp.Snap)
		w.U64(r.resp.NPages)
		w.U64s(r.resp.Release)
	}
}

func (ss *snapState) decode(r *proto.Reader) {
	ss.nextSnap = r.U64()
	ns := r.U64()
	for i := uint64(0); i < ns && r.Err() == nil; i++ {
		id := r.U64()
		si := &snapInfo{origBase: r.U64(), npages: r.U64(), refs: r.I64()}
		si.handleGone = r.U8() != 0
		ss.snaps[id] = si
	}
	nf := r.U64()
	for i := uint64(0); i < nf && r.Err() == nil; i++ {
		b := r.U64()
		ss.forks[b] = r.U64()
	}
	nl := r.U64()
	for i := uint64(0); i < nl && r.Err() == nil; i++ {
		wr := r.U32()
		ss.lastSnap[wr] = snapRecord{seq: r.U64(), snap: r.U64()}
	}
	nk := r.U64()
	for i := uint64(0); i < nk && r.Err() == nil; i++ {
		wr := r.U32()
		rec := forkRecord{seq: r.U64()}
		rec.resp.Base = r.U64()
		rec.resp.OrigBase = r.U64()
		rec.resp.NPages = r.U64()
		ss.lastFork[wr] = rec
	}
	nff := r.U64()
	for i := uint64(0); i < nff && r.Err() == nil; i++ {
		wr := r.U32()
		rec := freeForkRecord{seq: r.U64()}
		rec.resp.Fork = r.U8() != 0
		rec.resp.Snap = r.U64()
		rec.resp.NPages = r.U64()
		rec.resp.Release = r.U64s()
		ss.lastFreeFork[wr] = rec
	}
}
