package manager

import (
	"fmt"
	"sort"

	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/scl"
)

// snapState is the manager's address-space snapshot/fork table, owned —
// like the striped zone it describes — by the striped zone's home shard
// (decodeReq routes SnapshotAS/ForkAS there), so it needs no locking.
// It is part of the replicated state snapshot (stateVersion 3): forks
// survive leader kills exactly like allocations do.
type snapState struct {
	nextSnap uint64
	snaps    map[uint64]*snapInfo // snapshot id -> geometry + refcount
	forks    map[uint64]uint64    // fork base address -> snapshot id

	// Per-writer idempotency records, mirroring Zone.lastAlloc: a
	// SnapshotAS/ForkAS re-issued across a manager failover is answered
	// with the original id/base instead of sealing or allocating twice.
	lastSnap map[uint32]snapRecord
	lastFork map[uint32]forkRecord
}

// snapInfo records one sealed snapshot: the original striped range and
// how many live forks reference it. Refs starts at 1 for the snapshot
// handle itself and rises with each fork; freeing a fork's range drops
// one ref, and the record is released when the forks are all gone (the
// handle's ref is the floor — snapshot handles have no explicit drop
// verb yet, so a handle pins its record for the run).
type snapInfo struct {
	origBase uint64
	npages   uint64
	refs     int64
}

type snapRecord struct{ seq, snap uint64 }

type forkRecord struct {
	seq  uint64
	resp proto.ForkASResp
}

func newSnapState() *snapState {
	return &snapState{
		snaps:    make(map[uint64]*snapInfo),
		forks:    make(map[uint64]uint64),
		lastSnap: make(map[uint32]snapRecord),
		lastFork: make(map[uint32]forkRecord),
	}
}

func (sh *shard) handleSnapshotAS(req *scl.Request, sr *proto.SnapshotASReq) {
	m := sh.m
	ss := m.snaps
	if sr.Seq != 0 {
		if rec, ok := ss.lastSnap[sr.Thread]; ok && rec.seq == sr.Seq {
			m.stats.DedupAllocs.Add(1)
			req.Reply(&proto.SnapshotASResp{Snap: rec.snap}, sh.clock.Now())
			return
		}
	}
	base := layout.Addr(sr.Base)
	if sr.NPages == 0 || !m.stripedZone.Contains(base) {
		req.ReplyError(fmt.Errorf("manager: snapshot of %#x (+%d pages) outside the striped zone", sr.Base, sr.NPages), sh.clock.Now())
		return
	}
	// Fork pages must be homed by the server holding the congruent sealed
	// frame, which requires the original image to sit on a stripe-group
	// boundary — the alignment every striped allocation gets. Reject a
	// mid-buffer snapshot that breaks the congruence.
	if align := uint64(m.geo.LineSize() * m.geo.NumServers); sr.Base%align != 0 {
		req.ReplyError(fmt.Errorf("manager: snapshot base %#x not stripe-group aligned (%d)", sr.Base, align), sh.clock.Now())
		return
	}
	ss.nextSnap++
	id := ss.nextSnap
	ss.snaps[id] = &snapInfo{origBase: sr.Base, npages: sr.NPages, refs: 1}
	if sr.Seq != 0 {
		ss.lastSnap[sr.Thread] = snapRecord{seq: sr.Seq, snap: id}
	}
	req.Reply(&proto.SnapshotASResp{Snap: id}, sh.clock.Now())
}

func (sh *shard) handleForkAS(req *scl.Request, fr *proto.ForkASReq) {
	m := sh.m
	ss := m.snaps
	if fr.Seq != 0 {
		if rec, ok := ss.lastFork[fr.Thread]; ok && rec.seq == fr.Seq {
			m.stats.DedupAllocs.Add(1)
			resp := rec.resp
			req.Reply(&resp, sh.clock.Now())
			return
		}
	}
	si, ok := ss.snaps[fr.Snap]
	if !ok {
		req.ReplyError(fmt.Errorf("manager: fork of unknown snapshot %d", fr.Snap), sh.clock.Now())
		return
	}
	// The fork's base gets the striped zone's stripe-group alignment —
	// the same alignment the original image was allocated with — so
	// every page offset keeps its home server and the sealed frames can
	// be served without any cross-server indirection.
	align := m.geo.LineSize() * m.geo.NumServers
	addr, err := m.stripedZone.Alloc(si.npages*uint64(m.geo.PageSize), align)
	if err != nil {
		req.ReplyError(err, sh.clock.Now())
		return
	}
	si.refs++
	ss.forks[uint64(addr)] = fr.Snap
	m.stats.Allocs.Add(1)
	resp := proto.ForkASResp{Base: uint64(addr), OrigBase: si.origBase, NPages: si.npages}
	if fr.Seq != 0 {
		ss.lastFork[fr.Thread] = forkRecord{seq: fr.Seq, resp: resp}
	}
	req.Reply(&resp, sh.clock.Now())
}

// forkFreed drops the fork bookkeeping of a freed striped range, if it
// was one: one snapshot ref goes away, and a snapshot whose forks (and
// handle) are all gone is released.
func (ss *snapState) forkFreed(addr uint64) {
	snap, ok := ss.forks[addr]
	if !ok {
		return
	}
	delete(ss.forks, addr)
	if si, ok := ss.snaps[snap]; ok {
		si.refs--
		if si.refs <= 0 {
			delete(ss.snaps, snap)
		}
	}
}

// encode/decode follow the state.go conventions: sorted iteration for
// byte-determinism, varint fields throughout.
func (ss *snapState) encode(w *proto.Writer) {
	w.U64(ss.nextSnap)
	ids := make([]uint64, 0, len(ss.snaps))
	for id := range ss.snaps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U64(uint64(len(ids)))
	for _, id := range ids {
		si := ss.snaps[id]
		w.U64(id)
		w.U64(si.origBase)
		w.U64(si.npages)
		w.I64(si.refs)
	}
	bases := make([]uint64, 0, len(ss.forks))
	for b := range ss.forks {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	w.U64(uint64(len(bases)))
	for _, b := range bases {
		w.U64(b)
		w.U64(ss.forks[b])
	}
	writers := make([]uint32, 0, len(ss.lastSnap))
	for wr := range ss.lastSnap {
		writers = append(writers, wr)
	}
	sort.Slice(writers, func(i, j int) bool { return writers[i] < writers[j] })
	w.U64(uint64(len(writers)))
	for _, wr := range writers {
		r := ss.lastSnap[wr]
		w.U32(wr)
		w.U64(r.seq)
		w.U64(r.snap)
	}
	writers = writers[:0]
	for wr := range ss.lastFork {
		writers = append(writers, wr)
	}
	sort.Slice(writers, func(i, j int) bool { return writers[i] < writers[j] })
	w.U64(uint64(len(writers)))
	for _, wr := range writers {
		r := ss.lastFork[wr]
		w.U32(wr)
		w.U64(r.seq)
		w.U64(r.resp.Base)
		w.U64(r.resp.OrigBase)
		w.U64(r.resp.NPages)
	}
}

func (ss *snapState) decode(r *proto.Reader) {
	ss.nextSnap = r.U64()
	ns := r.U64()
	for i := uint64(0); i < ns && r.Err() == nil; i++ {
		id := r.U64()
		ss.snaps[id] = &snapInfo{origBase: r.U64(), npages: r.U64(), refs: r.I64()}
	}
	nf := r.U64()
	for i := uint64(0); i < nf && r.Err() == nil; i++ {
		b := r.U64()
		ss.forks[b] = r.U64()
	}
	nl := r.U64()
	for i := uint64(0); i < nl && r.Err() == nil; i++ {
		wr := r.U32()
		ss.lastSnap[wr] = snapRecord{seq: r.U64(), snap: r.U64()}
	}
	nk := r.U64()
	for i := uint64(0); i < nk && r.Err() == nil; i++ {
		wr := r.U32()
		rec := forkRecord{seq: r.U64()}
		rec.resp.Base = r.U64()
		rec.resp.OrigBase = r.U64()
		rec.resp.NPages = r.U64()
		ss.lastFork[wr] = rec
	}
}
