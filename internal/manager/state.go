package manager

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/scl"
)

// Replication snapshot: the full semantic state of a manager, used to
// catch a follower up when the entries it still needs have been
// truncated out of the leader's log. Everything a log replay would have
// built is here — zones, notice directory, lock/barrier/cond tables,
// membership — EXCEPT live parked requests: a snapshot-restored replica
// holds replay waiters (no-op replies) in their place, exactly as if it
// had applied the log, and the live clients re-issue after a failover.
//
// The encoding rides the proto varint Writer/Reader and is internal to
// the manager (leader and follower run the same binary in a replica
// group); it is versioned with a leading magic byte so a mismatch fails
// loudly instead of misdecoding.

// Version 2 added the zones' per-writer allocation-plane idempotency
// records (AllocReq/FreeReq dedup across failover). Version 3 added the
// address-space snapshot/fork table, so forks survive leader kills.
const stateVersion = 3

// encodeState serializes the manager's semantic state.
func (m *Manager) encodeState() []byte {
	w := &proto.Writer{}
	w.U8(stateVersion)
	encodeZone(w, m.arenaZone)
	encodeZone(w, m.sharedZone)
	encodeZone(w, m.stripedZone)
	m.board.encode(w)

	// Membership. lastBeat is wall-clock and meaningless across nodes;
	// the restorer re-stamps it.
	keys := make([]memberKey, 0, len(m.members))
	for k := range m.members {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].class != keys[j].class {
			return keys[i].class < keys[j].class
		}
		return keys[i].id < keys[j].id
	})
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		mem := m.members[k]
		w.U8(k.class)
		w.U32(k.id)
		w.U32(mem.node)
		w.U8(boolByte(mem.dead))
		w.U64(mem.reapGen)
	}
	encodeU32Set(w, m.deadNodes)
	w.U64(m.obitGen)
	w.I64(m.liveThreads.Load())

	w.U64(uint64(len(m.shards)))
	for _, sh := range m.shards {
		sh.encode(w)
	}
	m.snaps.encode(w)
	return w.B
}

// restoreState replaces the manager's semantic state with a snapshot.
func (m *Manager) restoreState(data []byte) error {
	r := &proto.Reader{B: data}
	if v := r.U8(); r.Err() != nil || v != stateVersion {
		return fmt.Errorf("manager: snapshot version %d (want %d)", v, stateVersion)
	}
	arena := decodeZone(r, "arena", ArenaZoneBase, arenaZoneEnd)
	shared := decodeZone(r, "shared", SharedZoneBase, sharedZoneEnd)
	striped := decodeZone(r, "striped", StripedZoneBase, stripedZoneEnd)
	board := newBoard(&m.stats)
	board.decode(r)

	members := make(map[memberKey]*member)
	now := time.Now()
	n := r.U64()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		k := memberKey{class: r.U8(), id: r.U32()}
		mem := &member{node: r.U32(), lastBeat: now}
		mem.dead = r.U8() != 0
		mem.reapGen = r.U64()
		members[k] = mem
	}
	deadNodes := decodeU32Set(r)
	obitGen := r.U64()
	liveThreads := r.I64()

	nsh := r.U64()
	if r.Err() == nil && int(nsh) != len(m.shards) {
		return fmt.Errorf("manager: snapshot has %d shards, replica has %d", nsh, len(m.shards))
	}
	shards := make([]*shard, len(m.shards))
	for i := range shards {
		shards[i] = newShard(m, i)
		shards[i].decode(r)
	}
	snaps := newSnapState()
	snaps.decode(r)
	if r.Err() != nil {
		return fmt.Errorf("manager: snapshot decode: %w", r.Err())
	}
	m.arenaZone, m.sharedZone, m.stripedZone = arena, shared, striped
	m.snaps = snaps
	m.board = board
	m.members = members
	m.deadNodes = deadNodes
	m.obitGen = obitGen
	m.liveThreads.Store(liveThreads)
	m.shards = shards
	return nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

func encodeZone(w *proto.Writer, z *Zone) {
	w.U64(uint64(z.next))
	w.U64(uint64(len(z.free)))
	for _, s := range z.free {
		w.U64(uint64(s.base))
		w.U64(s.size)
	}
	addrs := make([]uint64, 0, len(z.allocs))
	for a := range z.allocs {
		addrs = append(addrs, uint64(a))
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	w.U64(uint64(len(addrs)))
	for _, a := range addrs {
		w.U64(a)
		w.U64(z.allocs[layout.Addr(a)])
	}
	// Per-writer idempotency records, in writer order (byte-determinism).
	writers := make([]uint32, 0, len(z.lastAlloc))
	for wr := range z.lastAlloc {
		writers = append(writers, wr)
	}
	sort.Slice(writers, func(i, j int) bool { return writers[i] < writers[j] })
	w.U64(uint64(len(writers)))
	for _, wr := range writers {
		r := z.lastAlloc[wr]
		w.U32(wr)
		w.U64(r.seq)
		w.U64(uint64(r.addr))
	}
	encodeU32U64Map(w, z.lastFree)
}

func decodeZone(r *proto.Reader, name string, base, limit layout.Addr) *Zone {
	z := NewZone(name, base, limit)
	z.next = layout.Addr(r.U64())
	nf := r.U64()
	for i := uint64(0); i < nf && r.Err() == nil; i++ {
		z.free = append(z.free, span{base: layout.Addr(r.U64()), size: r.U64()})
	}
	na := r.U64()
	for i := uint64(0); i < na && r.Err() == nil; i++ {
		a := layout.Addr(r.U64())
		z.allocs[a] = r.U64()
	}
	nd := r.U64()
	for i := uint64(0); i < nd && r.Err() == nil; i++ {
		wr := r.U32()
		z.lastAlloc[wr] = allocRecord{seq: r.U64(), addr: layout.Addr(r.U64())}
	}
	z.lastFree = decodeU32U64Map(r)
	return z
}

func encodeU32Set(w *proto.Writer, set map[uint32]bool) {
	ids := make([]uint64, 0, len(set))
	for id := range set {
		ids = append(ids, uint64(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U64s(ids)
}

func decodeU32Set(r *proto.Reader) map[uint32]bool {
	set := make(map[uint32]bool)
	for _, id := range r.U64s() {
		set[uint32(id)] = true
	}
	return set
}

func encodeU32U64Map(w *proto.Writer, mp map[uint32]uint64) {
	ids := make([]uint32, 0, len(mp))
	for id := range mp {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U64(uint64(len(ids)))
	for _, id := range ids {
		w.U32(id)
		w.U64(mp[id])
	}
}

func decodeU32U64Map(r *proto.Reader) map[uint32]uint64 {
	mp := make(map[uint32]uint64)
	n := r.U64()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		id := r.U32()
		mp[id] = r.U64()
	}
	return mp
}

// encode serializes the directory. Snapshots are taken between requests
// on an inline (replicated) manager, so no tickets are pending.
func (b *noticeBoard) encode(w *proto.Writer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	w.U64(b.issued)
	w.U64(b.contiguous)
	proto.MarshalNotices(w, b.notices)
	encodeU32U64Map(w, b.lastSeen)
	encodeU32U64Map(w, b.lastInterval)
}

func (b *noticeBoard) decode(r *proto.Reader) {
	b.issued = r.U64()
	b.contiguous = r.U64()
	b.notices = proto.UnmarshalNotices(r)
	b.lastSeen = decodeU32U64Map(r)
	b.lastInterval = decodeU32U64Map(r)
}

// encodeWaiter flattens a parked waiter; the restored form is a replay
// waiter (no-op reply) — see the package comment above.
func encodeWaiter(w *proto.Writer, wt *waiter) {
	w.U32(wt.thread)
	w.U32(wt.node)
	w.U64(wt.lastSeen)
	w.U8(uint8(wt.kind))
	w.U8(boolByte(wt.detached))
}

func decodeWaiter(r *proto.Reader) waiter {
	wt := waiter{
		thread:   r.U32(),
		node:     r.U32(),
		lastSeen: r.U64(),
	}
	wt.kind = waitKind(r.U8())
	wt.detached = r.U8() != 0
	if !wt.detached {
		kind := proto.KLockReq
		if wt.kind == waitCond {
			kind = proto.KCondWaitReq
		}
		wt.req = scl.NewReplayRequest(scl.NodeID(wt.node), kind, nil, 0)
	}
	return wt
}

func (sh *shard) encode(w *proto.Writer) {
	lockIDs := sortedKeysL(sh.locks)
	w.U64(uint64(len(lockIDs)))
	for _, id := range lockIDs {
		ls := sh.locks[id]
		w.U32(id)
		w.U8(boolByte(ls.held))
		w.U32(ls.holder)
		w.U32(ls.holderNode)
		w.U64(ls.gen)
		w.U64(ls.grantSeq)
		w.U64(uint64(len(ls.queue)))
		for i := range ls.queue {
			encodeWaiter(w, &ls.queue[i])
		}
	}
	barIDs := sortedKeysB(sh.barriers)
	w.U64(uint64(len(barIDs)))
	for _, id := range barIDs {
		bs := sh.barriers[id]
		w.U32(id)
		w.U32(bs.count)
		w.U64(bs.epoch)
		encodeU32U64Map(w, bs.counted)
		encodeU32Set(w, bs.dead)
		w.U64(uint64(len(bs.arrived)))
		for i := range bs.arrived {
			encodeWaiter(w, &bs.arrived[i])
		}
	}
	condIDs := sortedKeysC(sh.conds)
	w.U64(uint64(len(condIDs)))
	for _, id := range condIDs {
		cs := sh.conds[id]
		w.U32(id)
		w.U64(uint64(len(cs.waiters)))
		for i := range cs.waiters {
			w.U32(cs.waiters[i].lock)
			encodeWaiter(w, &cs.waiters[i].w)
		}
	}
	encodeU32Set(w, sh.deadThreads)
}

func (sh *shard) decode(r *proto.Reader) {
	nl := r.U64()
	for i := uint64(0); i < nl && r.Err() == nil; i++ {
		id := r.U32()
		ls := &lockState{}
		ls.held = r.U8() != 0
		ls.holder = r.U32()
		ls.holderNode = r.U32()
		ls.gen = r.U64()
		ls.grantSeq = r.U64()
		nq := r.U64()
		for j := uint64(0); j < nq && r.Err() == nil; j++ {
			ls.queue = append(ls.queue, decodeWaiter(r))
		}
		sh.locks[id] = ls
	}
	nb := r.U64()
	for i := uint64(0); i < nb && r.Err() == nil; i++ {
		id := r.U32()
		bs := &barrierState{count: r.U32()}
		bs.epoch = r.U64()
		bs.counted = decodeU32U64Map(r)
		bs.dead = decodeU32Set(r)
		na := r.U64()
		for j := uint64(0); j < na && r.Err() == nil; j++ {
			bs.arrived = append(bs.arrived, decodeWaiter(r))
		}
		sh.barriers[id] = bs
	}
	nc := r.U64()
	for i := uint64(0); i < nc && r.Err() == nil; i++ {
		id := r.U32()
		cs := &condState{}
		nw := r.U64()
		for j := uint64(0); j < nw && r.Err() == nil; j++ {
			lock := r.U32()
			cs.waiters = append(cs.waiters, condEntry{lock: lock, w: decodeWaiter(r)})
		}
		sh.conds[id] = cs
	}
	sh.deadThreads = decodeU32Set(r)
}

func sortedKeysL(m map[uint32]*lockState) []uint32 {
	ks := make([]uint32, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func sortedKeysB(m map[uint32]*barrierState) []uint32 {
	ks := make([]uint32, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func sortedKeysC(m map[uint32]*condState) []uint32 {
	ks := make([]uint32, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
