package manager

import (
	"sync"

	"repro/internal/proto"
)

// noticeBoard is the write-notice directory: release intervals stamped
// with a global sequence number, plus each thread's pruning horizon.
//
// The directory stays logically shared even when the manager's
// synchronization state is sharded into homes: the acquire protocol
// carries a single scalar horizon (LastSeen), so notice sequencing must
// stay globally ordered for lazy release consistency to hold across
// locks homed on different shards. The board is therefore one
// mutex-protected structure reached from every home; the serialization
// the benchmark measures is virtual-time (per-home clocks), which does
// shard, while this Go-level mutex is held only for map/slice work.
//
// Sequence numbers are TICKETS issued by the dispatcher in arrival
// order, not by the home that eventually stores the interval. In worker
// mode the homes run concurrently, so a release routed to one home and
// an acquire routed to another could otherwise race: a client posts its
// one-way unlock and then arrives at a barrier, and the barrier's home
// must not release the round before the unlock's interval is in the
// directory. The dispatcher reserves a ticket for every
// interval-carrying request as it arrives; the home later fills it (or
// cancels it, for a fenced release), and acquires wait until the board
// is contiguous up to their arrival horizon. Every wait is on a
// strictly earlier-dispatched item sitting ahead in some home's queue,
// so the earliest unfilled ticket can always make progress — there is
// no cyclic wait. In inline mode (one home, or a sequenced fabric)
// reserve/fill/acquire run back to back on the dispatcher goroutine and
// the waits never fire.
type noticeBoard struct {
	mu sync.Mutex
	cv *sync.Cond

	issued     uint64              // last ticket handed out by the dispatcher
	contiguous uint64              // all tickets <= contiguous are filled or cancelled
	pending    map[uint64]struct{} // reserved tickets not yet filled/cancelled

	notices  []proto.Notice // filled intervals, sorted by Seq
	lastSeen map[uint32]uint64
	// lastInterval tracks each writer's highest filled interval number.
	// Interval numbers are assigned client-side and monotonic per
	// thread across all its releases, so a replicated manager can
	// recognize a re-issued release (a reply lost to a leader failover)
	// as a duplicate: its interval is already filled.
	lastInterval map[uint32]uint64
	stats        *Stats
}

func newBoard(st *Stats) *noticeBoard {
	b := &noticeBoard{
		pending:      make(map[uint64]struct{}),
		lastSeen:     make(map[uint32]uint64),
		lastInterval: make(map[uint32]uint64),
		stats:        st,
	}
	b.cv = sync.NewCond(&b.mu)
	return b
}

// ensure makes sure a thread participates in the pruning horizon.
// Threads register explicitly at spawn; acquires also auto-register so
// the manager never prunes a notice an active thread has not seen.
func (b *noticeBoard) ensure(thread uint32, lastSeen uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.lastSeen[thread]; !ok {
		b.lastSeen[thread] = lastSeen
	}
}

// reserve hands out the next ticket. Called by the dispatcher, in
// arrival order, for every request that will post an interval.
func (b *noticeBoard) reserve() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.issued++
	b.pending[b.issued] = struct{}{}
	return b.issued
}

// horizon returns the youngest ticket issued so far: the arrival
// horizon attached to requests that acquire without posting.
func (b *noticeBoard) horizon() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.issued
}

// filled reports whether the writer's interval is already in the
// directory (or was pruned after being delivered): the duplicate test
// for re-issued releases after a manager failover.
func (b *noticeBoard) filled(writer uint32, interval uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return interval != 0 && interval <= b.lastInterval[writer]
}

// fill stores the interval for a reserved ticket.
func (b *noticeBoard) fill(seq uint64, tag proto.IntervalTag, pages []uint64, records []proto.StoreRecord) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if tag.Interval > b.lastInterval[tag.Writer] {
		b.lastInterval[tag.Writer] = tag.Interval
	}
	n := proto.Notice{Seq: seq, Tag: tag, Pages: pages, Records: records}
	i := len(b.notices)
	for i > 0 && b.notices[i-1].Seq > seq {
		i--
	}
	b.notices = append(b.notices, proto.Notice{})
	copy(b.notices[i+1:], b.notices[i:])
	b.notices[i] = n
	b.stats.NoticesStored.Add(1)
	b.complete(seq)
}

// cancel abandons a reserved ticket (a fenced release whose interval
// must not enter the directory). The seq becomes a permanent gap.
func (b *noticeBoard) cancel(seq uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.complete(seq)
}

// complete marks a ticket done and advances the contiguous frontier.
// Caller holds mu.
func (b *noticeBoard) complete(seq uint64) {
	delete(b.pending, seq)
	adv := false
	for b.contiguous < b.issued {
		if _, open := b.pending[b.contiguous+1]; open {
			break
		}
		b.contiguous++
		adv = true
	}
	if adv {
		b.cv.Broadcast()
	}
}

// acquire serves an acquire point: once every interval that arrived
// before the acquirer's horizon is in the directory, it returns the
// notices the thread has not seen plus the delivery frontier (the
// thread's new horizon), advances that horizon, and prunes.
func (b *noticeBoard) acquire(thread uint32, since, horizon uint64) ([]proto.Notice, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.contiguous < horizon {
		b.cv.Wait()
	}
	ns := b.after(since, b.contiguous)
	if b.contiguous > b.lastSeen[thread] {
		b.lastSeen[thread] = b.contiguous
	}
	seq := b.contiguous
	b.prune()
	return ns, seq
}

// rangeAfter returns the notices with since < Seq <= upTo, for
// composing the backlog a peer-to-peer handoff carries (bounded by the
// holder's acquire point: later notices are delivered at the
// successor's next acquire).
func (b *noticeBoard) rangeAfter(since, upTo uint64) []proto.Notice {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.after(since, upTo)
}

// after copies notices with since < Seq <= upTo. Caller holds mu. The
// copy (rather than an aliasing subslice) keeps worker-mode shards from
// racing a concurrent insert; encoded replies are unchanged by it.
func (b *noticeBoard) after(since, upTo uint64) []proto.Notice {
	i := len(b.notices)
	for i > 0 && b.notices[i-1].Seq > since {
		i--
	}
	j := len(b.notices)
	for j > 0 && b.notices[j-1].Seq > upTo {
		j--
	}
	if i > j {
		i = j
	}
	out := append([]proto.Notice(nil), b.notices[i:j]...)
	b.stats.NoticesSent.Add(int64(len(out)))
	return out
}

// saw advances a thread's horizon to seq (never backwards) and prunes.
func (b *noticeBoard) saw(thread uint32, seq uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if seq > b.lastSeen[thread] {
		b.lastSeen[thread] = seq
	}
	b.prune()
}

// dropThread removes a departed thread from the pruning horizon. Its
// lastInterval entry stays: a late duplicate of the corpse's release
// must still be recognized as one.
func (b *noticeBoard) dropThread(tid uint32) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.lastSeen, tid)
	b.prune()
}

// prune drops notices below every remaining thread's horizon. Caller
// holds mu.
func (b *noticeBoard) prune() {
	min := b.contiguous
	for _, s := range b.lastSeen {
		if s < min {
			min = s
		}
	}
	cut := 0
	for cut < len(b.notices) && b.notices[cut].Seq <= min {
		cut++
	}
	if cut > 0 {
		b.stats.NoticesPruned.Add(int64(cut))
		b.notices = append([]proto.Notice(nil), b.notices[cut:]...)
	}
}
