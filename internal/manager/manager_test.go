package manager

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/scl"
	"repro/internal/simnet"
	"repro/internal/vtime"
)

var testLink = vtime.LinkModel{
	Name:         "test",
	Latency:      1000,
	BytesPerSec:  1e9,
	SendOverhead: 50,
	ServiceTime:  100,
}

const mgrNode = 500

type client struct {
	t  *testing.T
	ep scl.Endpoint
	id uint32
	at vtime.Time

	lastSeen uint64
	interval uint64
}

type testEnv struct {
	mgr *Manager
	fab *simnet.Fabric
	wg  sync.WaitGroup
}

func newEnv(t *testing.T) *testEnv {
	t.Helper()
	env := &testEnv{fab: simnet.NewFabric(testLink)}
	env.mgr = New(scl.NewSimEndpoint(env.fab, mgrNode), layout.DefaultGeometry())
	env.wg.Add(1)
	go func() {
		defer env.wg.Done()
		env.mgr.Run()
	}()
	t.Cleanup(func() {
		c := env.client(t, 999)
		var ack proto.Ack
		if _, err := c.ep.Call(mgrNode, &proto.Shutdown{}, &ack, 0); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		env.wg.Wait()
	})
	return env
}

func (e *testEnv) client(t *testing.T, id uint32) *client {
	return &client{t: t, ep: scl.NewSimEndpoint(e.fab, simnet.NodeID(id)), id: id}
}

func (c *client) alloc(size uint64, strategy uint8) (layout.Addr, error) {
	var resp proto.AllocResp
	at, err := c.ep.Call(mgrNode, &proto.AllocReq{Thread: c.id, Size: size, Align: 16, Strategy: strategy}, &resp, c.at)
	if err != nil {
		return 0, err
	}
	c.at = at
	return layout.Addr(resp.Addr), nil
}

func (c *client) free(addr layout.Addr) error {
	var resp proto.FreeResp
	at, err := c.ep.Call(mgrNode, &proto.FreeReq{Thread: c.id, Addr: uint64(addr)}, &resp, c.at)
	if err != nil {
		return err
	}
	c.at = at
	return nil
}

func (c *client) lock(id uint32) (*proto.LockResp, error) {
	var resp proto.LockResp
	at, err := c.ep.Call(mgrNode, &proto.LockReq{Lock: id, Thread: c.id, LastSeen: c.lastSeen}, &resp, c.at)
	if err != nil {
		return nil, err
	}
	c.at = at
	c.lastSeen = resp.Seq
	return &resp, nil
}

func (c *client) unlock(id uint32, pages []uint64, records []proto.StoreRecord) error {
	c.interval++
	var ack proto.Ack
	at, err := c.ep.Call(mgrNode, &proto.UnlockReq{
		Lock: id, Thread: c.id, Interval: c.interval, Pages: pages, Records: records,
	}, &ack, c.at)
	if err != nil {
		return err
	}
	c.at = at
	return nil
}

func (c *client) barrier(id, count uint32, pages []uint64) (*proto.BarrierResp, error) {
	c.interval++
	var resp proto.BarrierResp
	at, err := c.ep.Call(mgrNode, &proto.BarrierReq{
		Barrier: id, Count: count, Thread: c.id,
		LastSeen: c.lastSeen, Interval: c.interval, Pages: pages,
	}, &resp, c.at)
	if err != nil {
		return nil, err
	}
	c.at = at
	c.lastSeen = resp.Seq
	return &resp, nil
}

func TestAllocStrategiesAndZones(t *testing.T) {
	env := newEnv(t)
	c := env.client(t, 1)
	geo := layout.DefaultGeometry()

	arena, err := c.alloc(256<<10, proto.AllocArenaChunk)
	if err != nil {
		t.Fatal(err)
	}
	if arena < ArenaZoneBase || arena >= SharedZoneBase {
		t.Errorf("arena chunk at %#x outside arena zone", uint64(arena))
	}
	if uint64(arena)%uint64(geo.LineSize()) != 0 {
		t.Errorf("arena chunk not line-aligned: %#x", uint64(arena))
	}

	shared, err := c.alloc(100, proto.AllocShared)
	if err != nil {
		t.Fatal(err)
	}
	if shared < SharedZoneBase || shared >= StripedZoneBase {
		t.Errorf("shared alloc at %#x outside shared zone", uint64(shared))
	}

	striped, err := c.alloc(10<<20, proto.AllocStriped)
	if err != nil {
		t.Fatal(err)
	}
	if striped < StripedZoneBase {
		t.Errorf("striped alloc at %#x outside striped zone", uint64(striped))
	}
	if uint64(striped)%uint64(geo.LineSize()*geo.NumServers) != 0 {
		t.Errorf("striped alloc not group-aligned: %#x", uint64(striped))
	}

	for _, a := range []layout.Addr{arena, shared, striped} {
		if err := c.free(a); err != nil {
			t.Errorf("free %#x: %v", uint64(a), err)
		}
	}
	if err := c.free(42); err == nil {
		t.Error("free outside all zones succeeded")
	}
}

func TestLockUnlockAndNotices(t *testing.T) {
	env := newEnv(t)
	c1 := env.client(t, 1)
	c2 := env.client(t, 2)

	if _, err := c1.lock(7); err != nil {
		t.Fatal(err)
	}
	recs := []proto.StoreRecord{{Addr: 4096, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}}
	if err := c1.unlock(7, []uint64{3, 4}, recs); err != nil {
		t.Fatal(err)
	}

	resp, err := c2.lock(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Notices) != 1 {
		t.Fatalf("got %d notices, want 1", len(resp.Notices))
	}
	n := resp.Notices[0]
	if n.Tag.Writer != 1 || n.Tag.Interval != 1 {
		t.Errorf("notice tag %+v", n.Tag)
	}
	if len(n.Pages) != 2 || n.Pages[0] != 3 {
		t.Errorf("notice pages %v", n.Pages)
	}
	if len(n.Records) != 1 || n.Records[0].Addr != 4096 {
		t.Errorf("notice records %+v", n.Records)
	}

	// A second acquire by c2 after seeing everything returns no notices.
	if err := c2.unlock(7, nil, nil); err != nil {
		t.Fatal(err)
	}
	resp2, err := c2.lock(7)
	if err != nil {
		t.Fatal(err)
	}
	// c2's own release is the only unseen notice; the manager sends it
	// (clients filter their own writer id).
	if len(resp2.Notices) != 1 || resp2.Notices[0].Tag.Writer != 2 {
		t.Errorf("unexpected notices %+v", resp2.Notices)
	}
}

func TestUnlockByNonHolderFails(t *testing.T) {
	env := newEnv(t)
	c1 := env.client(t, 1)
	c2 := env.client(t, 2)
	if _, err := c1.lock(1); err != nil {
		t.Fatal(err)
	}
	if err := c2.unlock(1, nil, nil); err == nil {
		t.Fatal("unlock by non-holder succeeded")
	}
	if err := c1.unlock(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Unlocking a free lock also fails.
	if err := c1.unlock(1, nil, nil); err == nil {
		t.Fatal("unlock of free lock succeeded")
	}
}

func TestLockContentionFIFOAndVirtualTime(t *testing.T) {
	env := newEnv(t)
	holder := env.client(t, 1)
	if _, err := holder.lock(5); err != nil {
		t.Fatal(err)
	}

	// A second client requests the lock while held; its grant must come
	// after the holder's unlock in virtual time.
	c2 := env.client(t, 2)
	granted := make(chan vtime.Time)
	go func() {
		if _, err := c2.lock(5); err != nil {
			t.Errorf("c2 lock: %v", err)
		}
		granted <- c2.at
	}()

	// Hold until c2 is definitely queued.
	for env.mgr.Stats().LockWaits.Load() == 0 {
	}
	holder.at = 1_000_000 // unlock late in virtual time
	if err := holder.unlock(5, nil, nil); err != nil {
		t.Fatal(err)
	}
	grantAt := <-granted
	if grantAt < 1_000_000+testLink.Latency {
		t.Errorf("grant at %v, before the unlock could reach the manager", grantAt)
	}
}

func TestBarrierReleasesAllWithNotices(t *testing.T) {
	env := newEnv(t)
	const n = 4
	var wg sync.WaitGroup
	seqs := make([]uint64, n)
	notices := make([][]proto.Notice, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := env.client(t, uint32(i+1))
			resp, err := c.barrier(9, n, []uint64{uint64(100 + i)})
			if err != nil {
				t.Errorf("barrier: %v", err)
				return
			}
			seqs[i] = resp.Seq
			notices[i] = resp.Notices
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if seqs[i] != seqs[0] {
			t.Errorf("thread %d released at seq %d, thread 0 at %d", i, seqs[i], seqs[0])
		}
		if len(notices[i]) != n {
			t.Errorf("thread %d got %d notices, want %d", i, len(notices[i]), n)
		}
	}
	// Barrier is reusable: a second round works.
	var wg2 sync.WaitGroup
	for i := 0; i < n; i++ {
		wg2.Add(1)
		go func(i int) {
			defer wg2.Done()
			c := env.client(t, uint32(10+i))
			if _, err := c.barrier(9, n, nil); err != nil {
				t.Errorf("round 2: %v", err)
			}
		}(i)
	}
	wg2.Wait()
}

func TestBarrierCountMismatch(t *testing.T) {
	env := newEnv(t)
	c1 := env.client(t, 1)
	done := make(chan error, 1)
	go func() {
		_, err := c1.barrier(3, 2, nil)
		done <- err
	}()
	// Ensure c1's arrival is registered first (it posts a notice) so the
	// barrier's count is fixed at 2 before the mismatching arrival.
	for env.mgr.Stats().NoticesStored.Load() == 0 {
	}
	c2 := env.client(t, 2)
	if _, err := c2.barrier(3, 5, nil); err == nil {
		t.Error("mismatched count accepted")
	} else if !strings.Contains(err.Error(), "count mismatch") {
		t.Errorf("unexpected error: %v", err)
	}
	c3 := env.client(t, 3)
	if _, err := c3.barrier(3, 2, nil); err != nil {
		t.Errorf("completing arrival failed: %v", err)
	}
	if err := <-done; err != nil {
		t.Errorf("first arrival failed: %v", err)
	}
	if _, err := c2.barrier(0, 0, nil); err == nil {
		t.Error("zero-count barrier accepted")
	}
}

func TestCondWaitSignal(t *testing.T) {
	env := newEnv(t)
	waiter := env.client(t, 1)
	signaler := env.client(t, 2)

	if _, err := waiter.lock(1); err != nil {
		t.Fatal(err)
	}
	woken := make(chan *proto.CondWaitResp, 1)
	go func() {
		waiter.interval++
		var resp proto.CondWaitResp
		at, err := waiter.ep.Call(mgrNode, &proto.CondWaitReq{
			Cond: 8, Lock: 1, Thread: waiter.id,
			LastSeen: waiter.lastSeen, Interval: waiter.interval,
			Pages: []uint64{55},
		}, &resp, waiter.at)
		if err != nil {
			t.Errorf("cond wait: %v", err)
			return
		}
		waiter.at = at
		woken <- &resp
	}()

	// The signaler can take the lock while the waiter sleeps — the wait
	// released it. Loop until the waiter's release notice (pages {55},
	// writer 1) is visible, which proves the wait has parked.
	for parked := false; !parked; {
		resp, err := signaler.lock(1)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range resp.Notices {
			if n.Tag.Writer == waiter.id && len(n.Pages) == 1 && n.Pages[0] == 55 {
				parked = true
			}
		}
		if parked {
			break
		}
		if err := signaler.unlock(1, nil, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Signal, then unlock so the waiter can re-acquire.
	var ack proto.Ack
	if _, err := signaler.ep.Call(mgrNode, &proto.CondSignalReq{Cond: 8, Thread: signaler.id}, &ack, signaler.at); err != nil {
		t.Fatal(err)
	}
	select {
	case <-woken:
		t.Fatal("waiter woke while signaler still held the lock")
	default:
	}
	if err := signaler.unlock(1, []uint64{77}, nil); err != nil {
		t.Fatal(err)
	}
	resp := <-woken
	found := false
	for _, n := range resp.Notices {
		for _, p := range n.Pages {
			if p == 77 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("waiter missed the signaler's release notice: %+v", resp.Notices)
	}
	// Waiter holds the lock again.
	waiter.lastSeen = resp.Seq
	if err := waiter.unlock(1, nil, nil); err != nil {
		t.Errorf("waiter does not hold the lock after wakeup: %v", err)
	}
}

func TestCondWaitWithoutLockFails(t *testing.T) {
	env := newEnv(t)
	c := env.client(t, 1)
	var resp proto.CondWaitResp
	if _, err := c.ep.Call(mgrNode, &proto.CondWaitReq{Cond: 1, Lock: 1, Thread: c.id}, &resp, 0); err == nil {
		t.Fatal("cond wait without holding lock succeeded")
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	env := newEnv(t)
	const n = 3
	woken := make(chan int, n)
	var entered sync.WaitGroup
	for i := 0; i < n; i++ {
		entered.Add(1)
		go func(i int) {
			c := env.client(t, uint32(i+1))
			if _, err := c.lock(2); err != nil {
				t.Errorf("lock: %v", err)
				entered.Done()
				return
			}
			var resp proto.CondWaitResp
			entered.Done()
			_, err := c.ep.Call(mgrNode, &proto.CondWaitReq{
				Cond: 4, Lock: 2, Thread: c.id, Interval: 1,
			}, &resp, c.at)
			if err != nil {
				t.Errorf("wait: %v", err)
				return
			}
			// Re-holds the lock; release it for the next waiter.
			c.lastSeen = resp.Seq
			c.interval = 1
			if err := c.unlock(2, nil, nil); err != nil {
				t.Errorf("unlock after wake: %v", err)
				return
			}
			woken <- i
		}(i)
	}
	entered.Wait()

	// Wait until all three are parked on the cond.
	for env.mgr.Stats().CondWaits.Load() < n {
	}
	sig := env.client(t, 99)
	var ack proto.Ack
	if _, err := sig.ep.Call(mgrNode, &proto.CondSignalReq{Cond: 4, Thread: sig.id, Broadcast: true}, &ack, sig.at); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		seen[<-woken] = true
	}
	if len(seen) != n {
		t.Fatalf("woken set %v", seen)
	}
}

func TestNoticePruningAfterAllThreadsSee(t *testing.T) {
	env := newEnv(t)
	c1 := env.client(t, 1)
	c2 := env.client(t, 2)

	// Register both via an acquire each so the pruning horizon knows
	// them.
	if _, err := c1.lock(1); err != nil {
		t.Fatal(err)
	}
	if err := c1.unlock(1, []uint64{100}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.lock(1); err != nil {
		t.Fatal(err)
	}
	if err := c2.unlock(1, []uint64{200}, nil); err != nil {
		t.Fatal(err)
	}
	// Both acquire again: everyone's horizon reaches the top, so all
	// notices become prunable.
	if _, err := c1.lock(1); err != nil {
		t.Fatal(err)
	}
	if err := c1.unlock(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.lock(1); err != nil {
		t.Fatal(err)
	}
	if err := c2.unlock(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := env.mgr.Stats().NoticesPruned.Load(); got == 0 {
		t.Error("no notices were ever pruned")
	}
}

func TestUnregisteredThirdThreadHoldsNoNoticesBack(t *testing.T) {
	// A thread that registers explicitly but never acquires pins the
	// pruning horizon at its registration point, so notices keep
	// accumulating (consistency over memory).
	env := newEnv(t)
	c3 := env.client(t, 3)
	var ack proto.Ack
	if _, err := c3.ep.Call(mgrNode, &proto.RegisterReq{Thread: 3}, &ack, 0); err != nil {
		t.Fatal(err)
	}
	c1 := env.client(t, 1)
	for i := 0; i < 5; i++ {
		if _, err := c1.lock(1); err != nil {
			t.Fatal(err)
		}
		if err := c1.unlock(1, []uint64{uint64(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := env.mgr.Stats().NoticesPruned.Load(); got != 0 {
		t.Errorf("notices pruned past an unseen registered thread: %d", got)
	}
	// Once the third thread acquires, it receives everything.
	resp, err := c3.lock(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Notices) != 5 {
		t.Errorf("registered latecomer got %d notices, want 5", len(resp.Notices))
	}
}

func TestLockGrantOrderIsFIFO(t *testing.T) {
	env := newEnv(t)
	holder := env.client(t, 1)
	if _, err := holder.lock(9); err != nil {
		t.Fatal(err)
	}
	const waiters = 4
	order := make(chan uint32, waiters)
	for i := 0; i < waiters; i++ {
		c := env.client(t, uint32(10+i))
		go func(c *client) {
			if _, err := c.lock(9); err != nil {
				t.Errorf("lock: %v", err)
				return
			}
			order <- c.id
			if err := c.unlock(9, nil, nil); err != nil {
				t.Errorf("unlock: %v", err)
			}
		}(c)
		// Wait until this waiter is queued before launching the next,
		// pinning the FIFO order.
		for env.mgr.Stats().LockWaits.Load() != int64(i+1) {
		}
	}
	if err := holder.unlock(9, nil, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < waiters; i++ {
		if got := <-order; got != uint32(10+i) {
			t.Fatalf("grant %d went to thread %d, want %d", i, got, 10+i)
		}
	}
}
