// Package layout defines the global-address-space geometry shared by the
// compute-side cache, the memory servers and the allocator: page size,
// cache-line size (in pages), and the striping function that assigns each
// page a home memory server.
//
// Samhita divides the shared global address space into pages and moves
// data in cache lines of multiple pages to exploit spatial locality
// (Section II). Large allocations are striped across memory servers to
// avoid hot spots; here striping is part of the address geometry itself:
// consecutive cache lines round-robin across servers, so a single-server
// configuration degenerates to "everything on server 0" and the hot-spot
// ablation can toggle striping off explicitly.
package layout

import "fmt"

// Addr is a byte offset in the shared global address space.
type Addr uint64

// PageID numbers pages from the base of the address space.
type PageID uint64

// LineID numbers cache lines (groups of LinePages consecutive pages).
type LineID uint64

// Default geometry parameters, matching the implementation the paper
// evaluates (4 KiB OS pages; multi-page cache lines).
const (
	DefaultPageSize  = 4096
	DefaultLinePages = 4
)

// Geometry captures one configuration of the address space.
type Geometry struct {
	// PageSize is the page size in bytes; must be a power of two.
	PageSize int
	// LinePages is the number of consecutive pages in a cache line.
	LinePages int
	// NumServers is the number of memory servers the space is striped
	// over.
	NumServers int
	// Striped selects the home-assignment policy: if true, consecutive
	// cache lines round-robin across servers; if false every page homes
	// on server 0 (used by the hot-spot ablation).
	Striped bool
}

// DefaultGeometry returns the geometry used throughout the paper's
// experiments: 4 KiB pages, 4-page cache lines, one memory server.
func DefaultGeometry() Geometry {
	return Geometry{
		PageSize:   DefaultPageSize,
		LinePages:  DefaultLinePages,
		NumServers: 1,
		Striped:    true,
	}
}

// Validate reports whether the geometry is internally consistent.
func (g Geometry) Validate() error {
	if g.PageSize <= 0 || g.PageSize&(g.PageSize-1) != 0 {
		return fmt.Errorf("layout: page size %d is not a positive power of two", g.PageSize)
	}
	if g.LinePages <= 0 {
		return fmt.Errorf("layout: line pages %d must be positive", g.LinePages)
	}
	if g.NumServers <= 0 {
		return fmt.Errorf("layout: need at least one memory server, got %d", g.NumServers)
	}
	return nil
}

// LineSize is the cache-line size in bytes.
func (g Geometry) LineSize() int { return g.PageSize * g.LinePages }

// PageOf returns the page containing addr.
func (g Geometry) PageOf(a Addr) PageID { return PageID(uint64(a) / uint64(g.PageSize)) }

// PageBase returns the address of the first byte of page p.
func (g Geometry) PageBase(p PageID) Addr { return Addr(uint64(p) * uint64(g.PageSize)) }

// PageOffset returns addr's offset within its page.
func (g Geometry) PageOffset(a Addr) int { return int(uint64(a) % uint64(g.PageSize)) }

// LineOf returns the cache line containing page p.
func (g Geometry) LineOf(p PageID) LineID { return LineID(uint64(p) / uint64(g.LinePages)) }

// LineOfAddr returns the cache line containing addr.
func (g Geometry) LineOfAddr(a Addr) LineID { return g.LineOf(g.PageOf(a)) }

// FirstPage returns the first page of line l.
func (g Geometry) FirstPage(l LineID) PageID { return PageID(uint64(l) * uint64(g.LinePages)) }

// HomeOf returns the memory server that owns page p.
func (g Geometry) HomeOf(p PageID) int {
	if !g.Striped || g.NumServers == 1 {
		return 0
	}
	return int(uint64(g.LineOf(p)) % uint64(g.NumServers))
}

// ShardOf maps page p to one of nshards server-local shards. The
// mapping is line-granular — a whole cache line lands on one shard, so
// a FetchLineReq never splits — and composes with striping: the lines a
// striped geometry homes on one server are that server's consecutive
// line indices divided by NumServers, so dividing first keeps a
// server's own lines spread over all its shards instead of aliasing
// onto a subset of them.
//
// The reduced line index is mixed (splitmix64's finalizer) before the
// modulus rather than used directly: applications touch lines at
// regular strides, and a raw modulus makes any stride sharing a factor
// with nshards alias onto a subset of shards — e.g. pages 8 lines
// apart always colliding when nshards is 4. Mixing decorrelates the
// shard choice from every stride while staying a pure function of the
// page, so the mapping is deterministic across runs and identical on a
// primary and its standby.
func (g Geometry) ShardOf(p PageID, nshards int) int {
	if nshards <= 1 {
		return 0
	}
	line := uint64(g.LineOf(p))
	if g.Striped && g.NumServers > 1 {
		line /= uint64(g.NumServers)
	}
	line = (line ^ (line >> 30)) * 0xBF58476D1CE4E5B9
	line = (line ^ (line >> 27)) * 0x94D049BB133111EB
	line ^= line >> 31
	return int(line % uint64(nshards))
}

// PagesSpanned returns the pages overlapped by [a, a+n).
func (g Geometry) PagesSpanned(a Addr, n int) []PageID {
	if n <= 0 {
		return nil
	}
	first := g.PageOf(a)
	last := g.PageOf(a + Addr(n) - 1)
	out := make([]PageID, 0, last-first+1)
	for p := first; p <= last; p++ {
		out = append(out, p)
	}
	return out
}

// AlignUp rounds a up to the next multiple of align (a power of two).
func AlignUp(a Addr, align int) Addr {
	m := Addr(align) - 1
	return (a + m) &^ m
}
