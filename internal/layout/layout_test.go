package layout

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometryValid(t *testing.T) {
	if err := DefaultGeometry().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	cases := []Geometry{
		{PageSize: 0, LinePages: 1, NumServers: 1},
		{PageSize: 3000, LinePages: 1, NumServers: 1}, // not a power of two
		{PageSize: 4096, LinePages: 0, NumServers: 1},
		{PageSize: 4096, LinePages: 4, NumServers: 0},
	}
	for i, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, g)
		}
	}
}

func TestPageArithmetic(t *testing.T) {
	g := DefaultGeometry()
	if got := g.PageOf(0); got != 0 {
		t.Errorf("PageOf(0) = %d", got)
	}
	if got := g.PageOf(4095); got != 0 {
		t.Errorf("PageOf(4095) = %d", got)
	}
	if got := g.PageOf(4096); got != 1 {
		t.Errorf("PageOf(4096) = %d", got)
	}
	if got := g.PageBase(3); got != 12288 {
		t.Errorf("PageBase(3) = %d", got)
	}
	if got := g.PageOffset(4100); got != 4 {
		t.Errorf("PageOffset(4100) = %d", got)
	}
	if got := g.LineSize(); got != 16384 {
		t.Errorf("LineSize = %d", got)
	}
}

func TestLineArithmetic(t *testing.T) {
	g := DefaultGeometry() // 4 pages per line
	if got := g.LineOf(0); got != 0 {
		t.Errorf("LineOf(0) = %d", got)
	}
	if got := g.LineOf(3); got != 0 {
		t.Errorf("LineOf(3) = %d", got)
	}
	if got := g.LineOf(4); got != 1 {
		t.Errorf("LineOf(4) = %d", got)
	}
	if got := g.FirstPage(2); got != 8 {
		t.Errorf("FirstPage(2) = %d", got)
	}
	if got := g.LineOfAddr(Addr(5 * 4096)); got != 1 {
		t.Errorf("LineOfAddr = %d", got)
	}
}

func TestHomeOfStriping(t *testing.T) {
	g := Geometry{PageSize: 4096, LinePages: 4, NumServers: 3, Striped: true}
	// Pages 0-3 are line 0 -> server 0; pages 4-7 line 1 -> server 1; etc.
	wants := map[PageID]int{0: 0, 3: 0, 4: 1, 7: 1, 8: 2, 12: 0}
	for p, want := range wants {
		if got := g.HomeOf(p); got != want {
			t.Errorf("HomeOf(%d) = %d, want %d", p, got, want)
		}
	}
	g.Striped = false
	for p := PageID(0); p < 20; p++ {
		if got := g.HomeOf(p); got != 0 {
			t.Errorf("unstriped HomeOf(%d) = %d, want 0", p, got)
		}
	}
}

func TestPagesSpanned(t *testing.T) {
	g := DefaultGeometry()
	if got := g.PagesSpanned(100, 0); got != nil {
		t.Errorf("zero-length span = %v", got)
	}
	if got := g.PagesSpanned(100, 8); len(got) != 1 || got[0] != 0 {
		t.Errorf("span within page = %v", got)
	}
	got := g.PagesSpanned(4090, 10) // crosses page 0 -> 1
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("cross-page span = %v", got)
	}
}

func TestAlignUp(t *testing.T) {
	cases := []struct {
		a     Addr
		align int
		want  Addr
	}{
		{0, 16, 0}, {1, 16, 16}, {16, 16, 16}, {17, 16, 32}, {4095, 4096, 4096},
	}
	for _, c := range cases {
		if got := AlignUp(c.a, c.align); got != c.want {
			t.Errorf("AlignUp(%d,%d) = %d, want %d", c.a, c.align, got, c.want)
		}
	}
}

// Property: PageOf and PageBase are consistent, and every address maps
// into exactly one page whose home server is stable and in range.
func TestGeometryProperties(t *testing.T) {
	g := Geometry{PageSize: 4096, LinePages: 4, NumServers: 4, Striped: true}
	f := func(raw uint32) bool {
		a := Addr(raw)
		p := g.PageOf(a)
		if g.PageBase(p) > a || a >= g.PageBase(p)+Addr(g.PageSize) {
			return false
		}
		h := g.HomeOf(p)
		if h < 0 || h >= g.NumServers {
			return false
		}
		// All pages in the same line share a home (lines never split).
		return g.HomeOf(g.FirstPage(g.LineOf(p))) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PagesSpanned covers exactly ceil(((a%page)+n)/page) pages and
// they are consecutive.
func TestPagesSpannedProperty(t *testing.T) {
	g := DefaultGeometry()
	f := func(raw uint16, nRaw uint16) bool {
		a, n := Addr(raw), int(nRaw%9000)+1
		got := g.PagesSpanned(a, n)
		wantLen := (g.PageOffset(a)+n+g.PageSize-1)/g.PageSize - 0
		if len(got) != wantLen {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] != got[i-1]+1 {
				return false
			}
		}
		return got[0] == g.PageOf(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
