package bench

import (
	"strings"
	"testing"
)

func TestQuickOptionsValid(t *testing.T) {
	o := Quick()
	if o.N == 0 || o.B == 0 || len(o.SmhCores) == 0 || o.Link.Name == "" {
		t.Fatalf("Quick() left fields unset: %+v", o)
	}
}

func TestWithDefaultsMatchesPaperParameters(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.N != 10 || o.B != 256 {
		t.Errorf("N=%d B=%d, want the paper's 10/256", o.N, o.B)
	}
	if len(o.Ms) != 3 || o.Ms[2] != 100 {
		t.Errorf("Ms=%v", o.Ms)
	}
	if len(o.Ss) != 4 || o.Ss[3] != 8 {
		t.Errorf("Ss=%v", o.Ss)
	}
	if o.FixedP != 16 {
		t.Errorf("FixedP=%d", o.FixedP)
	}
	if max := o.SmhCores[len(o.SmhCores)-1]; max != 32 {
		t.Errorf("samhita sweep tops out at %d, want 32", max)
	}
	if max := o.PthCores[len(o.PthCores)-1]; max != 8 {
		t.Errorf("pthreads sweep tops out at %d, want 8", max)
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	if _, err := Run(2, Quick()); err == nil {
		t.Fatal("figure 2 accepted (it is source code, not a result)")
	}
	if _, err := Run(14, Quick()); err == nil {
		t.Fatal("figure 14 accepted")
	}
}

func TestFigureIDsAllRegistered(t *testing.T) {
	for _, id := range FigureIDs() {
		if Figures[id] == nil {
			t.Errorf("figure %d not registered", id)
		}
	}
	if len(FigureIDs()) != 11 {
		t.Errorf("expected 11 result figures, have %d", len(FigureIDs()))
	}
}

// TestEveryFigureRunsQuick executes all 11 figures at test scale and
// sanity-checks the output tables. This is the integration test for the
// whole reproduction pipeline.
func TestEveryFigureRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep in -short mode")
	}
	o := Quick()
	for _, id := range FigureIDs() {
		id := id
		t.Run(trimFloat(float64(id)), func(t *testing.T) {
			t.Parallel()
			f, err := Run(id, o)
			if err != nil {
				t.Fatalf("figure %d: %v", id, err)
			}
			if len(f.Series) == 0 {
				t.Fatalf("figure %d has no series", id)
			}
			for _, s := range f.Series {
				if len(s.Points) == 0 {
					t.Errorf("figure %d series %q empty", id, s.Label)
				}
				for _, p := range s.Points {
					if p.Y < 0 {
						t.Errorf("figure %d series %q has negative y at x=%v", id, s.Label, p.X)
					}
				}
			}
			tbl := f.Table()
			if !strings.Contains(tbl, f.XLabel) {
				t.Errorf("table missing x label:\n%s", tbl)
			}
			csv := f.CSV()
			if len(strings.Split(strings.TrimSpace(csv), "\n")) < 2 {
				t.Errorf("csv too short:\n%s", csv)
			}
		})
	}
}

func TestFigureShapesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("shape checks in -short mode")
	}
	o := Quick()

	t.Run("fig3-normalization", func(t *testing.T) {
		f, err := Figure3(o)
		if err != nil {
			t.Fatal(err)
		}
		// The pthreads 1-core point of each M is the normalization unit.
		for _, s := range f.Series {
			if !strings.HasPrefix(s.Label, "pth") {
				continue
			}
			if y, ok := s.at(1); !ok || y < 0.99 || y > 1.01 {
				t.Errorf("series %q at 1 core = %v, want 1.0", s.Label, y)
			}
		}
	})

	t.Run("fig11-samhita-sync-exceeds-pthreads", func(t *testing.T) {
		f, err := Figure11(o)
		if err != nil {
			t.Fatal(err)
		}
		var pth, smh float64
		for _, s := range f.Series {
			if s.Label == "pth_local" {
				pth, _ = s.at(float64(o.PthCores[len(o.PthCores)-1]))
			}
			if s.Label == "smh_local" {
				smh, _ = s.at(float64(o.PthCores[len(o.PthCores)-1]))
			}
		}
		if smh <= pth {
			t.Errorf("samhita sync (%v) should exceed pthreads sync (%v): consistency ops are not free", smh, pth)
		}
	})

	t.Run("fig12-speedup-positive", func(t *testing.T) {
		f, err := Figure12(o)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range f.Series {
			one, ok := s.at(1)
			if !ok {
				t.Fatalf("series %q missing 1-core point", s.Label)
			}
			top, _ := s.at(float64(o.SmhCores[len(o.SmhCores)-1]))
			if s.Label == "pthreads" && (one < 0.99 || one > 1.01) {
				t.Errorf("pthreads 1-core speedup = %v, want 1", one)
			}
			_ = top
		}
	})
}

func TestAblationsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations in -short mode")
	}
	o := Quick()
	for _, name := range AblationNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			a, err := AblationRunners[name](o)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Results) < 2 {
				t.Fatalf("ablation %s has %d variants", name, len(a.Results))
			}
			tbl := a.Table()
			if !strings.Contains(tbl, "variant") {
				t.Errorf("ablation table malformed:\n%s", tbl)
			}
		})
	}
}

func TestAblationFabricOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("fabric ablation in -short mode")
	}
	a, err := AblationFabric(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Total (compute+sync) time must strictly improve as the fabric gets
	// faster: IB -> PCIe/SCIF -> intra-node. This is the paper's
	// Section V argument for the SCIF port.
	var ib, pcie, intra float64
	for _, r := range a.Results {
		switch r.Variant {
		case "qdr-ib":
			ib = r.Compute + r.Sync
		case "pcie-scif":
			pcie = r.Compute + r.Sync
		case "intra-node":
			intra = r.Compute + r.Sync
		}
	}
	if !(ib > pcie && pcie > intra) {
		t.Errorf("fabric ordering violated: ib=%v pcie=%v intra=%v", ib, pcie, intra)
	}
}

func TestScenarioHeterogeneousQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario in -short mode")
	}
	o := Quick()
	f, err := ScenarioHeterogeneous(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 6 {
		t.Fatalf("series = %d, want 6 (host/phi x jacobi/md/mdbig)", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.Points) == 0 {
			t.Errorf("series %q empty", s.Label)
		}
	}
	// Host baselines normalize to 1 at one core.
	for _, s := range f.Series {
		if len(s.Label) > 5 && s.Label[:5] == "host_" {
			if y, ok := s.at(1); !ok || y < 0.99 || y > 1.01 {
				t.Errorf("%s at 1 core = %v", s.Label, y)
			}
		}
	}
	// A coprocessor core is slower than a host core.
	for _, s := range f.Series {
		if len(s.Label) > 4 && s.Label[:4] == "phi_" {
			if y, ok := s.at(1); ok && y >= 1 {
				t.Errorf("%s at 1 core = %v, should be below the host core", s.Label, y)
			}
		}
	}
}
