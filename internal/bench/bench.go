// Package bench regenerates every result figure of the paper's
// evaluation (Figures 3-13; Figure 1 is architecture, Figure 2 is the
// micro-benchmark source reproduced in package kernels). Each FigureN
// function runs the corresponding experiment — the same workload, the
// same parameter sweep, both backends where the paper plots both — and
// returns the series the paper's plot carries, renderable as an aligned
// text table or CSV.
//
// Absolute numbers come from the virtual-time cost model, not the
// authors' 2008-era testbed, so they are not expected to match the
// paper digit for digit; the *shapes* — who wins, by what factor, where
// curves cross — are what EXPERIMENTS.md records and checks.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/pthreads"
	"repro/internal/scl"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/vtime"
)

// Options scales the experiments. The zero value plus WithDefaults runs
// the paper's full parameters; Quick returns a configuration small
// enough for unit tests and testing.B benchmarks.
type Options struct {
	// N and B are the micro-benchmark's fixed outer-iteration count and
	// row length (the paper uses N=10, B=256 throughout).
	N, B int
	// Ms is the inner-iteration sweep for Figures 3-5 (paper: 1,10,100).
	Ms []int
	// Ss is the rows-per-thread sweep for Figures 6-10 (paper: 1,2,4,8).
	Ss []int
	// MidM and MidS are the fixed values used when the other parameter
	// sweeps (paper: M=10, S=2).
	MidM, MidS int
	// SmhCores is the Samhita thread-count sweep (paper: up to 32, 8 per
	// node).
	SmhCores []int
	// PthCores is the Pthreads sweep (paper: up to 8, one node).
	PthCores []int
	// FixedP is the thread count for the S sweeps (paper: 16).
	FixedP int
	// JacobiN/JacobiIters size Figure 12.
	JacobiN, JacobiIters int
	// MDParticles/MDSteps size Figure 13.
	MDParticles, MDSteps int
	// Samhita runtime knobs.
	Link       vtime.LinkModel
	CacheLines int
	Prefetch   bool
	// PrefetchDepth is how many lines ahead anticipatory paging runs
	// (0 = the paper's one-line-ahead default).
	PrefetchDepth int
	NumServers    int
	Striped       bool
	LinePages     int
	// ServerShards splits each memory server into this many
	// independently scheduled page shards (0 or 1 = the single event
	// loop). The bench suite measures both shard counts when it is > 1.
	ServerShards int
	// ManagerShards splits the manager's synchronization state into
	// this many homes (0 or 1 = the single-loop manager).
	ManagerShards int
	// ManagerReplicas replicates the manager's state machine behind a
	// consensus log across this many replicas (0 or 1 = single
	// manager). The bench suite adds a replicated strided point when it
	// is > 1 so the log's overhead is measured and gated.
	ManagerReplicas int
	// DisableFineGrain degrades RegC to page-grained LRC (ablation c).
	DisableFineGrain bool
	// NoRecordCoalesce turns off append-time coalescing of adjacent
	// consistency-region store records (record-plane ablation).
	NoRecordCoalesce bool
	// HotBytes, when positive, tiers every memory server the
	// experiments boot: at most HotBytes of uncompressed pages per
	// server stay hot, the rest is demoted word-run-compressed to a
	// cold tier priced by ColdPreset. The -json suite adds tiered
	// strided points (and tiered sweep points) when it is > 0 so the
	// out-of-core penalty is measured and gated.
	HotBytes int64
	// ColdPreset names the cold tier's cost model ("cold-nvme" or
	// "cold-remote"); empty = the runtime default. Only consulted when
	// HotBytes > 0.
	ColdPreset string
	// Forks, when positive, adds a fork-storm workload point to the
	// -json suite: Forks O(1) copy-on-write address-space forks off one
	// sealed snapshot, reporting fork-to-first-op latency quantiles
	// against the eager-copy cold-start baseline.
	Forks int
	// SweepPops lists population-sweep thread counts (e.g. 256, 1024);
	// for each, the -json suite measures the micro kernel and the KV
	// service across the multi-server/multi-shard/multi-manager
	// topology matrix. Empty = no sweep points.
	SweepPops []int
	// Transport-robustness knobs: Retry, if non-nil, wraps every
	// endpoint of every Samhita runtime the experiments boot;
	// FaultDrop/FaultDelay/FaultDup (seeded by FaultSeed) add a fresh
	// fault injector per runtime, which implies a default retry policy
	// so the figures still complete. Standby boots warm-standby memory
	// servers with heartbeat liveness in every runtime.
	Retry                           *scl.RetryPolicy
	FaultSeed                       int64
	FaultDrop, FaultDelay, FaultDup float64
	Standby                         bool
	// Net and Live, when non-nil, accumulate the transport and
	// liveness counters across every runtime an experiment boots, so a
	// whole figure sweep reports one total at the end.
	Net  *stats.Net
	Live *stats.Liveness
	// Agg, when non-nil, accumulates the per-thread counters of every
	// Samhita run an experiment boots, so samhita-bench can report one
	// release-path/prefetch efficiency summary at the end.
	Agg *stats.Run
	// Tier, when non-nil, accumulates the tiered-page-store counters
	// (hot hits, tier moves, seals, CoW breaks) across every runtime an
	// experiment boots.
	Tier *stats.Tier
}

// WithDefaults fills unset fields with the paper's parameters.
func (o Options) WithDefaults() Options {
	if o.N == 0 {
		o.N = 10
	}
	if o.B == 0 {
		o.B = 256
	}
	if len(o.Ms) == 0 {
		o.Ms = []int{1, 10, 100}
	}
	if len(o.Ss) == 0 {
		o.Ss = []int{1, 2, 4, 8}
	}
	if o.MidM == 0 {
		o.MidM = 10
	}
	if o.MidS == 0 {
		o.MidS = 2
	}
	if len(o.SmhCores) == 0 {
		o.SmhCores = []int{1, 2, 4, 8, 16, 24, 32}
	}
	if len(o.PthCores) == 0 {
		o.PthCores = []int{1, 2, 4, 8}
	}
	if o.FixedP == 0 {
		o.FixedP = 16
	}
	if o.JacobiN == 0 {
		o.JacobiN = 1024
	}
	if o.JacobiIters == 0 {
		o.JacobiIters = 10
	}
	if o.MDParticles == 0 {
		o.MDParticles = 1024
	}
	if o.MDSteps == 0 {
		o.MDSteps = 5
	}
	if o.Link.Name == "" {
		o.Link = vtime.QDRInfiniBand
	}
	if o.CacheLines == 0 {
		o.CacheLines = 4096
	}
	if o.NumServers == 0 {
		o.NumServers = 1
	}
	if o.LinePages == 0 {
		o.LinePages = 4
	}
	if !o.Striped {
		o.Striped = true // only ablation (d) turns this off, explicitly
	}
	o.Prefetch = true
	return o
}

// Quick returns options small enough for tests and testing.B.
func Quick() Options {
	return Options{
		N: 3, B: 64,
		Ms:   []int{1, 10},
		Ss:   []int{1, 2},
		MidM: 5, MidS: 2,
		SmhCores: []int{1, 2, 4},
		PthCores: []int{1, 2, 4},
		FixedP:   4,
		JacobiN:  64, JacobiIters: 3,
		MDParticles: 64, MDSteps: 3,
		CacheLines: 256,
	}.WithDefaults()
}

// quirk: WithDefaults forces Prefetch=true and Striped=true; ablations
// construct their variant runtimes directly.

// newSamhita builds a Samhita runtime from the options.
func (o Options) newSamhita(overrides ...func(*core.Config)) (vm.VM, error) {
	cfg := core.DefaultConfig()
	cfg.Link = o.Link
	cfg.CacheLines = o.CacheLines
	cfg.Prefetch = o.Prefetch
	cfg.PrefetchDepth = o.PrefetchDepth
	cfg.Geo.NumServers = o.NumServers
	cfg.Geo.Striped = o.Striped
	cfg.Geo.LinePages = o.LinePages
	cfg.ServerShards = o.ServerShards
	cfg.ManagerShards = o.ManagerShards
	cfg.ManagerReplicas = o.ManagerReplicas
	cfg.DisableFineGrain = o.DisableFineGrain
	cfg.NoRecordCoalesce = o.NoRecordCoalesce
	cfg.HotBytes = o.HotBytes
	if o.ColdPreset != "" {
		cfg.ColdPreset = o.ColdPreset
	}
	o.applyRobustness(&cfg)
	for _, f := range overrides {
		f(&cfg)
	}
	return core.New(cfg)
}

// applyRobustness wires the transport-robustness options into one
// runtime configuration: a copy of the retry policy, a fresh fault
// injector (injectors bind to one fabric), warm standbys, and the
// shared sweep-wide counter collectors.
func (o Options) applyRobustness(cfg *core.Config) {
	if o.Retry != nil {
		pol := *o.Retry
		cfg.Retry = &pol
	}
	if o.FaultDrop > 0 || o.FaultDelay > 0 || o.FaultDup > 0 {
		cfg.Faults = faultnet.New(faultnet.Config{
			Seed:      o.FaultSeed,
			DropProb:  o.FaultDrop,
			DelayProb: o.FaultDelay,
			MaxDelay:  200 * time.Microsecond,
			DupProb:   o.FaultDup,
		})
	}
	if o.Standby {
		// Benchmarks measure replication overhead, not detection
		// latency, and boot far more threads than cores; a generous
		// lease keeps starved heartbeats from fencing live threads.
		cfg.Liveness = &core.LivenessConfig{Standby: true, MissedBeats: 200, Live: o.Live}
	}
	if (cfg.Faults != nil || cfg.Liveness != nil) && cfg.Retry == nil {
		pol := scl.DefaultRetryPolicy
		cfg.Retry = &pol
	}
	if o.Net != nil {
		cfg.Net = o.Net
	}
	if o.Tier != nil {
		cfg.Tier = o.Tier
	}
}

// newPthreads builds the baseline (capped at 8 cores like the paper's
// node, unless the sweep needs fewer).
func (o Options) newPthreads() vm.VM {
	max := 8
	for _, c := range o.PthCores {
		if c > max {
			max = c
		}
	}
	return pthreads.New(pthreads.Config{MaxCores: max, MemBytes: 256 << 20})
}

// ---------------------------------------------------------------------
// Figure data model.

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled curve.
type Series struct {
	Label  string
	Points []Point
}

// Figure is the data behind one paper figure.
type Figure struct {
	ID     string // "fig03" ... "fig13"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Table renders the figure as an aligned text table: one row per x
// value, one column per series — the same rows/points the paper's plot
// carries.
func (f *Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	xs := f.xValues()

	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			if y, ok := s.at(x); ok {
				row = append(row, fmt.Sprintf("%.4g", y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	writeAligned(&b, rows)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the figure as x,series1,series2,... lines.
func (f *Figure) CSV() string {
	var b strings.Builder
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Label)
	}
	b.WriteString(strings.Join(cols, ","))
	b.WriteByte('\n')
	for _, x := range f.xValues() {
		fields := []string{trimFloat(x)}
		for _, s := range f.Series {
			if y, ok := s.at(x); ok {
				fields = append(fields, fmt.Sprintf("%g", y))
			} else {
				fields = append(fields, "")
			}
		}
		b.WriteString(strings.Join(fields, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func (f *Figure) xValues() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func (s *Series) at(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

func writeAligned(b *strings.Builder, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
}

// seconds converts virtual time to float seconds for plotting.
func seconds(t vtime.Time) float64 { return t.Seconds() }

// perThreadCompute is the compute-time metric the paper plots: the
// per-thread compute time of the (symmetric) run, taken as the maximum
// across threads.
func perThreadCompute(r *stats.Run) float64 { return seconds(r.MaxComputeTime()) }

// perThreadSync is the synchronization-time metric.
func perThreadSync(r *stats.Run) float64 { return seconds(r.MaxSyncTime()) }
