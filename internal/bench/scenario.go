package bench

import (
	"fmt"

	"repro/internal/apps/kernels"
	"repro/internal/core"
	"repro/internal/vm"
)

// ScenarioHeterogeneous is the experiment the paper motivates but could
// not yet run (the MIC port was in progress, Section V): the Figure-1
// node itself. Compute threads execute on a Xeon-Phi-class coprocessor
// — many cores, each ~4x slower than a host core — with the manager and
// memory server on the host, across a PCIe/SCIF-class SCL. The question
// the architecture poses: at how many coprocessor cores does virtual
// shared memory on the card overtake 8 fast host cores with hardware
// coherence?
//
// Both application kernels run unmodified on both sides — the paper's
// programmability argument — and the output is speedup relative to the
// 1-core host baseline, so the host curve tops out at 8 and the
// coprocessor curve crosses it (or fails to) purely on the merits of
// the DSM.
func ScenarioHeterogeneous(o Options) (*Figure, error) {
	f := &Figure{
		ID:     "scn-hetero",
		Title:  "Figure-1 scenario: host cores (pthreads) vs coprocessor cores (Samhita over PCIe/SCIF)",
		XLabel: "cores",
		YLabel: "speed-up vs 1 host core",
	}
	phiCores := []int{1, 8, 16, 32, 60}

	type kernelSpec struct {
		name string
		run  func(v vm.VM, p int) (float64, error) // returns total seconds
	}
	jac := kernels.JacobiParams{N: o.JacobiN, Iters: o.JacobiIters}
	md := kernels.MDParams{NParticles: o.MDParticles, Steps: o.MDSteps, Dt: 1e-4, Mass: 1}
	// mdBig is the workload class the architecture is aimed at: enough
	// compute per synchronization that 60 slow cores overtake 8 fast
	// ones despite the DSM.
	mdBig := kernels.MDParams{NParticles: 3 * o.MDParticles, Steps: o.MDSteps, Dt: 1e-4, Mass: 1}
	mdRunner := func(prm kernels.MDParams) func(v vm.VM, p int) (float64, error) {
		return func(v vm.VM, p int) (float64, error) {
			res, err := kernels.RunMD(v, p, prm)
			if err != nil {
				return 0, err
			}
			return seconds(res.Run.MaxTotalTime()), nil
		}
	}
	specs := []kernelSpec{
		{"jacobi", func(v vm.VM, p int) (float64, error) {
			res, err := kernels.RunJacobi(v, p, jac)
			if err != nil {
				return 0, err
			}
			return seconds(res.Run.MaxTotalTime()), nil
		}},
		{"md", mdRunner(md)},
		{"mdbig", mdRunner(mdBig)},
	}

	for _, spec := range specs {
		pth := o.newPthreads()
		base, err := spec.run(pth, 1)
		pth.Close()
		if err != nil {
			return nil, fmt.Errorf("scenario %s host baseline: %w", spec.name, err)
		}

		host := Series{Label: "host_" + spec.name}
		for _, p := range o.PthCores {
			v := o.newPthreads()
			tt, err := spec.run(v, p)
			v.Close()
			if err != nil {
				return nil, err
			}
			host.Points = append(host.Points, Point{X: float64(p), Y: base / tt})
		}

		phi := Series{Label: "phi_" + spec.name}
		for _, p := range phiCores {
			cfg := core.HeterogeneousConfig()
			o.applyRobustness(&cfg)
			rt, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			tt, err := spec.run(rt, p)
			rt.Close()
			if err != nil {
				return nil, fmt.Errorf("scenario %s phi p=%d: %w", spec.name, p, err)
			}
			phi.Points = append(phi.Points, Point{X: float64(p), Y: base / tt})
		}
		f.Series = append(f.Series, host, phi)
	}
	f.Notes = append(f.Notes,
		"beyond-paper projection: coprocessor cores are ~4x slower (vtime.XeonPhiCPU), fabric is PCIe/SCIF",
		fmt.Sprintf("jacobi %dx%d x%d sweeps; md %d particles x%d steps", o.JacobiN, o.JacobiN, o.JacobiIters, o.MDParticles, o.MDSteps))
	return f, nil
}
