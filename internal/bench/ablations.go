package bench

import (
	"fmt"
	"strings"

	"repro/internal/apps/kernels"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// Ablations isolate the design choices DESIGN.md calls out, beyond the
// paper's own figures: each one runs the micro-benchmark with a single
// mechanism toggled and reports the same per-thread compute/sync
// metrics, so the contribution of that mechanism is directly visible.

// AblationResult is one (variant, metric) sample set.
type AblationResult struct {
	Variant string
	Compute float64 // per-thread compute seconds
	Sync    float64 // per-thread sync seconds
	Faults  int64   // demand misses
	Bytes   int64   // bytes received by compute threads
}

// Ablation is a named set of variants.
type Ablation struct {
	ID       string
	Title    string
	Workload string
	Results  []AblationResult
}

// Table renders the ablation as an aligned table.
func (a *Ablation) Table() string {
	rows := [][]string{{"variant", "compute(s)", "sync(s)", "misses", "MB moved"}}
	for _, r := range a.Results {
		rows = append(rows, []string{
			r.Variant,
			fmt.Sprintf("%.4g", r.Compute),
			fmt.Sprintf("%.4g", r.Sync),
			fmt.Sprintf("%d", r.Faults),
			fmt.Sprintf("%.2f", float64(r.Bytes)/1e6),
		})
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\nworkload: %s\n", a.ID, a.Title, a.Workload)
	writeAligned(&sb, rows)
	return sb.String()
}

func sample(variant string, run *stats.Run) AblationResult {
	tot := run.Totals()
	return AblationResult{
		Variant: variant,
		Compute: perThreadCompute(run),
		Sync:    perThreadSync(run),
		Faults:  tot.Misses,
		Bytes:   tot.BytesReceived,
	}
}

// ablationWorkload is the shared configuration: the strided
// micro-benchmark at the mid sweep point, where every mechanism under
// study is active.
func (o Options) ablationWorkload() (kernels.MicroParams, int) {
	return o.microParams(o.MidM, o.MidS, kernels.AllocStrided), o.FixedP
}

func (o Options) runVariant(variant string, prm kernels.MicroParams, p int, overrides ...func(*core.Config)) (AblationResult, error) {
	smh, err := o.newSamhita(overrides...)
	if err != nil {
		return AblationResult{}, err
	}
	defer smh.Close()
	res, err := kernels.RunMicro(smh, p, prm)
	if err != nil {
		return AblationResult{}, err
	}
	return sample(variant, res.Run), nil
}

// AblationPrefetch toggles anticipatory paging (ablation a). The
// workload is the out-of-core STREAM triad, not the micro-benchmark:
// the micro working set is cache-resident after first touch, so the
// sequential streaming pattern — where every line access misses and
// the adjacent line is always next — is where prefetch earns its keep.
func AblationPrefetch(o Options) (*Ablation, error) {
	prm := kernels.StreamParams{Elements: 1 << 17, Iters: 3, Alpha: 3}
	a := &Ablation{
		ID:    "abl-prefetch",
		Title: "Anticipatory paging (adjacent-line prefetch) on/off",
		Workload: fmt.Sprintf("out-of-core stream triad, %d elements x3 arrays, %d passes, 8-line cache",
			prm.Elements, prm.Iters),
	}
	// Two regimes: with few threads the single memory server has
	// headroom and prefetch hides fetch latency; with many threads the
	// server is throughput-saturated and prefetch cannot create
	// bandwidth — both outcomes are the physically right answer.
	for _, p := range []int{2, o.FixedP} {
		for _, on := range []bool{true, false} {
			on := on
			name := fmt.Sprintf("P=%-2d prefetch=off", p)
			if on {
				name = fmt.Sprintf("P=%-2d prefetch=on", p)
			}
			smh, err := o.newSamhita(func(c *core.Config) {
				c.Prefetch = on
				c.CacheLines = 8 // far below the working set: every pass streams
			})
			if err != nil {
				return nil, err
			}
			res, err := kernels.RunStream(smh, p, prm)
			smh.Close()
			if err != nil {
				return nil, err
			}
			a.Results = append(a.Results, sample(name, res.Run))
		}
	}
	return a, nil
}

// AblationLineSize sweeps the cache-line size in pages (ablation b).
func AblationLineSize(o Options) (*Ablation, error) {
	prm, p := o.ablationWorkload()
	a := &Ablation{
		ID:       "abl-linesize",
		Title:    "Cache-line size (pages per line)",
		Workload: fmt.Sprintf("micro strided, N=%d M=%d S=%d B=%d P=%d", prm.N, prm.M, prm.S, prm.B, p),
	}
	for _, lp := range []int{1, 2, 4, 8} {
		lp := lp
		r, err := o.runVariant(fmt.Sprintf("linePages=%d", lp), prm, p,
			func(c *core.Config) { c.Geo.LinePages = lp })
		if err != nil {
			return nil, err
		}
		a.Results = append(a.Results, r)
	}
	return a, nil
}

// AblationFineGrain compares RegC's fine-grained consistency-region
// updates against plain page-grained LRC (ablation c).
func AblationFineGrain(o Options) (*Ablation, error) {
	prm, p := o.ablationWorkload()
	a := &Ablation{
		ID:       "abl-finegrain",
		Title:    "RegC fine-grained region updates vs page-grained LRC",
		Workload: fmt.Sprintf("micro strided, N=%d M=%d S=%d B=%d P=%d", prm.N, prm.M, prm.S, prm.B, p),
	}
	for _, disable := range []bool{false, true} {
		disable := disable
		name := "regc (fine-grained)"
		if disable {
			name = "page-grained lrc"
		}
		r, err := o.runVariant(name, prm, p, func(c *core.Config) { c.DisableFineGrain = disable })
		if err != nil {
			return nil, err
		}
		a.Results = append(a.Results, r)
	}
	return a, nil
}

// AblationStriping compares striped vs single-home page placement with
// several memory servers (ablation d: the hot-spot study).
func AblationStriping(o Options) (*Ablation, error) {
	prm, p := o.ablationWorkload()
	a := &Ablation{
		ID:       "abl-striping",
		Title:    "Striping across memory servers vs single-home hot spot",
		Workload: fmt.Sprintf("micro strided, N=%d M=%d S=%d B=%d P=%d, 4 memory servers", prm.N, prm.M, prm.S, prm.B, p),
	}
	for _, striped := range []bool{true, false} {
		striped := striped
		name := "striped=off (all pages on server 0)"
		if striped {
			name = "striped=on"
		}
		r, err := o.runVariant(name, prm, p, func(c *core.Config) {
			c.Geo.NumServers = 4
			c.Geo.Striped = striped
		})
		if err != nil {
			return nil, err
		}
		a.Results = append(a.Results, r)
	}
	return a, nil
}

// AblationFabric compares the paper's QDR InfiniBand testbed model with
// its future-work PCIe/SCIF target (Section V) and the intra-node
// model.
func AblationFabric(o Options) (*Ablation, error) {
	prm, p := o.ablationWorkload()
	a := &Ablation{
		ID:       "abl-fabric",
		Title:    "Interconnect: QDR InfiniBand vs PCIe/SCIF vs intra-node",
		Workload: fmt.Sprintf("micro strided, N=%d M=%d S=%d B=%d P=%d", prm.N, prm.M, prm.S, prm.B, p),
	}
	for _, link := range []vtime.LinkModel{vtime.QDRInfiniBand, vtime.PCIeSCIF, vtime.IntraNode} {
		link := link
		r, err := o.runVariant(link.Name, prm, p, func(c *core.Config) { c.Link = link })
		if err != nil {
			return nil, err
		}
		a.Results = append(a.Results, r)
	}
	return a, nil
}

// AblationManagerLink models the paper's Section V future-work
// optimization: synchronization that does not cross the slow fabric to
// reach the manager. Compared here by moving the manager onto an
// intra-node link while memory traffic stays on the main fabric.
func AblationManagerLink(o Options) (*Ablation, error) {
	prm, p := o.ablationWorkload()
	a := &Ablation{
		ID:       "abl-mgrlink",
		Title:    "Manager over the fabric vs manager on an intra-node link (Section V)",
		Workload: fmt.Sprintf("micro strided, N=%d M=%d S=%d B=%d P=%d", prm.N, prm.M, prm.S, prm.B, p),
	}
	local := vtime.IntraNode
	for _, variant := range []struct {
		name string
		link *vtime.LinkModel
	}{
		{"manager on fabric (paper's testbed)", nil},
		{"manager intra-node (proposed)", &local},
	} {
		variant := variant
		r, err := o.runVariant(variant.name, prm, p, func(c *core.Config) { c.ManagerLink = variant.link })
		if err != nil {
			return nil, err
		}
		a.Results = append(a.Results, r)
	}
	return a, nil
}

// AblationShards sweeps the per-server page-shard count (ablation g).
// Strided allocation is the serialization-prone pattern the sharding
// was built for: every thread's rows interleave across servers, so a
// single event loop per server queues all of them behind one calendar.
// Random allocation is the adversarial variant — the fixed permutation
// scatters consecutive rows across shards, maximizing split requests
// and cross-shard join overhead.
func AblationShards(o Options) (*Ablation, error) {
	prm, p := o.ablationWorkload()
	rprm := o.microParams(o.MidM, o.MidS, kernels.AllocRandom)
	a := &Ablation{
		ID:    "abl-shards",
		Title: "Memory-server page shards per server",
		Workload: fmt.Sprintf("micro strided+random, P=%d N=%d M=%d S=%d B=%d",
			p, prm.N, prm.M, prm.S, prm.B),
	}
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		for _, v := range []struct {
			mode kernels.AllocMode
			prm  kernels.MicroParams
		}{{kernels.AllocStrided, prm}, {kernels.AllocRandom, rprm}} {
			name := fmt.Sprintf("shards=%d %s", shards, v.mode)
			r, err := o.runVariant(name, v.prm, p,
				func(c *core.Config) { c.ServerShards = shards })
			if err != nil {
				return nil, err
			}
			a.Results = append(a.Results, r)
		}
	}
	return a, nil
}

// AblationRunners maps ablation names to runners.
var AblationRunners = map[string]func(Options) (*Ablation, error){
	"prefetch":  AblationPrefetch,
	"linesize":  AblationLineSize,
	"finegrain": AblationFineGrain,
	"striping":  AblationStriping,
	"fabric":    AblationFabric,
	"mgrlink":   AblationManagerLink,
	"shards":    AblationShards,
}

// AblationNames lists the ablations in a stable order.
func AblationNames() []string {
	return []string{"prefetch", "linesize", "finegrain", "striping", "fabric", "mgrlink", "shards"}
}
