package bench

import (
	"fmt"

	"repro/internal/apps/kernels"
	"repro/internal/core"
)

// StreamSpanSmoke runs the out-of-core STREAM triad twice on freshly
// booted Samhita runtimes — once through the per-element data plane and
// once through the bulk span accessors — and verifies the two runs
// compute bit-identical checksums. It is the CI gate for the span data
// plane: the span path changes how bytes move (fault-once spans,
// written-extent notices, partial invalidation) but must never change
// what the program computes. The returned summary line reports both
// runs' compute/sync times so the smoke doubles as a coarse perf
// indicator in CI logs.
func StreamSpanSmoke(o Options) (string, error) {
	prm := kernels.StreamParams{Elements: 1 << 15, Iters: 3, Alpha: 3}
	const p = 8

	type outcome struct {
		checksum             float64
		computeNs, syncNs    int64
		fabricMsgs, fabricBy int64
	}
	runOnce := func(spans bool) (outcome, error) {
		// Cap the cache well below the three-array working set so the
		// triad streams: every pass demand-pages lines in and evicts
		// dirty pages out, exercising the span fault path end to end.
		smh, err := o.newSamhita(func(c *core.Config) { c.CacheLines = 16 })
		if err != nil {
			return outcome{}, err
		}
		defer smh.Close()
		pr := prm
		pr.UseSpans = spans
		res, err := kernels.RunStream(smh, p, pr)
		if err != nil {
			return outcome{}, err
		}
		out := outcome{
			checksum:  res.Checksum,
			computeNs: res.Run.MaxComputeTime().Duration().Nanoseconds(),
			syncNs:    res.Run.MaxSyncTime().Duration().Nanoseconds(),
		}
		if rt, ok := smh.(*core.Runtime); ok && rt.Fabric() != nil {
			out.fabricMsgs = rt.Fabric().Messages()
			out.fabricBy = rt.Fabric().Bytes()
		}
		return out, nil
	}

	elem, err := runOnce(false)
	if err != nil {
		return "", fmt.Errorf("element-mode stream: %w", err)
	}
	span, err := runOnce(true)
	if err != nil {
		return "", fmt.Errorf("span-mode stream: %w", err)
	}
	if elem.checksum != span.checksum {
		return "", fmt.Errorf("stream span smoke: checksum mismatch: element=%v span=%v",
			elem.checksum, span.checksum)
	}
	return fmt.Sprintf(
		"stream span smoke OK: checksum=%v  element compute=%dns sync=%dns msgs=%d bytes=%d  span compute=%dns sync=%dns msgs=%d bytes=%d",
		elem.checksum,
		elem.computeNs, elem.syncNs, elem.fabricMsgs, elem.fabricBy,
		span.computeNs, span.syncNs, span.fabricMsgs, span.fabricBy), nil
}
