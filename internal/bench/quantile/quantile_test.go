package quantile

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// exactQuantile returns the value at 0-based rank floor(q*(n-1)) of the
// sorted stream: the order statistic the sketch estimates.
func exactQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// checkRankError feeds the stream into a sketch and asserts every
// checked quantile is within the alpha relative-error bound of the
// exact order statistic (plus 1 for integer rounding of the midpoint
// estimate, which matters only for single-digit values).
func checkRankError(t *testing.T, name string, alpha float64, stream []int64) {
	t.Helper()
	s := New(alpha)
	for _, v := range stream {
		s.Add(v)
	}
	sorted := append([]int64(nil), stream...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
		got := s.Quantile(q)
		want := exactQuantile(sorted, q)
		tol := alpha*float64(want) + 1
		if math.Abs(float64(got-want)) > tol {
			t.Errorf("%s: q=%v: sketch %d, exact %d (tol %.2f)", name, q, got, want, tol)
		}
	}
	if s.Min() != sorted[0] || s.Max() != sorted[len(sorted)-1] {
		t.Errorf("%s: min/max %d/%d, want %d/%d", name, s.Min(), s.Max(), sorted[0], sorted[len(sorted)-1])
	}
	if s.Count() != uint64(len(stream)) {
		t.Errorf("%s: count %d, want %d", name, s.Count(), len(stream))
	}
}

// The rank-error property on random streams across distributions that
// mimic latency shapes: uniform, exponential-ish (heavy tail), and
// log-uniform across six orders of magnitude.
func TestRankErrorRandomStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, alpha := range []float64{0.01, 0.05} {
		uniform := make([]int64, 20000)
		for i := range uniform {
			uniform[i] = rng.Int63n(1_000_000)
		}
		checkRankError(t, "uniform", alpha, uniform)

		tail := make([]int64, 20000)
		for i := range tail {
			tail[i] = int64(rng.ExpFloat64() * 50_000)
		}
		checkRankError(t, "exponential", alpha, tail)

		logu := make([]int64, 20000)
		for i := range logu {
			logu[i] = int64(math.Pow(10, 1+5*rng.Float64()))
		}
		checkRankError(t, "log-uniform", alpha, logu)
	}
}

// Adversarial streams: values hugging bucket boundaries, constant
// streams, all-zero streams, single elements, two-point distributions
// with extreme skew (one slow outlier in a sea of fast requests — the
// exact shape p999 gating exists to catch).
func TestRankErrorAdversarialStreams(t *testing.T) {
	alpha := 0.01
	gamma := (1 + alpha) / (1 - alpha)

	boundary := make([]int64, 0, 4000)
	b := 1.0
	for len(boundary) < 4000 {
		v := int64(b)
		if v < 1 {
			v = 1
		}
		boundary = append(boundary, v, v+1) // straddle every boundary
		b *= gamma
		if b > 1e12 {
			b = 1
		}
	}
	checkRankError(t, "boundary-straddle", alpha, boundary)

	constant := make([]int64, 5000)
	for i := range constant {
		constant[i] = 777_777
	}
	checkRankError(t, "constant", alpha, constant)

	checkRankError(t, "single", alpha, []int64{42})
	checkRankError(t, "zeros", alpha, []int64{0, 0, 0, 0})

	skew := make([]int64, 10000)
	for i := range skew {
		skew[i] = 1000
	}
	skew[9999] = 50_000_000 // one outlier: p999 must see it or its bucket
	checkRankError(t, "outlier", alpha, skew)

	s := New(alpha)
	for _, v := range skew {
		s.Add(v)
	}
	if got := s.Quantile(1); got != 50_000_000 {
		t.Errorf("outlier max: got %d", got)
	}
	if got := s.Quantile(0.5); math.Abs(float64(got)-1000) > alpha*1000+1 {
		t.Errorf("outlier median: got %d", got)
	}
}

// Merge must be exact: merging any partition of a stream, in any order
// and any tree shape, must yield the identical sketch (and therefore
// identical quantiles) as one sketch fed the whole stream.
func TestMergeAssociativeAndExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	stream := make([]int64, 9000)
	for i := range stream {
		stream[i] = int64(rng.ExpFloat64() * 30_000)
	}

	whole := New(DefaultAlpha)
	for _, v := range stream {
		whole.Add(v)
	}

	// Partition into three unequal parts a, b, c.
	parts := make([]*Sketch, 3)
	bounds := []int{0, 1000, 4000, 9000}
	for p := 0; p < 3; p++ {
		parts[p] = New(DefaultAlpha)
		for _, v := range stream[bounds[p]:bounds[p+1]] {
			parts[p].Add(v)
		}
	}

	// (a ⊔ b) ⊔ c
	left := parts[0].Clone()
	left.Merge(parts[1])
	left.Merge(parts[2])
	// a ⊔ (b ⊔ c)
	bc := parts[1].Clone()
	bc.Merge(parts[2])
	right := parts[0].Clone()
	right.Merge(bc)
	// c ⊔ a ⊔ b (commutativity)
	comm := parts[2].Clone()
	comm.Merge(parts[0])
	comm.Merge(parts[1])

	for _, m := range []*Sketch{left, right, comm} {
		if !reflect.DeepEqual(m.counts, whole.counts) || m.n != whole.n ||
			m.zeros != whole.zeros || m.min != whole.min || m.max != whole.max {
			t.Fatalf("merged sketch differs from whole-stream sketch")
		}
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		if left.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q=%v: merged %d != whole %d", q, left.Quantile(q), whole.Quantile(q))
		}
	}
}

// Merging empty sketches and self-consistency of Clone.
func TestMergeEdgeCases(t *testing.T) {
	a := New(DefaultAlpha)
	b := New(DefaultAlpha)
	a.Merge(b) // empty ⊔ empty
	if a.Count() != 0 || a.Quantile(0.5) != 0 {
		t.Fatal("empty merge should stay empty")
	}
	b.Add(5)
	b.Add(10)
	a.Merge(b)
	if a.Count() != 2 || a.Min() != 5 || a.Max() != 10 {
		t.Fatalf("merge into empty: count=%d min=%d max=%d", a.Count(), a.Min(), a.Max())
	}
	c := b.Clone()
	c.Add(20)
	if b.Count() != 2 || c.Count() != 3 {
		t.Fatal("Clone must be independent")
	}
	a.Merge(nil) // nil is a no-op
	if a.Count() != 2 {
		t.Fatal("nil merge changed the sketch")
	}
}

// Determinism: the same stream always yields bit-identical quantiles
// (this is what lets BENCH_micro.json gate p99 at a strict tolerance).
func TestDeterministicExtraction(t *testing.T) {
	build := func() *Sketch {
		rng := rand.New(rand.NewSource(3))
		s := New(DefaultAlpha)
		for i := 0; i < 5000; i++ {
			s.Add(int64(rng.ExpFloat64() * 10_000))
		}
		return s
	}
	s1, s2 := build(), build()
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if s1.Quantile(q) != s2.Quantile(q) {
			t.Fatalf("q=%v differs across identical streams: %d vs %d", q, s1.Quantile(q), s2.Quantile(q))
		}
	}
}
