// Package quantile provides a deterministic, mergeable latency-quantile
// sketch for the open-loop serving benchmarks.
//
// The sketch is a DDSketch-style logarithmic histogram: values land in
// buckets whose boundaries grow geometrically by gamma = (1+alpha)/
// (1-alpha), which guarantees every reported quantile is within a
// relative error of alpha of the true order statistic. Two properties
// matter for this repository and are load-bearing for the CI gate:
//
//   - Determinism. Bucket indices are a pure function of the value, the
//     counts are integers, and quantile extraction walks the buckets in
//     sorted index order — the same stream of virtual-time latencies
//     always produces bit-identical p50/p99/p999, so BENCH_micro.json
//     latency fields are stable enough to gate at a strict tolerance.
//   - Exact mergeability. Merge adds bucket counts, and integer
//     addition is associative and commutative, so merging the P
//     per-thread sketches of a run yields the same sketch regardless of
//     merge order or tree shape. The per-thread sketches live in plain
//     Go memory (they are measurement apparatus, not workload state).
//
// Values are virtual-time latencies in nanoseconds: non-negative
// int64s. Zero is tracked exactly in its own bucket.
package quantile

import "sort"

// DefaultAlpha is the relative-accuracy target used by the benchmarks:
// reported quantiles are within 1% of the true order statistic.
const DefaultAlpha = 0.01

// Sketch is a mergeable quantile sketch with bounded relative error.
// The zero value is not usable; call New.
type Sketch struct {
	alpha float64
	gamma float64
	// counts maps bucket index i to the number of recorded values v
	// with gamma^(i-1) < v <= gamma^i. Index 0 holds v in (1/gamma, 1],
	// i.e. the value 1 for integer inputs.
	counts map[int]uint64
	zeros  uint64 // exact count of v == 0
	n      uint64
	min    int64
	max    int64
}

// New creates a sketch with relative accuracy alpha (0 < alpha < 1).
// Pass DefaultAlpha unless a test needs a different bound.
func New(alpha float64) *Sketch {
	if alpha <= 0 || alpha >= 1 {
		panic("quantile: alpha must be in (0, 1)")
	}
	return &Sketch{
		alpha:  alpha,
		gamma:  (1 + alpha) / (1 - alpha),
		counts: make(map[int]uint64),
	}
}

// Alpha returns the sketch's relative-accuracy parameter.
func (s *Sketch) Alpha() float64 { return s.alpha }

// index returns the bucket index for v > 0: the smallest i with
// v <= gamma^i, computed by repeated multiplication so the boundary
// arithmetic is exactly reproducible (no platform-dependent log).
// Bucket boundaries are cached per sketch via the bounds slice.
func (s *Sketch) index(v int64) int {
	fv := float64(v)
	if fv <= 1 {
		return 0
	}
	// Galloping search over gamma^i, then binary refine. For latency
	// inputs (ns, up to ~1e12) this is at most ~40 doublings with
	// alpha=0.01 handled in the refine step; cheap and allocation-free.
	lo, hi := 0, 1
	b := s.gamma
	for b < fv {
		lo = hi
		hi *= 2
		b = pow(s.gamma, hi)
	}
	// Invariant: gamma^lo < fv <= gamma^hi. Binary search the boundary.
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if pow(s.gamma, mid) < fv {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// pow computes g^n for n >= 0 by square-and-multiply; deterministic
// and exactly reproducible for a given g and n.
func pow(g float64, n int) float64 {
	r := 1.0
	for n > 0 {
		if n&1 == 1 {
			r *= g
		}
		g *= g
		n >>= 1
	}
	return r
}

// Add records one value. Negative values panic: virtual-time latencies
// cannot be negative, and a negative latency is a harness bug worth
// crashing on.
func (s *Sketch) Add(v int64) {
	if v < 0 {
		panic("quantile: negative value")
	}
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	if v == 0 {
		s.zeros++
		return
	}
	s.counts[s.index(v)]++
}

// Count returns the number of recorded values.
func (s *Sketch) Count() uint64 { return s.n }

// Min returns the exact minimum recorded value (0 if empty).
func (s *Sketch) Min() int64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact maximum recorded value (0 if empty).
func (s *Sketch) Max() int64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Merge folds other into s. Both sketches must share the same alpha.
// Merging is exact: the result is identical to having Added every value
// of both streams into one sketch, in any order.
func (s *Sketch) Merge(other *Sketch) {
	if other == nil || other.n == 0 {
		return
	}
	if other.alpha != s.alpha {
		panic("quantile: merging sketches with different alpha")
	}
	if s.n == 0 || other.min < s.min {
		s.min = other.min
	}
	if s.n == 0 || other.max > s.max {
		s.max = other.max
	}
	s.n += other.n
	s.zeros += other.zeros
	for i, c := range other.counts {
		s.counts[i] += c
	}
}

// Clone returns an independent copy.
func (s *Sketch) Clone() *Sketch {
	c := New(s.alpha)
	c.n, c.zeros, c.min, c.max = s.n, s.zeros, s.min, s.max
	for i, v := range s.counts {
		c.counts[i] = v
	}
	return c
}

// Quantile returns an estimate of the q-th quantile (0 <= q <= 1) with
// relative error at most alpha: the value at (0-based) rank
// floor(q*(n-1)) of the sorted stream. Returns 0 for an empty sketch.
// Quantile(0) and Quantile(1) return the exact min and max.
func (s *Sketch) Quantile(q float64) int64 {
	if s.n == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	rank := uint64(q * float64(s.n-1)) // 0-based target rank
	if rank < s.zeros {
		return 0
	}
	cum := s.zeros
	// Deterministic extraction: walk buckets in ascending index order.
	idxs := make([]int, 0, len(s.counts))
	for i := range s.counts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		cum += s.counts[i]
		if rank < cum {
			// All values in bucket i lie in (gamma^(i-1), gamma^i]; the
			// midpoint estimate 2*gamma^i/(gamma+1) is within alpha of
			// every one of them. Clamp to the exact extremes so the
			// estimate never leaves the observed range.
			est := 2 * pow(s.gamma, i) / (s.gamma + 1)
			v := int64(est + 0.5)
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max
}
