package bench

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/apps/kernels"
)

func TestMicroBenchFileRoundTrip(t *testing.T) {
	in := &MicroBench{
		Benchmark: "samhita-micro",
		Points: []MicroPoint{{
			P: 16, Mode: "strided", N: 10, M: 10, S: 2, B: 256,
			SyncMaxNs: 1_500_000, FabricMsgs: 1800, Releases: 320,
			MsgsPerRelease: 3.5,
		}},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := in.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMicroBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Points) != 1 || out.Points[0] != in.Points[0] {
		t.Fatalf("round trip mismatch: %+v vs %+v", out.Points, in.Points)
	}
}

func TestCheckRegression(t *testing.T) {
	base := &MicroBench{Points: []MicroPoint{{
		P: 16, Mode: "strided", N: 10, M: 10, S: 2, B: 256,
		SyncMaxNs: 1_000_000, FabricMsgs: 1000,
	}}}
	within := &MicroBench{Points: []MicroPoint{{
		P: 16, Mode: "strided", N: 10, M: 10, S: 2, B: 256,
		SyncMaxNs: 1_150_000, FabricMsgs: 1100,
	}}}
	if err := CheckRegression(base, within, 0.20); err != nil {
		t.Errorf("15%% growth tripped the 20%% gate: %v", err)
	}
	over := &MicroBench{Points: []MicroPoint{{
		P: 16, Mode: "strided", N: 10, M: 10, S: 2, B: 256,
		SyncMaxNs: 1_250_000, FabricMsgs: 1000,
	}}}
	err := CheckRegression(base, over, 0.20)
	if err == nil || !strings.Contains(err.Error(), "sync") {
		t.Errorf("25%% sync growth passed the 20%% gate: %v", err)
	}
	msgs := &MicroBench{Points: []MicroPoint{{
		P: 16, Mode: "strided", N: 10, M: 10, S: 2, B: 256,
		SyncMaxNs: 1_000_000, FabricMsgs: 1500,
	}}}
	err = CheckRegression(base, msgs, 0.20)
	if err == nil || !strings.Contains(err.Error(), "msgs") {
		t.Errorf("50%% message growth passed the 20%% gate: %v", err)
	}
	// A differently configured point has no baseline partner and passes.
	other := &MicroBench{Points: []MicroPoint{{
		P: 8, Mode: "local", N: 10, M: 10, S: 2, B: 256,
		SyncMaxNs: 9_000_000, FabricMsgs: 9000,
	}}}
	if err := CheckRegression(base, other, 0.20); err != nil {
		t.Errorf("unmatched point failed the gate: %v", err)
	}
}

// MeasureMicro on the sequenced simulated fabric must be bit-stable:
// the same options yield the same point, which is what justifies a
// strict CI gate on the stored baseline.
func TestMeasureMicroDeterministic(t *testing.T) {
	o := Quick()
	prm := kernels.MicroParams{N: o.N, M: o.MidM, S: o.MidS, B: o.B, Mode: kernels.AllocStrided}
	a, err := o.MeasureMicro(4, prm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.MeasureMicro(4, prm)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("measurements differ:\n a: %+v\n b: %+v", a, b)
	}
	if a.SyncMaxNs == 0 || a.FabricMsgs == 0 || a.Releases == 0 {
		t.Fatalf("degenerate measurement: %+v", a)
	}
}

// The p99 gate covers workload points: latency regressions in the KV
// service fail CI like sync-time regressions in the kernels.
func TestCheckRegressionP99(t *testing.T) {
	base := &MicroBench{Points: []MicroPoint{{
		Workload: "kv", P: 16, Mode: "open", N: 64, M: 512, S: 64, B: 90,
		SyncMaxNs: 1_000_000, P99Ns: 10_000,
	}}}
	within := &MicroBench{Points: []MicroPoint{{
		Workload: "kv", P: 16, Mode: "open", N: 64, M: 512, S: 64, B: 90,
		SyncMaxNs: 1_000_000, P99Ns: 11_500,
	}}}
	if err := CheckRegression(base, within, 0.20); err != nil {
		t.Errorf("15%% p99 growth tripped the 20%% gate: %v", err)
	}
	over := &MicroBench{Points: []MicroPoint{{
		Workload: "kv", P: 16, Mode: "open", N: 64, M: 512, S: 64, B: 90,
		SyncMaxNs: 1_000_000, P99Ns: 12_500,
	}}}
	err := CheckRegression(base, over, 0.20)
	if err == nil || !strings.Contains(err.Error(), "p99") {
		t.Errorf("25%% p99 growth passed the 20%% gate: %v", err)
	}
}

// Workload, sweep-server and span markers are part of the point
// identity: a kv point must never be compared against the micro point
// with coincidentally equal parameters, and the pre-workload baseline
// keys must be unchanged so old documents keep gating.
func TestMicroPointKeyIdentity(t *testing.T) {
	micro := MicroPoint{P: 16, Mode: "strided", N: 10, M: 10, S: 2, B: 256}
	if got, want := micro.key(), "p16-strided-N10-M10-S2-B256-d0-sh1-mgr1-rep1"; got != want {
		t.Errorf("legacy key changed: %q, want %q", got, want)
	}
	kvPt := micro
	kvPt.Workload = "kv"
	if kvPt.key() == micro.key() {
		t.Error("kv point key collides with micro point key")
	}
	srv := micro
	srv.Servers = 4
	if srv.key() == micro.key() {
		t.Error("multi-server point key collides with single-server key")
	}
	if !strings.HasSuffix(kvPt.key(), "-wl-kv") {
		t.Errorf("workload key missing suffix: %q", kvPt.key())
	}
}

// MeasureKV on the sequenced fabric must be bit-stable like the micro
// kernel, including its latency quantiles.
func TestMeasureKVDeterministic(t *testing.T) {
	o := Quick()
	prm := kvQuickParams()
	a, err := o.MeasureKV(4, prm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.MeasureKV(4, prm)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("kv measurements differ:\n a: %+v\n b: %+v", a, b)
	}
	if a.Ops == 0 || a.P50Ns == 0 || a.P99Ns == 0 || a.P999Ns < a.P99Ns || a.P99Ns < a.P50Ns {
		t.Fatalf("degenerate kv measurement: %+v", a)
	}
}
