package bench

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/apps/kernels"
)

func TestMicroBenchFileRoundTrip(t *testing.T) {
	in := &MicroBench{
		Benchmark: "samhita-micro",
		Points: []MicroPoint{{
			P: 16, Mode: "strided", N: 10, M: 10, S: 2, B: 256,
			SyncMaxNs: 1_500_000, FabricMsgs: 1800, Releases: 320,
			MsgsPerRelease: 3.5,
		}},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := in.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMicroBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Points) != 1 || out.Points[0] != in.Points[0] {
		t.Fatalf("round trip mismatch: %+v vs %+v", out.Points, in.Points)
	}
}

func TestCheckRegression(t *testing.T) {
	base := &MicroBench{Points: []MicroPoint{{
		P: 16, Mode: "strided", N: 10, M: 10, S: 2, B: 256,
		SyncMaxNs: 1_000_000, FabricMsgs: 1000,
	}}}
	within := &MicroBench{Points: []MicroPoint{{
		P: 16, Mode: "strided", N: 10, M: 10, S: 2, B: 256,
		SyncMaxNs: 1_150_000, FabricMsgs: 1100,
	}}}
	if err := CheckRegression(base, within, 0.20); err != nil {
		t.Errorf("15%% growth tripped the 20%% gate: %v", err)
	}
	over := &MicroBench{Points: []MicroPoint{{
		P: 16, Mode: "strided", N: 10, M: 10, S: 2, B: 256,
		SyncMaxNs: 1_250_000, FabricMsgs: 1000,
	}}}
	err := CheckRegression(base, over, 0.20)
	if err == nil || !strings.Contains(err.Error(), "sync") {
		t.Errorf("25%% sync growth passed the 20%% gate: %v", err)
	}
	msgs := &MicroBench{Points: []MicroPoint{{
		P: 16, Mode: "strided", N: 10, M: 10, S: 2, B: 256,
		SyncMaxNs: 1_000_000, FabricMsgs: 1500,
	}}}
	err = CheckRegression(base, msgs, 0.20)
	if err == nil || !strings.Contains(err.Error(), "msgs") {
		t.Errorf("50%% message growth passed the 20%% gate: %v", err)
	}
	// A differently configured point has no baseline partner and passes.
	other := &MicroBench{Points: []MicroPoint{{
		P: 8, Mode: "local", N: 10, M: 10, S: 2, B: 256,
		SyncMaxNs: 9_000_000, FabricMsgs: 9000,
	}}}
	if err := CheckRegression(base, other, 0.20); err != nil {
		t.Errorf("unmatched point failed the gate: %v", err)
	}
}

// MeasureMicro on the sequenced simulated fabric must be bit-stable:
// the same options yield the same point, which is what justifies a
// strict CI gate on the stored baseline.
func TestMeasureMicroDeterministic(t *testing.T) {
	o := Quick()
	prm := kernels.MicroParams{N: o.N, M: o.MidM, S: o.MidS, B: o.B, Mode: kernels.AllocStrided}
	a, err := o.MeasureMicro(4, prm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.MeasureMicro(4, prm)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("measurements differ:\n a: %+v\n b: %+v", a, b)
	}
	if a.SyncMaxNs == 0 || a.FabricMsgs == 0 || a.Releases == 0 {
		t.Fatalf("degenerate measurement: %+v", a)
	}
}
