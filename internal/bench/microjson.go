package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/apps/kernels"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/vm"
)

// This file is the machine-readable face of the micro-benchmark: one
// JSON document (BENCH_micro.json) records the release-path and
// prefetch efficiency of a fixed set of configurations, and
// CheckRegression gates CI on it. Reported times are virtual-model
// times over the sequenced simulated fabric, so the numbers are
// bit-stable across machines — a regression is a code change, not
// noise, which is what lets the gate be strict.

// MicroPoint is one measured micro-benchmark configuration.
type MicroPoint struct {
	// Configuration (the identity CheckRegression matches on).
	P             int    `json:"p"`
	Mode          string `json:"mode"`
	N             int    `json:"n"`
	M             int    `json:"m"`
	S             int    `json:"s"`
	B             int    `json:"b"`
	PrefetchDepth int    `json:"prefetchDepth"`
	// ServerShards is the memory servers' shard count (0 in documents
	// written before sharding existed, equivalent to 1).
	ServerShards int `json:"serverShards,omitempty"`
	// ManagerShards is the manager's sync-home count (0 in documents
	// written before manager sharding existed, equivalent to 1).
	ManagerShards int `json:"managerShards,omitempty"`
	// ManagerReplicas is the consensus-replicated manager group size (0
	// in documents written before replication existed, equivalent to 1).
	ManagerReplicas int `json:"managerReplicas,omitempty"`
	// Spans marks points whose kernel ran on the bulk span accessors.
	Spans bool `json:"spans,omitempty"`
	// WideGsum is the widened global-accumulator slot count (0/1 = the
	// legacy single slot); see kernels.MicroParams.WideGsum.
	WideGsum int `json:"wideGsum,omitempty"`
	// NoCoalesce marks the record-coalescing ablation.
	NoCoalesce bool `json:"noCoalesce,omitempty"`
	// Servers is the memory-server count when it differs from the
	// single-server default (population-sweep points spread the store).
	Servers int `json:"servers,omitempty"`
	// Workload names a serving-scale workload point ("kv", "pagerank",
	// "forkstorm"); empty for the micro kernel. Workload points reuse
	// the parameter fields: kv stores Ops/Keys/Buckets/GetPct in
	// N/M/S/B, pagerank stores Iters/Vertices/AvgDeg in N/M/S,
	// forkstorm stores Forks/ImageBytes/ReadsPerFork/WritesPerFork in
	// N/M/S/B.
	Workload string `json:"workload,omitempty"`
	// HotBytes is the per-server hot-set budget of a tiered point (0 =
	// untiered; untiered points keep their legacy keys).
	HotBytes int64 `json:"hotBytes,omitempty"`
	// ColdPreset names the tiered point's cold-tier cost model.
	ColdPreset string `json:"coldPreset,omitempty"`

	// Virtual times of the slowest thread, in nanoseconds.
	ComputeMaxNs int64 `json:"computeMaxNs"`
	SyncMaxNs    int64 `json:"syncMaxNs"`
	TotalMaxNs   int64 `json:"totalMaxNs"`

	// Whole-fabric traffic (every message of every component).
	FabricMsgs  int64 `json:"fabricMsgs"`
	FabricBytes int64 `json:"fabricBytes"`

	// Release-path efficiency.
	Releases            int64   `json:"releases"`
	MsgsPerRelease      float64 `json:"msgsPerRelease"`
	DiffBytesPerRelease float64 `json:"diffBytesPerRelease"`

	// Prefetch efficiency.
	PrefetchIssued    int64   `json:"prefetchIssued"`
	PrefetchHitRate   float64 `json:"prefetchHitRate"`
	PrefetchWasteRate float64 `json:"prefetchWasteRate"`

	// Manager-replication counters (only set when ManagerReplicas > 1):
	// how many mutations rode the consensus log, and how often the log
	// was compacted into a snapshot.
	MgrReplEntries int64 `json:"mgrReplEntries,omitempty"`
	MgrSnapshots   int64 `json:"mgrSnapshots,omitempty"`
	MgrElections   int64 `json:"mgrElections,omitempty"`

	// Record-plane footprint: consistency-region store records logged
	// and their wire footprint (payload plus the 16-byte per-record
	// marshalling header). Omitted for runs that log no records.
	RecordsLogged int64 `json:"recordsLogged,omitempty"`
	RecordBytes   int64 `json:"recordBytes,omitempty"`

	// Open-loop service latency (workload points only): quantiles of
	// scheduled-arrival-to-completion time in virtual nanoseconds, over
	// Ops completed requests.
	Ops    int64 `json:"ops,omitempty"`
	P50Ns  int64 `json:"p50Ns,omitempty"`
	P99Ns  int64 `json:"p99Ns,omitempty"`
	P999Ns int64 `json:"p999Ns,omitempty"`

	// Tiered-store counters (tiered points only). HotHitRate is the
	// fraction of server page touches served from the hot set —
	// CheckRegression gates it from below (a lower rate is a thrash
	// regression).
	HotHitRate float64 `json:"hotHitRate,omitempty"`
	Promotions int64   `json:"promotions,omitempty"`
	Demotions  int64   `json:"demotions,omitempty"`

	// Fork-storm results (forkstorm points only): fork-to-first-op
	// latency quantiles over Forks copy-on-write forks, and the
	// eager-copy cold-start baseline the O(1) fork is judged against.
	Forks       int64 `json:"forks,omitempty"`
	ForkP50Ns   int64 `json:"forkP50Ns,omitempty"`
	ForkP99Ns   int64 `json:"forkP99Ns,omitempty"`
	ForkP999Ns  int64 `json:"forkP999Ns,omitempty"`
	ColdStartNs int64 `json:"coldStartNs,omitempty"`
}

// key is the configuration identity used to pair baseline and current
// points. Shard count 0 (documents from before sharding) normalizes to
// 1 so old baselines keep gating the unsharded points.
func (p MicroPoint) key() string {
	sh := p.ServerShards
	if sh == 0 {
		sh = 1
	}
	mgr := p.ManagerShards
	if mgr == 0 {
		mgr = 1
	}
	rep := p.ManagerReplicas
	if rep == 0 {
		rep = 1
	}
	k := fmt.Sprintf("p%d-%s-N%d-M%d-S%d-B%d-d%d-sh%d-mgr%d-rep%d", p.P, p.Mode, p.N, p.M, p.S, p.B, p.PrefetchDepth, sh, mgr, rep)
	// Span/record-plane variants only suffix the key when set, so legacy
	// documents keep matching legacy points.
	if p.Spans {
		k += "-span"
	}
	if p.WideGsum > 1 {
		k += fmt.Sprintf("-wide%d", p.WideGsum)
	}
	if p.NoCoalesce {
		k += "-nocoal"
	}
	if p.Servers > 1 {
		k += fmt.Sprintf("-srv%d", p.Servers)
	}
	if p.Workload != "" {
		k += "-wl-" + p.Workload
	}
	if p.HotBytes > 0 {
		k += fmt.Sprintf("-hot%d", p.HotBytes)
	}
	return k
}

// MicroBench is the document stored in BENCH_micro.json.
type MicroBench struct {
	Benchmark string       `json:"benchmark"`
	Points    []MicroPoint `json:"points"`
}

// MeasureMicro boots a fresh Samhita runtime from the options, runs the
// micro kernel once and returns the measured point.
func (o Options) MeasureMicro(p int, prm kernels.MicroParams) (MicroPoint, error) {
	v, err := o.newSamhita()
	if err != nil {
		return MicroPoint{}, err
	}
	defer v.Close()
	base := tierBaseline(v)
	res, err := kernels.RunMicro(v, p, prm)
	if err != nil {
		return MicroPoint{}, err
	}
	o.aggregate(res.Run)
	tot := res.Run.Totals()
	shards := o.ServerShards
	if shards == 0 {
		shards = 1
	}
	mgrShards := o.ManagerShards
	if mgrShards == 0 {
		mgrShards = 1
	}
	replicas := o.ManagerReplicas
	if replicas == 0 {
		replicas = 1
	}
	servers := 0
	if o.NumServers > 1 {
		servers = o.NumServers
	}
	pt := MicroPoint{
		P: p, Mode: prm.Mode.String(),
		N: prm.N, M: prm.M, S: prm.S, B: prm.B,
		PrefetchDepth:   o.PrefetchDepth,
		ServerShards:    shards,
		ManagerShards:   mgrShards,
		ManagerReplicas: replicas,
		Servers:         servers,
		Spans:           prm.UseSpans,
		WideGsum:        prm.WideGsum,
		NoCoalesce:      o.NoRecordCoalesce,

		RecordsLogged: tot.RecordsLogged,
		RecordBytes:   tot.RecordBytes + 16*tot.RecordsLogged,

		ComputeMaxNs: int64(res.Run.MaxComputeTime()),
		SyncMaxNs:    int64(res.Run.MaxSyncTime()),
		TotalMaxNs:   int64(res.Run.MaxTotalTime()),

		Releases:            tot.Releases,
		MsgsPerRelease:      stats.Rate(tot.MsgsSent, tot.Releases),
		DiffBytesPerRelease: stats.Rate(tot.DiffBytes, tot.Releases),

		PrefetchIssued:    tot.PrefetchIssued,
		PrefetchHitRate:   stats.Rate(tot.PrefetchHits+tot.PrefetchLate, tot.PrefetchIssued),
		PrefetchWasteRate: stats.Rate(tot.PrefetchWasted, tot.PrefetchIssued),
	}
	if rt, ok := v.(*core.Runtime); ok {
		if rt.Fabric() != nil {
			pt.FabricMsgs = rt.Fabric().Messages()
			pt.FabricBytes = rt.Fabric().Bytes()
		}
		if live := rt.ReplLiveness(); live != nil {
			pt.MgrReplEntries = live.MgrReplEntries.Load()
			pt.MgrSnapshots = live.MgrSnapshots.Load()
			pt.MgrElections = live.MgrElections.Load()
		}
		o.fillTier(&pt, rt, base)
	}
	return pt, nil
}

// tierBase is a pre-run snapshot of the tier counters, so per-point
// numbers stay correct even when Options.Tier shares one accumulator
// across a whole suite.
type tierBase struct{ hits, promotions, demotions int64 }

func tierBaseline(v vm.VM) tierBase {
	rt, ok := v.(*core.Runtime)
	if !ok {
		return tierBase{}
	}
	ts := rt.TierStats()
	return tierBase{ts.HotHits.Load(), ts.Promotions.Load(), ts.Demotions.Load()}
}

// fillTier stamps a tiered point's identity and counters. Untiered runs
// (HotBytes 0) leave every field zero, so legacy keys and documents are
// untouched.
func (o Options) fillTier(pt *MicroPoint, rt *core.Runtime, base tierBase) {
	if o.HotBytes <= 0 {
		return
	}
	pt.HotBytes = o.HotBytes
	pt.ColdPreset = o.ColdPreset
	ts := rt.TierStats()
	hits := ts.HotHits.Load() - base.hits
	promotions := ts.Promotions.Load() - base.promotions
	pt.HotHitRate = stats.Rate(hits, hits+promotions)
	pt.Promotions = promotions
	pt.Demotions = ts.Demotions.Load() - base.demotions
}

// MicroBenchSuite measures the standard point set: the paper's Figure
// 10/11 configuration (16 threads, strided allocation, M=10, S=2) at
// the configured prefetch depth, a local-mode control, and a
// random-scatter point (the worst case for server-shard contention).
// The base points always run unsharded; when the options ask for more
// server or manager shards, the shard-sensitive modes (strided, random)
// are measured again at those shard counts so the document captures the
// speedup.
func MicroBenchSuite(o Options) (*MicroBench, error) {
	mb := &MicroBench{Benchmark: "samhita-micro"}
	type pointCfg struct {
		p         int
		mode      kernels.AllocMode
		shards    int
		mgrShards int
		replicas  int
		spans     bool
		wide      int
		nocoal    bool
	}
	cfgs := []pointCfg{
		{p: 16, mode: kernels.AllocStrided, shards: 1, mgrShards: 1, replicas: 1},
		{p: 16, mode: kernels.AllocLocal, shards: 1, mgrShards: 1, replicas: 1},
		{p: 16, mode: kernels.AllocRandom, shards: 1, mgrShards: 1, replicas: 1},
	}
	if o.ServerShards > 1 {
		cfgs = append(cfgs,
			pointCfg{p: 16, mode: kernels.AllocStrided, shards: o.ServerShards, mgrShards: 1, replicas: 1},
			pointCfg{p: 16, mode: kernels.AllocRandom, shards: o.ServerShards, mgrShards: 1, replicas: 1},
		)
	}
	if o.ManagerShards > 1 {
		// The manager-sharding points ride on the sharded servers when
		// those are requested too, capturing the combined hot path.
		sh := o.ServerShards
		if sh < 1 {
			sh = 1
		}
		cfgs = append(cfgs,
			pointCfg{p: 16, mode: kernels.AllocStrided, shards: sh, mgrShards: o.ManagerShards, replicas: 1},
			pointCfg{p: 16, mode: kernels.AllocRandom, shards: sh, mgrShards: o.ManagerShards, replicas: 1},
		)
	}
	if o.ManagerReplicas > 1 {
		// The replicated-manager point measures the consensus log's
		// overhead on the sync-heaviest mode, riding on whatever shard
		// counts are requested (replica-to-replica links are intra-node,
		// so the cost measured is the log protocol, not the wire).
		sh := o.ServerShards
		if sh < 1 {
			sh = 1
		}
		mgr := o.ManagerShards
		if mgr < 1 {
			mgr = 1
		}
		cfgs = append(cfgs, pointCfg{p: 16, mode: kernels.AllocStrided, shards: sh, mgrShards: mgr, replicas: o.ManagerReplicas})
	}
	if o.ServerShards > 1 && o.ManagerShards > 1 {
		// Span-recast points on the combined sharded hot path: the same
		// kernels with the row loop moved onto the bulk accessors. The
		// strided/random compute times here against their element twins
		// are the headline number of the span data plane (partial
		// staleness suppressing false-sharing refetch faults).
		cfgs = append(cfgs,
			pointCfg{p: 16, mode: kernels.AllocStrided, shards: o.ServerShards, mgrShards: o.ManagerShards, replicas: 1, spans: true},
			pointCfg{p: 16, mode: kernels.AllocRandom, shards: o.ServerShards, mgrShards: o.ManagerShards, replicas: 1, spans: true},
		)
		// Record-plane trio on a region-heavy point (64-slot accumulator
		// burst under the lock): uncoalesced elements, coalesced elements
		// and one span record, in that order, so the document shows what
		// each half of the record plane buys.
		const wideW = 64
		cfgs = append(cfgs,
			pointCfg{p: 16, mode: kernels.AllocStrided, shards: o.ServerShards, mgrShards: o.ManagerShards, replicas: 1, wide: wideW, nocoal: true},
			pointCfg{p: 16, mode: kernels.AllocStrided, shards: o.ServerShards, mgrShards: o.ManagerShards, replicas: 1, wide: wideW},
			pointCfg{p: 16, mode: kernels.AllocStrided, shards: o.ServerShards, mgrShards: o.ManagerShards, replicas: 1, wide: wideW, spans: true},
		)
	}
	for _, c := range cfgs {
		po := o
		po.ServerShards = c.shards
		po.ManagerShards = c.mgrShards
		po.ManagerReplicas = c.replicas
		po.NoRecordCoalesce = c.nocoal
		// The standard points always run untiered, so their keys and
		// numbers are stable whatever tier knobs the invocation carries;
		// tierForkPoints adds the tiered twins.
		po.HotBytes, po.ColdPreset = 0, ""
		prm := kernels.MicroParams{N: o.N, M: o.MidM, S: o.MidS, B: o.B, Mode: c.mode, UseSpans: c.spans, WideGsum: c.wide}
		pt, err := po.MeasureMicro(c.p, prm)
		if err != nil {
			return nil, err
		}
		mb.Points = append(mb.Points, pt)
	}
	// Serving-scale workloads: the open-loop KV service (p50/p99/p999
	// become gated numbers) and the irregular PageRank kernel, each on
	// the element and span data planes.
	wl, err := workloadPoints(o)
	if err != nil {
		return nil, err
	}
	mb.Points = append(mb.Points, wl...)
	// Tiered-store and fork-storm points (opt-in via HotBytes / Forks).
	tf, err := tierForkPoints(o)
	if err != nil {
		return nil, err
	}
	mb.Points = append(mb.Points, tf...)
	// Population sweep (opt-in via SweepPops: these are the expensive
	// points).
	sw, err := sweepPoints(o)
	if err != nil {
		return nil, err
	}
	mb.Points = append(mb.Points, sw...)
	return mb, nil
}

// WriteFile stores the document as indented JSON.
func (mb *MicroBench) WriteFile(path string) error {
	data, err := json.MarshalIndent(mb, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadMicroBench loads a stored document.
func ReadMicroBench(path string) (*MicroBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	mb := &MicroBench{}
	if err := json.Unmarshal(data, mb); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return mb, nil
}

// CheckRegression compares current against baseline point by point
// (matched on configuration) and returns an error naming every point
// whose sync time, fabric message count, fabric byte volume or p99
// service latency grew by more than tol (e.g. 0.20 = 20%). Baseline points absent from current
// are ignored; new current points pass (there is nothing to compare
// them to).
func CheckRegression(baseline, current *MicroBench, tol float64) error {
	base := make(map[string]MicroPoint, len(baseline.Points))
	for _, p := range baseline.Points {
		base[p.key()] = p
	}
	var bad []string
	for _, cur := range current.Points {
		b, ok := base[cur.key()]
		if !ok {
			continue
		}
		if b.SyncMaxNs > 0 && float64(cur.SyncMaxNs) > float64(b.SyncMaxNs)*(1+tol) {
			bad = append(bad, fmt.Sprintf("%s: sync %dns > baseline %dns by more than %.0f%%",
				cur.key(), cur.SyncMaxNs, b.SyncMaxNs, tol*100))
		}
		if b.FabricMsgs > 0 && float64(cur.FabricMsgs) > float64(b.FabricMsgs)*(1+tol) {
			bad = append(bad, fmt.Sprintf("%s: fabric msgs %d > baseline %d by more than %.0f%%",
				cur.key(), cur.FabricMsgs, b.FabricMsgs, tol*100))
		}
		if b.FabricBytes > 0 && float64(cur.FabricBytes) > float64(b.FabricBytes)*(1+tol) {
			bad = append(bad, fmt.Sprintf("%s: fabric bytes %d > baseline %d by more than %.0f%%",
				cur.key(), cur.FabricBytes, b.FabricBytes, tol*100))
		}
		if b.P99Ns > 0 && float64(cur.P99Ns) > float64(b.P99Ns)*(1+tol) {
			bad = append(bad, fmt.Sprintf("%s: p99 latency %dns > baseline %dns by more than %.0f%%",
				cur.key(), cur.P99Ns, b.P99Ns, tol*100))
		}
		// Tiered points: the hot-hit rate is gated from BELOW — a drop
		// means the hot set started thrashing (more promotions per touch),
		// which is a regression even if virtual time squeaks through.
		if b.HotHitRate > 0 && cur.HotHitRate < b.HotHitRate*(1-tol) {
			bad = append(bad, fmt.Sprintf("%s: hot-hit rate %.4f < baseline %.4f by more than %.0f%%",
				cur.key(), cur.HotHitRate, b.HotHitRate, tol*100))
		}
		// Fork-storm points: fork-to-first-op p99 is the workload's
		// headline number.
		if b.ForkP99Ns > 0 && float64(cur.ForkP99Ns) > float64(b.ForkP99Ns)*(1+tol) {
			bad = append(bad, fmt.Sprintf("%s: fork p99 %dns > baseline %dns by more than %.0f%%",
				cur.key(), cur.ForkP99Ns, b.ForkP99Ns, tol*100))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("benchmark regression:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}
