package bench

import (
	"fmt"

	"repro/internal/apps/forkstorm"
	"repro/internal/apps/kernels"
	"repro/internal/apps/kv"
	"repro/internal/apps/pagerank"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/vm"
)

// Serving-scale workload points for BENCH_micro.json: the DSM-backed
// KV service under its open-loop load generator (latency quantiles
// become gated numbers), the irregular PageRank kernel (striping and
// prefetch meet a power-law access pattern), and population sweeps to
// P=256/1024 across multi-server, multi-shard and multi-manager
// topologies. All of them ride the same MicroPoint identity machinery,
// so the existing 20% regression gate covers them with no extra code.

// fillCommon copies the runtime-wide measurements every point shares.
func (o Options) fillCommon(pt *MicroPoint, run *stats.Run, v vm.VM, base tierBase) {
	o.aggregate(run)
	tot := run.Totals()
	pt.ComputeMaxNs = int64(run.MaxComputeTime())
	pt.SyncMaxNs = int64(run.MaxSyncTime())
	pt.TotalMaxNs = int64(run.MaxTotalTime())
	pt.Releases = tot.Releases
	pt.MsgsPerRelease = stats.Rate(tot.MsgsSent, tot.Releases)
	pt.DiffBytesPerRelease = stats.Rate(tot.DiffBytes, tot.Releases)
	pt.PrefetchIssued = tot.PrefetchIssued
	pt.PrefetchHitRate = stats.Rate(tot.PrefetchHits+tot.PrefetchLate, tot.PrefetchIssued)
	pt.PrefetchWasteRate = stats.Rate(tot.PrefetchWasted, tot.PrefetchIssued)
	pt.RecordsLogged = tot.RecordsLogged
	pt.RecordBytes = tot.RecordBytes + 16*tot.RecordsLogged
	if rt, ok := v.(*core.Runtime); ok {
		if rt.Fabric() != nil {
			pt.FabricMsgs = rt.Fabric().Messages()
			pt.FabricBytes = rt.Fabric().Bytes()
		}
		if live := rt.ReplLiveness(); live != nil {
			pt.MgrReplEntries = live.MgrReplEntries.Load()
			pt.MgrSnapshots = live.MgrSnapshots.Load()
			pt.MgrElections = live.MgrElections.Load()
		}
		o.fillTier(pt, rt, base)
	}
}

// topology returns the normalized shard/replica counts recorded in a
// point's identity.
func (o Options) topology() (servers, shards, mgrShards, replicas int) {
	servers = 0
	if o.NumServers > 1 {
		servers = o.NumServers
	}
	shards = o.ServerShards
	if shards == 0 {
		shards = 1
	}
	mgrShards = o.ManagerShards
	if mgrShards == 0 {
		mgrShards = 1
	}
	replicas = o.ManagerReplicas
	if replicas == 0 {
		replicas = 1
	}
	return
}

// MeasureKV boots a fresh Samhita runtime, drives the KV service with
// its open-loop load generator and returns the measured point. KV
// parameters ride in the micro fields: N=Ops, M=Keys, S=Buckets,
// B=GetPct; Mode is "open" (open-loop).
func (o Options) MeasureKV(p int, prm kv.Params) (MicroPoint, error) {
	prm = prm.WithDefaults()
	v, err := o.newSamhita()
	if err != nil {
		return MicroPoint{}, err
	}
	defer v.Close()
	base := tierBaseline(v)
	res, err := kv.Run(v, p, prm)
	if err != nil {
		return MicroPoint{}, err
	}
	servers, shards, mgrShards, replicas := o.topology()
	pt := MicroPoint{
		Workload: "kv", P: p, Mode: "open",
		N: prm.Ops, M: prm.Keys, S: prm.Buckets, B: prm.GetPct,
		PrefetchDepth:   o.PrefetchDepth,
		Servers:         servers,
		ServerShards:    shards,
		ManagerShards:   mgrShards,
		ManagerReplicas: replicas,
		Spans:           prm.UseSpans,
		NoCoalesce:      o.NoRecordCoalesce,

		Ops:    res.Ops,
		P50Ns:  int64(res.P50),
		P99Ns:  int64(res.P99),
		P999Ns: int64(res.P999),
	}
	o.fillCommon(&pt, res.Run, v, base)
	return pt, nil
}

// MeasurePagerank boots a fresh Samhita runtime, runs the irregular
// PageRank kernel and returns the measured point, after checking the
// distributed result against the sequential reference bit for bit.
// Parameters ride in the micro fields: N=Iters, M=Vertices, S=AvgDeg;
// Mode is "pull".
func (o Options) MeasurePagerank(p int, prm pagerank.Params) (MicroPoint, error) {
	prm = prm.WithDefaults()
	v, err := o.newSamhita()
	if err != nil {
		return MicroPoint{}, err
	}
	defer v.Close()
	base := tierBaseline(v)
	res, err := pagerank.Run(v, p, prm)
	if err != nil {
		return MicroPoint{}, err
	}
	if _, want := pagerank.Reference(p, prm); res.Checksum != want {
		return MicroPoint{}, fmt.Errorf("pagerank checksum %v != sequential reference %v", res.Checksum, want)
	}
	servers, shards, mgrShards, replicas := o.topology()
	pt := MicroPoint{
		Workload: "pagerank", P: p, Mode: "pull",
		N: prm.Iters, M: prm.Vertices, S: prm.AvgDeg,
		PrefetchDepth:   o.PrefetchDepth,
		Servers:         servers,
		ServerShards:    shards,
		ManagerShards:   mgrShards,
		ManagerReplicas: replicas,
		Spans:           prm.UseSpans,
		NoCoalesce:      o.NoRecordCoalesce,
	}
	o.fillCommon(&pt, res.Run, v, base)
	return pt, nil
}

// MeasureForkStorm boots a fresh Samhita runtime, runs the fork-storm
// workload (copy-on-write address-space forks off one sealed snapshot,
// each verified through sealed reads and a private CoW write) and
// returns the measured point. Parameters ride in the micro fields:
// N=Forks, M=ImageBytes, S=ReadsPerFork, B=WritesPerFork; Mode is
// "storm". The headline numbers are the fork-to-first-op quantiles
// (ForkP50/99/999Ns) against the eager-copy ColdStartNs baseline.
func (o Options) MeasureForkStorm(p int, prm forkstorm.Params) (MicroPoint, error) {
	prm = prm.WithDefaults()
	v, err := o.newSamhita()
	if err != nil {
		return MicroPoint{}, err
	}
	defer v.Close()
	base := tierBaseline(v)
	res, err := forkstorm.Run(v, p, prm)
	if err != nil {
		return MicroPoint{}, err
	}
	if res.Errors > 0 {
		return MicroPoint{}, fmt.Errorf("forkstorm: %d fork iterations errored", res.Errors)
	}
	servers, shards, mgrShards, replicas := o.topology()
	pt := MicroPoint{
		Workload: "forkstorm", P: p, Mode: "storm",
		N: prm.Forks, M: prm.ImageBytes, S: prm.ReadsPerFork, B: prm.WritesPerFork,
		PrefetchDepth:   o.PrefetchDepth,
		Servers:         servers,
		ServerShards:    shards,
		ManagerShards:   mgrShards,
		ManagerReplicas: replicas,
		NoCoalesce:      o.NoRecordCoalesce,

		Forks:       res.Forks,
		ForkP50Ns:   int64(res.P50),
		ForkP99Ns:   int64(res.P99),
		ForkP999Ns:  int64(res.P999),
		ColdStartNs: int64(res.ColdStartNs),
	}
	o.fillCommon(&pt, res.Run, v, base)
	return pt, nil
}

// workloadPoints measures the serving-scale workloads at the options'
// shard counts: the KV service on the element and span planes, and
// PageRank on both planes.
func workloadPoints(o Options) ([]MicroPoint, error) {
	var pts []MicroPoint
	_, sh, mgr, _ := o.topology()
	po := o
	po.ServerShards = sh
	po.ManagerShards = mgr
	po.ManagerReplicas = 1
	// The legacy workload points always run untiered so their keys and
	// numbers stay stable; the tiered twins are separate points.
	po.HotBytes, po.ColdPreset = 0, ""
	for _, spans := range []bool{false, true} {
		kvPt, err := po.MeasureKV(16, kv.Params{UseSpans: spans})
		if err != nil {
			return nil, err
		}
		pts = append(pts, kvPt)
		prPt, err := po.MeasurePagerank(16, pagerank.Params{UseSpans: spans})
		if err != nil {
			return nil, err
		}
		pts = append(pts, prPt)
	}
	return pts, nil
}

// tierForkPoints measures the tiered-store and fork-storm additions
// when the options enable them: a tiered twin of the strided micro
// point (the out-of-core penalty under ~HotBytes of hot budget, gated
// like every other point plus the hot-hit-rate floor), and the
// fork-storm workload (o.Forks copy-on-write forks; tiered too when a
// hot budget is set, so the storm reads sealed frames out of the cold
// tier).
func tierForkPoints(o Options) ([]MicroPoint, error) {
	var pts []MicroPoint
	_, sh, mgr, _ := o.topology()
	po := o
	po.ServerShards = sh
	po.ManagerShards = mgr
	po.ManagerReplicas = 1
	if o.HotBytes > 0 {
		mp, err := po.MeasureMicro(16, kernels.MicroParams{N: o.N, M: o.MidM, S: o.MidS, B: o.B, Mode: kernels.AllocStrided})
		if err != nil {
			return nil, fmt.Errorf("tiered micro: %w", err)
		}
		pts = append(pts, mp)
	}
	if o.Forks > 0 {
		fp, err := po.MeasureForkStorm(16, forkstorm.Params{Forks: o.Forks})
		if err != nil {
			return nil, fmt.Errorf("forkstorm: %w", err)
		}
		pts = append(pts, fp)
	}
	return pts, nil
}

// sweepPoints measures the population sweep: for each requested thread
// count (256, 1024, ...) the micro kernel and the KV service run on a
// multi-server topology, a server-sharded one, and a replicated-manager
// one, so the document records how the sync and serving planes scale
// with population across the paper's deployment shapes.
func sweepPoints(o Options) ([]MicroPoint, error) {
	type topo struct {
		servers, shards, mgrShards, replicas int
	}
	topos := []topo{
		{servers: 4, shards: 1, mgrShards: 4, replicas: 1}, // multi-server
		{servers: 4, shards: 4, mgrShards: 4, replicas: 1}, // + server shards
		{servers: 4, shards: 4, mgrShards: 4, replicas: 3}, // + replicated manager
	}
	var pts []MicroPoint
	for _, p := range o.SweepPops {
		for _, tp := range topos {
			po := o
			po.NumServers = tp.servers
			po.ServerShards = tp.shards
			po.ManagerShards = tp.mgrShards
			po.ManagerReplicas = tp.replicas
			// The sweep's legacy points run untiered (stable keys); the
			// tiered sweep point below is separate.
			po.HotBytes, po.ColdPreset = 0, ""
			// Small fixed kernel parameters: the sweep measures how the
			// population scales the sync plane, not the compute plane.
			mp, err := po.MeasureMicro(p, kernels.MicroParams{N: 3, M: 5, S: 1, B: 64, Mode: kernels.AllocStrided})
			if err != nil {
				return nil, fmt.Errorf("sweep micro p=%d: %w", p, err)
			}
			pts = append(pts, mp)
			// The KV sweep holds the keyspace fixed while the client
			// population grows, so contention per bucket rises with P.
			kp, err := po.MeasureKV(p, kv.Params{Buckets: 128, Keys: 2048, Ops: 8, UseSpans: true})
			if err != nil {
				return nil, fmt.Errorf("sweep kv p=%d: %w", p, err)
			}
			pts = append(pts, kp)
		}
		if o.HotBytes > 0 {
			// Tiered sweep point: the same micro kernel on the sharded
			// multi-server topology with the stores under the hot budget,
			// so the document records the out-of-core penalty at
			// population scale, not just at P=16.
			po := o
			po.NumServers = 4
			po.ServerShards = 4
			po.ManagerShards = 4
			po.ManagerReplicas = 1
			mp, err := po.MeasureMicro(p, kernels.MicroParams{N: 3, M: 5, S: 1, B: 64, Mode: kernels.AllocStrided})
			if err != nil {
				return nil, fmt.Errorf("sweep tiered micro p=%d: %w", p, err)
			}
			pts = append(pts, mp)
		}
	}
	return pts, nil
}

// kvQuickParams is the reduced KV configuration used by tests.
func kvQuickParams() kv.Params {
	return kv.Params{Buckets: 16, Keys: 128, Ops: 32}.WithDefaults()
}
