package bench

import (
	"fmt"

	"repro/internal/apps/kernels"
	"repro/internal/stats"
	"repro/internal/vm"
)

// runMicro executes one micro-benchmark configuration on a fresh
// backend instance and returns the run statistics.
func (o Options) runMicroSamhita(p int, prm kernels.MicroParams) (*stats.Run, error) {
	smh, err := o.newSamhita()
	if err != nil {
		return nil, err
	}
	defer smh.Close()
	res, err := kernels.RunMicro(smh, p, prm)
	if err != nil {
		return nil, err
	}
	o.aggregate(res.Run)
	return res.Run, nil
}

// aggregate folds a Samhita run's per-thread counters into the shared
// sweep-wide collector, when one is configured.
func (o Options) aggregate(r *stats.Run) {
	if o.Agg != nil {
		o.Agg.Threads = append(o.Agg.Threads, r.Threads...)
	}
}

func (o Options) runMicroPthreads(p int, prm kernels.MicroParams) (*stats.Run, error) {
	pth := o.newPthreads()
	defer pth.Close()
	res, err := kernels.RunMicro(pth, p, prm)
	if err != nil {
		return nil, err
	}
	return res.Run, nil
}

func (o Options) microParams(m, s int, mode kernels.AllocMode) kernels.MicroParams {
	return kernels.MicroParams{N: o.N, M: m, S: s, B: o.B, Mode: mode}
}

// pthreads1ThreadCompute is the normalization denominator the paper
// uses for Figures 3-5: the equivalent 1-thread Pthreads compute time.
func (o Options) pthreads1ThreadCompute(prm kernels.MicroParams) (float64, error) {
	prm.Mode = kernels.AllocLocal // 1-thread: modes are equivalent
	run, err := o.runMicroPthreads(1, prm)
	if err != nil {
		return 0, err
	}
	return perThreadCompute(run), nil
}

// normalizedComputeFigure builds Figures 3, 4 and 5: normalized compute
// time vs cores for Pthreads (up to 8) and Samhita (up to 32), one
// curve pair per M in the sweep, at the given allocation mode.
func (o Options) normalizedComputeFigure(id int, mode kernels.AllocMode) (*Figure, error) {
	f := &Figure{
		ID:     fmt.Sprintf("fig%02d", id),
		Title:  fmt.Sprintf("Normalized compute time vs. cores, %s allocation", mode),
		XLabel: "cores",
		YLabel: "compute time (normalized to 1-thread pthreads)",
	}
	for _, m := range o.Ms {
		prm := o.microParams(m, o.MidS, mode)
		denom, err := o.pthreads1ThreadCompute(prm)
		if err != nil {
			return nil, err
		}
		pth := Series{Label: fmt.Sprintf("pth, M=%d", m)}
		for _, p := range o.PthCores {
			run, err := o.runMicroPthreads(p, prm)
			if err != nil {
				return nil, err
			}
			pth.Points = append(pth.Points, Point{X: float64(p), Y: perThreadCompute(run) / denom})
		}
		smh := Series{Label: fmt.Sprintf("smh, M=%d", m)}
		for _, p := range o.SmhCores {
			run, err := o.runMicroSamhita(p, prm)
			if err != nil {
				return nil, err
			}
			smh.Points = append(smh.Points, Point{X: float64(p), Y: perThreadCompute(run) / denom})
		}
		f.Series = append(f.Series, pth, smh)
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("N=%d B=%d S=%d; compute time is per thread (max), normalized to the 1-thread pthreads run", o.N, o.B, o.MidS))
	return f, nil
}

// Figure3 — normalized compute time vs cores, local allocation.
func Figure3(o Options) (*Figure, error) {
	return o.normalizedComputeFigure(3, kernels.AllocLocal)
}

// Figure4 — normalized compute time vs cores, global allocation.
func Figure4(o Options) (*Figure, error) {
	return o.normalizedComputeFigure(4, kernels.AllocGlobal)
}

// Figure5 — normalized compute time vs cores, global strided access.
func Figure5(o Options) (*Figure, error) {
	return o.normalizedComputeFigure(5, kernels.AllocStrided)
}

// computeVsCoresFigure builds Figures 6, 7 and 8: Samhita compute time
// (seconds) vs cores, one curve per S, at fixed M.
func (o Options) computeVsCoresFigure(id int, mode kernels.AllocMode) (*Figure, error) {
	f := &Figure{
		ID:     fmt.Sprintf("fig%02d", id),
		Title:  fmt.Sprintf("Compute time vs. cores, %s allocation, varying S", mode),
		XLabel: "cores",
		YLabel: "compute time (s)",
	}
	for _, s := range o.Ss {
		prm := o.microParams(o.MidM, s, mode)
		ser := Series{Label: fmt.Sprintf("S=%d", s)}
		for _, p := range o.SmhCores {
			run, err := o.runMicroSamhita(p, prm)
			if err != nil {
				return nil, err
			}
			ser.Points = append(ser.Points, Point{X: float64(p), Y: perThreadCompute(run)})
		}
		f.Series = append(f.Series, ser)
	}
	f.Notes = append(f.Notes, fmt.Sprintf("Samhita only; N=%d B=%d M=%d", o.N, o.B, o.MidM))
	return f, nil
}

// Figure6 — compute time vs cores for local allocation, S sweep.
func Figure6(o Options) (*Figure, error) {
	return o.computeVsCoresFigure(6, kernels.AllocLocal)
}

// Figure7 — compute time vs cores for global allocation, S sweep.
func Figure7(o Options) (*Figure, error) {
	return o.computeVsCoresFigure(7, kernels.AllocGlobal)
}

// Figure8 — compute time vs cores for global strided access, S sweep.
func Figure8(o Options) (*Figure, error) {
	return o.computeVsCoresFigure(8, kernels.AllocStrided)
}

// vsOrdinaryRegionFigure builds Figures 9 and 10: a metric vs S at the
// fixed thread count, one curve per allocation mode.
func (o Options) vsOrdinaryRegionFigure(id int, metric func(*stats.Run) float64, ylabel, what string) (*Figure, error) {
	f := &Figure{
		ID:     fmt.Sprintf("fig%02d", id),
		Title:  fmt.Sprintf("%s vs. ordinary region size (S), P=%d", what, o.FixedP),
		XLabel: "rows of data (S)",
		YLabel: ylabel,
	}
	for _, mode := range kernels.AllModes {
		ser := Series{Label: mode.String()}
		for _, s := range o.Ss {
			run, err := o.runMicroSamhita(o.FixedP, o.microParams(o.MidM, s, mode))
			if err != nil {
				return nil, err
			}
			ser.Points = append(ser.Points, Point{X: float64(s), Y: metric(run)})
		}
		f.Series = append(f.Series, ser)
	}
	f.Notes = append(f.Notes, fmt.Sprintf("Samhita only; N=%d B=%d M=%d P=%d", o.N, o.B, o.MidM, o.FixedP))
	return f, nil
}

// Figure9 — compute time vs S at P=16 for the three modes.
func Figure9(o Options) (*Figure, error) {
	return o.vsOrdinaryRegionFigure(9, perThreadCompute, "compute time (s)", "Compute time")
}

// Figure10 — synchronization time vs S at P=16 for the three modes.
func Figure10(o Options) (*Figure, error) {
	return o.vsOrdinaryRegionFigure(10, perThreadSync, "synchronization time (s)", "Synchronization time")
}

// Figure11 — synchronization time (log scale in the paper) vs cores for
// Pthreads and Samhita under the three modes, M and S fixed.
func Figure11(o Options) (*Figure, error) {
	f := &Figure{
		ID:     "fig11",
		Title:  "Synchronization time vs. cores (log scale), pthreads vs samhita",
		XLabel: "cores",
		YLabel: "synchronization time (s)",
	}
	for _, mode := range kernels.AllModes {
		prm := o.microParams(o.MidM, o.MidS, mode)
		pth := Series{Label: "pth_" + mode.String()}
		for _, p := range o.PthCores {
			run, err := o.runMicroPthreads(p, prm)
			if err != nil {
				return nil, err
			}
			pth.Points = append(pth.Points, Point{X: float64(p), Y: perThreadSync(run)})
		}
		smh := Series{Label: "smh_" + mode.String()}
		for _, p := range o.SmhCores {
			run, err := o.runMicroSamhita(p, prm)
			if err != nil {
				return nil, err
			}
			smh.Points = append(smh.Points, Point{X: float64(p), Y: perThreadSync(run)})
		}
		f.Series = append(f.Series, pth, smh)
	}
	f.Notes = append(f.Notes, fmt.Sprintf("N=%d B=%d M=%d S=%d; plot on a log axis", o.N, o.B, o.MidM, o.MidS))
	return f, nil
}

// speedupFigure builds Figures 12 and 13: strong-scaling speedup of
// both backends relative to the 1-core Pthreads total time.
func (o Options) speedupFigure(id int, name string,
	run func(v vm.VM, p int) (*stats.Run, error)) (*Figure, error) {
	f := &Figure{
		ID:     fmt.Sprintf("fig%02d", id),
		Title:  fmt.Sprintf("%s speedup vs. cores (relative to 1-core pthreads)", name),
		XLabel: "cores",
		YLabel: "speed-up",
	}
	pthVM := o.newPthreads()
	base, err := run(pthVM, 1)
	pthVM.Close()
	if err != nil {
		return nil, err
	}
	baseT := seconds(base.MaxTotalTime())

	pth := Series{Label: "pthreads"}
	for _, p := range o.PthCores {
		v := o.newPthreads()
		r, err := run(v, p)
		v.Close()
		if err != nil {
			return nil, err
		}
		pth.Points = append(pth.Points, Point{X: float64(p), Y: baseT / seconds(r.MaxTotalTime())})
	}
	smh := Series{Label: "samhita"}
	for _, p := range o.SmhCores {
		v, err := o.newSamhita()
		if err != nil {
			return nil, err
		}
		r, err := run(v, p)
		v.Close()
		if err != nil {
			return nil, err
		}
		o.aggregate(r)
		smh.Points = append(smh.Points, Point{X: float64(p), Y: baseT / seconds(r.MaxTotalTime())})
	}
	f.Series = append(f.Series, pth, smh)
	return f, nil
}

// Figure12 — Jacobi strong-scaling speedup.
func Figure12(o Options) (*Figure, error) {
	prm := kernels.JacobiParams{N: o.JacobiN, Iters: o.JacobiIters}
	f, err := o.speedupFigure(12, "Jacobi", func(v vm.VM, p int) (*stats.Run, error) {
		res, err := kernels.RunJacobi(v, p, prm)
		if err != nil {
			return nil, err
		}
		return res.Run, nil
	})
	if err != nil {
		return nil, err
	}
	f.Notes = append(f.Notes, fmt.Sprintf("grid %dx%d, %d sweeps, 1 mutex + 3 barriers per iteration", o.JacobiN, o.JacobiN, o.JacobiIters))
	return f, nil
}

// Figure13 — molecular dynamics strong-scaling speedup.
func Figure13(o Options) (*Figure, error) {
	prm := kernels.MDParams{NParticles: o.MDParticles, Steps: o.MDSteps, Dt: 1e-4, Mass: 1}
	f, err := o.speedupFigure(13, "Molecular dynamics", func(v vm.VM, p int) (*stats.Run, error) {
		res, err := kernels.RunMD(v, p, prm)
		if err != nil {
			return nil, err
		}
		return res.Run, nil
	})
	if err != nil {
		return nil, err
	}
	f.Notes = append(f.Notes, fmt.Sprintf("%d particles, %d velocity-Verlet steps, O(n) work per particle", o.MDParticles, o.MDSteps))
	return f, nil
}

// Figures maps figure numbers to their runners.
var Figures = map[int]func(Options) (*Figure, error){
	3: Figure3, 4: Figure4, 5: Figure5,
	6: Figure6, 7: Figure7, 8: Figure8,
	9: Figure9, 10: Figure10, 11: Figure11,
	12: Figure12, 13: Figure13,
}

// FigureIDs lists the available figure numbers in order.
func FigureIDs() []int {
	return []int{3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
}

// Run executes one figure by number.
func Run(id int, o Options) (*Figure, error) {
	fn, ok := Figures[id]
	if !ok {
		return nil, fmt.Errorf("bench: no figure %d (have 3-13)", id)
	}
	return fn(o)
}
