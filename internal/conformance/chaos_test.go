package conformance

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/proto"
	"repro/internal/scl"
	"repro/internal/vm"
)

// chaosSlotVal is the deterministic value thread t writes to its slot s
// in round r.
func chaosSlotVal(t, s, r int) int64 {
	v := uint64(t+1)*0x9E3779B97F4A7C15 + uint64(s)*0xBF58476D1CE4E5B9 + uint64(r)*0x94D049BB133111EB
	v ^= v >> 31
	return int64(v)
}

// waitGoroutines polls until the goroutine count drops back to at most
// want, failing the test if leaked goroutines persist.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d live, want <= %d\n%s", n, want, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosKillLockHolderAndMemserver is the liveness acceptance test:
// mid-run, the fault injector kills (a) a compute thread that has held a
// mutex since before the first barrier and (b) one of the two primary
// memory servers — on top of a background packet-drop rate. The
// surviving threads must converge with zero data divergence:
//
//   - the victim's lock is lease-reclaimed, so the survivors' parked
//     Lock calls are granted instead of hanging;
//   - every barrier recomputes its count down to the live membership;
//   - fetches and flushes aimed at the dead server fail over to its
//     warm standby, which holds the replicated diff stream;
//   - each survivor cross-checks a neighbour's slots and the
//     lock-protected counter, so a lost or stale page anywhere fails
//     the test.
//
// The run as a whole reports an error (the victim thread died), but the
// shared state the survivors observe must be exactly sequential.
//
// The scenario runs twice: with the historical single-event-loop
// servers and with 4 page shards per server, proving the sharded
// dispatcher holds the same liveness and consistency guarantees
// (per-shard replication streams, standby promotion, parked-fetch
// failure) under kills and packet loss.
func TestChaosKillLockHolderAndMemserver(t *testing.T) {
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			chaosKillLockHolderAndMemserver(t, shards)
		})
	}
}

func chaosKillLockHolderAndMemserver(t *testing.T, shards int) {
	const (
		p        = 4
		rounds   = 6
		slotsPer = 2048 // 4 pages of int64 per thread: forces striping + eviction
	)
	victim := p - 1
	survivors := p - 1

	goroutines := runtime.NumGoroutine()

	cfg := core.DefaultConfig()
	cfg.Geo.NumServers = 2
	cfg.Geo.LinePages = 1
	cfg.ServerShards = shards
	// The manager homes shard alongside the servers: the shards=4 leg
	// proves reclamation (lease fencing, barrier recount, parked-lock
	// grants) holds when sync state is spread across worker-mode homes.
	cfg.ManagerShards = shards
	cfg.CacheLines = 4 // far below the working set: constant fetch/evict traffic
	// The lease must tolerate race-detector and CI scheduling jitter: a
	// live thread whose heartbeat goroutine starves past the lease gets
	// fenced as dead, which is correct fencing behaviour but not the
	// scenario under test.
	cfg.Liveness = &core.LivenessConfig{
		HeartbeatEvery: 2 * time.Millisecond,
		MissedBeats:    25, // 50ms lease
		Standby:        true,
	}
	cfg.Retry = &scl.RetryPolicy{
		MaxAttempts: 8,
		Backoff:     50 * time.Microsecond,
		BackoffCap:  time.Millisecond,
	}
	inj := faultnet.New(faultnet.Config{
		Seed:     421,
		DropProb: 0.05,
		Kills: []faultnet.Kill{
			// The victim holds the mutex from before the first barrier
			// until death, so by its 60th outbound message (it spins on
			// a cache-thrashing write loop) it is a lock-holding
			// casualty.
			{Node: core.ThreadNode(victim + 1), After: 60, FromNode: true},
			// The second memory server dies once real page traffic has
			// reached it.
			{Node: core.ServerNode(1), After: 30},
		},
	})
	cfg.Faults = inj
	rt, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	mu := rt.NewMutex()
	bar := rt.NewBarrier(p)
	var base atomic.Uint64
	checks := make(chan string, 1024)
	report := func(format string, args ...any) {
		select {
		case checks <- fmt.Sprintf(format, args...):
		default:
		}
	}

	_, runErr := rt.Run(p, func(th vm.Thread) {
		if th.ID() == victim {
			// Thread-local arena twice the cache size: the spin loop
			// below never stops missing.
			buf := th.Malloc(8 * 4096)
			mu.Lock(th)
			bar.Wait(th)
			for i := 0; ; i++ {
				th.WriteInt64(buf+vm.Addr((i%4096)*8), int64(i))
			}
		}
		if th.ID() == 0 {
			base.Store(uint64(th.GlobalAlloc((p*slotsPer + 1) * 8)))
		}
		bar.Wait(th)
		a := vm.Addr(base.Load())
		slots := func(tid, s int) vm.Addr { return a + vm.Addr((tid*slotsPer+s)*8) }
		counter := a + vm.Addr(p*slotsPer*8)
		neighbour := (th.ID() + 1) % survivors

		for r := 0; r < rounds; r++ {
			for s := 0; s < slotsPer; s++ {
				th.WriteInt64(slots(th.ID(), s), chaosSlotVal(th.ID(), s, r))
			}
			mu.Lock(th)
			th.WriteInt64(counter, th.ReadInt64(counter)+1)
			mu.Unlock(th)
			bar.Wait(th)
			// The previous round's neighbour values are stable now.
			for s := 0; s < slotsPer; s += 64 {
				want := chaosSlotVal(neighbour, s, r)
				if got := th.ReadInt64(slots(neighbour, s)); got != want {
					report("thread %d round %d: neighbour %d slot %d = %d, want %d",
						th.ID(), r, neighbour, s, got, want)
				}
			}
			bar.Wait(th)
		}
		if got, want := th.ReadInt64(counter), int64(survivors*rounds); got != want {
			report("thread %d: counter = %d, want %d", th.ID(), got, want)
		}
	})

	// The victim died, so the run as a whole must report it.
	if runErr == nil {
		t.Error("run reported no error though a thread was killed")
	} else {
		t.Logf("run error (expected): %v", runErr)
	}
	close(checks)
	for c := range checks {
		t.Errorf("divergence: %s", c)
	}

	live := rt.Liveness()
	if live.ThreadsDead.Load() == 0 {
		t.Error("no thread was declared dead")
	}
	if live.LocksReclaimed.Load() == 0 {
		t.Error("the victim's lock was never reclaimed")
	}
	if live.BarriersRecomputed.Load() == 0 {
		t.Error("no barrier round completed at a recomputed count")
	}
	if live.Failovers.Load() == 0 || live.Promotions.Load() == 0 {
		t.Errorf("no failover happened (failovers=%d promotions=%d) — the server kill was vacuous",
			live.Failovers.Load(), live.Promotions.Load())
	}
	if live.ReplBatches.Load() == 0 {
		t.Error("no diff batches were replicated to standbys")
	}
	nst := rt.NetStats()
	if nst.InjectedKills.Load() < 2 {
		t.Errorf("injected kills = %d, want 2", nst.InjectedKills.Load())
	}
	if err := rt.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	waitGoroutines(t, goroutines+2)
}

// TestChaosKillManagerFailsTyped kills the central manager mid-run: the
// run must fail promptly with an error chain carrying proto.ErrPeerDied
// — parked waiters are completed with the typed failure and new calls
// exhaust their retries against the dead node — never a hang.
func TestChaosKillManagerFailsTyped(t *testing.T) {
	goroutines := runtime.NumGoroutine()

	cfg := core.DefaultConfig()
	cfg.Liveness = &core.LivenessConfig{
		HeartbeatEvery: time.Millisecond,
		MissedBeats:    3,
	}
	cfg.Retry = &scl.RetryPolicy{
		MaxAttempts: 6,
		Backoff:     50 * time.Microsecond,
		BackoffCap:  time.Millisecond,
	}
	inj := faultnet.New(faultnet.Config{
		Seed:  7,
		Kills: []faultnet.Kill{{Node: core.ManagerNode(), After: 40}},
	})
	cfg.Faults = inj
	rt, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	mu := rt.NewMutex()
	bar := rt.NewBarrier(2)
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := rt.Run(2, func(th vm.Thread) {
			a := th.Malloc(64)
			for i := 0; ; i++ {
				mu.Lock(th)
				th.WriteInt64(a, int64(i))
				mu.Unlock(th)
				bar.Wait(th)
			}
		})
		done <- err
	}()

	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run still blocked 30s after the manager was killed")
	}
	if err == nil {
		t.Fatal("run succeeded though the manager was killed")
	}
	if !errors.Is(err, proto.ErrPeerDied) {
		t.Fatalf("run error does not carry proto.ErrPeerDied: %v", err)
	}
	t.Logf("run failed typed after %v: %v", time.Since(start), err)
	if err := rt.Close(); err != nil {
		t.Logf("close after manager death: %v", err)
	}
	waitGoroutines(t, goroutines+2)
}
