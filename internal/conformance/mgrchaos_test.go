package conformance

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/proto"
	"repro/internal/scl"
	"repro/internal/vm"
)

// TestReplicatedManagerCleanDeterminism runs the model checker with the
// manager replicated three ways on a clean (sequenced) fabric. With no
// faults configured the replication log rides the same deterministic
// fabric as everything else, so two runs at the same seed must produce
// bit-identical per-thread virtual times and event counters — the
// replicas=3 analogue of the kernel determinism regression — and the
// observed values must match the sequential model exactly.
func TestReplicatedManagerCleanDeterminism(t *testing.T) {
	p := Program{Seed: 42, Threads: 4, Rounds: 4, Slots: 32, Accums: 3, Locks: 2, ReadsPerRound: 4}
	exec := func() *core.Runtime {
		cfg := core.DefaultConfig()
		cfg.ManagerReplicas = 3
		rt, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}

	rt1 := exec()
	defer rt1.Close()
	viols, err := Run(rt1, p)
	if err != nil {
		t.Fatalf("replicated run: %v", err)
	}
	for _, v := range viols {
		t.Errorf("replicated manager diverged from sequential model: %s", v)
	}
	if got := len(rt1.Managers()); got != 3 {
		t.Fatalf("runtime booted %d manager replicas, want 3", got)
	}

	rt2 := exec()
	defer rt2.Close()
	if _, err := Run(rt2, p); err != nil {
		t.Fatalf("second replicated run: %v", err)
	}

	// Re-run the same program on fresh runtimes and compare the stats
	// the vm layer records. Program Run mutates no external state, so
	// per-run virtual times are the determinism fingerprint; they are
	// compared via a third and fourth execution below that return them.
	fp := func() [8]int64 {
		cfg := core.DefaultConfig()
		cfg.ManagerReplicas = 3
		rt, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		bar := rt.NewBarrier(p.Threads)
		mu := rt.NewMutex()
		var base atomic.Uint64
		var out [8]int64
		res, err := rt.Run(p.Threads, func(th vm.Thread) {
			if th.ID() == 0 {
				base.Store(uint64(th.GlobalAlloc(p.Threads * 8)))
			}
			bar.Wait(th)
			a := vm.Addr(base.Load()) + vm.Addr(th.ID()*8)
			for r := 0; r < p.Rounds; r++ {
				mu.Lock(th)
				th.WriteInt64(a, int64(r))
				mu.Unlock(th)
				bar.Wait(th)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Threads {
			out[i] = int64(res.Threads[i].TotalTime())
		}
		return out
	}
	if a, b := fp(), fp(); a != b {
		t.Errorf("replicas=3 virtual times differ between identical runs:\n run1: %v\n run2: %v", a, b)
	}
}

// TestReplicatedHandoffCleanKeepsProperties re-runs the peer-to-peer
// handoff property test with the manager replicated: on a clean
// sequenced fabric with several sync homes the contended lock must
// still take the holder-to-waiter fast path, every handoff must have a
// matching successor announcement, and grant conservation must hold on
// the leader — replication must not double-apply or swallow grants.
func TestReplicatedHandoffCleanKeepsProperties(t *testing.T) {
	const (
		p     = 4
		iters = 64
	)
	cfg := core.DefaultConfig()
	cfg.ManagerShards = 4
	cfg.ManagerReplicas = 3
	rt, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	mu := rt.NewMutex()
	bar := rt.NewBarrier(p)
	var base atomic.Uint64
	if _, err := rt.Run(p, func(th vm.Thread) {
		if th.ID() == 0 {
			base.Store(uint64(th.GlobalAlloc(2 * 8)))
		}
		bar.Wait(th)
		counter := vm.Addr(base.Load())
		shadow := counter + 8
		for i := 0; i < iters; i++ {
			mu.Lock(th)
			v := th.ReadInt64(counter) + 1
			th.WriteInt64(counter, v)
			th.WriteInt64(shadow, v*3)
			mu.Unlock(th)
		}
		bar.Wait(th)
		if got, want := th.ReadInt64(counter), int64(p*iters); got != want {
			t.Errorf("thread %d: counter = %d, want %d", th.ID(), got, want)
		}
	}); err != nil {
		t.Fatal(err)
	}

	ms := rt.Manager().Stats()
	if ms.Handoffs.Load() == 0 {
		t.Error("no peer-to-peer handoffs under the replicated manager")
	}
	if ms.Handoffs.Load() > ms.NextWaiters.Load() {
		t.Errorf("handoffs (%d) exceed successor announcements (%d)",
			ms.Handoffs.Load(), ms.NextWaiters.Load())
	}
	if got, want := ms.LockGrants.Load(), int64(p*iters); got != want {
		t.Errorf("LockGrants = %d, want %d (replication double-applied or lost grants)", got, want)
	}
}

// TestChaosKillManagerLeaderMasked is the kill-survivability acceptance
// test: with three manager replicas, the fault injector crashes the
// leader at a protocol-specific moment — mid-lock-handoff (the Nth
// LockReq), mid-barrier (the Nth BarrierReq), or mid-notice-board-fill
// (the Nth UnlockReq, which carries the closing interval's write
// notices). The run must complete with NO error and ZERO divergence
// from the sequential model at the same seed: a standby replica takes
// over from the replicated log, clients redirect, and the duplicate
// suppression on re-sent lock/unlock/barrier requests keeps every
// mutation exactly-once.
func TestChaosKillManagerLeaderMasked(t *testing.T) {
	scenarios := []struct {
		name  string
		kind  proto.Kind
		after int
	}{
		{"mid-lock", proto.KLockReq, 5},
		{"mid-barrier", proto.KBarrierReq, 6},
		{"mid-board-fill", proto.KUnlockReq, 5},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			goroutines := runtime.NumGoroutine()

			p := Program{Seed: 7, Threads: 4, Rounds: 6, Slots: 48, Accums: 4, Locks: 2, ReadsPerRound: 4}
			cfg := core.DefaultConfig()
			cfg.ManagerShards = 2
			cfg.ManagerReplicas = 3
			// Generous membership lease: the failover stall must not fence
			// live threads whose heartbeats bounce off the dead leader.
			cfg.Liveness = &core.LivenessConfig{
				HeartbeatEvery: 2 * time.Millisecond,
				MissedBeats:    25,
			}
			cfg.Retry = &scl.RetryPolicy{
				MaxAttempts: 8,
				Backoff:     50 * time.Microsecond,
				BackoffCap:  time.Millisecond,
			}
			inj := faultnet.New(faultnet.Config{
				Seed:  int64(311 + sc.after),
				Kills: []faultnet.Kill{{Node: core.ManagerNode(), Kind: sc.kind, After: sc.after}},
			})
			cfg.Faults = inj
			rt, err := core.New(cfg)
			if err != nil {
				t.Fatal(err)
			}

			viols, runErr := Run(rt, p)
			if runErr != nil {
				t.Fatalf("leader kill leaked to the program: %v", runErr)
			}
			for _, v := range viols {
				t.Errorf("divergence from sequential model after failover: %s", v)
			}

			nst := rt.NetStats()
			if nst.InjectedKills.Load() == 0 {
				t.Fatalf("leader never killed (kind %v after %d) — scenario is vacuous", sc.kind, sc.after)
			}
			live := rt.Liveness()
			if live.MgrFailovers.Load() == 0 {
				t.Error("no client-driven manager failover recorded")
			}
			if live.MgrElections.Load() == 0 {
				t.Error("no replica promotion recorded")
			}
			if live.MgrReplEntries.Load() == 0 {
				t.Error("replication log recorded no entries — failover had no state to recover")
			}
			if err := rt.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
			waitGoroutines(t, goroutines+2)
		})
	}
}

// TestHandoffConservationAcrossFailover extends the lock-handoff
// property test across a leader kill: four threads hammer one mutex
// through four sync homes while the leader dies mid-run. Every
// lock-protected increment must land exactly once (counter and shadow
// exact), the promoted replica's grant count must equal the total
// acquisitions — grants applied from the log plus live grants, with
// re-sent requests deduplicated — and the handoff/successor invariant
// must hold on every replica.
func TestHandoffConservationAcrossFailover(t *testing.T) {
	const (
		p     = 4
		iters = 64
	)
	goroutines := runtime.NumGoroutine()

	cfg := core.DefaultConfig()
	cfg.ManagerShards = 4
	cfg.ManagerReplicas = 3
	cfg.Liveness = &core.LivenessConfig{
		HeartbeatEvery: 2 * time.Millisecond,
		MissedBeats:    25,
	}
	cfg.Retry = &scl.RetryPolicy{
		MaxAttempts: 8,
		Backoff:     50 * time.Microsecond,
		BackoffCap:  time.Millisecond,
	}
	inj := faultnet.New(faultnet.Config{
		Seed:  977,
		Kills: []faultnet.Kill{{Node: core.ManagerNode(), Kind: proto.KLockReq, After: 40}},
	})
	cfg.Faults = inj
	rt, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	mu := rt.NewMutex()
	bar := rt.NewBarrier(p)
	var base atomic.Uint64
	checks := make(chan string, 64)
	report := func(format string, args ...any) {
		select {
		case checks <- fmt.Sprintf(format, args...):
		default:
		}
	}
	_, runErr := rt.Run(p, func(th vm.Thread) {
		if th.ID() == 0 {
			base.Store(uint64(th.GlobalAlloc(2 * 8)))
		}
		bar.Wait(th)
		counter := vm.Addr(base.Load())
		shadow := counter + 8
		for i := 0; i < iters; i++ {
			mu.Lock(th)
			v := th.ReadInt64(counter) + 1
			th.WriteInt64(counter, v)
			th.WriteInt64(shadow, v*3)
			mu.Unlock(th)
		}
		bar.Wait(th)
		if got, want := th.ReadInt64(counter), int64(p*iters); got != want {
			report("thread %d: counter = %d, want %d", th.ID(), got, want)
		}
		if got, want := th.ReadInt64(shadow), int64(p*iters*3); got != want {
			report("thread %d: shadow = %d, want %d", th.ID(), got, want)
		}
	})
	if runErr != nil {
		t.Fatalf("leader kill leaked to the program: %v", runErr)
	}
	close(checks)
	for c := range checks {
		t.Errorf("lost or duplicated increment across failover: %s", c)
	}

	if rt.NetStats().InjectedKills.Load() == 0 {
		t.Fatal("leader never killed — failover scenario is vacuous")
	}
	if rt.Liveness().MgrFailovers.Load() == 0 {
		t.Error("no manager failover recorded")
	}
	if rt.Manager() == rt.Managers()[0] {
		t.Error("current manager is still replica 0 though the leader was killed")
	}
	// Grant conservation on the promoted leader: it applied every
	// pre-kill grant from the log and issued every post-kill grant
	// itself; duplicate-suppressed re-sends must not inflate the count.
	if got, want := rt.Manager().Stats().LockGrants.Load(), int64(p*iters); got != want {
		t.Errorf("promoted leader LockGrants = %d, want %d", got, want)
	}
	for i, mg := range rt.Managers() {
		ms := mg.Stats()
		if h, nw := ms.Handoffs.Load(), ms.NextWaiters.Load(); h > nw {
			t.Errorf("replica %d: handoffs (%d) exceed successor announcements (%d)", i, h, nw)
		}
	}
	if err := rt.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	waitGoroutines(t, goroutines+2)
}
