package conformance

import (
	"fmt"

	"repro/internal/apps/kv"
	"repro/internal/vm"
)

// KVCheck drives the DSM-backed KV service on a booted runtime and
// verifies the serving-layer chaos contract: the run completes, no
// acknowledged write is lost or doubled (the final store's value sum
// equals the seed sum plus every acked delta, and its version sum
// equals the acked increment count — both exact, since the service
// keeps every quantity an integer-valued float64), and error responses
// stay bounded at maxErrorFrac of the offered load. The service runs
// in Recover mode, so a request the retry/failover machinery could not
// mask becomes a counted error response instead of killing the run —
// that is the "bounded error responses" discipline being checked.
//
// It is shared by the kv chaos conformance tests and samhita-conform's
// -kv mode.
func KVCheck(v vm.VM, p int, prm kv.Params, maxErrorFrac float64) ([]Violation, error) {
	prm.Recover = true
	res, err := kv.Run(v, p, prm)
	if err != nil {
		return nil, err
	}
	var viols []Violation
	if got, want := res.SumVal, res.ExpectedSeedSum+res.AckedDelta; got != want {
		viols = append(viols, Violation{Thread: -1, What: fmt.Sprintf(
			"acked-write conservation violated: store sum %v != seed %v + acked delta %v",
			got, res.ExpectedSeedSum, res.AckedDelta)})
	}
	if got, want := res.SumVer, float64(res.Incrs); got != want {
		viols = append(viols, Violation{Thread: -1, What: fmt.Sprintf(
			"version conservation violated: store versions %v != %d acked increments",
			got, res.Incrs)})
	}
	if offered := res.Ops + res.Errors; float64(res.Errors) > maxErrorFrac*float64(offered) {
		viols = append(viols, Violation{Thread: -1, What: fmt.Sprintf(
			"unbounded error responses: %d of %d requests failed (cap %.0f%%)",
			res.Errors, offered, maxErrorFrac*100)})
	}
	return viols, nil
}
