// Package conformance checks the memory-consistency contract of the
// Samhita runtime: any *data-race-free* program must produce exactly
// the results of a sequentially consistent execution (the fundamental
// guarantee of release-style consistency models, and the paper's
// implicit promise when it says existing threaded codes port with
// trivial modification).
//
// The checker generates random programs that are data-race-free by
// construction and whose results are order-independent, runs them on a
// backend, and compares every observed value against a sequential
// model:
//
//   - A shared array of slots is written in alternating halves: in
//     round r the threads (one writer per slot, rotating) rewrite one
//     half, while the other half — stable since the previous round — is
//     read and verified against the model. Barriers separate rounds, so
//     reads and writes of the same slot are never concurrent.
//   - A second array of lock-protected accumulators takes commutative
//     read-modify-write updates (add) under mutexes, so the final
//     values are independent of lock acquisition order and exactly
//     predictable.
//
// Runtime configurations are randomized too — line size, cache capacity
// (down to thrashing sizes), memory-server count, prefetch, and the
// RegC fine-grain path on or off — so the protocol is exercised through
// eviction, striping and invalidation corners, not just the happy path.
package conformance

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/vm"
)

// Program is one generated test program.
type Program struct {
	Seed    int64
	Threads int
	Rounds  int
	Slots   int // shared ordinary slots (even, split in halves)
	Accums  int // lock-protected accumulators
	Locks   int
	// ReadsPerRound is how many stable-half slots each thread verifies
	// per round.
	ReadsPerRound int
}

// Generate builds a random program shape from a seed.
func Generate(seed int64) Program {
	rng := rand.New(rand.NewSource(seed))
	return Program{
		Seed:          seed,
		Threads:       1 + rng.Intn(8),
		Rounds:        2 + rng.Intn(6),
		Slots:         2 * (4 + rng.Intn(60)), // even
		Accums:        1 + rng.Intn(6),
		Locks:         1 + rng.Intn(3),
		ReadsPerRound: 1 + rng.Intn(8),
	}
}

// slotValue is the deterministic value written to slot s in round r (by
// whichever thread owns it that round).
func slotValue(seed int64, s, r int) int64 {
	v := uint64(seed)*0x9E3779B97F4A7C15 + uint64(s)*0xBF58476D1CE4E5B9 + uint64(r)*0x94D049BB133111EB
	v ^= v >> 31
	return int64(v)
}

// writer reports which thread rewrites slot s in round r.
func (p Program) writer(s, r int) int { return (s + r) % p.Threads }

// accumDelta is the amount thread t adds to accumulator a in round r;
// addition commutes, so the final total is order-independent.
func accumDelta(seed int64, t, a, r int) int64 {
	v := uint64(seed) + uint64(t)*0xD6E8FEB86659FD93 + uint64(a)*0xCA5A826395121157 + uint64(r)*0x9E3779B97F4A7C15
	v ^= v >> 33
	return int64(v % 1000)
}

// expectedAccum is the model value of accumulator a after all rounds.
func (p Program) expectedAccum(a int) int64 {
	var sum int64
	for r := 0; r < p.Rounds; r++ {
		for t := 0; t < p.Threads; t++ {
			sum += accumDelta(p.Seed, t, a, r)
		}
	}
	return sum
}

// expectedSlot is the model value of slot s after all rounds: the last
// round that rewrote s's half determines it.
func (p Program) expectedSlot(s int) int64 {
	half := s % 2 // slots alternate halves by parity
	lastRound := -1
	for r := p.Rounds - 1; r >= 0; r-- {
		if r%2 == half {
			lastRound = r
			break
		}
	}
	if lastRound < 0 {
		return 0
	}
	return slotValue(p.Seed, s, lastRound)
}

// Violation describes one consistency failure.
type Violation struct {
	Thread int
	What   string
}

func (v Violation) String() string { return fmt.Sprintf("thread %d: %s", v.Thread, v.What) }

// Run executes the program on the backend and returns every violation
// observed (nil means the execution was sequentially consistent).
func Run(v vm.VM, p Program) ([]Violation, error) {
	if p.Threads < 1 || p.Rounds < 1 || p.Slots < 2 || p.Slots%2 != 0 {
		return nil, fmt.Errorf("conformance: malformed program %+v", p)
	}
	mus := make([]vm.Mutex, p.Locks)
	for i := range mus {
		mus[i] = v.NewMutex()
	}
	bar := v.NewBarrier(p.Threads)

	var base atomic.Uint64
	violationCh := make(chan Violation, 1024)

	_, err := v.Run(p.Threads, func(t vm.Thread) {
		report := func(format string, args ...any) {
			select {
			case violationCh <- Violation{Thread: t.ID(), What: fmt.Sprintf(format, args...)}:
			default:
			}
		}
		if t.ID() == 0 {
			base.Store(uint64(t.GlobalAlloc((p.Slots + p.Accums) * 8)))
		}
		bar.Wait(t)
		slots := vm.I64{Base: vm.Addr(base.Load())}
		accums := vm.I64{Base: vm.Addr(base.Load()) + vm.Addr(8*p.Slots)}
		rng := rand.New(rand.NewSource(p.Seed ^ int64(t.ID()+1)*0x1D872B41))

		for r := 0; r < p.Rounds; r++ {
			writeHalf := r % 2
			// Write this round's half: one writer per slot.
			for s := writeHalf; s < p.Slots; s += 2 {
				if p.writer(s, r) == t.ID() {
					slots.Set(t, s, slotValue(p.Seed, s, r))
				}
			}
			// Read and verify the stable half (last rewritten in round
			// r-1, or never).
			stableHalf := 1 - writeHalf
			for i := 0; i < p.ReadsPerRound; i++ {
				s := stableHalf + 2*rng.Intn(p.Slots/2)
				var want int64
				if r > 0 {
					want = slotValue(p.Seed, s, r-1)
				}
				if got := slots.At(t, s); got != want {
					report("round %d: slot %d = %d, want %d", r, s, got, want)
				}
			}
			// Commutative locked updates.
			for a := 0; a < p.Accums; a++ {
				l := mus[a%p.Locks]
				l.Lock(t)
				accums.Set(t, a, accums.At(t, a)+accumDelta(p.Seed, t.ID(), a, r))
				l.Unlock(t)
			}
			bar.Wait(t)
		}

		// Final verification: every thread checks the whole state.
		for s := 0; s < p.Slots; s++ {
			if got := slots.At(t, s); got != p.expectedSlot(s) {
				report("final: slot %d = %d, want %d", s, got, p.expectedSlot(s))
			}
		}
		for a := 0; a < p.Accums; a++ {
			if got := accums.At(t, a); got != p.expectedAccum(a) {
				report("final: accumulator %d = %d, want %d", a, got, p.expectedAccum(a))
			}
		}
	})
	close(violationCh)
	var out []Violation
	for viol := range violationCh {
		out = append(out, viol)
	}
	if err != nil {
		return out, err
	}
	return out, nil
}
