package conformance

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/apps/forkstorm"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/scl"
)

// forkChaosParams is the storm the snapshot/fork chaos tests drive: a
// 64 KiB sealed image, 24 forks across 8 threads, each verified through
// sealed reads and a private CoW write.
func forkChaosParams() forkstorm.Params {
	return forkstorm.Params{ImageBytes: 64 << 10, Forks: 24, ReadsPerFork: 3, WritesPerFork: 1}
}

// forkChaosConfig is the shared topology: striped small images across
// two tiered memory servers, a sharded replicated manager, and the
// retry policy every chaos test uses.
func forkChaosConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.CacheLines = 256
	cfg.Geo.NumServers = 2
	cfg.ServerShards = 2
	cfg.StripeMin = 4096 // small images still stripe
	cfg.ManagerShards = 2
	cfg.ManagerReplicas = 3
	// A tight hot budget keeps sealed frames moving through the cold
	// tier while the chaos runs, so failover must also carry the tier.
	cfg.HotBytes = 32 << 10
	cfg.Retry = &scl.RetryPolicy{
		MaxAttempts: 10,
		Backoff:     50 * time.Microsecond,
		BackoffCap:  2 * time.Millisecond,
	}
	return cfg
}

// TestForkStormChaosBothKills is the snapshot/fork gauntlet: a memory
// server holding sealed frames AND the manager leader (which owns the
// replicated snapshot/fork allocation state) die while the storm is in
// flight. Warm standby plus the log-replicated manager must mask both:
// every fork is accounted for, every completed fork still reads
// bit-exact sealed values and keeps its private writes, and errors stay
// within the Recover budget — never a sealed-read corruption.
func TestForkStormChaosBothKills(t *testing.T) {
	goroutines := runtime.NumGoroutine()

	cfg := forkChaosConfig()
	cfg.Liveness = &core.LivenessConfig{
		Standby:        true,
		HeartbeatEvery: 2 * time.Millisecond,
		MissedBeats:    25,
	}
	inj := faultnet.New(faultnet.Config{
		Seed: 947,
		Kills: []faultnet.Kill{
			{Node: core.ServerNode(0), After: 80},
			{Node: core.ManagerNode(), After: 120},
		},
	})
	cfg.Faults = inj
	rt, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	viols, runErr := ForkStormCheck(rt, 8, forkChaosParams(), 0.25)
	if runErr != nil {
		t.Fatalf("double kill leaked to the fork storm: %v", runErr)
	}
	for _, v := range viols {
		t.Errorf("fork contract violated under double kill: %s", v.What)
	}
	if got := rt.NetStats().InjectedKills.Load(); got < 2 {
		t.Fatalf("%d kills fired, want 2 — chaos scenario is vacuous", got)
	}
	if err := rt.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	waitGoroutines(t, goroutines+2)
}

// TestForkStormChaosServerKill crashes only the sealed-frame-holding
// memory server mid-storm; the warm standby received every SealAS and
// ForkMap replica, so forks keep reading bit-exact sealed values across
// the failover. A fork caught mid-handshake by the crash may surface as
// a bounded Recover error; a sealed-read corruption never may.
func TestForkStormChaosServerKill(t *testing.T) {
	goroutines := runtime.NumGoroutine()

	cfg := forkChaosConfig()
	cfg.ManagerReplicas = 1 // only the server dies here
	// Generous lease: the race detector slows heartbeat goroutines far
	// more than virtual time, and this test is about server failover,
	// not death detection (connection death unsticks the clients).
	cfg.Liveness = &core.LivenessConfig{Standby: true, MissedBeats: 200}
	inj := faultnet.New(faultnet.Config{
		Seed:  389,
		Kills: []faultnet.Kill{{Node: core.ServerNode(0), After: 80}},
	})
	cfg.Faults = inj
	rt, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	viols, runErr := ForkStormCheck(rt, 8, forkChaosParams(), 0.25)
	if runErr != nil {
		t.Fatalf("server kill leaked to the fork storm: %v", runErr)
	}
	for _, v := range viols {
		t.Errorf("fork contract violated across server failover: %s", v.What)
	}
	if rt.NetStats().InjectedKills.Load() == 0 {
		t.Fatal("server never killed — chaos scenario is vacuous")
	}
	if rt.Liveness().Failovers.Load() == 0 {
		t.Error("no server failover recorded")
	}
	if err := rt.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	waitGoroutines(t, goroutines+2)
}
