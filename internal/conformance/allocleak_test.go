package conformance

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/proto"
	"repro/internal/scl"
	"repro/internal/vm"
)

// TestAllocReissueLeakAcrossFailover is the regression test for the
// AllocReq re-issue leak. The leader replicates every mutation to its
// followers in peer order before applying it, so killing the leader on
// an outgoing ReplAppend with an odd attempt count crashes it on the
// SECOND peer of a round: follower 1 — the promotion successor — has
// already accepted and applied the in-flight entry, the leader demotes
// without dispatching it, and the client's request dies with a
// retryable NotLeader. The retry lands on the promoted replica whose
// zone allocator already served that exact request from the log.
// Without per-writer idempotency records the replica would allocate a
// second block for the same logical AllocReq and the first would stay
// live with no address ever handed to a client; with the dedup fix the
// retry is answered with the recorded address. The workload is shaped
// so the killed round falls in a pure-allocation phase, making the
// deduplicated re-issue an AllocReq specifically.
func TestAllocReissueLeakAcrossFailover(t *testing.T) {
	const (
		p        = 4
		iters    = 16 // allocations per thread before the free phase
		retained = 2  // blocks per thread never freed
		size     = 64 // well under StripeMin: shared zone
	)
	goroutines := runtime.NumGoroutine()

	cfg := core.DefaultConfig()
	cfg.ManagerShards = 2
	cfg.ManagerReplicas = 3
	cfg.Liveness = &core.LivenessConfig{
		HeartbeatEvery: 2 * time.Millisecond,
		MissedBeats:    25,
	}
	cfg.Retry = &scl.RetryPolicy{
		MaxAttempts: 8,
		Backoff:     50 * time.Microsecond,
		BackoffCap:  time.Millisecond,
	}
	// Replication rounds before the alloc phase: p registrations plus p
	// barrier arrivals = 8 rounds = 16 ReplAppend attempts. After=61
	// (odd) kills the leader on attempt 62 — the peer-2 push of round
	// 31, deep in the 64-round allocation phase.
	inj := faultnet.New(faultnet.Config{
		Seed: 1409,
		Kills: []faultnet.Kill{
			{Node: core.ManagerNode(), Kind: proto.KReplAppend, FromNode: true, After: 61},
		},
	})
	cfg.Faults = inj
	rt, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	bar := rt.NewBarrier(p)
	checks := make(chan string, 64)
	report := func(format string, args ...any) {
		select {
		case checks <- fmt.Sprintf(format, args...):
		default:
		}
	}
	_, runErr := rt.Run(p, func(th vm.Thread) {
		bar.Wait(th)
		// Allocation phase: the leader dies partway through. The thread
		// whose AllocReq was in flight retries against the promoted
		// replica; without dedup that re-issue would leak a block.
		addrs := make([]vm.Addr, iters)
		for i := range addrs {
			addrs[i] = th.GlobalAlloc(size)
			th.WriteInt64(addrs[i], int64(th.ID()*1000+i))
		}
		bar.Wait(th)
		// Free phase: everything but the retained tail goes back, so
		// the only live shared-zone blocks afterward are the retained
		// ones — any extra is a leaked re-issue.
		for i := 0; i < iters-retained; i++ {
			if got, want := th.ReadInt64(addrs[i]), int64(th.ID()*1000+i); got != want {
				report("thread %d block %d: read %d, want %d", th.ID(), i, got, want)
			}
			th.Free(addrs[i])
		}
		for i := iters - retained; i < iters; i++ {
			if got, want := th.ReadInt64(addrs[i]), int64(th.ID()*1000+i); got != want {
				report("thread %d retained block %d: read %d, want %d", th.ID(), i, got, want)
			}
		}
	})
	if runErr != nil {
		t.Fatalf("leader kill mid-alloc leaked to the program: %v", runErr)
	}
	close(checks)
	for c := range checks {
		t.Errorf("data corruption across failover: %s", c)
	}

	if rt.NetStats().InjectedKills.Load() == 0 {
		t.Fatal("leader never killed — alloc-leak scenario is vacuous")
	}
	if rt.Liveness().MgrFailovers.Load() == 0 {
		t.Error("no manager failover recorded")
	}
	if rt.Manager() == rt.Managers()[0] {
		t.Error("current manager is still replica 0 though the leader was killed")
	}

	// The leak observable: live shared-zone allocations on the promoted
	// leader. Every non-retained block was freed, so exactly p*retained
	// remain. Before the dedup fix, the re-issued AllocReq after
	// failover allocated a second block and this count came out high.
	if _, shared, _ := rt.Manager().ZoneLive(); shared != p*retained {
		t.Errorf("promoted leader shared-zone live allocations = %d, want %d (AllocReq re-issue leak)",
			shared, p*retained)
	}
	// Prove the re-issue path actually fired: the aborted round's
	// AllocReq was applied from the log, so the client's retry must be
	// answered from the promoted leader's idempotency records.
	var dedups int64
	for _, mg := range rt.Managers() {
		dedups += mg.Stats().DedupAllocs.Load()
	}
	if dedups == 0 {
		t.Error("no AllocReq was deduplicated — the re-issue path never fired, scenario is vacuous")
	}

	if err := rt.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	waitGoroutines(t, goroutines+2)
}
