package conformance

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/apps/kv"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/scl"
)

// kvChaosParams is the burst the serving-layer chaos tests offer: 8
// clients, 32 requests each, against a 32-bucket store.
func kvChaosParams(seed uint64) kv.Params {
	return kv.Params{Buckets: 32, Keys: 256, Ops: 32, Seed: seed}
}

// TestKVChaosManagerLeaderKill crashes the manager leader in the middle
// of the KV service's request burst: lock acquisitions, allocations and
// write-notice traffic all fail over to a promoted replica while
// clients hold open requests. The service must finish with every acked
// write present exactly once and zero error responses — the
// failover machinery, not the Recover escape hatch, absorbs the crash.
func TestKVChaosManagerLeaderKill(t *testing.T) {
	goroutines := runtime.NumGoroutine()

	cfg := core.DefaultConfig()
	cfg.ManagerShards = 2
	cfg.ManagerReplicas = 3
	cfg.Liveness = &core.LivenessConfig{
		HeartbeatEvery: 2 * time.Millisecond,
		MissedBeats:    25,
	}
	cfg.Retry = &scl.RetryPolicy{
		MaxAttempts: 8,
		Backoff:     50 * time.Microsecond,
		BackoffCap:  time.Millisecond,
	}
	inj := faultnet.New(faultnet.Config{
		Seed:  271,
		Kills: []faultnet.Kill{{Node: core.ManagerNode(), After: 40}},
	})
	cfg.Faults = inj
	rt, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	viols, runErr := KVCheck(rt, 8, kvChaosParams(3), 0)
	if runErr != nil {
		t.Fatalf("manager-leader kill leaked to the KV service: %v", runErr)
	}
	for _, v := range viols {
		t.Errorf("serving contract violated across manager failover: %s", v.What)
	}
	if rt.NetStats().InjectedKills.Load() == 0 {
		t.Fatal("leader never killed — chaos scenario is vacuous")
	}
	if rt.Liveness().MgrFailovers.Load() == 0 {
		t.Error("no manager failover recorded")
	}
	if err := rt.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	waitGoroutines(t, goroutines+2)
}

// TestKVChaosServerKill crashes the memory server holding the KV
// buckets mid-burst; the warm standby must take over and the service
// must lose no acked write. Like the leader-kill case the error budget
// is zero: primary failover is supposed to be invisible to clients.
func TestKVChaosServerKill(t *testing.T) {
	goroutines := runtime.NumGoroutine()

	cfg := core.DefaultConfig()
	cfg.Geo.NumServers = 2
	cfg.Liveness = &core.LivenessConfig{Standby: true}
	cfg.Retry = &scl.RetryPolicy{
		MaxAttempts: 10,
		Backoff:     50 * time.Microsecond,
		BackoffCap:  2 * time.Millisecond,
	}
	inj := faultnet.New(faultnet.Config{
		Seed:  613,
		Kills: []faultnet.Kill{{Node: core.ServerNode(0), After: 30}},
	})
	cfg.Faults = inj
	rt, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	viols, runErr := KVCheck(rt, 8, kvChaosParams(5), 0)
	if runErr != nil {
		t.Fatalf("memory-server kill leaked to the KV service: %v", runErr)
	}
	for _, v := range viols {
		t.Errorf("serving contract violated across server failover: %s", v.What)
	}
	if rt.NetStats().InjectedKills.Load() == 0 {
		t.Fatal("server never killed — chaos scenario is vacuous")
	}
	if rt.Liveness().Failovers.Load() == 0 {
		t.Error("no server failover recorded")
	}
	if err := rt.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	waitGoroutines(t, goroutines+2)
}

// TestKVChaosBothKills runs the full gauntlet: the bucket-holding
// memory server AND the manager leader die during one burst. Warm
// standby plus log-replicated manager replicas must mask both; the
// acked set stays conserved and error responses stay within the
// Recover budget (faults this violent can surface a small number of
// bounded error responses, never a lost acked write).
func TestKVChaosBothKills(t *testing.T) {
	goroutines := runtime.NumGoroutine()

	cfg := core.DefaultConfig()
	cfg.Geo.NumServers = 2
	cfg.ManagerShards = 2
	cfg.ManagerReplicas = 3
	cfg.Liveness = &core.LivenessConfig{
		Standby:        true,
		HeartbeatEvery: 2 * time.Millisecond,
		MissedBeats:    25,
	}
	cfg.Retry = &scl.RetryPolicy{
		MaxAttempts: 10,
		Backoff:     50 * time.Microsecond,
		BackoffCap:  2 * time.Millisecond,
	}
	inj := faultnet.New(faultnet.Config{
		Seed: 881,
		Kills: []faultnet.Kill{
			{Node: core.ServerNode(0), After: 25},
			{Node: core.ManagerNode(), After: 60},
		},
	})
	cfg.Faults = inj
	rt, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	viols, runErr := KVCheck(rt, 8, kvChaosParams(7), 0.10)
	if runErr != nil {
		t.Fatalf("double kill leaked to the KV service: %v", runErr)
	}
	for _, v := range viols {
		t.Errorf("serving contract violated under double kill: %s", v.What)
	}
	if got := rt.NetStats().InjectedKills.Load(); got < 2 {
		t.Fatalf("%d kills fired, want 2 — chaos scenario is vacuous", got)
	}
	if err := rt.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	waitGoroutines(t, goroutines+2)
}
