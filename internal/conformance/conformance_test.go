package conformance

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/pthreads"
	"repro/internal/scl"
	"repro/internal/vm"
)

// randomConfig builds a Samhita configuration that stresses a different
// protocol corner per seed.
func randomConfig(seed int64) core.Config {
	rng := rand.New(rand.NewSource(seed))
	cfg := core.DefaultConfig()
	cfg.Geo.LinePages = []int{1, 2, 4}[rng.Intn(3)]
	cfg.Geo.NumServers = 1 + rng.Intn(3)
	cfg.CacheLines = []int{2, 4, 16, 64}[rng.Intn(4)] // down to thrash
	cfg.Prefetch = rng.Intn(2) == 0
	cfg.DisableFineGrain = rng.Intn(4) == 0
	cfg.ManagerShards = []int{1, 2, 4}[rng.Intn(3)]
	return cfg
}

func TestModelSelfConsistency(t *testing.T) {
	p := Generate(1)
	// The model's slot values must be stable and half-aware.
	if p.Slots%2 != 0 {
		t.Fatal("odd slot count")
	}
	for s := 0; s < p.Slots; s++ {
		if p.expectedSlot(s) != p.expectedSlot(s) {
			t.Fatal("nondeterministic model")
		}
	}
	if p.expectedAccum(0) == 0 {
		t.Fatal("degenerate accumulator model")
	}
	for s := 0; s < p.Slots; s++ {
		for r := 0; r < p.Rounds; r++ {
			w := p.writer(s, r)
			if w < 0 || w >= p.Threads {
				t.Fatalf("writer(%d,%d) = %d", s, r, w)
			}
		}
	}
}

func TestMalformedProgramRejected(t *testing.T) {
	pth := pthreads.New(pthreads.Config{})
	if _, err := Run(pth, Program{Threads: 0}); err == nil {
		t.Fatal("zero-thread program accepted")
	}
	if _, err := Run(pth, Program{Threads: 1, Rounds: 1, Slots: 3}); err == nil {
		t.Fatal("odd slot count accepted")
	}
}

// The baseline must pass trivially: it IS sequentially consistent
// hardware.
func TestPthreadsBackendConforms(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := Generate(seed)
		pth := pthreads.New(pthreads.Config{MaxCores: p.Threads})
		viols, err := Run(pth, p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(viols) > 0 {
			t.Fatalf("seed %d: baseline violated SC: %v", seed, viols[0])
		}
	}
}

// The headline check: the Samhita DSM must give data-race-free programs
// sequentially consistent results under every randomized configuration.
func TestSamhitaConformsUnderRandomConfigs(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			p := Generate(seed)
			cfg := randomConfig(seed * 31)
			rt, err := core.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			viols, err := Run(rt, p)
			if err != nil {
				t.Fatalf("seed %d (%+v, cfg lines=%d cache=%d srv=%d fg=%v): %v",
					seed, p, cfg.Geo.LinePages, cfg.CacheLines, cfg.Geo.NumServers, !cfg.DisableFineGrain, err)
			}
			for _, viol := range viols {
				t.Errorf("seed %d (cfg lines=%d cache=%d srv=%d prefetch=%v fg=%v): %s",
					seed, cfg.Geo.LinePages, cfg.CacheLines, cfg.Geo.NumServers, cfg.Prefetch, !cfg.DisableFineGrain, viol)
			}
		})
	}
}

// The chaos check: with the fault injector dropping, delaying and
// duplicating transport messages — and partitioning a memory server for
// a window — the retry layer must mask every fault and the DSM must
// still produce sequentially consistent results with zero data-value
// divergence.
//
// The retry policy deliberately has NO per-attempt timeout: protocol
// calls park legitimately (barriers, lock queues, tag-parked fetches),
// and retrying a parked call would corrupt protocol state. Drops are
// injected pre-send, so a retried attempt reaches the server exactly
// once.
func TestSamhitaConformsUnderFaultInjection(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			p := Generate(seed)
			cfg := randomConfig(seed * 31)
			cfg.Retry = &scl.RetryPolicy{
				MaxAttempts: 10,
				Backoff:     50 * time.Microsecond,
				BackoffCap:  2 * time.Millisecond,
			}
			inj := faultnet.New(faultnet.Config{
				Seed:      seed*101 + 7,
				DropProb:  0.15,
				DelayProb: 0.05,
				MaxDelay:  200 * time.Microsecond,
				DupProb:   0.05,
				// Cut off the first memory server briefly mid-run.
				Partitions: []faultnet.Partition{{Node: 10, After: 20, Len: 5}},
			})
			cfg.Faults = inj
			rt, err := core.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			viols, err := Run(rt, p)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for _, viol := range viols {
				t.Errorf("seed %d: divergence under faults: %s", seed, viol)
			}
			nst := rt.NetStats()
			if nst == nil {
				t.Fatal("runtime has no net stats though faults were configured")
			}
			if nst.InjectedDrops.Load() == 0 {
				t.Error("fault injector never dropped anything — chaos test is vacuous")
			}
			if nst.Retries.Load() == 0 {
				t.Error("retry layer never retried though drops were injected")
			}
		})
	}
}

// Reusing one runtime across several programs must stay consistent
// (writer ids and interval tags must not collide).
func TestSamhitaConformsAcrossRuns(t *testing.T) {
	rt, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	for seed := int64(100); seed < 104; seed++ {
		p := Generate(seed)
		viols, err := Run(rt, p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, viol := range viols {
			t.Errorf("seed %d: %s", seed, viol)
		}
	}
}

var _ = vm.VM(nil) // keep the import for documentation clarity
