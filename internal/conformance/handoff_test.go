package conformance

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/scl"
	"repro/internal/vm"
)

// TestPeerToPeerHandoffCarriesValues is the property test for the
// sharded manager's peer-to-peer lock handoff (sequenced fabric +
// ManagerShards > 1): a heavily contended lock must actually take the
// holder-to-waiter fast path — the manager only arbitrating when the
// waiter set changes — while every increment protected by the lock
// still lands exactly once, with the closing interval riding the grant
// and its directory redelivery deduplicated.
func TestPeerToPeerHandoffCarriesValues(t *testing.T) {
	const (
		p     = 4
		iters = 64
	)
	cfg := core.DefaultConfig()
	cfg.ManagerShards = 4
	rt, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	mu := rt.NewMutex()
	bar := rt.NewBarrier(p)
	var base atomic.Uint64
	if _, err := rt.Run(p, func(th vm.Thread) {
		if th.ID() == 0 {
			base.Store(uint64(th.GlobalAlloc(2 * 8)))
		}
		bar.Wait(th)
		counter := vm.Addr(base.Load())
		shadow := counter + 8
		for i := 0; i < iters; i++ {
			mu.Lock(th)
			v := th.ReadInt64(counter) + 1
			th.WriteInt64(counter, v)
			th.WriteInt64(shadow, v*3)
			mu.Unlock(th)
		}
		bar.Wait(th)
		if got, want := th.ReadInt64(counter), int64(p*iters); got != want {
			t.Errorf("thread %d: counter = %d, want %d", th.ID(), got, want)
		}
		if got, want := th.ReadInt64(shadow), int64(p*iters*3); got != want {
			t.Errorf("thread %d: shadow = %d, want %d", th.ID(), got, want)
		}
	}); err != nil {
		t.Fatal(err)
	}

	ms := rt.Manager().Stats()
	if ms.Handoffs.Load() == 0 {
		t.Error("no peer-to-peer handoffs: the contended lock never took the fast path")
	}
	if ms.NextWaiters.Load() == 0 {
		t.Error("no NextWaiter announcements sent")
	}
	if ms.Handoffs.Load() > ms.NextWaiters.Load() {
		t.Errorf("handoffs (%d) exceed successor announcements (%d)",
			ms.Handoffs.Load(), ms.NextWaiters.Load())
	}
	// Every acquisition is a grant, whether central or handed off.
	if got, want := ms.LockGrants.Load(), int64(p*iters); got != want {
		t.Errorf("LockGrants = %d, want %d", got, want)
	}
}

// TestWorkerModeDisjointLockHammer drives the manager's worker mode —
// an unsequenced fabric (the retry layer keeps the fabric real-time)
// with several homes — with disjoint per-lock traffic spread across the
// homes, under the race detector in CI. Each lock guards its own
// counter, so any cross-home ordering bug in the ticketed notice
// directory (an acquire overtaking a release routed to a different
// home) shows up as a lost increment.
func TestWorkerModeDisjointLockHammer(t *testing.T) {
	const (
		p      = 8
		nlocks = 4
		iters  = 32
	)
	cfg := core.DefaultConfig()
	cfg.ManagerShards = 4
	cfg.Retry = &scl.RetryPolicy{
		MaxAttempts: 4,
		Backoff:     50 * time.Microsecond,
		BackoffCap:  time.Millisecond,
	}
	rt, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	locks := make([]vm.Mutex, nlocks)
	for i := range locks {
		locks[i] = rt.NewMutex()
	}
	bar := rt.NewBarrier(p)
	var base atomic.Uint64
	if _, err := rt.Run(p, func(th vm.Thread) {
		if th.ID() == 0 {
			base.Store(uint64(th.GlobalAlloc(nlocks * 8)))
		}
		bar.Wait(th)
		counters := vm.Addr(base.Load())
		mine := th.ID() % nlocks
		addr := counters + vm.Addr(mine*8)
		for i := 0; i < iters; i++ {
			locks[mine].Lock(th)
			th.WriteInt64(addr, th.ReadInt64(addr)+1)
			locks[mine].Unlock(th)
		}
		bar.Wait(th)
		// The final barrier is an acquire: every lock's last release is
		// visible to every thread now.
		for l := 0; l < nlocks; l++ {
			want := int64(p / nlocks * iters)
			if got := th.ReadInt64(counters + vm.Addr(l*8)); got != want {
				t.Errorf("thread %d: counter %d = %d, want %d", th.ID(), l, got, want)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got, want := rt.Manager().Stats().LockGrants.Load(), int64(p*iters); got != want {
		t.Errorf("LockGrants = %d, want %d", got, want)
	}
}
