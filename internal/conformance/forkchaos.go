package conformance

import (
	"fmt"

	"repro/internal/apps/forkstorm"
	"repro/internal/vm"
)

// ForkStormCheck drives the fork-storm workload on a booted runtime and
// verifies the snapshot/fork chaos contract: the run completes, every
// fork is accounted for (completed plus errored equals the requested
// storm size — none silently dropped), every completed fork read
// bit-exact sealed values and kept its private copy-on-write writes
// (the workload panics on any mismatch, which Recover mode converts
// into a counted error), and errors stay bounded at maxErrorFrac of
// the storm. Faults the retry/failover machinery masks completely cost
// nothing; only forks it could not save count against the cap.
//
// It is shared by the fork chaos conformance tests and
// samhita-conform's -forkstorm mode.
func ForkStormCheck(v vm.VM, p int, prm forkstorm.Params, maxErrorFrac float64) ([]Violation, error) {
	prm = prm.WithDefaults()
	prm.Recover = true
	res, err := forkstorm.Run(v, p, prm)
	if err != nil {
		return nil, err
	}
	var viols []Violation
	if got, want := res.Forks+res.Errors, int64(prm.Forks); got != want {
		viols = append(viols, Violation{Thread: -1, What: fmt.Sprintf(
			"fork conservation violated: %d completed + %d errored != %d requested",
			res.Forks, res.Errors, want)})
	}
	if float64(res.Errors) > maxErrorFrac*float64(prm.Forks) {
		viols = append(viols, Violation{Thread: -1, What: fmt.Sprintf(
			"unbounded fork errors: %d of %d forks failed (cap %.0f%%)",
			res.Errors, prm.Forks, maxErrorFrac*100)})
	}
	return viols, nil
}
