package stats

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Liveness aggregates crash-detection and recovery events: heartbeat
// membership at the manager, lock-lease reclamation, barrier-count
// recomputation, and memory-server replication/failover. Fields are
// atomic so one Liveness can be shared by the manager, the memory
// servers and the runtime and read while the system runs.
type Liveness struct {
	Heartbeats          atomic.Int64 // heartbeats processed by the manager
	HeartbeatsMalformed atomic.Int64 // heartbeats dropped because they failed to decode
	ThreadsDead         atomic.Int64 // compute threads declared dead by the lease table
	ServersDead         atomic.Int64 // memory servers declared dead by the lease table

	LocksReclaimed     atomic.Int64 // locks force-released from a dead holder
	WaitersEvicted     atomic.Int64 // dead threads' queue/park entries dropped
	WaitersFailed      atomic.Int64 // live parked waiters completed with ErrPeerDied
	BarriersRecomputed atomic.Int64 // barrier rounds released at a reduced count

	ReplBatches  atomic.Int64 // diff batches streamed primary -> standby
	ReplBytes    atomic.Int64 // encoded bytes of those batches
	ReplFailures atomic.Int64 // replication posts that failed
	Promotions   atomic.Int64 // standby servers promoted to primary
	Failovers    atomic.Int64 // homes redirected to their promoted standby

	// Replicated-manager (consensus log) events.
	MgrElections    atomic.Int64 // manager replicas promoted to leader
	MgrDeposed      atomic.Int64 // manager leaders that stepped down
	MgrReplAppends  atomic.Int64 // append rounds the leader pushed to followers
	MgrReplEntries  atomic.Int64 // log entries shipped in those rounds
	MgrSnapshots    atomic.Int64 // full-state snapshots installed on lagging followers
	MgrLogTruncated atomic.Int64 // log entries dropped by acked+applied truncation
	MgrFailovers    atomic.Int64 // client redirects to a newly promoted manager
}

// Summary renders the non-zero liveness counters on one line (or
// "no liveness events" when nothing happened).
func (l *Liveness) Summary() string {
	type item struct {
		name string
		v    int64
	}
	items := []item{
		{"heartbeats", l.Heartbeats.Load()},
		{"heartbeatsMalformed", l.HeartbeatsMalformed.Load()},
		{"threadsDead", l.ThreadsDead.Load()},
		{"serversDead", l.ServersDead.Load()},
		{"locksReclaimed", l.LocksReclaimed.Load()},
		{"waitersEvicted", l.WaitersEvicted.Load()},
		{"waitersFailed", l.WaitersFailed.Load()},
		{"barriersRecomputed", l.BarriersRecomputed.Load()},
		{"replBatches", l.ReplBatches.Load()},
		{"replBytes", l.ReplBytes.Load()},
		{"replFailures", l.ReplFailures.Load()},
		{"promotions", l.Promotions.Load()},
		{"failovers", l.Failovers.Load()},
		{"mgrElections", l.MgrElections.Load()},
		{"mgrDeposed", l.MgrDeposed.Load()},
		{"mgrReplAppends", l.MgrReplAppends.Load()},
		{"mgrReplEntries", l.MgrReplEntries.Load()},
		{"mgrSnapshots", l.MgrSnapshots.Load()},
		{"mgrLogTruncated", l.MgrLogTruncated.Load()},
		{"mgrFailovers", l.MgrFailovers.Load()},
	}
	var parts []string
	for _, it := range items {
		if it.v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", it.name, it.v))
		}
	}
	if len(parts) == 0 {
		return "liveness: no liveness events"
	}
	return "liveness: " + strings.Join(parts, " ")
}
