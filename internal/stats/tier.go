package stats

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Tier aggregates the tiered page store's data-plane events: hot-set
// hits, promotions from and demotions to the compressed cold tier, the
// byte volumes moved, and the snapshot/fork lifecycle (sealed frames,
// refcounts, copy-on-write breaks). Fields are atomic so one Tier can
// be shared by every memory server and shard and read while the system
// runs.
type Tier struct {
	HotHits    atomic.Int64 // page accesses served from the uncompressed hot set
	Promotions atomic.Int64 // pages decompressed cold -> hot on access
	Demotions  atomic.Int64 // pages compressed hot -> cold on budget pressure

	ColdBytes       atomic.Int64 // raw page bytes pushed through the cold tier
	CompressedBytes atomic.Int64 // word-run encoded bytes those pages occupied

	SealedPages  atomic.Int64 // page frames sealed into snapshots
	SnapshotRefs atomic.Int64 // live fork references onto sealed snapshots
	CoWBreaks    atomic.Int64 // fork pages privatized on first write
}

// Summary renders the non-zero tier counters on one line (or "no tier
// events" when the store never tiered or sealed anything).
func (t *Tier) Summary() string {
	type item struct {
		name string
		v    int64
	}
	items := []item{
		{"hotHits", t.HotHits.Load()},
		{"promotions", t.Promotions.Load()},
		{"demotions", t.Demotions.Load()},
		{"coldBytes", t.ColdBytes.Load()},
		{"compressedBytes", t.CompressedBytes.Load()},
		{"sealedPages", t.SealedPages.Load()},
		{"snapshotRefs", t.SnapshotRefs.Load()},
		{"cowBreaks", t.CoWBreaks.Load()},
	}
	var parts []string
	for _, it := range items {
		if it.v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", it.name, it.v))
		}
	}
	if len(parts) == 0 {
		return "tier: no tier events"
	}
	return "tier: " + strings.Join(parts, " ")
}

// HotHitRate is hot hits over all tier-mediated page accesses.
func (t *Tier) HotHitRate() float64 {
	hits := t.HotHits.Load()
	return Rate(hits, hits+t.Promotions.Load())
}
