package stats

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

func TestThreadTotalTime(t *testing.T) {
	th := Thread{ComputeTime: 100, SyncTime: 50}
	if got := th.TotalTime(); got != 150 {
		t.Fatalf("TotalTime = %v, want 150", got)
	}
}

func TestRunMaxima(t *testing.T) {
	r := &Run{Threads: []Thread{
		{ID: 0, ComputeTime: 100, SyncTime: 5},
		{ID: 1, ComputeTime: 80, SyncTime: 40},
		{ID: 2, ComputeTime: 90, SyncTime: 10},
	}}
	if got := r.MaxComputeTime(); got != 100 {
		t.Errorf("MaxComputeTime = %v, want 100", got)
	}
	if got := r.MaxSyncTime(); got != 40 {
		t.Errorf("MaxSyncTime = %v, want 40", got)
	}
	if got := r.MaxTotalTime(); got != 120 {
		t.Errorf("MaxTotalTime = %v, want 120", got)
	}
}

func TestRunMeans(t *testing.T) {
	r := &Run{Threads: []Thread{
		{ComputeTime: 100, SyncTime: 20},
		{ComputeTime: 200, SyncTime: 40},
	}}
	if got := r.MeanComputeTime(); got != 150 {
		t.Errorf("MeanComputeTime = %v, want 150", got)
	}
	if got := r.MeanSyncTime(); got != 30 {
		t.Errorf("MeanSyncTime = %v, want 30", got)
	}
}

func TestEmptyRun(t *testing.T) {
	r := &Run{}
	if r.MaxComputeTime() != 0 || r.MaxSyncTime() != 0 || r.MeanComputeTime() != 0 || r.MeanSyncTime() != 0 {
		t.Fatal("empty run should report zeros")
	}
}

func TestTotalsSums(t *testing.T) {
	r := &Run{Threads: []Thread{
		{Hits: 1, Misses: 2, DiffBytes: 10, LockOps: 3},
		{Hits: 4, Misses: 1, DiffBytes: 5, LockOps: 2},
	}}
	tot := r.Totals()
	if tot.Hits != 5 || tot.Misses != 3 || tot.DiffBytes != 15 || tot.LockOps != 5 {
		t.Fatalf("Totals = %+v", tot)
	}
}

func TestSummaryMentionsKeyFields(t *testing.T) {
	r := &Run{Threads: []Thread{{ComputeTime: vtime.Millisecond}}}
	s := r.Summary()
	for _, want := range []string{"threads=1", "compute(max)=1ms", "cache:", "consistency:", "comm:"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary missing %q in %q", want, s)
		}
	}
}

func TestRegistryOrdersAndCopies(t *testing.T) {
	var reg Registry
	var wg sync.WaitGroup
	for i := 7; i >= 0; i-- {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := Thread{ID: id, ComputeTime: vtime.Time(id)}
			reg.Add(&th)
			th.ComputeTime = 999 // must not affect the stored snapshot
		}(i)
	}
	wg.Wait()
	run := reg.Run()
	if len(run.Threads) != 8 {
		t.Fatalf("len = %d, want 8", len(run.Threads))
	}
	for i, th := range run.Threads {
		if th.ID != i {
			t.Fatalf("thread %d has ID %d (not sorted)", i, th.ID)
		}
		if th.ComputeTime != vtime.Time(i) {
			t.Fatalf("thread %d compute time mutated: %v", i, th.ComputeTime)
		}
	}
}

// Property: Totals is additive — concatenating two runs sums their totals.
func TestTotalsAdditiveProperty(t *testing.T) {
	f := func(h1, h2, m1, m2 uint16) bool {
		a := Thread{Hits: int64(h1), Misses: int64(m1)}
		b := Thread{Hits: int64(h2), Misses: int64(m2)}
		ra := (&Run{Threads: []Thread{a}}).Totals()
		rb := (&Run{Threads: []Thread{b}}).Totals()
		rab := (&Run{Threads: []Thread{a, b}}).Totals()
		return rab.Hits == ra.Hits+rb.Hits && rab.Misses == ra.Misses+rb.Misses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
