// Package stats collects the per-thread and system-wide measurements the
// paper's evaluation reports: compute time, synchronization time, and the
// protocol event counters (faults, prefetch hits, diffs, write notices,
// bytes moved) that explain them.
//
// Accounting follows the paper's methodology: a thread's virtual time is
// split into exactly two buckets. Time spent inside LOCK / UNLOCK /
// BARRIER_WAIT / condition-variable calls is synchronization time;
// everything else — including page faults taken while computing — is
// compute time. (Section III: the fault and fetch costs incurred by
// false sharing show up as *compute* time, while the consistency actions
// performed at synchronization points show up as *synchronization*
// time.)
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/vtime"
)

// Net aggregates transport-robustness events: retry/timeout activity in
// the SCL retry layer, connection failures in the TCP transport, and
// injected faults from the chaos layer. Fields are atomic so one Net can
// be shared by every endpoint of a runtime and read while it runs.
type Net struct {
	Attempts    atomic.Int64 // call/post attempts issued by the retry layer
	Retries     atomic.Int64 // attempts beyond the first
	Timeouts    atomic.Int64 // attempts abandoned by the per-attempt timeout
	Unreachable atomic.Int64 // calls/posts that exhausted the retry budget

	DeadConns      atomic.Int64 // TCP connections evicted after a read/write error
	StrandedCalls  atomic.Int64 // pending calls failed because their connection died
	WriteErrors    atomic.Int64 // frame or reply writes that failed
	StaleResponses atomic.Int64 // responses with no waiting call (late or duplicate)

	InjectedDrops     atomic.Int64 // faultnet: attempts dropped before the send
	InjectedDelays    atomic.Int64 // faultnet: messages delayed
	InjectedDups      atomic.Int64 // faultnet: duplicate responses delivered and discarded
	PartitionRefusals atomic.Int64 // faultnet: attempts refused by an active partition
	InjectedKills     atomic.Int64 // faultnet: nodes crash-killed
	KillRefusals      atomic.Int64 // faultnet: attempts refused because an endpoint is killed
}

// Summary renders the non-zero robustness counters on one line (or
// "no transport failures" when the run was clean).
func (n *Net) Summary() string {
	type item struct {
		name string
		v    int64
	}
	items := []item{
		{"attempts", n.Attempts.Load()},
		{"retries", n.Retries.Load()},
		{"timeouts", n.Timeouts.Load()},
		{"unreachable", n.Unreachable.Load()},
		{"deadConns", n.DeadConns.Load()},
		{"strandedCalls", n.StrandedCalls.Load()},
		{"writeErrors", n.WriteErrors.Load()},
		{"staleResponses", n.StaleResponses.Load()},
		{"drops", n.InjectedDrops.Load()},
		{"delays", n.InjectedDelays.Load()},
		{"dups", n.InjectedDups.Load()},
		{"partitionRefusals", n.PartitionRefusals.Load()},
		{"kills", n.InjectedKills.Load()},
		{"killRefusals", n.KillRefusals.Load()},
	}
	var parts []string
	for _, it := range items {
		if it.v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", it.name, it.v))
		}
	}
	if len(parts) == 0 {
		return "net: no transport failures"
	}
	return "net: " + strings.Join(parts, " ")
}

// Thread accumulates measurements for one compute thread. It is owned by
// the thread's goroutine and must not be shared while the thread runs;
// Snapshot copies it for cross-thread reporting.
type Thread struct {
	ID int

	// ComputeTime and SyncTime partition the thread's virtual run time.
	ComputeTime vtime.Time
	SyncTime    vtime.Time
	// IdleTime is virtual time the thread spent deliberately idle in
	// SleepUntil — an open-loop client waiting for its next scheduled
	// arrival. It is excluded from ComputeTime/SyncTime (and TotalTime)
	// so service metrics are not polluted by intentional slack.
	IdleTime vtime.Time

	// Cache behaviour.
	Hits            int64 // accesses served by a resident, valid line
	Misses          int64 // demand faults (line fetches issued)
	PrefetchHits    int64 // faults satisfied by a completed prefetch
	PrefetchLate    int64 // faults that had to wait for an in-flight prefetch
	PrefetchIssued  int64 // asynchronous prefetch requests issued
	PrefetchWasted  int64 // prefetch results discarded unused (drained or stale)
	CombinedFetches int64 // demand faults served by a multi-line combined fetch
	CombinedLines   int64 // companion lines revalidated by combined fetches
	Evictions       int64 // lines evicted to make room
	DirtyEvicts     int64 // evictions that had to flush a diff first
	Twins           int64 // twin pages created (first write in an interval)
	// FaultStall is the virtual time spent inside demand faults (from
	// fault entry to data installed), the part of compute time that is
	// really the memory system, not arithmetic. It explains where
	// ComputeTime goes on false-sharing-heavy runs.
	FaultStall vtime.Time

	// Consistency traffic.
	DiffsCreated    int64 // page diffs produced at releases/evictions
	DiffBytes       int64 // payload bytes of eagerly shipped diffs
	OwnedClaims     int64 // lazily-owned pages claimed at releases (no bytes shipped)
	RecordsLogged   int64 // fine-grained store records (consistency regions)
	RecordBytes     int64 // payload bytes of those records
	Invalidations   int64 // pages invalidated by incoming write notices
	PartialInvals   int64 // of those, pages only marked partially stale (span extents)
	InvalFlushes    int64 // invalidations of dirty pages that flushed a diff home
	UpdatesApplied  int64 // fine-grained updates applied in place
	NoticesReceived int64 // write notices processed at acquires

	// Communication.
	MsgsSent      int64
	BytesSent     int64
	BytesReceived int64

	// Synchronization operations.
	LockOps    int64
	BarrierOps int64
	CondOps    int64
	Releases   int64 // release points closed (unlock / barrier / cond wait)

	// Allocation.
	ArenaAllocs  int64 // served locally from the thread arena
	SharedAllocs int64 // served by the manager (shared zone / striped)
}

// Snapshot returns a copy of t.
func (t *Thread) Snapshot() Thread { return *t }

// TotalTime is the thread's complete virtual run time.
func (t *Thread) TotalTime() vtime.Time { return t.ComputeTime + t.SyncTime }

// Run aggregates the per-thread statistics of one experiment run.
type Run struct {
	Threads []Thread
}

// MaxComputeTime reports the longest per-thread compute time; the paper's
// "compute time" plots report the per-thread compute time of the
// slowest thread (per-thread work is symmetric in all benchmarks).
func (r *Run) MaxComputeTime() vtime.Time {
	var m vtime.Time
	for i := range r.Threads {
		m = vtime.Max(m, r.Threads[i].ComputeTime)
	}
	return m
}

// MaxSyncTime reports the longest per-thread synchronization time.
func (r *Run) MaxSyncTime() vtime.Time {
	var m vtime.Time
	for i := range r.Threads {
		m = vtime.Max(m, r.Threads[i].SyncTime)
	}
	return m
}

// MaxTotalTime reports the virtual wall time of the run (slowest thread).
func (r *Run) MaxTotalTime() vtime.Time {
	var m vtime.Time
	for i := range r.Threads {
		m = vtime.Max(m, r.Threads[i].TotalTime())
	}
	return m
}

// MeanComputeTime reports the arithmetic mean of per-thread compute time.
func (r *Run) MeanComputeTime() vtime.Time {
	if len(r.Threads) == 0 {
		return 0
	}
	var s vtime.Time
	for i := range r.Threads {
		s += r.Threads[i].ComputeTime
	}
	return s / vtime.Time(len(r.Threads))
}

// MeanSyncTime reports the arithmetic mean of per-thread sync time.
func (r *Run) MeanSyncTime() vtime.Time {
	if len(r.Threads) == 0 {
		return 0
	}
	var s vtime.Time
	for i := range r.Threads {
		s += r.Threads[i].SyncTime
	}
	return s / vtime.Time(len(r.Threads))
}

// Totals sums the event counters across threads.
func (r *Run) Totals() Thread {
	var sum Thread
	sum.ID = -1
	for i := range r.Threads {
		t := &r.Threads[i]
		sum.Hits += t.Hits
		sum.Misses += t.Misses
		sum.PrefetchHits += t.PrefetchHits
		sum.PrefetchLate += t.PrefetchLate
		sum.PrefetchIssued += t.PrefetchIssued
		sum.PrefetchWasted += t.PrefetchWasted
		sum.CombinedFetches += t.CombinedFetches
		sum.CombinedLines += t.CombinedLines
		sum.Evictions += t.Evictions
		sum.DirtyEvicts += t.DirtyEvicts
		sum.Twins += t.Twins
		sum.FaultStall += t.FaultStall
		sum.IdleTime += t.IdleTime
		sum.DiffsCreated += t.DiffsCreated
		sum.DiffBytes += t.DiffBytes
		sum.OwnedClaims += t.OwnedClaims
		sum.RecordsLogged += t.RecordsLogged
		sum.RecordBytes += t.RecordBytes
		sum.Invalidations += t.Invalidations
		sum.PartialInvals += t.PartialInvals
		sum.InvalFlushes += t.InvalFlushes
		sum.UpdatesApplied += t.UpdatesApplied
		sum.NoticesReceived += t.NoticesReceived
		sum.MsgsSent += t.MsgsSent
		sum.BytesSent += t.BytesSent
		sum.BytesReceived += t.BytesReceived
		sum.LockOps += t.LockOps
		sum.BarrierOps += t.BarrierOps
		sum.CondOps += t.CondOps
		sum.Releases += t.Releases
		sum.ArenaAllocs += t.ArenaAllocs
		sum.SharedAllocs += t.SharedAllocs
	}
	return sum
}

// Summary renders a human-readable multi-line report of the run.
func (r *Run) Summary() string {
	tot := r.Totals()
	var b strings.Builder
	fmt.Fprintf(&b, "threads=%d compute(max)=%v sync(max)=%v total(max)=%v\n",
		len(r.Threads), r.MaxComputeTime(), r.MaxSyncTime(), r.MaxTotalTime())
	fmt.Fprintf(&b, "cache: hits=%d misses=%d prefetchHits=%d prefetchLate=%d evictions=%d (dirty=%d) twins=%d\n",
		tot.Hits, tot.Misses, tot.PrefetchHits, tot.PrefetchLate, tot.Evictions, tot.DirtyEvicts, tot.Twins)
	fmt.Fprintf(&b, "consistency: diffs=%d (%d B eager) owned=%d records=%d (%d B) invalidations=%d (flushed=%d) updates=%d notices=%d\n",
		tot.DiffsCreated, tot.DiffBytes, tot.OwnedClaims, tot.RecordsLogged, tot.RecordBytes,
		tot.Invalidations, tot.InvalFlushes, tot.UpdatesApplied, tot.NoticesReceived)
	fmt.Fprintf(&b, "comm: msgs=%d sent=%d B recv=%d B  sync-ops: locks=%d barriers=%d conds=%d\n",
		tot.MsgsSent, tot.BytesSent, tot.BytesReceived, tot.LockOps, tot.BarrierOps, tot.CondOps)
	b.WriteString(r.ReleaseLine())
	b.WriteByte('\n')
	return b.String()
}

// ReleaseLine renders the release-path and prefetch efficiency
// counters on one line (shared by Summary and the benchmark CLIs).
func (r *Run) ReleaseLine() string {
	tot := r.Totals()
	return fmt.Sprintf("release: releases=%d msgs/rel=%.2f diffB/rel=%.1f  prefetch: issued=%d hit=%.0f%% wasted=%.0f%% combined=%d(+%d lines)",
		tot.Releases, Rate(tot.MsgsSent, tot.Releases), Rate(tot.DiffBytes, tot.Releases),
		tot.PrefetchIssued, 100*Rate(tot.PrefetchHits+tot.PrefetchLate, tot.PrefetchIssued),
		100*Rate(tot.PrefetchWasted, tot.PrefetchIssued), tot.CombinedFetches, tot.CombinedLines)
}

// Rate divides two counters, guarding the empty denominator.
func Rate(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Registry gathers Thread snapshots from concurrently finishing threads.
type Registry struct {
	mu      sync.Mutex
	threads []Thread
}

// Add records a snapshot of t.
func (g *Registry) Add(t *Thread) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.threads = append(g.threads, t.Snapshot())
}

// Run returns the collected snapshots ordered by thread ID.
func (g *Registry) Run() *Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Thread, len(g.threads))
	copy(out, g.threads)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return &Run{Threads: out}
}
