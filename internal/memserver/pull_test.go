package memserver

import (
	"sync"
	"testing"
	"time"

	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/scl"
	"repro/internal/simnet"
	"repro/internal/vtime"
)

// fakeAgent answers DiffPull requests from a canned store, like a
// thread's cache agent would.
type fakeAgent struct {
	ep    scl.Endpoint
	diffs map[uint64][]proto.DiffRun
	mu    sync.Mutex
	pulls int
}

func runFakeAgent(a *fakeAgent) {
	for {
		req, ok := a.ep.Recv()
		if !ok {
			return
		}
		var m proto.DiffPullReq
		if err := req.Decode(&m); err != nil {
			req.ReplyError(err, req.Arrive())
			continue
		}
		a.mu.Lock()
		a.pulls++
		var out []proto.PageDiff
		for _, p := range m.Pages {
			if runs, ok := a.diffs[p]; ok {
				out = append(out, proto.PageDiff{Page: p, Runs: runs})
				delete(a.diffs, p)
			}
		}
		a.mu.Unlock()
		req.Reply(&proto.DiffPullResp{Diffs: out}, req.Arrive()+req.Svc())
	}
}

type pullHarness struct {
	srv    *Server
	cli    scl.Endpoint
	agents map[uint32]*fakeAgent
	wg     sync.WaitGroup
}

func newPullHarness(t *testing.T, writers ...uint32) *pullHarness {
	t.Helper()
	geo := layout.DefaultGeometry()
	f := simnet.NewFabric(testLink)
	h := &pullHarness{
		cli:    scl.NewSimEndpoint(f, 1),
		agents: make(map[uint32]*fakeAgent),
	}
	for _, w := range writers {
		a := &fakeAgent{
			ep:    scl.NewSimEndpoint(f, 200+simnet.NodeID(w)),
			diffs: make(map[uint64][]proto.DiffRun),
		}
		h.agents[w] = a
		go runFakeAgent(a)
	}
	h.srv = New(scl.NewSimEndpoint(f, 100), 0, geo, vtime.DefaultCPU,
		func(w uint32) scl.NodeID { return 200 + scl.NodeID(w) })
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.srv.Run()
	}()
	t.Cleanup(func() {
		var ack proto.Ack
		if _, err := h.cli.Call(100, &proto.Shutdown{}, &ack, 0); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		h.wg.Wait()
		for _, a := range h.agents {
			a.ep.Close()
		}
	})
	return h
}

func (h *pullHarness) claim(t *testing.T, writer uint32, interval uint64, pages ...uint64) {
	t.Helper()
	if _, err := h.cli.Post(100, &proto.DiffBatch{
		Tag:        proto.IntervalTag{Writer: writer, Interval: interval},
		OwnedPages: pages,
	}, 0); err != nil {
		t.Fatal(err)
	}
}

func (h *pullHarness) fetch(t *testing.T, line layout.LineID, needs []proto.PageNeed) []byte {
	t.Helper()
	var resp proto.FetchLineResp
	if _, err := h.cli.Call(100, &proto.FetchLineReq{Line: uint64(line), Needs: needs}, &resp, 0); err != nil {
		t.Fatalf("fetch: %v", err)
	}
	return resp.Data
}

func TestFetchPullsOwnedPages(t *testing.T) {
	h := newPullHarness(t, 7)
	h.agents[7].diffs[2] = []proto.DiffRun{{Off: 5, Data: []byte{42}}}
	tag := proto.IntervalTag{Writer: 7, Interval: 1}
	h.claim(t, 7, 1, 2)

	data := h.fetch(t, 0, []proto.PageNeed{{Page: 2, Tags: []proto.IntervalTag{tag}}})
	geo := layout.DefaultGeometry()
	if data[2*geo.PageSize+5] != 42 {
		t.Fatalf("owned byte not pulled: %d", data[2*geo.PageSize+5])
	}
	if got := h.srv.Stats().Pulls.Load(); got != 1 {
		t.Fatalf("Pulls = %d", got)
	}
	if got := h.srv.Stats().PulledBytes.Load(); got != 1 {
		t.Fatalf("PulledBytes = %d", got)
	}
	// Ownership cleared: a second fetch pulls nothing.
	_ = h.fetch(t, 0, nil)
	if got := h.srv.Stats().Pulls.Load(); got != 1 {
		t.Fatalf("ownership not cleared; Pulls = %d", got)
	}
}

func TestClaimHandoverPullsPreviousOwner(t *testing.T) {
	h := newPullHarness(t, 7, 8)
	h.agents[7].diffs[0] = []proto.DiffRun{{Off: 0, Data: []byte{1}}}
	h.agents[8].diffs[0] = []proto.DiffRun{{Off: 8, Data: []byte{2}}}
	h.claim(t, 7, 1, 0)
	h.claim(t, 8, 1, 0) // handover: server must pull writer 7 first

	data := h.fetch(t, 0, nil)
	if data[0] != 1 || data[8] != 2 {
		t.Fatalf("handover merge lost bytes: %d %d", data[0], data[8])
	}
	if got := h.srv.Stats().Pulls.Load(); got != 2 {
		t.Fatalf("Pulls = %d, want 2 (handover + fetch)", got)
	}
}

func TestForeignEvictFlushPullsOwnerFirst(t *testing.T) {
	h := newPullHarness(t, 7)
	h.agents[7].diffs[1] = []proto.DiffRun{{Off: 0, Data: []byte{9}}}
	h.claim(t, 7, 1, 1)
	// A different writer flushes disjoint bytes of the same page: the
	// owner's retained bytes must be pulled, not orphaned.
	if _, err := h.cli.Post(100, &proto.EvictFlush{
		Writer: 99,
		Diffs:  []proto.PageDiff{{Page: 1, Runs: []proto.DiffRun{{Off: 16, Data: []byte{5}}}}},
	}, 0); err != nil {
		t.Fatal(err)
	}
	data := h.fetch(t, 0, nil)
	geo := layout.DefaultGeometry()
	if data[geo.PageSize+0] != 9 {
		t.Fatalf("owner byte orphaned: %d", data[geo.PageSize+0])
	}
	if data[geo.PageSize+16] != 5 {
		t.Fatalf("flushed byte missing: %d", data[geo.PageSize+16])
	}
}

func TestRecordsOnOwnedPagePullFirst(t *testing.T) {
	h := newPullHarness(t, 7)
	// The owner retains a byte at offset 0; a record later writes the
	// same offset. The record must win (retained bytes are older).
	h.agents[7].diffs[0] = []proto.DiffRun{{Off: 0, Data: []byte{1}}}
	h.claim(t, 7, 1, 0)
	if _, err := h.cli.Post(100, &proto.DiffBatch{
		Tag:     proto.IntervalTag{Writer: 8, Interval: 1},
		Records: []proto.StoreRecord{{Addr: 0, Data: []byte{2}}},
	}, 0); err != nil {
		t.Fatal(err)
	}
	data := h.fetch(t, 0, nil)
	if data[0] != 2 {
		t.Fatalf("record clobbered by older retained byte: %d", data[0])
	}
}

func TestParkedFetchAlsoPulls(t *testing.T) {
	h := newPullHarness(t, 7)
	h.agents[7].diffs[0] = []proto.DiffRun{{Off: 3, Data: []byte{77}}}

	tag := proto.IntervalTag{Writer: 7, Interval: 1}
	done := make(chan []byte)
	go func() {
		done <- h.fetch(t, 0, []proto.PageNeed{{Page: 0, Tags: []proto.IntervalTag{tag}}})
	}()
	// Park until the claim arrives, then the woken fetch must still
	// pull.
	for h.srv.Stats().ParkedFetches.Load() == 0 {
	}
	h.claim(t, 7, 1, 0)
	data := <-done
	if data[3] != 77 {
		t.Fatalf("parked fetch skipped the pull: %d", data[3])
	}
}

// TestPullFailureDegradesToFetchError claims pages for a writer whose
// cache agent does not exist: the pull fails, and the fetch must come
// back as a clean protocol error — counted, with the server alive and
// still serving other lines — instead of killing the server.
func TestPullFailureDegradesToFetchError(t *testing.T) {
	h := newPullHarness(t, 7)
	// Writer 66 maps to node 266, which has no port on the fabric.
	h.claim(t, 66, 1, 2)

	var resp proto.FetchLineResp
	_, err := h.cli.Call(100, &proto.FetchLineReq{Line: 0}, &resp, 0)
	if err == nil {
		t.Fatal("fetch of a page owned by a dead writer succeeded")
	}
	if got := h.srv.Stats().PullFailures.Load(); got == 0 {
		t.Error("PullFailures not counted")
	}
	if got := h.srv.Stats().FailedFetches.Load(); got == 0 {
		t.Error("FailedFetches not counted")
	}

	// The server survived: an unrelated line still fetches fine, and a
	// live writer's pull on another line still works.
	h.agents[7].diffs[70] = []proto.DiffRun{{Off: 1, Data: []byte{3}}}
	h.claim(t, 7, 1, 70)
	geo := layout.DefaultGeometry()
	line := layout.LineID(70 / geo.LinePages)
	data := h.fetch(t, line, nil)
	off := (70%geo.LinePages)*geo.PageSize + 1
	if data[off] != 3 {
		t.Fatalf("healthy pull after failed pull broke: %d", data[off])
	}
}

// TestParkedFetchWakesDespiteDeadWriter parks a fetch on an interval
// tag whose writer's agent does not exist. The claim must still mark
// the tag applied and wake the parked fetch — which then fails its own
// pull cleanly — rather than leaving the fetcher parked forever.
func TestParkedFetchWakesDespiteDeadWriter(t *testing.T) {
	h := newPullHarness(t, 7)
	tag := proto.IntervalTag{Writer: 66, Interval: 1}
	done := make(chan error, 1)
	go func() {
		var resp proto.FetchLineResp
		_, err := h.cli.Call(100, &proto.FetchLineReq{
			Line:  0,
			Needs: []proto.PageNeed{{Page: 0, Tags: []proto.IntervalTag{tag}}},
		}, &resp, 0)
		done <- err
	}()
	for h.srv.Stats().ParkedFetches.Load() == 0 {
	}
	h.claim(t, 66, 1, 0) // writer 66's agent is unreachable

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("fetch succeeded though the writer is dead")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked fetch never woke after claim from dead writer")
	}
}

func TestPullWithoutAgentMapPanicsServer(t *testing.T) {
	// A claim with a nil AgentAddr is a configuration bug; the server
	// must fail loudly rather than serve stale bytes. We verify the
	// panic is wired by checking New with nil still works for workloads
	// without claims (covered elsewhere) and that AgentAddr presence is
	// honored above; a direct panic test would kill the server goroutine
	// uncleanly, so this is a compile-time/documentation guard.
	geo := layout.DefaultGeometry()
	f := simnet.NewFabric(testLink)
	srv := New(scl.NewSimEndpoint(f, 100), 0, geo, vtime.DefaultCPU, nil)
	if srv.agentAddr != nil {
		t.Fatal("nil AgentAddr not preserved")
	}
}
