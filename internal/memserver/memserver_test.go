package memserver

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/scl"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/vtime"
)

var testLink = vtime.LinkModel{
	Name:         "test",
	Latency:      1000,
	BytesPerSec:  1e9,
	SendOverhead: 50,
	ServiceTime:  100,
}

type harness struct {
	srv    *Server
	cli    scl.Endpoint
	wg     sync.WaitGroup
	doneAt vtime.Time
}

func newHarness(t *testing.T, geo layout.Geometry) *harness {
	t.Helper()
	f := simnet.NewFabric(testLink)
	srvEP := scl.NewSimEndpoint(f, 100)
	h := &harness{
		srv: New(srvEP, 0, geo, vtime.DefaultCPU, func(w uint32) scl.NodeID { return 200 + scl.NodeID(w) }),
		cli: scl.NewSimEndpoint(f, 1),
	}
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.srv.Run()
	}()
	t.Cleanup(func() {
		var ack proto.Ack
		if _, err := h.cli.Call(100, &proto.Shutdown{}, &ack, h.doneAt); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		h.wg.Wait()
	})
	return h
}

func (h *harness) fetch(t *testing.T, line layout.LineID, needs []proto.PageNeed) []byte {
	t.Helper()
	var resp proto.FetchLineResp
	at, err := h.cli.Call(100, &proto.FetchLineReq{Line: uint64(line), Needs: needs}, &resp, h.doneAt)
	if err != nil {
		t.Fatalf("fetch line %d: %v", line, err)
	}
	h.doneAt = at
	return resp.Data
}

func (h *harness) post(t *testing.T, m proto.Msg) {
	t.Helper()
	at, err := h.cli.Post(100, m, h.doneAt)
	if err != nil {
		t.Fatalf("post %v: %v", m.Kind(), err)
	}
	h.doneAt = at
}

func TestFetchUntouchedLineIsZero(t *testing.T) {
	geo := layout.DefaultGeometry()
	h := newHarness(t, geo)
	data := h.fetch(t, 3, nil)
	if len(data) != geo.LineSize() {
		t.Fatalf("line size %d, want %d", len(data), geo.LineSize())
	}
	for i, b := range data {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
	if got := h.srv.Stats().Fetches.Load(); got != 1 {
		t.Errorf("Fetches = %d", got)
	}
}

func TestDiffBatchThenFetch(t *testing.T) {
	geo := layout.DefaultGeometry()
	h := newHarness(t, geo)
	h.post(t, &proto.DiffBatch{
		Tag: proto.IntervalTag{Writer: 9, Interval: 1},
		Diffs: []proto.PageDiff{{
			Page: 1,
			Runs: []proto.DiffRun{{Off: 10, Data: []byte{1, 2, 3}}},
		}},
	})
	// Quote the tag so the fetch is ordered after the batch.
	data := h.fetch(t, 0, []proto.PageNeed{{Page: 1, Tags: []proto.IntervalTag{{Writer: 9, Interval: 1}}}})
	off := geo.PageSize + 10 // page 1 is second page of line 0
	if !bytes.Equal(data[off:off+3], []byte{1, 2, 3}) {
		t.Fatalf("diff not applied: %v", data[off:off+3])
	}
}

func TestFetchParksUntilDiffArrives(t *testing.T) {
	geo := layout.DefaultGeometry()
	h := newHarness(t, geo)

	tag := proto.IntervalTag{Writer: 2, Interval: 5}
	fetched := make(chan []byte)
	go func() {
		var resp proto.FetchLineResp
		_, err := h.cli.Call(100, &proto.FetchLineReq{
			Line:  0,
			Needs: []proto.PageNeed{{Page: 0, Tags: []proto.IntervalTag{tag}}},
		}, &resp, 0)
		if err != nil {
			t.Errorf("parked fetch: %v", err)
		}
		fetched <- resp.Data
	}()

	// The fetch cannot complete before the batch is posted. Wait until
	// the server has parked it, then post the batch.
	for h.srv.Stats().ParkedFetches.Load() == 0 {
	}
	select {
	case <-fetched:
		t.Fatal("fetch completed before diff arrived")
	default:
	}
	h.post(t, &proto.DiffBatch{
		Tag:   tag,
		Diffs: []proto.PageDiff{{Page: 0, Runs: []proto.DiffRun{{Off: 0, Data: []byte{42}}}}},
	})
	data := <-fetched
	if data[0] != 42 {
		t.Fatalf("parked fetch returned stale data: %d", data[0])
	}
}

// A fetch parked on a tag whose writer the manager has reaped would
// wait forever: the writer announced its release interval but died
// before shipping the DiffBatch. The manager's WriterDead obituary must
// unpark it (serving the bytes that did arrive) and keep later fetches
// quoting the dead writer's tags from parking at all.
func TestWriterDeadUnparksFetch(t *testing.T) {
	geo := layout.DefaultGeometry()
	h := newHarness(t, geo)

	// An earlier interval of the doomed writer did land...
	applied := proto.IntervalTag{Writer: 3, Interval: 1}
	h.post(t, &proto.DiffBatch{
		Tag:   applied,
		Diffs: []proto.PageDiff{{Page: 0, Runs: []proto.DiffRun{{Off: 0, Data: []byte{7}}}}},
	})
	// ...but the closing interval was only announced; its batch was
	// never shipped.
	lost := proto.IntervalTag{Writer: 3, Interval: 2}

	fetched := make(chan []byte)
	go func() {
		var resp proto.FetchLineResp
		_, err := h.cli.Call(100, &proto.FetchLineReq{
			Line:  0,
			Needs: []proto.PageNeed{{Page: 0, Tags: []proto.IntervalTag{applied, lost}}},
		}, &resp, 0)
		if err != nil {
			t.Errorf("parked fetch: %v", err)
		}
		fetched <- resp.Data
	}()
	for h.srv.Stats().ParkedFetches.Load() == 0 {
	}
	select {
	case <-fetched:
		t.Fatal("fetch completed though the lost tag never arrived")
	default:
	}

	h.post(t, &proto.WriterDead{Writer: 3})
	select {
	case data := <-fetched:
		if data[0] != 7 {
			t.Fatalf("unparked fetch lost the applied interval: %d", data[0])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fetch still parked after WriterDead obituary")
	}

	// A later fetch quoting the dead writer's unapplied tag must not
	// park at all.
	data := h.fetch(t, 0, []proto.PageNeed{{Page: 0, Tags: []proto.IntervalTag{lost}}})
	if data[0] != 7 {
		t.Fatalf("post-obituary fetch returned %d, want 7", data[0])
	}
	if got := h.srv.Stats().ParkedFetches.Load(); got != 1 {
		t.Errorf("ParkedFetches = %d, want 1 (the post-obituary fetch must not park)", got)
	}
}

func TestEmptyPagesMarkTagApplied(t *testing.T) {
	geo := layout.DefaultGeometry()
	h := newHarness(t, geo)
	// Evict flush delivers the bytes mid-interval...
	h.post(t, &proto.EvictFlush{
		Writer: 1,
		Diffs:  []proto.PageDiff{{Page: 2, Runs: []proto.DiffRun{{Off: 0, Data: []byte{7}}}}},
	})
	// ...and the release's batch lists the page as already flushed.
	tag := proto.IntervalTag{Writer: 1, Interval: 1}
	h.post(t, &proto.DiffBatch{Tag: tag, EmptyPages: []uint64{2}})
	data := h.fetch(t, 0, []proto.PageNeed{{Page: 2, Tags: []proto.IntervalTag{tag}}})
	if data[2*geo.PageSize] != 7 {
		t.Fatalf("evict-flushed byte missing: %d", data[2*geo.PageSize])
	}
	if got := h.srv.Stats().EvictFlushes.Load(); got != 1 {
		t.Errorf("EvictFlushes = %d", got)
	}
}

func TestRecordsApplied(t *testing.T) {
	geo := layout.DefaultGeometry()
	h := newHarness(t, geo)
	tag := proto.IntervalTag{Writer: 4, Interval: 2}
	h.post(t, &proto.DiffBatch{
		Tag:     tag,
		Records: []proto.StoreRecord{{Addr: uint64(geo.PageSize) + 100, Data: []byte{9, 8}}},
	})
	data := h.fetch(t, 0, []proto.PageNeed{{Page: 1, Tags: []proto.IntervalTag{tag}}})
	off := geo.PageSize + 100
	if !bytes.Equal(data[off:off+2], []byte{9, 8}) {
		t.Fatalf("record not applied: %v", data[off:off+2])
	}
	if got := h.srv.Stats().Records.Load(); got != 1 {
		t.Errorf("Records = %d", got)
	}
}

func TestWrongHomeRejected(t *testing.T) {
	geo := layout.Geometry{PageSize: 4096, LinePages: 4, NumServers: 2, Striped: true}
	h := newHarness(t, geo) // server index 0
	var resp proto.FetchLineResp
	// Line 1 homes on server 1, not 0.
	if _, err := h.cli.Call(100, &proto.FetchLineReq{Line: 1}, &resp, 0); err == nil {
		t.Fatal("fetch of foreign line succeeded")
	}
}

func TestShutdownFailsParkedFetch(t *testing.T) {
	geo := layout.DefaultGeometry()
	f := simnet.NewFabric(testLink)
	srv := New(scl.NewSimEndpoint(f, 100), 0, geo, vtime.DefaultCPU, nil)
	cli := scl.NewSimEndpoint(f, 1)
	done := make(chan struct{})
	go func() { srv.Run(); close(done) }()

	errc := make(chan error, 1)
	go func() {
		var resp proto.FetchLineResp
		_, err := cli.Call(100, &proto.FetchLineReq{
			Line:  0,
			Needs: []proto.PageNeed{{Page: 0, Tags: []proto.IntervalTag{{Writer: 1, Interval: 1}}}},
		}, &resp, 0)
		errc <- err
	}()
	for srv.Stats().ParkedFetches.Load() == 0 {
	}
	if _, err := cli.Post(100, &proto.Shutdown{}, 0); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err == nil {
		t.Fatal("parked fetch survived shutdown without error")
	} else if !errors.Is(err, proto.ErrShutdown) {
		t.Fatalf("parked fetch error not typed as shutdown: %v", err)
	}
	<-done
}

// A warm standby applies the primary's replicated diff stream but
// refuses fetches with a typed proto.ErrNotPromoted until promoted;
// after promotion it serves the replicated bytes.
func TestStandbyReplicationAndPromotion(t *testing.T) {
	geo := layout.DefaultGeometry()
	f := simnet.NewFabric(testLink)
	live := new(stats.Liveness)
	primary := New(scl.NewSimEndpoint(f, 100), 0, geo, vtime.DefaultCPU, nil)
	primary.SetReplica(101)
	primary.SetLiveness(live)
	standby := New(scl.NewSimEndpoint(f, 101), 0, geo, vtime.DefaultCPU, nil)
	standby.SetStandby(true)
	standby.SetLiveness(live)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); primary.Run() }()
	go func() { defer wg.Done(); standby.Run() }()
	cli := scl.NewSimEndpoint(f, 1)
	defer func() {
		var ack proto.Ack
		for _, node := range []scl.NodeID{100, 101} {
			if _, err := cli.Call(node, &proto.Shutdown{}, &ack, 0); err != nil {
				t.Errorf("shutdown %d: %v", node, err)
			}
		}
		wg.Wait()
	}()

	tag := proto.IntervalTag{Writer: 3, Interval: 1}
	var ack proto.Ack
	// Two-way, so the ack proves the primary applied and forwarded it.
	if _, err := cli.Call(100, &proto.DiffBatch{
		Tag:   tag,
		Diffs: []proto.PageDiff{{Page: 0, Runs: []proto.DiffRun{{Off: 7, Data: []byte{42}}}}},
	}, &ack, 0); err != nil {
		t.Fatal(err)
	}

	var resp proto.FetchLineResp
	if _, err := cli.Call(101, &proto.FetchLineReq{Line: 0}, &resp, 0); err == nil {
		t.Fatal("unpromoted standby served a fetch")
	} else if !errors.Is(err, proto.ErrNotPromoted) {
		t.Fatalf("standby refusal not typed: %v", err)
	}

	if _, err := cli.Call(101, &proto.Promote{}, &ack, 0); err != nil {
		t.Fatalf("promote: %v", err)
	}
	// Quoting the tag parks the fetch until the replicated batch has
	// been applied, so this cannot race the one-way replication stream.
	var after proto.FetchLineResp
	if _, err := cli.Call(101, &proto.FetchLineReq{
		Line:  0,
		Needs: []proto.PageNeed{{Page: 0, Tags: []proto.IntervalTag{tag}}},
	}, &after, 0); err != nil {
		t.Fatalf("promoted fetch: %v", err)
	}
	if after.Data[7] != 42 {
		t.Fatalf("replicated byte missing from promoted standby: %d", after.Data[7])
	}
	if live.ReplBatches.Load() == 0 {
		t.Error("replication counter never moved")
	}
	if live.Promotions.Load() != 1 {
		t.Errorf("Promotions = %d, want 1", live.Promotions.Load())
	}
}

// Property: a random sequence of diff batches leaves the server's pages
// byte-identical to a directly mutated model array.
func TestDiffApplicationMatchesModel(t *testing.T) {
	geo := layout.DefaultGeometry()
	prop := func(seed int64) bool {
		h := newHarness(t, geo)
		rng := rand.New(rand.NewSource(seed))
		model := make([]byte, geo.LineSize()) // line 0
		var tags []proto.IntervalTag
		for i := 0; i < 8; i++ {
			tag := proto.IntervalTag{Writer: uint32(rng.Intn(4)), Interval: uint64(i + 1)}
			tags = append(tags, tag)
			var diffs []proto.PageDiff
			for p := 0; p < geo.LinePages; p++ {
				if rng.Intn(2) == 0 {
					continue
				}
				n := 1 + rng.Intn(64)
				off := rng.Intn(geo.PageSize - n)
				data := make([]byte, n)
				rng.Read(data)
				copy(model[p*geo.PageSize+off:], data)
				diffs = append(diffs, proto.PageDiff{
					Page: uint64(p),
					Runs: []proto.DiffRun{{Off: uint32(off), Data: data}},
				})
			}
			h.post(t, &proto.DiffBatch{Tag: tag, Diffs: diffs})
		}
		needs := make([]proto.PageNeed, geo.LinePages)
		for p := range needs {
			needs[p] = proto.PageNeed{Page: uint64(p), Tags: tags}
		}
		got := h.fetch(t, 0, needs)
		return bytes.Equal(got, model)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// The server's virtual clock must advance past every arrival it
// processes (queueing).
func TestServerClockAdvances(t *testing.T) {
	geo := layout.DefaultGeometry()
	h := newHarness(t, geo)
	h.doneAt = 1_000_000
	_ = h.fetch(t, 0, nil)
	if got := h.srv.Clock(); got < 1_000_000+testLink.Latency {
		t.Fatalf("server clock %v did not pass request arrival", got)
	}
}
