package memserver

import (
	"encoding/binary"
	"sort"
	"sync"

	"repro/internal/layout"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// ---------------------------------------------------------------------------
// Word-run page codec.
//
// Pages in the cold tier (and sealed snapshot frames) are stored under a
// word-run encoding that reuses the diffPage observation: DSM pages are
// dominated by long runs of zero words. The stream is a sequence of
// varint-headed runs over 8-byte words — header h encodes kind = h&1 and
// length n = h>>1 words; kind 0 is a zero run (no payload), kind 1 is a
// literal run followed by n*8 raw bytes. Any non-word tail of the page is
// appended raw. An all-zero page encodes to ~2 bytes.
// ---------------------------------------------------------------------------

func putUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

// compressPage encodes page into the word-run format, appending to dst
// (which may be nil) and returning the result.
func compressPage(dst, page []byte) []byte {
	words := len(page) / 8
	i := 0
	for i < words {
		if binary.LittleEndian.Uint64(page[i*8:]) == 0 {
			j := i + 1
			for j < words && binary.LittleEndian.Uint64(page[j*8:]) == 0 {
				j++
			}
			dst = putUvarint(dst, uint64(j-i)<<1)
			i = j
			continue
		}
		j := i + 1
		for j < words && binary.LittleEndian.Uint64(page[j*8:]) != 0 {
			j++
		}
		dst = putUvarint(dst, uint64(j-i)<<1|1)
		dst = append(dst, page[i*8:j*8]...)
		i = j
	}
	dst = append(dst, page[words*8:]...)
	return dst
}

// decompressPage decodes a word-run stream into page, which must be the
// original page length. A nil blob is the implicit all-zero frame. The
// destination is fully overwritten (zero runs clear it), so a dirty
// scratch buffer is fine.
func decompressPage(page, blob []byte) {
	words := len(page) / 8
	w := 0
	off := 0
	for w < words {
		h, n := binary.Uvarint(blob[off:])
		if n <= 0 {
			break // truncated — treat the rest as zero
		}
		off += n
		run := int(h >> 1)
		if run > words-w {
			run = words - w
		}
		if h&1 == 0 {
			clear(page[w*8 : (w+run)*8])
		} else {
			// Bound the literal payload by what the blob actually holds so
			// a truncated or corrupt stream degrades to zero fill (like the
			// truncated-header case) instead of panicking.
			end := off + run*8
			if end > len(blob) {
				end = len(blob)
			}
			n := copy(page[w*8:(w+run)*8], blob[off:end])
			off = end
			if n < run*8 {
				clear(page[w*8+n : (w+run)*8])
			}
		}
		w += run
	}
	clear(page[w*8 : words*8])
	tail := page[words*8:]
	n := copy(tail, blob[off:])
	clear(tail[n:])
}

// ---------------------------------------------------------------------------
// tierStore: per-shard two-tier page store.
//
// The hot set is the shard's ordinary pages map, tracked here by an
// intrusive LRU list with a byte budget; pages past the budget are
// demoted — word-run compressed into the cold map and removed from the
// pages map. Demotion is deferred: operations run against the hot set
// unconstrained and enforce() trims back to budget when the operation
// completes, so a page can never be demoted out from under a two-phase
// apply. Every tier move accrues virtual time into sh.pending (the
// configured TierModel's latency + bandwidth), which the enclosing
// operation drains into its work term.
// ---------------------------------------------------------------------------

type tierStore struct {
	budget   int64
	model    vtime.TierModel
	st       *stats.Tier
	hotBytes int64
	cold     map[layout.PageID][]byte
	nodes    map[layout.PageID]*tierNode
	head     *tierNode // least recently used
	tail     *tierNode // most recently used
}

type tierNode struct {
	p          layout.PageID
	prev, next *tierNode
}

func newTierStore(budget int64, model vtime.TierModel, st *stats.Tier) *tierStore {
	return &tierStore{
		budget: budget,
		model:  model,
		st:     st,
		cold:   make(map[layout.PageID][]byte),
		nodes:  make(map[layout.PageID]*tierNode),
	}
}

func (t *tierStore) unlink(n *tierNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		t.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		t.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (t *tierStore) pushMRU(n *tierNode) {
	n.prev = t.tail
	if t.tail != nil {
		t.tail.next = n
	} else {
		t.head = n
	}
	t.tail = n
}

// touch marks an already-hot page most recently used.
func (t *tierStore) touch(p layout.PageID) {
	n, ok := t.nodes[p]
	if !ok {
		return
	}
	if t.tail != n {
		t.unlink(n)
		t.pushMRU(n)
	}
}

// noteHot registers a newly materialized hot page.
func (t *tierStore) noteHot(sh *shard, p layout.PageID) {
	if _, ok := t.nodes[p]; ok {
		return
	}
	n := &tierNode{p: p}
	t.nodes[p] = n
	t.pushMRU(n)
	t.hotBytes += int64(sh.srv.geo.PageSize)
}

// promote moves a cold page back into the hot set, returning it, or nil
// if the page is not in the cold tier.
func (t *tierStore) promote(sh *shard, p layout.PageID) []byte {
	blob, ok := t.cold[p]
	if !ok {
		return nil
	}
	delete(t.cold, p)
	b := make([]byte, sh.srv.geo.PageSize)
	decompressPage(b, blob)
	sh.pages[p] = b
	t.noteHot(sh, p)
	sh.pending += t.model.MoveTime(len(blob))
	t.st.Promotions.Add(1)
	t.st.ColdBytes.Add(-int64(len(b)))
	t.st.CompressedBytes.Add(-int64(len(blob)))
	return b
}

// forget removes a hot page's LRU bookkeeping (the caller deletes the
// page itself from sh.pages). Used when a dead fork's private pages are
// discarded rather than demoted.
func (t *tierStore) forget(sh *shard, p layout.PageID) {
	n, ok := t.nodes[p]
	if !ok {
		return
	}
	t.unlink(n)
	delete(t.nodes, p)
	t.hotBytes -= int64(sh.srv.geo.PageSize)
}

// dropCold discards a cold-tier blob without promoting it.
func (t *tierStore) dropCold(sh *shard, p layout.PageID) {
	blob, ok := t.cold[p]
	if !ok {
		return
	}
	delete(t.cold, p)
	t.st.ColdBytes.Add(-int64(sh.srv.geo.PageSize))
	t.st.CompressedBytes.Add(-int64(len(blob)))
}

// enforce demotes least-recently-used pages until the hot set fits the
// budget again. Called at the end of each shard operation.
func (t *tierStore) enforce(sh *shard) {
	for t.hotBytes > t.budget && t.head != nil {
		n := t.head
		t.unlink(n)
		delete(t.nodes, n.p)
		b := sh.pages[n.p]
		delete(sh.pages, n.p)
		t.hotBytes -= int64(sh.srv.geo.PageSize)
		blob := compressPage(nil, b)
		t.cold[n.p] = blob
		sh.pending += t.model.MoveTime(len(blob))
		t.st.Demotions.Add(1)
		t.st.ColdBytes.Add(int64(len(b)))
		t.st.CompressedBytes.Add(int64(len(blob)))
	}
}

// ---------------------------------------------------------------------------
// snapStore: server-level sealed snapshot frames and fork mappings.
//
// Sealed frames are keyed by the original page id and shared by every
// fork of the snapshot; a fork costs one range entry here plus a manager
// allocation — no page copies. Frames live at server (not shard) level
// because ShardOf is not congruent between an original page and its
// image in a fork range, so a shard serving a forked page may need a
// frame another shard sealed. The mutex covers the rare writes (seal,
// fork registration); reads take the read lock on the page-miss path
// only.
// ---------------------------------------------------------------------------

type snapStore struct {
	mu    sync.RWMutex
	snaps map[uint64]map[layout.PageID][]byte // snap id -> orig page -> frame
	forks []forkRange                         // sorted by base page
}

type forkRange struct {
	base   layout.PageID // first page of the fork's range
	orig   layout.PageID // first page of the snapshotted range
	npages uint64
	snap   uint64
}

func newSnapStore() *snapStore {
	return &snapStore{snaps: make(map[uint64]map[layout.PageID][]byte)}
}

// ensure creates the frame map for a snapshot so that "sealed with zero
// frames" is distinguishable from "never sealed here".
func (ss *snapStore) ensure(snap uint64) map[layout.PageID][]byte {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	m := ss.snaps[snap]
	if m == nil {
		m = make(map[layout.PageID][]byte)
		ss.snaps[snap] = m
	}
	return m
}

// store records one sealed frame (blob nil means explicit zero; zero
// pages are normally just omitted).
func (ss *snapStore) store(snap uint64, p layout.PageID, blob []byte) {
	ss.mu.Lock()
	ss.snaps[snap][p] = blob
	ss.mu.Unlock()
}

// register adds (or idempotently re-adds) a fork range mapping and
// returns the net change in registered ranges. Any existing range
// overlapping the new one is stale — the manager only reissues striped
// space after the old fork was unmapped here, so a survivor means a
// lost unmap — and is dropped so a dead fork can never shadow the new
// range's pages (lookup resolves through the single greatest-base
// entry and relies on ranges being disjoint).
func (ss *snapStore) register(fr forkRange) int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	end := fr.base + layout.PageID(fr.npages)
	kept := ss.forks[:0]
	removed := 0
	for _, old := range ss.forks {
		if old.base < end && fr.base < old.base+layout.PageID(old.npages) {
			removed++
			continue
		}
		kept = append(kept, old)
	}
	ss.forks = kept
	i := sort.Search(len(ss.forks), func(i int) bool { return ss.forks[i].base >= fr.base })
	ss.forks = append(ss.forks, forkRange{})
	copy(ss.forks[i+1:], ss.forks[i:])
	ss.forks[i] = fr
	return 1 - removed
}

// unregister removes the fork range rooted at base, reporting whether
// one was registered.
func (ss *snapStore) unregister(base layout.PageID) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	i := sort.Search(len(ss.forks), func(i int) bool { return ss.forks[i].base >= base })
	if i >= len(ss.forks) || ss.forks[i].base != base {
		return false
	}
	ss.forks = append(ss.forks[:i], ss.forks[i+1:]...)
	return true
}

// release drops a snapshot's sealed frames once the manager's refcount
// reaches zero, returning how many frames were held. Fork ranges still
// pointing at the snapshot (none should exist — the manager releases
// only after every fork is gone) are dropped defensively so lookup can
// never resolve through a released snapshot.
func (ss *snapStore) release(snap uint64) int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	frames, ok := ss.snaps[snap]
	if !ok {
		return 0
	}
	delete(ss.snaps, snap)
	kept := ss.forks[:0]
	for _, fr := range ss.forks {
		if fr.snap != snap {
			kept = append(kept, fr)
		}
	}
	ss.forks = kept
	return len(frames)
}

// lookup resolves page p through the fork table: if p falls inside a
// registered fork range it returns the sealed frame for the congruent
// original page (nil frame = zero page) and ok=true.
func (ss *snapStore) lookup(p layout.PageID) (blob []byte, ok bool) {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	i := sort.Search(len(ss.forks), func(i int) bool { return ss.forks[i].base > p })
	if i == 0 {
		return nil, false
	}
	fr := ss.forks[i-1]
	off := uint64(p - fr.base)
	if off >= fr.npages {
		return nil, false
	}
	frames, sealed := ss.snaps[fr.snap]
	if !sealed {
		return nil, false
	}
	return frames[fr.orig+layout.PageID(off)], true
}
