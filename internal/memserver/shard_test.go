package memserver

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/scl"
	"repro/internal/simnet"
	"repro/internal/vtime"
)

// shardGeo is a single-page-line geometry so every page is its own
// cache line and the shard mapping is exercised page by page.
var shardGeo = layout.Geometry{
	PageSize:   layout.DefaultPageSize,
	LinePages:  1,
	NumServers: 1,
	Striped:    true,
}

// newShardedHarness boots one server with the given shard count on an
// unsequenced fabric (so a multi-shard server runs real worker
// goroutines) and returns a client-endpoint factory.
func newShardedHarness(t *testing.T, geo layout.Geometry, shards int) (*Server, func(node scl.NodeID) scl.Endpoint) {
	t.Helper()
	f := simnet.NewFabric(testLink)
	srvEP := scl.NewSimEndpoint(f, 100)
	srv := New(srvEP, 0, geo, vtime.DefaultCPU, nil)
	srv.SetShards(shards)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Run()
	}()
	ctl := scl.NewSimEndpoint(f, 99)
	t.Cleanup(func() {
		var ack proto.Ack
		if _, err := ctl.Call(100, &proto.Shutdown{}, &ack, 1<<40); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		wg.Wait()
	})
	return srv, func(node scl.NodeID) scl.Endpoint { return scl.NewSimEndpoint(f, node) }
}

// pageVal builds a full-page diff whose first 8 bytes encode val.
func pageVal(page layout.PageID, val uint64) proto.PageDiff {
	data := make([]byte, 8)
	binary.LittleEndian.PutUint64(data, val)
	return proto.PageDiff{Page: uint64(page), Runs: []proto.DiffRun{{Off: 0, Data: data}}}
}

// TestShardedConcurrentDisjointTraffic is the -race hammer: several
// writers, each on its own client endpoint, pound one 4-shard server
// with DiffBatch posts against disjoint page sets while fetching their
// pages back with quoted interval tags. Per-page tag ordering must
// hold: a fetch quoting tag (w, i) must observe interval i's bytes even
// when the fetch overtakes the one-way batch and has to park. A
// concurrent reader issues combined multi-page fetches spanning every
// writer's pages to stress the split/join path at the same time.
func TestShardedConcurrentDisjointTraffic(t *testing.T) {
	const (
		writers   = 4
		intervals = 50
		pagesPer  = 3
	)
	srv, dial := newShardedHarness(t, shardGeo, 4)

	pagesOf := func(w int) []layout.PageID {
		ps := make([]layout.PageID, pagesPer)
		for k := range ps {
			ps[k] = layout.PageID((w-1)*pagesPer + k)
		}
		return ps
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+1)
	for w := 1; w <= writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ep := dial(scl.NodeID(w))
			var at vtime.Time
			for i := uint64(1); i <= intervals; i++ {
				tag := proto.IntervalTag{Writer: uint32(w), Interval: i}
				db := &proto.DiffBatch{Tag: tag}
				for _, p := range pagesOf(w) {
					db.Diffs = append(db.Diffs, pageVal(p, uint64(i)))
				}
				var err error
				if at, err = ep.Post(100, db, at); err != nil {
					errs <- fmt.Errorf("writer %d post %d: %w", w, i, err)
					return
				}
				for _, p := range pagesOf(w) {
					var resp proto.FetchLineResp
					at2, err := ep.Call(100, &proto.FetchLineReq{
						Line:  uint64(p),
						Needs: []proto.PageNeed{{Page: uint64(p), Tags: []proto.IntervalTag{tag}}},
					}, &resp, at)
					if err != nil {
						errs <- fmt.Errorf("writer %d fetch page %d interval %d: %w", w, p, i, err)
						return
					}
					at = at2
					if got := binary.LittleEndian.Uint64(resp.Data); got != uint64(i) {
						errs <- fmt.Errorf("writer %d page %d: fetched value %d after applying interval %d", w, p, got, i)
						return
					}
				}
			}
		}(w)
	}
	// Reader: combined fetches across all writers' pages, with no tag
	// quotes — any snapshot is legal, the fetch just must not fail or
	// tear the reply tiling (each page's value must be one the owner
	// actually wrote: 0..intervals).
	wg.Add(1)
	go func() {
		defer wg.Done()
		ep := dial(50)
		var at vtime.Time
		for r := 0; r < 2*intervals; r++ {
			var pages []uint64
			for w := 1; w <= writers; w++ {
				for _, p := range pagesOf(w) {
					pages = append(pages, uint64(p))
				}
			}
			var resp proto.FetchLinesResp
			at2, err := ep.Call(100, &proto.FetchLinesReq{Pages: pages}, &resp, at)
			if err != nil {
				errs <- fmt.Errorf("reader round %d: %w", r, err)
				return
			}
			at = at2
			if want := len(pages) * shardGeo.PageSize; len(resp.Data) != want {
				errs <- fmt.Errorf("reader round %d: reply %d bytes, want %d", r, len(resp.Data), want)
				return
			}
			for k := range pages {
				v := binary.LittleEndian.Uint64(resp.Data[k*shardGeo.PageSize:])
				if v > intervals {
					errs <- fmt.Errorf("reader round %d: page %d holds %d, beyond last interval %d", r, pages[k], v, intervals)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := srv.Stats()
	if got := st.DiffBatches.Load(); got != writers*intervals {
		t.Errorf("DiffBatches = %d, want %d", got, writers*intervals)
	}
	if st.SplitFetches.Load() == 0 {
		t.Errorf("no combined fetch was split across shards (SplitFetches = 0)")
	}
}

// TestSplitFetchAssemblesSegments checks the dispatcher's split/join
// byte plumbing: after one batch writes distinct patterns to pages that
// map to different shards, a combined fetch spanning lines and pages
// must return the segments tiled exactly in request order.
func TestSplitFetchAssemblesSegments(t *testing.T) {
	srv, dial := newShardedHarness(t, shardGeo, 4)
	ep := dial(1)

	const npages = 8
	tag := proto.IntervalTag{Writer: 7, Interval: 1}
	db := &proto.DiffBatch{Tag: tag}
	for p := 0; p < npages; p++ {
		data := bytes.Repeat([]byte{byte(p + 1)}, shardGeo.PageSize)
		db.Diffs = append(db.Diffs, proto.PageDiff{Page: uint64(p), Runs: []proto.DiffRun{{Off: 0, Data: data}}})
	}
	at, err := ep.Post(100, db, 0)
	if err != nil {
		t.Fatalf("post batch: %v", err)
	}

	// Lines [0 1] then pages [2..7], every page gated on the batch's tag.
	req := &proto.FetchLinesReq{Lines: []uint64{0, 1}}
	var needs []proto.PageNeed
	for p := 0; p < npages; p++ {
		if p >= 2 {
			req.Pages = append(req.Pages, uint64(p))
		}
		needs = append(needs, proto.PageNeed{Page: uint64(p), Tags: []proto.IntervalTag{tag}})
	}
	req.Needs = needs
	var resp proto.FetchLinesResp
	if _, err := ep.Call(100, req, &resp, at); err != nil {
		t.Fatalf("combined fetch: %v", err)
	}
	if want := npages * shardGeo.PageSize; len(resp.Data) != want {
		t.Fatalf("reply %d bytes, want %d", len(resp.Data), want)
	}
	for p := 0; p < npages; p++ {
		seg := resp.Data[p*shardGeo.PageSize : (p+1)*shardGeo.PageSize]
		for i, b := range seg {
			if b != byte(p+1) {
				t.Fatalf("segment %d byte %d = %#x, want %#x", p, i, b, byte(p+1))
			}
		}
	}

	st := srv.Stats()
	if st.SplitFetches.Load() != 1 {
		t.Errorf("SplitFetches = %d, want 1", st.SplitFetches.Load())
	}
	if st.SplitBatches.Load() != 1 {
		t.Errorf("SplitBatches = %d, want 1 (the %d-page batch spans shards)", st.SplitBatches.Load(), npages)
	}
}

// TestParallelApplyMatchesSerial checks that a batch big enough for the
// bounded parallel copy pool (>= 4 pages, >= 16 KiB) lands the same
// bytes as the serial path and is counted.
func TestParallelApplyMatchesSerial(t *testing.T) {
	srv, dial := newShardedHarness(t, shardGeo, 1)
	ep := dial(1)

	const npages = 6
	tag := proto.IntervalTag{Writer: 3, Interval: 1}
	db := &proto.DiffBatch{Tag: tag}
	for p := 0; p < npages; p++ {
		data := bytes.Repeat([]byte{byte(0xA0 + p)}, shardGeo.PageSize)
		db.Diffs = append(db.Diffs, proto.PageDiff{Page: uint64(p), Runs: []proto.DiffRun{{Off: 0, Data: data}}})
	}
	at, err := ep.Post(100, db, 0)
	if err != nil {
		t.Fatalf("post batch: %v", err)
	}
	for p := 0; p < npages; p++ {
		var resp proto.FetchLineResp
		at2, err := ep.Call(100, &proto.FetchLineReq{
			Line:  uint64(p),
			Needs: []proto.PageNeed{{Page: uint64(p), Tags: []proto.IntervalTag{tag}}},
		}, &resp, at)
		if err != nil {
			t.Fatalf("fetch page %d: %v", p, err)
		}
		at = at2
		for i, b := range resp.Data {
			if b != byte(0xA0+p) {
				t.Fatalf("page %d byte %d = %#x, want %#x", p, i, b, byte(0xA0+p))
			}
		}
	}
	if got := srv.Stats().ParallelApplies.Load(); got != 1 {
		t.Errorf("ParallelApplies = %d, want 1", got)
	}
}
