package memserver

import (
	"fmt"
	"sync"

	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/scl"
	"repro/internal/vtime"
)

// sealInfo marks a subFetch as a snapshot seal: its pages are frozen
// into sealed frames instead of returned as bytes.
type sealInfo struct {
	snap  uint64
	split bool // one share of a multi-shard seal (Svc charged once at dispatch)
	join  *sealJoin
}

// sealJoin joins the per-shard completions of a SealAS. Like fetchJoin
// it keeps the lowest-numbered failing shard's error so the winning
// error does not depend on shard completion order, but the success
// reply is a bare Ack — the frames stay on the server.
type sealJoin struct {
	req       *scl.Request
	mu        sync.Mutex
	remaining int
	done      vtime.Time
	err       error
	errShard  int
	errCode   uint16
}

func (j *sealJoin) complete(shardID int, at vtime.Time, err error, code uint16) {
	j.mu.Lock()
	if at > j.done {
		j.done = at
	}
	if err != nil && (j.err == nil || shardID < j.errShard) {
		j.err, j.errShard, j.errCode = err, shardID, code
	}
	j.remaining--
	last := j.remaining == 0
	j.mu.Unlock()
	if !last {
		return
	}
	if j.err != nil {
		j.req.ReplyErrorCode(j.errCode, j.err, j.done)
		return
	}
	j.req.Reply(&proto.Ack{}, j.done)
}

// dispatchSealAS freezes this server's share of a snapshot's pages. The
// client form (Pages empty) covers every in-range page homed here; the
// standby form (Pages set) is a primary shard forwarding exactly the
// pages it sealed. Needs carry the same interval-tag happens-before a
// fetch would quote: a seal must not freeze a page before the diffs the
// snapshotting thread has already released are applied.
func (s *Server) dispatchSealAS(req *scl.Request) {
	var m proto.SealAS
	if err := req.Decode(&m); err != nil {
		req.ReplyError(err, s.Clock())
		return
	}
	if s.standby.Load() && len(m.Pages) == 0 {
		req.ReplyErrorCode(proto.CodeNotPromoted,
			fmt.Errorf("memserver %d: standby not promoted", s.index), s.Clock())
		return
	}
	var pages []layout.PageID
	if len(m.Pages) > 0 {
		pages = make([]layout.PageID, len(m.Pages))
		for i, pu := range m.Pages {
			pages[i] = layout.PageID(pu)
		}
	} else {
		first := s.geo.PageOf(layout.Addr(m.Base))
		for i := uint64(0); i < m.NPages; i++ {
			p := first + layout.PageID(i)
			if s.geo.HomeOf(p) == s.index {
				pages = append(pages, p)
			}
		}
	}
	// Create the snapshot's frame map up front so "sealed with zero
	// frames" (an all-zero image) is recorded, not mistaken for "never
	// sealed here".
	s.snaps.ensure(m.Snap)

	subs := make([]*subFetch, s.nshards)
	sub := func(id int) *subFetch {
		if subs[id] == nil {
			subs[id] = &subFetch{req: req}
		}
		return subs[id]
	}
	for _, p := range pages {
		f := sub(s.geo.ShardOf(p, s.nshards))
		f.pages = append(f.pages, p)
	}
	for i := range m.Needs {
		f := sub(s.geo.ShardOf(layout.PageID(m.Needs[i].Page), s.nshards))
		f.needs = append(f.needs, m.Needs[i])
	}
	count := 0
	for _, f := range subs {
		if f != nil {
			count++
		}
	}
	if count == 0 {
		req.Reply(&proto.Ack{}, req.Arrive()+req.Svc())
		return
	}
	j := &sealJoin{req: req, remaining: count}
	for id, f := range subs {
		if f == nil {
			continue
		}
		f.seal = &sealInfo{snap: m.Snap, split: count > 1, join: j}
		s.enqueue(s.shards[id], shardItem{kind: itemFetch, sub: f})
	}
}

// sealPages freezes this shard's share of a snapshot: each page's
// current bytes become a word-run-compressed sealed frame keyed by the
// original page id, shared read-only by every future fork. Hot pages
// are compressed in place; cold pages contribute their already-encoded
// blob without a round trip through raw bytes; pages never materialized
// are implicitly zero and store no frame. Like replyFetch, lazily-owned
// pages are pulled up to date first — the seal must capture the
// writer's retained bytes.
func (sh *shard) sealPages(sub *subFetch, tags []proto.IntervalTag) {
	s := sh.srv
	ready := sub.req.Arrive()
	if sub.seal.split {
		ready += sub.req.Svc()
	}
	for _, tag := range tags {
		if at, ok := sh.appliedAt[tag]; ok && at > ready {
			ready = at
		}
	}
	if err := sh.pullOwned(nil, sub.pages, &ready); err != nil {
		sub.seal.join.complete(sh.id, sh.cal.maxEnd,
			fmt.Errorf("memserver %d: seal %d: %w", s.index, sub.seal.snap, err), proto.CodeGeneric)
		return
	}
	sealed := make([]uint64, 0, len(sub.pages))
	bytes := 0
	for _, p := range sub.pages {
		var blob []byte
		if b, ok := sh.pages[p]; ok {
			blob = compressPage(nil, b)
			bytes += len(b)
		} else if sh.tier != nil && sh.tier.cold[p] != nil {
			blob = append([]byte(nil), sh.tier.cold[p]...)
			bytes += s.geo.PageSize
		} else if fb, ok := s.snaps.lookup(p); ok {
			// Snapshotting a fork range: a page the fork never CoW-broke
			// still reads as its parent snapshot's sealed frame, so the new
			// snapshot must seal those inherited bytes — not implicit zeros.
			// The blob is copied so the new frame survives the parent
			// snapshot's release.
			if fb == nil {
				continue // parent frame is an explicit zero page
			}
			blob = append([]byte(nil), fb...)
			bytes += s.geo.PageSize
		} else {
			continue // never materialized: implicit zero frame
		}
		s.snaps.store(sub.seal.snap, p, blob)
		sealed = append(sealed, uint64(p))
	}
	if ts := s.tierStats; ts != nil {
		ts.SealedPages.Add(int64(len(sealed)))
	}
	work := s.cpu.CopyTime(bytes) + sh.drainPending()
	if !sub.seal.split {
		work += sub.req.Svc()
	}
	done := sh.book(ready, work) + work
	// Forward this shard's sealed share to the standby (same shard
	// routing there). Zero frames need no forward: a fork page with no
	// frame reads as zero on both replicas.
	if len(sealed) > 0 {
		sh.replicate(&proto.SealAS{Snap: sub.seal.snap, Pages: sealed})
	}
	sub.seal.join.complete(sh.id, done, nil, 0)
}

// handleForkMap registers a fork range: pages in [Base, Base+NPages)
// are images of the congruent pages of the sealed snapshot — served
// from its shared frames until first write. Replicated to the standby
// so forks survive a primary kill. Idempotent (a retried ForkMap
// re-registers the same range).
func (s *Server) handleForkMap(req *scl.Request) {
	var m proto.ForkMap
	if err := req.Decode(&m); err != nil {
		if !req.OneWay() {
			req.ReplyError(err, s.Clock())
		}
		return
	}
	fr := forkRange{
		base:   s.geo.PageOf(layout.Addr(m.Base)),
		orig:   s.geo.PageOf(layout.Addr(m.OrigBase)),
		npages: m.NPages,
		snap:   m.Snap,
	}
	if n := s.snaps.register(fr); n != 0 {
		if ts := s.tierStats; ts != nil {
			ts.SnapshotRefs.Add(int64(n))
		}
	}
	if s.hasReplica {
		var ack proto.Ack
		if _, err := s.ep.Call(s.replica, &m, &ack, req.Arrive()); err != nil {
			if s.live != nil {
				s.live.ReplFailures.Add(1)
			}
		} else if s.live != nil {
			s.live.ReplBatches.Add(1)
		}
	}
	if !req.OneWay() {
		req.Reply(&proto.Ack{}, req.Arrive()+req.Svc())
	}
}

// handleForkUnmap undoes a ForkMap: the fork-range entry is removed
// from the snap store (so no page can resolve through the dead range
// again), released snapshots drop their sealed frames, and each shard
// purges the private pages the fork materialized in the range. The ack
// is withheld until every shard has purged — the caller's Unmapped
// FreeReq, which lets the manager reuse the striped space, must not
// race a shard still holding the old bytes. Replicated to the standby
// like ForkMap so a promoted standby does not resurrect the range.
func (s *Server) handleForkUnmap(req *scl.Request) {
	var m proto.ForkUnmap
	if err := req.Decode(&m); err != nil {
		if !req.OneWay() {
			req.ReplyError(err, s.Clock())
		}
		return
	}
	base := s.geo.PageOf(layout.Addr(m.Base))
	if m.NPages > 0 {
		if s.snaps.unregister(base) {
			if ts := s.tierStats; ts != nil {
				ts.SnapshotRefs.Add(-1)
			}
		}
	}
	for _, snap := range m.Release {
		if n := s.snaps.release(snap); n > 0 {
			if ts := s.tierStats; ts != nil {
				ts.SealedPages.Add(-int64(n))
			}
		}
	}
	if s.hasReplica {
		var ack proto.Ack
		if _, err := s.ep.Call(s.replica, &m, &ack, req.Arrive()); err != nil {
			if s.live != nil {
				s.live.ReplFailures.Add(1)
			}
		} else if s.live != nil {
			s.live.ReplBatches.Add(1)
		}
	}
	// Purge the fork's private pages shard by shard. Like writerDead this
	// is teardown bookkeeping with no virtual-time cost, but unlike it the
	// purge must be acknowledged: it goes through the shard queues (the
	// workers own sh.pages) and the reply joins every shard's completion.
	subs := make([][]layout.PageID, s.nshards)
	for i := uint64(0); i < m.NPages; i++ {
		p := base + layout.PageID(i)
		if s.geo.HomeOf(p) != s.index {
			continue
		}
		id := s.geo.ShardOf(p, s.nshards)
		subs[id] = append(subs[id], p)
	}
	count := 0
	for _, pages := range subs {
		if pages != nil {
			count++
		}
	}
	at := req.Arrive() + req.Svc()
	if count == 0 {
		if !req.OneWay() {
			req.Reply(&proto.Ack{}, at)
		}
		return
	}
	j := s.ackFor(req, count)
	for id, pages := range subs {
		if pages == nil {
			continue
		}
		s.enqueue(s.shards[id], shardItem{kind: itemUnmap, unpages: pages, ack: j, at: at})
	}
}
