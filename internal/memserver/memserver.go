// Package memserver implements Samhita's memory servers: the components
// that serve the pages backing the shared global address space
// (Section II). In the heterogeneous-node mapping of Figure 1 the memory
// server runs on the host processor and its DRAM is the backing store;
// compute threads on the coprocessor fault cache lines in from it and
// ship modifications back.
//
// A memory server is a single-goroutine event loop over its SCL
// endpoint; it is also the *home* of its pages in the home-based
// lazy-release protocol:
//
//   - FetchLineReq: assemble and return one multi-page cache line. The
//     request quotes, per page, the interval tags whose DiffBatches must
//     already be applied (write notices the fetcher has seen); a fetch
//     that arrives before those diffs is parked and answered as soon as
//     the last one lands. Pages still lazily owned by a writer are
//     pulled up to date on demand first.
//   - DiffBatch (one-way): apply page diffs and fine-grained store
//     records for one release interval, record ownership claims, then
//     mark the interval tag applied and wake any parked fetches waiting
//     on it.
//   - EvictFlush (one-way): apply the diff of a dirty page the cache had
//     to evict mid-interval; the owning interval's later DiffBatch lists
//     the page as already flushed.
//   - DiffPull (outgoing): ask a writer's cache agent for the retained
//     diffs of pages it lazily owns.
//
// Virtual time at the server is a service calendar (see calendar.go):
// each request books the earliest idle slot at or after its own virtual
// arrival, and cross-request ordering constraints flow through interval
// tags, not through a shared clock. Pages are materialized lazily and
// zero-filled.
package memserver

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/scl"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// Stats aggregates one memory server's activity. Counter fields are
// updated atomically so tests and harnesses may read them while the
// server runs.
type Stats struct {
	Fetches        atomic.Int64 // FetchLine requests served
	ParkedFetches  atomic.Int64 // fetches that had to wait for diffs
	DiffBatches    atomic.Int64
	DiffBytes      atomic.Int64
	Records        atomic.Int64
	EvictFlushes   atomic.Int64
	BytesServed    atomic.Int64 // line payload bytes returned
	PagesHosted    atomic.Int64 // distinct pages materialized
	OwnedClaims    atomic.Int64 // ownership claims recorded
	Pulls          atomic.Int64 // DiffPull round trips to writers
	PulledBytes    atomic.Int64 // diff payload bytes pulled on demand
	PullFailures   atomic.Int64 // DiffPull round trips that failed (writer unreachable)
	FailedFetches  atomic.Int64 // fetches answered with an error instead of data
	CombinedReqs   atomic.Int64 // multi-line combined fetch requests served
	CombinedExtras atomic.Int64 // companion lines carried by combined fetches
}

// AgentAddr maps a protocol writer id to the fabric node of that
// writer's cache agent, for on-demand diff pulls. A nil AgentAddr
// disables the lazy single-writer path (any ownership claim then
// panics loudly).
type AgentAddr func(writer uint32) scl.NodeID

// Server is one memory server instance.
type Server struct {
	ep        scl.Endpoint
	index     int // which server this is (for home validation)
	geo       layout.Geometry
	cpu       vtime.CPUModel
	agentAddr AgentAddr
	cal       calendar

	pages map[layout.PageID][]byte
	// appliedAt records, per interval tag, the virtual time its batch
	// finished applying; presence means applied.
	appliedAt map[proto.IntervalTag]vtime.Time
	parked    map[*parkedFetch]struct{}
	// owner records, per page, the writer retaining that page's diffs
	// under the single-writer optimization; the home's copy is stale
	// until those diffs are pulled or flushed.
	owner map[layout.PageID]uint32

	// Checkpoint/failover state. A warm standby runs the same Server
	// code with standby=true: it applies the diff stream its primary
	// forwards but refuses fetches until promoted. A primary with a
	// replica configured forwards every applied DiffBatch/EvictFlush
	// (and the bytes of every on-demand pull) to it.
	standby    bool
	replica    scl.NodeID
	hasReplica bool
	live       *stats.Liveness

	stats Stats
}

// parkedFetch is a fetch (single-line or combined lines+pages) waiting
// for outstanding interval tags.
type parkedFetch struct {
	req     *scl.Request
	lines   []layout.LineID
	pages   []layout.PageID
	multi   bool                // reply with FetchLinesResp instead of FetchLineResp
	tags    []proto.IntervalTag // every tag the fetch quoted
	waiting map[proto.IntervalTag]struct{}
}

// New creates a memory server with the given endpoint and home index.
func New(ep scl.Endpoint, index int, geo layout.Geometry, cpu vtime.CPUModel, agentAddr AgentAddr) *Server {
	return &Server{
		ep:        ep,
		index:     index,
		geo:       geo,
		cpu:       cpu,
		agentAddr: agentAddr,
		pages:     make(map[layout.PageID][]byte),
		appliedAt: make(map[proto.IntervalTag]vtime.Time),
		parked:    make(map[*parkedFetch]struct{}),
		owner:     make(map[layout.PageID]uint32),
	}
}

// Stats exposes the server's counters.
func (s *Server) Stats() *Stats { return &s.stats }

// SetStandby marks the server as a warm standby: it applies forwarded
// diff traffic but answers fetches with proto.ErrNotPromoted until a
// Promote message arrives. Must be called before Run.
func (s *Server) SetStandby(standby bool) { s.standby = standby }

// SetReplica points this (primary) server at its warm standby's node;
// every applied mutation is forwarded there. Must be called before Run.
func (s *Server) SetReplica(node scl.NodeID) {
	s.replica = node
	s.hasReplica = true
}

// SetLiveness attaches shared liveness counters for replication and
// promotion events. Must be called before Run.
func (s *Server) SetLiveness(live *stats.Liveness) { s.live = live }

// Clock reports the end of the last booked service slot — the server's
// notion of "how far virtual time has reached here".
func (s *Server) Clock() vtime.Time { return s.cal.maxEnd }

// Run processes requests until a Shutdown message arrives or the
// endpoint closes. It is the server's only goroutine; all state is
// confined to it.
func (s *Server) Run() {
	for {
		req, ok := s.ep.Recv()
		if !ok {
			s.failParked(proto.CodePeerDied, "memory server endpoint closed")
			return
		}
		switch req.Kind() {
		case proto.KFetchLineReq:
			s.handleFetch(req)
		case proto.KFetchLinesReq:
			s.handleFetchLines(req)
		case proto.KDiffBatch:
			s.handleDiffBatch(req)
		case proto.KEvictFlush:
			s.handleEvictFlush(req)
		case proto.KPing:
			req.Reply(&proto.Ack{}, s.cal.maxEnd)
		case proto.KPromote:
			// Idempotent: the runtime may re-promote on a retried
			// failover.
			if s.standby {
				s.standby = false
				if s.live != nil {
					s.live.Promotions.Add(1)
				}
			}
			if !req.OneWay() {
				req.Reply(&proto.Ack{}, s.cal.maxEnd)
			}
		case proto.KShutdown:
			if !req.OneWay() {
				req.Reply(&proto.Ack{}, s.cal.maxEnd)
			}
			s.failParked(proto.CodeShutdown, "memory server shut down")
			return
		default:
			if !req.OneWay() {
				req.ReplyError(fmt.Errorf("memserver: unexpected %v", req.Kind()), s.cal.maxEnd)
			}
		}
	}
}

func (s *Server) failParked(code uint16, why string) {
	for pf := range s.parked {
		pf.req.ReplyErrorCode(code, fmt.Errorf("memserver: %s with fetch pending", why), s.cal.maxEnd)
	}
	s.parked = make(map[*parkedFetch]struct{})
}

// replicate forwards an applied mutation to the warm standby. The
// forward is one-way and this server is the standby's only sender, so
// the standby applies mutations in exactly this server's apply order.
func (s *Server) replicate(m proto.Msg) {
	if !s.hasReplica {
		return
	}
	if _, err := s.ep.Post(s.replica, m, s.cal.maxEnd); err != nil {
		if s.live != nil {
			s.live.ReplFailures.Add(1)
		}
		return
	}
	if s.live != nil {
		s.live.ReplBatches.Add(1)
		s.live.ReplBytes.Add(int64(len(proto.Encode(m))))
	}
}

// page returns the backing bytes of p, materializing it zero-filled.
func (s *Server) page(p layout.PageID) []byte {
	if b, ok := s.pages[p]; ok {
		return b
	}
	b := make([]byte, s.geo.PageSize)
	s.pages[p] = b
	s.stats.PagesHosted.Add(1)
	return b
}

func (s *Server) handleFetch(req *scl.Request) {
	var m proto.FetchLineReq
	if err := req.Decode(&m); err != nil {
		req.ReplyError(err, s.cal.maxEnd)
		return
	}
	s.serveFetch(req, []layout.LineID{layout.LineID(m.Line)}, nil, m.Needs, false)
}

func (s *Server) handleFetchLines(req *scl.Request) {
	var m proto.FetchLinesReq
	if err := req.Decode(&m); err != nil {
		req.ReplyError(err, s.cal.maxEnd)
		return
	}
	if len(m.Lines)+len(m.Pages) == 0 {
		req.ReplyError(fmt.Errorf("memserver %d: empty combined fetch", s.index), s.cal.maxEnd)
		return
	}
	lines := make([]layout.LineID, len(m.Lines))
	for i, lu := range m.Lines {
		lines[i] = layout.LineID(lu)
	}
	pages := make([]layout.PageID, len(m.Pages))
	for i, pu := range m.Pages {
		pages[i] = layout.PageID(pu)
	}
	s.stats.CombinedReqs.Add(1)
	s.stats.CombinedExtras.Add(int64(len(lines) + len(pages) - 1))
	s.serveFetch(req, lines, pages, m.Needs, true)
}

// serveFetch validates a fetch for lines and/or pages, then answers it
// immediately or parks it until every quoted interval tag has been
// applied.
func (s *Server) serveFetch(req *scl.Request, lines []layout.LineID, pages []layout.PageID, needs []proto.PageNeed, multi bool) {
	if s.standby {
		// A standby serves no reads until promoted: the typed code lets
		// a fetcher with a stale address book distinguish "not yet
		// failed over" from a generic protocol error.
		s.stats.FailedFetches.Add(1)
		req.ReplyErrorCode(proto.CodeNotPromoted,
			fmt.Errorf("memserver %d: standby not promoted", s.index), s.cal.maxEnd)
		return
	}
	for _, line := range lines {
		if home := s.geo.HomeOf(s.geo.FirstPage(line)); home != s.index {
			req.ReplyError(fmt.Errorf("memserver %d: line %d homes on server %d", s.index, line, home), s.cal.maxEnd)
			return
		}
	}
	for _, p := range pages {
		if home := s.geo.HomeOf(p); home != s.index {
			req.ReplyError(fmt.Errorf("memserver %d: page %d homes on server %d", s.index, p, home), s.cal.maxEnd)
			return
		}
	}
	s.stats.Fetches.Add(1)

	var tags []proto.IntervalTag
	waiting := make(map[proto.IntervalTag]struct{})
	for i := range needs {
		for _, tag := range needs[i].Tags {
			tags = append(tags, tag)
			if _, ok := s.appliedAt[tag]; !ok {
				waiting[tag] = struct{}{}
			}
		}
	}
	if len(waiting) == 0 {
		s.replyFetch(req, lines, pages, tags, multi)
		return
	}
	s.stats.ParkedFetches.Add(1)
	s.parked[&parkedFetch{req: req, lines: lines, pages: pages, multi: multi, tags: tags, waiting: waiting}] = struct{}{}
}

// replyFetch answers a fetch whose needed tags have all been applied:
// it is ready no earlier than its own arrival and the application times
// of those tags; lazily-owned pages across all requested lines and
// pages are pulled up to date (batched per writer); then the assembly
// books one service slot. A pull that fails (the owning writer's cache
// agent is unreachable) degrades to a clean protocol error back to the
// fetcher — ownership is retained so a later fetch can retry — instead
// of wedging or killing the server.
func (s *Server) replyFetch(req *scl.Request, lines []layout.LineID, pages []layout.PageID, tags []proto.IntervalTag, multi bool) {
	ready := req.Arrive()
	for _, tag := range tags {
		if at, ok := s.appliedAt[tag]; ok && at > ready {
			ready = at
		}
	}
	if err := s.pullOwned(lines, pages, &ready); err != nil {
		s.stats.FailedFetches.Add(1)
		req.ReplyError(fmt.Errorf("memserver %d: lines %v pages %v: %w", s.index, lines, pages, err), s.cal.maxEnd)
		return
	}
	data := make([]byte, 0, s.geo.LineSize()*len(lines)+s.geo.PageSize*len(pages))
	for _, line := range lines {
		first := s.geo.FirstPage(line)
		for i := 0; i < s.geo.LinePages; i++ {
			data = append(data, s.page(first+layout.PageID(i))...)
		}
	}
	for _, p := range pages {
		data = append(data, s.page(p)...)
	}
	work := req.Svc() + s.cpu.CopyTime(len(data))
	done := s.cal.book(ready, work) + work
	s.stats.BytesServed.Add(int64(len(data)))
	if multi {
		req.Reply(&proto.FetchLinesResp{Data: data}, done)
	} else {
		req.Reply(&proto.FetchLineResp{Data: data}, done)
	}
}

func (s *Server) handleDiffBatch(req *scl.Request) {
	var m proto.DiffBatch
	if err := req.Decode(&m); err != nil {
		// One-way message: nothing to reply to; a decode failure here is
		// a protocol bug, so fail loudly.
		panic(fmt.Sprintf("memserver: bad DiffBatch: %v", err))
	}
	s.stats.DiffBatches.Add(1)
	ready := req.Arrive()
	// DiffBatch is one-way: there is nobody to answer if a pull from an
	// unreachable writer fails mid-apply. The batch still completes —
	// its tag is marked applied and parked fetches wake — because the
	// failed pull retained its ownership record, so the woken fetch
	// re-attempts the pull itself and surfaces a clean error if the
	// writer is still gone. Stalling the tag would deadlock every
	// fetcher quoting it.
	bytes, err := s.applyDiffs(m.Tag.Writer, m.Diffs, &ready)
	if err == nil {
		var rb int
		rb, err = s.applyRecords(m.Records, &ready)
		bytes += rb
	}
	_ = err // counted in PullFailures by pullFrom; the tag must proceed
	for _, pu := range m.OwnedPages {
		p := layout.PageID(pu)
		// Two writers can each believe they are a page's sole writer the
		// first time they share it. Pull the previous owner's retained
		// diffs before handing the claim over, so both writers' bytes
		// merge at the home (multiple-writer protocol).
		if prev, ok := s.owner[p]; ok && prev != m.Tag.Writer {
			if err := s.pullFrom(prev, []uint64{pu}, &ready); err != nil {
				// Leave the previous claim in place; the handover will
				// be re-attempted when the page is next fetched.
				continue
			}
		}
		s.owner[p] = m.Tag.Writer
		s.stats.OwnedClaims.Add(1)
	}
	work := req.Svc() + s.cpu.ApplyTime(bytes)
	done := s.cal.book(ready, work) + work
	s.appliedAt[m.Tag] = done
	s.wakeParked(m.Tag)
	// Forward to the standby AFTER the local apply (and its pulls),
	// then ack: a sender whose ack never comes re-sends the batch to
	// the promoted standby, and re-applying absolute-byte diffs is
	// idempotent.
	s.replicate(&m)
	if !req.OneWay() {
		req.Reply(&proto.Ack{}, done)
	}
}

func (s *Server) handleEvictFlush(req *scl.Request) {
	var m proto.EvictFlush
	if err := req.Decode(&m); err != nil {
		panic(fmt.Sprintf("memserver: bad EvictFlush: %v", err))
	}
	s.stats.EvictFlushes.Add(1)
	ready := req.Arrive()
	// One-way, like DiffBatch: a failed owner pull is counted and the
	// retained ownership record lets a later fetch retry it.
	bytes, _ := s.applyDiffs(m.Writer, m.Diffs, &ready)
	work := req.Svc() + s.cpu.ApplyTime(bytes)
	done := s.cal.book(ready, work) + work
	s.replicate(&m)
	if !req.OneWay() {
		req.Reply(&proto.Ack{}, done)
	}
}

// applyDiffs installs diffs sent by the given writer, returning the
// payload bytes applied. A page another writer still lazily owns must
// have that owner's retained diffs pulled first, or they would be
// orphaned when the claim is cleared; the writer's own claim is simply
// superseded (its release path folds any retained runs into the diff it
// ships). A failed pull aborts the apply with the error; the foreign
// claim stays recorded so the pull can be retried later.
func (s *Server) applyDiffs(writer uint32, diffs []proto.PageDiff, ready *vtime.Time) (int, error) {
	bytes := 0
	for i := range diffs {
		d := &diffs[i]
		p := layout.PageID(d.Page)
		if prev, ok := s.owner[p]; ok && prev != writer {
			if err := s.pullFrom(prev, []uint64{d.Page}, ready); err != nil {
				return bytes, err
			}
		}
		delete(s.owner, p)
		pg := s.page(p)
		for _, run := range d.Runs {
			if int(run.Off)+len(run.Data) > len(pg) {
				panic(fmt.Sprintf("memserver: diff run overflows page %d: off=%d len=%d", d.Page, run.Off, len(run.Data)))
			}
			copy(pg[run.Off:], run.Data)
			s.stats.DiffBytes.Add(int64(len(run.Data)))
			bytes += len(run.Data)
		}
	}
	return bytes, nil
}

// applyRecords installs fine-grained consistency-region updates,
// returning the payload bytes applied. Any retained ownership diff for
// the page is pulled first: retained bytes are older than the records
// and must not clobber them later.
func (s *Server) applyRecords(recs []proto.StoreRecord, ready *vtime.Time) (int, error) {
	bytes := 0
	for i := range recs {
		r := &recs[i]
		p := s.geo.PageOf(layout.Addr(r.Addr))
		if prev, ok := s.owner[p]; ok {
			if err := s.pullFrom(prev, []uint64{uint64(p)}, ready); err != nil {
				return bytes, err
			}
		}
		off := s.geo.PageOffset(layout.Addr(r.Addr))
		pg := s.page(p)
		if off+len(r.Data) > len(pg) {
			panic(fmt.Sprintf("memserver: record overflows page %d: off=%d len=%d", p, off, len(r.Data)))
		}
		copy(pg[off:], r.Data)
		s.stats.Records.Add(1)
		bytes += len(r.Data)
	}
	return bytes, nil
}

func (s *Server) wakeParked(tag proto.IntervalTag) {
	for pf := range s.parked {
		if _, ok := pf.waiting[tag]; !ok {
			continue
		}
		delete(pf.waiting, tag)
		if len(pf.waiting) == 0 {
			delete(s.parked, pf)
			s.replyFetch(pf.req, pf.lines, pf.pages, pf.tags, pf.multi)
		}
	}
}

// pullOwned brings every lazily-owned page of the given lines and
// pages up to date by pulling retained diffs from their writers' cache
// agents — one batched pull per writer across the whole request, so a
// combined fetch never multiplies the pull round trips. The server
// blocks on each pull — a fetch that hits an owned page pays the extra
// round trip, which is the single-writer optimization's bargain:
// writers release for free, occasional readers pay one pull.
func (s *Server) pullOwned(lines []layout.LineID, pages []layout.PageID, ready *vtime.Time) error {
	byWriter := make(map[uint32][]uint64)
	for _, line := range lines {
		first := s.geo.FirstPage(line)
		for i := 0; i < s.geo.LinePages; i++ {
			p := first + layout.PageID(i)
			if w, ok := s.owner[p]; ok {
				byWriter[w] = append(byWriter[w], uint64(p))
			}
		}
	}
	for _, p := range pages {
		if w, ok := s.owner[p]; ok {
			byWriter[w] = append(byWriter[w], uint64(p))
		}
	}
	// Pull in writer order: the pulls chain on ready, so iteration order
	// is part of the virtual-time result and must be deterministic.
	writers := make([]uint32, 0, len(byWriter))
	for w := range byWriter {
		writers = append(writers, w)
	}
	sort.Slice(writers, func(i, j int) bool { return writers[i] < writers[j] })
	for _, w := range writers {
		if err := s.pullFrom(w, byWriter[w], ready); err != nil {
			return err
		}
	}
	return nil
}

// pullFrom fetches and applies the retained diffs of the given pages
// from one writer's cache agent, clearing their ownership and advancing
// ready past the round trip and the apply work. If the writer's agent
// is unreachable the error is returned (and counted) with ownership
// left intact, so the pull can be retried by a later fetch — a dead
// writer must not take the memory server down with it.
func (s *Server) pullFrom(w uint32, pages []uint64, ready *vtime.Time) error {
	if s.standby {
		// A standby never pulls: its primary already pulled and
		// replicated the bytes as an EvictFlush ahead of this message,
		// so the claim is simply dropped.
		for _, pu := range pages {
			delete(s.owner, layout.PageID(pu))
		}
		return nil
	}
	if s.agentAddr == nil {
		panic(fmt.Sprintf("memserver %d: pages owned by writer %d but no agent address map", s.index, w))
	}
	var resp proto.DiffPullResp
	doneAt, err := s.ep.Call(s.agentAddr(w), &proto.DiffPullReq{Pages: pages}, &resp, *ready)
	if err != nil {
		s.stats.PullFailures.Add(1)
		return fmt.Errorf("memserver %d: diff pull from writer %d: %w", s.index, w, err)
	}
	if doneAt > *ready {
		*ready = doneAt
	}
	s.stats.Pulls.Add(1)
	pulled := 0
	for i := range resp.Diffs {
		pulled += resp.Diffs[i].PayloadBytes()
	}
	s.stats.PulledBytes.Add(int64(pulled))
	// Clear ownership before applying: the pull IS the supersession, and
	// applyDiffs would otherwise recurse into pulling w again.
	for _, pu := range pages {
		delete(s.owner, layout.PageID(pu))
	}
	// Pulled bytes exist only in this server's memory now (the writer's
	// retained diffs were taken destructively): replicate them before
	// applying, so the standby sees them ahead of any batch that
	// depends on them.
	s.replicate(&proto.EvictFlush{Writer: w, Diffs: resp.Diffs})
	if _, err := s.applyDiffs(w, resp.Diffs, ready); err != nil {
		return err
	}
	*ready += s.cpu.ApplyTime(pulled)
	return nil
}
