// Package memserver implements Samhita's memory servers: the components
// that serve the pages backing the shared global address space
// (Section II). In the heterogeneous-node mapping of Figure 1 the memory
// server runs on the host processor and its DRAM is the backing store;
// compute threads on the coprocessor fault cache lines in from it and
// ship modifications back.
//
// A memory server is a dispatcher goroutine over its SCL endpoint plus
// N page shards (Geometry.ShardOf, line-granular so a single-line fetch
// never splits). With one shard — the default — the dispatcher handles
// everything inline and the server behaves exactly like the historical
// single-goroutine event loop. With more, each shard runs its own
// worker goroutine with its own calendar, parked-fetch table, page map
// and ownership table, so traffic against disjoint shards is served
// concurrently; the dispatcher splits multi-shard DiffBatch/FetchLines
// requests and joins the per-shard replies. The server is also the
// *home* of its pages in the home-based lazy-release protocol:
//
//   - FetchLineReq: assemble and return one multi-page cache line. The
//     request quotes, per page, the interval tags whose DiffBatches must
//     already be applied (write notices the fetcher has seen); a fetch
//     that arrives before those diffs is parked and answered as soon as
//     the last one lands. Pages still lazily owned by a writer are
//     pulled up to date on demand first. Parking is per page shard:
//     a split fetch can have one shard's half parked while another
//     shard's half is already copied into the joined reply.
//   - DiffBatch (one-way): apply page diffs and fine-grained store
//     records for one release interval, record ownership claims, then
//     mark the interval tag applied and wake any parked fetches waiting
//     on it. Each shard marks the tag for its own pages — equivalent to
//     the unsharded behaviour because a fetch only quotes a tag against
//     pages the tagged batch names, which land on the same shard.
//   - EvictFlush (one-way): apply the diff of a dirty page the cache had
//     to evict mid-interval; the owning interval's later DiffBatch lists
//     the page as already flushed.
//   - DiffPull (outgoing): ask a writer's cache agent for the retained
//     diffs of pages it lazily owns.
//
// Virtual time at the server is one service calendar per shard (see
// calendar.go): each request books the earliest idle slot at or after
// its own virtual arrival on its shard's calendar, cross-request
// ordering constraints flow through interval tags, and Clock() merges
// the shard calendars. Pages are materialized lazily and zero-filled.
//
// Shards execute in one of two modes. On an unsequenced fabric (chaos
// runs, standbys, real transports) each shard runs a worker goroutine
// and disjoint-shard requests proceed in parallel in real time. On a
// sequenced fabric (deterministic clean runs) the dispatcher processes
// every shard item inline instead: the sequencer's runnable-token
// ledger grants one message at a time, so worker concurrency there
// would be fictitious — worse, a queued item would have to hold a
// runnable token while its shard blocks in a diff-pull Call, which
// deadlocks the ledger (the pull's grant needs run==0, the token's
// retirement needs the worker). Inline execution keeps the server a
// single goroutine exactly like the historical event loop — Quiesce
// still proves it drained — while the per-shard calendars still overlap
// service windows in virtual time, which is where the sharded speedup
// comes from.
package memserver

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/scl"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// shardQueueDepth bounds each shard worker's queue; the dispatcher
// blocks when a shard is this far behind (backpressure, like the
// fabric's own inbox).
const shardQueueDepth = 1024

// Stats aggregates one memory server's activity. Counter fields are
// updated atomically so tests and harnesses may read them while the
// server runs.
type Stats struct {
	Fetches        atomic.Int64 // FetchLine requests served
	ParkedFetches  atomic.Int64 // per-shard fetch halves that had to wait for diffs
	DiffBatches    atomic.Int64
	DiffBytes      atomic.Int64
	Records        atomic.Int64
	EvictFlushes   atomic.Int64
	BytesServed    atomic.Int64 // line payload bytes returned
	PagesHosted    atomic.Int64 // distinct pages materialized
	OwnedClaims    atomic.Int64 // ownership claims recorded
	Pulls          atomic.Int64 // DiffPull round trips to writers
	PulledBytes    atomic.Int64 // diff payload bytes pulled on demand
	PullFailures   atomic.Int64 // DiffPull round trips that failed (writer unreachable)
	FailedFetches  atomic.Int64 // fetches answered with an error instead of data
	CombinedReqs   atomic.Int64 // multi-line combined fetch requests served
	CombinedExtras atomic.Int64 // companion lines carried by combined fetches

	// Sharding.
	SplitFetches    atomic.Int64 // combined fetches split across >1 shard
	SplitBatches    atomic.Int64 // diff batches / evict flushes split across >1 shard
	ParallelApplies atomic.Int64 // diff batches applied with the parallel copy pool
}

// AgentAddr maps a protocol writer id to the fabric node of that
// writer's cache agent, for on-demand diff pulls. A nil AgentAddr
// disables the lazy single-writer path (any ownership claim then
// panics loudly).
type AgentAddr func(writer uint32) scl.NodeID

// Server is one memory server instance: a dispatcher over its endpoint
// plus one or more page shards.
type Server struct {
	ep        scl.Endpoint
	index     int // which server this is (for home validation)
	geo       layout.Geometry
	cpu       vtime.CPUModel
	agentAddr AgentAddr

	nshards int
	shards  []*shard
	// sequenced selects inline shard execution (see the package doc):
	// no worker goroutines, the dispatcher processes each item on its
	// shard directly, and determinism follows from the fabric's grant
	// order alone.
	sequenced bool
	wg        sync.WaitGroup // shard workers (unsequenced multi-shard mode)

	// Checkpoint/failover state. A warm standby runs the same Server
	// code with standby=true: it applies the diff stream its primary
	// forwards but refuses fetches until promoted. A primary with a
	// replica configured forwards every applied DiffBatch/EvictFlush
	// (and the bytes of every on-demand pull) to it, shard by shard:
	// each shard forwards its own applied sub-batches, and the standby's
	// identical shard mapping routes every forward wholly to the
	// matching shard, preserving per-page apply order.
	standby    atomic.Bool
	replica    scl.NodeID
	hasReplica bool
	live       *stats.Liveness

	// Tiered page store and snapshot/fork state. tierStats is shared
	// across servers (set even with tiering off, for seal/fork
	// counters); snaps holds sealed snapshot frames and fork range
	// mappings at server level because ShardOf is not congruent between
	// an original page and its image in a fork range.
	tierStats *stats.Tier
	snaps     *snapStore

	// obitGen records the highest WriterDead generation applied per
	// writer. A replicated manager's old and new leader may both reap
	// the same dead lease; the generation (stamped by the leader that
	// first reaped it, re-broadcast verbatim on promotion) makes the
	// duplicate obituary a no-op instead of a second barrier-free
	// unpark sweep. Touched only by the Recv dispatcher goroutine.
	obitGen map[uint32]uint64

	stats Stats
}

// New creates a memory server with the given endpoint and home index,
// with a single shard and a no-op gate.
func New(ep scl.Endpoint, index int, geo layout.Geometry, cpu vtime.CPUModel, agentAddr AgentAddr) *Server {
	s := &Server{
		ep:        ep,
		index:     index,
		geo:       geo,
		cpu:       cpu,
		agentAddr: agentAddr,
		snaps:     newSnapStore(),
	}
	s.setShards(1)
	return s
}

// SetTier configures the tiered page store: a hot set of at most
// hotBytes of uncompressed pages per server (split evenly across
// shards, floored at one page each) over a word-run-compressed cold
// tier whose demotion/promotion costs follow the given TierModel.
// hotBytes <= 0 disables tiering — every page stays hot and the data
// path is byte-identical to the untiered server. st collects tier and
// snapshot counters and is attached either way. Must be called after
// SetShards and before Run.
func (s *Server) SetTier(hotBytes int64, model vtime.TierModel, st *stats.Tier) {
	s.tierStats = st
	if hotBytes <= 0 {
		return
	}
	per := hotBytes / int64(s.nshards)
	if per < int64(s.geo.PageSize) {
		per = int64(s.geo.PageSize)
	}
	for _, sh := range s.shards {
		sh.tier = newTierStore(per, model, st)
	}
}

// Stats exposes the server's counters.
func (s *Server) Stats() *Stats { return &s.stats }

// NumShards reports how many page shards the server runs.
func (s *Server) NumShards() int { return s.nshards }

// SetShards splits the server's page space into n independently
// scheduled shards (n < 1 means 1). Must be called before Run.
func (s *Server) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	s.setShards(n)
}

func (s *Server) setShards(n int) {
	s.nshards = n
	s.shards = make([]*shard, n)
	for i := range s.shards {
		s.shards[i] = &shard{
			srv:         s,
			id:          i,
			ch:          make(chan shardItem, shardQueueDepth),
			pages:       make(map[layout.PageID][]byte),
			appliedAt:   make(map[proto.IntervalTag]vtime.Time),
			parked:      make(map[*parkedFetch]struct{}),
			owner:       make(map[layout.PageID]uint32),
			deadWriters: make(map[uint32]struct{}),
		}
	}
}

// SetSequenced tells the server its fabric delivers messages under the
// deterministic sequencer, selecting inline shard execution instead of
// worker goroutines (see the package doc). Must be called before Run.
func (s *Server) SetSequenced(sequenced bool) { s.sequenced = sequenced }

// inline reports whether shard items are processed on the dispatcher
// goroutine (single shard, or any shard count on a sequenced fabric).
func (s *Server) inline() bool { return s.nshards == 1 || s.sequenced }

// SetStandby marks the server as a warm standby: it applies forwarded
// diff traffic but answers fetches with proto.ErrNotPromoted until a
// Promote message arrives. Must be called before Run.
func (s *Server) SetStandby(standby bool) { s.standby.Store(standby) }

// SetReplica points this (primary) server at its warm standby's node;
// every applied mutation is forwarded there. Must be called before Run.
func (s *Server) SetReplica(node scl.NodeID) {
	s.replica = node
	s.hasReplica = true
}

// SetLiveness attaches shared liveness counters for replication and
// promotion events. Must be called before Run.
func (s *Server) SetLiveness(live *stats.Liveness) { s.live = live }

// Clock reports the end of the last booked service slot across all
// shards — the server's notion of "how far virtual time has reached
// here".
func (s *Server) Clock() vtime.Time {
	var m vtime.Time
	for _, sh := range s.shards {
		if c := vtime.Time(sh.clock.Load()); c > m {
			m = c
		}
	}
	return m
}

// Run processes requests until a Shutdown message arrives or the
// endpoint closes. With one shard it is the server's only goroutine;
// with more it dispatches to the shard workers it starts.
func (s *Server) Run() {
	if !s.inline() {
		s.startWorkers()
	}
	for {
		req, ok := s.ep.Recv()
		if !ok {
			s.stopWorkers(proto.CodePeerDied, "memory server endpoint closed")
			return
		}
		switch req.Kind() {
		case proto.KFetchLineReq:
			s.dispatchFetchLine(req)
		case proto.KFetchLinesReq:
			s.dispatchFetchLines(req)
		case proto.KDiffBatch:
			s.dispatchDiffBatch(req)
		case proto.KEvictFlush:
			s.dispatchEvictFlush(req)
		case proto.KPing:
			s.handlePing(req)
		case proto.KSealAS:
			s.dispatchSealAS(req)
		case proto.KForkMap:
			s.handleForkMap(req)
		case proto.KForkUnmap:
			s.handleForkUnmap(req)
		case proto.KWriterDead:
			s.dispatchWriterDead(req)
		case proto.KPromote:
			// Idempotent: the runtime may re-promote on a retried
			// failover. Fetches already queued at shards were sent by
			// fetchers racing the failover; serving them post-flip is
			// safe because quoted interval tags, not the flag, gate
			// data freshness.
			if s.standby.Load() {
				s.standby.Store(false)
				if s.live != nil {
					s.live.Promotions.Add(1)
				}
			}
			if !req.OneWay() {
				req.Reply(&proto.Ack{}, s.Clock())
			}
		case proto.KShutdown:
			if !req.OneWay() {
				req.Reply(&proto.Ack{}, s.Clock())
			}
			s.stopWorkers(proto.CodeShutdown, "memory server shut down")
			return
		default:
			if !req.OneWay() {
				req.ReplyError(fmt.Errorf("memserver: unexpected %v", req.Kind()), s.Clock())
			}
		}
	}
}

// startWorkers launches one worker goroutine per shard (unsequenced
// multi-shard mode only).
func (s *Server) startWorkers() {
	for _, sh := range s.shards {
		s.wg.Add(1)
		go sh.run()
	}
}

// stopWorkers fails all parked fetches and, in worker mode, stops every
// worker after it drains its backlog.
func (s *Server) stopWorkers(code uint16, why string) {
	if s.inline() {
		for _, sh := range s.shards {
			sh.failParked(code, why)
		}
		return
	}
	for _, sh := range s.shards {
		sh.ch <- shardItem{kind: itemStop, code: code, why: why}
	}
	s.wg.Wait()
}

// enqueue hands an item to its shard: processed inline on the
// dispatcher in inline mode (preserving the historical single-goroutine
// behaviour — and, with one shard, its exact virtual times), queued to
// the shard's worker otherwise.
func (s *Server) enqueue(sh *shard, it shardItem) {
	if s.inline() {
		sh.process(it)
		return
	}
	sh.ch <- it
}

// ackFor builds the ack join for an RPC-style request split across n
// shards (nil for one-way traffic, which is never acknowledged).
func (s *Server) ackFor(req *scl.Request, n int) *ackJoin {
	if req.OneWay() {
		return nil
	}
	return &ackJoin{req: req, remaining: n}
}

func (s *Server) handlePing(req *scl.Request) {
	if s.inline() {
		// Inline processing means everything received before the ping
		// is already applied; ack at the merged clock.
		req.Reply(&proto.Ack{}, s.Clock())
		return
	}
	// Worker mode: the ping ack must prove everything enqueued before
	// it has been processed (the drain idiom relies on this), so it
	// joins a marker through every shard queue and answers at the max
	// shard clock.
	j := &ackJoin{req: req, remaining: s.nshards}
	for _, sh := range s.shards {
		s.enqueue(sh, shardItem{kind: itemPing, ack: j})
	}
}

// dispatchWriterDead fans a manager obituary to every shard: each
// stops waiting on the dead writer's unapplied interval tags. One-way
// and free of virtual-time cost, like the liveness plane that sends it.
func (s *Server) dispatchWriterDead(req *scl.Request) {
	var m proto.WriterDead
	if err := req.Decode(&m); err != nil {
		panic(fmt.Sprintf("memserver: bad WriterDead: %v", err))
	}
	if m.Gen != 0 {
		if s.obitGen == nil {
			s.obitGen = make(map[uint32]uint64)
		}
		if m.Gen <= s.obitGen[m.Writer] {
			return // duplicate obituary (old + new manager leader both reaped)
		}
		s.obitGen[m.Writer] = m.Gen
	}
	for _, sh := range s.shards {
		s.enqueue(sh, shardItem{kind: itemWriterDead, writer: m.Writer})
	}
}

func (s *Server) dispatchFetchLine(req *scl.Request) {
	var m proto.FetchLineReq
	if err := req.Decode(&m); err != nil {
		req.ReplyError(err, s.Clock())
		return
	}
	s.routeFetch(req, []layout.LineID{layout.LineID(m.Line)}, nil, m.Needs, false)
}

func (s *Server) dispatchFetchLines(req *scl.Request) {
	var m proto.FetchLinesReq
	if err := req.Decode(&m); err != nil {
		req.ReplyError(err, s.Clock())
		return
	}
	if len(m.Lines)+len(m.Pages) == 0 {
		req.ReplyError(fmt.Errorf("memserver %d: empty combined fetch", s.index), s.Clock())
		return
	}
	lines := make([]layout.LineID, len(m.Lines))
	for i, lu := range m.Lines {
		lines[i] = layout.LineID(lu)
	}
	pages := make([]layout.PageID, len(m.Pages))
	for i, pu := range m.Pages {
		pages[i] = layout.PageID(pu)
	}
	s.stats.CombinedReqs.Add(1)
	s.stats.CombinedExtras.Add(int64(len(lines) + len(pages) - 1))
	s.routeFetch(req, lines, pages, m.Needs, true)
}

// routeFetch validates a fetch for lines and/or pages, then hands it to
// its page shard — or, when the request spans several shards, splits it
// into per-shard halves that assemble disjoint segments of one joined
// reply. A fetch still parks (now in its pages' shard) until every
// quoted interval tag has been applied there.
func (s *Server) routeFetch(req *scl.Request, lines []layout.LineID, pages []layout.PageID, needs []proto.PageNeed, multi bool) {
	if s.standby.Load() {
		// A standby serves no reads until promoted: the typed code lets
		// a fetcher with a stale address book distinguish "not yet
		// failed over" from a generic protocol error.
		s.stats.FailedFetches.Add(1)
		req.ReplyErrorCode(proto.CodeNotPromoted,
			fmt.Errorf("memserver %d: standby not promoted", s.index), s.Clock())
		return
	}
	for _, line := range lines {
		if home := s.geo.HomeOf(s.geo.FirstPage(line)); home != s.index {
			req.ReplyError(fmt.Errorf("memserver %d: line %d homes on server %d", s.index, line, home), s.Clock())
			return
		}
	}
	for _, p := range pages {
		if home := s.geo.HomeOf(p); home != s.index {
			req.ReplyError(fmt.Errorf("memserver %d: page %d homes on server %d", s.index, p, home), s.Clock())
			return
		}
	}
	s.stats.Fetches.Add(1)

	if s.nshards == 1 {
		s.shards[0].serveFetch(&subFetch{req: req, lines: lines, pages: pages, needs: needs, multi: multi})
		return
	}

	subs := make([]*subFetch, s.nshards)
	sub := func(id int) *subFetch {
		if subs[id] == nil {
			subs[id] = &subFetch{req: req, multi: multi}
		}
		return subs[id]
	}
	lineSize := s.geo.LineSize()
	for i, line := range lines {
		f := sub(s.geo.ShardOf(s.geo.FirstPage(line), s.nshards))
		f.lines = append(f.lines, line)
		f.lineOffs = append(f.lineOffs, i*lineSize)
	}
	base := len(lines) * lineSize
	for i, p := range pages {
		f := sub(s.geo.ShardOf(p, s.nshards))
		f.pages = append(f.pages, p)
		f.pageOffs = append(f.pageOffs, base+i*s.geo.PageSize)
	}
	for i := range needs {
		// A need gates the shard of its page; a shard with only needs
		// (no data of this request) still gets an empty half so the tag
		// is awaited where it will be applied.
		f := sub(s.geo.ShardOf(layout.PageID(needs[i].Page), s.nshards))
		f.needs = append(f.needs, needs[i])
	}
	count, single := 0, 0
	for id, f := range subs {
		if f != nil {
			count++
			single = id
		}
	}
	if count == 1 {
		// Whole request on one shard: serve it unsplit, replying
		// directly from the shard (no join, no reassembly).
		f := subs[single]
		f.lineOffs, f.pageOffs = nil, nil
		s.enqueue(s.shards[single], shardItem{kind: itemFetch, sub: f})
		return
	}
	s.stats.SplitFetches.Add(1)
	total := len(lines)*lineSize + len(pages)*s.geo.PageSize
	buf := proto.GetBuf(total)
	j := &fetchJoin{req: req, remaining: count, data: buf[:total]}
	for id, f := range subs {
		if f == nil {
			continue
		}
		f.join = j
		s.enqueue(s.shards[id], shardItem{kind: itemFetch, sub: f})
	}
}

func (s *Server) dispatchDiffBatch(req *scl.Request) {
	var m proto.DiffBatch
	if err := req.DecodeAlias(&m); err != nil {
		// One-way message: nothing to reply to; a decode failure here is
		// a protocol bug, so fail loudly.
		panic(fmt.Sprintf("memserver: bad DiffBatch: %v", err))
	}
	s.stats.DiffBatches.Add(1)
	if s.nshards == 1 {
		s.shards[0].applyBatch(req, &m, s.ackFor(req, 1), false)
		return
	}
	subs := make([]*proto.DiffBatch, s.nshards)
	sub := func(id int) *proto.DiffBatch {
		if subs[id] == nil {
			subs[id] = &proto.DiffBatch{Tag: m.Tag}
		}
		return subs[id]
	}
	for i := range m.Diffs {
		b := sub(s.geo.ShardOf(layout.PageID(m.Diffs[i].Page), s.nshards))
		b.Diffs = append(b.Diffs, m.Diffs[i])
	}
	for i := range m.Records {
		b := sub(s.geo.ShardOf(s.geo.PageOf(layout.Addr(m.Records[i].Addr)), s.nshards))
		b.Records = append(b.Records, m.Records[i])
	}
	for _, pu := range m.EmptyPages {
		b := sub(s.geo.ShardOf(layout.PageID(pu), s.nshards))
		b.EmptyPages = append(b.EmptyPages, pu)
	}
	for _, pu := range m.OwnedPages {
		b := sub(s.geo.ShardOf(layout.PageID(pu), s.nshards))
		b.OwnedPages = append(b.OwnedPages, pu)
	}
	count := 0
	for _, b := range subs {
		if b != nil {
			count++
		}
	}
	if count == 0 {
		// A batch naming no pages still marks its tag: route it whole
		// to shard 0 so the tag is applied and replicated exactly once.
		s.enqueue(s.shards[0], shardItem{kind: itemBatch, req: req, batch: &m, ack: s.ackFor(req, 1)})
		return
	}
	if count > 1 {
		s.stats.SplitBatches.Add(1)
	}
	j := s.ackFor(req, count)
	for id, b := range subs {
		if b == nil {
			continue
		}
		s.enqueue(s.shards[id], shardItem{kind: itemBatch, req: req, batch: b, ack: j, split: count > 1})
	}
}

func (s *Server) dispatchEvictFlush(req *scl.Request) {
	var m proto.EvictFlush
	if err := req.DecodeAlias(&m); err != nil {
		panic(fmt.Sprintf("memserver: bad EvictFlush: %v", err))
	}
	s.stats.EvictFlushes.Add(1)
	if s.nshards == 1 {
		s.shards[0].applyFlush(req, &m, s.ackFor(req, 1), false)
		return
	}
	subs := make([]*proto.EvictFlush, s.nshards)
	for i := range m.Diffs {
		id := s.geo.ShardOf(layout.PageID(m.Diffs[i].Page), s.nshards)
		if subs[id] == nil {
			subs[id] = &proto.EvictFlush{Writer: m.Writer}
		}
		subs[id].Diffs = append(subs[id].Diffs, m.Diffs[i])
	}
	count := 0
	for _, f := range subs {
		if f != nil {
			count++
		}
	}
	if count == 0 {
		s.enqueue(s.shards[0], shardItem{kind: itemFlush, req: req, flush: &m, ack: s.ackFor(req, 1)})
		return
	}
	if count > 1 {
		s.stats.SplitBatches.Add(1)
	}
	j := s.ackFor(req, count)
	for id, f := range subs {
		if f == nil {
			continue
		}
		s.enqueue(s.shards[id], shardItem{kind: itemFlush, req: req, flush: f, ack: j, split: count > 1})
	}
}
