package memserver

import "repro/internal/vtime"

// calendar models the memory server's serial service capacity in
// virtual time as a set of booked busy intervals.
//
// The naive model — one monotone clock advanced past every arrival —
// breaks when goroutines race ahead of each other in real time: a
// message carrying a large virtual timestamp processed early drags the
// clock forward, and a virtually-earlier message processed later gets
// stamped far in its own future, inflating latencies that never
// happened. The calendar instead books each request into the earliest
// idle slot at or after its own virtual arrival, so real-time
// processing order no longer matters; true protocol dependencies
// (a fetch needing a diff) are enforced separately through interval
// tags, not through the clock.
//
// Queueing and hot spots still emerge naturally: a burst of fetches
// with similar arrival times books consecutive slots, and the last one
// waits for the whole burst — the single-memory-server bottleneck the
// paper's striped allocation exists to avoid.
type calendar struct {
	busy   []vspan // sorted by start, non-overlapping, gaps are idle
	maxEnd vtime.Time
}

type vspan struct {
	start, end vtime.Time
}

// calendarCap bounds memory: when the book fills up, the oldest half is
// forgotten (bookings that far in the past no longer influence new
// arrivals in any workload with forward-moving clocks).
const calendarCap = 4096

// book reserves dur of service time at the earliest idle instant >= at
// and returns the service start time.
func (c *calendar) book(at, dur vtime.Time) vtime.Time {
	if dur <= 0 {
		return at
	}
	start := at
	insert := len(c.busy)
	for i, s := range c.busy {
		if s.end <= start {
			continue // busy interval entirely before us
		}
		if start+dur <= s.start {
			insert = i // fits in the gap before interval i
			break
		}
		start = s.end // pushed past this interval
		insert = i + 1
	}
	c.busy = append(c.busy, vspan{})
	copy(c.busy[insert+1:], c.busy[insert:])
	c.busy[insert] = vspan{start: start, end: start + dur}
	c.coalesce(insert)
	if start+dur > c.maxEnd {
		c.maxEnd = start + dur
	}
	if len(c.busy) > calendarCap {
		c.busy = append(c.busy[:0:0], c.busy[len(c.busy)/2:]...)
	}
	return start
}

// coalesce merges the interval at i with abutting neighbours.
func (c *calendar) coalesce(i int) {
	for i+1 < len(c.busy) && c.busy[i].end >= c.busy[i+1].start {
		if c.busy[i+1].end > c.busy[i].end {
			c.busy[i].end = c.busy[i+1].end
		}
		c.busy = append(c.busy[:i+1], c.busy[i+2:]...)
	}
	for i > 0 && c.busy[i-1].end >= c.busy[i].start {
		if c.busy[i].end > c.busy[i-1].end {
			c.busy[i-1].end = c.busy[i].end
		}
		c.busy = append(c.busy[:i], c.busy[i+1:]...)
		i--
	}
}
