package memserver

import (
	"bytes"
	"testing"

	"repro/internal/layout"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// lcg is a tiny deterministic generator for the property tests.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

// randomPage builds a page mixing zero runs and literal runs, the shape
// the codec is built for.
func randomPage(r *lcg, size int) []byte {
	p := make([]byte, size)
	i := 0
	for i < size {
		run := int(r.next()%9+1) * 8
		if run > size-i {
			run = size - i
		}
		if r.next()%2 == 0 {
			for j := 0; j < run; j++ {
				p[i+j] = byte(r.next())
			}
		}
		i += run
	}
	return p
}

// Round-trip property: decompress(compress(p)) == p for random pages,
// including the all-zero and all-literal extremes and a non-word tail.
func TestPageCodecRoundTrip(t *testing.T) {
	r := lcg(1)
	for _, size := range []int{4096, 4096, 4100, 64, 8, 12} {
		for trial := 0; trial < 64; trial++ {
			page := randomPage(&r, size)
			blob := compressPage(nil, page)
			got := make([]byte, size)
			for i := range got {
				got[i] = 0xAA // decompress must fully overwrite
			}
			decompressPage(got, blob)
			if !bytes.Equal(got, page) {
				t.Fatalf("size %d trial %d: round trip mismatch", size, trial)
			}
		}
	}
	zero := make([]byte, 4096)
	if blob := compressPage(nil, zero); len(blob) > 3 {
		t.Fatalf("all-zero page compressed to %d bytes, want <= 3", len(blob))
	}
}

// A nil blob is the implicit zero frame; a truncated blob decodes its
// prefix and zeroes the rest — never panics, never leaks scratch bytes.
func TestPageCodecDegenerateBlobs(t *testing.T) {
	page := make([]byte, 256)
	for i := range page {
		page[i] = 0xFF
	}
	decompressPage(page, nil)
	if !bytes.Equal(page, make([]byte, 256)) {
		t.Fatal("nil blob did not decode to zeros")
	}
	r := lcg(7)
	orig := randomPage(&r, 256)
	full := compressPage(nil, orig)
	for cut := 0; cut <= len(full); cut++ {
		got := make([]byte, 256)
		for i := range got {
			got[i] = 0x55
		}
		// Copy to exact capacity: a reslice of the full blob would let an
		// out-of-bounds literal read silently succeed within capacity.
		trunc := make([]byte, cut)
		copy(trunc, full)
		decompressPage(got, trunc)
		// The decoded prefix must agree with the original wherever the
		// truncated stream still covered it; we only assert no panic and
		// full-overwrite here, plus exactness at the full length.
		if cut == len(full) && !bytes.Equal(got, orig) {
			t.Fatal("full blob did not round trip")
		}
		for i := range got {
			if got[i] == 0x55 && orig[i] != 0x55 {
				t.Fatalf("cut %d: byte %d left unwritten (scratch leak)", cut, i)
			}
		}
	}
}

// Tier property: a shard's pages are byte-identical through any demote/
// promote sequence, for any budget. Drives the tierStore directly with a
// seeded access pattern and checks every page against a shadow copy.
func TestTierStorePreservesBytes(t *testing.T) {
	for _, budgetPages := range []int{1, 2, 3, 7} {
		geo := layout.DefaultGeometry()
		srv := &Server{geo: geo}
		sh := &shard{srv: srv, pages: make(map[layout.PageID][]byte)}
		st := new(stats.Tier)
		tier := newTierStore(int64(budgetPages)*int64(geo.PageSize), vtime.ColdNVMe, st)
		sh.tier = tier

		r := lcg(uint64(budgetPages))
		shadow := make(map[layout.PageID][]byte)
		const npages = 16
		for op := 0; op < 400; op++ {
			p := layout.PageID(r.next() % npages)
			// Access p the way the shard does: promote or materialize,
			// then mutate one word, then enforce the budget.
			b := sh.pages[p]
			if b == nil {
				if b = tier.promote(sh, p); b == nil {
					b = make([]byte, geo.PageSize)
					sh.pages[p] = b
					tier.noteHot(sh, p)
				}
			} else {
				tier.touch(p)
			}
			off := int(r.next()%uint64(geo.PageSize/8)) * 8
			v := byte(r.next())
			b[off] = v
			if shadow[p] == nil {
				shadow[p] = make([]byte, geo.PageSize)
			}
			shadow[p][off] = v
			tier.enforce(sh)
			if tier.hotBytes > tier.budget {
				t.Fatalf("budget %d pages: hot set over budget after enforce", budgetPages)
			}
		}
		// Read every page back (promoting as needed) and compare.
		for p, want := range shadow {
			b := sh.pages[p]
			if b == nil {
				b = tier.promote(sh, p)
			}
			if b == nil {
				t.Fatalf("budget %d pages: page %d lost", budgetPages, p)
			}
			if !bytes.Equal(b, want) {
				t.Fatalf("budget %d pages: page %d bytes differ after tier moves", budgetPages, p)
			}
		}
		if st.Demotions.Load() == 0 {
			t.Fatalf("budget %d pages: no demotions — property test exercised nothing", budgetPages)
		}
		if st.Promotions.Load() == 0 {
			t.Fatalf("budget %d pages: no promotions", budgetPages)
		}
	}
}

// Fork lookup resolves pages through the range table to the congruent
// original frame, distinguishing "sealed zero page" (in range, nil
// frame) from "outside any fork range".
func TestSnapStoreForkLookup(t *testing.T) {
	ss := newSnapStore()
	ss.ensure(1)
	ss.store(1, 100, []byte{0x03, 1, 2, 3, 4, 5, 6, 7, 8}) // one literal word
	if net := ss.register(forkRange{base: 500, orig: 100, npages: 4, snap: 1}); net != 1 {
		t.Fatalf("first registration net = %d, want 1", net)
	}
	if net := ss.register(forkRange{base: 500, orig: 100, npages: 4, snap: 1}); net != 0 {
		t.Fatalf("re-registration net = %d, want 0", net)
	}
	if blob, ok := ss.lookup(500); !ok || blob == nil {
		t.Fatal("fork page 500 did not resolve to the sealed frame of page 100")
	}
	if blob, ok := ss.lookup(501); !ok || blob != nil {
		t.Fatal("fork page 501 should be an in-range zero frame")
	}
	if _, ok := ss.lookup(504); ok {
		t.Fatal("page past the range resolved")
	}
	if _, ok := ss.lookup(499); ok {
		t.Fatal("page before the range resolved")
	}
	// A second, unsealed snapshot's range must not serve pages.
	ss.register(forkRange{base: 600, orig: 100, npages: 4, snap: 9})
	if _, ok := ss.lookup(600); ok {
		t.Fatal("range of a never-sealed snapshot resolved")
	}
}

// Unmapping a fork range stops its pages from resolving, without
// disturbing neighbouring ranges; releasing a snapshot drops its frames
// and any stragglers in the fork table.
func TestSnapStoreUnregisterAndRelease(t *testing.T) {
	ss := newSnapStore()
	ss.ensure(1)
	ss.store(1, 100, []byte{0x03, 1, 2, 3, 4, 5, 6, 7, 8})
	ss.register(forkRange{base: 500, orig: 100, npages: 4, snap: 1})
	ss.register(forkRange{base: 600, orig: 100, npages: 4, snap: 1})
	if !ss.unregister(500) {
		t.Fatal("unregister of a registered range reported nothing removed")
	}
	if ss.unregister(500) {
		t.Fatal("double unregister removed something")
	}
	if _, ok := ss.lookup(500); ok {
		t.Fatal("unmapped fork page 500 still resolves")
	}
	if blob, ok := ss.lookup(600); !ok || blob == nil {
		t.Fatal("neighbouring range at 600 stopped resolving")
	}
	if n := ss.release(1); n != 1 {
		t.Fatalf("release(1) dropped %d frames, want 1", n)
	}
	if n := ss.release(1); n != 0 {
		t.Fatalf("double release dropped %d frames, want 0", n)
	}
	if _, ok := ss.lookup(600); ok {
		t.Fatal("range of a released snapshot still resolves")
	}
}

// Registering a range over a stale overlapping entry (a lost unmap)
// drops the stale entry, so the new range's pages resolve through the
// new snapshot — never shadowed by the dead fork.
func TestSnapStoreRegisterDropsStaleOverlap(t *testing.T) {
	ss := newSnapStore()
	ss.ensure(1)
	ss.store(1, 100, []byte{0x03, 9, 9, 9, 9, 9, 9, 9, 9})
	ss.ensure(2)
	ss.store(2, 200, []byte{0x03, 5, 5, 5, 5, 5, 5, 5, 5})
	ss.register(forkRange{base: 500, orig: 100, npages: 8, snap: 1}) // stale
	// New range starts below the stale base and overlaps it: without the
	// cleanup, lookup(502) would find the stale greatest-base entry.
	if net := ss.register(forkRange{base: 498, orig: 200, npages: 8, snap: 2}); net != 0 {
		t.Fatalf("overlapping registration net = %d, want 0 (1 added - 1 stale dropped)", net)
	}
	blob, ok := ss.lookup(500)
	if !ok {
		t.Fatal("page 500 does not resolve through the new range")
	}
	if blob != nil {
		t.Fatal("page 500 resolved to a frame, want the new snapshot's zero page (orig 202 unsealed)")
	}
	if blob, ok := ss.lookup(498); !ok || blob == nil {
		t.Fatal("new range's base page did not resolve to snap 2's frame")
	}
	if _, ok := ss.lookup(505); !ok {
		t.Fatal("tail of the new range does not resolve")
	}
	if _, ok := ss.lookup(506); ok {
		t.Fatal("page past the new range resolved (stale entry survived)")
	}
}
