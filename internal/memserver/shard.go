package memserver

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/layout"
	"repro/internal/proto"
	"repro/internal/scl"
	"repro/internal/vtime"
)

// Bounds for applying one sub-batch's page diffs with a transient
// worker pool instead of serially: the batch must touch at least
// parallelApplyPages distinct pages and carry at least
// parallelApplyBytes of payload, and at most maxApplyWorkers goroutines
// share the copying. The workers only memcpy into already-materialized
// pages — they never touch the calendar, the gate or the fabric — so
// they are invisible to virtual time and to the sequencer.
const (
	parallelApplyPages = 4
	parallelApplyBytes = 16 << 10
	maxApplyWorkers    = 4
)

type itemKind uint8

const (
	itemFetch itemKind = iota
	itemBatch
	itemFlush
	itemPing
	itemWriterDead
	itemUnmap
	itemStop
)

// shardItem is one unit of work on a shard's queue. Exactly one of the
// payload fields is set, per kind.
type shardItem struct {
	kind   itemKind
	req    *scl.Request      // itemBatch/itemFlush: originating request (for Arrive/Svc)
	sub    *subFetch         // itemFetch
	batch  *proto.DiffBatch  // itemBatch: this shard's sub-batch
	flush  *proto.EvictFlush // itemFlush: this shard's sub-flush
	ack     *ackJoin          // itemBatch/itemFlush/itemPing/itemUnmap: reply join (nil for one-way)
	split   bool              // itemBatch/itemFlush: one share of a multi-shard request
	writer  uint32            // itemWriterDead
	unpages []layout.PageID   // itemUnmap: this shard's pages of a dead fork range
	at      vtime.Time        // itemUnmap: completion time for the ack join
	code    uint16            // itemStop
	why     string            // itemStop
}

// subFetch is one shard's share of a fetch: the lines, pages and
// interval-tag needs that map to this shard. An unsplit fetch (join
// nil) is replied to directly; a split one copies its segments into
// join.data at the recorded offsets and completes the join.
type subFetch struct {
	req      *scl.Request
	lines    []layout.LineID
	pages    []layout.PageID
	needs    []proto.PageNeed
	multi    bool
	join     *fetchJoin
	lineOffs []int // parallel to lines: offsets into join.data
	pageOffs []int // parallel to pages: offsets into join.data
	// seal, when set, turns this sub-fetch into a snapshot seal: instead
	// of returning the pages' bytes it freezes them as sealed frames
	// (see seal.go). It rides the fetch machinery because it has the
	// same happens-before needs — a seal quoting interval tags must wait
	// for those diffs exactly like a read would.
	seal *sealInfo
}

// fetchJoin reassembles a fetch split across shards. The shards fill
// disjoint segments of data (a pooled buffer sized to tile exactly),
// and the last one to finish replies: with the full payload at the max
// per-shard completion time, or — if any shard failed — with the
// lowest-numbered failing shard's error, so the winning error does not
// depend on shard completion order.
type fetchJoin struct {
	req       *scl.Request
	mu        sync.Mutex
	remaining int
	data      []byte
	done      vtime.Time
	err       error
	errShard  int
	errCode   uint16
}

func (j *fetchJoin) complete(s *Server, shardID int, at vtime.Time, err error, code uint16) {
	j.mu.Lock()
	if at > j.done {
		j.done = at
	}
	if err != nil && (j.err == nil || shardID < j.errShard) {
		j.err, j.errShard, j.errCode = err, shardID, code
	}
	j.remaining--
	last := j.remaining == 0
	j.mu.Unlock()
	if !last {
		return
	}
	if j.err != nil {
		s.stats.FailedFetches.Add(1)
		j.req.ReplyErrorCode(j.errCode, j.err, j.done)
	} else {
		j.req.Reply(&proto.FetchLinesResp{Data: j.data}, j.done)
	}
	// Reply encoded (copied) the payload; the assembly buffer can go
	// back to the pool.
	proto.PutBuf(j.data)
}

// ackJoin joins the per-shard completions of an RPC-style (non-one-way)
// split request, or of a broadcast ping; the last shard acks at the max
// completion time.
type ackJoin struct {
	req       *scl.Request
	mu        sync.Mutex
	remaining int
	done      vtime.Time
}

func (j *ackJoin) complete(at vtime.Time) {
	j.mu.Lock()
	if at > j.done {
		j.done = at
	}
	j.remaining--
	last := j.remaining == 0
	done := j.done
	j.mu.Unlock()
	if last {
		j.req.Reply(&proto.Ack{}, done)
	}
}

// parkedFetch is a sub-fetch waiting for interval tags to be applied on
// its shard; waiting shrinks as tags land.
type parkedFetch struct {
	sub     *subFetch
	tags    []proto.IntervalTag
	waiting map[proto.IntervalTag]struct{}
}

// shard owns a disjoint, line-granular slice of the server's page space
// (Geometry.ShardOf) plus everything whose consistency is per-page:
// the service calendar, applied-tag table, parked fetches and lazy
// ownership claims. With one shard the dispatcher calls process
// directly; with more, run drains ch on a dedicated worker goroutine.
type shard struct {
	srv *Server
	id  int
	ch  chan shardItem

	cal calendar
	// clock mirrors cal.maxEnd (updated only via book) so the
	// dispatcher's Clock() can merge shard clocks without locking.
	clock atomic.Int64

	pages     map[layout.PageID][]byte
	appliedAt map[proto.IntervalTag]vtime.Time
	parked    map[*parkedFetch]struct{}
	owner     map[layout.PageID]uint32
	// deadWriters holds writers the manager has reaped: their announced
	// but unshipped interval tags will never be applied, so fetches must
	// not wait on them (see proto.WriterDead).
	deadWriters map[uint32]struct{}

	// tier, when non-nil, layers a byte-budgeted LRU hot set over a
	// compressed cold tier under the pages map (see tier.go). pending
	// accrues the virtual time of tier moves and sealed-frame
	// decompression during an operation; the operation drains it into
	// its work term via drainPending. scratch is the reusable
	// decompression target for sealed-frame reads, which serve forked
	// pages without materializing private copies.
	tier    *tierStore
	pending vtime.Time
	scratch []byte
}

// run is the shard worker loop (unsequenced multi-shard mode): drain
// the queue until the dispatcher sends a stop marker, which arrives
// behind any backlog and fails whatever is still parked.
func (sh *shard) run() {
	defer sh.srv.wg.Done()
	for {
		it := <-sh.ch
		if it.kind == itemStop {
			sh.failParked(it.code, it.why)
			return
		}
		sh.process(it)
	}
}

func (sh *shard) process(it shardItem) {
	switch it.kind {
	case itemFetch:
		sh.serveFetch(it.sub)
	case itemBatch:
		sh.applyBatch(it.req, it.batch, it.ack, it.split)
	case itemFlush:
		sh.applyFlush(it.req, it.flush, it.ack, it.split)
	case itemPing:
		it.ack.complete(sh.cal.maxEnd)
	case itemWriterDead:
		sh.writerDead(it.writer)
	case itemUnmap:
		sh.dropPages(it.unpages)
		if it.ack != nil {
			it.ack.complete(it.at)
		}
	default:
		panic(fmt.Sprintf("memserver: unexpected shard item kind %d", it.kind))
	}
}

// book books a service slot on the shard calendar, keeping the atomic
// clock mirror in sync. All shard code books through this wrapper.
func (sh *shard) book(at, dur vtime.Time) vtime.Time {
	start := sh.cal.book(at, dur)
	sh.clock.Store(int64(sh.cal.maxEnd))
	return start
}

// serveFetch answers a (sub-)fetch immediately or parks it until every
// quoted interval tag has been applied on this shard.
func (sh *shard) serveFetch(sub *subFetch) {
	var tags []proto.IntervalTag
	waiting := make(map[proto.IntervalTag]struct{})
	for i := range sub.needs {
		for _, tag := range sub.needs[i].Tags {
			tags = append(tags, tag)
			if _, ok := sh.appliedAt[tag]; !ok {
				if _, dead := sh.deadWriters[tag.Writer]; dead {
					continue // the batch will never come; serve what arrived
				}
				waiting[tag] = struct{}{}
			}
		}
	}
	if len(waiting) == 0 {
		sh.replyFetch(sub, tags)
		return
	}
	sh.srv.stats.ParkedFetches.Add(1)
	sh.parked[&parkedFetch{sub: sub, tags: tags, waiting: waiting}] = struct{}{}
}

// replyFetch answers a sub-fetch whose needed tags have all been
// applied: it is ready no earlier than its own arrival and the
// application times of those tags; lazily-owned pages across all
// requested lines and pages are pulled up to date (batched per writer);
// then the assembly books one service slot. A pull that fails (the
// owning writer's cache agent is unreachable) degrades to a clean
// protocol error back to the fetcher — ownership is retained so a later
// fetch can retry — instead of wedging or killing the server.
func (sh *shard) replyFetch(sub *subFetch, tags []proto.IntervalTag) {
	if sub.seal != nil {
		sh.sealPages(sub, tags)
		return
	}
	s := sh.srv
	ready := sub.req.Arrive()
	if sub.join != nil {
		// A split request pays the fixed per-request service cost once:
		// the dispatcher's pickup and demux happen before any shard can
		// start, so every share is ready at Arrive+Svc and only the
		// data-dependent work is charged per shard. (The unsplit path
		// keeps Svc inside the booked slot, matching the historical
		// single-loop accounting exactly.)
		ready += sub.req.Svc()
	}
	for _, tag := range tags {
		if at, ok := sh.appliedAt[tag]; ok && at > ready {
			ready = at
		}
	}
	if err := sh.pullOwned(sub.lines, sub.pages, &ready); err != nil {
		err = fmt.Errorf("memserver %d: lines %v pages %v: %w", s.index, sub.lines, sub.pages, err)
		if sub.join != nil {
			sub.join.complete(s, sh.id, sh.cal.maxEnd, err, proto.CodeGeneric)
			return
		}
		s.stats.FailedFetches.Add(1)
		sub.req.ReplyError(err, sh.cal.maxEnd)
		return
	}
	lineSize := s.geo.LineSize()
	n := lineSize*len(sub.lines) + s.geo.PageSize*len(sub.pages)
	if sub.join == nil {
		data := proto.GetBuf(n)
		for _, line := range sub.lines {
			first := s.geo.FirstPage(line)
			for i := 0; i < s.geo.LinePages; i++ {
				data = append(data, sh.readPage(first+layout.PageID(i))...)
			}
		}
		for _, p := range sub.pages {
			data = append(data, sh.readPage(p)...)
		}
		work := sub.req.Svc() + s.cpu.CopyTime(len(data)) + sh.drainPending()
		done := sh.book(ready, work) + work
		s.stats.BytesServed.Add(int64(len(data)))
		if sub.multi {
			sub.req.Reply(&proto.FetchLinesResp{Data: data}, done)
		} else {
			sub.req.Reply(&proto.FetchLineResp{Data: data}, done)
		}
		proto.PutBuf(data)
		return
	}
	// Split fetch: copy this shard's segments into the joined reply at
	// the offsets the dispatcher fixed from the request order.
	for i, line := range sub.lines {
		off := sub.lineOffs[i]
		first := s.geo.FirstPage(line)
		for k := 0; k < s.geo.LinePages; k++ {
			copy(sub.join.data[off+k*s.geo.PageSize:], sh.readPage(first+layout.PageID(k)))
		}
	}
	for i, p := range sub.pages {
		copy(sub.join.data[sub.pageOffs[i]:], sh.readPage(p))
	}
	work := s.cpu.CopyTime(n) + sh.drainPending()
	done := sh.book(ready, work) + work
	s.stats.BytesServed.Add(int64(n))
	sub.join.complete(s, sh.id, done, nil, 0)
}

// applyBatch applies this shard's share of a DiffBatch and marks the
// interval tag applied here.
func (sh *shard) applyBatch(req *scl.Request, m *proto.DiffBatch, join *ackJoin, split bool) {
	s := sh.srv
	ready := req.Arrive()
	if split {
		// Fixed per-request service is charged once, as a ready offset
		// shared by every share (see replyFetch).
		ready += req.Svc()
	}
	// DiffBatch is normally one-way: there is nobody to answer if a pull
	// from an unreachable writer fails mid-apply. The batch still
	// completes — its tag is marked applied and parked fetches wake —
	// because the failed pull retained its ownership record, so the
	// woken fetch re-attempts the pull itself and surfaces a clean error
	// if the writer is still gone. Stalling the tag would deadlock every
	// fetcher quoting it.
	bytes, err := sh.applyDiffs(m.Tag.Writer, m.Diffs, &ready)
	if err == nil {
		var rb int
		rb, err = sh.applyRecords(m.Records, &ready)
		bytes += rb
	}
	_ = err // counted in PullFailures by pullFrom; the tag must proceed
	for _, pu := range m.OwnedPages {
		p := layout.PageID(pu)
		// Two writers can each believe they are a page's sole writer the
		// first time they share it. Pull the previous owner's retained
		// diffs before handing the claim over, so both writers' bytes
		// merge at the home (multiple-writer protocol).
		if prev, ok := sh.owner[p]; ok && prev != m.Tag.Writer {
			if err := sh.pullFrom(prev, []uint64{pu}, &ready); err != nil {
				// Leave the previous claim in place; the handover will
				// be re-attempted when the page is next fetched.
				continue
			}
		}
		sh.owner[p] = m.Tag.Writer
		s.stats.OwnedClaims.Add(1)
	}
	work := s.cpu.ApplyTime(bytes) + sh.drainPending()
	if !split {
		work += req.Svc()
	}
	done := sh.book(ready, work) + work
	sh.appliedAt[m.Tag] = done
	sh.wakeParked(m.Tag)
	// Forward to the standby AFTER the local apply (and its pulls),
	// then ack: a sender whose ack never comes re-sends the batch to
	// the promoted standby, and re-applying absolute-byte diffs is
	// idempotent.
	sh.replicate(m)
	if join != nil {
		join.complete(done)
	}
}

// applyFlush applies this shard's share of an EvictFlush.
func (sh *shard) applyFlush(req *scl.Request, m *proto.EvictFlush, join *ackJoin, split bool) {
	s := sh.srv
	ready := req.Arrive()
	if split {
		ready += req.Svc()
	}
	// One-way, like DiffBatch: a failed owner pull is counted and the
	// retained ownership record lets a later fetch retry it.
	bytes, _ := sh.applyDiffs(m.Writer, m.Diffs, &ready)
	work := s.cpu.ApplyTime(bytes) + sh.drainPending()
	if !split {
		work += req.Svc()
	}
	done := sh.book(ready, work) + work
	sh.replicate(m)
	if join != nil {
		join.complete(done)
	}
}

// applyDiffs installs diffs sent by the given writer, returning the
// payload bytes applied. It runs in two phases. Phase one is serial and
// does everything with cross-page or fabric side effects: a page
// another writer still lazily owns has that owner's retained diffs
// pulled first (or they would be orphaned when the claim is cleared;
// the writer's own claim is simply superseded, since its release path
// folds retained runs into the diff it ships), claims are dropped,
// pages are materialized, runs are bounds-checked and sized. Phase two
// is pure memcpy of runs into pages — each diff touches its own page
// (the release path emits one diff per dirty page, and pulled diffs
// come from per-page retention tables), so large batches fan the copies
// out across a bounded transient worker pool.
//
// A failed pull aborts the apply before any copy, returning zero bytes
// with the error; the foreign claim stays recorded so the pull can be
// retried later. (Clean sequenced runs never fail pulls, so this path
// only differs from the historical partial-apply behaviour under fault
// injection.)
func (sh *shard) applyDiffs(writer uint32, diffs []proto.PageDiff, ready *vtime.Time) (int, error) {
	bytes := 0
	for i := range diffs {
		d := &diffs[i]
		p := layout.PageID(d.Page)
		if prev, ok := sh.owner[p]; ok && prev != writer {
			if err := sh.pullFrom(prev, []uint64{d.Page}, ready); err != nil {
				return 0, err
			}
		}
		delete(sh.owner, p)
		pg := sh.page(p)
		for _, run := range d.Runs {
			if int(run.Off)+len(run.Data) > len(pg) {
				panic(fmt.Sprintf("memserver: diff run overflows page %d: off=%d len=%d", d.Page, run.Off, len(run.Data)))
			}
			bytes += len(run.Data)
		}
	}
	if len(diffs) >= parallelApplyPages && bytes >= parallelApplyBytes {
		sh.srv.stats.ParallelApplies.Add(1)
		workers := maxApplyWorkers
		if len(diffs) < workers {
			workers = len(diffs)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(diffs); i += workers {
					sh.applyOne(&diffs[i])
				}
			}(w)
		}
		wg.Wait()
	} else {
		for i := range diffs {
			sh.applyOne(&diffs[i])
		}
	}
	sh.srv.stats.DiffBytes.Add(int64(bytes))
	return bytes, nil
}

// applyOne copies one page diff's runs into its (already materialized,
// already bounds-checked) page.
func (sh *shard) applyOne(d *proto.PageDiff) {
	pg := sh.pages[layout.PageID(d.Page)]
	for _, run := range d.Runs {
		copy(pg[run.Off:], run.Data)
	}
}

// applyRecords installs fine-grained consistency-region updates,
// returning the payload bytes applied. Any retained ownership diff for
// the page is pulled first: retained bytes are older than the records
// and must not clobber them later.
func (sh *shard) applyRecords(recs []proto.StoreRecord, ready *vtime.Time) (int, error) {
	bytes := 0
	for i := range recs {
		r := &recs[i]
		p := sh.srv.geo.PageOf(layout.Addr(r.Addr))
		if prev, ok := sh.owner[p]; ok {
			if err := sh.pullFrom(prev, []uint64{uint64(p)}, ready); err != nil {
				return bytes, err
			}
		}
		off := sh.srv.geo.PageOffset(layout.Addr(r.Addr))
		pg := sh.page(p)
		if off+len(r.Data) > len(pg) {
			panic(fmt.Sprintf("memserver: record overflows page %d: off=%d len=%d", p, off, len(r.Data)))
		}
		copy(pg[off:], r.Data)
		sh.srv.stats.Records.Add(1)
		bytes += len(r.Data)
	}
	return bytes, nil
}

// writerDead processes a manager obituary: the writer's lease was
// reaped, so any of its interval tags not yet applied here never will
// be — the release pipeline announces the interval to the manager
// before shipping the DiffBatch, and the writer died in between.
// Parked fetches stop waiting on those tags (waking if nothing else is
// pending) and future fetches skip them, serving the freshest bytes
// that did arrive rather than parking forever.
func (sh *shard) writerDead(w uint32) {
	sh.deadWriters[w] = struct{}{}
	for pf := range sh.parked {
		for tag := range pf.waiting {
			if tag.Writer == w {
				delete(pf.waiting, tag)
			}
		}
		if len(pf.waiting) == 0 {
			delete(sh.parked, pf)
			sh.replyFetch(pf.sub, pf.tags)
		}
	}
}

func (sh *shard) wakeParked(tag proto.IntervalTag) {
	for pf := range sh.parked {
		if _, ok := pf.waiting[tag]; !ok {
			continue
		}
		delete(pf.waiting, tag)
		if len(pf.waiting) == 0 {
			delete(sh.parked, pf)
			sh.replyFetch(pf.sub, pf.tags)
		}
	}
}

// pullOwned brings every lazily-owned page of the given lines and
// pages up to date by pulling retained diffs from their writers' cache
// agents — one batched pull per writer across the whole request, so a
// combined fetch never multiplies the pull round trips. The shard
// blocks on each pull — a fetch that hits an owned page pays the extra
// round trip, which is the single-writer optimization's bargain:
// writers release for free, occasional readers pay one pull.
func (sh *shard) pullOwned(lines []layout.LineID, pages []layout.PageID, ready *vtime.Time) error {
	byWriter := make(map[uint32][]uint64)
	for _, line := range lines {
		first := sh.srv.geo.FirstPage(line)
		for i := 0; i < sh.srv.geo.LinePages; i++ {
			p := first + layout.PageID(i)
			if w, ok := sh.owner[p]; ok {
				byWriter[w] = append(byWriter[w], uint64(p))
			}
		}
	}
	for _, p := range pages {
		if w, ok := sh.owner[p]; ok {
			byWriter[w] = append(byWriter[w], uint64(p))
		}
	}
	// Pull in writer order: the pulls chain on ready, so iteration order
	// is part of the virtual-time result and must be deterministic.
	writers := make([]uint32, 0, len(byWriter))
	for w := range byWriter {
		writers = append(writers, w)
	}
	sort.Slice(writers, func(i, j int) bool { return writers[i] < writers[j] })
	for _, w := range writers {
		if err := sh.pullFrom(w, byWriter[w], ready); err != nil {
			return err
		}
	}
	return nil
}

// pullFrom fetches and applies the retained diffs of the given pages
// from one writer's cache agent, clearing their ownership and advancing
// ready past the round trip and the apply work. If the writer's agent
// is unreachable the error is returned (and counted) with ownership
// left intact, so the pull can be retried by a later fetch — a dead
// writer must not take the memory server down with it.
func (sh *shard) pullFrom(w uint32, pages []uint64, ready *vtime.Time) error {
	s := sh.srv
	if s.standby.Load() {
		// A standby never pulls: its primary already pulled and
		// replicated the bytes as an EvictFlush ahead of this message,
		// so the claim is simply dropped.
		for _, pu := range pages {
			delete(sh.owner, layout.PageID(pu))
		}
		return nil
	}
	if s.agentAddr == nil {
		panic(fmt.Sprintf("memserver %d: pages owned by writer %d but no agent address map", s.index, w))
	}
	var resp proto.DiffPullResp
	doneAt, err := s.ep.Call(s.agentAddr(w), &proto.DiffPullReq{Pages: pages}, &resp, *ready)
	if err != nil {
		s.stats.PullFailures.Add(1)
		return fmt.Errorf("memserver %d: diff pull from writer %d: %w", s.index, w, err)
	}
	if doneAt > *ready {
		*ready = doneAt
	}
	s.stats.Pulls.Add(1)
	pulled := 0
	for i := range resp.Diffs {
		pulled += resp.Diffs[i].PayloadBytes()
	}
	s.stats.PulledBytes.Add(int64(pulled))
	// Clear ownership before applying: the pull IS the supersession, and
	// applyDiffs would otherwise recurse into pulling w again.
	for _, pu := range pages {
		delete(sh.owner, layout.PageID(pu))
	}
	// Pulled bytes exist only in this server's memory now (the writer's
	// retained diffs were taken destructively): replicate them before
	// applying, so the standby sees them ahead of any batch that
	// depends on them.
	sh.replicate(&proto.EvictFlush{Writer: w, Diffs: resp.Diffs})
	if _, err := sh.applyDiffs(w, resp.Diffs, ready); err != nil {
		return err
	}
	*ready += s.cpu.ApplyTime(pulled)
	return nil
}

// replicate forwards an applied mutation to the warm standby and waits
// for its ack. The forward is per shard: this shard is the only sender
// of its pages' mutations, and the standby's identical shard mapping
// routes each forward wholly to the matching shard, so per-page apply
// order is preserved end to end.
//
// The forward is a synchronous call, not a one-way post: it sits inside
// the window between applying a sender's batch and acking the sender,
// so the sender's ack means the bytes are durable on BOTH replicas. A
// one-way forward lost to packet drop (or to this primary's own death)
// would leave the standby silently missing an interval — after a
// promotion, fetches quoting that interval's tag would park forever and
// reads of its pages would return stale bytes. With the call, a dropped
// forward is retried by the endpoint's retry layer, and a forward this
// primary cannot complete keeps the sender unacked, so the sender
// re-sends the batch to the promoted standby itself (re-applying
// absolute-byte diffs is idempotent). The round trip is wall-clock
// only: the ack carries no virtual cost, so replication stays invisible
// to virtual-time results, exactly like the one-way forward was.
func (sh *shard) replicate(m proto.Msg) {
	s := sh.srv
	if !s.hasReplica {
		return
	}
	var ack proto.Ack
	if _, err := s.ep.Call(s.replica, m, &ack, sh.cal.maxEnd); err != nil {
		if s.live != nil {
			s.live.ReplFailures.Add(1)
		}
		return
	}
	if s.live != nil {
		s.live.ReplBatches.Add(1)
		s.live.ReplBytes.Add(int64(len(proto.Encode(m))))
	}
}

// page returns the backing bytes of p for mutation, materializing it if
// absent: promoted from the cold tier, copied out of a sealed snapshot
// frame (the copy-on-write break — the fork's private page diverges from
// the shared frame here), or zero-filled. The returned page is always
// installed in the hot set.
func (sh *shard) page(p layout.PageID) []byte {
	if b, ok := sh.pages[p]; ok {
		if sh.tier != nil {
			sh.tier.touch(p)
			sh.tier.st.HotHits.Add(1)
		}
		return b
	}
	if sh.tier != nil {
		if b := sh.tier.promote(sh, p); b != nil {
			return b
		}
	}
	b := make([]byte, sh.srv.geo.PageSize)
	if blob, ok := sh.srv.snaps.lookup(p); ok {
		decompressPage(b, blob)
		sh.pending += sh.srv.cpu.ApplyTime(len(b))
		if ts := sh.srv.tierStats; ts != nil {
			ts.CoWBreaks.Add(1)
		}
	}
	sh.pages[p] = b
	sh.srv.stats.PagesHosted.Add(1)
	if sh.tier != nil {
		sh.tier.noteHot(sh, p)
	}
	return b
}

// readPage returns the bytes of p for reading only. Unlike page it
// serves forked pages straight out of their shared sealed frame —
// decompressed into a per-shard scratch buffer, never installed — so a
// storm of forks reading one image costs no per-fork page copies. The
// caller must copy the result out before the next readPage call.
func (sh *shard) readPage(p layout.PageID) []byte {
	if b, ok := sh.pages[p]; ok {
		if sh.tier != nil {
			sh.tier.touch(p)
			sh.tier.st.HotHits.Add(1)
		}
		return b
	}
	if sh.tier != nil {
		if b := sh.tier.promote(sh, p); b != nil {
			return b
		}
	}
	if blob, ok := sh.srv.snaps.lookup(p); ok {
		if sh.scratch == nil {
			sh.scratch = make([]byte, sh.srv.geo.PageSize)
		}
		decompressPage(sh.scratch, blob)
		sh.pending += sh.srv.cpu.ApplyTime(len(sh.scratch))
		return sh.scratch
	}
	// Never-materialized page: serve zeros WITHOUT hosting it. A pure
	// read must not install — a speculative fetch past the end of a live
	// buffer (the prefetcher runs one line ahead of a stream) would
	// otherwise pin a zero page over the sealed frames a later fork
	// registration maps at this address.
	if sh.scratch == nil {
		sh.scratch = make([]byte, sh.srv.geo.PageSize)
	} else {
		clear(sh.scratch)
	}
	return sh.scratch
}

// dropPages discards the private pages a dead fork materialized on this
// shard — hot copies, cold blobs and lazy ownership claims — so the
// striped space can be reused without the old bytes bleeding into a
// later allocation. Pure bookkeeping, no virtual-time cost: teardown
// happens off the data path, like writerDead.
func (sh *shard) dropPages(pages []layout.PageID) {
	for _, p := range pages {
		delete(sh.owner, p)
		if _, ok := sh.pages[p]; ok {
			delete(sh.pages, p)
			if sh.tier != nil {
				sh.tier.forget(sh, p)
			}
			continue
		}
		if sh.tier != nil {
			sh.tier.dropCold(sh, p)
		}
	}
}

// drainPending settles the tier at the end of a shard operation: the
// hot set is trimmed back to budget (demotions accrue their move time)
// and the accumulated tier/frame virtual time is returned for the
// operation's work term. Deferring eviction to operation end means a
// page can never be demoted out from under a multi-phase apply.
func (sh *shard) drainPending() vtime.Time {
	if sh.tier != nil {
		sh.tier.enforce(sh)
	}
	p := sh.pending
	sh.pending = 0
	return p
}

// failParked answers every parked fetch on this shard with a typed
// error (shutdown or peer death). Split halves complete their join —
// the join replies once all shards have reported, whether by data or
// by failure.
func (sh *shard) failParked(code uint16, why string) {
	for pf := range sh.parked {
		err := fmt.Errorf("memserver: %s with fetch pending", why)
		if pf.sub.seal != nil {
			pf.sub.seal.join.complete(sh.id, sh.cal.maxEnd, err, code)
			continue
		}
		if pf.sub.join != nil {
			pf.sub.join.complete(sh.srv, sh.id, sh.cal.maxEnd, err, code)
			continue
		}
		pf.sub.req.ReplyErrorCode(code, err, sh.cal.maxEnd)
	}
	sh.parked = make(map[*parkedFetch]struct{})
}
