package memserver

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

func TestCalendarBooksAtArrivalWhenIdle(t *testing.T) {
	var c calendar
	if got := c.book(100, 10); got != 100 {
		t.Fatalf("book on empty calendar = %v, want 100", got)
	}
	if c.maxEnd != 110 {
		t.Fatalf("maxEnd = %v", c.maxEnd)
	}
}

func TestCalendarQueuesBursts(t *testing.T) {
	var c calendar
	// Three requests arriving at the same instant serialize.
	s1 := c.book(100, 10)
	s2 := c.book(100, 10)
	s3 := c.book(100, 10)
	if s1 != 100 || s2 != 110 || s3 != 120 {
		t.Fatalf("burst starts: %v %v %v", s1, s2, s3)
	}
}

func TestCalendarFillsGaps(t *testing.T) {
	var c calendar
	c.book(100, 10) // [100,110)
	c.book(200, 10) // [200,210)
	// An out-of-order early arrival books the idle gap, not the end.
	if got := c.book(120, 10); got != 120 {
		t.Fatalf("gap booking = %v, want 120", got)
	}
	// A long job that does not fit the remaining gap goes after.
	if got := c.book(110, 100); got != 210 {
		t.Fatalf("oversized gap booking = %v, want 210", got)
	}
}

func TestCalendarZeroWork(t *testing.T) {
	var c calendar
	c.book(100, 10)
	if got := c.book(105, 0); got != 105 {
		t.Fatalf("zero-duration booking = %v, want its own arrival", got)
	}
	if len(c.busy) != 1 {
		t.Fatalf("zero booking created an interval")
	}
}

func TestCalendarCapBounded(t *testing.T) {
	var c calendar
	for i := 0; i < 3*calendarCap; i++ {
		// Disjoint bookings far apart so nothing coalesces.
		c.book(vtime.Time(i*100), 1)
	}
	if len(c.busy) > calendarCap {
		t.Fatalf("calendar grew to %d intervals", len(c.busy))
	}
}

// Property: bookings never overlap, never start before their arrival,
// and the busy list stays sorted and disjoint.
func TestCalendarInvariantProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var c calendar
		type job struct{ start, end vtime.Time }
		var jobs []job
		for i := 0; i < 200; i++ {
			at := vtime.Time(rng.Int63n(100_000))
			dur := vtime.Time(1 + rng.Int63n(500))
			start := c.book(at, dur)
			if start < at {
				return false
			}
			jobs = append(jobs, job{start, start + dur})
		}
		sort.Slice(jobs, func(i, j int) bool { return jobs[i].start < jobs[j].start })
		for i := 1; i < len(jobs); i++ {
			if jobs[i].start < jobs[i-1].end {
				return false // double booking
			}
		}
		// Internal list sorted and disjoint.
		for i := 1; i < len(c.busy); i++ {
			if c.busy[i].start < c.busy[i-1].end {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: serving order independence — the set of service start times
// for a fixed set of (arrival, duration) jobs booked in any order packs
// within the same makespan bound.
func TestCalendarMakespanProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50
		type j struct {
			at  vtime.Time
			dur vtime.Time
		}
		jobs := make([]j, n)
		var totalWork, maxAt vtime.Time
		for i := range jobs {
			jobs[i] = j{at: vtime.Time(rng.Int63n(10_000)), dur: vtime.Time(1 + rng.Int63n(100))}
			totalWork += jobs[i].dur
			if jobs[i].at > maxAt {
				maxAt = jobs[i].at
			}
		}
		var c calendar
		perm := rng.Perm(n)
		for _, i := range perm {
			c.book(jobs[i].at, jobs[i].dur)
		}
		// Regardless of booking order, everything finishes within
		// latest-arrival + total-work (the serial-server bound).
		return c.maxEnd <= maxAt+totalWork
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
