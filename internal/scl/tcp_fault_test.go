package scl

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/vtime"
)

// newTCPPair starts a client and a server endpoint sharing one address
// book and registers cleanup.
func newTCPPair(t *testing.T) (cli, srv *TCPEndpoint, book *AddressBook) {
	t.Helper()
	book = NewAddressBook()
	var err error
	srv, err = NewTCPEndpoint(2, "127.0.0.1:0", book, testModel)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	t.Cleanup(srv.Close)
	cli, err = NewTCPEndpoint(1, "127.0.0.1:0", book, testModel)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	t.Cleanup(cli.Close)
	return cli, srv, book
}

// TestTCPPeerDeathFailsPendingCall is the hang-forever repro: the server
// receives the request and dies without answering. Before the fix, the
// pending call blocked on its response channel forever; now the client's
// read loop notices the dead connection and fails the call.
func TestTCPPeerDeathFailsPendingCall(t *testing.T) {
	cli, srv, _ := newTCPPair(t)

	got := make(chan struct{})
	go func() {
		if req, ok := srv.Recv(); ok && req != nil {
			close(got)
			// Die without replying: every connection closes.
			srv.Close()
		}
	}()

	errC := make(chan error, 1)
	go func() {
		var resp proto.AllocResp
		_, err := cli.Call(2, &proto.AllocReq{Size: 1}, &resp, 0)
		errC <- err
	}()

	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("server never received the request")
	}
	select {
	case err := <-errC:
		if err == nil {
			t.Fatal("Call succeeded though the peer died without replying")
		}
		// The zero policy makes one attempt and reports exhaustion.
		if !errors.Is(err, ErrUnreachable) {
			t.Errorf("peer-death error = %v, want ErrUnreachable", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Call still hanging 5s after peer death — hang-forever bug")
	}
	if got := cli.NetStats().StrandedCalls.Load(); got == 0 {
		t.Error("StrandedCalls not counted")
	}
	if got := cli.NetStats().DeadConns.Load(); got == 0 {
		t.Error("DeadConns not counted")
	}
}

// TestTCPDeadConnEvictedAndRedialed kills the server, observes a clean
// failure, restarts a server under the same node id at a fresh address,
// and checks the next call redials and succeeds.
func TestTCPDeadConnEvictedAndRedialed(t *testing.T) {
	cli, srv, book := newTCPPair(t)
	go echoAlloc(t, srv)

	var resp proto.AllocResp
	if _, err := cli.Call(2, &proto.AllocReq{Size: 5}, &resp, 0); err != nil {
		t.Fatalf("warm-up call: %v", err)
	}

	srv.Close()
	// The cached connection is now dead; without retries the next call
	// must fail fast (stranded or refused), not hang.
	errC := make(chan error, 1)
	go func() {
		var r proto.AllocResp
		_, err := cli.Call(2, &proto.AllocReq{Size: 6}, &r, 0)
		errC <- err
	}()
	select {
	case err := <-errC:
		if err == nil {
			t.Fatal("call to dead server succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call to dead server hung")
	}

	// Restart the "node 2" server at a new address; book.Set repoints it.
	srv2, err := NewTCPEndpoint(2, "127.0.0.1:0", book, testModel)
	if err != nil {
		t.Fatalf("restart server: %v", err)
	}
	t.Cleanup(srv2.Close)
	go echoAlloc(t, srv2)

	// The dead connection must have been evicted so this redials.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var r proto.AllocResp
		_, err := cli.Call(2, &proto.AllocReq{Size: 9}, &r, 0)
		if err == nil {
			if r.Addr != 9 {
				t.Fatalf("Addr = %d after redial", r.Addr)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("call never succeeded after restart: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if got := cli.NetStats().DeadConns.Load(); got == 0 {
		t.Error("DeadConns not counted after eviction")
	}
}

// TestTCPRetryMasksServerRestart gives the client a retry policy and
// checks a single Call survives the dead cached connection without the
// caller seeing an error.
func TestTCPRetryMasksServerRestart(t *testing.T) {
	cli, srv, _ := newTCPPair(t)
	cli.SetRetryPolicy(RetryPolicy{MaxAttempts: 50, Backoff: time.Millisecond, BackoffCap: 10 * time.Millisecond})
	go echoAlloc(t, srv)

	var resp proto.AllocResp
	if _, err := cli.Call(2, &proto.AllocReq{Size: 5}, &resp, 0); err != nil {
		t.Fatalf("warm-up call: %v", err)
	}
	srv.Close() // cached conn is now dead; next call's first attempts fail

	var r proto.AllocResp
	done := make(chan error, 1)
	go func() {
		_, err := cli.Call(2, &proto.AllocReq{Size: 7}, &r, 0)
		done <- err
	}()
	// Restart happens while the retry loop is backing off. Rebind node 2.
	time.Sleep(5 * time.Millisecond)
	srv2, err := NewTCPEndpoint(2, "127.0.0.1:0", cli.book, testModel)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	t.Cleanup(srv2.Close)
	go echoAlloc(t, srv2)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("retry did not mask the restart: %v", err)
		}
		if r.Addr != 7 {
			t.Errorf("Addr = %d", r.Addr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("retried call hung")
	}
	if got := cli.NetStats().Retries.Load(); got == 0 {
		t.Error("no retries counted though first attempts must have failed")
	}
}

// TestTCPCallUnreachable exhausts retries against a node with no
// listener and checks the typed terminal error.
func TestTCPCallUnreachable(t *testing.T) {
	cli, _, book := newTCPPair(t)
	cli.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, Backoff: time.Microsecond})
	// Node 9: address points at a closed port.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	book.Set(9, addr)

	var resp proto.AllocResp
	_, err = cli.Call(9, &proto.AllocReq{}, &resp, 0)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	var ue *UnreachableError
	if !errors.As(err, &ue) || ue.Node != 9 || ue.Attempts != 3 {
		t.Fatalf("UnreachableError = %+v", ue)
	}
	if got := cli.NetStats().Unreachable.Load(); got != 1 {
		t.Errorf("Unreachable = %d", got)
	}
}

// TestTCPCallTimeoutAndStaleResponse bounds an attempt against a server
// that answers too late: the call times out (counted), and the late
// response is discarded as stale instead of corrupting a later call.
func TestTCPCallTimeoutAndStaleResponse(t *testing.T) {
	cli, srv, _ := newTCPPair(t)
	cli.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, Timeout: 50 * time.Millisecond, Backoff: time.Microsecond})

	release := make(chan struct{})
	go func() {
		for {
			req, ok := srv.Recv()
			if !ok {
				return
			}
			go func(req *Request) {
				<-release // answer only when told to — far past the timeout
				req.Reply(&proto.AllocResp{Addr: 1}, req.Arrive()+req.Svc())
			}(req)
		}
	}()

	var resp proto.AllocResp
	start := time.Now()
	_, err := cli.Call(2, &proto.AllocReq{Size: 1}, &resp, 0)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Errorf("timed-out call took %v", e)
	}
	if got := cli.NetStats().Timeouts.Load(); got != 2 {
		t.Errorf("Timeouts = %d, want 2", got)
	}

	// Let the parked replies flow: they must be dropped as stale.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for cli.NetStats().StaleResponses.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("late responses never counted as stale")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTCPReplyWriteErrorCountsAndDropsConn connects with a raw socket,
// sends a request, and slams the connection shut (RST via SO_LINGER 0)
// before the reply; the server's reply write must fail, be counted, and
// kill the connection rather than pass silently.
func TestTCPReplyWriteErrorCountsAndDropsConn(t *testing.T) {
	book := NewAddressBook()
	srv, err := NewTCPEndpoint(2, "127.0.0.1:0", book, testModel)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	addr, _ := book.Lookup(2)

	reqC := make(chan *Request, 1)
	go func() {
		if req, ok := srv.Recv(); ok {
			reqC <- req
		}
	}()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	tc := &tcpConn{c: c, pending: make(map[uint64]chan frame)}
	f := &frame{kind: uint16(proto.KAllocReq), reqID: 1, vt: 0,
		body: proto.Encode(&proto.AllocReq{Size: 3})}
	if err := writeFrame(tc, f); err != nil {
		t.Fatal(err)
	}

	var req *Request
	select {
	case req = <-reqC:
	case <-time.After(5 * time.Second):
		t.Fatal("server never received the raw request")
	}

	// RST the connection so the server's pending reply write fails.
	if tcp, ok := c.(*net.TCPConn); ok {
		tcp.SetLinger(0)
	}
	c.Close()
	time.Sleep(50 * time.Millisecond)

	// Large body so the write cannot be absorbed by socket buffers.
	big := make([]byte, 1<<20)
	deadline := time.Now().Add(5 * time.Second)
	for srv.NetStats().WriteErrors.Load() == 0 {
		req.reply(uint16(proto.KAllocResp), big, vtime.Time(0))
		if time.Now().After(deadline) {
			t.Fatal("reply write error never counted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The dead connection must have been dropped.
	if got := srv.NetStats().DeadConns.Load(); got == 0 {
		t.Error("reply write error did not drop the connection")
	}
}
