package scl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// The TCP transport moves the identical protocol bytes through real
// sockets. Virtual time still governs the modelled cost — each frame
// carries the sender's virtual timestamp, and arrival times are computed
// from the same vtime.LinkModel as the simulated fabric — so a protocol
// exchange produces the same virtual-time result over TCP as over
// simnet. This mirrors the paper's SCL design point: the consistency
// protocol must not care whether the transport is IB verbs, SCIF over
// PCIe, or (here) loopback TCP.
//
// Unlike the simulated fabric, real sockets fail. The failure contract
// here is:
//
//   - Every connection tracks its in-flight calls. When the connection
//     dies (read error, write error, endpoint close), those calls
//     complete immediately with a transient error instead of blocking
//     forever on a response that can never arrive.
//   - A dead connection is evicted from the dial cache, so the next
//     Call/Post to that node redials (the peer may have restarted, or
//     the address book may now point at a replacement).
//   - Reply writes that fail are counted and kill the connection, so
//     the caller's pending-call tracking — and with it any retry layer
//     above — fires instead of silently losing the response.
//   - A RetryPolicy on the endpoint bounds each call attempt (Timeout)
//     and retries transient failures with exponential backoff before
//     surfacing ErrUnreachable. The zero policy means one attempt, no
//     timeout: detection without masking.
//
// Frame layout: length(u32) | flags(u8) | kind(u16) | reqID(u64) |
// vt(i64) | body. Length counts everything after the length field.

const (
	frameHeaderLen = 1 + 2 + 8 + 8
	flagResponse   = 1 << 0
	flagOneWay     = 1 << 1
)

// AddressBook maps node ids to TCP listen addresses.
type AddressBook struct {
	mu    sync.RWMutex
	addrs map[NodeID]string
}

// NewAddressBook returns an empty address book.
func NewAddressBook() *AddressBook {
	return &AddressBook{addrs: make(map[NodeID]string)}
}

// Set registers the listen address for a node.
func (b *AddressBook) Set(id NodeID, addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addrs[id] = addr
}

// Lookup resolves a node id.
func (b *AddressBook) Lookup(id NodeID) (string, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	a, ok := b.addrs[id]
	return a, ok
}

// TCPEndpoint implements Endpoint over real TCP connections.
type TCPEndpoint struct {
	id     NodeID
	book   *AddressBook
	model  vtime.LinkModel
	ln     net.Listener
	policy RetryPolicy
	nst    *stats.Net

	mu      sync.Mutex
	dials   map[NodeID]*tcpConn
	conns   map[*tcpConn]struct{} // every live connection, dialed or accepted
	nextReq atomic.Uint64

	inbox  chan *Request
	closed chan struct{}
	once   sync.Once
}

// tcpConn is one live connection plus the calls waiting on it.
type tcpConn struct {
	c  net.Conn
	wm sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]chan frame // reqID -> waiting Call
	dead    bool
}

// addPending registers a waiting call; it fails if the connection is
// already dead (the caller should redial and retry).
func (tc *tcpConn) addPending(reqID uint64, ch chan frame) error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.dead {
		return Transientf("scl: connection already closed")
	}
	tc.pending[reqID] = ch
	return nil
}

// takePending removes and returns the waiter for reqID, if any.
func (tc *tcpConn) takePending(reqID uint64) (chan frame, bool) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	ch, ok := tc.pending[reqID]
	if ok {
		delete(tc.pending, reqID)
	}
	return ch, ok
}

// removePending drops a waiter without completing it (timeout path).
func (tc *tcpConn) removePending(reqID uint64) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	delete(tc.pending, reqID)
}

type frame struct {
	flags uint8
	kind  uint16
	reqID uint64
	vt    vtime.Time
	body  []byte
}

// NewTCPEndpoint starts an endpoint listening on addr (use "127.0.0.1:0"
// to pick a free port), registers it in the address book, and begins
// accepting peers. The LinkModel plays the role the fabric plays for
// SimEndpoint: it prices every frame in virtual time.
func NewTCPEndpoint(id NodeID, addr string, book *AddressBook, model vtime.LinkModel) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("scl: listen: %w", err)
	}
	e := &TCPEndpoint{
		id:     id,
		book:   book,
		model:  model,
		ln:     ln,
		nst:    new(stats.Net),
		dials:  make(map[NodeID]*tcpConn),
		conns:  make(map[*tcpConn]struct{}),
		inbox:  make(chan *Request, 1024),
		closed: make(chan struct{}),
	}
	book.Set(id, ln.Addr().String())
	go e.acceptLoop()
	return e, nil
}

// ID implements Endpoint.
func (e *TCPEndpoint) ID() NodeID { return e.id }

// SetRetryPolicy installs the endpoint's retry/timeout policy. Call it
// before issuing traffic; the zero policy (the default) performs a
// single attempt with no timeout.
func (e *TCPEndpoint) SetRetryPolicy(p RetryPolicy) { e.policy = p }

// SetNetStats redirects the endpoint's robustness counters to a shared
// collector (each endpoint otherwise owns a private one).
func (e *TCPEndpoint) SetNetStats(n *stats.Net) {
	if n != nil {
		e.nst = n
	}
}

// NetStats exposes the endpoint's robustness counters.
func (e *TCPEndpoint) NetStats() *stats.Net { return e.nst }

func (e *TCPEndpoint) acceptLoop() {
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		tc := &tcpConn{c: c, pending: make(map[uint64]chan frame)}
		e.track(tc)
		go e.readLoop(tc)
	}
}

// track registers a live connection for Close.
func (e *TCPEndpoint) track(tc *tcpConn) {
	e.mu.Lock()
	e.conns[tc] = struct{}{}
	e.mu.Unlock()
}

// dropConn kills a connection: it is closed, evicted from the dial
// cache (so the next Call/Post redials), and every call still pending
// on it completes with a transient error. Idempotent.
func (e *TCPEndpoint) dropConn(tc *tcpConn) {
	tc.mu.Lock()
	if tc.dead {
		tc.mu.Unlock()
		return
	}
	tc.dead = true
	stranded := tc.pending
	tc.pending = make(map[uint64]chan frame)
	tc.mu.Unlock()

	tc.c.Close()
	e.mu.Lock()
	delete(e.conns, tc)
	for id, cached := range e.dials {
		if cached == tc {
			delete(e.dials, id)
		}
	}
	e.mu.Unlock()

	e.nst.DeadConns.Add(1)
	e.nst.StrandedCalls.Add(int64(len(stranded)))
	// Closing the channel (rather than sending a frame) tells the
	// waiting Call the connection died with its request outstanding.
	for _, ch := range stranded {
		close(ch)
	}
}

// readLoop demultiplexes frames from one connection: responses complete
// pending calls, requests go to the inbox. When the read side fails the
// connection is dropped, which strands — with an error, not a hang —
// every call still waiting on it.
func (e *TCPEndpoint) readLoop(tc *tcpConn) {
	defer e.dropConn(tc)
	for {
		f, err := readFrame(tc.c)
		if err != nil {
			return
		}
		if f.flags&flagResponse != 0 {
			if ch, ok := tc.takePending(f.reqID); ok {
				ch <- *f
			} else {
				// Late (timed-out) or duplicate response: the call has
				// already been completed or abandoned.
				e.nst.StaleResponses.Add(1)
			}
			continue
		}
		req := e.makeRequest(tc, f)
		select {
		case e.inbox <- req:
		case <-e.closed:
			return
		}
	}
}

func (e *TCPEndpoint) makeRequest(tc *tcpConn, f *frame) *Request {
	size := len(f.body) + frameHeaderLen + 4
	arrive := e.model.Deliver(f.vt+e.model.SendOverhead, size)
	reqID := f.reqID
	return &Request{
		src:    0, // TCP transport does not carry the sender id; unused by servers
		kind:   proto.Kind(f.kind),
		body:   f.body,
		arrive: arrive,
		svc:    e.model.ServiceTime,
		oneway: f.flags&flagOneWay != 0,
		reply: func(kind uint16, body []byte, at vtime.Time) {
			if f.flags&flagOneWay != 0 {
				panic("scl: reply to one-way TCP message")
			}
			if err := writeFrame(tc, &frame{flags: flagResponse, kind: kind, reqID: reqID, vt: at, body: body}); err != nil {
				// The response is lost. Count it and kill the connection
				// so the caller's pending-call tracking (and any retry
				// layer above it) fires instead of waiting forever.
				e.nst.WriteErrors.Add(1)
				e.dropConn(tc)
			}
		},
	}
}

func (e *TCPEndpoint) conn(dst NodeID) (*tcpConn, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if tc, ok := e.dials[dst]; ok {
		return tc, nil
	}
	addr, ok := e.book.Lookup(dst)
	if !ok {
		return nil, fmt.Errorf("scl: no address for node %d", dst)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		// The peer may be down or restarting; retry may reach it.
		return nil, Transientf("scl: dial node %d: %v", dst, err)
	}
	tc := &tcpConn{c: c, pending: make(map[uint64]chan frame)}
	e.dials[dst] = tc
	e.conns[tc] = struct{}{}
	go e.readLoop(tc) // responses come back on the same connection
	return tc, nil
}

// Call implements Endpoint, applying the endpoint's RetryPolicy: each
// attempt dials (or reuses) the connection, sends the request and waits
// for the response, the per-attempt timeout or connection death;
// transient failures back off and retry on a fresh connection, and
// exhaustion surfaces *UnreachableError (errors.Is ErrUnreachable).
func (e *TCPEndpoint) Call(dst NodeID, req proto.Msg, resp proto.Msg, at vtime.Time) (vtime.Time, error) {
	doneAt, err := runWithRetry(e.policy, e.nst, dst, func(timeout time.Duration) (vtime.Time, error) {
		return e.callOnce(dst, req, resp, at, timeout)
	})
	if err != nil {
		return at, err
	}
	return doneAt, nil
}

// callOnce performs a single request/response attempt.
func (e *TCPEndpoint) callOnce(dst NodeID, req proto.Msg, resp proto.Msg, at vtime.Time, timeout time.Duration) (vtime.Time, error) {
	tc, err := e.conn(dst)
	if err != nil {
		return at, err
	}
	reqID := e.nextReq.Add(1)
	ch := make(chan frame, 1)
	if err := tc.addPending(reqID, ch); err != nil {
		return at, err
	}
	defer tc.removePending(reqID)
	f := &frame{kind: uint16(req.Kind()), reqID: reqID, vt: at, body: proto.Encode(req)}
	if err := writeFrame(tc, f); err != nil {
		e.nst.WriteErrors.Add(1)
		e.dropConn(tc)
		return at, Transientf("scl: send to node %d: %v", dst, err)
	}
	var timeoutC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	select {
	case rf, ok := <-ch:
		if !ok {
			return at, Transientf("scl: connection to node %d died with call pending", dst)
		}
		size := len(rf.body) + frameHeaderLen + 4
		doneAt := vtime.Max(at, e.model.Deliver(rf.vt+e.model.SendOverhead, size))
		return doneAt, decodeResponse(proto.Kind(rf.kind), rf.body, resp)
	case <-timeoutC:
		e.nst.Timeouts.Add(1)
		return at, Transientf("scl: call to node %d timed out after %v", dst, timeout)
	case <-e.closed:
		return at, errors.New("scl: endpoint closed during call")
	}
}

// Post implements Endpoint. A failed send drops the connection (so the
// next attempt redials) and reports a transient error; under a policy
// with retries the post is re-sent on a fresh connection.
func (e *TCPEndpoint) Post(dst NodeID, m proto.Msg, at vtime.Time) (vtime.Time, error) {
	doneAt, err := runWithRetry(e.policy, e.nst, dst, func(time.Duration) (vtime.Time, error) {
		tc, err := e.conn(dst)
		if err != nil {
			return at, err
		}
		f := &frame{flags: flagOneWay, kind: uint16(m.Kind()), vt: at, body: proto.Encode(m)}
		if err := writeFrame(tc, f); err != nil {
			e.nst.WriteErrors.Add(1)
			e.dropConn(tc)
			return at, Transientf("scl: post to node %d: %v", dst, err)
		}
		return at + e.model.SendOverhead, nil
	})
	if err != nil {
		return at, err
	}
	return doneAt, nil
}

// Recv implements Endpoint.
func (e *TCPEndpoint) Recv() (*Request, bool) {
	select {
	case r := <-e.inbox:
		return r, true
	case <-e.closed:
		select {
		case r := <-e.inbox:
			return r, true
		default:
			return nil, false
		}
	}
}

// Close implements Endpoint: the listener stops, and every live
// connection — dialed or accepted — is dropped, failing its pending
// calls instead of leaving them blocked.
func (e *TCPEndpoint) Close() {
	e.once.Do(func() {
		close(e.closed)
		e.ln.Close()
		e.mu.Lock()
		conns := make([]*tcpConn, 0, len(e.conns))
		for tc := range e.conns {
			conns = append(conns, tc)
		}
		e.mu.Unlock()
		for _, tc := range conns {
			e.dropConn(tc)
		}
	})
}

func writeFrame(tc *tcpConn, f *frame) error {
	hdr := make([]byte, 4+frameHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(frameHeaderLen+len(f.body)))
	hdr[4] = f.flags
	binary.LittleEndian.PutUint16(hdr[5:], f.kind)
	binary.LittleEndian.PutUint64(hdr[7:], f.reqID)
	binary.LittleEndian.PutUint64(hdr[15:], uint64(f.vt))
	tc.wm.Lock()
	defer tc.wm.Unlock()
	if _, err := tc.c.Write(hdr); err != nil {
		return err
	}
	_, err := tc.c.Write(f.body)
	return err
}

func readFrame(r io.Reader) (*frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < frameHeaderLen || n > 1<<30 {
		return nil, fmt.Errorf("scl: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return &frame{
		flags: buf[0],
		kind:  binary.LittleEndian.Uint16(buf[1:]),
		reqID: binary.LittleEndian.Uint64(buf[3:]),
		vt:    vtime.Time(binary.LittleEndian.Uint64(buf[11:])),
		body:  buf[frameHeaderLen:],
	}, nil
}

// TCPFactory builds TCPEndpoints that share one address book, so a
// whole Samhita instance (manager, memory servers, compute threads,
// cache agents) can run over real sockets. Endpoints listen on
// loopback with kernel-assigned ports; the LinkModel still prices every
// frame in virtual time, so results are comparable with the simulated
// fabric.
type TCPFactory struct {
	book   *AddressBook
	model  vtime.LinkModel
	policy RetryPolicy
	nst    *stats.Net

	mu        sync.Mutex
	endpoints []*TCPEndpoint
}

// NewTCPFactory creates a factory whose endpoints all use the given
// link model.
func NewTCPFactory(model vtime.LinkModel) *TCPFactory {
	return &TCPFactory{book: NewAddressBook(), model: model, nst: new(stats.Net)}
}

// SetRetryPolicy makes every endpoint the factory creates from now on
// apply the policy to its calls and posts.
func (f *TCPFactory) SetRetryPolicy(p RetryPolicy) { f.policy = p }

// NetStats exposes the robustness counters shared by the factory's
// endpoints.
func (f *TCPFactory) NetStats() *stats.Net { return f.nst }

// NewEndpoint implements the transport-factory contract used by the
// Samhita runtime.
func (f *TCPFactory) NewEndpoint(id NodeID) (Endpoint, error) {
	ep, err := NewTCPEndpoint(id, "127.0.0.1:0", f.book, f.model)
	if err != nil {
		return nil, err
	}
	ep.SetRetryPolicy(f.policy)
	ep.SetNetStats(f.nst)
	f.mu.Lock()
	f.endpoints = append(f.endpoints, ep)
	f.mu.Unlock()
	return ep, nil
}

// Close shuts down every endpoint the factory created.
func (f *TCPFactory) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ep := range f.endpoints {
		ep.Close()
	}
	f.endpoints = nil
	return nil
}
