package scl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/proto"
	"repro/internal/vtime"
)

// The TCP transport moves the identical protocol bytes through real
// sockets. Virtual time still governs the modelled cost — each frame
// carries the sender's virtual timestamp, and arrival times are computed
// from the same vtime.LinkModel as the simulated fabric — so a protocol
// exchange produces the same virtual-time result over TCP as over
// simnet. This mirrors the paper's SCL design point: the consistency
// protocol must not care whether the transport is IB verbs, SCIF over
// PCIe, or (here) loopback TCP.
//
// Frame layout: length(u32) | flags(u8) | kind(u16) | reqID(u64) |
// vt(i64) | body. Length counts everything after the length field.

const (
	frameHeaderLen = 1 + 2 + 8 + 8
	flagResponse   = 1 << 0
	flagOneWay     = 1 << 1
)

// AddressBook maps node ids to TCP listen addresses.
type AddressBook struct {
	mu    sync.RWMutex
	addrs map[NodeID]string
}

// NewAddressBook returns an empty address book.
func NewAddressBook() *AddressBook {
	return &AddressBook{addrs: make(map[NodeID]string)}
}

// Set registers the listen address for a node.
func (b *AddressBook) Set(id NodeID, addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addrs[id] = addr
}

// Lookup resolves a node id.
func (b *AddressBook) Lookup(id NodeID) (string, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	a, ok := b.addrs[id]
	return a, ok
}

// TCPEndpoint implements Endpoint over real TCP connections.
type TCPEndpoint struct {
	id    NodeID
	book  *AddressBook
	model vtime.LinkModel
	ln    net.Listener

	mu      sync.Mutex
	dials   map[NodeID]*tcpConn
	nextReq atomic.Uint64
	pending sync.Map // reqID -> chan frame

	inbox  chan *Request
	closed chan struct{}
	once   sync.Once
}

type tcpConn struct {
	c  net.Conn
	wm sync.Mutex // serializes frame writes
}

type frame struct {
	flags uint8
	kind  uint16
	reqID uint64
	vt    vtime.Time
	body  []byte
}

// NewTCPEndpoint starts an endpoint listening on addr (use "127.0.0.1:0"
// to pick a free port), registers it in the address book, and begins
// accepting peers. The LinkModel plays the role the fabric plays for
// SimEndpoint: it prices every frame in virtual time.
func NewTCPEndpoint(id NodeID, addr string, book *AddressBook, model vtime.LinkModel) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("scl: listen: %w", err)
	}
	e := &TCPEndpoint{
		id:     id,
		book:   book,
		model:  model,
		ln:     ln,
		dials:  make(map[NodeID]*tcpConn),
		inbox:  make(chan *Request, 1024),
		closed: make(chan struct{}),
	}
	book.Set(id, ln.Addr().String())
	go e.acceptLoop()
	return e, nil
}

// ID implements Endpoint.
func (e *TCPEndpoint) ID() NodeID { return e.id }

func (e *TCPEndpoint) acceptLoop() {
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go e.readLoop(&tcpConn{c: c})
	}
}

// readLoop demultiplexes frames from one connection: responses complete
// pending calls, requests go to the inbox.
func (e *TCPEndpoint) readLoop(tc *tcpConn) {
	defer tc.c.Close()
	for {
		f, err := readFrame(tc.c)
		if err != nil {
			return
		}
		if f.flags&flagResponse != 0 {
			if ch, ok := e.pending.LoadAndDelete(f.reqID); ok {
				ch.(chan frame) <- *f
			}
			continue
		}
		req := e.makeRequest(tc, f)
		select {
		case e.inbox <- req:
		case <-e.closed:
			return
		}
	}
}

func (e *TCPEndpoint) makeRequest(tc *tcpConn, f *frame) *Request {
	size := len(f.body) + frameHeaderLen + 4
	arrive := e.model.Deliver(f.vt+e.model.SendOverhead, size)
	reqID := f.reqID
	return &Request{
		src:    0, // TCP transport does not carry the sender id; unused by servers
		kind:   proto.Kind(f.kind),
		body:   f.body,
		arrive: arrive,
		svc:    e.model.ServiceTime,
		oneway: f.flags&flagOneWay != 0,
		reply: func(kind uint16, body []byte, at vtime.Time) {
			if f.flags&flagOneWay != 0 {
				panic("scl: reply to one-way TCP message")
			}
			_ = writeFrame(tc, &frame{flags: flagResponse, kind: kind, reqID: reqID, vt: at, body: body})
		},
	}
}

func (e *TCPEndpoint) conn(dst NodeID) (*tcpConn, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if tc, ok := e.dials[dst]; ok {
		return tc, nil
	}
	addr, ok := e.book.Lookup(dst)
	if !ok {
		return nil, fmt.Errorf("scl: no address for node %d", dst)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("scl: dial node %d: %w", dst, err)
	}
	tc := &tcpConn{c: c}
	e.dials[dst] = tc
	go e.readLoop(tc) // responses come back on the same connection
	return tc, nil
}

// Call implements Endpoint.
func (e *TCPEndpoint) Call(dst NodeID, req proto.Msg, resp proto.Msg, at vtime.Time) (vtime.Time, error) {
	tc, err := e.conn(dst)
	if err != nil {
		return at, err
	}
	reqID := e.nextReq.Add(1)
	ch := make(chan frame, 1)
	e.pending.Store(reqID, ch)
	defer e.pending.Delete(reqID)
	f := &frame{kind: uint16(req.Kind()), reqID: reqID, vt: at, body: proto.Encode(req)}
	if err := writeFrame(tc, f); err != nil {
		return at, err
	}
	select {
	case rf := <-ch:
		size := len(rf.body) + frameHeaderLen + 4
		doneAt := vtime.Max(at, e.model.Deliver(rf.vt+e.model.SendOverhead, size))
		return doneAt, decodeResponse(proto.Kind(rf.kind), rf.body, resp)
	case <-e.closed:
		return at, errors.New("scl: endpoint closed during call")
	}
}

// Post implements Endpoint.
func (e *TCPEndpoint) Post(dst NodeID, m proto.Msg, at vtime.Time) (vtime.Time, error) {
	tc, err := e.conn(dst)
	if err != nil {
		return at, err
	}
	f := &frame{flags: flagOneWay, kind: uint16(m.Kind()), vt: at, body: proto.Encode(m)}
	if err := writeFrame(tc, f); err != nil {
		return at, err
	}
	return at + e.model.SendOverhead, nil
}

// Recv implements Endpoint.
func (e *TCPEndpoint) Recv() (*Request, bool) {
	select {
	case r := <-e.inbox:
		return r, true
	case <-e.closed:
		select {
		case r := <-e.inbox:
			return r, true
		default:
			return nil, false
		}
	}
}

// Close implements Endpoint.
func (e *TCPEndpoint) Close() {
	e.once.Do(func() {
		close(e.closed)
		e.ln.Close()
		e.mu.Lock()
		defer e.mu.Unlock()
		for _, tc := range e.dials {
			tc.c.Close()
		}
	})
}

func writeFrame(tc *tcpConn, f *frame) error {
	hdr := make([]byte, 4+frameHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(frameHeaderLen+len(f.body)))
	hdr[4] = f.flags
	binary.LittleEndian.PutUint16(hdr[5:], f.kind)
	binary.LittleEndian.PutUint64(hdr[7:], f.reqID)
	binary.LittleEndian.PutUint64(hdr[15:], uint64(f.vt))
	tc.wm.Lock()
	defer tc.wm.Unlock()
	if _, err := tc.c.Write(hdr); err != nil {
		return err
	}
	_, err := tc.c.Write(f.body)
	return err
}

func readFrame(r io.Reader) (*frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < frameHeaderLen || n > 1<<30 {
		return nil, fmt.Errorf("scl: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return &frame{
		flags: buf[0],
		kind:  binary.LittleEndian.Uint16(buf[1:]),
		reqID: binary.LittleEndian.Uint64(buf[3:]),
		vt:    vtime.Time(binary.LittleEndian.Uint64(buf[11:])),
		body:  buf[frameHeaderLen:],
	}, nil
}

// TCPFactory builds TCPEndpoints that share one address book, so a
// whole Samhita instance (manager, memory servers, compute threads,
// cache agents) can run over real sockets. Endpoints listen on
// loopback with kernel-assigned ports; the LinkModel still prices every
// frame in virtual time, so results are comparable with the simulated
// fabric.
type TCPFactory struct {
	book  *AddressBook
	model vtime.LinkModel

	mu        sync.Mutex
	endpoints []*TCPEndpoint
}

// NewTCPFactory creates a factory whose endpoints all use the given
// link model.
func NewTCPFactory(model vtime.LinkModel) *TCPFactory {
	return &TCPFactory{book: NewAddressBook(), model: model}
}

// NewEndpoint implements the transport-factory contract used by the
// Samhita runtime.
func (f *TCPFactory) NewEndpoint(id NodeID) (Endpoint, error) {
	ep, err := NewTCPEndpoint(id, "127.0.0.1:0", f.book, f.model)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.endpoints = append(f.endpoints, ep)
	f.mu.Unlock()
	return ep, nil
}

// Close shuts down every endpoint the factory created.
func (f *TCPFactory) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ep := range f.endpoints {
		ep.Close()
	}
	f.endpoints = nil
	return nil
}
