// Package scl implements the Samhita Communication Layer: the typed,
// transport-independent messaging interface the rest of the system is
// written against.
//
// In the paper, SCL abstracts the interconnect so that Samhita can run
// over InfiniBand verbs today and SCIF/PCIe tomorrow; it presents a
// direct-memory-access communication model rather than a serial
// protocol. Here the same role is played by the Endpoint interface:
// the DSM components speak proto messages to an Endpoint and do not know
// whether bytes move through the virtual-time simulated fabric
// (SimEndpoint, used by all experiments) or a real network transport
// (TCPEndpoint, provided to demonstrate that the abstraction is honest).
package scl

import (
	"fmt"

	"repro/internal/proto"
	"repro/internal/simnet"
	"repro/internal/vtime"
)

// NodeID identifies an endpoint. It is shared with the simulated fabric.
type NodeID = simnet.NodeID

// Endpoint is one component's attachment to the communication layer.
type Endpoint interface {
	// ID returns this endpoint's node id.
	ID() NodeID
	// Call sends req and blocks for the response, which it decodes into
	// resp (whose Kind must match the response on the wire). at is the
	// caller's virtual time when the call is issued; the returned time is
	// the caller's virtual time when the response is in hand.
	Call(dst NodeID, req proto.Msg, resp proto.Msg, at vtime.Time) (vtime.Time, error)
	// Post sends a one-way message, returning the sender's virtual time
	// after the send overhead. Delivery is asynchronous.
	Post(dst NodeID, m proto.Msg, at vtime.Time) (vtime.Time, error)
	// Recv blocks for the next incoming request; ok is false once the
	// endpoint is closed.
	Recv() (req *Request, ok bool)
	// Close detaches the endpoint.
	Close()
}

// Request is one incoming message plus the means to answer it — possibly
// later and from another goroutine (deferred replies implement lock
// queues, barrier parking and fetch-after-diff waits).
type Request struct {
	src      NodeID
	kind     proto.Kind
	body     []byte
	arrive   vtime.Time
	svc      vtime.Time
	oneway   bool
	replayed bool
	reply    func(kind uint16, body []byte, at vtime.Time)
}

// NewReplayRequest fabricates a request that was never received from
// the fabric: a manager follower replica re-applies replicated log
// entries through the same handlers the leader ran them through, and
// the handlers park these requests in lock queues and barrier tables
// exactly like live ones. Replies go nowhere (the live client is
// answered by the leader, or re-issues after a failover), which
// Replayed lets the handlers detect.
func NewReplayRequest(src NodeID, kind proto.Kind, body []byte, at vtime.Time) *Request {
	return &Request{
		src:      src,
		kind:     kind,
		body:     body,
		arrive:   at,
		replayed: true,
		reply:    func(uint16, []byte, vtime.Time) {},
	}
}

// Replayed reports whether the request was fabricated by a log replay
// (its Reply is a no-op).
func (r *Request) Replayed() bool { return r.replayed }

// Src reports the sending node.
func (r *Request) Src() NodeID { return r.src }

// Kind reports the message kind.
func (r *Request) Kind() proto.Kind { return r.kind }

// Arrive reports the virtual arrival time at the receiver.
func (r *Request) Arrive() vtime.Time { return r.arrive }

// Svc reports the link's per-request service time.
func (r *Request) Svc() vtime.Time { return r.svc }

// OneWay reports whether the sender expects no reply.
func (r *Request) OneWay() bool { return r.oneway }

// BodyLen reports the encoded body size in bytes.
func (r *Request) BodyLen() int { return len(r.body) }

// Body exposes the raw encoded body. The manager's replication layer
// appends it to the log verbatim so followers re-decode exactly what the
// leader received. Callers must not mutate it.
func (r *Request) Body() []byte { return r.body }

// Decode unmarshals the request body into m, which must match the
// request's kind.
func (r *Request) Decode(m proto.Msg) error {
	if m.Kind() != r.kind {
		return fmt.Errorf("scl: decoding %v request into %v", r.kind, m.Kind())
	}
	return proto.Decode(m, r.body)
}

// DecodeAlias unmarshals like Decode but lets m's byte payloads alias
// the request body instead of copying them (see proto.DecodeAlias).
// The body stays reachable as long as m does, so the only obligation on
// the caller is not to mutate the aliased bytes.
func (r *Request) DecodeAlias(m proto.Msg) error {
	if m.Kind() != r.kind {
		return fmt.Errorf("scl: decoding %v request into %v", r.kind, m.Kind())
	}
	return proto.DecodeAlias(m, r.body)
}

// Reply answers the request at virtual time at on the responder's clock.
func (r *Request) Reply(m proto.Msg, at vtime.Time) {
	r.reply(uint16(m.Kind()), proto.Encode(m), at)
}

// ReplyError answers the request with a protocol-level error
// (CodeGeneric; use ReplyErrorCode to classify the failure).
func (r *Request) ReplyError(err error, at vtime.Time) {
	r.ReplyErrorCode(proto.CodeGeneric, err, at)
}

// ReplyErrorCode answers the request with a classified protocol-level
// error; the caller's decode turns the code back into its sentinel so
// clients can errors.Is-match shutdown against peer death.
func (r *Request) ReplyErrorCode(code uint16, err error, at vtime.Time) {
	r.Reply(&proto.Error{Code: code, Text: err.Error()}, at)
}

// SimEndpoint adapts a simnet.Port to the Endpoint interface.
type SimEndpoint struct {
	port   *simnet.Port
	fabric *simnet.Fabric
}

// NewSimEndpoint attaches a new endpoint with the given id to the
// fabric.
func NewSimEndpoint(f *simnet.Fabric, id NodeID) *SimEndpoint {
	return &SimEndpoint{port: f.NewPort(id), fabric: f}
}

// Sequenced reports whether the underlying fabric delivers messages in
// deterministic virtual-arrival order (see simnet.Fabric.Sequence).
// Wall-clock-driven layers (retry timeouts) must refuse such fabrics.
func (e *SimEndpoint) Sequenced() bool { return e.fabric.Sequenced() }

// ID implements Endpoint.
func (e *SimEndpoint) ID() NodeID { return e.port.ID() }

// Call implements Endpoint.
func (e *SimEndpoint) Call(dst NodeID, req proto.Msg, resp proto.Msg, at vtime.Time) (vtime.Time, error) {
	kind, body, doneAt, err := e.port.Call(dst, uint16(req.Kind()), proto.Encode(req), at)
	if err != nil {
		return at, err
	}
	return doneAt, decodeResponse(proto.Kind(kind), body, resp)
}

// Post implements Endpoint.
func (e *SimEndpoint) Post(dst NodeID, m proto.Msg, at vtime.Time) (vtime.Time, error) {
	return e.port.Post(dst, uint16(m.Kind()), proto.Encode(m), at)
}

// Recv implements Endpoint.
func (e *SimEndpoint) Recv() (*Request, bool) {
	sr, ok := e.port.Recv()
	if !ok {
		return nil, false
	}
	return &Request{
		src:    sr.Src(),
		kind:   proto.Kind(sr.Kind()),
		body:   sr.Body(),
		arrive: sr.Arrive(),
		svc:    sr.Svc(),
		oneway: sr.OneWay(),
		reply:  sr.Reply,
	}, true
}

// Close implements Endpoint.
func (e *SimEndpoint) Close() { e.port.Close() }

// RemoteError is a protocol-level error response from a peer. Its code
// unwraps to the matching proto sentinel, so callers can distinguish an
// orderly shutdown (proto.ErrShutdown) from a crash the manager's lease
// table detected (proto.ErrPeerDied) with errors.Is.
type RemoteError struct {
	Code uint16
	Text string
}

func (e *RemoteError) Error() string { return fmt.Sprintf("scl: remote error: %s", e.Text) }

// Unwrap exposes the sentinel for the error's code (nil for generic).
func (e *RemoteError) Unwrap() error { return proto.CodeErr(e.Code) }

// decodeResponse interprets a raw response, translating wire-level
// errors.
func decodeResponse(kind proto.Kind, body []byte, resp proto.Msg) error {
	if kind == proto.KError {
		var pe proto.Error
		if err := proto.Decode(&pe, body); err != nil {
			return fmt.Errorf("scl: undecodable error response: %w", err)
		}
		return &RemoteError{Code: pe.Code, Text: pe.Text}
	}
	if kind != resp.Kind() {
		return fmt.Errorf("scl: got %v response, want %v", kind, resp.Kind())
	}
	return proto.Decode(resp, body)
}
