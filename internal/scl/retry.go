package scl

import (
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"time"

	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// This file is the SCL robustness layer: error classification (which
// failures are safe to retry), a configurable retry/timeout policy, and
// an Endpoint wrapper applying that policy to Call and Post. The paper's
// SCL is a transport abstraction the consistency protocol must survive
// on any substrate (IB verbs, SCIF/PCIe, TCP); transports differ exactly
// in how they fail, so the failure contract lives here rather than in
// each transport.
//
// The contract: a *transient* error means the attempt did not reach the
// peer's protocol logic (dead connection before the write, injected
// drop, partition refusal, dial failure) or the transport cannot say
// whether it did (read-side connection death, per-attempt timeout).
// Retrying transients is therefore at-least-once delivery; the DSM
// protocol messages this layer carries are either idempotent (fetches,
// diff application of absolute bytes) or retried only on pre-send
// failure by the fault injector. Everything else — remote protocol
// errors, decode mismatches, deliberate local close — is terminal and
// surfaces immediately.

// ErrUnreachable is the sentinel matched by errors.Is for calls and
// posts that exhausted their retry budget. The concrete error is an
// *UnreachableError carrying the destination, attempt count and last
// transport failure.
var ErrUnreachable = errors.New("scl: peer unreachable")

// UnreachableError reports that every attempt permitted by a RetryPolicy
// failed with a transient transport error.
type UnreachableError struct {
	Node     NodeID
	Attempts int
	Err      error // last transient failure
}

func (e *UnreachableError) Error() string {
	return fmt.Sprintf("scl: node %d unreachable after %d attempts: %v", e.Node, e.Attempts, e.Err)
}

// Unwrap exposes the last transport failure.
func (e *UnreachableError) Unwrap() error { return e.Err }

// Is matches ErrUnreachable.
func (e *UnreachableError) Is(target error) bool { return target == ErrUnreachable }

// TransientError marks a transport failure as retryable. Transports (and
// the fault injector) wrap their connection-level failures with
// Transient at the point where they know the failure class.
type TransientError struct{ Err error }

func (e *TransientError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying failure.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as retryable. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// Transientf is Transient(fmt.Errorf(...)).
func Transientf(format string, args ...any) error {
	return &TransientError{Err: fmt.Errorf(format, args...)}
}

// IsTransient reports whether err is safe to retry. Explicitly wrapped
// transients qualify, as do raw network/connection failures that escaped
// wrapping. An exhausted retry (ErrUnreachable) is terminal — nesting
// retry layers must not multiply attempts.
//
// A remote proto.ErrNotLeader is also transient: a manager replica that
// answers "not the leader" is alive but mid-election, so backing off
// and re-sending (the runtime redirects the re-send to the new leader)
// is the correct reaction. A remote proto.ErrShutdown stays terminal —
// a deposed leader must answer CodeNotLeader, not CodeShutdown, so that
// client-initiated shutdown keeps its terminal meaning.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, ErrUnreachable) {
		return false
	}
	var te *TransientError
	if errors.As(err, &te) {
		return true
	}
	if errors.Is(err, proto.ErrNotLeader) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}

// RetryPolicy bounds how hard the layer tries before declaring a peer
// unreachable. The zero value means one attempt, no timeout — exactly
// the behaviour of an unwrapped endpoint except that failures are
// classified.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per Call/Post (<= 0
	// means 1; there are MaxAttempts-1 retries).
	MaxAttempts int
	// Timeout bounds one Call attempt in wall-clock time (0 = none).
	// CAUTION: per-attempt timeouts are only safe for calls that the
	// peer answers promptly or that are idempotent. DSM calls that
	// legitimately park — lock queues, barrier waits, fetches parked on
	// interval tags — must run with Timeout 0 or the retry would
	// re-enter the protocol. Connection-death detection (not timeouts)
	// is what unsticks those calls when a peer dies.
	Timeout time.Duration
	// Deadline bounds the whole Call/Post across attempts and backoff
	// (0 = none). Unlike Timeout it is always safe: a Call attempt
	// still in flight when the deadline expires is abandoned and the
	// whole call fails with ErrUnreachable — the call gives up for
	// good, it does not re-enter the protocol.
	Deadline time.Duration
	// Backoff is the sleep before the second attempt; it doubles per
	// retry (0 = 1ms when retries happen).
	Backoff time.Duration
	// BackoffCap caps the exponential backoff (0 = 100ms).
	BackoffCap time.Duration
}

// DefaultRetryPolicy is a reasonable policy for DSM traffic: generous
// attempts with fast, capped backoff, no per-attempt timeout (see the
// Timeout caveat), and an overall deadline so nothing blocks forever in
// the face of a persistent partition.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 8,
	Backoff:     200 * time.Microsecond,
	BackoffCap:  10 * time.Millisecond,
	Deadline:    30 * time.Second,
}

// backoffAt returns the sleep before attempt i (i >= 1: the i'th retry),
// exponential with cap.
func (p RetryPolicy) backoffAt(i int) time.Duration {
	b := p.Backoff
	if b <= 0 {
		b = time.Millisecond
	}
	cap := p.BackoffCap
	if cap <= 0 {
		cap = 100 * time.Millisecond
	}
	for ; i > 1 && b < cap; i-- {
		b *= 2
	}
	if b > cap {
		b = cap
	}
	return b
}

// runWithRetry drives attempt() under the policy. attempt receives the
// per-attempt timeout and returns the virtual completion time. nst may
// be nil.
func runWithRetry(pol RetryPolicy, nst *stats.Net, dst NodeID, attempt func(timeout time.Duration) (vtime.Time, error)) (vtime.Time, error) {
	attempts := pol.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var deadline time.Time
	if pol.Deadline > 0 {
		deadline = time.Now().Add(pol.Deadline)
	}
	var last error
	tried := 0
	for i := 0; i < attempts; i++ {
		if i > 0 {
			d := pol.backoffAt(i)
			if !deadline.IsZero() {
				left := time.Until(deadline)
				if left <= 0 {
					break
				}
				if d > left {
					d = left
				}
			}
			time.Sleep(d)
			if nst != nil {
				nst.Retries.Add(1)
			}
		}
		// The overall Deadline bounds in-flight attempts too: with no
		// per-attempt Timeout, the remaining budget becomes this
		// attempt's timeout, so a peer that accepts the call but never
		// answers cannot block past the deadline.
		timeout := pol.Timeout
		if !deadline.IsZero() {
			left := time.Until(deadline)
			if left <= 0 {
				break
			}
			if timeout <= 0 || left < timeout {
				timeout = left
			}
		}
		tried++
		if nst != nil {
			nst.Attempts.Add(1)
		}
		doneAt, err := attempt(timeout)
		if err == nil {
			return doneAt, nil
		}
		last = err
		if !IsTransient(err) {
			return 0, err
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
	}
	if nst != nil {
		nst.Unreachable.Add(1)
	}
	return 0, &UnreachableError{Node: dst, Attempts: tried, Err: last}
}

// RetryEndpoint applies a RetryPolicy to an inner endpoint's Call and
// Post. Recv and Close pass through. It is the piece the runtime wraps
// around every component endpoint so the cache-agent, memory-server and
// manager traffic all survives transient transport failures.
type RetryEndpoint struct {
	inner Endpoint
	pol   RetryPolicy
	nst   *stats.Net
}

// WithRetry wraps inner with the policy. nst, if non-nil, receives
// attempt/retry/timeout/unreachable counters; pass nil to skip counting.
//
// It panics when inner rides a sequenced (deterministic) fabric: retry
// is wall-clock driven — attempt timeouts, backoff sleeps — while a
// sequenced fabric decides delivery from a ledger of parked goroutines,
// so a timer-fired re-send would both break determinism and corrupt the
// runnable-token accounting. Failing loudly here beats the silent
// deadlock it would otherwise become.
func WithRetry(inner Endpoint, pol RetryPolicy, nst *stats.Net) *RetryEndpoint {
	if sc, ok := inner.(interface{ Sequenced() bool }); ok && sc.Sequenced() {
		panic("scl: retry layer over a sequenced fabric (wall-clock timeouts break deterministic delivery)")
	}
	return &RetryEndpoint{inner: inner, pol: pol, nst: nst}
}

// Inner returns the wrapped endpoint.
func (e *RetryEndpoint) Inner() Endpoint { return e.inner }

// ID implements Endpoint.
func (e *RetryEndpoint) ID() NodeID { return e.inner.ID() }

// Call implements Endpoint: each attempt runs the inner call, transient
// failures back off and retry, and exhaustion returns *UnreachableError.
// When the policy sets a per-attempt Timeout, an attempt that exceeds it
// is abandoned (its goroutine is orphaned until the inner endpoint
// closes) and counts as transient; each attempt decodes into a fresh
// response so an abandoned attempt can never race the winning one.
func (e *RetryEndpoint) Call(dst NodeID, req proto.Msg, resp proto.Msg, at vtime.Time) (vtime.Time, error) {
	doneAt, err := runWithRetry(e.pol, e.nst, dst, func(timeout time.Duration) (vtime.Time, error) {
		if timeout <= 0 {
			return e.inner.Call(dst, req, resp, at)
		}
		fresh := reflect.New(reflect.TypeOf(resp).Elem()).Interface().(proto.Msg)
		type result struct {
			doneAt vtime.Time
			err    error
		}
		ch := make(chan result, 1)
		go func() {
			d, err := e.inner.Call(dst, req, fresh, at)
			ch <- result{d, err}
		}()
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		select {
		case r := <-ch:
			if r.err == nil {
				reflect.ValueOf(resp).Elem().Set(reflect.ValueOf(fresh).Elem())
			}
			return r.doneAt, r.err
		case <-timer.C:
			if e.nst != nil {
				e.nst.Timeouts.Add(1)
			}
			return 0, Transientf("scl: call to node %d timed out after %v", dst, timeout)
		}
	})
	if err != nil {
		return at, err
	}
	return doneAt, nil
}

// Post implements Endpoint with the same retry treatment; the retried
// send blocks the caller, so per-sender message ordering is preserved.
func (e *RetryEndpoint) Post(dst NodeID, m proto.Msg, at vtime.Time) (vtime.Time, error) {
	doneAt, err := runWithRetry(e.pol, e.nst, dst, func(time.Duration) (vtime.Time, error) {
		return e.inner.Post(dst, m, at)
	})
	if err != nil {
		return at, err
	}
	return doneAt, nil
}

// Recv implements Endpoint.
func (e *RetryEndpoint) Recv() (*Request, bool) { return e.inner.Recv() }

// Close implements Endpoint.
func (e *RetryEndpoint) Close() { e.inner.Close() }
