package scl

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// flakyEndpoint fails the first failN Call/Post attempts with the given
// error, then succeeds by echoing an AllocResp.
type flakyEndpoint struct {
	mu    sync.Mutex
	failN int
	calls int
	posts int
	err   error
	block bool // never answer (for timeout tests)
}

func (f *flakyEndpoint) ID() NodeID { return 1 }

func (f *flakyEndpoint) Call(dst NodeID, req proto.Msg, resp proto.Msg, at vtime.Time) (vtime.Time, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	if f.block {
		select {} // hang forever; the wrapper's timeout must fire
	}
	if n <= f.failN {
		return at, f.err
	}
	if ar, ok := resp.(*proto.AllocResp); ok {
		ar.Addr = 42
	}
	return at + 100, nil
}

func (f *flakyEndpoint) Post(dst NodeID, m proto.Msg, at vtime.Time) (vtime.Time, error) {
	f.mu.Lock()
	f.posts++
	n := f.posts
	f.mu.Unlock()
	if n <= f.failN {
		return at, f.err
	}
	return at + 10, nil
}

func (f *flakyEndpoint) Recv() (*Request, bool) { return nil, false }
func (f *flakyEndpoint) Close()                 {}

func TestBackoffExponentialWithCap(t *testing.T) {
	p := RetryPolicy{Backoff: time.Millisecond, BackoffCap: 5 * time.Millisecond}
	want := []time.Duration{
		1 * time.Millisecond, // retry 1
		2 * time.Millisecond, // retry 2
		4 * time.Millisecond, // retry 3
		5 * time.Millisecond, // retry 4: capped
		5 * time.Millisecond, // retry 5: capped
	}
	for i, w := range want {
		if got := p.backoffAt(i + 1); got != w {
			t.Errorf("backoffAt(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Defaults kick in for the zero policy.
	z := RetryPolicy{}
	if got := z.backoffAt(1); got != time.Millisecond {
		t.Errorf("zero-policy backoffAt(1) = %v", got)
	}
	if got := z.backoffAt(30); got != 100*time.Millisecond {
		t.Errorf("zero-policy backoffAt(30) = %v, want capped 100ms", got)
	}
}

func TestTransientClassification(t *testing.T) {
	if IsTransient(nil) {
		t.Error("nil is transient")
	}
	if !IsTransient(Transientf("boom")) {
		t.Error("wrapped transient not recognized")
	}
	if IsTransient(errors.New("scl: remote error: no")) {
		t.Error("plain error treated as transient")
	}
	un := &UnreachableError{Node: 3, Attempts: 5, Err: Transientf("x")}
	if IsTransient(un) {
		t.Error("exhausted retry must be terminal, not transient")
	}
	if !errors.Is(un, ErrUnreachable) {
		t.Error("UnreachableError does not match ErrUnreachable")
	}
	if !IsTransient(Transient(errors.New("wrapped"))) {
		t.Error("Transient() not recognized")
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
}

func TestRetryMasksTransientFailures(t *testing.T) {
	inner := &flakyEndpoint{failN: 3, err: Transientf("injected")}
	nst := new(stats.Net)
	ep := WithRetry(inner, RetryPolicy{MaxAttempts: 5, Backoff: time.Microsecond}, nst)
	var resp proto.AllocResp
	doneAt, err := ep.Call(2, &proto.AllocReq{Size: 1}, &resp, 1000)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp.Addr != 42 || doneAt != 1100 {
		t.Errorf("resp.Addr=%d doneAt=%v", resp.Addr, doneAt)
	}
	if got := nst.Retries.Load(); got != 3 {
		t.Errorf("Retries = %d, want 3", got)
	}
	if got := nst.Attempts.Load(); got != 4 {
		t.Errorf("Attempts = %d, want 4", got)
	}
}

func TestRetryExhaustionSurfacesErrUnreachable(t *testing.T) {
	inner := &flakyEndpoint{failN: 1 << 30, err: Transientf("still down")}
	nst := new(stats.Net)
	ep := WithRetry(inner, RetryPolicy{MaxAttempts: 3, Backoff: time.Microsecond}, nst)
	var resp proto.AllocResp
	_, err := ep.Call(7, &proto.AllocReq{}, &resp, 0)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	var ue *UnreachableError
	if !errors.As(err, &ue) || ue.Node != 7 || ue.Attempts != 3 {
		t.Fatalf("UnreachableError = %+v", ue)
	}
	if inner.calls != 3 {
		t.Errorf("inner attempts = %d, want 3", inner.calls)
	}
	if got := nst.Unreachable.Load(); got != 1 {
		t.Errorf("Unreachable = %d", got)
	}
}

func TestRetryDoesNotRetryTerminalErrors(t *testing.T) {
	terminal := errors.New("scl: remote error: denied")
	inner := &flakyEndpoint{failN: 1 << 30, err: terminal}
	ep := WithRetry(inner, RetryPolicy{MaxAttempts: 5, Backoff: time.Microsecond}, nil)
	var resp proto.AllocResp
	_, err := ep.Call(2, &proto.AllocReq{}, &resp, 0)
	if !errors.Is(err, terminal) {
		t.Fatalf("err = %v", err)
	}
	if inner.calls != 1 {
		t.Errorf("terminal error retried %d times", inner.calls)
	}
}

func TestRetryPerAttemptTimeout(t *testing.T) {
	inner := &flakyEndpoint{block: true}
	nst := new(stats.Net)
	ep := WithRetry(inner, RetryPolicy{
		MaxAttempts: 2,
		Timeout:     20 * time.Millisecond,
		Backoff:     time.Microsecond,
	}, nst)
	start := time.Now()
	var resp proto.AllocResp
	_, err := ep.Call(2, &proto.AllocReq{}, &resp, 0)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Errorf("timed-out call took %v", e)
	}
	if got := nst.Timeouts.Load(); got != 2 {
		t.Errorf("Timeouts = %d, want 2", got)
	}
}

func TestRetryDeadlineBoundsAttempts(t *testing.T) {
	inner := &flakyEndpoint{failN: 1 << 30, err: Transientf("down")}
	ep := WithRetry(inner, RetryPolicy{
		MaxAttempts: 1 << 20,
		Backoff:     5 * time.Millisecond,
		BackoffCap:  5 * time.Millisecond,
		Deadline:    25 * time.Millisecond,
	}, nil)
	var resp proto.AllocResp
	start := time.Now()
	_, err := ep.Call(2, &proto.AllocReq{}, &resp, 0)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if e := time.Since(start); e > time.Second {
		t.Errorf("deadline did not bound the call: %v", e)
	}
	if inner.calls >= 1<<19 {
		t.Errorf("deadline did not bound attempts: %d", inner.calls)
	}
}

// Satellite: the overall Deadline must fire even when no per-attempt
// Timeout is configured and the peer accepts the call but never answers
// — the in-flight attempt is abandoned at the deadline and the call
// fails typed with ErrUnreachable instead of hanging forever.
func TestRetryDeadlineFiresWithoutPerAttemptTimeout(t *testing.T) {
	inner := &flakyEndpoint{block: true}
	nst := new(stats.Net)
	ep := WithRetry(inner, RetryPolicy{
		MaxAttempts: 1 << 20,
		Timeout:     0, // no per-attempt timeout: the attempt blocks
		Backoff:     time.Microsecond,
		Deadline:    50 * time.Millisecond,
	}, nst)
	start := time.Now()
	var resp proto.AllocResp
	_, err := ep.Call(2, &proto.AllocReq{}, &resp, 0)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Errorf("deadline did not cut off the blocked call: took %v", e)
	}
	// The abandoned attempt's goroutine may still be alive; read the
	// counter under the endpoint's lock.
	inner.mu.Lock()
	calls := inner.calls
	inner.mu.Unlock()
	if calls > 2 {
		t.Errorf("blocked call was attempted %d times", calls)
	}
}

func TestPostRetries(t *testing.T) {
	inner := &flakyEndpoint{failN: 2, err: Transientf("drop")}
	nst := new(stats.Net)
	ep := WithRetry(inner, RetryPolicy{MaxAttempts: 5, Backoff: time.Microsecond}, nst)
	doneAt, err := ep.Post(2, &proto.Shutdown{}, 50)
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	if doneAt != 60 {
		t.Errorf("doneAt = %v", doneAt)
	}
	if inner.posts != 3 {
		t.Errorf("posts = %d, want 3", inner.posts)
	}
}

// The retry layer is wall-clock driven; wrapping an endpoint of a
// sequenced (deterministic) fabric must fail loudly at construction,
// not deadlock the runnable-token ledger at the first timeout.
func TestWithRetryRefusesSequencedFabric(t *testing.T) {
	f := simnet.NewFabric(vtime.QDRInfiniBand)
	f.Sequence()
	ep := NewSimEndpoint(f, 1)
	defer ep.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("WithRetry accepted a sequenced-fabric endpoint")
		}
	}()
	WithRetry(ep, DefaultRetryPolicy, nil)
}

// An unsequenced fabric stays accepted — the guard must not over-fire.
func TestWithRetryAcceptsUnsequencedFabric(t *testing.T) {
	f := simnet.NewFabric(vtime.QDRInfiniBand)
	ep := NewSimEndpoint(f, 1)
	defer ep.Close()
	WithRetry(ep, DefaultRetryPolicy, nil)
}

// Replicated-manager error classification: a deposed leader answers
// CodeNotLeader, which must be retryable — the caller backs off and the
// runtime redirects the re-send to the promoted replica. An orderly
// CodeShutdown keeps its terminal meaning: client-initiated shutdown
// must not be retried into a dead endpoint.
func TestNotLeaderRetryableShutdownTerminal(t *testing.T) {
	if !IsTransient(&RemoteError{Code: proto.CodeNotLeader, Text: "deposed"}) {
		t.Error("remote CodeNotLeader is not transient")
	}
	if IsTransient(&RemoteError{Code: proto.CodeShutdown, Text: "bye"}) {
		t.Error("remote CodeShutdown treated as transient")
	}

	// A replica that answers "not the leader" a few times while the
	// election settles is masked by the retry layer.
	inner := &flakyEndpoint{failN: 3, err: &RemoteError{Code: proto.CodeNotLeader, Text: "deposed"}}
	ep := WithRetry(inner, RetryPolicy{MaxAttempts: 6, Backoff: time.Microsecond}, nil)
	var resp proto.AllocResp
	if _, err := ep.Call(2, &proto.AllocReq{Size: 1}, &resp, 0); err != nil {
		t.Fatalf("NotLeader responses not masked: %v", err)
	}
	if resp.Addr != 42 {
		t.Errorf("resp.Addr = %d", resp.Addr)
	}
	if inner.calls != 4 {
		t.Errorf("attempts = %d, want 4", inner.calls)
	}

	// Shutdown surfaces immediately, typed, after exactly one attempt.
	down := &flakyEndpoint{failN: 1 << 30, err: &RemoteError{Code: proto.CodeShutdown, Text: "bye"}}
	ep = WithRetry(down, RetryPolicy{MaxAttempts: 6, Backoff: time.Microsecond}, nil)
	_, err := ep.Call(2, &proto.AllocReq{}, &resp, 0)
	if !errors.Is(err, proto.ErrShutdown) {
		t.Fatalf("err = %v, want ErrShutdown", err)
	}
	if down.calls != 1 {
		t.Errorf("terminal shutdown retried %d times", down.calls)
	}
}

// electionEndpoint models a manager mid-election: the first deposed
// calls answer CodeNotLeader, then the (stale) address stops answering
// entirely — the hang a client would see if it kept talking to a dead
// leader the whole election.
type electionEndpoint struct {
	mu      sync.Mutex
	deposed int
	calls   int
}

func (f *electionEndpoint) ID() NodeID { return 1 }

func (f *electionEndpoint) Call(dst NodeID, req proto.Msg, resp proto.Msg, at vtime.Time) (vtime.Time, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	if n <= f.deposed {
		return at, &RemoteError{Code: proto.CodeNotLeader, Text: "election in progress"}
	}
	select {} // the stale leader address goes dark
}

func (f *electionEndpoint) Post(dst NodeID, m proto.Msg, at vtime.Time) (vtime.Time, error) {
	return at, &RemoteError{Code: proto.CodeNotLeader, Text: "election in progress"}
}
func (f *electionEndpoint) Recv() (*Request, bool) { return nil, false }
func (f *electionEndpoint) Close()                 {}

// The election-stall regression: with no per-attempt Timeout, the
// overall Deadline must still bound a Call whose later attempt is
// accepted but never answered mid-election. The call retries the
// NotLeader answers, then fails typed with ErrUnreachable at the
// deadline instead of hanging on the dark leader.
func TestDeadlineBoundsInFlightDuringElection(t *testing.T) {
	inner := &electionEndpoint{deposed: 2}
	nst := new(stats.Net)
	ep := WithRetry(inner, RetryPolicy{
		MaxAttempts: 1 << 20,
		Backoff:     time.Microsecond,
		BackoffCap:  time.Millisecond,
		Deadline:    50 * time.Millisecond,
	}, nst)
	start := time.Now()
	var resp proto.AllocResp
	_, err := ep.Call(2, &proto.AllocReq{}, &resp, 0)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Errorf("deadline did not bound the in-flight election call: took %v", e)
	}
	inner.mu.Lock()
	calls := inner.calls
	inner.mu.Unlock()
	if calls < 3 {
		t.Errorf("NotLeader answers were not retried: %d attempts", calls)
	}
	if nst.Retries.Load() == 0 {
		t.Error("no retries recorded for the deposed answers")
	}
}
