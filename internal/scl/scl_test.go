package scl

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/simnet"
	"repro/internal/vtime"
)

var testModel = vtime.LinkModel{
	Name:         "test",
	Latency:      1000,
	BytesPerSec:  1e9,
	SendOverhead: 50,
	ServiceTime:  100,
}

// echoAlloc answers AllocReq with AllocResp{Addr: Size} and errors on
// FreeReq; used to exercise both reply paths.
func echoAlloc(t *testing.T, e Endpoint) {
	for {
		req, ok := e.Recv()
		if !ok {
			return
		}
		switch req.Kind() {
		case proto.KAllocReq:
			var ar proto.AllocReq
			if err := req.Decode(&ar); err != nil {
				t.Errorf("decode: %v", err)
				return
			}
			req.Reply(&proto.AllocResp{Addr: ar.Size}, req.Arrive()+req.Svc())
		case proto.KFreeReq:
			req.ReplyError(errors.New("no free for you"), req.Arrive()+req.Svc())
		case proto.KShutdown:
			if !req.OneWay() {
				req.Reply(&proto.Ack{}, req.Arrive())
			}
			return
		default:
			t.Errorf("unexpected kind %v", req.Kind())
			return
		}
	}
}

func runEndpointSuite(t *testing.T, cli, srv Endpoint, srvID NodeID) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		echoAlloc(t, srv)
	}()

	var resp proto.AllocResp
	doneAt, err := cli.Call(srvID, &proto.AllocReq{Thread: 1, Size: 777}, &resp, 5000)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp.Addr != 777 {
		t.Errorf("Addr = %d, want 777", resp.Addr)
	}
	if doneAt <= 5000+2*testModel.Latency {
		t.Errorf("doneAt = %v, expected at least two latencies past 5000", doneAt)
	}

	// Error responses surface as Go errors.
	var ack proto.Ack
	if _, err := cli.Call(srvID, &proto.FreeReq{Addr: 1}, &ack, doneAt); err == nil {
		t.Error("error response did not produce an error")
	}

	// Kind mismatch is caught.
	var wrong proto.LockResp
	if _, err := cli.Call(srvID, &proto.AllocReq{Size: 1}, &wrong, doneAt); err == nil {
		t.Error("kind mismatch not caught")
	}

	// Shut the server down via a one-way post.
	if _, err := cli.Post(srvID, &proto.Shutdown{}, doneAt); err != nil {
		t.Fatalf("Post: %v", err)
	}
	wg.Wait()
	cli.Close()
	srv.Close()
}

func TestSimEndpoint(t *testing.T) {
	f := simnet.NewFabric(testModel)
	cli := NewSimEndpoint(f, 1)
	srv := NewSimEndpoint(f, 2)
	runEndpointSuite(t, cli, srv, 2)
}

func TestTCPEndpoint(t *testing.T) {
	book := NewAddressBook()
	srv, err := NewTCPEndpoint(2, "127.0.0.1:0", book, testModel)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewTCPEndpoint(1, "127.0.0.1:0", book, testModel)
	if err != nil {
		t.Fatal(err)
	}
	runEndpointSuite(t, cli, srv, 2)
}

func TestTCPUnknownNode(t *testing.T) {
	book := NewAddressBook()
	cli, err := NewTCPEndpoint(1, "127.0.0.1:0", book, testModel)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var ack proto.Ack
	if _, err := cli.Call(99, &proto.AllocReq{}, &ack, 0); err == nil {
		t.Fatal("call to unknown node succeeded")
	}
}

func TestRequestDecodeKindMismatch(t *testing.T) {
	f := simnet.NewFabric(testModel)
	cli := NewSimEndpoint(f, 1)
	srv := NewSimEndpoint(f, 2)
	defer cli.Close()
	defer srv.Close()
	if _, err := cli.Post(2, &proto.AllocReq{Size: 1}, 0); err != nil {
		t.Fatal(err)
	}
	req, ok := srv.Recv()
	if !ok {
		t.Fatal("Recv failed")
	}
	var fr proto.FreeReq
	if err := req.Decode(&fr); err == nil {
		t.Fatal("Decode with wrong type succeeded")
	}
	var ar proto.AllocReq
	if err := req.Decode(&ar); err != nil || ar.Size != 1 {
		t.Fatalf("Decode: %v, Size=%d", err, ar.Size)
	}
	if req.BodyLen() == 0 {
		t.Error("BodyLen = 0")
	}
}

// Virtual-time equivalence: the same exchange must produce identical
// virtual timing over simnet and over TCP — the SCL abstraction promise.
func TestTransportVirtualTimeEquivalence(t *testing.T) {
	run := func(cli, srv Endpoint, srvID NodeID) vtime.Time {
		go func() {
			req, ok := srv.Recv()
			if !ok {
				return
			}
			req.Reply(&proto.AllocResp{Addr: 1}, req.Arrive()+req.Svc())
		}()
		var resp proto.AllocResp
		doneAt, err := cli.Call(srvID, &proto.AllocReq{Thread: 3, Size: 99, Align: 8}, &resp, 12345)
		if err != nil {
			t.Fatal(err)
		}
		cli.Close()
		srv.Close()
		return doneAt
	}

	f := simnet.NewFabric(testModel)
	simDone := run(NewSimEndpoint(f, 1), NewSimEndpoint(f, 2), 2)

	book := NewAddressBook()
	srv, err := NewTCPEndpoint(2, "127.0.0.1:0", book, testModel)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewTCPEndpoint(1, "127.0.0.1:0", book, testModel)
	if err != nil {
		t.Fatal(err)
	}
	tcpDone := run(cli, srv, 2)

	// simnet charges HeaderBytes=32 per message; TCP frames carry 23
	// header bytes. Sizes differ by a fixed 9 bytes each way, so allow
	// exactly that much skew at 1 byte/ns.
	diff := simDone - tcpDone
	if diff < 0 {
		diff = -diff
	}
	if diff > 2*vtime.Time(simnet.HeaderBytes) {
		t.Fatalf("virtual times diverge: sim=%v tcp=%v", simDone, tcpDone)
	}
}

func TestTCPHostileFrameClosesConnection(t *testing.T) {
	book := NewAddressBook()
	srv, err := NewTCPEndpoint(7, "127.0.0.1:0", book, testModel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, _ := book.Lookup(7)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A frame claiming a gigantic length must be rejected; the endpoint
	// drops the connection rather than allocating.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<31)
	if _, err := c.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("connection survived a hostile frame")
	}
	// The endpoint itself is still healthy for legitimate peers.
	cli, err := NewTCPEndpoint(8, "127.0.0.1:0", book, testModel)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	go func() {
		if req, ok := srv.Recv(); ok {
			req.Reply(&proto.Ack{}, req.Arrive())
		}
	}()
	var ack proto.Ack
	if _, err := cli.Call(7, &proto.Ping{}, &ack, 0); err != nil {
		t.Fatalf("endpoint unhealthy after hostile frame: %v", err)
	}
}
