package vtime

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtGivenTime(t *testing.T) {
	c := NewClock(42)
	if got := c.Now(); got != 42 {
		t.Fatalf("Now() = %v, want 42", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(0)
	if got := c.Advance(10); got != 10 {
		t.Fatalf("Advance(10) = %v, want 10", got)
	}
	if got := c.Advance(0); got != 10 {
		t.Fatalf("Advance(0) = %v, want 10", got)
	}
	if got := c.Now(); got != 10 {
		t.Fatalf("Now() = %v, want 10", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock(0).Advance(-1)
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock(100)
	if got := c.AdvanceTo(50); got != 100 {
		t.Fatalf("AdvanceTo(50) = %v, want 100 (no regression)", got)
	}
	if got := c.AdvanceTo(200); got != 200 {
		t.Fatalf("AdvanceTo(200) = %v, want 200", got)
	}
}

// Property: under any sequence of Advance/AdvanceTo operations the clock
// never decreases.
func TestClockMonotonicProperty(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewClock(0)
		prev := c.Now()
		for _, op := range ops {
			if op%2 == 0 {
				c.Advance(Time(rng.Int63n(1_000_000)))
			} else {
				c.AdvanceTo(Time(rng.Int63n(2_000_000)))
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMax(t *testing.T) {
	if Max(3, 7) != 7 || Max(7, 3) != 7 || Max(5, 5) != 5 {
		t.Fatal("Max is wrong")
	}
}

func TestTimeConversions(t *testing.T) {
	tm := 1500 * Microsecond
	if got := tm.Duration(); got != 1500*time.Microsecond {
		t.Fatalf("Duration() = %v", got)
	}
	if got := tm.Seconds(); got != 0.0015 {
		t.Fatalf("Seconds() = %v", got)
	}
	if got := tm.String(); got != "1.5ms" {
		t.Fatalf("String() = %q", got)
	}
}

func TestLinkModelXferTime(t *testing.T) {
	m := LinkModel{Name: "test", BytesPerSec: 1e9} // 1 GB/s: 1 byte per ns
	cases := []struct {
		bytes int
		want  Time
	}{
		{0, 0},
		{-5, 0},
		{1, 1 * Nanosecond},
		{4096, 4096 * Nanosecond},
	}
	for _, c := range cases {
		if got := m.XferTime(c.bytes); got != c.want {
			t.Errorf("XferTime(%d) = %v, want %v", c.bytes, got, c.want)
		}
	}
}

func TestLinkModelDeliver(t *testing.T) {
	m := LinkModel{Name: "test", Latency: 1000, BytesPerSec: 1e9}
	if got := m.Deliver(500, 100); got != 500+1000+100 {
		t.Fatalf("Deliver = %v, want 1600", got)
	}
}

func TestLinkModelZeroBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("XferTime with zero bandwidth did not panic")
		}
	}()
	LinkModel{Name: "bad"}.XferTime(10)
}

// Property: transfer time is monotone in message size.
func TestXferMonotoneProperty(t *testing.T) {
	m := QDRInfiniBand
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.XferTime(x) <= m.XferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPresetsSane(t *testing.T) {
	for _, m := range []LinkModel{QDRInfiniBand, PCIeSCIF, IntraNode} {
		if m.Name == "" {
			t.Error("preset has empty name")
		}
		if m.Latency <= 0 || m.BytesPerSec <= 0 || m.ServiceTime <= 0 {
			t.Errorf("preset %q has non-positive parameters: %+v", m.Name, m)
		}
	}
	// The PCIe/SCIF path the paper proposes must beat the IB-with-proxy
	// path it replaces, otherwise the Section V argument is modelled
	// backwards.
	if PCIeSCIF.Latency >= QDRInfiniBand.Latency {
		t.Error("PCIeSCIF latency should be below QDRInfiniBand latency")
	}
	if DefaultCPU.FlopTime != DefaultHW.FlopTime {
		t.Error("CPU and HW flop costs must match for normalization")
	}
}
