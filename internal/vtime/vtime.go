// Package vtime provides the virtual-time substrate used throughout the
// Samhita reproduction.
//
// The original Samhita system ran on physical hardware (a QDR InfiniBand
// cluster standing in for a host + coprocessor node); every performance
// result in the paper is a wall-clock measurement of that hardware. This
// reproduction replaces the hardware with a deterministic virtual-time
// model: each simulated processor and server owns a Clock, and every
// modelled action (a floating-point operation, a page fault, a message
// crossing the fabric, a server handling a request) advances the relevant
// clocks by costs drawn from a CostModel.
//
// Virtual time composes across components with Lamport-style maxima: a
// message sent at time s over a link with latency L and bandwidth B
// arrives at max(receiverClock, s + L + size/B); a server that processes
// requests serially advances its own clock past each arrival, which is
// what produces the hot-spot and queueing effects the paper's evaluation
// (striped allocation, single memory server) depends on.
package vtime

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// run. It is deliberately a distinct type from time.Duration so that
// virtual and wall-clock quantities cannot be mixed by accident.
type Time int64

// Common virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a virtual-time span to a time.Duration for display.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time using time.Duration notation (e.g. "1.5ms").
func (t Time) String() string { return time.Duration(t).String() }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Clock is a monotonically non-decreasing virtual clock. It is not safe
// for concurrent use; each simulated entity (compute thread, memory
// server, manager) owns exactly one Clock and only that entity's
// goroutine advances it. Cross-entity ordering is established by
// exchanging Time values in messages and applying AdvanceTo.
type Clock struct {
	now Time
}

// NewClock returns a clock positioned at the given start time.
func NewClock(start Time) *Clock { return &Clock{now: start} }

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. It panics if d is negative:
// virtual time never runs backwards, and a negative cost is always a
// modelling bug worth failing loudly on.
func (c *Clock) Advance(d Time) Time {
	if d < 0 {
		panic(fmt.Sprintf("vtime: negative advance %d", d))
	}
	c.now += d
	return c.now
}

// AdvanceTo moves the clock to t if t is later than the current time;
// otherwise the clock is unchanged. It returns the (possibly unchanged)
// current time. This is the Lamport "receive" rule.
func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}
