package vtime

import "fmt"

// LinkModel describes one class of interconnect in virtual time. The
// paper's testbed crosses a QDR InfiniBand fabric between every pair of
// components (each crossing includes HCA, switch and a PCI Express hop on
// both sides); its future-work target is the PCI Express bus between a
// host processor and an Intel MIC coprocessor, reached through SCIF.
type LinkModel struct {
	// Name identifies the preset ("qdr-ib", "pcie-scif", ...).
	Name string
	// Latency is the one-way propagation + injection latency charged to
	// every message regardless of size.
	Latency Time
	// BytesPerSec is the effective link bandwidth.
	BytesPerSec float64
	// SendOverhead is CPU time spent by the sender to post a message
	// (verbs work-request construction in the real system). It is charged
	// to the sender's clock in addition to the wire time.
	SendOverhead Time
	// ServiceTime is the fixed time a server needs to pick up and act on
	// one request, excluding the data-dependent work. Serial request
	// processing at a server multiplied by this is the queueing term that
	// creates memory-server hot spots.
	ServiceTime Time
}

// XferTime reports the time the payload of the given size occupies the
// wire.
func (m LinkModel) XferTime(bytes int) Time {
	if bytes <= 0 {
		return 0
	}
	if m.BytesPerSec <= 0 {
		panic(fmt.Sprintf("vtime: link %q has non-positive bandwidth", m.Name))
	}
	return Time(float64(bytes) / m.BytesPerSec * float64(Second))
}

// Deliver computes the arrival time of a message of the given size sent
// at sendTime.
func (m LinkModel) Deliver(sendTime Time, bytes int) Time {
	return sendTime + m.Latency + m.XferTime(bytes)
}

// CPUModel describes the compute side of the cost model: how long the
// simulated cores take to execute application arithmetic and the
// software overheads of the Samhita runtime fault path.
type CPUModel struct {
	// FlopTime is the cost of one floating-point operation. The paper's
	// compute nodes are 2.8 GHz Harpertown Xeons; with pipelining a
	// sustained flop costs well under a cycle on vectorizable kernels,
	// but the micro-benchmark is a scalar dependent chain, so one flop
	// per ~1.4 cycles is representative.
	FlopTime Time
	// AccessTime is the per-element overhead of going through the
	// software cache on a hit (address translation, bounds and residency
	// check). The real system pays nothing on a hit because the MMU does
	// the check; we keep this extremely small but non-zero so that the
	// software-cache slow path is visible in ablations.
	AccessTime Time
	// FaultOverhead is the fixed software cost of taking a miss in the
	// local cache (signal handling, cache-line bookkeeping) before any
	// communication starts.
	FaultOverhead Time
	// TwinTime is the cost of creating a twin (copy) of one page on the
	// first write in an interval.
	TwinTime Time
	// DiffBytesPerSec is the rate at which a dirty page is scanned
	// against its twin when a diff is computed at a release point
	// (a compare+copy pass, roughly memcpy speed).
	DiffBytesPerSec float64
	// ApplyBytesPerSec is the rate at which diffs and fine-grained
	// update records are patched into pages.
	ApplyBytesPerSec float64
	// CopyBytesPerSec is the rate of bulk page copies (assembling and
	// installing fetched cache lines).
	CopyBytesPerSec float64
	// SpanBytesPerSec is the rate at which bulk span accessors move
	// bytes between the application's buffer and the cache (one streamed
	// memcpy). 0 falls back to CopyBytesPerSec. Span accesses charge
	// AccessTime once plus this per-byte term, instead of AccessTime per
	// element.
	SpanBytesPerSec float64
	// InvalidateTime is the cost of invalidating one cached page when a
	// write notice names it (page-table manipulation in the real
	// system).
	InvalidateTime Time
	// LockTime is the local cost of a lock or unlock operation
	// (bookkeeping around the manager round trip).
	LockTime Time
}

// rate converts bytes at a bytes-per-second rate into virtual time.
func rate(bytes int, bps float64) Time {
	if bytes <= 0 {
		return 0
	}
	if bps <= 0 {
		panic("vtime: non-positive byte rate")
	}
	return Time(float64(bytes) / bps * float64(Second))
}

// DiffTime is the cost of diffing n bytes against a twin.
func (m CPUModel) DiffTime(n int) Time { return rate(n, m.DiffBytesPerSec) }

// ApplyTime is the cost of patching n bytes into a page.
func (m CPUModel) ApplyTime(n int) Time { return rate(n, m.ApplyBytesPerSec) }

// CopyTime is the cost of bulk-copying n bytes.
func (m CPUModel) CopyTime(n int) Time { return rate(n, m.CopyBytesPerSec) }

// SpanTime is the per-byte cost of a bulk span access.
func (m CPUModel) SpanTime(n int) Time {
	if m.SpanBytesPerSec > 0 {
		return rate(n, m.SpanBytesPerSec)
	}
	return rate(n, m.CopyBytesPerSec)
}

// TierModel describes the backing tier behind a memory server's hot
// set: the latency and bandwidth of moving a (compressed) frame group
// between uncompressed hot pages and the cold store. Demotions and
// promotions charge MoveTime against the owning shard's clock, so an
// out-of-core working set shows up directly in virtual time.
type TierModel struct {
	// Name identifies the preset ("cold-remote", "cold-nvme", ...).
	Name string
	// Latency is the fixed per-move cost (request setup, seek,
	// round-trip to the backing store).
	Latency Time
	// BytesPerSec is the sustained move bandwidth for frame payloads.
	BytesPerSec float64
}

// MoveTime reports the virtual time one promotion or demotion of the
// given payload size costs.
func (m TierModel) MoveTime(bytes int) Time {
	if m.BytesPerSec <= 0 {
		panic(fmt.Sprintf("vtime: tier %q has non-positive bandwidth", m.Name))
	}
	return m.Latency + rate(bytes, m.BytesPerSec)
}

// Cold-tier presets. ColdRemote matches the frame-table numbers the
// e2b-style designs assume for a network-attached backing store (LRU
// over ~30% of the data, 20 ms access latency, 200 MB/s streaming);
// ColdNVMe models a local NVMe device and is the default when a hot
// budget is set without naming a preset.
var (
	ColdRemote = TierModel{
		Name:        "cold-remote",
		Latency:     20 * Millisecond,
		BytesPerSec: 200e6,
	}
	ColdNVMe = TierModel{
		Name:        "cold-nvme",
		Latency:     20 * Microsecond,
		BytesPerSec: 2.0e9,
	}
)

// TierPreset resolves a cold-tier preset by name; it returns false for
// names it does not know.
func TierPreset(name string) (TierModel, bool) {
	switch name {
	case "", ColdNVMe.Name, "nvme":
		return ColdNVMe, true
	case ColdRemote.Name, "remote":
		return ColdRemote, true
	}
	return TierModel{}, false
}

// HWModel describes the cache-coherent shared-memory baseline used for
// the Pthreads comparison: ordinary loads/stores plus hardware-speed
// synchronization.
type HWModel struct {
	FlopTime Time
	// AccessTime is per-element load/store cost for the baseline.
	AccessTime Time
	// LockTime is the uncontended cost of a pthread mutex operation.
	LockTime Time
	// BarrierBase and BarrierPerThread model a centralized pthread
	// barrier: base plus a per-participant term.
	BarrierBase      Time
	BarrierPerThread Time
	// CoherenceMiss approximates the penalty a thread pays when it
	// acquires a cache line last written by another core (e.g. the
	// global-sum line bouncing between cores). Charged on lock handoff.
	CoherenceMiss Time
}

// Presets for the interconnects the paper discusses.
var (
	// QDRInfiniBand models the paper's testbed: 4x QDR IB verbs with a
	// PCIe hop on each end. ~1.6 us end-to-end small-message latency and
	// ~3.2 GB/s effective bandwidth are typical verbs-level numbers for
	// that generation.
	QDRInfiniBand = LinkModel{
		Name:         "qdr-ib",
		Latency:      1600 * Nanosecond,
		BytesPerSec:  3.2e9,
		SendOverhead: 300 * Nanosecond,
		ServiceTime:  500 * Nanosecond,
	}

	// PCIeSCIF models the paper's future-work target: SCIF over the PCI
	// Express bus between host and Xeon Phi. Lower latency than going
	// out through an HCA and a switch, comparable bandwidth (PCIe 2.0
	// x16 minus protocol overhead).
	PCIeSCIF = LinkModel{
		Name:         "pcie-scif",
		Latency:      900 * Nanosecond,
		BytesPerSec:  5.0e9,
		SendOverhead: 200 * Nanosecond,
		ServiceTime:  400 * Nanosecond,
	}

	// IntraNode models communication between components placed on the
	// same node (shared-memory transport), used when several Samhita
	// components share a node.
	IntraNode = LinkModel{
		Name:         "intra-node",
		Latency:      250 * Nanosecond,
		BytesPerSec:  8.0e9,
		SendOverhead: 100 * Nanosecond,
		ServiceTime:  150 * Nanosecond,
	}
)

// DefaultCPU is the compute-side cost model matching the paper's 2.8 GHz
// Penryn/Harpertown Xeon compute cores.
var DefaultCPU = CPUModel{
	FlopTime:         1 * Nanosecond,
	AccessTime:       1 * Nanosecond,
	FaultOverhead:    2500 * Nanosecond,
	TwinTime:         500 * Nanosecond, // one 4 KiB page copy at memcpy speed
	DiffBytesPerSec:  8.0e9,            // compare+copy pass
	ApplyBytesPerSec: 8.0e9,
	CopyBytesPerSec:  12.0e9, // straight memcpy
	InvalidateTime:   150 * Nanosecond,
	LockTime:         120 * Nanosecond,
}

// DefaultHW is the cache-coherent baseline model for the same node. Its
// FlopTime and AccessTime deliberately equal DefaultCPU's so that
// compute-time normalization between backends (Figures 3-5) compares the
// runtime overheads, not different arithmetic speeds.
var DefaultHW = HWModel{
	FlopTime:         1 * Nanosecond,
	AccessTime:       1 * Nanosecond,
	LockTime:         90 * Nanosecond,
	BarrierBase:      800 * Nanosecond,
	BarrierPerThread: 220 * Nanosecond,
	CoherenceMiss:    180 * Nanosecond,
}

// XeonPhiCPU models a Knights-Corner-class coprocessor core for the
// paper's Figure-1 scenario: ~1 GHz simple in-order cores, slow scalar
// arithmetic (the micro-benchmark's dependent chains cannot use the
// 512-bit vector unit), higher software-fault overheads, and lower
// per-core copy bandwidth than the host Xeon. Roughly 4x slower per
// core than DefaultCPU — which is the trade the coprocessor makes for
// having ~60 of them.
var XeonPhiCPU = CPUModel{
	FlopTime:         4 * Nanosecond,
	AccessTime:       3 * Nanosecond,
	FaultOverhead:    6000 * Nanosecond,
	TwinTime:         1500 * Nanosecond,
	DiffBytesPerSec:  2.5e9,
	ApplyBytesPerSec: 2.5e9,
	CopyBytesPerSec:  5.0e9,
	InvalidateTime:   400 * Nanosecond,
	LockTime:         300 * Nanosecond,
}
