// Package faultnet injects transport faults beneath the SCL retry
// layer, so the robustness of the consistency protocol can be tested
// without real hardware failures: seeded-random drops, wall-clock
// delays, duplicate responses, and scripted node partitions.
//
// The injector wraps any scl.Endpoint. Faults are modelled on the
// *sender* side, before the message reaches the transport:
//
//   - A drop fails the attempt before anything is sent. The peer never
//     sees the request, so a retry re-executes it exactly once — drops
//     compose safely with non-idempotent protocol calls (lock acquires,
//     barrier arrivals, destructive diff pulls). Response loss is
//     deliberately NOT modelled for that reason: it would require
//     server-side request deduplication to stay consistent.
//   - A delay sleeps the calling goroutine before the send. Because the
//     caller blocks, per-sender message ordering — which the protocol's
//     EvictFlush-before-DiffBatch invariant relies on — is preserved.
//   - A duplicate response is synthesized after a successful call and
//     immediately discarded (counted, traced): it exercises the fact
//     that the layer above tolerates duplicate completions, the way the
//     TCP transport discards responses whose request id has no waiter.
//   - A partition makes a destination unreachable for a scripted window
//     measured in send attempts (deterministic, unlike wall-clock
//     windows): attempts are refused with a transient error until the
//     window has been consumed, then traffic flows again — the retry
//     layer's backoff rides out the outage.
//   - A kill crashes a node permanently: its endpoint is closed (the
//     victim's receive loop exits as if the process died). Sends TO a
//     killed node fail transiently wrapping proto.ErrPeerDied — the
//     retry layer exhausts its budget and surfaces a typed
//     UnreachableError, just like a real crashed peer. Sends FROM a
//     killed node fail terminally and untyped, so the victim's own
//     goroutines stop promptly instead of retrying from beyond the
//     grave — and never mistake their own death for a peer's (which
//     would trigger spurious failovers). Kills are scripted in send
//     attempts (deterministic) or triggered directly with Kill.
//
// All randomness comes from one seeded RNG per injector, so a fault
// schedule is reproducible from its seed (modulo goroutine
// interleaving, which only permutes which message draws which verdict).
package faultnet

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/proto"
	"repro/internal/scl"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Partition cuts one destination node off for a window measured in
// send attempts to that node.
type Partition struct {
	// Node is the destination being cut off.
	Node scl.NodeID
	// After is how many attempts to Node pass before the partition
	// starts.
	After int
	// Len is how many attempts are refused before the partition heals.
	Len int
}

// Kill crashes a node permanently after a scripted number of send
// attempts have been observed.
type Kill struct {
	// Node is the victim.
	Node scl.NodeID
	// After is how many attempts pass before the kill fires: the
	// attempt with index After (0-based) finds the node dead.
	After int
	// FromNode selects which attempts are counted: attempts sent BY
	// Node when true, attempts sent TO Node when false. Counting the
	// victim's own sends lets a test crash a thread at a known point in
	// its protocol life (e.g. right after its Nth lock acquire).
	FromNode bool
	// Kind restricts which attempts advance the count (0 counts every
	// message). A kind-filtered kill crashes the victim at a
	// protocol-specific moment — e.g. the manager leader on the Nth
	// KBarrierReq it is about to receive, mid-round.
	Kind proto.Kind
}

// Config parameterizes an Injector. Probabilities are per message
// attempt in [0, 1].
type Config struct {
	// Seed drives the fault schedule; the same seed reproduces the
	// same schedule for the same traffic.
	Seed int64
	// DropProb drops a Call/Post attempt before the send.
	DropProb float64
	// DelayProb delays an attempt; the delay is uniform in
	// (0, MaxDelay].
	DelayProb float64
	// MaxDelay bounds injected delays (0 = 100µs when DelayProb > 0).
	MaxDelay time.Duration
	// DupProb synthesizes a discarded duplicate response after a
	// successful call.
	DupProb float64
	// Partitions are scripted unreachability windows.
	Partitions []Partition
	// Kills are scripted permanent node crashes.
	Kills []Kill
}

// Injector decides the fate of every message crossing its wrapped
// endpoints. One injector is shared by all endpoints of a runtime so
// partitions and the seeded schedule are global, like a real fabric
// fault.
type Injector struct {
	cfg Config
	nst *stats.Net
	tr  *trace.Collector

	mu       sync.Mutex
	rng      *rand.Rand
	sent     map[scl.NodeID]int // attempts per destination (drives partitions and kills)
	sentFrom map[scl.NodeID]int // attempts per source (drives FromNode kills)
	refused  []int              // refusals consumed per partition
	fired    []bool             // scripted kills already triggered
	kcount   []int              // matching attempts per kind-filtered kill
	killed   map[scl.NodeID]bool
	eps      map[scl.NodeID]scl.Endpoint // inner endpoints, for closing on kill
}

// New creates an injector from the config.
func New(cfg Config) *Injector {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 100 * time.Microsecond
	}
	return &Injector{
		cfg:      cfg,
		nst:      new(stats.Net),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		sent:     make(map[scl.NodeID]int),
		sentFrom: make(map[scl.NodeID]int),
		refused:  make([]int, len(cfg.Partitions)),
		fired:    make([]bool, len(cfg.Kills)),
		kcount:   make([]int, len(cfg.Kills)),
		killed:   make(map[scl.NodeID]bool),
		eps:      make(map[scl.NodeID]scl.Endpoint),
	}
}

// SetNetStats redirects the injector's fault counters to a shared
// collector.
func (in *Injector) SetNetStats(n *stats.Net) {
	if n != nil {
		in.nst = n
	}
}

// NetStats exposes the injector's fault counters.
func (in *Injector) NetStats() *stats.Net { return in.nst }

// SetTrace attaches a collector that receives one CatNet event per
// injected fault.
func (in *Injector) SetTrace(tr *trace.Collector) { in.tr = tr }

// Wrap returns ep with fault injection applied to its outgoing traffic.
// Recv and Close pass through untouched. The wrapped endpoint is
// registered so a later Kill of its node can close it.
func (in *Injector) Wrap(ep scl.Endpoint) scl.Endpoint {
	in.mu.Lock()
	in.eps[ep.ID()] = ep
	in.mu.Unlock()
	return &endpoint{in: in, inner: ep}
}

// Kill crashes node permanently: its registered endpoint is closed so
// the victim's receive loop exits, and from now on every attempt to or
// from the node fails wrapping proto.ErrPeerDied. Killing a node twice
// is a no-op.
func (in *Injector) Kill(node scl.NodeID) {
	in.mu.Lock()
	if in.killed[node] {
		in.mu.Unlock()
		return
	}
	in.killed[node] = true
	ep := in.eps[node]
	in.mu.Unlock()
	in.nst.InjectedKills.Add(1)
	in.event(node, "kill", node, 0)
	if ep != nil {
		ep.Close()
	}
}

// Killed reports whether node has been crash-killed.
func (in *Injector) Killed(node scl.NodeID) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.killed[node]
}

// verdict is the injector's decision for one send attempt.
type verdict struct {
	refuse  bool // partitioned: fail without sending
	drop    bool // dropped: fail without sending
	deadDst bool // destination crash-killed: fail transiently
	deadSrc bool // sender crash-killed: fail terminally
	delay   time.Duration
}

// before draws the fate of one attempt from src to dst, firing any
// scripted kill whose attempt budget the counting has consumed.
func (in *Injector) before(src, dst scl.NodeID, kind proto.Kind) verdict {
	in.mu.Lock()
	n := in.sent[dst]
	in.sent[dst] = n + 1
	in.sentFrom[src]++
	var toKill []scl.NodeID
	for i, k := range in.cfg.Kills {
		if in.fired[i] {
			continue
		}
		var count int
		switch {
		case k.Kind != 0:
			// Kind-filtered kills keep their own counter: only matching
			// messages crossing the victim's boundary advance it.
			if kind == k.Kind &&
				((k.FromNode && src == k.Node) || (!k.FromNode && dst == k.Node)) {
				in.kcount[i]++
			}
			count = in.kcount[i]
		case k.FromNode:
			count = in.sentFrom[k.Node]
		default:
			count = in.sent[k.Node]
		}
		if count > k.After {
			in.fired[i] = true
			toKill = append(toKill, k.Node)
		}
	}
	var v verdict
	switch {
	case in.killed[dst] || contains(toKill, dst):
		v.deadDst = true
	case in.killed[src] || contains(toKill, src):
		v.deadSrc = true
	}
	in.mu.Unlock()
	for _, node := range toKill {
		in.Kill(node)
	}
	if v.deadDst || v.deadSrc {
		return v
	}

	in.mu.Lock()
	defer in.mu.Unlock()
	for i, p := range in.cfg.Partitions {
		if p.Node == dst && n >= p.After && in.refused[i] < p.Len {
			in.refused[i]++
			v.refuse = true
			return v
		}
	}
	if in.cfg.DropProb > 0 && in.rng.Float64() < in.cfg.DropProb {
		v.drop = true
		return v
	}
	if in.cfg.DelayProb > 0 && in.rng.Float64() < in.cfg.DelayProb {
		v.delay = time.Duration(1 + in.rng.Int63n(int64(in.cfg.MaxDelay)))
	}
	return v
}

func contains(nodes []scl.NodeID, n scl.NodeID) bool {
	for _, x := range nodes {
		if x == n {
			return true
		}
	}
	return false
}

// dup draws whether a completed call's response is duplicated.
func (in *Injector) dup() bool {
	if in.cfg.DupProb <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64() < in.cfg.DupProb
}

// event emits one fault event to the trace collector, if attached.
func (in *Injector) event(src scl.NodeID, name string, dst scl.NodeID, at vtime.Time) {
	if in.tr == nil {
		return
	}
	in.tr.Span("faultnet", trace.CatNet, name, at, at,
		map[string]any{"src": uint32(src), "dst": uint32(dst)})
}

// endpoint applies the injector's verdicts to one wrapped endpoint.
type endpoint struct {
	in    *Injector
	inner scl.Endpoint
}

// Inner returns the wrapped endpoint.
func (e *endpoint) Inner() scl.Endpoint { return e.inner }

// ID implements scl.Endpoint.
func (e *endpoint) ID() scl.NodeID { return e.inner.ID() }

// apply enforces the pre-send verdict; it reports whether the attempt
// may proceed, or the injected error if not.
func (e *endpoint) apply(dst scl.NodeID, kind proto.Kind, at vtime.Time) error {
	v := e.in.before(e.ID(), dst, kind)
	switch {
	case v.deadDst:
		// Transient: the retry layer exhausts its budget and surfaces a
		// typed UnreachableError that still unwraps to ErrPeerDied.
		e.in.nst.KillRefusals.Add(1)
		e.in.event(e.ID(), "dead-dst", dst, at)
		return scl.Transient(fmt.Errorf("faultnet: node %d killed: %w", uint32(dst), proto.ErrPeerDied))
	case v.deadSrc:
		// Terminal: a dead node must not keep retrying its own sends.
		// Deliberately NOT wrapped in ErrPeerDied — that sentinel means
		// "the node I talked to died"; a dying caller must not mistake
		// its own death for the peer's and trigger a spurious failover.
		e.in.nst.KillRefusals.Add(1)
		e.in.event(e.ID(), "dead-src", dst, at)
		return fmt.Errorf("faultnet: local node %d is dead", uint32(e.ID()))
	case v.refuse:
		e.in.nst.PartitionRefusals.Add(1)
		e.in.event(e.ID(), "partition", dst, at)
		return scl.Transientf("faultnet: node %d partitioned", dst)
	case v.drop:
		e.in.nst.InjectedDrops.Add(1)
		e.in.event(e.ID(), "drop", dst, at)
		return scl.Transientf("faultnet: message to node %d dropped", dst)
	case v.delay > 0:
		e.in.nst.InjectedDelays.Add(1)
		e.in.event(e.ID(), "delay", dst, at)
		time.Sleep(v.delay)
	}
	return nil
}

// Call implements scl.Endpoint.
func (e *endpoint) Call(dst scl.NodeID, req proto.Msg, resp proto.Msg, at vtime.Time) (vtime.Time, error) {
	if err := e.apply(dst, req.Kind(), at); err != nil {
		return at, err
	}
	doneAt, err := e.inner.Call(dst, req, resp, at)
	if err == nil && e.in.dup() {
		// The duplicate completion arrives at a layer that already has
		// its answer; it is discarded, exactly like a duplicate frame
		// whose request id no longer has a waiter.
		e.in.nst.InjectedDups.Add(1)
		e.in.nst.StaleResponses.Add(1)
		e.in.event(e.ID(), "dup-response", dst, doneAt)
	}
	return doneAt, err
}

// Post implements scl.Endpoint. Delays block the caller, preserving
// per-sender ordering; drops surface a transient error so a retry
// layer above re-sends.
func (e *endpoint) Post(dst scl.NodeID, m proto.Msg, at vtime.Time) (vtime.Time, error) {
	if err := e.apply(dst, m.Kind(), at); err != nil {
		return at, err
	}
	return e.inner.Post(dst, m, at)
}

// Recv implements scl.Endpoint.
func (e *endpoint) Recv() (*scl.Request, bool) { return e.inner.Recv() }

// Close implements scl.Endpoint.
func (e *endpoint) Close() { e.inner.Close() }
