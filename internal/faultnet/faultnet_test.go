package faultnet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/scl"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

var testModel = vtime.LinkModel{
	Name:         "test",
	Latency:      1000,
	BytesPerSec:  1e9,
	SendOverhead: 50,
	ServiceTime:  100,
}

// echoEndpoint is a loopback-free fake: Call succeeds immediately, Post
// succeeds immediately. It records how many sends reached it.
type echoEndpoint struct {
	mu    sync.Mutex
	calls int
	posts int
}

func (f *echoEndpoint) ID() scl.NodeID { return 1 }

func (f *echoEndpoint) Call(dst scl.NodeID, req proto.Msg, resp proto.Msg, at vtime.Time) (vtime.Time, error) {
	f.mu.Lock()
	f.calls++
	f.mu.Unlock()
	if ar, ok := resp.(*proto.AllocResp); ok {
		ar.Addr = 7
	}
	return at + 100, nil
}

func (f *echoEndpoint) Post(dst scl.NodeID, m proto.Msg, at vtime.Time) (vtime.Time, error) {
	f.mu.Lock()
	f.posts++
	f.mu.Unlock()
	return at + 10, nil
}

func (f *echoEndpoint) Recv() (*scl.Request, bool) { return nil, false }
func (f *echoEndpoint) Close()                     {}

// schedule runs n Call verdicts against a fresh injector and returns
// which attempts were dropped.
func schedule(seed int64, n int) []bool {
	in := New(Config{Seed: seed, DropProb: 0.3})
	ep := in.Wrap(&echoEndpoint{}).(*endpoint)
	out := make([]bool, n)
	for i := range out {
		v := ep.in.before(ep.ID(), 2, 0)
		out[i] = v.drop
	}
	return out
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	a := schedule(42, 200)
	b := schedule(42, 200)
	c := schedule(43, 200)
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different fault schedules")
	}
	if !diff {
		t.Error("different seeds produced identical schedules (suspicious)")
	}
}

func TestDropsSurfaceTransientAndAreMaskedByRetry(t *testing.T) {
	inner := &echoEndpoint{}
	in := New(Config{Seed: 1, DropProb: 0.4})
	nst := new(stats.Net)
	in.SetNetStats(nst)
	ep := scl.WithRetry(in.Wrap(inner),
		scl.RetryPolicy{MaxAttempts: 64, Backoff: time.Microsecond}, nst)

	for i := 0; i < 100; i++ {
		var resp proto.AllocResp
		if _, err := ep.Call(2, &proto.AllocReq{Size: 1}, &resp, 0); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if resp.Addr != 7 {
			t.Fatalf("call %d: Addr = %d", i, resp.Addr)
		}
	}
	if nst.InjectedDrops.Load() == 0 {
		t.Error("DropProb 0.4 over 100 calls injected nothing")
	}
	if nst.Retries.Load() == 0 {
		t.Error("drops did not cause retries")
	}
	if inner.calls >= 100+int(nst.InjectedDrops.Load()) {
		t.Errorf("inner saw %d calls; drops must be pre-send (each dropped attempt must NOT reach the peer)", inner.calls)
	}
}

func TestDropWithoutRetryIsTransientError(t *testing.T) {
	in := New(Config{Seed: 0, DropProb: 1.0})
	ep := in.Wrap(&echoEndpoint{})
	var resp proto.AllocResp
	_, err := ep.Call(2, &proto.AllocReq{}, &resp, 0)
	if err == nil {
		t.Fatal("DropProb 1.0 call succeeded")
	}
	if !scl.IsTransient(err) {
		t.Errorf("injected drop is not transient: %v", err)
	}
	if _, err := ep.Post(2, &proto.Shutdown{}, 0); err == nil {
		t.Error("DropProb 1.0 post succeeded")
	}
}

func TestPartitionWindowRefusesThenHeals(t *testing.T) {
	inner := &echoEndpoint{}
	in := New(Config{Seed: 0, Partitions: []Partition{{Node: 2, After: 3, Len: 4}}})
	ep := in.Wrap(inner)

	var refusals []int
	for i := 0; i < 12; i++ {
		var resp proto.AllocResp
		_, err := ep.Call(2, &proto.AllocReq{}, &resp, 0)
		if err != nil {
			if !scl.IsTransient(err) {
				t.Fatalf("attempt %d: partition error not transient: %v", i, err)
			}
			refusals = append(refusals, i)
		}
	}
	want := []int{3, 4, 5, 6} // After 3 attempts, refuse 4, then heal
	if len(refusals) != len(want) {
		t.Fatalf("refused attempts %v, want %v", refusals, want)
	}
	for i := range want {
		if refusals[i] != want[i] {
			t.Fatalf("refused attempts %v, want %v", refusals, want)
		}
	}
	if got := in.NetStats().PartitionRefusals.Load(); got != 4 {
		t.Errorf("PartitionRefusals = %d", got)
	}
	// Other destinations are unaffected.
	var resp proto.AllocResp
	if _, err := ep.Call(3, &proto.AllocReq{}, &resp, 0); err != nil {
		t.Errorf("partition leaked to node 3: %v", err)
	}
}

func TestDelaysAndDupsCountedAndHarmless(t *testing.T) {
	inner := &echoEndpoint{}
	in := New(Config{Seed: 5, DelayProb: 0.5, MaxDelay: 50 * time.Microsecond, DupProb: 0.5})
	tr := trace.NewCollector(0)
	in.SetTrace(tr)
	ep := in.Wrap(inner)

	for i := 0; i < 50; i++ {
		var resp proto.AllocResp
		if _, err := ep.Call(2, &proto.AllocReq{}, &resp, 0); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if in.NetStats().InjectedDelays.Load() == 0 {
		t.Error("no delays injected at p=0.5 over 50 calls")
	}
	if in.NetStats().InjectedDups.Load() == 0 {
		t.Error("no duplicate responses injected at p=0.5 over 50 calls")
	}
	if tr.Len() == 0 {
		t.Error("fault events not traced")
	}
	for _, ev := range tr.Events() {
		if ev.Cat != trace.CatNet {
			t.Errorf("fault event in category %q", ev.Cat)
		}
	}
}

// TestChaosOverSimFabric drives a real request/response exchange over
// the simulated fabric with drops and delays, the retry layer masking
// every fault: all calls must complete with correct payloads.
func TestChaosOverSimFabric(t *testing.T) {
	fab := simnet.NewFabric(testModel)
	srv := scl.NewSimEndpoint(fab, 2)
	defer srv.Close()
	go func() {
		for {
			req, ok := srv.Recv()
			if !ok {
				return
			}
			var ar proto.AllocReq
			if err := req.Decode(&ar); err != nil {
				return
			}
			req.Reply(&proto.AllocResp{Addr: ar.Size}, req.Arrive()+req.Svc())
		}
	}()

	in := New(Config{
		Seed:       99,
		DropProb:   0.2,
		DelayProb:  0.2,
		MaxDelay:   20 * time.Microsecond,
		DupProb:    0.1,
		Partitions: []Partition{{Node: 2, After: 10, Len: 5}},
	})
	nst := new(stats.Net)
	in.SetNetStats(nst)
	cli := scl.WithRetry(in.Wrap(scl.NewSimEndpoint(fab, 1)),
		scl.RetryPolicy{MaxAttempts: 64, Backoff: 10 * time.Microsecond}, nst)
	defer cli.Close()

	at := vtime.Time(0)
	for i := 0; i < 60; i++ {
		var resp proto.AllocResp
		doneAt, err := cli.Call(2, &proto.AllocReq{Size: uint64(i)}, &resp, at)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if resp.Addr != uint64(i) {
			t.Fatalf("call %d: Addr = %d", i, resp.Addr)
		}
		at = doneAt
	}
	if nst.InjectedDrops.Load() == 0 || nst.PartitionRefusals.Load() == 0 {
		t.Errorf("chaos run injected too little: drops=%d refusals=%d",
			nst.InjectedDrops.Load(), nst.PartitionRefusals.Load())
	}
}

func TestUnreachableSurfacesWhenPartitionOutlastsRetries(t *testing.T) {
	in := New(Config{Seed: 0, Partitions: []Partition{{Node: 2, After: 0, Len: 1 << 30}}})
	nst := new(stats.Net)
	in.SetNetStats(nst)
	ep := scl.WithRetry(in.Wrap(&echoEndpoint{}),
		scl.RetryPolicy{MaxAttempts: 4, Backoff: time.Microsecond}, nst)
	var resp proto.AllocResp
	_, err := ep.Call(2, &proto.AllocReq{}, &resp, 0)
	if !errors.Is(err, scl.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if got := nst.PartitionRefusals.Load(); got != 4 {
		t.Errorf("PartitionRefusals = %d, want 4", got)
	}
}
