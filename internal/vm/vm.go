// Package vm defines the backend-neutral programming interface the
// benchmark kernels and examples are written against.
//
// The paper runs every benchmark from a single code base, with memory
// allocation, synchronization and thread creation expressed as m4 macros
// that expand to either Pthreads or Samhita calls (Section III). The Go
// analogue is this interface: the micro-benchmark, Jacobi and molecular
// dynamics kernels are written once against vm.VM and executed on both
// the Samhita DSM backend (package core) and the cache-coherent baseline
// (package pthreads), which is what makes the compute-time and speedup
// comparisons of Figures 3-13 apples-to-apples.
package vm

import (
	"encoding/binary"
	"math"

	"repro/internal/layout"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// Addr is an address in the backend's shared address space.
type Addr = layout.Addr

// VM is one shared-memory substrate: either the Samhita DSM or the
// hardware-coherent baseline.
type VM interface {
	// Name identifies the backend ("samhita" or "pthreads").
	Name() string
	// Run executes body on p concurrent threads and returns the per-run
	// statistics once all of them finish.
	Run(p int, body func(t Thread)) (*stats.Run, error)
	// NewMutex creates a mutual-exclusion lock.
	NewMutex() Mutex
	// NewBarrier creates a barrier for n participants.
	NewBarrier(n int) Barrier
	// NewCond creates a condition variable used with a Mutex.
	NewCond() Cond
	// Close releases backend resources (servers, fabric ports).
	Close() error
}

// Thread is one compute thread's handle to the substrate. Accessors
// panic on backend failure — an access error in a DSM is the moral
// equivalent of SIGSEGV, not a recoverable condition for the
// application.
type Thread interface {
	// ID is the thread index in [0, P).
	ID() int
	// P is the number of threads in this run.
	P() int

	// Malloc allocates thread-local memory: the no-false-sharing path
	// (per-thread arenas in Samhita). The memory is still part of the
	// shared address space and visible to every thread.
	Malloc(n int) Addr
	// GlobalAlloc allocates shared memory through the manager: the
	// shared zone for medium requests, striped across memory servers for
	// large ones.
	GlobalAlloc(n int) Addr
	// Free releases memory from either allocator.
	Free(a Addr)

	// ReadBytes and WriteBytes move raw bytes.
	ReadBytes(a Addr, buf []byte)
	WriteBytes(a Addr, data []byte)

	// Float64 and Int64 accessors.
	ReadFloat64(a Addr) float64
	WriteFloat64(a Addr, v float64)
	ReadInt64(a Addr) int64
	WriteInt64(a Addr, v int64)

	// ReadFloat64s and WriteFloat64s move a whole span of float64s
	// through one bulk access: the backend resolves residency once per
	// page and charges one access overhead plus a per-byte streamed-copy
	// term, instead of a full accessor round per element. On the Samhita
	// backend span writes additionally publish their extents at the next
	// release, letting peers invalidate only the written bytes of a
	// falsely-shared page, and inside consistency regions they log one
	// store record per contiguous page chunk.
	ReadFloat64s(a Addr, dst []float64)
	WriteFloat64s(a Addr, src []float64)

	// AddFloat64 and AddInt64 are fused read-modify-write accessors:
	// one cache access (and, in a consistency region, one store record)
	// instead of a full read followed by a full write. The returned
	// value is the stored sum. Not atomic across threads — guard with a
	// Mutex when shared, exactly like a load/store pair.
	AddFloat64(a Addr, v float64) float64
	AddInt64(a Addr, v int64) int64

	// SnapshotAS seals the n bytes at base (rounded up to whole pages)
	// into an immutable address-space snapshot and returns its handle.
	// The snapshot captures this thread's own writes and everything any
	// thread has released before the call; writes still unreleased at
	// OTHER threads are not ordered before the snapshot and are not
	// captured. Take snapshots outside consistency regions. On the
	// Samhita backend the base must come from a striped GlobalAlloc
	// (size >= StripeMin), so snapshot and fork pages stripe across the
	// servers congruently.
	SnapshotAS(base Addr, n int) uint64
	// ForkAS materializes a copy-on-write image of a sealed snapshot at
	// a fresh address and returns its base. On the Samhita backend this
	// is O(1) in the image size: forked pages are served from the
	// snapshot's shared sealed frames until first write, when the home
	// installs a private copy. Free releases the image; the snapshot's
	// frames are reclaimed when every fork referencing it is freed.
	ForkAS(snap uint64) Addr

	// Compute charges the cost of pure arithmetic (flops floating-point
	// operations) to the thread's virtual clock.
	Compute(flops int)

	// SleepUntil idles the thread until virtual time tm: if the thread's
	// clock is behind tm it jumps forward, attributing the gap to idle
	// time (stats.Thread.IdleTime) rather than compute or sync. A clock
	// already at or past tm is untouched. This is the open-loop load
	// generator's primitive: a client whose next request is scheduled at
	// tm sleeps to the schedule instead of issuing on completion, so the
	// offered rate never coordinates with service latency.
	SleepUntil(tm vtime.Time)

	// Clock reports the thread's current virtual time.
	Clock() vtime.Time
	// Stats exposes the thread's measurement record.
	Stats() *stats.Thread

	// ResetMeasurement zeroes the measurement record and restarts time
	// attribution from the current virtual time. Kernels call it after
	// their initialization phase, mirroring the paper's methodology: the
	// timed region begins with a warm cache, because initialization has
	// already touched the data.
	ResetMeasurement()
	// StopMeasurement freezes the measurement record at the current
	// virtual time; later activity (result verification, checksums) is
	// not attributed.
	StopMeasurement()
}

// Mutex is a mutual-exclusion lock. In Samhita, Lock is an acquire
// point and Unlock a release point of regional consistency, and stores
// performed while the lock is held form a consistency region.
type Mutex interface {
	Lock(t Thread)
	Unlock(t Thread)
}

// Barrier synchronizes its n participants; in Samhita it is a release
// followed by an acquire.
type Barrier interface {
	Wait(t Thread)
}

// Cond is a condition variable; Wait atomically releases the mutex and
// sleeps until signalled, then re-acquires it.
type Cond interface {
	Wait(t Thread, m Mutex)
	Signal(t Thread)
	Broadcast(t Thread)
}

// ---------------------------------------------------------------------
// Byte-order helpers shared by backends.

// PutFloat64 encodes v into b (little endian).
func PutFloat64(b []byte, v float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
}

// GetFloat64 decodes a float64 from b.
func GetFloat64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// PutInt64 encodes v into b.
func PutInt64(b []byte, v int64) {
	binary.LittleEndian.PutUint64(b, uint64(v))
}

// GetInt64 decodes an int64 from b.
func GetInt64(b []byte) int64 {
	return int64(binary.LittleEndian.Uint64(b))
}

// ---------------------------------------------------------------------
// Typed array views.

// F64 is a view of a float64 array at a base address.
type F64 struct {
	Base Addr
}

// Addr returns the address of element i.
func (a F64) Addr(i int) Addr { return a.Base + Addr(8*i) }

// At loads element i.
func (a F64) At(t Thread, i int) float64 { return t.ReadFloat64(a.Addr(i)) }

// Set stores element i.
func (a F64) Set(t Thread, i int, v float64) { t.WriteFloat64(a.Addr(i), v) }

// Add adds v to element i through the backend's fused read-modify-write
// path: one cache access instead of a load plus a store (not atomic —
// guard with a Mutex when shared).
func (a F64) Add(t Thread, i int, v float64) { t.AddFloat64(a.Addr(i), v) }

// I64 is a view of an int64 array at a base address.
type I64 struct {
	Base Addr
}

// Addr returns the address of element i.
func (a I64) Addr(i int) Addr { return a.Base + Addr(8*i) }

// At loads element i.
func (a I64) At(t Thread, i int) int64 { return t.ReadInt64(a.Addr(i)) }

// Set stores element i.
func (a I64) Set(t Thread, i int, v int64) { t.WriteInt64(a.Addr(i), v) }

// Add adds v to element i through the fused read-modify-write path (not
// atomic — guard with a Mutex when shared).
func (a I64) Add(t Thread, i int, v int64) { t.AddInt64(a.Addr(i), v) }
