package vm

// Bulk span operations over the typed array views. These are the
// kernel-facing face of the bulk-access data plane: element loops that
// previously paid one accessor round (and, on Samhita, one potential
// false-sharing refetch) per element instead move whole spans through
// one ReadFloat64s/WriteFloat64s call.

// ReadSlice bulk-loads elements [lo, lo+len(dst)) into dst.
func (a F64) ReadSlice(t Thread, lo int, dst []float64) {
	if len(dst) == 0 {
		return
	}
	t.ReadFloat64s(a.Addr(lo), dst)
}

// WriteSlice bulk-stores src into elements [lo, lo+len(src)).
func (a F64) WriteSlice(t Thread, lo int, src []float64) {
	if len(src) == 0 {
		return
	}
	t.WriteFloat64s(a.Addr(lo), src)
}

// fillChunk bounds the scratch buffer Fill streams through.
const fillChunk = 512

// Fill stores v into elements [lo, hi) with chunked span writes.
func (a F64) Fill(t Thread, lo, hi int, v float64) {
	if hi <= lo {
		return
	}
	n := hi - lo
	buf := make([]float64, min(n, fillChunk))
	for i := range buf {
		buf[i] = v
	}
	for lo < hi {
		k := min(hi-lo, len(buf))
		a.WriteSlice(t, lo, buf[:k])
		lo += k
	}
}

// Axpy performs y[i] += alpha*x[i] for i in [lo, hi) with chunked span
// reads and writes, charging the arithmetic (two flops per element) to
// the thread's clock.
func (y F64) Axpy(t Thread, alpha float64, x F64, lo, hi int) {
	if hi <= lo {
		return
	}
	var xb, yb [fillChunk]float64
	for lo < hi {
		k := min(hi-lo, fillChunk)
		x.ReadSlice(t, lo, xb[:k])
		y.ReadSlice(t, lo, yb[:k])
		for i := 0; i < k; i++ {
			yb[i] += alpha * xb[i]
		}
		t.Compute(2 * k)
		y.WriteSlice(t, lo, yb[:k])
		lo += k
	}
}

// F64Span is a checked-out window of an F64 array: Slice bulk-reads the
// window once into an owned buffer, the kernel indexes V with ordinary
// Go loads and stores (no per-element accessor cost), and Close bulk
// write-backs the buffer and invalidates the view. A read-only caller
// uses Discard instead and the write-back is skipped entirely.
//
// The view is a private copy, not an alias of cache memory: concurrent
// modifications of the same elements by other threads are not reflected
// until the span is re-checked-out, and Close overwrites the full
// window — the usual single-writer discipline for a span (each thread
// checking out its own disjoint window) makes that a non-issue.
type F64Span struct {
	t   Thread
	arr F64
	lo  int
	// V is the window's elements; V[i] is array element lo+i.
	V []float64
}

// Slice checks out elements [lo, hi) as a span view. The window is
// faulted in by one bulk read; until Close, V is ordinary memory.
func (a F64) Slice(t Thread, lo, hi int) *F64Span {
	s := &F64Span{t: t, arr: a, lo: lo, V: make([]float64, hi-lo)}
	a.ReadSlice(t, lo, s.V)
	return s
}

// Close bulk-writes the window back and invalidates the view.
func (s *F64Span) Close() {
	s.arr.WriteSlice(s.t, s.lo, s.V)
	s.V = nil
}

// Discard invalidates the view without writing back (read-only use).
func (s *F64Span) Discard() { s.V = nil }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
