package vm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFloat64Codec(t *testing.T) {
	cases := []float64{0, 1, -1, math.Pi, math.Inf(1), math.Inf(-1), math.SmallestNonzeroFloat64, math.MaxFloat64}
	b := make([]byte, 8)
	for _, v := range cases {
		PutFloat64(b, v)
		if got := GetFloat64(b); got != v {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
	// NaN round-trips bit-exactly.
	PutFloat64(b, math.NaN())
	if !math.IsNaN(GetFloat64(b)) {
		t.Error("NaN lost")
	}
}

func TestInt64Codec(t *testing.T) {
	b := make([]byte, 8)
	for _, v := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64} {
		PutInt64(b, v)
		if got := GetInt64(b); got != v {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestCodecProperty(t *testing.T) {
	b := make([]byte, 8)
	f := func(bits uint64) bool {
		v := math.Float64frombits(bits)
		PutFloat64(b, v)
		return math.Float64bits(GetFloat64(b)) == bits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(v int64) bool {
		PutInt64(b, v)
		return GetInt64(b) == v
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArrayViewAddressing(t *testing.T) {
	a := F64{Base: 1000}
	if a.Addr(0) != 1000 || a.Addr(3) != 1024 {
		t.Errorf("F64 addressing: %d %d", a.Addr(0), a.Addr(3))
	}
	i := I64{Base: 16}
	if i.Addr(2) != 32 {
		t.Errorf("I64 addressing: %d", i.Addr(2))
	}
}

// fakeThread implements just enough of Thread for view tests.
type fakeThread struct {
	Thread // panic on anything unimplemented
	mem    map[Addr][8]byte
}

func (f *fakeThread) ReadFloat64(a Addr) float64 {
	b := f.mem[a]
	return GetFloat64(b[:])
}

func (f *fakeThread) WriteFloat64(a Addr, v float64) {
	var b [8]byte
	PutFloat64(b[:], v)
	f.mem[a] = b
}

func (f *fakeThread) ReadInt64(a Addr) int64 {
	b := f.mem[a]
	return GetInt64(b[:])
}

func (f *fakeThread) WriteInt64(a Addr, v int64) {
	var b [8]byte
	PutInt64(b[:], v)
	f.mem[a] = b
}

func (f *fakeThread) ReadFloat64s(a Addr, dst []float64) {
	for i := range dst {
		dst[i] = f.ReadFloat64(a + Addr(8*i))
	}
}

func (f *fakeThread) WriteFloat64s(a Addr, src []float64) {
	for i, v := range src {
		f.WriteFloat64(a+Addr(8*i), v)
	}
}

func (f *fakeThread) AddFloat64(a Addr, v float64) float64 {
	sum := f.ReadFloat64(a) + v
	f.WriteFloat64(a, sum)
	return sum
}

func (f *fakeThread) AddInt64(a Addr, v int64) int64 {
	sum := f.ReadInt64(a) + v
	f.WriteInt64(a, sum)
	return sum
}

func (f *fakeThread) Compute(int) {}

func TestViewsThroughThread(t *testing.T) {
	ft := &fakeThread{mem: make(map[Addr][8]byte)}
	arr := F64{Base: 0}
	arr.Set(ft, 3, 2.5)
	if got := arr.At(ft, 3); got != 2.5 {
		t.Errorf("F64 At = %v", got)
	}
	arr.Add(ft, 3, 1.5)
	if got := arr.At(ft, 3); got != 4.0 {
		t.Errorf("F64 Add = %v", got)
	}
	iv := I64{Base: 4096}
	iv.Set(ft, 1, -9)
	if got := iv.At(ft, 1); got != -9 {
		t.Errorf("I64 At = %v", got)
	}
	iv.Add(ft, 1, 4)
	if got := iv.At(ft, 1); got != -5 {
		t.Errorf("I64 Add = %v", got)
	}
}

func TestSpanViewsThroughThread(t *testing.T) {
	ft := &fakeThread{mem: make(map[Addr][8]byte)}
	arr := F64{Base: 0}
	for i := 0; i < 8; i++ {
		arr.Set(ft, i, float64(i))
	}

	s := arr.Slice(ft, 2, 6)
	for i := range s.V {
		if s.V[i] != float64(i+2) {
			t.Fatalf("span checkout [%d] = %v", i, s.V[i])
		}
		s.V[i] *= 2
	}
	s.Close()
	for i := 0; i < 8; i++ {
		want := float64(i)
		if i >= 2 && i < 6 {
			want *= 2
		}
		if got := arr.At(ft, i); got != want {
			t.Errorf("after Close, [%d] = %v, want %v", i, got, want)
		}
	}

	r := arr.Slice(ft, 0, 4)
	r.Discard()
	if r.V != nil {
		t.Error("Discard left the view live")
	}

	arr.Fill(ft, 1, 7, 1.5)
	for i := 1; i < 7; i++ {
		if got := arr.At(ft, i); got != 1.5 {
			t.Errorf("after Fill, [%d] = %v", i, got)
		}
	}

	x := F64{Base: 4096}
	for i := 0; i < 4; i++ {
		x.Set(ft, i, float64(i+1))
	}
	y := F64{Base: 8192}
	y.Fill(ft, 0, 4, 10)
	y.Axpy(ft, 2, x, 0, 4)
	for i := 0; i < 4; i++ {
		if got, want := y.At(ft, i), 10+2*float64(i+1); got != want {
			t.Errorf("after Axpy, [%d] = %v, want %v", i, got, want)
		}
	}
}
