package vm

import (
	"testing"
	"testing/quick"
)

func TestBlockRangeProperty(t *testing.T) {
	prop := func(nRaw, pRaw uint8) bool {
		n := int(nRaw)
		p := 1 + int(pRaw)%16
		prev := 0
		total := 0
		for id := 0; id < p; id++ {
			lo, hi := BlockRange(n, p, id)
			if lo != prev || hi < lo {
				return false
			}
			if hi-lo > n/p+1 || (n >= p && hi == lo) {
				return false // unbalanced or empty despite enough work
			}
			total += hi - lo
			prev = hi
		}
		return total == n && prev == n
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForBlockCoversExactlyOnce(t *testing.T) {
	seen := make([]int, 100)
	for id := 0; id < 7; id++ {
		th := &idThread{id: id, p: 7}
		ForBlock(th, 100, func(i int) { seen[i]++ })
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

// idThread implements only ID/P for ForBlock.
type idThread struct {
	Thread
	id, p int
}

func (t *idThread) ID() int { return t.id }
func (t *idThread) P() int  { return t.p }
