package vm

// Parallel helpers shared by the kernels and examples: SPMD utilities in
// the style threaded HPC codes use on top of Pthreads.

// BlockRange splits n items across p workers in contiguous blocks and
// returns worker id's half-open range [lo, hi). Remainder items go to
// the lowest-numbered workers, so block sizes differ by at most one.
func BlockRange(n, p, id int) (lo, hi int) {
	chunk := n / p
	rem := n % p
	lo = id*chunk + minInt(id, rem)
	hi = lo + chunk
	if id < rem {
		hi++
	}
	return lo, hi
}

// ForBlock runs body over this thread's block of [0, n): the canonical
// owner-computes loop. Call it from every thread of the run.
func ForBlock(t Thread, n int, body func(i int)) {
	lo, hi := BlockRange(n, t.P(), t.ID())
	for i := lo; i < hi; i++ {
		body(i)
	}
}

// ReduceF64 combines one float64 per thread into a single value using a
// mutex-protected accumulator cell in shared memory, then returns the
// total (valid after the barrier it performs). The reduction operator
// is addition; cell must be a zeroed shared address all threads pass
// identically, and bar must be a barrier sized to the run.
//
// The accumulation happens inside a consistency region, so under
// Samhita it travels as a fine-grained record — this helper is the
// idiomatic replacement for the LOCK/sum/UNLOCK/BARRIER tail of the
// paper's micro-benchmark kernel.
func ReduceF64(t Thread, mu Mutex, bar Barrier, cell Addr, local float64) float64 {
	mu.Lock(t)
	t.WriteFloat64(cell, t.ReadFloat64(cell)+local)
	mu.Unlock(t)
	bar.Wait(t)
	return t.ReadFloat64(cell)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
