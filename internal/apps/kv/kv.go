// Package kv is the serving-scale workload: a DSM-backed key-value /
// cache service whose buckets live in Samhita global memory behind RegC
// consistency regions, driven by an open-loop client load generator.
//
// Every compute thread plays one client of the service: requests arrive
// on a fixed virtual-time schedule (one request every GapNs nanoseconds
// of the client's clock), NOT on completion of the previous request.
// This is the open-loop discipline serving benchmarks require: a
// closed-loop generator slows its offered rate exactly when the system
// degrades, hiding the tail; an open-loop one keeps offering, so queue-
// ing delay lands in the measured latency where it belongs. The
// generator sleeps to its schedule with Thread.SleepUntil and charges
// each request the interval from its SCHEDULED arrival to completion,
// so a request issued late because its predecessor overran pays its
// queueing delay.
//
// The store is an open-addressed bucket table: key k hashes to bucket
// splitmix64(k) mod Buckets, each bucket is a mutex-guarded array of
// (key, value, version) float64 triples prefixed by a count word. All
// quantities are integers representable exactly in a float64, so the
// element and span data planes produce bit-identical state, and Incr
// (the only mutation in the measured phase) is commutative — the final
// state is independent of request interleaving, which is what makes
// the acked-write conservation check and the span/element checksum
// equality exact even under chaos.
//
// Latency quantiles are tracked in per-client quantile.Sketch objects
// (plain Go memory — measurement apparatus, not workload state) and
// merged in client-index order after the run.
package kv

import (
	"fmt"
	"sync/atomic"

	"repro/internal/bench/quantile"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/vtime"
)

// base broadcasts a shared allocation's address from thread 0 to the
// other threads across the pre-measurement barrier (the same idiom the
// kernels use).
type base struct{ v atomic.Uint64 }

func (b *base) set(a vm.Addr) { b.v.Store(uint64(a)) }
func (b *base) get() vm.Addr  { return vm.Addr(b.v.Load()) }

// Params parameterizes one KV service run.
type Params struct {
	Buckets int // hash buckets, each an independent RegC region (default 64)
	Keys    int // distinct keys, all pre-seeded before measurement (default 512)
	Ops     int // requests per client thread (default 64)
	GetPct  int // percentage of requests that are Gets, the rest Incrs (default 90)
	// GapNs is each client's inter-arrival gap in virtual nanoseconds:
	// the open-loop schedule offers one request every GapNs regardless
	// of how long requests take (default 20000).
	GapNs int64
	// ServiceFlops adds per-request application compute, modeling
	// request handling beyond the store access (default 0).
	ServiceFlops int
	// UseSpans moves bucket reads and writes onto the bulk span
	// accessors (one cache access per bucket scan / triple write-back).
	UseSpans bool
	// Alpha is the latency sketch's relative accuracy (default
	// quantile.DefaultAlpha).
	Alpha float64
	// RecordArrivals captures every request's scheduled arrival time in
	// Result.Arrivals; the open-loop non-coordination test compares
	// these across runs with different service costs.
	RecordArrivals bool
	// DumpKeys captures every key's final (value, version) pair in
	// Result.Vals/Vers, indexed by key; the per-key linearizability
	// test checks them against the analytically replayed acked set.
	DumpKeys bool
	// Recover converts a panicking request (an accessor or lock failure
	// under injected faults that the retry/failover machinery could not
	// mask) into a counted error response instead of killing the run —
	// the service's "bounded error responses" discipline. A failure
	// while the bucket lock is held still propagates: the region is
	// poisoned and continuing would corrupt the store.
	Recover bool
	Seed    uint64
}

func (p Params) WithDefaults() Params {
	if p.Buckets == 0 {
		p.Buckets = 64
	}
	if p.Keys == 0 {
		p.Keys = 512
	}
	if p.Ops == 0 {
		p.Ops = 64
	}
	if p.GetPct == 0 {
		p.GetPct = 90
	}
	if p.GapNs == 0 {
		p.GapNs = 20000
	}
	if p.Alpha == 0 {
		p.Alpha = quantile.DefaultAlpha
	}
	if p.Seed == 0 {
		p.Seed = 0xC0FFEE
	}
	return p
}

// Result is the outcome of one KV run.
type Result struct {
	Run *stats.Run

	Ops    int64 // requests completed successfully
	Gets   int64
	Incrs  int64
	Errors int64 // requests turned into error responses (Recover mode)

	// Checksum folds every bucket's (key, value, version) triples into
	// one exact integer-valued float64; span and element planes, and any
	// request interleaving of the same acked set, must agree bit for bit.
	Checksum float64
	// SumVal and SumVer are the exact sums of all values and versions.
	// Conservation: SumVal = seed sum + AckedDelta and SumVer = seed
	// count-of-incrs; no acked increment may be lost or doubled.
	SumVal float64
	SumVer float64
	// AckedDelta is the sum of deltas of every acknowledged Incr
	// (counted client-side as requests complete).
	AckedDelta float64

	// Latency quantiles over all clients' requests, in virtual ns,
	// measured from scheduled arrival to completion.
	Sketch          *quantile.Sketch
	P50, P99, P999  vtime.Time
	MaxLatency      vtime.Time
	IdleTime        vtime.Time // total deliberate open-loop slack
	Arrivals        [][]vtime.Time
	ExpectedSeedSum float64 // analytic seed sum, for convenience in tests

	// Vals and Vers hold each key's final value and version (DumpKeys).
	Vals, Vers []float64
}

// mix64 is splitmix64's finalizer: the deterministic hash behind bucket
// placement and the request stream.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// bucketOf places key k.
func bucketOf(k, buckets int) int { return int(mix64(uint64(k)) % uint64(buckets)) }

// seedVal is key k's pre-seeded value: a small exact integer.
func seedVal(k int) float64 { return float64(k % 97) }

// SlotsPerBucket returns the exact maximum bucket occupancy for a
// (keys, buckets) pair — a pure function every thread computes
// identically, sizing the bucket arrays without coordination.
func SlotsPerBucket(keys, buckets int) int {
	occ := make([]int, buckets)
	max := 0
	for k := 0; k < keys; k++ {
		b := bucketOf(k, buckets)
		occ[b]++
		if occ[b] > max {
			max = occ[b]
		}
	}
	return max
}

// opKind decodes request o of client t from the deterministic stream.
func opSpec(seed uint64, t, o, keys, getPct int) (key int, isGet bool, delta float64) {
	r := mix64(seed ^ uint64(t)<<32 ^ uint64(o))
	key = int(r % uint64(keys))
	isGet = (r>>32)%100 < uint64(getPct)
	delta = float64(1 + (r>>40)%8)
	return
}

// Run executes the KV service workload on p client threads.
func Run(v vm.VM, p int, prm Params) (*Result, error) {
	prm = prm.WithDefaults()
	slots := SlotsPerBucket(prm.Keys, prm.Buckets)
	stride := 1 + 3*slots // count word + (key, val, ver) triples
	bar := v.NewBarrier(p)
	locks := make([]vm.Mutex, prm.Buckets)
	for i := range locks {
		locks[i] = v.NewMutex()
	}

	var tableBase base
	sketches := make([]*quantile.Sketch, p)
	acked := make([]struct {
		ops, gets, incrs, errs int64
		delta                  float64
	}, p)
	var arrivals [][]vtime.Time
	if prm.RecordArrivals {
		arrivals = make([][]vtime.Time, p)
	}
	checksums := make([]float64, 3) // checksum, sumVal, sumVer by thread 0
	var dumpVals, dumpVers []float64
	if prm.DumpKeys {
		dumpVals = make([]float64, prm.Keys)
		dumpVers = make([]float64, prm.Keys)
	}

	run, err := v.Run(p, func(t vm.Thread) {
		if t.ID() == 0 {
			tableBase.set(t.GlobalAlloc(8 * prm.Buckets * stride))
		}
		bar.Wait(t)
		table := vm.F64{Base: tableBase.get()}
		bucketIdx := func(b int) int { return b * stride }
		scratch := make([]float64, stride)

		// --- Seed phase: key k is inserted by client k mod p. Buckets
		// are mutex-guarded, so concurrent inserts into one bucket
		// serialize; occupancy never exceeds SlotsPerBucket by
		// construction.
		for k := t.ID(); k < prm.Keys; k += p {
			b := bucketOf(k, prm.Buckets)
			bi := bucketIdx(b)
			locks[b].Lock(t)
			n := int(table.At(t, bi))
			si := bi + 1 + 3*n
			table.Set(t, si, float64(k))
			table.Set(t, si+1, seedVal(k))
			table.Set(t, si+2, 0)
			table.Set(t, bi, float64(n+1))
			locks[b].Unlock(t)
		}
		bar.Wait(t)
		t.ResetMeasurement()

		// --- Measured phase: the open-loop request loop. The schedule
		// is fixed at the epoch (the barrier-aligned clock after reset):
		// request o arrives at epoch + (o+1)*gap, whatever happened to
		// requests before it.
		sk := quantile.New(prm.Alpha)
		epoch := t.Clock()
		var rec []vtime.Time
		if prm.RecordArrivals {
			rec = make([]vtime.Time, 0, prm.Ops)
		}
		me := &acked[t.ID()]
		for o := 0; o < prm.Ops; o++ {
			arrival := epoch + vtime.Time(int64(o+1)*prm.GapNs)
			t.SleepUntil(arrival)
			if prm.RecordArrivals {
				rec = append(rec, arrival)
			}
			key, isGet, delta := opSpec(prm.Seed, t.ID(), o, prm.Keys, prm.GetPct)
			ok := serveOne(t, table, locks, bucketIdx, scratch, prm, slots, key, isGet, delta)
			if !ok {
				me.errs++
				continue
			}
			lat := t.Clock() - arrival
			sk.Add(int64(lat))
			me.ops++
			if isGet {
				me.gets++
			} else {
				me.incrs++
				me.delta += delta
			}
		}
		t.StopMeasurement()
		sketches[t.ID()] = sk
		if prm.RecordArrivals {
			arrivals[t.ID()] = rec
		}
		// The closing barrier is an acquire point: after it, thread 0
		// observes every client's writes for the verification scan.
		bar.Wait(t)
		if t.ID() == 0 {
			var cs, sv, sn float64
			for b := 0; b < prm.Buckets; b++ {
				bi := bucketIdx(b)
				var row []float64
				if prm.UseSpans {
					t.ReadFloat64s(table.Addr(bi), scratch)
					row = scratch
				} else {
					for i := 0; i < stride; i++ {
						scratch[i] = table.At(t, bi+i)
					}
					row = scratch
				}
				n := int(row[0])
				for s := 0; s < n; s++ {
					k, val, ver := row[1+3*s], row[2+3*s], row[3+3*s]
					cs += 3*k + 5*val + 7*ver
					sv += val
					sn += ver
					if prm.DumpKeys {
						dumpVals[int(k)] = val
						dumpVers[int(k)] = ver
					}
				}
			}
			checksums[0], checksums[1], checksums[2] = cs, sv, sn
		}
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Run: run, Checksum: checksums[0], SumVal: checksums[1], SumVer: checksums[2]}
	merged := quantile.New(prm.Alpha)
	for i := 0; i < p; i++ { // deterministic merge order (exact anyway)
		merged.Merge(sketches[i])
		res.Ops += acked[i].ops
		res.Gets += acked[i].gets
		res.Incrs += acked[i].incrs
		res.Errors += acked[i].errs
		res.AckedDelta += acked[i].delta
	}
	res.Sketch = merged
	res.P50 = vtime.Time(merged.Quantile(0.50))
	res.P99 = vtime.Time(merged.Quantile(0.99))
	res.P999 = vtime.Time(merged.Quantile(0.999))
	res.MaxLatency = vtime.Time(merged.Max())
	res.Arrivals = arrivals
	res.Vals, res.Vers = dumpVals, dumpVers
	for k := 0; k < prm.Keys; k++ {
		res.ExpectedSeedSum += seedVal(k)
	}
	for i := range run.Threads {
		res.IdleTime += run.Threads[i].IdleTime
	}
	return res, nil
}

// serveOne executes one request. Under Recover a panic raised before
// the bucket lock is held (lock acquisition itself, or the failure
// surfacing inside it) becomes a false return — an error response; a
// panic after acquisition re-propagates, because a half-applied region
// must kill the run, not be retried.
func serveOne(t vm.Thread, table vm.F64, locks []vm.Mutex, bucketIdx func(int) int,
	scratch []float64, prm Params, slots int, key int, isGet bool, delta float64) (ok bool) {
	b := bucketOf(key, prm.Buckets)
	bi := bucketIdx(b)
	held := false
	if prm.Recover {
		defer func() {
			if r := recover(); r != nil {
				if held {
					panic(r)
				}
				ok = false
			}
		}()
	}
	locks[b].Lock(t)
	held = true
	defer func() {
		held = false
		locks[b].Unlock(t)
	}()

	stride := 1 + 3*slots
	find := func(row []float64) int {
		n := int(row[0])
		for s := 0; s < n; s++ {
			if int(row[1+3*s]) == key {
				return s
			}
		}
		return -1
	}
	if prm.UseSpans {
		// One bulk read covers the count word and every slot; an Incr
		// writes back just the owning triple as a 3-element span.
		t.ReadFloat64s(table.Addr(bi), scratch[:stride])
		s := find(scratch[:stride])
		if s < 0 {
			panic(fmt.Sprintf("kv: key %d missing from bucket %d", key, b))
		}
		if !isGet {
			si := bi + 1 + 3*s
			triple := scratch[1+3*s : 4+3*s]
			triple[1] += delta // value
			triple[2]++        // version
			t.WriteFloat64s(table.Addr(si), triple)
		}
	} else {
		n := int(table.At(t, bi))
		s := -1
		for i := 0; i < n; i++ {
			if int(table.At(t, bi+1+3*i)) == key {
				s = i
				break
			}
		}
		if s < 0 {
			panic(fmt.Sprintf("kv: key %d missing from bucket %d", key, b))
		}
		si := bi + 1 + 3*s
		if isGet {
			_ = table.At(t, si+1)
		} else {
			table.Add(t, si+1, delta)
			table.Add(t, si+2, 1)
		}
	}
	if prm.ServiceFlops > 0 {
		t.Compute(prm.ServiceFlops)
	}
	return true
}
