package kv

import (
	"testing"

	"repro/internal/core"
	"repro/internal/vtime"
)

// p256Config is the population-sweep topology the determinism
// regression pins down: 256 clients over 4 memory servers with 4 page
// shards each and a 4-home manager, single replica, on the clean
// sequenced fabric.
func p256Config(cfg *core.Config) {
	cfg.Geo.NumServers = 4
	cfg.ServerShards = 4
	cfg.ManagerShards = 4
	cfg.ManagerReplicas = 1
}

// runP256 runs one P=256 KV burst and returns the result plus the
// per-thread virtual-time fingerprint.
func runP256(t *testing.T, spans bool) (*Result, []vtime.Time) {
	t.Helper()
	rt := newRT(t, p256Config)
	defer rt.Close()
	r, err := Run(rt, 256, Params{Buckets: 128, Keys: 2048, Ops: 8, UseSpans: spans})
	if err != nil {
		t.Fatal(err)
	}
	fp := make([]vtime.Time, len(r.Run.Threads))
	for i := range r.Run.Threads {
		fp[i] = r.Run.Threads[i].TotalTime()
	}
	return r, fp
}

// TestKVDeterminismP256 reruns the P=256 sweep configuration and
// demands bit-identical results: same per-thread virtual times, same
// store checksum, same latency quantiles. The sequenced fabric makes
// two clean runs of 256 clients through sharded servers and a sharded
// manager indistinguishable — which is exactly what lets the sweep
// points in BENCH_micro.json be gated strictly.
func TestKVDeterminismP256(t *testing.T) {
	if testing.Short() {
		t.Skip("P=256 run in -short mode")
	}
	r1, fp1 := runP256(t, false)
	r2, fp2 := runP256(t, false)
	for i := range fp1 {
		if fp1[i] != fp2[i] {
			t.Fatalf("thread %d virtual time differs between identical runs: %d vs %d", i, fp1[i], fp2[i])
		}
	}
	if r1.Checksum != r2.Checksum || r1.SumVal != r2.SumVal || r1.SumVer != r2.SumVer {
		t.Errorf("store state differs between identical runs: (%v,%v,%v) vs (%v,%v,%v)",
			r1.Checksum, r1.SumVal, r1.SumVer, r2.Checksum, r2.SumVal, r2.SumVer)
	}
	if r1.P50 != r2.P50 || r1.P99 != r2.P99 || r1.P999 != r2.P999 {
		t.Errorf("latency quantiles differ between identical runs: (%d,%d,%d) vs (%d,%d,%d)",
			r1.P50, r1.P99, r1.P999, r2.P50, r2.P99, r2.P999)
	}
	checkConservation(t, r1)
}

// TestKVSpanElementChecksumP256 runs the same P=256 burst on the
// element and span data planes. The service keeps every value an
// integer-valued float64 and every mutation commutative, so the two
// planes must agree on the final store bit for bit even at this
// population — the span plane changes how bytes move, never what they
// say.
func TestKVSpanElementChecksumP256(t *testing.T) {
	if testing.Short() {
		t.Skip("P=256 run in -short mode")
	}
	re, _ := runP256(t, false)
	rs, _ := runP256(t, true)
	if re.Checksum != rs.Checksum || re.SumVal != rs.SumVal || re.SumVer != rs.SumVer {
		t.Errorf("span plane diverged from element plane at P=256: (%v,%v,%v) vs (%v,%v,%v)",
			re.Checksum, re.SumVal, re.SumVer, rs.Checksum, rs.SumVal, rs.SumVer)
	}
	checkConservation(t, rs)
}
