package kv

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/pthreads"
	"repro/internal/scl"
)

func newRT(t *testing.T, mutate ...func(*core.Config)) *core.Runtime {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.CacheLines = 256
	cfg.Geo.NumServers = 2
	for _, m := range mutate {
		m(&cfg)
	}
	rt, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// checkConservation asserts the exact acked-write accounting every KV
// run must satisfy: no acknowledged increment lost or doubled.
func checkConservation(t *testing.T, r *Result) {
	t.Helper()
	if r.SumVal != r.ExpectedSeedSum+r.AckedDelta {
		t.Errorf("value conservation: sum %v != seed %v + acked %v",
			r.SumVal, r.ExpectedSeedSum, r.AckedDelta)
	}
	if r.SumVer != float64(r.Incrs) {
		t.Errorf("version conservation: %v != %d incrs", r.SumVer, r.Incrs)
	}
}

func TestKVBasicCorrectness(t *testing.T) {
	rt := newRT(t)
	defer rt.Close()
	p := 8
	prm := Params{Buckets: 16, Keys: 128, Ops: 32, GapNs: 10000}
	r, err := Run(rt, p, prm)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops != int64(p*prm.Ops) || r.Errors != 0 {
		t.Fatalf("ops=%d errors=%d, want %d/0", r.Ops, r.Errors, p*prm.Ops)
	}
	if r.Gets+r.Incrs != r.Ops {
		t.Fatalf("gets %d + incrs %d != ops %d", r.Gets, r.Incrs, r.Ops)
	}
	checkConservation(t, r)
	if r.Sketch.Count() != uint64(r.Ops) {
		t.Fatalf("sketch count %d != ops %d", r.Sketch.Count(), r.Ops)
	}
	if !(r.P50 <= r.P99 && r.P99 <= r.P999 && r.P999 <= r.MaxLatency) {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v p999=%v max=%v",
			r.P50, r.P99, r.P999, r.MaxLatency)
	}
	if r.P50 <= 0 {
		t.Fatal("p50 should be positive: every request pays at least a store access")
	}
	if r.IdleTime == 0 {
		t.Fatal("open-loop generator never slept: gap too small for the service time?")
	}
}

// The workload is backend-neutral: the pthreads baseline must land on
// the identical final store state (the acked set is the same
// deterministic stream and increments commute).
func TestKVPthreadsMatchesSamhita(t *testing.T) {
	prm := Params{Buckets: 8, Keys: 64, Ops: 16, GapNs: 5000}
	rt := newRT(t)
	defer rt.Close()
	rs, err := Run(rt, 4, prm)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(pthreads.New(pthreads.Config{}), 4, prm)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Checksum != rp.Checksum || rs.SumVal != rp.SumVal || rs.SumVer != rp.SumVer {
		t.Fatalf("backends disagree: samhita (%v,%v,%v) pthreads (%v,%v,%v)",
			rs.Checksum, rs.SumVal, rs.SumVer, rp.Checksum, rp.SumVal, rp.SumVer)
	}
	checkConservation(t, rp)
}

// Span and element data planes must produce the bit-identical store:
// same stream, same acked set, commutative increments.
func TestKVSpanElementChecksumEqual(t *testing.T) {
	run := func(spans bool) *Result {
		rt := newRT(t, func(c *core.Config) { c.ServerShards = 4; c.ManagerShards = 4 })
		defer rt.Close()
		r, err := Run(rt, 8, Params{Buckets: 16, Keys: 128, Ops: 24, GapNs: 8000, UseSpans: spans})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	re, rs := run(false), run(true)
	if re.Checksum != rs.Checksum || re.SumVal != rs.SumVal || re.SumVer != rs.SumVer {
		t.Fatalf("planes disagree: element (%v,%v,%v) span (%v,%v,%v)",
			re.Checksum, re.SumVal, re.SumVer, rs.Checksum, rs.SumVal, rs.SumVer)
	}
	if re.Ops != rs.Ops || re.Errors+rs.Errors != 0 {
		t.Fatalf("ops/errors differ: %d/%d vs %d/%d", re.Ops, re.Errors, rs.Ops, rs.Errors)
	}
}

// Clean runs on the sequenced fabric are bit-identical: same stats,
// same quantiles, same checksum.
func TestKVDeterministic(t *testing.T) {
	run := func() *Result {
		rt := newRT(t, func(c *core.Config) { c.ServerShards = 4; c.ManagerShards = 4 })
		defer rt.Close()
		r, err := Run(rt, 8, Params{Buckets: 16, Keys: 128, Ops: 24, GapNs: 8000})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := run(), run()
	if r1.Checksum != r2.Checksum {
		t.Fatalf("checksum differs: %v vs %v", r1.Checksum, r2.Checksum)
	}
	if r1.P50 != r2.P50 || r1.P99 != r2.P99 || r1.P999 != r2.P999 {
		t.Fatalf("quantiles differ: (%v,%v,%v) vs (%v,%v,%v)",
			r1.P50, r1.P99, r1.P999, r2.P50, r2.P99, r2.P999)
	}
	for i := range r1.Run.Threads {
		if r1.Run.Threads[i] != r2.Run.Threads[i] {
			t.Errorf("thread %d stats differ:\n run1: %+v\n run2: %+v",
				i, r1.Run.Threads[i], r2.Run.Threads[i])
		}
	}
}

// The open-loop generator must not coordinate with the service: making
// every request 100x more expensive must leave the arrival schedule
// (the offered load) bit-identical while the measured latency moves.
// A closed-loop generator fails this by construction — its next arrival
// waits for the previous completion.
func TestKVOpenLoopNonCoordinating(t *testing.T) {
	run := func(flops int) *Result {
		rt := newRT(t)
		defer rt.Close()
		r, err := Run(rt, 4, Params{
			Buckets: 8, Keys: 64, Ops: 24, GapNs: 5000,
			ServiceFlops: flops, RecordArrivals: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	fast, slow := run(0), run(50000)
	if fast.Ops != slow.Ops {
		t.Fatalf("offered request count changed with service cost: %d vs %d", fast.Ops, slow.Ops)
	}
	for ti := range fast.Arrivals {
		if len(fast.Arrivals[ti]) != len(slow.Arrivals[ti]) {
			t.Fatalf("client %d arrival counts differ", ti)
		}
		for o := range fast.Arrivals[ti] {
			if fast.Arrivals[ti][o] != slow.Arrivals[ti][o] {
				t.Fatalf("client %d request %d arrival moved with service cost: %v vs %v",
					ti, o, fast.Arrivals[ti][o], slow.Arrivals[ti][o])
			}
		}
	}
	if slow.P99 <= fast.P99 {
		t.Fatalf("p99 did not grow with 100x service cost: fast %v, slow %v", fast.P99, slow.P99)
	}
	if slow.IdleTime >= fast.IdleTime {
		t.Fatalf("idle slack should shrink as service time grows: fast %v, slow %v",
			fast.IdleTime, slow.IdleTime)
	}
}

// Per-key linearizability under transport chaos: with drops and
// duplicated responses injected beneath the retry layer, every key's
// final value and version must equal the analytic replay of its acked
// increments — duplicates must not double-apply, drops must not lose
// acked writes. Buckets serialize writers, increments commute, so the
// per-key outcome is independent of interleaving; what this test pins
// is exactly-once delivery through retry/dedup.
func TestKVLinearizablePerKeyUnderFaults(t *testing.T) {
	const p, keys, ops = 4, 64, 24
	prm := Params{Buckets: 8, Keys: keys, Ops: ops, GapNs: 5000, DumpKeys: true}
	rt := newRT(t, func(c *core.Config) {
		c.Faults = faultnet.New(faultnet.Config{
			Seed:      11,
			DropProb:  0.05,
			DelayProb: 0.02,
			MaxDelay:  100 * time.Microsecond,
			DupProb:   0.03,
		})
		pol := scl.DefaultRetryPolicy
		c.Retry = &pol
	})
	defer rt.Close()
	r, err := Run(rt, p, prm)
	if err != nil {
		t.Fatal(err)
	}
	if r.Errors != 0 {
		t.Fatalf("retries should mask drops/dups, got %d errors", r.Errors)
	}
	checkConservation(t, r)
	// Replay the deterministic request stream per key.
	wantVal := make([]float64, keys)
	wantVer := make([]float64, keys)
	for k := 0; k < keys; k++ {
		wantVal[k] = seedVal(k)
	}
	for ti := 0; ti < p; ti++ {
		for o := 0; o < ops; o++ {
			key, isGet, delta := opSpec(prm.WithDefaults().Seed, ti, o, keys, 90)
			if !isGet {
				wantVal[key] += delta
				wantVer[key]++
			}
		}
	}
	for k := 0; k < keys; k++ {
		if r.Vals[k] != wantVal[k] || r.Vers[k] != wantVer[k] {
			t.Errorf("key %d: got (%v, %v), want (%v, %v)",
				k, r.Vals[k], r.Vers[k], wantVal[k], wantVer[k])
		}
	}
}
