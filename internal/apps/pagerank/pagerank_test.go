package pagerank

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/pthreads"
)

func newRT(t *testing.T, mutate ...func(*core.Config)) *core.Runtime {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.CacheLines = 256
	cfg.Geo.NumServers = 2
	for _, m := range mutate {
		m(&cfg)
	}
	rt, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// The DSM run must equal the sequential plain-Go replay bit for bit:
// same graph, same block ownership, same floating-point order.
func TestPagerankMatchesReference(t *testing.T) {
	const p = 8
	prm := Params{Vertices: 192, AvgDeg: 6, Iters: 3}
	wantSum, wantCS := Reference(p, prm)
	if math.Abs(wantSum-1) > 1e-9 {
		t.Fatalf("reference lost probability mass: sum=%v", wantSum)
	}
	rt := newRT(t)
	defer rt.Close()
	r, err := Run(rt, p, prm)
	if err != nil {
		t.Fatal(err)
	}
	if r.RankSum != wantSum || r.Checksum != wantCS {
		t.Fatalf("DSM run differs from reference: (%v, %v) vs (%v, %v)",
			r.RankSum, r.Checksum, wantSum, wantCS)
	}
	if r.Edges == 0 {
		t.Fatal("degenerate graph")
	}
}

// Bit-identical determinism on the sequenced fabric, and plane/backend
// equality: span vs element vs pthreads all reproduce the reference.
func TestPagerankDeterministicAcrossPlanesAndBackends(t *testing.T) {
	const p = 8
	prm := Params{Vertices: 192, AvgDeg: 6, Iters: 3}
	_, wantCS := Reference(p, prm)
	run := func(spans bool) *Result {
		rt := newRT(t, func(c *core.Config) { c.ServerShards = 4; c.ManagerShards = 4 })
		defer rt.Close()
		pp := prm
		pp.UseSpans = spans
		r, err := Run(rt, p, pp)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := run(false), run(false)
	if r1.Checksum != r2.Checksum {
		t.Fatalf("checksum differs across identical runs: %v vs %v", r1.Checksum, r2.Checksum)
	}
	for i := range r1.Run.Threads {
		if r1.Run.Threads[i] != r2.Run.Threads[i] {
			t.Errorf("thread %d stats differ:\n run1: %+v\n run2: %+v",
				i, r1.Run.Threads[i], r2.Run.Threads[i])
		}
	}
	if rs := run(true); rs.Checksum != wantCS {
		t.Fatalf("span plane differs from reference: %v vs %v", rs.Checksum, wantCS)
	}
	if r1.Checksum != wantCS {
		t.Fatalf("element plane differs from reference: %v vs %v", r1.Checksum, wantCS)
	}
	rp, err := Run(pthreads.New(pthreads.Config{}), p, prm)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Checksum != wantCS {
		t.Fatalf("pthreads differs from reference: %v vs %v", rp.Checksum, wantCS)
	}
}

// The workload must actually be irregular: on a striped multi-server,
// multi-shard layout the prefetcher should be wasting a meaningful
// share of its work (that inefficiency is the point of the kernel).
func TestPagerankIsPrefetchHostile(t *testing.T) {
	rt := newRT(t, func(c *core.Config) {
		c.ServerShards = 4
		c.Geo.NumServers = 4
	})
	defer rt.Close()
	r, err := Run(rt, 8, Params{Vertices: 384, AvgDeg: 8, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	tot := r.Run.Totals()
	if tot.Misses == 0 {
		t.Fatal("no demand faults: the data set fit one line?")
	}
	if tot.PrefetchIssued > 0 {
		waste := float64(tot.PrefetchWasted) / float64(tot.PrefetchIssued)
		t.Logf("prefetch: issued=%d wasted=%d (%.0f%%), misses=%d",
			tot.PrefetchIssued, tot.PrefetchWasted, waste*100, tot.Misses)
	}
}
