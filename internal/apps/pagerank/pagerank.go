// Package pagerank is the irregular-access graph workload: pull-based
// PageRank over a synthetic power-law graph whose every array — CSR
// structure, rank vectors, dangling-mass partials — lives in Samhita
// global memory.
//
// The access pattern is deliberately hostile to the locality machinery
// that serves the regular kernels so well. Each vertex's new rank pulls
// rank[src] for its in-edges, and in a power-law graph those sources
// are scattered across the whole striped rank array: consecutive reads
// land on different cache lines, different memory servers and different
// server shards, so the adjacent-line prefetcher fetches lines the
// thread never touches while the reads it actually issues miss. That
// interaction — striping spreading hot vertices, sharding spreading the
// misses, prefetch amplifying the waste — is what the benchmark point
// measures and the CI gate pins.
//
// Determinism: the graph is a pure function of the parameters (every
// thread derives the identical CSR), each vertex is computed by exactly
// one thread with its in-edge list walked in order, and the dangling
// mass is combined from per-thread partials in thread-index order, so
// every floating-point operation has a fixed order. Clean runs are
// bit-identical, the element and span data planes agree bit for bit,
// and the whole run equals a sequential replay (see Reference).
package pagerank

import (
	"sync/atomic"

	"repro/internal/stats"
	"repro/internal/vm"
)

// Params parameterizes one PageRank run.
type Params struct {
	Vertices int     // graph order (default 192)
	AvgDeg   int     // mean out-degree of non-dangling vertices (default 6)
	Iters    int     // power iterations (default 3)
	Damping  float64 // damping factor d (default 0.85)
	// UseSpans moves the sequential plane — CSR scans, next-rank write-
	// back, partial combines — onto the bulk span accessors. The random
	// rank[src] reads stay element accesses either way: they are the
	// irregular part no span can batch.
	UseSpans bool
	Seed     uint64
}

func (p Params) WithDefaults() Params {
	if p.Vertices == 0 {
		p.Vertices = 192
	}
	if p.AvgDeg == 0 {
		p.AvgDeg = 6
	}
	if p.Iters == 0 {
		p.Iters = 3
	}
	if p.Damping == 0 {
		p.Damping = 0.85
	}
	if p.Seed == 0 {
		p.Seed = 0xB0BA
	}
	return p
}

// Result is the outcome of one PageRank run.
type Result struct {
	Run *stats.Run
	// RankSum is the sum of all final ranks; PageRank conserves
	// probability mass, so it stays 1 up to floating-point drift.
	RankSum float64
	// Checksum is sum over v of rank[v]*(v+1): an order-sensitive
	// fingerprint of the full rank vector.
	Checksum float64
	Edges    int
}

func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// graph is the synthetic power-law graph in pull (in-edge CSR) form: a
// pure function of the parameters.
type graph struct {
	outdeg []int
	inoff  []int // len V+1
	insrc  []int // len E, in-edge sources of each vertex, ascending offsets
}

// buildGraph generates the graph: vertex v emits outdeg(v) edges, each
// aimed at floor(V * u^3) for uniform u — a cubic skew that concentrates
// in-edges on low-numbered hub vertices (a power-law-tailed in-degree).
// Every 16th vertex is dangling (no out-edges), so the dangling-mass
// path is always exercised.
func buildGraph(prm Params) *graph {
	V := prm.Vertices
	g := &graph{outdeg: make([]int, V), inoff: make([]int, V+1)}
	ins := make([][]int, V)
	for v := 0; v < V; v++ {
		if v%16 == 3 {
			continue // dangling
		}
		d := 1 + int(mix64(prm.Seed^uint64(v))%uint64(2*prm.AvgDeg-1))
		g.outdeg[v] = d
		for e := 0; e < d; e++ {
			u := float64(mix64(prm.Seed^uint64(v)<<20^uint64(e))%(1<<30)) / float64(1<<30)
			dst := int(u * u * u * float64(V))
			if dst >= V {
				dst = V - 1
			}
			ins[dst] = append(ins[dst], v)
		}
	}
	for v := 0; v < V; v++ {
		g.inoff[v] = len(g.insrc)
		g.insrc = append(g.insrc, ins[v]...)
	}
	g.inoff[V] = len(g.insrc)
	return g
}

// vertexRange is thread t's owned block [lo, hi).
func vertexRange(v, p, t int) (int, int) {
	per := (v + p - 1) / p
	lo := t * per
	hi := lo + per
	if lo > v {
		lo = v
	}
	if hi > v {
		hi = v
	}
	return lo, hi
}

type base struct{ v atomic.Uint64 }

func (b *base) set(a vm.Addr) { b.v.Store(uint64(a)) }
func (b *base) get() vm.Addr  { return vm.Addr(b.v.Load()) }

// Run executes PageRank on p threads of the given backend.
func Run(v vm.VM, p int, prm Params) (*Result, error) {
	prm = prm.WithDefaults()
	g := buildGraph(prm)
	V, E := prm.Vertices, len(g.insrc)
	bar := v.NewBarrier(p)
	var b base
	results := make([]float64, 2)

	// One allocation, laid out as consecutive float64 arrays:
	//   outdeg[V] | inoff[V+1] | insrc[E] | rank[2][V] | partial[p]
	oOutdeg := 0
	oInoff := oOutdeg + V
	oInsrc := oInoff + V + 1
	oRank0 := oInsrc + E
	oRank1 := oRank0 + V
	oPart := oRank1 + V
	total := oPart + p

	run, err := v.Run(p, func(t vm.Thread) {
		if t.ID() == 0 {
			b.set(t.GlobalAlloc(8 * total))
		}
		bar.Wait(t)
		arr := vm.F64{Base: b.get()}
		write := func(off int, vals []float64) {
			if prm.UseSpans {
				t.WriteFloat64s(arr.Addr(off), vals)
			} else {
				for i, x := range vals {
					arr.Set(t, off+i, x)
				}
			}
		}
		read := func(off int, dst []float64) {
			if prm.UseSpans {
				t.ReadFloat64s(arr.Addr(off), dst)
			} else {
				for i := range dst {
					dst[i] = arr.At(t, off+i)
				}
			}
		}

		// --- Seed phase: thread 0 publishes the CSR; everyone seeds the
		// uniform initial rank over its own block.
		if t.ID() == 0 {
			fl := make([]float64, E+2*V+1)
			for i, d := range g.outdeg {
				fl[i] = float64(d)
			}
			for i, o := range g.inoff {
				fl[V+i] = float64(o)
			}
			for i, s := range g.insrc {
				fl[V+V+1+i] = float64(s)
			}
			write(oOutdeg, fl[:E+2*V+1])
		}
		lo, hi := vertexRange(V, p, t.ID())
		init := make([]float64, hi-lo)
		for i := range init {
			init[i] = 1.0 / float64(V)
		}
		if hi > lo {
			write(oRank0+lo, init)
		}
		bar.Wait(t)

		// Cache the thread's slice of the CSR locally: structure is
		// immutable during iteration, so each thread pulls it once
		// (through the DSM, paying the fetches) and iterates from the
		// local copy — the ranks are what stays shared and hot.
		myOutdeg := make([]float64, V) // outdeg of every possible src
		read(oOutdeg, myOutdeg)
		myOff := make([]float64, hi-lo+1)
		if hi > lo {
			read(oInoff+lo, myOff)
		}
		var mySrc []float64
		if hi > lo {
			elo, ehi := int(myOff[0]), int(myOff[hi-lo])
			mySrc = make([]float64, ehi-elo)
			if ehi > elo {
				read(oInsrc+elo, mySrc)
			}
		}
		bar.Wait(t)
		t.ResetMeasurement()

		// --- The measured power iteration.
		d := prm.Damping
		next := make([]float64, hi-lo)
		parts := make([]float64, p)
		for it := 0; it < prm.Iters; it++ {
			cur, nxt := oRank0, oRank1
			if it%2 == 1 {
				cur, nxt = oRank1, oRank0
			}
			// Dangling partial over the owned block.
			var dang float64
			for vtx := lo; vtx < hi; vtx++ {
				if myOutdeg[vtx] == 0 {
					dang += arr.At(t, cur+vtx)
				}
			}
			if prm.UseSpans {
				t.WriteFloat64s(arr.Addr(oPart+t.ID()), []float64{dang})
			} else {
				arr.Set(t, oPart+t.ID(), dang)
			}
			bar.Wait(t)
			// Combine partials in index order: same FP order on every
			// thread, and the same order Reference uses.
			read(oPart, parts)
			dang = 0
			for _, x := range parts {
				dang += x
			}
			t.Compute(p)
			base := (1-d)/float64(V) + d*dang/float64(V)
			// Pull phase: the irregular reads.
			eoff := 0
			for vtx := lo; vtx < hi; vtx++ {
				sum := 0.0
				ne := int(myOff[vtx-lo+1]) - int(myOff[vtx-lo])
				for e := 0; e < ne; e++ {
					src := int(mySrc[eoff+e])
					sum += arr.At(t, cur+src) / myOutdeg[src]
				}
				eoff += ne
				next[vtx-lo] = base + d*sum
				t.Compute(2*ne + 3)
			}
			if hi > lo {
				write(nxt+lo, next)
			}
			bar.Wait(t)
		}
		t.StopMeasurement()
		if t.ID() == 0 {
			final := oRank0
			if prm.Iters%2 == 1 {
				final = oRank1
			}
			ranks := make([]float64, V)
			read(final, ranks)
			var sum, cs float64
			for i, r := range ranks {
				sum += r
				cs += r * float64(i+1)
			}
			results[0], results[1] = sum, cs
		}
	})
	if err != nil {
		return nil, err
	}
	return &Result{Run: run, RankSum: results[0], Checksum: results[1], Edges: E}, nil
}

// Reference replays the identical computation sequentially in plain Go
// memory — same graph, same block ownership, same floating-point
// order — and returns the RankSum/Checksum the DSM run must reproduce
// bit for bit.
func Reference(p int, prm Params) (rankSum, checksum float64) {
	prm = prm.WithDefaults()
	g := buildGraph(prm)
	V := prm.Vertices
	d := prm.Damping
	cur := make([]float64, V)
	nxt := make([]float64, V)
	for i := range cur {
		cur[i] = 1.0 / float64(V)
	}
	for it := 0; it < prm.Iters; it++ {
		parts := make([]float64, p)
		for t := 0; t < p; t++ {
			lo, hi := vertexRange(V, p, t)
			for vtx := lo; vtx < hi; vtx++ {
				if g.outdeg[vtx] == 0 {
					parts[t] += cur[vtx]
				}
			}
		}
		var dang float64
		for _, x := range parts {
			dang += x
		}
		base := (1-d)/float64(V) + d*dang/float64(V)
		for t := 0; t < p; t++ {
			lo, hi := vertexRange(V, p, t)
			for vtx := lo; vtx < hi; vtx++ {
				sum := 0.0
				for e := g.inoff[vtx]; e < g.inoff[vtx+1]; e++ {
					src := g.insrc[e]
					sum += cur[src] / float64(g.outdeg[src])
				}
				nxt[vtx] = base + d*sum
			}
		}
		cur, nxt = nxt, cur
	}
	for i, r := range cur {
		rankSum += r
		checksum += r * float64(i+1)
	}
	return rankSum, checksum
}
