package forkstorm

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/pthreads"
	"repro/internal/vm"
)

func newRT(t *testing.T, mutate ...func(*core.Config)) *core.Runtime {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.CacheLines = 256
	cfg.Geo.NumServers = 4
	cfg.ServerShards = 2
	cfg.StripeMin = 4096 // small images still stripe in tests
	for _, m := range mutate {
		m(&cfg)
	}
	rt, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

var quick = Params{ImageBytes: 64 << 10, Forks: 24, ReadsPerFork: 3, WritesPerFork: 1}

// The storm itself is the correctness check: every fork read verifies
// the sealed value bit for bit while the parent concurrently dirties
// the original image, and every fork write is read back. Run() already
// panics on any violation, so a clean run plus the counters is the
// assertion. The CoW point: a fork's p99 must undercut the eager-copy
// cold start.
func TestForkStormSealedReadsAndColdStart(t *testing.T) {
	rt := newRT(t)
	defer rt.Close()
	res, err := Run(rt, 4, quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Forks != int64(quick.Forks) || res.Errors != 0 {
		t.Fatalf("forks=%d errors=%d, want %d/0", res.Forks, res.Errors, quick.Forks)
	}
	if res.ColdStartNs == 0 || res.P99 == 0 {
		t.Fatalf("degenerate measurements: cold=%d p99=%d", res.ColdStartNs, res.P99)
	}
	if res.P99 >= 2*res.ColdStartNs {
		t.Fatalf("fork p99 %d !< 2x cold start %d — copy-on-write is not paying off", res.P99, res.ColdStartNs)
	}
	ts := rt.TierStats()
	if ts.SealedPages.Load() == 0 {
		t.Fatal("no pages sealed")
	}
	if ts.SnapshotRefs.Load() == 0 {
		t.Fatal("no fork ranges registered")
	}
	if ts.CoWBreaks.Load() == 0 {
		t.Fatal("fork writes caused no copy-on-write breaks")
	}
}

// Bit-identical determinism on the sequenced fabric.
func TestForkStormDeterministic(t *testing.T) {
	run := func() *Result {
		rt := newRT(t)
		defer rt.Close()
		res, err := Run(rt, 4, quick)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.P50 != r2.P50 || r1.P99 != r2.P99 || r1.ColdStartNs != r2.ColdStartNs {
		t.Fatalf("quantiles differ across identical runs: (%d,%d,%d) vs (%d,%d,%d)",
			r1.P50, r1.P99, r1.ColdStartNs, r2.P50, r2.P99, r2.ColdStartNs)
	}
	for i := range r1.Run.Threads {
		if r1.Run.Threads[i] != r2.Run.Threads[i] {
			t.Errorf("thread %d stats differ", i)
		}
	}
}

// The storm under a tight hot budget: the tier demotes pages mid-run and
// every verification still passes (the tier is invisible to the data
// plane).
func TestForkStormTiered(t *testing.T) {
	rt := newRT(t, func(c *core.Config) { c.HotBytes = 32 << 10 })
	defer rt.Close()
	res, err := Run(rt, 4, quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Forks != int64(quick.Forks) || res.Errors != 0 {
		t.Fatalf("tiered storm: forks=%d errors=%d", res.Forks, res.Errors)
	}
	ts := rt.TierStats()
	if ts.Demotions.Load() == 0 {
		t.Fatal("tight hot budget caused no demotions")
	}
	if ts.HotHits.Load() == 0 {
		t.Fatal("no hot hits recorded")
	}
}

// The baseline backend implements the same verbs with an eager copy.
func TestForkStormPthreads(t *testing.T) {
	res, err := Run(pthreads.New(pthreads.Config{}), 4, quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Forks != int64(quick.Forks) || res.Errors != 0 {
		t.Fatalf("pthreads storm: forks=%d errors=%d", res.Forks, res.Errors)
	}
}

// Freeing a fork must unmap it at the homes before the striped space
// is recycled: a later allocation reusing the range reads zeros — not
// the dead fork's CoW pages, not the sealed snapshot frames — and the
// snapshot itself survives for further forks. The full teardown then
// reclaims every sealed frame and range registration.
func TestForkFreeReuse(t *testing.T) {
	runForkFreeReuse(t, newRT(t))
}

// The same lifecycle on an unsequenced fabric: shard workers run as real
// goroutines there, so the unmap purge goes through the shard queues and
// the ack join instead of inline dispatch.
func TestForkFreeReuseUnsequenced(t *testing.T) {
	runForkFreeReuse(t, newRT(t, func(c *core.Config) {
		c.Faults = faultnet.New(faultnet.Config{Seed: 11}) // no kills: just an unsequenced fabric
	}))
}

func runForkFreeReuse(t *testing.T, rt *core.Runtime) {
	defer rt.Close()
	const n = 32 << 10
	elems := n / 8
	_, err := rt.Run(1, func(th vm.Thread) {
		base := th.GlobalAlloc(n)
		img := vm.F64{Base: base}
		for j := 0; j < elems; j++ {
			img.Set(th, j, sealedVal(3, j))
		}
		snap := th.SnapshotAS(base, n)

		forkA := th.ForkAS(snap)
		a := vm.F64{Base: forkA}
		if got := a.At(th, 5); got != sealedVal(3, 5) {
			t.Errorf("fork A element 5 = %v, want sealed %v", got, sealedVal(3, 5))
		}
		// CoW-break a few pages so the homes hold private fork pages too.
		for j := 0; j < elems; j += 512 {
			a.Set(th, j, 424242)
		}
		th.Free(forkA)

		// First-fit reuse of the freed striped range: every byte must read
		// as zero — neither fork A's private writes nor the sealed frames
		// may bleed through the recycled addresses.
		reuse := th.GlobalAlloc(n)
		if reuse != forkA {
			t.Errorf("allocator did not reuse the freed fork range (%#x vs %#x); reuse check weakened", uint64(reuse), uint64(forkA))
		}
		r := vm.F64{Base: reuse}
		for j := 0; j < elems; j++ {
			if got := r.At(th, j); got != 0 {
				t.Errorf("recycled element %d = %v, want 0", j, got)
				break
			}
		}

		// The snapshot is still forkable after one fork died.
		forkB := th.ForkAS(snap)
		b := vm.F64{Base: forkB}
		for j := 0; j < elems; j += 97 {
			if got := b.At(th, j); got != sealedVal(3, j) {
				t.Errorf("post-free fork B element %d = %v, want sealed %v", j, got, sealedVal(3, j))
				break
			}
		}

		// Full teardown: the last fork and the original image go away,
		// releasing the snapshot record and its sealed frames everywhere.
		th.Free(forkB)
		th.Free(base)
		th.Free(reuse)
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := rt.TierStats()
	if got := ts.SealedPages.Load(); got != 0 {
		t.Errorf("SealedPages = %d after full teardown, want 0 (server-side frame leak)", got)
	}
	if got := ts.SnapshotRefs.Load(); got != 0 {
		t.Errorf("SnapshotRefs = %d after full teardown, want 0 (fork range leak)", got)
	}
}

// Snapshotting a fork whose pages were never CoW-broken must seal the
// inherited parent image, not implicit zeros: forks of the nested
// snapshot read the original sealed values, and writes through them
// stay private.
func TestSnapshotOfUnbrokenFork(t *testing.T) {
	rt := newRT(t)
	defer rt.Close()
	const n = 32 << 10
	elems := n / 8
	_, err := rt.Run(1, func(th vm.Thread) {
		base := th.GlobalAlloc(n)
		img := vm.F64{Base: base}
		for j := 0; j < elems; j++ {
			img.Set(th, j, sealedVal(5, j))
		}
		snap1 := th.SnapshotAS(base, n)
		// Fork F is snapshotted untouched: no read, no write, so not one
		// of its pages exists on the homes when the seal runs.
		forkF := th.ForkAS(snap1)
		snap2 := th.SnapshotAS(forkF, n)
		// Dirty F completely AFTER the nested seal; G must not see it.
		f := vm.F64{Base: forkF}
		for j := 0; j < elems; j++ {
			f.Set(th, j, -7)
		}
		forkG := th.ForkAS(snap2)
		g := vm.F64{Base: forkG}
		for j := 0; j < elems; j++ {
			if got := g.At(th, j); got != sealedVal(5, j) {
				t.Errorf("nested fork G element %d = %v, want inherited sealed %v", j, got, sealedVal(5, j))
				break
			}
		}
		// Writes through G stay private to G: a sibling fork of snap2
		// still reads the inherited image.
		for j := 0; j < elems; j += 256 {
			g.Set(th, j, 999)
		}
		forkH := th.ForkAS(snap2)
		h := vm.F64{Base: forkH}
		for j := 0; j < elems; j += 128 {
			if got := h.At(th, j); got != sealedVal(5, j) {
				t.Errorf("sibling fork H element %d = %v, want inherited sealed %v", j, got, sealedVal(5, j))
				break
			}
		}
		// Teardown in dependency order; every record and frame must go.
		th.Free(forkG)
		th.Free(forkH)
		th.Free(forkF)
		th.Free(base)
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := rt.TierStats()
	if got := ts.SealedPages.Load(); got != 0 {
		t.Errorf("SealedPages = %d after teardown, want 0", got)
	}
	if got := ts.SnapshotRefs.Load(); got != 0 {
		t.Errorf("SnapshotRefs = %d after teardown, want 0", got)
	}
}

// Fork linearizability, checked exhaustively rather than by sampled
// reads: the child must see the sealed image exactly — element for
// element — and neither parent writes after the seal nor another fork's
// writes may ever appear through it.
func TestForkLinearizability(t *testing.T) {
	rt := newRT(t)
	defer rt.Close()
	const bytes = 32 << 10
	elems := bytes / 8
	bar := rt.NewBarrier(2)
	var imgBase, snapID shared
	_, err := rt.Run(2, func(th vm.Thread) {
		if th.ID() == 0 {
			base := th.GlobalAlloc(bytes)
			img := vm.F64{Base: base}
			for j := 0; j < elems; j++ {
				img.Set(th, j, sealedVal(7, j))
			}
			imgBase.set(uint64(base))
			snapID.set(th.SnapshotAS(base, bytes))
			bar.Wait(th)
			// Parent dirties EVERY element after the seal.
			for j := 0; j < elems; j++ {
				img.Set(th, j, -1)
			}
			bar.Wait(th) // child forks after this point
			bar.Wait(th)
			return
		}
		bar.Wait(th)
		bar.Wait(th)
		// Two forks taken after the parent dirtied everything.
		a := vm.F64{Base: th.ForkAS(snapID.get())}
		b := vm.F64{Base: th.ForkAS(snapID.get())}
		for j := 0; j < elems; j++ {
			if got := a.At(th, j); got != sealedVal(7, j) {
				t.Errorf("fork A element %d = %v, want sealed %v", j, got, sealedVal(7, j))
				break
			}
		}
		// Writes to fork A must not surface through fork B.
		for j := 0; j < elems; j += 64 {
			a.Set(th, j, 12345)
		}
		for j := 0; j < elems; j++ {
			want := sealedVal(7, j)
			if got := b.At(th, j); got != want {
				t.Errorf("fork B element %d = %v, want sealed %v (leak from fork A?)", j, got, want)
				break
			}
		}
		bar.Wait(th)
	})
	if err != nil {
		t.Fatal(err)
	}
}
