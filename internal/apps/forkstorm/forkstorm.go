// Package forkstorm is the copy-on-write serving workload: one warmed
// striped image is sealed into an address-space snapshot, then every
// client thread materializes thousands of short-lived forks of it and
// touches each one — the "many cheap clones of one warm state" pattern
// (think per-request forks of a loaded model or a seeded database).
//
// The measured quantity per fork is fork-to-first-op latency: from just
// before ForkAS to the completion of the first verified read through
// the fork. The baseline it is judged against is the unforked cold
// start — what a client would do WITHOUT copy-on-write forks: allocate
// a fresh range, stream the whole image through the DSM into it, and
// perform the same first op. A fork never moves the image's bytes
// (sealed frames are served in place, private pages materialize only on
// first write), so its latency should sit well under the eager copy.
//
// Correctness contract, checked on every fork:
//   - every read through a fork sees the SEALED image values, even
//     though the parent keeps mutating the original image during the
//     storm (parent writes after the snapshot must never leak in);
//   - a fork's own writes are visible to its reader (copy-on-write
//     privacy), and never visible through any other fork.
package forkstorm

import (
	"fmt"
	"sync/atomic"

	"repro/internal/bench/quantile"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/vtime"
)

// Params parameterizes one fork-storm run.
type Params struct {
	// ImageBytes is the warmed image's size (default 1 MiB — at the
	// striping threshold, so the image spreads across the servers).
	ImageBytes int
	// Forks is the total number of forks across all threads (default 64).
	Forks int
	// ReadsPerFork is the number of verified reads through each fork;
	// the first one closes the fork-to-first-op latency (default 4).
	ReadsPerFork int
	// WritesPerFork is the number of private writes each fork performs
	// after its reads, exercising the copy-on-write break (default 1).
	WritesPerFork int
	// Alpha is the latency sketch's relative accuracy.
	Alpha float64
	// Recover converts a panicking fork iteration (faults the retry and
	// failover machinery could not mask) into a counted error instead of
	// killing the run — the chaos smoke's bounded-error discipline.
	Recover bool
	Seed    uint64
}

func (p Params) WithDefaults() Params {
	if p.ImageBytes == 0 {
		p.ImageBytes = 1 << 20
	}
	if p.Forks == 0 {
		p.Forks = 64
	}
	if p.ReadsPerFork == 0 {
		p.ReadsPerFork = 4
	}
	if p.WritesPerFork == 0 {
		p.WritesPerFork = 1
	}
	if p.Alpha == 0 {
		p.Alpha = quantile.DefaultAlpha
	}
	if p.Seed == 0 {
		p.Seed = 0xF04C5
	}
	return p
}

// Result is the outcome of one fork-storm run.
type Result struct {
	Run *stats.Run

	Forks  int64 // forks completed with all checks passing
	Errors int64 // fork iterations turned into errors (Recover mode)

	// Fork-to-first-op latency quantiles across all completed forks.
	Sketch         *quantile.Sketch
	P50, P99, P999 vtime.Time
	MaxLatency     vtime.Time

	// ColdStartNs is the unforked baseline: allocate a fresh range,
	// stream the whole image into it through the DSM, perform the same
	// first op. Measured once, by the last thread (cold cache).
	ColdStartNs vtime.Time
}

// mix64 is splitmix64's finalizer (same stream generator the KV
// workload uses).
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// sealedVal is image element j's value at seal time: a deterministic
// exact integer, so sealed-vs-dirtied reads are distinguishable bit for
// bit.
func sealedVal(seed uint64, j int) float64 {
	return float64(mix64(seed+uint64(j)) % (1 << 40))
}

type shared struct{ v atomic.Uint64 }

func (b *shared) set(x uint64) { b.v.Store(x) }
func (b *shared) get() uint64  { return b.v.Load() }

// Run executes the fork storm on p client threads.
func Run(v vm.VM, p int, prm Params) (*Result, error) {
	prm = prm.WithDefaults()
	elems := prm.ImageBytes / 8
	bar := v.NewBarrier(p)

	var imageBase, snapID shared
	var coldStart shared
	sketches := make([]*quantile.Sketch, p)
	counts := make([]struct{ forks, errs int64 }, p)

	chunk := 4096 // elements per span transfer
	run, err := v.Run(p, func(t vm.Thread) {
		buf := make([]float64, chunk)

		// --- Warm phase: thread 0 builds and publishes the image.
		if t.ID() == 0 {
			base := t.GlobalAlloc(prm.ImageBytes)
			for j := 0; j < elems; j += chunk {
				n := min(chunk, elems-j)
				for i := 0; i < n; i++ {
					buf[i] = sealedVal(prm.Seed, j+i)
				}
				t.WriteFloat64s(base+vm.Addr(8*j), buf[:n])
			}
			imageBase.set(uint64(base))
		}
		bar.Wait(t)
		img := vm.F64{Base: vm.Addr(imageBase.get())}

		// --- Seal: thread 0 snapshots the image.
		if t.ID() == 0 {
			snapID.set(t.SnapshotAS(img.Base, prm.ImageBytes))
		}
		bar.Wait(t)
		snap := snapID.get()

		// --- Cold-start baseline: the last thread (cold cache on the
		// image) does what a client without ForkAS would do — allocate,
		// stream the image across, first op.
		if t.ID() == p-1 {
			t0 := t.Clock()
			eager := t.GlobalAlloc(prm.ImageBytes)
			for j := 0; j < elems; j += chunk {
				n := min(chunk, elems-j)
				t.ReadFloat64s(img.Addr(j), buf[:n])
				t.WriteFloat64s(eager+vm.Addr(8*j), buf[:n])
			}
			probe := int(mix64(prm.Seed^0xC01d) % uint64(elems))
			got := vm.F64{Base: eager}.At(t, probe)
			if want := sealedVal(prm.Seed, probe); got != want {
				panic(fmt.Sprintf("forkstorm: cold-start copy element %d = %v, want %v", probe, got, want))
			}
			coldStart.set(uint64(t.Clock() - t0))
			// The eager copy is deliberately never freed: keeping the
			// measured phase free of teardown traffic pins the recorded
			// benchmark points. (Freeing forked ranges is safe — the
			// two-phase free unmaps them at the homes before the striped
			// space is recycled; see TestForkFreeReuse.)
		}
		bar.Wait(t)

		// --- Dirty phase: the parent keeps mutating the original image
		// AFTER the seal. Every fork read below must still see the sealed
		// values — a leak shows up as a bit-exact mismatch.
		if t.ID() == 0 {
			for j := 0; j < elems; j += chunk {
				n := min(chunk, elems-j)
				for i := 0; i < n; i++ {
					buf[i] = sealedVal(prm.Seed, j+i) + 1
				}
				t.WriteFloat64s(img.Addr(j), buf[:n])
			}
		}
		bar.Wait(t)
		t.ResetMeasurement()

		// --- The storm: forks round-robin across threads.
		sk := quantile.New(prm.Alpha)
		me := &counts[t.ID()]
		myForks := prm.Forks / p
		if t.ID() < prm.Forks%p {
			myForks++
		}
		oneFork := func(f int) {
			seq := mix64(prm.Seed ^ uint64(t.ID())<<32 ^ uint64(f))
			t0 := t.Clock()
			fork := vm.F64{Base: t.ForkAS(snap)}
			var lat vtime.Time
			for r := 0; r < prm.ReadsPerFork; r++ {
				j := int(mix64(seq+uint64(r)) % uint64(elems))
				got := fork.At(t, j)
				if r == 0 {
					lat = t.Clock() - t0
				}
				if want := sealedVal(prm.Seed, j); got != want {
					panic(fmt.Sprintf("forkstorm: thread %d fork %d read element %d = %v, want sealed %v",
						t.ID(), f, j, got, want))
				}
			}
			for w := 0; w < prm.WritesPerFork; w++ {
				j := int(mix64(seq+0x77+uint64(w)) % uint64(elems))
				priv := float64(mix64(seq+uint64(w)) % (1 << 40))
				fork.Set(t, j, priv)
				if got := fork.At(t, j); got != priv {
					panic(fmt.Sprintf("forkstorm: thread %d fork %d lost its own write to element %d", t.ID(), f, j))
				}
			}
			sk.Add(int64(lat))
			me.forks++
		}
		for f := 0; f < myForks; f++ {
			if prm.Recover {
				func() {
					defer func() {
						if r := recover(); r != nil {
							me.errs++
						}
					}()
					oneFork(f)
				}()
			} else {
				oneFork(f)
			}
		}
		t.StopMeasurement()
		sketches[t.ID()] = sk
		bar.Wait(t)
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Run: run, ColdStartNs: vtime.Time(coldStart.get())}
	merged := quantile.New(prm.Alpha)
	for i := 0; i < p; i++ {
		if sketches[i] != nil {
			merged.Merge(sketches[i])
		}
		res.Forks += counts[i].forks
		res.Errors += counts[i].errs
	}
	res.Sketch = merged
	if merged.Count() > 0 {
		res.P50 = vtime.Time(merged.Quantile(0.50))
		res.P99 = vtime.Time(merged.Quantile(0.99))
		res.P999 = vtime.Time(merged.Quantile(0.999))
		res.MaxLatency = vtime.Time(merged.Max())
	}
	return res, nil
}
