package kernels

import (
	"math"
	"sync/atomic"

	"repro/internal/stats"
	"repro/internal/vm"
)

// MDParams parameterizes the molecular dynamics kernel (Section III,
// Figure 13): a simple n-body simulation integrated with the velocity
// Verlet method, modelled on the OmpSCR md code. Computing the forces
// on one particle reads every other particle's position, so the work
// per particle is O(n) — the computational intensity that lets the
// paper's Samhita runs scale to 32 cores.
type MDParams struct {
	// NParticles is the number of particles.
	NParticles int
	// Steps is the number of Verlet time steps.
	Steps int
	// Dt is the integration step.
	Dt float64
	// Mass is the particle mass.
	Mass float64
	// UseSpans moves the per-thread array slices through the bulk span
	// accessors instead of per-element byte moves.
	UseSpans bool
}

// DefaultMDParams sizes the simulation for quick runs.
func DefaultMDParams() MDParams {
	return MDParams{NParticles: 256, Steps: 5, Dt: 1e-4, Mass: 1.0}
}

// MDResult reports the outcome.
type MDResult struct {
	// Potential and Kinetic are the mutex-protected energy accumulators
	// after the final step.
	Potential float64
	Kinetic   float64
	// Checksum sums the final positions for cross-backend verification.
	Checksum float64
	// Run carries per-thread measurements.
	Run *stats.Run
}

const mdDims = 3

// RunMD executes the kernel on p threads.
//
// Layout: position, velocity, acceleration and force arrays of
// NParticles x 3 doubles live in one large shared allocation. Particles
// are block-partitioned. Each step: (1) update owned positions,
// velocities and accelerations from the previous forces — barrier —
// (2) compute forces on owned particles reading all positions, and add
// the step's potential and kinetic contributions to globals under a
// mutex — barrier — (3) proceed to the next step after a third barrier,
// matching the paper's three barrier operations per outer iteration.
//
// The interparticle potential is the OmpSCR md one: v(d) = sin^2(min(d,
// pi/2)), giving bounded forces without cutoff logic.
func RunMD(v vm.VM, p int, prm MDParams) (*MDResult, error) {
	if prm.NParticles == 0 {
		prm = DefaultMDParams()
	}
	n := prm.NParticles
	vecBytes := n * mdDims * 8

	mu := v.NewMutex()
	bar := v.NewBarrier(p)
	var base, energyBase atomic.Uint64
	var out MDResult

	run, err := v.Run(p, func(t vm.Thread) {
		if t.ID() == 0 {
			base.Store(uint64(t.GlobalAlloc(4 * vecBytes)))
			energyBase.Store(uint64(t.GlobalAlloc(16)))
		}
		bar.Wait(t)
		b := vm.Addr(base.Load())
		pos := b
		vel := b + vm.Addr(vecBytes)
		acc := b + vm.Addr(2*vecBytes)
		force := b + vm.Addr(3*vecBytes)
		energy := vm.F64{Base: vm.Addr(energyBase.Load())} // [potential, kinetic]

		lo, hi := blockRange(n, p, t.ID())
		own := hi - lo
		coordAddr := func(arr vm.Addr, i int) vm.Addr { return arr + vm.Addr(i*mdDims*8) }

		newBuf := newRowBuf
		if prm.UseSpans {
			newBuf = newSpanRowBuf
		}

		// Deterministic initial positions on a jittered lattice;
		// velocities and accelerations start at zero.
		initBuf := newBuf(mdDims)
		coords := make([]float64, mdDims)
		for i := lo; i < hi; i++ {
			lcg := uint64(i)*6364136223846793005 + 1442695040888963407
			for d := 0; d < mdDims; d++ {
				lcg = lcg*6364136223846793005 + 1442695040888963407
				coords[d] = float64(i%17)*0.5 + float64(d) + float64(lcg>>40)*1e-6
			}
			initBuf.store(t, coordAddr(pos, i), coords)
		}
		// Touch the owned slices of the other arrays too, so the timed
		// region starts warm (see the Jacobi kernel).
		zero := make([]float64, own*mdDims)
		warm := newBuf(own * mdDims)
		for _, arr := range []vm.Addr{vel, acc, force} {
			warm.store(t, coordAddr(arr, lo), zero)
		}
		bar.Wait(t)
		t.ResetMeasurement()

		// Scratch copies of whole arrays for the force pass.
		allPos := newBuf(n * mdDims)
		ownBuf := newBuf(own * mdDims)
		velBuf := newBuf(own * mdDims)
		accBuf := newBuf(own * mdDims)
		forceBuf := newBuf(own * mdDims)

		for step := 0; step < prm.Steps; step++ {
			if step > 0 {
				// (1) Velocity Verlet update of owned particles.
				ps := ownBuf.load(t, coordAddr(pos, lo), own*mdDims)
				vs := velBuf.load(t, coordAddr(vel, lo), own*mdDims)
				as := accBuf.load(t, coordAddr(acc, lo), own*mdDims)
				fs := forceBuf.load(t, coordAddr(force, lo), own*mdDims)
				for i := range ps {
					f := fs[i]
					ps[i] += prm.Dt*vs[i] + 0.5*prm.Dt*prm.Dt*as[i]
					vs[i] += 0.5 * prm.Dt * (f/prm.Mass + as[i])
					as[i] = f / prm.Mass
				}
				t.Compute(12 * own * mdDims)
				ownBuf.store(t, coordAddr(pos, lo), ps)
				velBuf.store(t, coordAddr(vel, lo), vs)
				accBuf.store(t, coordAddr(acc, lo), as)
			}
			bar.Wait(t)

			// (2) Force computation: O(n) per owned particle.
			all := allPos.load(t, pos, n*mdDims)
			fs := make([]float64, own*mdDims)
			localPot := 0.0
			for i := lo; i < hi; i++ {
				for j := 0; j < n; j++ {
					if j == i {
						continue
					}
					var d2 float64
					var delta [mdDims]float64
					for d := 0; d < mdDims; d++ {
						delta[d] = all[i*mdDims+d] - all[j*mdDims+d]
						d2 += delta[d] * delta[d]
					}
					dist := math.Sqrt(d2)
					dTrunc := dist
					if dTrunc > math.Pi/2 {
						dTrunc = math.Pi / 2
					}
					sin, cos := math.Sincos(dTrunc)
					localPot += 0.5 * sin * sin
					dv := -2 * sin * cos // d/dx of sin^2 at the truncated distance
					for d := 0; d < mdDims; d++ {
						fs[(i-lo)*mdDims+d] -= delta[d] / dist * dv
					}
				}
			}
			t.Compute(14 * own * n)
			ownBuf.store(t, coordAddr(force, lo), fs)

			// Kinetic energy of owned particles.
			vs := velBuf.load(t, coordAddr(vel, lo), own*mdDims)
			localKin := 0.0
			for _, vv := range vs {
				localKin += vv * vv
			}
			localKin *= 0.5 * prm.Mass
			t.Compute(2*own*mdDims + 1)

			// The energy accumulators integrate over all steps; every
			// thread adds exactly once per step under the mutex.
			mu.Lock(t)
			energy.Add(t, 0, localPot)
			energy.Add(t, 1, localKin)
			mu.Unlock(t)
			bar.Wait(t)
			bar.Wait(t) // third barrier of the step (velocity half-kick sync)
		}
		t.StopMeasurement()

		if t.ID() == 0 {
			out.Potential = energy.At(t, 0)
			out.Kinetic = energy.At(t, 1)
			sum := 0.0
			all := allPos.load(t, pos, n*mdDims)
			for _, x := range all {
				sum += x
			}
			out.Checksum = sum
		}
	})
	if err != nil {
		return nil, err
	}
	out.Run = run
	return &out, nil
}
