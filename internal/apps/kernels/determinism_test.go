package kernels

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/scl"
	"repro/internal/stats"
)

// The clean-simulation leg of the determinism regression: the strided
// micro kernel run twice on identical configurations must produce
// bit-identical virtual times and event counters in every thread. The
// simulated fabric sequences message delivery by virtual arrival time
// (simnet.Sequencer), so any reappearance of real-scheduling
// sensitivity — a map-order fan-out, a racy clock fold, an unsequenced
// wakeup — shows up here as a counter or time mismatch.
func TestMicroDeterministicOnSimFabric(t *testing.T) {
	// The sharded variants exercise the dispatcher split/join paths: on
	// a sequenced fabric shard items run inline on the dispatcher (see
	// memserver and manager package docs), so determinism must survive
	// requests being split across per-shard calendars and rejoined —
	// page shards on the servers, lock/barrier homes on the manager
	// (which also switch the lock path to peer-to-peer handoff).
	//
	// The program result must not depend on sharding at all: every
	// configuration's GSum is checked against the unsharded baseline.
	var baseGSum float64
	for _, sh := range []struct{ srv, mgr int }{{1, 1}, {4, 1}, {1, 4}, {4, 4}} {
		sh := sh
		t.Run(fmt.Sprintf("srv=%d/mgr=%d", sh.srv, sh.mgr), func(t *testing.T) {
			run := func() (float64, *stats.Run) {
				cfg := core.DefaultConfig()
				cfg.CacheLines = 256
				cfg.Geo.NumServers = 2
				cfg.ServerShards = sh.srv
				cfg.ManagerShards = sh.mgr
				rt, err := core.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer rt.Close()
				res, err := RunMicro(rt, 8, MicroParams{N: 4, M: 4, S: 2, B: 64, Mode: AllocStrided})
				if err != nil {
					t.Fatal(err)
				}
				return res.GSum, res.Run
			}
			g1, r1 := run()
			g2, r2 := run()
			if g1 != g2 {
				t.Errorf("gsum differs between identical runs: %v vs %v", g1, g2)
			}
			if sh.srv == 1 && sh.mgr == 1 {
				baseGSum = g1
			} else if g1 != baseGSum {
				t.Errorf("gsum differs from unsharded run: %v vs %v", g1, baseGSum)
			}
			if len(r1.Threads) != len(r2.Threads) {
				t.Fatalf("thread counts differ: %d vs %d", len(r1.Threads), len(r2.Threads))
			}
			// stats.Thread is a flat struct of scalars, so == compares every
			// virtual time and every event counter at once.
			for i := range r1.Threads {
				if r1.Threads[i] != r2.Threads[i] {
					t.Errorf("thread %d stats differ:\n run1: %+v\n run2: %+v",
						i, r1.Threads[i], r2.Threads[i])
				}
			}
			if r1.MaxSyncTime() == 0 || r1.MaxComputeTime() == 0 {
				t.Fatalf("degenerate run: compute=%v sync=%v", r1.MaxComputeTime(), r1.MaxSyncTime())
			}
		})
	}
}

// The span-data-plane leg: the same strided kernel recast onto the
// bulk span accessors must stay deterministic (the extent words ride
// the same sequenced notices) AND compute the identical global sum as
// the per-element plane — on every sharding, including the sh=4/mgr=4
// configuration CI benches.
func TestMicroSpanDeterministicAndMatchesElement(t *testing.T) {
	for _, sh := range []struct{ srv, mgr int }{{1, 1}, {4, 4}} {
		sh := sh
		t.Run(fmt.Sprintf("srv=%d/mgr=%d", sh.srv, sh.mgr), func(t *testing.T) {
			run := func(spans bool, wide int) (float64, *stats.Run) {
				cfg := core.DefaultConfig()
				cfg.CacheLines = 256
				cfg.Geo.NumServers = 2
				cfg.ServerShards = sh.srv
				cfg.ManagerShards = sh.mgr
				rt, err := core.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer rt.Close()
				res, err := RunMicro(rt, 8, MicroParams{
					N: 4, M: 4, S: 2, B: 64, Mode: AllocStrided,
					UseSpans: spans, WideGsum: wide,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res.GSum, res.Run
			}
			g1, r1 := run(true, 0)
			g2, r2 := run(true, 0)
			if g1 != g2 {
				t.Errorf("span gsum differs between identical runs: %v vs %v", g1, g2)
			}
			for i := range r1.Threads {
				if r1.Threads[i] != r2.Threads[i] {
					t.Errorf("span thread %d stats differ:\n run1: %+v\n run2: %+v",
						i, r1.Threads[i], r2.Threads[i])
				}
			}
			if ge, _ := run(false, 0); ge != g1 {
				t.Errorf("span gsum %v != element gsum %v", g1, ge)
			}
			// The wide accumulator folds the same sums in the same order
			// into slot 0, so both record planes must agree with the
			// single-slot run bit for bit.
			if gw, _ := run(false, 8); gw != g1 {
				t.Errorf("wide-element gsum %v != baseline %v", gw, g1)
			}
			if gw, _ := run(true, 8); gw != g1 {
				t.Errorf("wide-span gsum %v != baseline %v", gw, g1)
			}
		})
	}
}

// The faults-on leg. Fault injection is driven by real time (injected
// delays, retry timeouts), so virtual times are NOT reproducible and
// the fabric stays unsequenced; what must still hold per seed is the
// program outcome. With one thread the global sum has a single addend
// order, so it is bit-identical run to run; with several threads the
// mutex acquisition order (and hence float summation order) may vary,
// so the multi-thread check is analytic correctness plus the
// scheduling-independent operation counts.
func TestMicroFaultsSameSeedSameOutcome(t *testing.T) {
	run := func(seed int64, p int) *MicroResult {
		cfg := core.DefaultConfig()
		cfg.CacheLines = 256
		cfg.Faults = faultnet.New(faultnet.Config{
			Seed:      seed,
			DropProb:  0.05,
			DelayProb: 0.02,
			MaxDelay:  100 * time.Microsecond,
			DupProb:   0.01,
		})
		pol := scl.DefaultRetryPolicy
		cfg.Retry = &pol
		rt, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		res, err := RunMicro(rt, p, MicroParams{N: 3, M: 3, S: 1, B: 64, Mode: AllocStrided})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, seed := range []int64{1, 42} {
		a := run(seed, 1)
		b := run(seed, 1)
		if a.GSum != b.GSum {
			t.Errorf("seed %d, p=1: gsum %v vs %v", seed, a.GSum, b.GSum)
		}
		if !relClose(a.GSum, a.Expected, 1e-9) {
			t.Errorf("seed %d, p=1: gsum %v, analytic %v", seed, a.GSum, a.Expected)
		}
	}
	c := run(7, 4)
	d := run(7, 4)
	if !relClose(c.GSum, c.Expected, 1e-9) || !relClose(d.GSum, d.Expected, 1e-9) {
		t.Errorf("p=4 faulted runs diverge from analytic: %v / %v vs %v",
			c.GSum, d.GSum, c.Expected)
	}
	ct, dt := c.Run.Totals(), d.Run.Totals()
	if ct.BarrierOps != dt.BarrierOps || ct.LockOps != dt.LockOps || ct.Releases != dt.Releases {
		t.Errorf("p=4 same-seed op counts differ: barriers %d/%d locks %d/%d releases %d/%d",
			ct.BarrierOps, dt.BarrierOps, ct.LockOps, dt.LockOps, ct.Releases, dt.Releases)
	}
}
