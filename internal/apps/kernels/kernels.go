// Package kernels contains the benchmark applications of the paper's
// evaluation (Section III), written once against the backend-neutral
// vm.VM interface — the Go analogue of the paper's single m4-macro code
// base that expands to either Pthreads or Samhita:
//
//   - Micro: the synthetic kernel of Figure 2, with the three memory
//     allocation / work distribution strategies (local, global, global
//     strided) that control the degree of false sharing. Drives
//     Figures 3-11.
//   - Jacobi: the Jacobi iteration for the discrete Laplacian — a
//     nearest-neighbour stencil with one mutex-protected global and
//     three barriers per outer iteration. Drives Figure 12.
//   - MD: a velocity-Verlet n-body molecular dynamics simulation with
//     O(n) work per particle, a mutex protecting the energy
//     accumulators and three barriers per step. Drives Figure 13.
package kernels

import (
	"repro/internal/vm"
)

// rowBuf is a scratch row used to move float64 rows through the byte
// accessors. The spans flag switches it onto the bulk span data plane:
// rows then travel through ReadFloat64s/WriteFloat64s, which resolve
// cache residency once per page and (on Samhita) publish the written
// extents at the next release so falsely-sharing peers invalidate only
// the bytes this thread actually wrote.
type rowBuf struct {
	vals  []float64
	raw   []byte
	spans bool
}

func newRowBuf(n int) *rowBuf {
	return &rowBuf{vals: make([]float64, n), raw: make([]byte, 8*n)}
}

// newSpanRowBuf returns a rowBuf moving rows through the span accessors.
func newSpanRowBuf(n int) *rowBuf {
	b := newRowBuf(n)
	b.spans = true
	return b
}

// load reads n float64s at addr into the buffer.
func (b *rowBuf) load(t vm.Thread, addr vm.Addr, n int) []float64 {
	if b.spans {
		t.ReadFloat64s(addr, b.vals[:n])
		return b.vals[:n]
	}
	t.ReadBytes(addr, b.raw[:8*n])
	for i := 0; i < n; i++ {
		b.vals[i] = vm.GetFloat64(b.raw[8*i:])
	}
	return b.vals[:n]
}

// store writes vals to addr.
func (b *rowBuf) store(t vm.Thread, addr vm.Addr, vals []float64) {
	if b.spans {
		t.WriteFloat64s(addr, vals)
		return
	}
	for i, v := range vals {
		vm.PutFloat64(b.raw[8*i:], v)
	}
	t.WriteBytes(addr, b.raw[:8*len(vals)])
}

// blockRange splits n items across p threads; thread id gets [lo, hi).
func blockRange(n, p, id int) (lo, hi int) { return vm.BlockRange(n, p, id) }
