package kernels

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/pthreads"
	"repro/internal/vm"
)

func newSamhita(t *testing.T) vm.VM {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.CacheLines = 512
	rt, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	denom := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*denom
}

func TestBlockRangeCoversAll(t *testing.T) {
	for _, n := range []int{1, 7, 16, 100} {
		for _, p := range []int{1, 2, 3, 8} {
			covered := 0
			prevHi := 0
			for id := 0; id < p; id++ {
				lo, hi := blockRange(n, p, id)
				if lo != prevHi {
					t.Fatalf("n=%d p=%d id=%d: gap (lo=%d prevHi=%d)", n, p, id, lo, prevHi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n {
				t.Fatalf("n=%d p=%d: covered %d", n, p, covered)
			}
		}
	}
}

func TestMicroMatchesAnalyticOnPthreads(t *testing.T) {
	p := pthreads.New(pthreads.Config{})
	res, err := RunMicro(p, 4, MicroParams{N: 3, M: 5, S: 2, B: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(res.GSum, res.Expected, 1e-9) {
		t.Fatalf("GSum = %v, expected %v", res.GSum, res.Expected)
	}
}

func TestMicroAllModesMatchAcrossBackends(t *testing.T) {
	for _, mode := range AllModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			prm := MicroParams{N: 3, M: 4, S: 2, B: 64, Mode: mode}
			const p = 4

			pth := pthreads.New(pthreads.Config{})
			pres, err := RunMicro(pth, p, prm)
			if err != nil {
				t.Fatal(err)
			}
			smh := newSamhita(t)
			sres, err := RunMicro(smh, p, prm)
			if err != nil {
				t.Fatal(err)
			}
			if !relClose(pres.GSum, sres.GSum, 1e-9) {
				t.Fatalf("mode %v: pthreads %v vs samhita %v", mode, pres.GSum, sres.GSum)
			}
			if !relClose(sres.GSum, sres.Expected, 1e-9) {
				t.Fatalf("mode %v: samhita %v vs analytic %v", mode, sres.GSum, sres.Expected)
			}
		})
	}
}

func TestMicroStridedExhibitsMoreSharingTraffic(t *testing.T) {
	const p = 8
	prm := MicroParams{N: 4, M: 2, S: 2, B: 256}

	run := func(mode AllocMode) (invalidations int64) {
		smh := newSamhita(t)
		prm := prm
		prm.Mode = mode
		res, err := RunMicro(smh, p, prm)
		if err != nil {
			t.Fatal(err)
		}
		return res.Run.Totals().Invalidations
	}
	local := run(AllocLocal)
	strided := run(AllocStrided)
	if strided <= local {
		t.Errorf("strided invalidations (%d) should exceed local (%d)", strided, local)
	}
}

func TestJacobiMatchesAcrossBackends(t *testing.T) {
	prm := JacobiParams{N: 64, Iters: 4}
	const p = 4

	pth := pthreads.New(pthreads.Config{})
	pres, err := RunJacobi(pth, p, prm)
	if err != nil {
		t.Fatal(err)
	}
	smh := newSamhita(t)
	sres, err := RunJacobi(smh, p, prm)
	if err != nil {
		t.Fatal(err)
	}
	// The grid evolution is barrier-deterministic: checksums must match
	// bit for bit. The residual is accumulated in lock order, so allow
	// rounding slack.
	if pres.Checksum != sres.Checksum {
		t.Errorf("checksums differ: %v vs %v", pres.Checksum, sres.Checksum)
	}
	if !relClose(pres.Residual, sres.Residual, 1e-9) {
		t.Errorf("residuals differ: %v vs %v", pres.Residual, sres.Residual)
	}
	if pres.Checksum == 0 || sres.Residual == 0 {
		t.Errorf("degenerate results: checksum=%v residual=%v", pres.Checksum, sres.Residual)
	}
}

func TestJacobiSequentialConsistencyAcrossP(t *testing.T) {
	// The checksum must not depend on the thread count.
	prm := JacobiParams{N: 32, Iters: 3}
	pth := pthreads.New(pthreads.Config{})
	r1, err := RunJacobi(pth, 1, prm)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunJacobi(pth, 4, prm)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Checksum != r4.Checksum {
		t.Fatalf("checksum depends on p: %v vs %v", r1.Checksum, r4.Checksum)
	}
}

func TestMDMatchesAcrossBackends(t *testing.T) {
	prm := MDParams{NParticles: 64, Steps: 3, Dt: 1e-4, Mass: 1}
	const p = 4

	pth := pthreads.New(pthreads.Config{})
	pres, err := RunMD(pth, p, prm)
	if err != nil {
		t.Fatal(err)
	}
	smh := newSamhita(t)
	sres, err := RunMD(smh, p, prm)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Checksum != sres.Checksum {
		t.Errorf("position checksums differ: %v vs %v", pres.Checksum, sres.Checksum)
	}
	if !relClose(pres.Potential, sres.Potential, 1e-9) {
		t.Errorf("potential differs: %v vs %v", pres.Potential, sres.Potential)
	}
	if !relClose(pres.Kinetic, sres.Kinetic, 1e-9) {
		t.Errorf("kinetic differs: %v vs %v", pres.Kinetic, sres.Kinetic)
	}
	if pres.Potential == 0 {
		t.Error("degenerate potential")
	}
}

func TestKernelsSingleThread(t *testing.T) {
	// Everything must also run at p=1 (the normalization baseline).
	pth := pthreads.New(pthreads.Config{})
	if _, err := RunMicro(pth, 1, MicroParams{N: 2, M: 2, S: 1, B: 32}); err != nil {
		t.Errorf("micro p=1: %v", err)
	}
	if _, err := RunJacobi(pth, 1, JacobiParams{N: 16, Iters: 2}); err != nil {
		t.Errorf("jacobi p=1: %v", err)
	}
	if _, err := RunMD(pth, 1, MDParams{NParticles: 16, Steps: 2, Dt: 1e-4, Mass: 1}); err != nil {
		t.Errorf("md p=1: %v", err)
	}
}

func TestStreamMatchesAcrossBackends(t *testing.T) {
	prm := StreamParams{Elements: 1 << 14, Iters: 3, Alpha: 3}
	const p = 4

	pth := pthreads.New(pthreads.Config{})
	pres, err := RunStream(pth, p, prm)
	if err != nil {
		t.Fatal(err)
	}
	// A cache far smaller than the 3x128KB working set forces streaming
	// eviction on the DSM side.
	cfg := core.DefaultConfig()
	cfg.CacheLines = 2
	smh, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer smh.Close()
	sres, err := RunStream(smh, p, prm)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Checksum != sres.Checksum {
		t.Fatalf("checksums differ: %v vs %v", pres.Checksum, sres.Checksum)
	}
	if pres.Checksum == 0 {
		t.Fatal("degenerate checksum")
	}
	if sres.Run.Totals().Evictions == 0 {
		t.Error("out-of-core stream never evicted")
	}
}

func TestStreamSingleThreadAndUneven(t *testing.T) {
	pth := pthreads.New(pthreads.Config{})
	r1, err := RunStream(pth, 1, StreamParams{Elements: 1000, Iters: 2, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := RunStream(pth, 3, StreamParams{Elements: 1000, Iters: 2, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Checksum != r3.Checksum {
		t.Fatalf("checksum depends on p: %v vs %v", r1.Checksum, r3.Checksum)
	}
}
