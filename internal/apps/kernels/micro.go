package kernels

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/stats"
	"repro/internal/vm"
)

// AllocMode selects the micro-benchmark's memory allocation and work
// distribution strategy (Section III). The three modes differ only in
// where each thread's S rows of B doubles live, which controls how much
// false sharing the runs exhibit.
type AllocMode int

const (
	// AllocLocal: each thread allocates its own data (thread-local
	// arenas; the Samhita allocator guarantees no false sharing).
	AllocLocal AllocMode = iota
	// AllocGlobal: one thread makes a single large shared allocation and
	// each thread works on its own contiguous share (block row
	// distribution) — some risk of false sharing at share boundaries.
	AllocGlobal
	// AllocStrided: the single shared allocation is accessed with rows
	// interleaved round-robin across threads — the highest false
	// sharing of the three.
	AllocStrided
	// AllocRandom: the single shared allocation's rows are assigned to
	// threads by a fixed pseudo-random permutation. Beyond the paper's
	// three strategies: consecutive rows (and therefore cache lines and
	// home-server shards) land on unrelated threads, which makes every
	// release interval touch pages scattered across the whole space —
	// the worst case for server-side shard contention.
	AllocRandom
)

// String names the mode as the figures do.
func (m AllocMode) String() string {
	switch m {
	case AllocLocal:
		return "local"
	case AllocGlobal:
		return "global"
	case AllocStrided:
		return "strided"
	case AllocRandom:
		return "random"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// AllModes lists the three strategies in figure order.
var AllModes = []AllocMode{AllocLocal, AllocGlobal, AllocStrided}

// MicroParams parameterizes the Figure-2 kernel. The paper fixes N=10
// and B=256 for all reported experiments and sweeps M, S, the mode and
// the thread count.
type MicroParams struct {
	N    int       // outer iterations (barrier rounds)
	M    int       // inner compute iterations between synchronizations
	S    int       // rows of doubles per thread
	B    int       // doubles per row
	R    float64   // multiplier applied to each element
	Mode AllocMode // allocation / distribution strategy

	// UseSpans recasts the row loop onto the bulk span accessors
	// (ReadFloat64s/WriteFloat64s): whole rows move through one cache
	// access, and on Samhita each release publishes the rows' written
	// extents so falsely-sharing peers invalidate partially instead of
	// refetching whole pages. The arithmetic is identical; only the data
	// plane changes.
	UseSpans bool
	// WideGsum widens the global accumulator to this many contiguous
	// slots; under the mutex each thread folds its per-interval sum into
	// EVERY slot, making the consistency region a W-element contiguous
	// store burst (the record-plane stressor: element stores coalesce
	// into one record per burst, spans log one record outright). 0 or 1
	// is the legacy single-slot accumulator; slot 0 always carries the
	// legacy GSum value.
	WideGsum int
}

// DefaultMicroParams returns the paper's fixed parameters with the
// commonly used M=10, S=2.
func DefaultMicroParams() MicroParams {
	return MicroParams{N: 10, M: 10, S: 2, B: 256, R: 0.999999, Mode: AllocLocal}
}

func (p MicroParams) withDefaults() MicroParams {
	if p.N == 0 {
		p.N = 10
	}
	if p.M == 0 {
		p.M = 10
	}
	if p.S == 0 {
		p.S = 2
	}
	if p.B == 0 {
		p.B = 256
	}
	if p.R == 0 {
		p.R = 0.999999
	}
	return p
}

// MicroResult is the outcome of one micro-benchmark run.
type MicroResult struct {
	// GSum is the lock-protected global accumulator after the run; it
	// checks that both backends compute the same thing.
	GSum float64
	// Expected is the analytically computed value of GSum (the kernel is
	// deterministic up to floating-point summation order).
	Expected float64
	// Run carries the per-thread measurements.
	Run *stats.Run
}

// RunMicro executes the Figure-2 kernel on p threads of the given
// backend.
//
// The kernel (Figure 2): every outer iteration, each thread performs M
// passes over its S rows of B doubles, multiplying every element by R
// and accumulating a running sum; it then adds pi times the row sums
// into a global sum under a mutex and waits at a barrier. Work per
// element per pass is two flops.
func RunMicro(v vm.VM, p int, prm MicroParams) (*MicroResult, error) {
	prm = prm.withDefaults()
	mu := v.NewMutex()
	bar := v.NewBarrier(p)
	var sharedBase, gsumBase atomic.Uint64
	gsums := make([]float64, p)

	run, err := v.Run(p, func(t vm.Thread) {
		// --- Allocation phase (the heart of the three strategies).
		var rowAddr func(k int) vm.Addr
		rowBytes := 8 * prm.B
		switch prm.Mode {
		case AllocLocal:
			base := t.Malloc(prm.S * rowBytes)
			rowAddr = func(k int) vm.Addr { return base + vm.Addr(k*rowBytes) }
		case AllocGlobal:
			if t.ID() == 0 {
				sharedBase.Store(uint64(t.GlobalAlloc(p * prm.S * rowBytes)))
			}
		case AllocStrided:
			if t.ID() == 0 {
				sharedBase.Store(uint64(t.GlobalAlloc(p * prm.S * rowBytes)))
			}
		case AllocRandom:
			if t.ID() == 0 {
				sharedBase.Store(uint64(t.GlobalAlloc(p * prm.S * rowBytes)))
			}
		}
		W := prm.WideGsum
		if W < 1 {
			W = 1
		}
		if t.ID() == 0 {
			gsumBase.Store(uint64(t.GlobalAlloc(8 * W)))
		}
		bar.Wait(t)
		base := vm.Addr(sharedBase.Load())
		switch prm.Mode {
		case AllocGlobal:
			// Thread t's rows are contiguous: rows [t*S, (t+1)*S).
			rowAddr = func(k int) vm.Addr {
				return base + vm.Addr((t.ID()*prm.S+k)*rowBytes)
			}
		case AllocStrided:
			// Rows are interleaved round-robin: thread t owns rows
			// k*P + t.
			rowAddr = func(k int) vm.Addr {
				return base + vm.Addr((k*t.P()+t.ID())*rowBytes)
			}
		case AllocRandom:
			// Rows are scattered by a fixed permutation every thread
			// computes identically, so the assignment is deterministic
			// and needs no coordination.
			perm := rowPerm(p * prm.S)
			rowAddr = func(k int) vm.Addr {
				return base + vm.Addr(perm[k*t.P()+t.ID()]*rowBytes)
			}
		}
		gsum := vm.F64{Base: vm.Addr(gsumBase.Load())}

		// --- Seed phase: every element starts at 1.0 so the multiply
		// chain changes real bytes every pass (a zero array would never
		// produce diffs and would under-model the consistency traffic).
		buf := newRowBuf(prm.B)
		if prm.UseSpans {
			buf = newSpanRowBuf(prm.B)
		}
		var wide []float64
		if W > 1 && prm.UseSpans {
			wide = make([]float64, W)
		}
		ones := make([]float64, prm.B)
		for l := range ones {
			ones[l] = 1.0
		}
		for k := 0; k < prm.S; k++ {
			buf.store(t, rowAddr(k), ones)
		}
		bar.Wait(t)
		// The timed region begins warm: initialization already touched
		// the data, exactly as in the paper's runs.
		t.ResetMeasurement()

		// --- The measured kernel.
		for i := 0; i < prm.N; i++ {
			sum := 0.0
			for j := 0; j < prm.M; j++ {
				for k := 0; k < prm.S; k++ {
					a := rowAddr(k)
					row := buf.load(t, a, prm.B)
					rsum := 0.0
					for l := 0; l < prm.B; l++ {
						row[l] = prm.R * row[l]
						rsum += row[l]
					}
					// Two flops per element plus the am(k,l) address
					// arithmetic and load/store of the scalar loop.
					t.Compute(4 * prm.B)
					buf.store(t, a, row)
					sum += math.Pi * rsum
					t.Compute(2)
				}
			}
			mu.Lock(t)
			switch {
			case W == 1:
				gsum.Add(t, 0, sum)
			case prm.UseSpans:
				// One span read + one span write: a single store record
				// for the whole W-slot burst.
				gsum.ReadSlice(t, 0, wide)
				for w := range wide {
					wide[w] += sum
				}
				gsum.WriteSlice(t, 0, wide)
			default:
				// W fused element adds: adjacent records, coalesced at
				// append time into one (unless the ablation disables it).
				for w := 0; w < W; w++ {
					gsum.Add(t, w, sum)
				}
			}
			mu.Unlock(t)
			bar.Wait(t)
		}
		t.StopMeasurement()
		gsums[t.ID()] = gsum.At(t, 0)
	})
	if err != nil {
		return nil, err
	}
	return &MicroResult{
		GSum:     gsums[0],
		Expected: expectedGSum(p, prm),
		Run:      run,
	}, nil
}

// rowPerm returns a fixed pseudo-random permutation of [0, n): a
// Fisher-Yates shuffle driven by splitmix64 from a constant seed. It is
// a pure function of n, so every thread (and every run) computes the
// identical assignment — the scatter is adversarial but deterministic.
func rowPerm(n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	state := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// expectedGSum computes the analytic value of the global sum. Every
// element starts at 1.0 and is multiplied by R once per (i,j) pass, so
// the row sum in pass m (1-based, m = i*M+j+1) is B*R^m and each of the
// P threads contributes S*pi*B*R^m for every pass:
//
//	GSum = P * S * pi * B * sum_{m=1}^{N*M} R^m
//
// Floating-point summation order differs between the kernel and this
// closed form (and between threads), so comparisons use a relative
// tolerance.
func expectedGSum(p int, prm MicroParams) float64 {
	var geom float64
	rm := 1.0
	for m := 1; m <= prm.N*prm.M; m++ {
		rm *= prm.R
		geom += rm
	}
	return float64(p) * float64(prm.S) * math.Pi * float64(prm.B) * geom
}
