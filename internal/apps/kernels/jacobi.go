package kernels

import (
	"math"
	"sync/atomic"

	"repro/internal/stats"
	"repro/internal/vm"
)

// JacobiParams parameterizes the Jacobi application kernel (Section
// III, Figure 12): the Jacobi iteration for the linear system of a
// discrete Laplacian. The memory access pattern is a nearest-neighbour
// stencil — the update of a grid point depends on a small number of
// near neighbours — and each outer iteration uses one mutex-protected
// global (the residual) and three barrier synchronizations, exactly as
// the paper describes.
type JacobiParams struct {
	// N is the grid edge (N x N interior points plus a boundary ring).
	N int
	// Iters is the number of Jacobi sweeps.
	Iters int
	// UseSpans streams grid rows through the bulk span accessors
	// instead of per-element byte moves.
	UseSpans bool
}

// DefaultJacobiParams is sized so runs finish quickly while still
// spanning many pages per thread.
func DefaultJacobiParams() JacobiParams { return JacobiParams{N: 256, Iters: 10} }

// JacobiResult reports the outcome of a run.
type JacobiResult struct {
	// Residual is the global residual (sum of squared updates)
	// accumulated over all sweeps under the mutex.
	Residual float64
	// Checksum is the sum of the final grid, for cross-backend
	// verification (deterministic: grid updates are barrier-ordered).
	Checksum float64
	// Run carries the per-thread measurements.
	Run *stats.Run
}

// RunJacobi executes the kernel on p threads.
//
// Layout: two (N+2) x (N+2) grids (u and v) in one large shared
// allocation (striped across memory servers), row-major. The boundary
// is held at a fixed profile; the interior starts at zero; each sweep
// writes v[i][j] = (u[i-1][j]+u[i+1][j]+u[i][j-1]+u[i][j+1])/4 for the
// thread's block of rows, then the roles of u and v swap.
//
// Per outer iteration: sweep, barrier; accumulate the local residual
// into the global under the mutex, barrier; (logical) pointer swap,
// barrier.
func RunJacobi(v vm.VM, p int, prm JacobiParams) (*JacobiResult, error) {
	if prm.N == 0 {
		prm = DefaultJacobiParams()
	}
	n := prm.N
	rows := n + 2
	gridBytes := rows * rows * 8

	mu := v.NewMutex()
	bar := v.NewBarrier(p)
	var base, resBase atomic.Uint64
	var out JacobiResult

	run, err := v.Run(p, func(t vm.Thread) {
		if t.ID() == 0 {
			base.Store(uint64(t.GlobalAlloc(2 * gridBytes)))
			resBase.Store(uint64(t.GlobalAlloc(8)))
		}
		bar.Wait(t)
		grids := [2]vm.Addr{vm.Addr(base.Load()), vm.Addr(base.Load()) + vm.Addr(gridBytes)}
		residual := vm.F64{Base: vm.Addr(resBase.Load())}
		rowAddr := func(g int, i int) vm.Addr { return grids[g] + vm.Addr(i*rows*8) }

		lo, hi := blockRange(n, p, t.ID()) // interior rows [lo+1, hi+1)
		newBuf := newRowBuf
		if prm.UseSpans {
			newBuf = newSpanRowBuf
		}
		bufs := [3]*rowBuf{newBuf(rows), newBuf(rows), newBuf(rows)}
		outBuf := newBuf(rows)

		// Initialize: thread 0 writes the boundary profile into both
		// grids; every thread zeroes its own interior rows. The backing
		// store is already zero, but the explicit init touches every
		// page the thread will write, so — as in the paper's runs — the
		// timed region starts with a warm cache.
		if t.ID() == 0 {
			edge := make([]float64, rows)
			for j := 0; j < rows; j++ {
				edge[j] = math.Sin(math.Pi * float64(j) / float64(rows-1))
			}
			for g := 0; g < 2; g++ {
				outBuf.store(t, rowAddr(g, 0), edge)
				outBuf.store(t, rowAddr(g, rows-1), edge)
			}
		}
		init := make([]float64, rows)
		for i := lo + 1; i <= hi; i++ {
			for j := 0; j < rows; j++ {
				// A smooth nonzero bump: every sweep then changes real
				// bytes everywhere, so diff traffic is representative
				// from the first iteration.
				init[j] = math.Sin(math.Pi*float64(i)/float64(rows-1)) *
					math.Sin(math.Pi*float64(j)/float64(rows-1))
			}
			for g := 0; g < 2; g++ {
				outBuf.store(t, rowAddr(g, i), init)
			}
		}
		bar.Wait(t)
		t.ResetMeasurement()

		interior := make([]float64, rows)
		for it := 0; it < prm.Iters; it++ {
			src, dst := it%2, (it+1)%2
			localRes := 0.0
			// Sweep this thread's rows. Rows are streamed through three
			// input buffers (above, current, below).
			for i := lo + 1; i <= hi; i++ {
				up := bufs[0].load(t, rowAddr(src, i-1), rows)
				cur := bufs[1].load(t, rowAddr(src, i), rows)
				down := bufs[2].load(t, rowAddr(src, i+1), rows)
				interior[0], interior[rows-1] = cur[0], cur[rows-1]
				for j := 1; j <= n; j++ {
					nv := 0.25 * (up[j] + down[j] + cur[j-1] + cur[j+1])
					d := nv - cur[j]
					localRes += d * d
					interior[j] = nv
				}
				t.Compute(7 * n) // 4 adds + mul + diff + square-accumulate
				outBuf.store(t, rowAddr(dst, i), interior)
			}
			bar.Wait(t)

			// Accumulate the global residual under the mutex (the
			// paper's protected global variable), then two more barriers
			// — three per outer iteration, as in the paper's kernel (the
			// third synchronizes the logical grid swap).
			mu.Lock(t)
			residual.Add(t, 0, localRes)
			mu.Unlock(t)
			bar.Wait(t)
			bar.Wait(t)
		}
		t.StopMeasurement()

		if t.ID() == 0 {
			out.Residual = residual.At(t, 0)
			// Checksum the final grid.
			g := prm.Iters % 2
			sum := 0.0
			for i := 0; i < rows; i++ {
				row := bufs[0].load(t, rowAddr(g, i), rows)
				for _, x := range row {
					sum += x
				}
			}
			out.Checksum = sum
		}
	})
	if err != nil {
		return nil, err
	}
	out.Run = run
	return &out, nil
}
