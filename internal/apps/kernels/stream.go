package kernels

import (
	"sync/atomic"

	"repro/internal/stats"
	"repro/internal/vm"
)

// StreamParams parameterizes an out-of-core STREAM-triad kernel. The
// paper's introduction motivates virtual shared memory with exactly
// this situation: "the amount of memory per core in coprocessors is
// typically low", so treating the coprocessor as a mini-cluster "limits
// the size of problems that can be solved", while Samhita lets threads
// work on data backed by the much larger host memory, with the card's
// memory acting only as a cache. This kernel makes that concrete:
// three arrays sized well past the cache capacity are streamed through
// it, exercising demand paging, anticipatory prefetch and the
// dirty-biased eviction policy on every pass.
type StreamParams struct {
	// Elements is the length of each of the three arrays (a, b, c).
	Elements int
	// Iters is the number of triad passes (a[i] = b[i] + alpha*c[i],
	// rotating the roles each pass).
	Iters int
	// Alpha is the triad scalar.
	Alpha float64
	// UseSpans moves the triad's rows through the bulk span accessors
	// instead of per-element byte moves (same arithmetic, bulk data
	// plane).
	UseSpans bool
}

// DefaultStreamParams sizes the arrays at a few MB.
func DefaultStreamParams() StreamParams {
	return StreamParams{Elements: 1 << 18, Iters: 3, Alpha: 3.0}
}

// StreamResult reports the outcome.
type StreamResult struct {
	// Checksum is the sum of the final destination array.
	Checksum float64
	// Run carries per-thread measurements.
	Run *stats.Run
}

// RunStream executes the kernel on p threads: block-partitioned triad
// passes with a barrier between passes. Each pass reads two arrays and
// rewrites the third, so a cache smaller than the working set must
// stream lines in and evict written pages continuously.
func RunStream(v vm.VM, p int, prm StreamParams) (*StreamResult, error) {
	if prm.Elements == 0 {
		prm = DefaultStreamParams()
	}
	n := prm.Elements
	arrBytes := n * 8

	bar := v.NewBarrier(p)
	var base atomic.Uint64
	var out StreamResult

	run, err := v.Run(p, func(t vm.Thread) {
		if t.ID() == 0 {
			base.Store(uint64(t.GlobalAlloc(3 * arrBytes)))
		}
		bar.Wait(t)
		arrays := [3]vm.Addr{
			vm.Addr(base.Load()),
			vm.Addr(base.Load()) + vm.Addr(arrBytes),
			vm.Addr(base.Load()) + vm.Addr(2*arrBytes),
		}
		lo, hi := blockRange(n, p, t.ID())

		// Seed b and c with nonzero data (owner-computes).
		const chunk = 512
		newBuf := newRowBuf
		if prm.UseSpans {
			newBuf = newSpanRowBuf
		}
		buf := newBuf(chunk)
		seed := make([]float64, chunk)
		for start := lo; start < hi; start += chunk {
			m := min(chunk, hi-start)
			for k := 0; k < m; k++ {
				seed[k] = float64((start+k)%97) + 1
			}
			buf.store(t, arrays[1]+vm.Addr(8*start), seed[:m])
			for k := 0; k < m; k++ {
				seed[k] = float64((start+k)%89) + 1
			}
			buf.store(t, arrays[2]+vm.Addr(8*start), seed[:m])
		}
		bar.Wait(t)
		t.ResetMeasurement()

		srcB, srcC, dst := 1, 2, 0
		bufB, bufC, bufD := newBuf(chunk), newBuf(chunk), newBuf(chunk)
		for it := 0; it < prm.Iters; it++ {
			for start := lo; start < hi; start += chunk {
				m := min(chunk, hi-start)
				bs := bufB.load(t, arrays[srcB]+vm.Addr(8*start), m)
				cs := bufC.load(t, arrays[srcC]+vm.Addr(8*start), m)
				ds := bufD.vals[:m]
				for k := 0; k < m; k++ {
					ds[k] = bs[k] + prm.Alpha*cs[k]
				}
				t.Compute(2 * m)
				bufD.store(t, arrays[dst]+vm.Addr(8*start), ds)
			}
			bar.Wait(t)
			// Rotate roles: the freshly written array becomes a source.
			srcB, srcC, dst = dst, srcB, srcC
		}
		t.StopMeasurement()

		if t.ID() == 0 {
			// After Iters passes the last-written array is the previous
			// dst, which rotation moved into srcB.
			final := arrays[srcB]
			sum := 0.0
			rb := newBuf(chunk)
			for start := 0; start < n; start += chunk {
				m := min(chunk, n-start)
				for _, x := range rb.load(t, final+vm.Addr(8*start), m) {
					sum += x
				}
			}
			out.Checksum = sum
		}
	})
	if err != nil {
		return nil, err
	}
	out.Run = run
	return &out, nil
}
