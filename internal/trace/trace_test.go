package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCollectorSpanAndOrder(t *testing.T) {
	c := NewCollector(0)
	c.Span("thread 1", CatLock, "lock 1", 200, 300, nil)
	c.Span("thread 0", CatFetch, "fetch line 5", 100, 150, map[string]any{"home": 0})
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	ev := c.Events()
	if ev[0].Start != 100 || ev[1].Start != 200 {
		t.Fatalf("events not sorted: %+v", ev)
	}
	if ev[0].Dur != 50 {
		t.Fatalf("duration = %v", ev[0].Dur)
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Span("x", CatFault, "y", 0, 1, nil) // must not panic
}

func TestNegativeDurationClamped(t *testing.T) {
	c := NewCollector(0)
	c.Span("a", CatLock, "l", 100, 50, nil)
	if c.Events()[0].Dur != 0 {
		t.Fatal("negative duration not clamped")
	}
}

func TestLimitDropsExcess(t *testing.T) {
	c := NewCollector(3)
	for i := 0; i < 10; i++ {
		c.Span("a", CatFault, "f", 0, 1, nil)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func TestChromeTraceExport(t *testing.T) {
	c := NewCollector(0)
	c.Span("thread 0", CatBarrier, "barrier 1", 1000, 3000, nil)
	c.Span("memserver 0", CatFetch, "fetch line 2", 1500, 2500, map[string]any{"needs": 1})
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 events + 2 thread_name metadata rows.
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var sawX, sawM bool
	for _, r := range rows {
		switch r["ph"] {
		case "X":
			sawX = true
			if r["ts"].(float64) < 1 { // ns -> µs conversion happened
				t.Errorf("ts = %v", r["ts"])
			}
		case "M":
			sawM = true
		}
	}
	if !sawX || !sawM {
		t.Fatalf("missing event kinds: X=%v M=%v", sawX, sawM)
	}
}

func TestSummary(t *testing.T) {
	c := NewCollector(0)
	c.Span("a", CatLock, "l", 0, 10, nil)
	c.Span("a", CatLock, "l", 10, 30, nil)
	c.Span("b", CatFetch, "f", 0, 5, nil)
	s := c.Summary()
	if !strings.Contains(s, "lock") || !strings.Contains(s, "2 events") {
		t.Fatalf("summary: %q", s)
	}
}

func TestConcurrentAdds(t *testing.T) {
	c := NewCollector(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Span("t", CatFault, "f", 0, 1, nil)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 800 {
		t.Fatalf("Len = %d", c.Len())
	}
}
