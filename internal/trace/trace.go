// Package trace records protocol events in virtual time and exports
// them in the Chrome trace-event format (chrome://tracing, Perfetto),
// so a Samhita run can be inspected visually: page faults, fetch round
// trips, lock and barrier spans, releases and pulls, per thread and per
// server.
//
// Tracing is opt-in (attach a Collector through core.Config) and cheap
// when off: the runtime checks a nil collector before composing any
// event.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/vtime"
)

// Category classifies events for filtering in the viewer.
type Category string

// Categories emitted by the runtime.
const (
	CatFault    Category = "fault"    // cache miss handling (compute side)
	CatFetch    Category = "fetch"    // line fetch round trip
	CatPrefetch Category = "prefetch" // anticipatory-paging fetches (issue to landing)
	CatLock     Category = "lock"     // mutex acquire/release spans
	CatBarrier  Category = "barrier"  // barrier wait spans
	CatCond     Category = "cond"     // condition-variable waits
	CatRelease  Category = "release"  // diff collection + batch posting
	CatAlloc    Category = "alloc"    // manager allocation round trips
	CatNet      Category = "net"      // transport faults: drops, delays, partitions, duplicates
	CatLive     Category = "live"     // liveness: kills, member deaths, reclamation, failover
)

// Event is one completed span in virtual time.
type Event struct {
	Name  string
	Cat   Category
	Actor string     // "thread 3", "memserver 0", ...
	Start vtime.Time // virtual start
	Dur   vtime.Time // virtual duration
	Args  map[string]any
}

// Collector accumulates events from many goroutines.
type Collector struct {
	mu     sync.Mutex
	events []Event
	limit  int
}

// NewCollector creates a collector; limit bounds retained events
// (0 = 1<<20). When full, further events are dropped — tracing is a
// diagnostic aid, not an audit log.
func NewCollector(limit int) *Collector {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Collector{limit: limit}
}

// Add records one event.
func (c *Collector) Add(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.events) < c.limit {
		c.events = append(c.events, e)
	}
}

// Span is a convenience for "the actor did name from start to end".
func (c *Collector) Span(actor string, cat Category, name string, start, end vtime.Time, args map[string]any) {
	if c == nil {
		return
	}
	dur := end - start
	if dur < 0 {
		dur = 0
	}
	c.Add(Event{Name: name, Cat: cat, Actor: actor, Start: start, Dur: dur, Args: args})
}

// Len reports how many events are retained.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Events returns a copy of the retained events sorted by start time.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// chromeEvent is the trace-event JSON shape ("X" = complete event).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the events as a Chrome trace-event JSON array.
// Virtual nanoseconds map to trace microseconds; each actor becomes a
// thread row.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	events := c.Events()
	tids := map[string]int{}
	var rows []chromeEvent
	for _, e := range events {
		tid, ok := tids[e.Actor]
		if !ok {
			tid = len(tids) + 1
			tids[e.Actor] = tid
		}
		rows = append(rows, chromeEvent{
			Name: e.Name,
			Cat:  string(e.Cat),
			Ph:   "X",
			TS:   float64(e.Start) / 1e3,
			Dur:  float64(e.Dur) / 1e3,
			PID:  1,
			TID:  tid,
			Args: e.Args,
		})
	}
	// Metadata rows naming the threads.
	for actor, tid := range tids {
		rows = append(rows, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": actor},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(rows)
}

// Summary renders per-category counts and total virtual time.
func (c *Collector) Summary() string {
	counts := map[Category]int{}
	durs := map[Category]vtime.Time{}
	for _, e := range c.Events() {
		counts[e.Cat]++
		durs[e.Cat] += e.Dur
	}
	cats := make([]string, 0, len(counts))
	for cat := range counts {
		cats = append(cats, string(cat))
	}
	sort.Strings(cats)
	out := ""
	for _, cat := range cats {
		out += fmt.Sprintf("%-8s %6d events  %v\n", cat, counts[Category(cat)], durs[Category(cat)])
	}
	return out
}
