// Package replog is the replicated-log core behind the kill-survivable
// manager: a leader-lease, single-leader-per-term log in the style of
// Raft's append path, specialized to the way the DSM runtime uses it.
//
// The classic roles map as follows. The *proposer* is the manager
// leader: it stamps every mutation with a log slot and its term and
// pushes slots to the replicas, tracking each replica's next expected
// index. The *acceptor* is a follower replica: it accepts contiguous
// entries from the highest term it has seen and rejects stale-term
// senders (which deposes them). The *learner* is the follower's state
// machine: Offer returns the newly accepted entries in order and the
// caller applies them through the same handlers the leader ran.
//
// Elections are external: the runtime's failover controller promotes a
// replica under a strictly higher term when clients observe the leader
// dead (the client-side retry exhaustion is the lease-expiry signal).
// The log therefore never votes; terms exist to fence a deposed leader,
// whose next append is rejected with the higher term.
//
// Truncation is keyed to application: an entry may be dropped once
// every live replica has acknowledged it AND the leader has applied it
// (the caller passes its applied index as the floor). A replica whose
// next expected index has been truncated away is caught up with a full
// state snapshot and resumes appends above it.
package replog

import (
	"fmt"

	"repro/internal/proto"
)

// Proposer is the leader side of the log.
type Proposer struct {
	// Term is the leader's term; entries are stamped with it and
	// followers at a higher term reject the leader.
	Term uint64

	entries []proto.ReplEntry // retained suffix of the log
	first   uint64            // index of entries[0]; last+1 when empty
	last    uint64            // highest appended index (0 = none)

	peers map[int]*peerState
}

type peerState struct {
	next  uint64 // next index this peer expects
	alive bool
}

// NewProposer creates the leader state. peerIDs identify the follower
// replicas (any stable small ints); startIndex is the index the first
// appended entry gets (1 for a fresh log, applied+1 after a promotion).
func NewProposer(term uint64, peerIDs []int, startIndex uint64) *Proposer {
	if startIndex == 0 {
		startIndex = 1
	}
	p := &Proposer{
		Term:  term,
		first: startIndex,
		last:  startIndex - 1,
		peers: make(map[int]*peerState, len(peerIDs)),
	}
	for _, id := range peerIDs {
		p.peers[id] = &peerState{next: startIndex, alive: true}
	}
	return p
}

// Append stamps a new entry into the next log slot and retains it until
// truncation. The returned entry is what the leader ships to followers.
func (p *Proposer) Append(src uint32, kind proto.Kind, body []byte) proto.ReplEntry {
	e := proto.ReplEntry{
		Index: p.last + 1,
		Term:  p.Term,
		Src:   src,
		Kind:  uint16(kind),
		Body:  body,
	}
	p.entries = append(p.entries, e)
	p.last++
	return e
}

// Last reports the highest appended index.
func (p *Proposer) Last() uint64 { return p.last }

// First reports the lowest retained index (Last()+1 when empty).
func (p *Proposer) First() uint64 { return p.first }

// Retained reports how many entries the log currently holds.
func (p *Proposer) Retained() int { return len(p.entries) }

// Batch returns the entries peer still needs, or needSnapshot=true when
// the peer's next expected index has been truncated out of the log.
func (p *Proposer) Batch(peer int) (entries []proto.ReplEntry, needSnapshot bool) {
	ps := p.peers[peer]
	if ps == nil {
		return nil, false
	}
	if ps.next < p.first {
		return nil, true
	}
	if ps.next > p.last {
		return nil, false
	}
	return p.entries[ps.next-p.first:], false
}

// Ack records a follower's answer to an append. deposed reports that
// the follower has adopted a higher term: this proposer must stop
// externalizing state immediately.
func (p *Proposer) Ack(peer int, ack *proto.ReplAck) (deposed bool) {
	if !ack.OK && ack.Term > p.Term {
		return true
	}
	ps := p.peers[peer]
	if ps == nil {
		return false
	}
	// Both accept and gap-rejection tell us the peer's next expected
	// index; resume from there.
	if ack.NextIndex > 0 {
		ps.next = ack.NextIndex
	}
	return false
}

// SnapshotInstalled records that peer restored a snapshot covering
// everything up to index; appends resume above it.
func (p *Proposer) SnapshotInstalled(peer int, index uint64) {
	if ps := p.peers[peer]; ps != nil {
		ps.next = index + 1
	}
}

// DropPeer marks a follower dead: it stops gating truncation and Batch
// callers should stop sending to it.
func (p *Proposer) DropPeer(peer int) {
	if ps := p.peers[peer]; ps != nil {
		ps.alive = false
	}
}

// LivePeers returns the ids of followers not yet dropped, in no
// particular order.
func (p *Proposer) LivePeers() []int {
	var ids []int
	for id, ps := range p.peers {
		if ps.alive {
			ids = append(ids, id)
		}
	}
	return ids
}

// Truncate drops every entry that (a) every live follower has
// acknowledged and (b) the caller has applied — appliedFloor is the
// caller's applied index (the manager keys it to its notice-board
// ticket frontier). Returns the number of entries dropped.
func (p *Proposer) Truncate(appliedFloor uint64) int {
	keep := appliedFloor + 1 // lowest index that must stay
	for _, ps := range p.peers {
		if ps.alive && ps.next < keep {
			keep = ps.next
		}
	}
	if keep <= p.first {
		return 0
	}
	n := int(keep - p.first)
	if n > len(p.entries) {
		n = len(p.entries)
	}
	p.entries = p.entries[n:]
	p.first += uint64(n)
	return n
}

// Acceptor is the follower side of the log.
type Acceptor struct {
	// Term is the highest term this follower has accepted entries from.
	Term uint64
	// Last is the highest contiguously accepted index.
	Last uint64
}

// Offer processes one append from a claimed leader. apply holds the
// newly accepted entries, in order, for the learner to run through the
// state machine; ack is the answer to ship back. A stale-term sender is
// rejected with the follower's term (deposing it); a gap is rejected
// with the next index the follower expects.
func (a *Acceptor) Offer(m *proto.ReplAppend) (apply []proto.ReplEntry, ack proto.ReplAck) {
	if m.Term < a.Term {
		return nil, proto.ReplAck{OK: false, Term: a.Term, NextIndex: a.Last + 1}
	}
	a.Term = m.Term
	for i := range m.Entries {
		e := &m.Entries[i]
		switch {
		case e.Index <= a.Last:
			// Duplicate of an already-accepted slot (a resend after a
			// partial ack): already applied, skip.
		case e.Index == a.Last+1:
			apply = append(apply, *e)
			a.Last++
		default:
			// Gap: the sender must back up (or snapshot us).
			return apply, proto.ReplAck{OK: false, Term: a.Term, NextIndex: a.Last + 1}
		}
	}
	return apply, proto.ReplAck{OK: true, Term: a.Term, NextIndex: a.Last + 1}
}

// InstallSnapshot resets the acceptor to a snapshot covering everything
// up to index under the given term.
func (a *Acceptor) InstallSnapshot(term, index uint64) error {
	if term < a.Term {
		return fmt.Errorf("replog: snapshot from stale term %d (have %d)", term, a.Term)
	}
	a.Term = term
	a.Last = index
	return nil
}
