package replog

import (
	"testing"

	"repro/internal/proto"
)

func entry(t *testing.T, p *Proposer, body byte) proto.ReplEntry {
	t.Helper()
	return p.Append(7, proto.KLockReq, []byte{body})
}

func TestAppendAckApplyRoundTrip(t *testing.T) {
	p := NewProposer(1, []int{1}, 1)
	var a Acceptor

	e1 := entry(t, p, 0xA)
	e2 := entry(t, p, 0xB)
	if e1.Index != 1 || e2.Index != 2 {
		t.Fatalf("indices = %d, %d", e1.Index, e2.Index)
	}
	ents, snap := p.Batch(1)
	if snap || len(ents) != 2 {
		t.Fatalf("Batch = %d entries, snapshot=%v", len(ents), snap)
	}
	apply, ack := a.Offer(&proto.ReplAppend{Term: 1, Entries: ents})
	if len(apply) != 2 || !ack.OK || ack.NextIndex != 3 {
		t.Fatalf("apply=%d ack=%+v", len(apply), ack)
	}
	if deposed := p.Ack(1, &ack); deposed {
		t.Fatal("healthy ack deposed the leader")
	}
	if ents, _ := p.Batch(1); len(ents) != 0 {
		t.Fatalf("acked entries still pending: %d", len(ents))
	}
}

func TestDuplicateEntriesSkipped(t *testing.T) {
	p := NewProposer(1, []int{1}, 1)
	var a Acceptor
	e := entry(t, p, 1)
	all := []proto.ReplEntry{e}
	if apply, _ := a.Offer(&proto.ReplAppend{Term: 1, Entries: all}); len(apply) != 1 {
		t.Fatal("first offer not applied")
	}
	// The same entry resent (an ack was lost) must not re-apply.
	apply, ack := a.Offer(&proto.ReplAppend{Term: 1, Entries: all})
	if len(apply) != 0 || !ack.OK || ack.NextIndex != 2 {
		t.Fatalf("duplicate re-applied: apply=%d ack=%+v", len(apply), ack)
	}
}

func TestStaleTermDeposesSender(t *testing.T) {
	a := Acceptor{Term: 5, Last: 10}
	apply, ack := a.Offer(&proto.ReplAppend{Term: 3})
	if len(apply) != 0 || ack.OK || ack.Term != 5 {
		t.Fatalf("stale append accepted: ack=%+v", ack)
	}
	p := NewProposer(3, []int{1}, 11)
	if !p.Ack(1, &ack) {
		t.Fatal("higher-term rejection did not depose the proposer")
	}
}

func TestGapRejectionBacksUpAndResends(t *testing.T) {
	p := NewProposer(2, []int{1}, 1)
	var a Acceptor
	e1 := entry(t, p, 1)
	e2 := entry(t, p, 2)
	_ = e1
	// Follower only sees entry 2: gap, expects index 1.
	apply, ack := a.Offer(&proto.ReplAppend{Term: 2, Entries: []proto.ReplEntry{e2}})
	if len(apply) != 0 || ack.OK || ack.NextIndex != 1 {
		t.Fatalf("gap not rejected: ack=%+v", ack)
	}
	if p.Ack(1, &ack) {
		t.Fatal("gap rejection deposed the leader")
	}
	ents, snap := p.Batch(1)
	if snap || len(ents) != 2 {
		t.Fatalf("resend batch = %d entries", len(ents))
	}
	if apply, ack = a.Offer(&proto.ReplAppend{Term: 2, Entries: ents}); len(apply) != 2 || !ack.OK {
		t.Fatalf("resend not applied: apply=%d ack=%+v", len(apply), ack)
	}
}

func TestTruncateKeyedToAcksAndApplied(t *testing.T) {
	p := NewProposer(1, []int{1, 2}, 1)
	var a1, a2 Acceptor
	for i := 0; i < 4; i++ {
		entry(t, p, byte(i))
	}
	ents, _ := p.Batch(1)
	_, ack1 := a1.Offer(&proto.ReplAppend{Term: 1, Entries: ents})
	p.Ack(1, &ack1)
	// Peer 2 only acked through index 2.
	_, ack2 := a2.Offer(&proto.ReplAppend{Term: 1, Entries: ents[:2]})
	p.Ack(2, &ack2)

	// All four applied locally, but peer 2 gates truncation at 2.
	if n := p.Truncate(4); n != 2 {
		t.Fatalf("Truncate dropped %d, want 2", n)
	}
	if p.First() != 3 || p.Retained() != 2 {
		t.Fatalf("first=%d retained=%d", p.First(), p.Retained())
	}
	// The applied floor gates too: nothing above it may drop even when
	// every peer acked.
	_, ack2 = a2.Offer(&proto.ReplAppend{Term: 1, Entries: ents[2:]})
	p.Ack(2, &ack2)
	if n := p.Truncate(3); n != 1 {
		t.Fatalf("floor-gated Truncate dropped %d, want 1", n)
	}
	// A dead peer stops gating.
	p2 := NewProposer(1, []int{1, 2}, 1)
	entry(t, p2, 9)
	ents2, _ := p2.Batch(1)
	var b Acceptor
	_, ackB := b.Offer(&proto.ReplAppend{Term: 1, Entries: ents2})
	p2.Ack(1, &ackB)
	if n := p2.Truncate(1); n != 0 {
		t.Fatal("unacked peer did not gate truncation")
	}
	p2.DropPeer(2)
	if n := p2.Truncate(1); n != 1 {
		t.Fatalf("dead peer still gates truncation (dropped %d)", n)
	}
}

func TestSnapshotCatchUp(t *testing.T) {
	p := NewProposer(1, []int{1, 2}, 1)
	var a1 Acceptor
	for i := 0; i < 3; i++ {
		entry(t, p, byte(i))
	}
	ents, _ := p.Batch(1)
	_, ack := a1.Offer(&proto.ReplAppend{Term: 1, Entries: ents})
	p.Ack(1, &ack)
	p.DropPeer(2)
	p.Truncate(3)

	// Peer 2 rejoins conceptually: a new leader starts its log above the
	// truncated prefix, and the peer's gap rejection (it expects index
	// 1) backs its cursor below First, flagging it for a snapshot.
	pr := NewProposer(1, []int{2}, 4)
	pr.Append(1, proto.KLockReq, nil)
	var lag Acceptor
	ents4, _ := pr.Batch(2)
	_, nack := lag.Offer(&proto.ReplAppend{Term: 1, Entries: ents4})
	if nack.OK || nack.NextIndex != 1 {
		t.Fatalf("lagging follower ack = %+v", nack)
	}
	pr.Ack(2, &nack)
	if _, snap := pr.Batch(2); !snap {
		t.Fatal("lagging peer not flagged for snapshot")
	}
	var a2 Acceptor
	if err := a2.InstallSnapshot(1, 3); err != nil {
		t.Fatal(err)
	}
	if a2.Last != 3 {
		t.Fatalf("snapshot Last = %d", a2.Last)
	}
	pr.SnapshotInstalled(2, 3)
	// Appends resume above the snapshot: the pending index-4 entry now
	// lands cleanly on the caught-up follower.
	apply, ack2 := a2.Offer(&proto.ReplAppend{Term: 1, Entries: ents4})
	if len(apply) != 1 || !ack2.OK || ack2.NextIndex != 5 {
		t.Fatalf("post-snapshot append rejected: apply=%d ack=%+v", len(apply), ack2)
	}
	if err := a2.InstallSnapshot(0, 9); err == nil {
		t.Fatal("stale-term snapshot accepted")
	}
}
