package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/layout"
	"repro/internal/manager"
	"repro/internal/pagecache"
	"repro/internal/proto"
	"repro/internal/scl"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/vtime"
)

var shutdownMsg proto.Shutdown

// Thread is one Samhita compute thread: a goroutine with its own fabric
// endpoint, virtual clock and local software cache. (As in the paper,
// each "thread" is really an independent process with no hardware-
// coherent memory shared with its peers; everything flows through the
// global address space.)
type Thread struct {
	rt     *Runtime
	id     int
	p      int
	node   uint32 // compute node (placement)
	writer uint32 // protocol writer id (thread id + 1)

	ep    scl.Endpoint
	clock *vtime.Clock
	st    stats.Thread
	cache *pagecache.Cache

	// mark is the virtual time up to which the clock has been attributed
	// to a bucket; everything between mark and Now() is unattributed.
	mark vtime.Time
	// frozen, when set by StopMeasurement, is the record reported
	// instead of whatever accumulates afterwards.
	frozen *stats.Thread

	// spanBuf is the reusable byte scratch the float64 span accessors
	// marshal through (grown on demand, never shrunk).
	spanBuf []byte

	// lockDepth tracks consistency-region nesting: stores while >0 are
	// instrumented into the fine-grained log.
	lockDepth int
	// lastSeen is the highest manager notice sequence applied.
	lastSeen uint64

	// tenureCold marks pages this thread had to fetch while inside a
	// consistency region, or received ready-made with a peer-to-peer
	// grant. A successor on the handoff chain is very likely cold on
	// exactly these pages, so the releasing unlock ships its copy of the
	// record-bearing ones with the grant (entry consistency: the data
	// guarded by the lock travels with the lock). Warm holders never
	// fault in-region, keep this empty, and ship nothing. Main-goroutine
	// only.
	tenureCold map[layout.PageID]bool

	// arena is the thread-local allocator (strategy one).
	arenaNext      layout.Addr
	arenaRemaining int

	// allocSeq numbers this thread's allocation-plane requests (alloc
	// and free). A retry across manager failover re-sends the same Seq,
	// and the manager's per-writer dedup answers it with the original
	// outcome instead of allocating (or freeing) twice. Main-goroutine
	// only; starts at 1 so 0 stays "no dedup".
	allocSeq uint64

	// barEpoch counts this thread's arrivals per barrier (1-based).
	// Stamped into BarrierReq only when the manager is replicated, so a
	// re-issued arrival after a leader failover is deduplicated against
	// the round the replicated log already counted it in. Main-goroutine
	// only.
	barEpoch map[uint32]uint64

	// ho is the peer-to-peer lock-handoff state (sharded manager on a
	// sequenced fabric). The cache agent receives NextWaiter and
	// LockGrant posts; the main goroutine consumes them — hence the
	// mutex. All maps stay empty unless the manager detaches a waiter.
	ho struct {
		mu         sync.Mutex
		succ       map[uint32]*succTrain      // lock -> announcement train to forward grants along
		grants     map[uint32]grantMsg        // lock -> grant that arrived before the waiter parked
		grantWait  map[uint32]chan grantMsg   // lock -> parked waiter's wake channel
		heldGen    map[uint32]uint64          // lock -> tenure gen while this thread holds it
		acquireSeq map[uint32]uint64          // lock -> lastSeen right after acquiring it
		seenTags   map[proto.IntervalTag]bool // intervals applied inline, dedupe redelivery
	}

	// actor is the trace label ("thread 3").
	actor string
}

// grantMsg is a received LockGrant plus its virtual arrival time.
type grantMsg struct {
	g  *proto.LockGrant
	at vtime.Time
}

// succTrain is the client's copy of an announcement train: the queued
// waiters this holder (and the holders after it) will pass the lock to
// directly. gen fences it to one tenure — the train is only acted on if
// it matches the tenure the unlock closes; seq is the anchor horizon the
// train's notice batches were composed at; inline accumulates the
// closing intervals of the train holders so far (oldest first), which
// every later successor needs on top of its manager-composed batch.
type succTrain struct {
	gen    uint64
	seq    uint64
	train  []proto.SuccAnn
	inline []proto.Notice
}

var _ vm.Thread = (*Thread)(nil)

func (t *Thread) initCache() {
	t.ho.succ = make(map[uint32]*succTrain)
	t.ho.grants = make(map[uint32]grantMsg)
	t.ho.grantWait = make(map[uint32]chan grantMsg)
	t.ho.heldGen = make(map[uint32]uint64)
	t.ho.acquireSeq = make(map[uint32]uint64)
	t.ho.seenTags = make(map[proto.IntervalTag]bool)
	t.tenureCold = make(map[layout.PageID]bool)
	t.barEpoch = make(map[uint32]uint64)
	depth := 0
	if t.rt.cfg.Prefetch {
		depth = t.rt.cfg.PrefetchDepth
		if depth <= 0 {
			depth = 1
		}
	}
	t.cache = pagecache.New(pagecache.Config{
		Geo:              t.rt.cfg.Geo,
		CPU:              t.rt.cfg.CPU,
		CapacityLines:    t.rt.cfg.CacheLines,
		PrefetchDepth:    depth,
		Writer:           t.writer,
		NoRecordCoalesce: t.rt.cfg.NoRecordCoalesce,
		NoLazyOwner:      t.rt.standbyEnabled(),
		Gate:             t.rt.gate,
	}, (*threadBackend)(t), t.clock, &t.st)
}

// ID implements vm.Thread.
func (t *Thread) ID() int { return t.id }

// P implements vm.Thread.
func (t *Thread) P() int { return t.p }

// Clock implements vm.Thread.
func (t *Thread) Clock() vtime.Time { return t.clock.Now() }

// Stats implements vm.Thread.
func (t *Thread) Stats() *stats.Thread { return &t.st }

// Cache exposes the thread's software cache (used by tests and the
// bench harness).
func (t *Thread) Cache() *pagecache.Cache { return t.cache }

// register announces the thread to the manager before the run starts.
func (t *Thread) register() error {
	var ack proto.Ack
	at, err := t.mgrCall(&proto.RegisterReq{Thread: t.writer, Node: t.node}, &ack, t.clock.Now())
	if err != nil {
		return err
	}
	t.clock.AdvanceTo(at)
	t.st.MsgsSent++
	t.mark = t.clock.Now() // registration is setup, not measured time
	return nil
}

// finish attributes any trailing unmeasured time to the compute bucket
// and quiesces the thread's traffic. The endpoint stays open — the
// cache agent keeps serving diff pulls until the Runtime retires the
// thread after every body has returned.
func (t *Thread) finish() {
	t.settleCompute()
	// Drain before restoring any frozen snapshot: the drain classifies
	// still-in-flight prefetches as wasted, and those must land on the
	// same record as the issues they pair with or the wasted count can
	// exceed the issued count.
	t.cache.DrainPrefetches()
	if t.frozen != nil {
		t.st = *t.frozen
	}
}

// agentLoop is the thread's cache agent: it answers DiffPull requests
// from home servers out of the retained-diff store while the thread
// itself computes (the asynchronous runtime helper of the real system).
// It exits when the endpoint closes.
func (t *Thread) agentLoop() {
	for {
		req, ok := t.ep.Recv()
		if !ok {
			return
		}
		// Each pull is priced independently from its own arrival: the
		// agent's work is a trivial store lookup, so there is no
		// queueing to model, and a shared monotone clock would let one
		// late-stamped request inflate every later (but virtually
		// earlier) reply — the out-of-order poisoning the memory
		// server's calendar exists to prevent.
		switch req.Kind() {
		case proto.KDiffPullReq:
			var m proto.DiffPullReq
			if err := req.Decode(&m); err != nil {
				req.ReplyError(err, req.Arrive()+req.Svc())
				continue
			}
			diffs := t.cache.Owned().TakeMany(m.Pages)
			payload := 0
			for i := range diffs {
				payload += diffs[i].PayloadBytes()
			}
			req.Reply(&proto.DiffPullResp{Diffs: diffs},
				req.Arrive()+req.Svc()+t.rt.cfg.CPU.CopyTime(payload))
		case proto.KNextWaiter:
			var nw proto.NextWaiter
			if err := req.Decode(&nw); err != nil {
				panic(fmt.Sprintf("core: bad NextWaiter: %v", err))
			}
			t.ho.mu.Lock()
			// Install unless a newer train is already present. The tenure
			// check happens at the unlock that would act on the train, not
			// here: an announcement routinely arrives before the main
			// goroutine has applied the grant that starts its tenure, and
			// gating on heldGen at arrival time would drop it. A stale
			// train (gen mismatch at unlock) is simply not acted on and
			// the manager falls back to a central grant.
			if cur := t.ho.succ[nw.Lock]; nw.Gen != 0 && (cur == nil || nw.Gen > cur.gen) {
				t.ho.succ[nw.Lock] = &succTrain{gen: nw.Gen, seq: nw.Seq, train: nw.Train}
			}
			t.ho.mu.Unlock()
		case proto.KLockGrant:
			var g proto.LockGrant
			if err := req.Decode(&g); err != nil {
				panic(fmt.Sprintf("core: bad LockGrant: %v", err))
			}
			gm := grantMsg{g: &g, at: req.Arrive() + req.Svc()}
			t.ho.mu.Lock()
			if ch, ok := t.ho.grantWait[g.Lock]; ok {
				delete(t.ho.grantWait, g.Lock)
				t.ho.mu.Unlock()
				t.rt.gate.Resume() // wake credit for the parked main goroutine
				ch <- gm
				continue
			}
			// The grant raced ahead of the waiter parking; stash it.
			t.ho.grants[g.Lock] = gm
			t.ho.mu.Unlock()
		default:
			if !req.OneWay() {
				req.ReplyError(fmt.Errorf("core: agent got unexpected %v", req.Kind()), req.Arrive()+req.Svc())
			}
		}
	}
}

// flushOwned pushes every still-retained owned diff to its home so the
// homes are self-sufficient once this thread's agent goes away. Called
// by the Runtime after the thread's body has returned. A flush that
// cannot be delivered (the thread's node was crash-killed mid-run) is
// an error for the Runtime to report, not a panic: the rest of the
// retirement must still happen.
func (t *Thread) flushOwned() error {
	diffs := t.cache.Owned().DrainAll()
	if len(diffs) == 0 {
		return nil
	}
	byHome := make(map[int][]proto.PageDiff)
	for _, d := range diffs {
		home := t.rt.cfg.Geo.HomeOf(layout.PageID(d.Page))
		byHome[home] = append(byHome[home], d)
	}
	at := t.clock.Now()
	for _, home := range sortedHomes(byHome) {
		var err error
		at, err = t.sendHome(home, &proto.EvictFlush{Writer: t.writer, Diffs: byHome[home]}, at)
		if err != nil {
			return fmt.Errorf("final owned flush: %w", err)
		}
	}
	t.clock.AdvanceTo(at)
	return nil
}

// ResetMeasurement implements vm.Thread.
func (t *Thread) ResetMeasurement() {
	t.st = stats.Thread{ID: t.id}
	t.frozen = nil
	t.mark = t.clock.Now()
}

// StopMeasurement implements vm.Thread.
func (t *Thread) StopMeasurement() {
	t.settleCompute()
	snap := t.st.Snapshot()
	t.frozen = &snap
}

// SleepUntil implements vm.Thread: the open-loop idle wait. Work done
// since the last settle is attributed to compute first, then the jump
// to tm (if any) is attributed to idle time so deliberate slack never
// inflates the service-time buckets. Advancing a thread's own clock
// sends no messages, so the sequenced fabric stays deterministic.
func (t *Thread) SleepUntil(tm vtime.Time) {
	t.settleCompute()
	now := t.clock.Now()
	if tm <= now {
		return
	}
	t.clock.AdvanceTo(tm)
	t.st.IdleTime += t.clock.Now() - now
	t.mark = t.clock.Now()
}

// settleCompute attributes [mark, now) to compute time.
func (t *Thread) settleCompute() {
	now := t.clock.Now()
	t.st.ComputeTime += now - t.mark
	t.mark = now
}

// settleSync attributes [mark, now) to synchronization time.
func (t *Thread) settleSync() {
	now := t.clock.Now()
	t.st.SyncTime += now - t.mark
	t.mark = now
}

// fail aborts the thread; accessor errors are the DSM equivalent of a
// fatal segmentation fault. The panic value is an error wrapping err,
// so the run's failure stays matchable with errors.Is (peer death,
// shutdown, unreachability) after the runtime recovers it.
func (t *Thread) fail(op string, err error) {
	panic(fmt.Errorf("samhita thread %d: %s: %w", t.id, op, err))
}

// mgrCall round-trips a request to the manager, following the address
// book. When the leader is gone or answers as a deposed replica
// (CodeNotLeader) and a replica group is configured, the failover
// promotes the next replica and the call is re-issued against it — the
// manager's dedup paths absorb a mutation the old leader already
// replicated. With one manager the original error surfaces untouched.
func (t *Thread) mgrCall(req proto.Msg, resp proto.Msg, at vtime.Time) (vtime.Time, error) {
	for tries := 0; ; tries++ {
		node := t.rt.managerNode()
		doneAt, err := t.ep.Call(node, req, resp, at)
		if err == nil || !isMgrFailure(err) || tries >= t.rt.cfg.ManagerReplicas {
			return doneAt, err
		}
		if _, ferr := t.rt.managerFailover(node); ferr != nil {
			return doneAt, err
		}
	}
}

// callHome round-trips a request to a home server, retrying once
// against the promoted standby when the current home is gone.
func (t *Thread) callHome(home int, req proto.Msg, resp proto.Msg, at vtime.Time) (vtime.Time, error) {
	doneAt, err := t.ep.Call(t.rt.homeNode(home), req, resp, at)
	if err == nil || !isPeerFailure(err) {
		return doneAt, err
	}
	node, ferr := t.rt.failover(home)
	if ferr != nil {
		return doneAt, err
	}
	return t.ep.Call(node, req, resp, at)
}

// sendHome ships a one-way mutation to a home server. With a standby
// configured the send is an acknowledged call instead: the ack proves
// the primary applied AND forwarded the batch, so a crash between the
// send and the ack is recovered by re-sending to the promoted standby
// (re-applying absolute-byte diffs is idempotent).
func (t *Thread) sendHome(home int, m proto.Msg, at vtime.Time) (vtime.Time, error) {
	if t.rt.standbyEnabled() {
		var ack proto.Ack
		return t.callHome(home, m, &ack, at)
	}
	return t.ep.Post(t.rt.homeNode(home), m, at)
}

// ---------------------------------------------------------------------
// Memory accessors (vm.Thread).

// Compute charges pure arithmetic to the virtual clock.
func (t *Thread) Compute(flops int) {
	if flops > 0 {
		t.clock.Advance(vtime.Time(flops) * t.rt.cfg.CPU.FlopTime)
	}
}

// ReadBytes implements vm.Thread.
func (t *Thread) ReadBytes(a vm.Addr, buf []byte) {
	if err := t.cache.Read(a, buf); err != nil {
		t.fail("read", err)
	}
}

// WriteBytes implements vm.Thread.
func (t *Thread) WriteBytes(a vm.Addr, data []byte) {
	region := t.lockDepth > 0 && !t.rt.cfg.DisableFineGrain
	if err := t.cache.Write(a, data, region); err != nil {
		t.fail("write", err)
	}
}

// ReadFloat64 implements vm.Thread.
func (t *Thread) ReadFloat64(a vm.Addr) float64 {
	var b [8]byte
	t.ReadBytes(a, b[:])
	return vm.GetFloat64(b[:])
}

// WriteFloat64 implements vm.Thread.
func (t *Thread) WriteFloat64(a vm.Addr, v float64) {
	var b [8]byte
	vm.PutFloat64(b[:], v)
	t.WriteBytes(a, b[:])
}

// ReadInt64 implements vm.Thread.
func (t *Thread) ReadInt64(a vm.Addr) int64 {
	var b [8]byte
	t.ReadBytes(a, b[:])
	return vm.GetInt64(b[:])
}

// WriteInt64 implements vm.Thread.
func (t *Thread) WriteInt64(a vm.Addr, v int64) {
	var b [8]byte
	vm.PutInt64(b[:], v)
	t.WriteBytes(a, b[:])
}

// span returns the reusable marshalling scratch, at least n bytes long.
func (t *Thread) span(n int) []byte {
	if cap(t.spanBuf) < n {
		t.spanBuf = make([]byte, n)
	}
	return t.spanBuf[:n]
}

// ReadFloat64s implements vm.Thread: one bulk cache access for the
// whole span (one residency walk per page, AccessTime once plus a
// per-byte term) instead of one access per element.
func (t *Thread) ReadFloat64s(a vm.Addr, dst []float64) {
	if len(dst) == 0 {
		return
	}
	b := t.span(8 * len(dst))
	if err := t.cache.ReadSpan(a, b); err != nil {
		t.fail("read-span", err)
	}
	for i := range dst {
		dst[i] = vm.GetFloat64(b[8*i:])
	}
}

// WriteFloat64s implements vm.Thread: the span-write fast path. Beyond
// the bulk cost model, the cache tracks the written extents so the next
// release can publish them and peers invalidate partially instead of
// refetching whole falsely-shared pages; in consistency regions the
// span logs one store record per contiguous page chunk.
func (t *Thread) WriteFloat64s(a vm.Addr, src []float64) {
	if len(src) == 0 {
		return
	}
	b := t.span(8 * len(src))
	for i, v := range src {
		vm.PutFloat64(b[8*i:], v)
	}
	region := t.lockDepth > 0 && !t.rt.cfg.DisableFineGrain
	if err := t.cache.WriteSpan(a, b, region); err != nil {
		t.fail("write-span", err)
	}
}

// AddFloat64 implements vm.Thread: a fused read-modify-write through
// one cache access (and one store record in consistency regions).
func (t *Thread) AddFloat64(a vm.Addr, v float64) float64 {
	region := t.lockDepth > 0 && !t.rt.cfg.DisableFineGrain
	var sum float64
	err := t.cache.ReadModifyWrite8(a, region, func(b []byte) {
		sum = vm.GetFloat64(b) + v
		vm.PutFloat64(b, sum)
	})
	if err != nil {
		t.fail("add", err)
	}
	return sum
}

// AddInt64 implements vm.Thread.
func (t *Thread) AddInt64(a vm.Addr, v int64) int64 {
	region := t.lockDepth > 0 && !t.rt.cfg.DisableFineGrain
	var sum int64
	err := t.cache.ReadModifyWrite8(a, region, func(b []byte) {
		sum = vm.GetInt64(b) + v
		vm.PutInt64(b, sum)
	})
	if err != nil {
		t.fail("add", err)
	}
	return sum
}

// ---------------------------------------------------------------------
// Allocation (vm.Thread).

// Malloc implements vm.Thread: the thread-local arena path (allocation
// strategy one). Arena chunks come from the manager rarely; the common
// case is a pure-local bump allocation with no communication, and arena
// chunks are cache-line aligned so threads never false-share them.
func (t *Thread) Malloc(n int) vm.Addr {
	if n <= 0 {
		t.fail("malloc", fmt.Errorf("non-positive size %d", n))
	}
	n = int(layout.AlignUp(layout.Addr(n), 16))
	if n > t.arenaRemaining {
		chunk := t.rt.cfg.ArenaChunk
		if n > chunk {
			chunk = int(layout.AlignUp(layout.Addr(n), t.rt.cfg.Geo.LineSize()))
		}
		addr := t.managerAlloc(uint64(chunk), proto.AllocArenaChunk)
		t.arenaNext = addr
		t.arenaRemaining = chunk
	}
	a := t.arenaNext
	t.arenaNext += layout.Addr(n)
	t.arenaRemaining -= n
	t.st.ArenaAllocs++
	return a
}

// GlobalAlloc implements vm.Thread: manager-served allocation, using the
// shared zone for medium requests and striping across memory servers for
// large ones (strategies two and three).
func (t *Thread) GlobalAlloc(n int) vm.Addr {
	if n <= 0 {
		t.fail("global alloc", fmt.Errorf("non-positive size %d", n))
	}
	strategy := proto.AllocShared
	if n >= t.rt.cfg.StripeMin {
		strategy = proto.AllocStriped
	}
	t.st.SharedAllocs++
	return t.managerAlloc(uint64(n), strategy)
}

func (t *Thread) managerAlloc(size uint64, strategy uint8) vm.Addr {
	start := t.clock.Now()
	t.allocSeq++
	var resp proto.AllocResp
	at, err := t.mgrCall(&proto.AllocReq{
		Thread: t.writer, Size: size, Align: 16, Strategy: strategy, Seq: t.allocSeq,
	}, &resp, t.clock.Now())
	if err != nil {
		t.fail("alloc", err)
	}
	t.clock.AdvanceTo(at)
	t.rt.cfg.Trace.Span(t.actor, trace.CatAlloc, "alloc", start, at, map[string]any{"bytes": size})
	t.st.MsgsSent++
	return layout.Addr(resp.Addr)
}

// Free implements vm.Thread. Arena memory is reclaimed wholesale when
// the arena chunk itself is released, so arena frees are no-ops (the
// paper's arenas behave the same way); manager-served allocations are
// returned to their zone.
//
// Freeing a forked range is two-phase (see proto.FreeReq): the manager
// withholds the zone space while this thread unmaps the range at every
// home, then a second, Unmapped free commits it. Without the barrier,
// first-fit reuse of the striped space would race the homes' stale
// fork mappings and resolve fresh allocations to dead snapshot frames.
// Either flavour of free may also release snapshots whose refcount hit
// zero; the homes are told to drop their sealed frames.
func (t *Thread) Free(a vm.Addr) {
	if a < manager.SharedZoneBase {
		return
	}
	t.allocSeq++
	var resp proto.FreeResp
	at, err := t.mgrCall(&proto.FreeReq{Thread: t.writer, Addr: uint64(a), Seq: t.allocSeq}, &resp, t.clock.Now())
	if err != nil {
		t.fail("free", err)
	}
	t.clock.AdvanceTo(at)
	t.st.MsgsSent++
	for resp.Fork || len(resp.Release) > 0 {
		t.unmapAtHomes(a, &resp)
		if !resp.Fork {
			return
		}
		// Commit: every home acked the unmap, so the manager may return
		// the range to the zone. The commit itself can release snapshots
		// that were sealed FROM the dying fork, which loops us back for
		// one more (release-only) fan-out.
		t.allocSeq++
		var next proto.FreeResp
		at, err := t.mgrCall(&proto.FreeReq{Thread: t.writer, Addr: uint64(a), Seq: t.allocSeq, Unmapped: true}, &next, t.clock.Now())
		if err != nil {
			t.fail("free", err)
		}
		t.clock.AdvanceTo(at)
		t.st.MsgsSent++
		resp = next
	}
}

// unmapAtHomes fans one acked ForkUnmap round out to every home of the
// freed range: dropping the fork mapping and its materialized pages
// (when resp.Fork) and/or the sealed frames of released snapshots.
func (t *Thread) unmapAtHomes(a vm.Addr, resp *proto.FreeResp) {
	first := t.rt.cfg.Geo.PageOf(layout.Addr(a))
	m := &proto.ForkUnmap{Release: resp.Release}
	if resp.Fork {
		m.Base = uint64(a)
		m.NPages = resp.NPages
		// Lines this thread cached through the dying fork would shadow
		// whatever the striped zone reuses the range for.
		t.cache.DropRange(first, resp.NPages)
	}
	for _, home := range t.homesForRange(first, resp.NPages) {
		var ack proto.Ack
		at, err := t.callHome(home, m, &ack, t.clock.Now())
		if err != nil {
			t.fail("free", err)
		}
		t.clock.AdvanceTo(at)
		t.st.MsgsSent++
	}
}

// ---------------------------------------------------------------------
// Address-space snapshots and copy-on-write forks (vm.Thread).

// homesForRange lists the servers homing any page of [first,
// first+npages), ascending. Bounded by the server count, not the range:
// striping visits every home within one stripe group.
func (t *Thread) homesForRange(first layout.PageID, npages uint64) []int {
	geo := t.rt.cfg.Geo
	set := make(map[int]struct{})
	for i := uint64(0); i < npages; i++ {
		set[geo.HomeOf(first+layout.PageID(i))] = struct{}{}
		if len(set) == geo.NumServers {
			break
		}
	}
	return sortedHomes(set)
}

// SnapshotAS implements vm.Thread: seal the n bytes at base into an
// immutable snapshot. The thread first flushes its own dirty pages in
// the range home (eviction-style — no interval is consumed) so the seal
// captures its unreleased writes, then asks the manager for a snapshot
// id, then tells every home in the range to freeze its share — quoting
// the same interval tags a fetch would, so no page seals before the
// released intervals this thread knows about have been applied. The
// seal fan-out is acked: when SnapshotAS returns, every sealed frame
// exists and a ForkAS handed to any thread is safe to use.
func (t *Thread) SnapshotAS(base vm.Addr, n int) uint64 {
	if n <= 0 {
		t.fail("snapshot", fmt.Errorf("non-positive size %d", n))
	}
	t.settleCompute()
	start := t.clock.Now()
	geo := t.rt.cfg.Geo
	if geo.PageOffset(layout.Addr(base)) != 0 {
		t.fail("snapshot", fmt.Errorf("base %#x is not page-aligned", uint64(base)))
	}
	first := geo.PageOf(layout.Addr(base))
	npages := uint64((n + geo.PageSize - 1) / geo.PageSize)
	if err := t.cache.FlushRange(first, npages); err != nil {
		t.fail("snapshot", err)
	}
	needs := t.cache.RangeNeeds(first, npages)

	t.allocSeq++
	var resp proto.SnapshotASResp
	at, err := t.mgrCall(&proto.SnapshotASReq{
		Thread: t.writer, Base: uint64(base), NPages: npages, Seq: t.allocSeq,
	}, &resp, t.clock.Now())
	if err != nil {
		t.fail("snapshot", err)
	}
	t.clock.AdvanceTo(at)
	t.st.MsgsSent++

	needsByHome := make(map[int][]proto.PageNeed)
	for i := range needs {
		home := geo.HomeOf(layout.PageID(needs[i].Page))
		needsByHome[home] = append(needsByHome[home], needs[i])
	}
	for _, home := range t.homesForRange(first, npages) {
		var ack proto.Ack
		at, err := t.callHome(home, &proto.SealAS{
			Snap: resp.Snap, Base: uint64(base), NPages: npages, Needs: needsByHome[home],
		}, &ack, t.clock.Now())
		if err != nil {
			t.fail("snapshot", err)
		}
		t.clock.AdvanceTo(at)
		t.st.MsgsSent++
	}
	// Lines fetched from here on belong to the new epoch; tests tell a
	// fork's post-snapshot fetches from stale pre-snapshot residency.
	t.cache.BumpSnapshotEpoch()
	t.rt.cfg.Trace.Span(t.actor, trace.CatAlloc, "snapshot", start, t.clock.Now(),
		map[string]any{"pages": npages, "snap": resp.Snap})
	t.settleSync()
	return resp.Snap
}

// ForkAS implements vm.Thread: materialize a copy-on-write image of a
// sealed snapshot. O(1) in the image size — one manager allocation plus
// one acked ForkMap per home server; no page bytes move until first
// use. The manager allocates the fork range stripe-group aligned, so
// every fork page is homed by the server holding the congruent sealed
// frame.
func (t *Thread) ForkAS(snap uint64) vm.Addr {
	t.settleCompute()
	start := t.clock.Now()
	t.allocSeq++
	var resp proto.ForkASResp
	at, err := t.mgrCall(&proto.ForkASReq{Thread: t.writer, Snap: snap, Seq: t.allocSeq}, &resp, t.clock.Now())
	if err != nil {
		t.fail("fork", err)
	}
	t.clock.AdvanceTo(at)
	t.st.MsgsSent++
	t.st.SharedAllocs++
	first := t.rt.cfg.Geo.PageOf(layout.Addr(resp.Base))
	// A stream through a neighbouring buffer may have prefetched the
	// just-allocated range as zero lines; they would shadow the sealed
	// frames.
	t.cache.DropRange(first, resp.NPages)
	// Acked registration at every home in the range: a read through the
	// fork issued after ForkAS returns must find the mapping.
	for _, home := range t.homesForRange(first, resp.NPages) {
		var ack proto.Ack
		at, err := t.callHome(home, &proto.ForkMap{
			Snap: snap, Base: resp.Base, OrigBase: resp.OrigBase, NPages: resp.NPages,
		}, &ack, t.clock.Now())
		if err != nil {
			t.fail("fork", err)
		}
		t.clock.AdvanceTo(at)
		t.st.MsgsSent++
	}
	t.rt.cfg.Trace.Span(t.actor, trace.CatAlloc, "fork", start, t.clock.Now(),
		map[string]any{"pages": resp.NPages, "snap": snap})
	t.settleSync()
	return layout.Addr(resp.Base)
}

// ---------------------------------------------------------------------
// Release/acquire plumbing shared by the synchronization objects.

// callResult carries the completion of a manager round trip started
// while the release pipeline runs.
type callResult struct {
	at  vtime.Time
	err error
}

// startManagerCall issues a manager round trip on a helper goroutine so
// the thread can overlap it with diff work; the completion arrives on
// the returned channel. Concurrent use of the endpoint is safe — the
// prefetch path already calls from helper goroutines.
func (t *Thread) startManagerCall(req proto.Msg, resp proto.Msg, at vtime.Time) <-chan callResult {
	ch := make(chan callResult, 1)
	t.st.MsgsSent++
	t.rt.gate.Resume()
	go func() {
		doneAt, err := t.mgrCall(req, resp, at)
		t.rt.gate.Resume() // wake credit for the joining thread
		ch <- callResult{at: doneAt, err: err}
		t.rt.gate.Pause() // helper exit
	}()
	return ch
}

// finishRelease completes a BeginRelease: it computes the deferred
// shared-page diffs and fans the per-home DiffBatches out over SCL.
// Interval tags — not arrival order at the manager — are what restores
// causality at the homes, so callers may (and do) announce the release
// to the manager before this work happens; a fetch racing ahead of a
// batch parks at the home until the quoted tag's batch lands.
func (t *Thread) finishRelease(rs *pagecache.ReleaseSet) {
	start := t.clock.Now()
	t.cache.FinishRelease(rs)
	defer func() {
		if t.rt.cfg.Trace != nil && (len(rs.Pages) > 0 || len(rs.Records) > 0) {
			t.rt.cfg.Trace.Span(t.actor, trace.CatRelease, "release", start, t.clock.Now(),
				map[string]any{"pages": len(rs.Pages), "records": len(rs.Records), "homes": len(rs.ByHome)})
		}
	}()
	if len(rs.ByHome) == 0 {
		return
	}
	// Deterministic fan-out order: the clock advance sequence (and, with
	// a standby, each call's issue time) must not depend on map order.
	homes := sortedHomes(rs.ByHome)
	if !t.rt.standbyEnabled() {
		// One-way posts: nothing blocks, the sender only pays the
		// serialized send overheads.
		for _, home := range homes {
			at, err := t.sendHome(home, rs.ByHome[home], t.clock.Now())
			if err != nil {
				t.fail("diff batch", err)
			}
			t.clock.AdvanceTo(at)
			t.st.MsgsSent++
		}
		return
	}
	// Acknowledged sends to replicated homes: issue every call
	// concurrently (send overheads still serialize on the NIC) and join
	// at the latest ack instead of chaining the round trips.
	sendAt := t.clock.Now()
	ch := make(chan callResult, len(homes))
	for i, home := range homes {
		issue := sendAt + vtime.Time(i)*t.rt.cfg.Link.SendOverhead
		t.st.MsgsSent++
		t.rt.gate.Resume()
		go func(home int, issue vtime.Time) {
			var ack proto.Ack
			at, err := t.callHome(home, rs.ByHome[home], &ack, issue)
			t.rt.gate.Resume()
			ch <- callResult{at: at, err: err}
			t.rt.gate.Pause()
		}(home, issue)
	}
	join := t.clock.Now()
	var firstErr error
	for range homes {
		t.rt.gate.Pause()
		r := <-ch
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		if r.at > join {
			join = r.at
		}
	}
	if firstErr != nil {
		t.fail("diff batch", firstErr)
	}
	t.clock.AdvanceTo(join)
}

// applyNotices consumes acquire-side notices and advances the seen
// horizon. Intervals already applied inline from a peer-to-peer
// LockGrant are filtered here — the manager redelivers them once (the
// holder's closing interval is posted to the directory after the grant
// was composed, so it lands above the successor's horizon), and the
// redelivery can arrive through any acquire path: a barrier response,
// a cond-wait response, or a later lock grant. Re-applying the stale
// records in place would roll shared words back over newer stores.
func (t *Thread) applyNotices(seq uint64, notices []proto.Notice) {
	t.ho.mu.Lock()
	if len(t.ho.seenTags) > 0 {
		filtered := make([]proto.Notice, 0, len(notices))
		for _, n := range notices {
			if t.ho.seenTags[n.Tag] {
				delete(t.ho.seenTags, n.Tag)
				continue
			}
			filtered = append(filtered, n)
		}
		notices = filtered
	}
	t.ho.mu.Unlock()
	if err := t.cache.ApplyNotices(notices); err != nil {
		t.fail("apply notices", err)
	}
	if seq > t.lastSeen {
		t.lastSeen = seq
	}
}

// awaitGrant parks the thread until the LockGrant for a queued lock
// acquisition arrives (forwarded by the releasing holder, or composed
// centrally by the manager).
func (t *Thread) awaitGrant(lock uint32) grantMsg {
	t.ho.mu.Lock()
	if gm, ok := t.ho.grants[lock]; ok {
		delete(t.ho.grants, lock)
		t.ho.mu.Unlock()
		return gm
	}
	ch := make(chan grantMsg, 1)
	t.ho.grantWait[lock] = ch
	t.ho.mu.Unlock()
	t.rt.gate.Pause() // park until the agent's wake credit
	return <-ch
}

// applyGrant consumes a LockGrant: the manager-composed notice backlog,
// plus — on a peer-to-peer handoff — the closing intervals of the train
// holders since the anchor, riding Inline in release order. Those
// intervals reach the manager's directory too (via each holder's
// UnlockReq), so this thread WILL see them again in a later acquire's
// notice batch; seenTags (checked in applyNotices) dedupes the
// redelivery wherever it surfaces. If the grant carries the rest of an
// announcement train, it is installed so this thread's own release can
// keep passing the lock waiter-to-waiter.
func (t *Thread) applyGrant(lock uint32, g *proto.LockGrant) {
	t.applyNotices(g.Seq, g.Notices)
	// Install lock-carried pages before the inline intervals: the
	// shipped bytes are the releaser's post-write copy (newer than every
	// interval this grant names), so inline records replaying on top are
	// idempotent, and this holder's region stores won't fault mid-tenure
	// on the serialized handoff chain. Installed pages are re-shipped at
	// this holder's own release — the chain stays warm end to end.
	for _, pp := range g.PageData {
		t.cache.InstallGrantPage(layout.PageID(pp.Page), pp.Data)
		// Marked even when this thread was already warm: a shipped page
		// means the chain is in cold mode, and the next successor down
		// the train may still need it.
		t.tenureCold[layout.PageID(pp.Page)] = true
	}
	var inline []proto.Notice
	for _, n := range g.Inline {
		if len(n.Pages) > 0 || len(n.Records) > 0 {
			inline = append(inline, n)
		}
	}
	if len(inline) > 0 {
		if err := t.cache.ApplyNotices(inline); err != nil {
			t.fail("apply handoff intervals", err)
		}
	}
	t.ho.mu.Lock()
	for _, n := range inline {
		t.ho.seenTags[n.Tag] = true
	}
	t.ho.heldGen[lock] = g.Gen
	t.ho.acquireSeq[lock] = t.lastSeen
	if len(g.Train) > 0 {
		t.ho.succ[lock] = &succTrain{gen: g.Gen, seq: g.Seq, train: g.Train, inline: g.Inline}
	}
	t.ho.mu.Unlock()
}

// ---------------------------------------------------------------------
// Synchronization objects.

// smhMutex is a Samhita mutual-exclusion lock. Lock is an acquire point;
// Unlock is a release point carrying the interval's write notice; the
// span between them is a consistency region whose stores are propagated
// as fine-grained updates.
type smhMutex struct {
	rt *Runtime
	id uint32
}

// Lock implements vm.Mutex.
func (m *smhMutex) Lock(th vm.Thread) {
	t := th.(*Thread)
	t.settleCompute()
	start := t.clock.Now()
	defer func() {
		t.rt.cfg.Trace.Span(t.actor, trace.CatLock, fmt.Sprintf("lock %d", m.id), start, t.clock.Now(), nil)
	}()
	t.clock.Advance(t.rt.cfg.CPU.LockTime)
	var resp proto.LockResp
	at, err := t.mgrCall(&proto.LockReq{
		Lock: m.id, Thread: t.writer, LastSeen: t.lastSeen,
	}, &resp, t.clock.Now())
	if err != nil {
		t.fail("lock", err)
	}
	t.clock.AdvanceTo(at)
	t.st.MsgsSent++
	t.st.LockOps++
	if resp.Queued {
		// Detached wait (peer-to-peer handoff mode): the lock is
		// contended and the grant arrives as a one-way LockGrant from
		// the releasing holder (or the manager as fallback).
		gm := t.awaitGrant(m.id)
		if gm.g.Code != 0 {
			t.fail("lock", fmt.Errorf("lock %d: %w", m.id, proto.CodeErr(gm.g.Code)))
		}
		t.clock.AdvanceTo(gm.at)
		t.applyGrant(m.id, gm.g)
	} else {
		t.applyNotices(resp.Seq, resp.Notices)
		if resp.Gen != 0 {
			t.ho.mu.Lock()
			t.ho.heldGen[m.id] = resp.Gen
			t.ho.acquireSeq[m.id] = t.lastSeen
			t.ho.mu.Unlock()
		}
	}
	t.lockDepth++
	t.settleSync()
}

// Unlock implements vm.Mutex.
func (m *smhMutex) Unlock(th vm.Thread) {
	t := th.(*Thread)
	if t.lockDepth <= 0 {
		t.fail("unlock", fmt.Errorf("unlock without matching lock"))
	}
	t.settleCompute()
	start := t.clock.Now()
	defer func() {
		t.rt.cfg.Trace.Span(t.actor, trace.CatLock, fmt.Sprintf("unlock %d", m.id), start, t.clock.Now(), nil)
	}()
	t.clock.Advance(t.rt.cfg.CPU.LockTime)
	// Pipelined release: the write notice is a one-way post issued
	// before the diffs are even computed. The manager can grant the
	// next waiter immediately — neither the unlock ack nor the diff
	// work sits on the serialized lock-handoff chain — and any fetch
	// that races ahead of the diffs parks at the home on this
	// interval's tag until finishRelease ships them.
	//
	// Exception: a release carrying fine-grained records must ship its
	// batches BEFORE the notice. Records are applied in place at
	// acquirers without invalidating the page, so no tag-parked fetch
	// orders this batch against the next holder's at the home —
	// arrival order is the only order, and announcing first would let
	// the next holder's batch overtake ours.
	rs := t.cache.BeginRelease()
	if len(rs.Records) > 0 {
		t.finishRelease(rs)
	}
	// Peer-to-peer handoff: if an announcement train names a successor
	// for this tenure and this critical section saw no other acquire
	// (lastSeen unchanged — otherwise the pre-composed notice batches
	// would be incomplete for the successors), forward the grant
	// directly — carrying this interval and the train's earlier closing
	// intervals inline, plus the rest of the train — and tell the
	// manager it happened.
	var handedOff uint32
	t.ho.mu.Lock()
	ss := t.ho.succ[m.id]
	gen, held := t.ho.heldGen[m.id]
	aseq := t.ho.acquireSeq[m.id]
	delete(t.ho.succ, m.id)
	delete(t.ho.heldGen, m.id)
	delete(t.ho.acquireSeq, m.id)
	t.ho.mu.Unlock()
	if ss != nil && held && ss.gen == gen && t.lastSeen == aseq && len(ss.train) > 0 {
		head := ss.train[0]
		inline := make([]proto.Notice, 0, len(ss.inline)+1)
		inline = append(inline, ss.inline...)
		inline = append(inline, proto.Notice{Tag: rs.Tag, Pages: rs.Pages, Records: rs.Records})
		// Ship the current bytes of record-bearing pages this tenure had
		// to fetch in-region (or received the same way): the successor is
		// almost certainly cold on exactly those, and a mid-tenure fetch
		// sits on the serialized handoff chain.
		var pageData []proto.PagePayload
		if len(t.tenureCold) > 0 && len(rs.Records) > 0 {
			shipped := make(map[layout.PageID]bool)
			for _, rec := range rs.Records {
				p := t.rt.cfg.Geo.PageOf(layout.Addr(rec.Addr))
				if shipped[p] || !t.tenureCold[p] {
					continue
				}
				shipped[p] = true
				if data := t.cache.SnapshotPage(p); data != nil {
					pageData = append(pageData, proto.PagePayload{Page: uint64(p), Data: data})
				}
			}
		}
		gat, err := t.ep.Post(scl.NodeID(head.WaiterNode), &proto.LockGrant{
			Lock: m.id, Gen: gen + 1, Seq: ss.seq, Notices: head.Notices,
			Inline: inline, Train: ss.train[1:], PageData: pageData,
		}, t.clock.Now())
		if err != nil {
			t.fail("unlock", err)
		}
		t.clock.AdvanceTo(gat)
		t.st.MsgsSent++
		handedOff = head.Waiter
	}
	ur := &proto.UnlockReq{
		Lock: m.id, Thread: t.writer, Interval: rs.Tag.Interval,
		Pages: rs.Pages, Records: rs.Records, HandedOff: handedOff,
	}
	var at vtime.Time
	var err error
	if t.rt.cfg.ManagerReplicas > 1 {
		// Replicated manager: the release must be an acknowledged call.
		// A one-way post could die with the leader without any error
		// surfacing, silently losing the interval; the ack proves the
		// release was replicated, and a lost ack is recovered by
		// re-issuing (the manager dedups by interval).
		var ack proto.Ack
		at, err = t.mgrCall(ur, &ack, t.clock.Now())
	} else {
		at, err = t.ep.Post(managerNode, ur, t.clock.Now())
	}
	if err != nil {
		t.fail("unlock", err)
	}
	t.clock.AdvanceTo(at)
	t.st.MsgsSent++
	if len(rs.Records) == 0 {
		t.finishRelease(rs)
	}
	t.st.LockOps++
	t.lockDepth--
	if t.lockDepth == 0 && len(t.tenureCold) > 0 {
		clear(t.tenureCold)
	}
	t.settleSync()
}

// smhBarrier is a Samhita barrier: a release followed by an acquire for
// all n participants, mediated by the manager.
type smhBarrier struct {
	rt *Runtime
	id uint32
	n  uint32
}

// Wait implements vm.Barrier.
func (b *smhBarrier) Wait(th vm.Thread) {
	t := th.(*Thread)
	t.settleCompute()
	start := t.clock.Now()
	defer func() {
		t.rt.cfg.Trace.Span(t.actor, trace.CatBarrier, fmt.Sprintf("barrier %d", b.id), start, t.clock.Now(), nil)
	}()
	t.clock.Advance(t.rt.cfg.CPU.LockTime)
	// Barrier arrival is also an acquire, so the manager call must be a
	// round trip — but it can fly while the diffs are computed and
	// shipped (interval tags order the batches at the homes), so the
	// release work hides inside the barrier's wait. Record-carrying
	// releases forgo the overlap: records are applied in place at
	// acquirers (no invalidation, no tag-parked fetch), so the batch
	// must be at the home before the barrier can open.
	rs := t.cache.BeginRelease()
	if len(rs.Records) > 0 {
		t.finishRelease(rs)
	}
	var epoch uint64
	if t.rt.cfg.ManagerReplicas > 1 {
		t.barEpoch[b.id]++
		epoch = t.barEpoch[b.id]
	}
	var resp proto.BarrierResp
	done := t.startManagerCall(&proto.BarrierReq{
		Barrier: b.id, Count: b.n, Thread: t.writer,
		LastSeen: t.lastSeen, Interval: rs.Tag.Interval,
		Pages: rs.Pages, Records: rs.Records, Epoch: epoch,
	}, &resp, t.clock.Now())
	if len(rs.Records) == 0 {
		t.finishRelease(rs)
	}
	t.rt.gate.Pause() // park until the helper's credit wakes us
	r := <-done
	if r.err != nil {
		t.fail("barrier", r.err)
	}
	t.clock.AdvanceTo(r.at)
	t.st.BarrierOps++
	t.applyNotices(resp.Seq, resp.Notices)
	t.settleSync()
}

// smhCond is a Samhita condition variable.
type smhCond struct {
	rt *Runtime
	id uint32
}

// Wait implements vm.Cond: release the interval and the mutex, sleep
// until signalled, re-acquire the mutex (with fresh notices).
func (c *smhCond) Wait(th vm.Thread, mu vm.Mutex) {
	t := th.(*Thread)
	m, ok := mu.(*smhMutex)
	if !ok {
		t.fail("cond wait", fmt.Errorf("mutex is not a Samhita mutex"))
	}
	if t.lockDepth <= 0 {
		t.fail("cond wait", fmt.Errorf("cond wait without holding the mutex"))
	}
	t.settleCompute()
	t.clock.Advance(t.rt.cfg.CPU.LockTime)
	// The wait releases the mutex, ending this tenure: drop any
	// handoff state so a successor announcement can never be acted on
	// after the manager has already re-granted the lock centrally.
	t.ho.mu.Lock()
	delete(t.ho.succ, m.id)
	delete(t.ho.heldGen, m.id)
	delete(t.ho.acquireSeq, m.id)
	t.ho.mu.Unlock()
	// Same overlap as the barrier: the wait-for-signal round trip flies
	// while the release's diffs are computed and shipped — unless the
	// release carries records, which must land at the homes first.
	rs := t.cache.BeginRelease()
	if len(rs.Records) > 0 {
		t.finishRelease(rs)
	}
	var resp proto.CondWaitResp
	done := t.startManagerCall(&proto.CondWaitReq{
		Cond: c.id, Lock: m.id, Thread: t.writer,
		LastSeen: t.lastSeen, Interval: rs.Tag.Interval,
		Pages: rs.Pages, Records: rs.Records,
	}, &resp, t.clock.Now())
	if len(rs.Records) == 0 {
		t.finishRelease(rs)
	}
	t.rt.gate.Pause() // park until the helper's credit wakes us
	r := <-done
	if r.err != nil {
		t.fail("cond wait", r.err)
	}
	t.clock.AdvanceTo(r.at)
	t.st.CondOps++
	t.applyNotices(resp.Seq, resp.Notices)
	t.settleSync()
}

// Signal implements vm.Cond.
func (c *smhCond) Signal(th vm.Thread) { c.signal(th, false) }

// Broadcast implements vm.Cond.
func (c *smhCond) Broadcast(th vm.Thread) { c.signal(th, true) }

func (c *smhCond) signal(th vm.Thread, broadcast bool) {
	t := th.(*Thread)
	t.settleCompute()
	var ack proto.Ack
	at, err := t.mgrCall(&proto.CondSignalReq{
		Cond: c.id, Thread: t.writer, Broadcast: broadcast,
	}, &ack, t.clock.Now())
	if err != nil {
		t.fail("cond signal", err)
	}
	t.clock.AdvanceTo(at)
	t.st.MsgsSent++
	t.st.CondOps++
	t.settleSync()
}

// ---------------------------------------------------------------------
// pagecache.Backend implementation.

// threadBackend adapts a Thread to the cache's Backend interface.
type threadBackend Thread

func (b *threadBackend) thread() *Thread { return (*Thread)(b) }

// FetchLine implements pagecache.Backend.
func (b *threadBackend) FetchLine(line layout.LineID, needs []proto.PageNeed, at vtime.Time) ([]byte, vtime.Time, error) {
	t := b.thread()
	home := t.rt.cfg.Geo.HomeOf(t.rt.cfg.Geo.FirstPage(line))
	var resp proto.FetchLineResp
	doneAt, err := t.callHome(home, &proto.FetchLineReq{
		Line: uint64(line), Needs: needs,
	}, &resp, at)
	if err != nil {
		return nil, at, err
	}
	t.rt.cfg.Trace.Span(t.actor, trace.CatFetch, fmt.Sprintf("fetch line %d", line), at, doneAt,
		map[string]any{"home": home, "needs": len(needs)})
	t.st.MsgsSent++
	t.markTenureCold([]layout.LineID{line}, nil)
	return resp.Data, doneAt, nil
}

// markTenureCold records a demand fetch that happened inside a
// consistency region: the pages just pulled are handoff-shipping
// candidates at this tenure's release (see Thread.tenureCold).
func (t *Thread) markTenureCold(lines []layout.LineID, pages []layout.PageID) {
	if t.lockDepth == 0 {
		return
	}
	geo := t.rt.cfg.Geo
	for _, l := range lines {
		first := geo.FirstPage(l)
		for i := 0; i < geo.LinePages; i++ {
			t.tenureCold[first+layout.PageID(i)] = true
		}
	}
	for _, p := range pages {
		t.tenureCold[p] = true
	}
}

// FetchLines implements pagecache.Backend: one combined request for a
// demand miss plus companion pages the same home must refill anyway
// (fetch combining). Whole lines and single invalidated pages share one
// round trip and one service booking at the home.
func (b *threadBackend) FetchLines(lines []layout.LineID, pages []layout.PageID, needs []proto.PageNeed, at vtime.Time) ([]byte, vtime.Time, error) {
	t := b.thread()
	var home int
	if len(lines) > 0 {
		home = t.rt.cfg.Geo.HomeOf(t.rt.cfg.Geo.FirstPage(lines[0]))
	} else {
		home = t.rt.cfg.Geo.HomeOf(pages[0])
	}
	req := &proto.FetchLinesReq{Needs: needs}
	for _, l := range lines {
		req.Lines = append(req.Lines, uint64(l))
	}
	for _, p := range pages {
		req.Pages = append(req.Pages, uint64(p))
	}
	var resp proto.FetchLinesResp
	doneAt, err := t.callHome(home, req, &resp, at)
	if err != nil {
		return nil, at, err
	}
	t.rt.cfg.Trace.Span(t.actor, trace.CatFetch,
		fmt.Sprintf("fetch %d lines + %d pages", len(lines), len(pages)), at, doneAt,
		map[string]any{"home": home, "needs": len(needs)})
	t.st.MsgsSent++
	t.markTenureCold(lines, pages)
	return resp.Data, doneAt, nil
}

// StartPrefetch implements pagecache.Backend: the asynchronous
// line request of Samhita's anticipatory paging.
func (b *threadBackend) StartPrefetch(line layout.LineID, needs []proto.PageNeed, at vtime.Time, h *pagecache.Handoff) <-chan pagecache.PrefetchResult {
	t := b.thread()
	home := t.rt.cfg.Geo.HomeOf(t.rt.cfg.Geo.FirstPage(line))
	ch := make(chan pagecache.PrefetchResult, 1)
	t.st.MsgsSent++
	t.rt.gate.Resume()
	go func() {
		var resp proto.FetchLineResp
		doneAt, err := t.callHome(home, &proto.FetchLineReq{
			Line: uint64(line), Needs: needs,
		}, &resp, at)
		if err == nil {
			t.rt.cfg.Trace.Span(t.actor, trace.CatPrefetch, fmt.Sprintf("prefetch line %d", line), at, doneAt,
				map[string]any{"home": home})
		}
		h.Done() // credit a parked consumer, if any (never unconditionally)
		ch <- pagecache.PrefetchResult{Data: resp.Data, ReadyAt: doneAt, Err: err}
		t.rt.gate.Pause() // helper exit
	}()
	return ch
}

// FlushEvict implements pagecache.Backend.
func (b *threadBackend) FlushEvict(diffs []proto.PageDiff, at vtime.Time) (vtime.Time, error) {
	t := b.thread()
	byHome := make(map[int][]proto.PageDiff)
	for _, d := range diffs {
		home := t.rt.cfg.Geo.HomeOf(layout.PageID(d.Page))
		byHome[home] = append(byHome[home], d)
	}
	for _, home := range sortedHomes(byHome) {
		var err error
		at, err = t.sendHome(home, &proto.EvictFlush{Writer: t.writer, Diffs: byHome[home]}, at)
		if err != nil {
			return at, err
		}
		t.st.MsgsSent++
	}
	return at, nil
}

// FlushSync implements pagecache.Backend: the acknowledged flush the
// snapshot path uses so a SealAS sent afterwards cannot overtake the
// flushed bytes on the fabric.
func (b *threadBackend) FlushSync(diffs []proto.PageDiff, at vtime.Time) (vtime.Time, error) {
	t := b.thread()
	byHome := make(map[int][]proto.PageDiff)
	for _, d := range diffs {
		home := t.rt.cfg.Geo.HomeOf(layout.PageID(d.Page))
		byHome[home] = append(byHome[home], d)
	}
	for _, home := range sortedHomes(byHome) {
		var ack proto.Ack
		replyAt, err := t.callHome(home, &proto.EvictFlush{Writer: t.writer, Diffs: byHome[home]}, &ack, at)
		if err != nil {
			return at, err
		}
		at = replyAt
		t.st.MsgsSent++
	}
	return at, nil
}

// sortedHomes lists a per-home map's keys in ascending order, so send
// sequences never depend on map iteration.
func sortedHomes[V any](m map[int]V) []int {
	homes := make([]int, 0, len(m))
	for h := range m {
		homes = append(homes, h)
	}
	sort.Ints(homes)
	return homes
}
