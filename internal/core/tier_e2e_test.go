package core

import (
	"testing"

	"repro/internal/apps/pagerank"
)

// Tier transparency, end to end: the same workload must produce
// bit-identical results whether the memory servers run untiered
// (HotBytes 0), comfortably all-hot, or under a budget tight enough to
// force constant demotion and recompression. Virtual time is allowed to
// differ — tier moves cost time — but never a single result bit.
func TestTieredResultsBitIdentical(t *testing.T) {
	prm := pagerank.Params{Vertices: 2048, AvgDeg: 8, Iters: 3}
	run := func(hotBytes int64) *pagerank.Result {
		cfg := DefaultConfig()
		cfg.CacheLines = 64
		cfg.Geo.NumServers = 4
		cfg.ServerShards = 2
		cfg.HotBytes = hotBytes
		rt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		res, err := pagerank.Run(rt, 4, prm)
		if err != nil {
			t.Fatal(err)
		}
		if hotBytes > 0 && hotBytes < 1<<20 {
			if rt.TierStats().Demotions.Load() == 0 {
				t.Fatalf("hot budget %d forced no demotions — the tight run exercised nothing", hotBytes)
			}
		}
		return res
	}
	base := run(0)
	for _, hotBytes := range []int64{1 << 30, 64 << 10, 16 << 10} {
		got := run(hotBytes)
		if got.Checksum != base.Checksum || got.RankSum != base.RankSum {
			t.Fatalf("hot budget %d: checksum %v ranksum %v, untiered %v %v — the tier leaked into the data plane",
				hotBytes, got.Checksum, got.RankSum, base.Checksum, base.RankSum)
		}
		if got.Edges != base.Edges {
			t.Fatalf("hot budget %d: edges %d != %d", hotBytes, got.Edges, base.Edges)
		}
	}
}
