package core

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/layout"
	"repro/internal/manager"
	"repro/internal/trace"
	"repro/internal/vm"
)

// testConfig shrinks the cache so eviction paths get exercised, and
// keeps the default QDR-IB link model.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.CacheLines = 64
	return cfg
}

func newRuntime(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := rt.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return rt
}

func TestSingleThreadReadWrite(t *testing.T) {
	rt := newRuntime(t, testConfig())
	run, err := rt.Run(1, func(th vm.Thread) {
		a := th.Malloc(1024)
		th.WriteFloat64(a, 3.25)
		th.WriteInt64(a+8, -17)
		if got := th.ReadFloat64(a); got != 3.25 {
			t.Errorf("float round trip: %v", got)
		}
		if got := th.ReadInt64(a + 8); got != -17 {
			t.Errorf("int round trip: %v", got)
		}
		// Untouched memory reads zero.
		if got := th.ReadFloat64(a + 512); got != 0 {
			t.Errorf("fresh memory = %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Threads) != 1 || run.Threads[0].Hits == 0 {
		t.Fatalf("run stats: %+v", run.Threads)
	}
}

func TestAllocatorStrategies(t *testing.T) {
	rt := newRuntime(t, testConfig())
	_, err := rt.Run(1, func(th vm.Thread) {
		local := th.Malloc(64)
		if local >= manager.SharedZoneBase {
			t.Errorf("Malloc went to manager zones: %#x", uint64(local))
		}
		// Many small Mallocs reuse the arena without new chunks.
		msgsBefore := th.Stats().MsgsSent
		for i := 0; i < 100; i++ {
			th.Malloc(32)
		}
		if extra := th.Stats().MsgsSent - msgsBefore; extra != 0 {
			t.Errorf("100 arena allocations cost %d messages, want 0", extra)
		}

		shared := th.GlobalAlloc(4096)
		if shared < manager.SharedZoneBase || shared >= manager.StripedZoneBase {
			t.Errorf("medium GlobalAlloc at %#x not in shared zone", uint64(shared))
		}
		big := th.GlobalAlloc(2 << 20)
		if big < manager.StripedZoneBase {
			t.Errorf("large GlobalAlloc at %#x not in striped zone", uint64(big))
		}
		th.Free(big)
		th.Free(shared)
		th.Free(local) // arena free is a no-op but must not fail
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierPropagatesOrdinaryWrites(t *testing.T) {
	rt := newRuntime(t, testConfig())
	bar := rt.NewBarrier(2)
	var base atomic.Uint64
	run, err := rt.Run(2, func(th vm.Thread) {
		if th.ID() == 0 {
			a := th.GlobalAlloc(4096)
			th.WriteFloat64(a, 42.5)
			base.Store(uint64(a))
		}
		bar.Wait(th)
		a := vm.Addr(base.Load())
		if got := th.ReadFloat64(a); got != 42.5 {
			t.Errorf("thread %d read %v after barrier", th.ID(), got)
		}
		bar.Wait(th)
		if th.ID() == 1 {
			th.WriteFloat64(a+8, 7.0)
		}
		bar.Wait(th)
		if got := th.ReadFloat64(a + 8); got != 7.0 {
			t.Errorf("thread %d read %v after second round", th.ID(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := run.Totals()
	if tot.NoticesReceived == 0 {
		t.Error("no write notices flowed")
	}
	if run.MaxSyncTime() == 0 {
		t.Error("barriers cost no sync time")
	}
}

func TestLockProtectedCounter(t *testing.T) {
	rt := newRuntime(t, testConfig())
	const p, iters = 8, 20
	mu := rt.NewMutex()
	bar := rt.NewBarrier(p)
	var base atomic.Uint64
	run, err := rt.Run(p, func(th vm.Thread) {
		if th.ID() == 0 {
			base.Store(uint64(th.GlobalAlloc(64)))
		}
		bar.Wait(th)
		gsum := vm.F64{Base: vm.Addr(base.Load())}
		for i := 0; i < iters; i++ {
			mu.Lock(th)
			gsum.Add(th, 0, 1)
			mu.Unlock(th)
		}
		bar.Wait(th)
		if got := gsum.At(th, 0); got != float64(p*iters) {
			t.Errorf("thread %d sees counter %v, want %d", th.ID(), got, p*iters)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := run.Totals()
	if tot.RecordsLogged == 0 {
		t.Error("consistency-region stores were not instrumented")
	}
	if tot.UpdatesApplied == 0 {
		t.Error("no fine-grained updates were applied in place")
	}
}

func TestFalseSharingMergesAtHome(t *testing.T) {
	rt := newRuntime(t, testConfig())
	const p = 4
	bar := rt.NewBarrier(p)
	var base atomic.Uint64
	run, err := rt.Run(p, func(th vm.Thread) {
		if th.ID() == 0 {
			base.Store(uint64(th.GlobalAlloc(4096))) // one page, four writers
		}
		bar.Wait(th)
		arr := vm.F64{Base: vm.Addr(base.Load())}
		// Each thread writes a disjoint quarter of the same page.
		for i := 0; i < 8; i++ {
			arr.Set(th, th.ID()*8+i, float64(th.ID()*100+i))
		}
		bar.Wait(th)
		// Every thread must see every other thread's writes merged.
		for w := 0; w < p; w++ {
			for i := 0; i < 8; i++ {
				if got := arr.At(th, w*8+i); got != float64(w*100+i) {
					t.Errorf("thread %d: [%d,%d] = %v", th.ID(), w, i, got)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := run.Totals()
	if tot.DiffsCreated == 0 || tot.Invalidations == 0 {
		t.Errorf("false sharing produced diffs=%d invalidations=%d", tot.DiffsCreated, tot.Invalidations)
	}
}

func TestCondVarPipeline(t *testing.T) {
	rt := newRuntime(t, testConfig())
	mu := rt.NewMutex()
	cond := rt.NewCond()
	bar := rt.NewBarrier(2)
	var base atomic.Uint64
	_, err := rt.Run(2, func(th vm.Thread) {
		if th.ID() == 0 {
			base.Store(uint64(th.GlobalAlloc(64)))
		}
		bar.Wait(th)
		flag := vm.I64{Base: vm.Addr(base.Load())}
		value := vm.F64{Base: vm.Addr(base.Load()) + 8}
		if th.ID() == 0 {
			// Consumer: wait for the flag, then read the value.
			mu.Lock(th)
			for flag.At(th, 0) == 0 {
				cond.Wait(th, mu)
			}
			got := value.At(th, 0)
			mu.Unlock(th)
			if got != 99.5 {
				t.Errorf("consumer got %v", got)
			}
		} else {
			// Producer: publish under the lock, then signal.
			mu.Lock(th)
			value.Set(th, 0, 99.5)
			flag.Set(th, 0, 1)
			mu.Unlock(th)
			cond.Signal(th)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEvictionUnderTinyCache(t *testing.T) {
	cfg := testConfig()
	cfg.CacheLines = 2
	cfg.Prefetch = false
	rt := newRuntime(t, cfg)
	run, err := rt.Run(1, func(th vm.Thread) {
		a := th.GlobalAlloc(2 << 20) // 128 lines worth
		arr := vm.F64{Base: a}
		n := (2 << 20) / 8
		for i := 0; i < n; i += 512 {
			arr.Set(th, i, float64(i))
		}
		for i := 0; i < n; i += 512 {
			if got := arr.At(th, i); got != float64(i) {
				t.Errorf("[%d] = %v after eviction churn", i, got)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Totals().Evictions == 0 {
		t.Error("tiny cache never evicted")
	}
	if run.Totals().DirtyEvicts == 0 {
		t.Error("dirty evictions never flushed")
	}
}

func TestMultipleMemoryServersStriping(t *testing.T) {
	cfg := testConfig()
	cfg.Geo.NumServers = 3
	rt := newRuntime(t, cfg)
	_, err := rt.Run(1, func(th vm.Thread) {
		a := th.GlobalAlloc(4 << 20)
		arr := vm.F64{Base: a}
		n := (4 << 20) / 8
		step := 1024
		for i := 0; i < n; i += step {
			arr.Set(th, i, float64(i))
		}
		for i := 0; i < n; i += step {
			if got := arr.At(th, i); got != float64(i) {
				t.Errorf("[%d] = %v", i, got)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// All three servers must have hosted pages.
	for i, srv := range rt.Servers() {
		if srv.Stats().PagesHosted.Load() == 0 {
			t.Errorf("server %d hosted no pages", i)
		}
	}
}

func TestVirtualTimeDeterminism(t *testing.T) {
	prog := func() (compute, sync int64) {
		rt, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		bar := rt.NewBarrier(1)
		run, err := rt.Run(1, func(th vm.Thread) {
			a := th.Malloc(64 << 10)
			arr := vm.F64{Base: a}
			for i := 0; i < 4096; i++ {
				arr.Set(th, i, float64(i))
			}
			bar.Wait(th)
			var s float64
			for i := 0; i < 4096; i++ {
				s += arr.At(th, i)
				th.Compute(1)
			}
			bar.Wait(th)
			_ = s
		})
		if err != nil {
			t.Fatal(err)
		}
		return int64(run.MaxComputeTime()), int64(run.MaxSyncTime())
	}
	c1, s1 := prog()
	c2, s2 := prog()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("virtual time not deterministic: (%d,%d) vs (%d,%d)", c1, s1, c2, s2)
	}
	if c1 == 0 || s1 == 0 {
		t.Fatalf("degenerate times: compute=%d sync=%d", c1, s1)
	}
}

func TestRunPanicBecomesError(t *testing.T) {
	rt := newRuntime(t, testConfig())
	_, err := rt.Run(2, func(th vm.Thread) {
		if th.ID() == 1 {
			panic("kernel bug")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "kernel bug") {
		t.Fatalf("panic not surfaced: %v", err)
	}
}

func TestRunRejectsZeroThreads(t *testing.T) {
	rt := newRuntime(t, testConfig())
	if _, err := rt.Run(0, func(vm.Thread) {}); err == nil {
		t.Fatal("Run(0) succeeded")
	}
}

func TestBadGeometryRejected(t *testing.T) {
	cfg := testConfig()
	cfg.Geo = layout.Geometry{PageSize: 1000, LinePages: 1, NumServers: 1}
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

func TestComputeChargesFlops(t *testing.T) {
	rt := newRuntime(t, testConfig())
	run, err := rt.Run(1, func(th vm.Thread) {
		before := th.Clock()
		th.Compute(1000)
		if got := th.Clock() - before; got != 1000*rt.cfg.CPU.FlopTime {
			t.Errorf("Compute(1000) advanced %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.MaxComputeTime() < 1000*rt.cfg.CPU.FlopTime {
		t.Errorf("compute bucket %v too small", run.MaxComputeTime())
	}
}

func TestSingleWriterPagesAreLazy(t *testing.T) {
	rt := newRuntime(t, testConfig())
	bar := rt.NewBarrier(2)
	run, err := rt.Run(2, func(th vm.Thread) {
		// Each thread repeatedly rewrites its own private allocation:
		// no other thread ever touches it.
		a := th.Malloc(8192)
		arr := vm.F64{Base: a}
		for round := 0; round < 5; round++ {
			for i := 0; i < 1024; i++ {
				arr.Set(th, i, float64(round*10000+i))
			}
			bar.Wait(th)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := run.Totals()
	if tot.OwnedClaims == 0 {
		t.Error("private working set produced no ownership claims")
	}
	if tot.DiffBytes != 0 {
		t.Errorf("private working set shipped %d eager diff bytes", tot.DiffBytes)
	}
	// Nobody reads the pages, so the homes never pull.
	for _, srv := range rt.Servers() {
		if got := srv.Stats().Pulls.Load(); got != 0 {
			t.Errorf("unexpected pulls: %d", got)
		}
	}
}

func TestReaderTriggersPullOfOwnedPages(t *testing.T) {
	rt := newRuntime(t, testConfig())
	bar := rt.NewBarrier(2)
	var base atomic.Uint64
	_, err := rt.Run(2, func(th vm.Thread) {
		if th.ID() == 0 {
			a := th.GlobalAlloc(8192)
			arr := vm.F64{Base: a}
			for i := 0; i < 1024; i++ {
				arr.Set(th, i, float64(i))
			}
			base.Store(uint64(a))
		}
		bar.Wait(th)
		if th.ID() == 1 {
			arr := vm.F64{Base: vm.Addr(base.Load())}
			for i := 0; i < 1024; i++ {
				if got := arr.At(th, i); got != float64(i) {
					t.Errorf("[%d] = %v", i, got)
					return
				}
			}
		}
		bar.Wait(th)
	})
	if err != nil {
		t.Fatal(err)
	}
	var pulls int64
	for _, srv := range rt.Servers() {
		pulls += srv.Stats().Pulls.Load()
	}
	if pulls == 0 {
		t.Error("reader fetched owned pages without any pull")
	}
}

func TestSharedPagesGoEagerAfterFirstConflict(t *testing.T) {
	rt := newRuntime(t, testConfig())
	const p = 2
	bar := rt.NewBarrier(p)
	var base atomic.Uint64
	run, err := rt.Run(p, func(th vm.Thread) {
		if th.ID() == 0 {
			base.Store(uint64(th.GlobalAlloc(4096))) // one page, two writers
		}
		bar.Wait(th)
		arr := vm.F64{Base: vm.Addr(base.Load())}
		for round := 0; round < 4; round++ {
			arr.Set(th, th.ID()*4+round%4, float64(th.ID()*100+round))
			bar.Wait(th)
			// Both threads read both halves: forces visibility.
			_ = arr.At(th, 0)
			_ = arr.At(th, 4)
			bar.Wait(th)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := run.Totals()
	if tot.DiffBytes == 0 {
		t.Error("conflicting page never switched to eager diffs")
	}
	if tot.Invalidations == 0 {
		t.Error("no invalidations under write sharing")
	}
}

func TestTracingRecordsProtocolEvents(t *testing.T) {
	cfg := testConfig()
	col := trace.NewCollector(0)
	cfg.Trace = col
	rt := newRuntime(t, cfg)
	bar := rt.NewBarrier(2)
	mu := rt.NewMutex()
	var base atomic.Uint64
	_, err := rt.Run(2, func(th vm.Thread) {
		if th.ID() == 0 {
			base.Store(uint64(th.GlobalAlloc(4096)))
		}
		bar.Wait(th)
		mu.Lock(th)
		th.WriteFloat64(vm.Addr(base.Load()), 1)
		mu.Unlock(th)
		bar.Wait(th)
		_ = th.ReadFloat64(vm.Addr(base.Load()) + 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	cats := map[trace.Category]bool{}
	for _, e := range col.Events() {
		cats[e.Cat] = true
	}
	for _, want := range []trace.Category{trace.CatBarrier, trace.CatLock, trace.CatFetch, trace.CatAlloc, trace.CatRelease} {
		if !cats[want] {
			t.Errorf("no %q events traced (have %v)", want, cats)
		}
	}
	var buf strings.Builder
	if err := col.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if len(buf.String()) < 100 {
		t.Error("trivial trace output")
	}
}

func TestHeterogeneousConfigPreset(t *testing.T) {
	cfg := HeterogeneousConfig()
	if cfg.Link.Name != "pcie-scif" {
		t.Errorf("link = %q", cfg.Link.Name)
	}
	if cfg.CPU.FlopTime <= DefaultConfig().CPU.FlopTime {
		t.Error("coprocessor cores should be slower than host cores")
	}
	if cfg.ThreadsPerNode != 60 {
		t.Errorf("ThreadsPerNode = %d", cfg.ThreadsPerNode)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	run, err := rt.Run(4, func(th vm.Thread) {
		a := th.Malloc(64)
		th.WriteFloat64(a, 1)
		th.Compute(1000)
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1000 flops at 4 ns each.
	if run.Threads[0].ComputeTime < 4000 {
		t.Errorf("compute %v too fast for a coprocessor core", run.Threads[0].ComputeTime)
	}
}
