package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/scl"
	"repro/internal/vm"
	"repro/internal/vtime"
)

// TestWholeRuntimeOverTCP boots a complete Samhita instance — manager,
// memory server, compute threads and cache agents — over real loopback
// TCP sockets and runs a sharing workload through it. This is the
// end-to-end proof of the SCL abstraction: the consistency protocol is
// byte-identical over the simulated fabric and over a real network.
func TestWholeRuntimeOverTCP(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transport = scl.NewTCPFactory(vtime.QDRInfiniBand)
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Fabric() != nil {
		t.Fatal("TCP runtime should have no simulated fabric")
	}

	const p = 4
	mu := rt.NewMutex()
	bar := rt.NewBarrier(p)
	var base atomic.Uint64
	run, err := rt.Run(p, func(th vm.Thread) {
		if th.ID() == 0 {
			base.Store(uint64(th.GlobalAlloc(8192)))
		}
		bar.Wait(th)
		arr := vm.F64{Base: vm.Addr(base.Load())}
		// Ordinary writes (one page region per thread => lazy ownership
		// and pulls over TCP), plus a lock-protected counter (records
		// over TCP).
		for i := 0; i < 32; i++ {
			arr.Set(th, th.ID()*32+i, float64(th.ID()*1000+i))
		}
		mu.Lock(th)
		arr.Add(th, p*32, 1)
		mu.Unlock(th)
		bar.Wait(th)
		for w := 0; w < p; w++ {
			for i := 0; i < 32; i++ {
				if got := arr.At(th, w*32+i); got != float64(w*1000+i) {
					t.Errorf("thread %d: [%d,%d] = %v", th.ID(), w, i, got)
					return
				}
			}
		}
		if got := arr.At(th, p*32); got != p {
			t.Errorf("thread %d: counter = %v", th.ID(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := run.Totals()
	if tot.NoticesReceived == 0 || run.MaxSyncTime() == 0 {
		t.Errorf("TCP run shows no protocol activity: %+v", tot)
	}
}

// TestTCPAndSimProduceSameResults runs the same deterministic program on
// both transports and compares the computed data (virtual times differ
// only by the fixed frame-header size difference).
func TestTCPAndSimProduceSameResults(t *testing.T) {
	prog := func(rt *Runtime) []float64 {
		t.Helper()
		const p = 2
		bar := rt.NewBarrier(p)
		var base atomic.Uint64
		out := make([]float64, 16)
		_, err := rt.Run(p, func(th vm.Thread) {
			if th.ID() == 0 {
				base.Store(uint64(th.GlobalAlloc(4096)))
			}
			bar.Wait(th)
			arr := vm.F64{Base: vm.Addr(base.Load())}
			for i := 0; i < 8; i++ {
				arr.Set(th, th.ID()*8+i, float64((th.ID()+1)*(i+1)))
			}
			bar.Wait(th)
			if th.ID() == 0 {
				for i := range out {
					out[i] = arr.At(th, i)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	simRT, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer simRT.Close()
	simOut := prog(simRT)

	cfg := DefaultConfig()
	cfg.Transport = scl.NewTCPFactory(vtime.QDRInfiniBand)
	tcpRT, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tcpRT.Close()
	tcpOut := prog(tcpRT)

	for i := range simOut {
		if simOut[i] != tcpOut[i] {
			t.Fatalf("transports disagree at %d: sim=%v tcp=%v", i, simOut[i], tcpOut[i])
		}
	}
}
